package gridmon

import (
	"fmt"
	"testing"

	"gridmon/internal/broker"
	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// Publish fan-out benchmarks for the broker core's subscription index:
// 10/100/1000 subscribers × {no selector, simple selector, complex
// selector}, each runnable against the indexed hot path and against the
// pre-index linear scan (broker.Config.LegacyLinearScan). Subscribers
// with selectors are split into ten interest bands, so a published
// message matches roughly a tenth of them — the content-filtering regime
// the paper's selector workload models. Each iteration publishes one
// message and feeds back the acknowledgements its deliveries produced.
//
// `go test -bench=PublishFanout` runs the matrix. BENCH_fanout.json is
// produced elsewhere, by `gridbench fanout` (cmd/gridbench/fanout.go),
// which measures the parallel fan-out engine these benchmarks
// deliberately disable (see setupFanout).

// fanoutEnv is a minimal broker.Env: unlimited memory, frames recorded
// only to the extent needed to acknowledge deliveries. Like a real
// transport it consumes each pooled Deliver frame and returns it with
// PutDeliver, and like a batching client it reuses its Ack frames (and
// their tag slices) across publishes, so the steady-state measurement
// shows the broker's own allocations.
type fanoutEnv struct {
	acks      []wire.Ack
	delivered uint64
}

func (e *fanoutEnv) Now() int64 { return 0 }
func (e *fanoutEnv) Send(conn broker.ConnID, f wire.Frame) {
	if d, ok := f.(*wire.Deliver); ok {
		e.delivered++
		if len(e.acks) < cap(e.acks) {
			e.acks = e.acks[:len(e.acks)+1]
			a := &e.acks[len(e.acks)-1]
			a.SubID = d.SubID
			a.Tags = append(a.Tags[:0], d.Tag)
		} else {
			e.acks = append(e.acks, wire.Ack{SubID: d.SubID, Tags: []int64{d.Tag}})
		}
		wire.PutDeliver(d)
	}
}
func (e *fanoutEnv) CloseConn(broker.ConnID) {}
func (e *fanoutEnv) AllocConn() error        { return nil }
func (e *fanoutEnv) FreeConn()               {}
func (e *fanoutEnv) Alloc(int64) error       { return nil }
func (e *fanoutEnv) Free(int64)              {}

const fanoutBands = 10

func fanoutSelector(class string, band int) string {
	lo, hi := band*1000, band*1000+999
	switch class {
	case "none":
		return ""
	case "simple":
		return fmt.Sprintf("id BETWEEN %d AND %d", lo, hi)
	case "complex":
		return fmt.Sprintf(
			"id BETWEEN %d AND %d AND region IN ('us', 'eu') AND name LIKE 'gen-%%' AND load * 2 < 2000",
			lo, hi)
	}
	panic("unknown selector class " + class)
}

// setupFanout builds a broker with subs subscribers on one topic. All
// subscriptions land on a single connection; fan-out cost is per
// subscription, not per connection. clone restores the pre-zero-copy
// per-delivery deep copy as the measured baseline.
func setupFanout(subs int, class string, legacy, clone bool) (*broker.Broker, *fanoutEnv) {
	env := &fanoutEnv{}
	cfg := broker.DefaultConfig("bench")
	cfg.LegacyLinearScan = legacy
	cfg.CloneDeliveries = clone
	// fanoutEnv is single-threaded and records only per-frame Delivers;
	// keep the serial fan-out so every cell measures the matching path
	// apples-to-apples. `gridbench fanout` measures the parallel engine.
	cfg.SerialFanout = true
	b := broker.New(env, cfg)
	if err := b.OnConnOpen(1); err != nil {
		panic(err)
	}
	if err := b.OnConnOpen(2); err != nil {
		panic(err)
	}
	for i := 0; i < subs; i++ {
		b.OnFrame(1, wire.Subscribe{
			SubID:    int64(i + 1),
			Dest:     message.Topic("power"),
			Selector: fanoutSelector(class, i%fanoutBands),
		})
	}
	return b, env
}

// fanoutPublish publishes the i-th message and processes the resulting
// acknowledgements, as a live broker would.
func fanoutPublish(b *broker.Broker, env *fanoutEnv, i int) {
	m := message.NewText("reading")
	m.ID = "ID:bench/1"
	m.Dest = message.Topic("power")
	m.SetProperty("id", message.Int(int32(i*7919%(fanoutBands*1000))))
	m.SetProperty("region", message.String("eu"))
	m.SetProperty("name", message.String("gen-42"))
	m.SetProperty("load", message.Double(400))
	env.acks = env.acks[:0]
	b.OnFrame(2, wire.Publish{Seq: int64(i), Msg: m})
	for i := range env.acks {
		b.OnFrame(1, &env.acks[i])
	}
}

func benchmarkFanout(b *testing.B, subs int, class string, legacy bool) {
	benchmarkFanoutMode(b, subs, class, legacy, false)
}

func benchmarkFanoutMode(b *testing.B, subs int, class string, legacy, clone bool) {
	br, env := setupFanout(subs, class, legacy, clone)
	fanoutPublish(br, env, 0) // warm up; sanity-check delivery counts
	if class == "none" && env.delivered != uint64(subs) {
		b.Fatalf("warmup delivered %d of %d", env.delivered, subs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fanoutPublish(br, env, i+1)
	}
	b.ReportMetric(float64(env.delivered)/float64(b.N), "deliveries/op")
}

func BenchmarkPublishFanout(b *testing.B) {
	for _, subs := range []int{10, 100, 1000} {
		for _, class := range []string{"none", "simple", "complex"} {
			for _, mode := range []string{"indexed", "legacy"} {
				b.Run(fmt.Sprintf("subs=%d/sel=%s/%s", subs, class, mode), func(b *testing.B) {
					benchmarkFanout(b, subs, class, mode == "legacy")
				})
			}
		}
	}
}

// BENCH_fanout.json is regenerated by `gridbench fanout` (see
// cmd/gridbench/fanout.go): it measures the parallel fan-out engine
// against the serial baseline across GOMAXPROCS, which this in-process
// benchmark (single-threaded env, serial fan-out forced) cannot.
