package gridmon

import (
	"fmt"
	"os"
	"testing"

	"gridmon/internal/experiment"
	"gridmon/internal/simbroker"
)

// Determinism guarantees: equal seeds must produce byte-identical
// experiment output. The broker's subscription index, the brokernet peer
// list, and the simbroker ack flushing are all iteration-ordered for
// exactly this reason; a map-range anywhere on the publish or forward
// path shows up here as a flaky diff.

// TestExperimentDeterminism runs a single-broker and a 3-broker DBN
// experiment twice with the same seed and requires identical results.
func TestExperimentDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs take a few seconds")
	}
	scale := experiment.Scale{PublishCount: 3, SpawnFactor: 3.0 / 180.0, Label: "det"}
	run := func(dbn bool) string {
		r := experiment.RunNarada(experiment.NaradaConfig{
			Label: "det", Connections: 600, Transport: simbroker.TCP(),
			Scale: scale, Seed: 7, DBN: dbn,
		})
		return fmt.Sprintf("n=%d mean=%v p99=%v loss=%+v idle=%v",
			r.RTT.Count(), r.RTT.Mean(), r.RTT.Percentile(99), r.Loss, r.CPUIdlePct)
	}
	for _, dbn := range []bool{false, true} {
		a, b := run(dbn), run(dbn)
		if a != b {
			t.Errorf("dbn=%v: same seed, different results:\n  %s\n  %s", dbn, a, b)
		}
	}
}

// TestWriteDetBaseline dumps the main experiment figures to DET_OUT, as a
// manual harness for comparing figure output across refactors:
//
//	DET_OUT=/tmp/a.txt go test -run TestWriteDetBaseline .
func TestWriteDetBaseline(t *testing.T) {
	out := os.Getenv("DET_OUT")
	if out == "" {
		t.Skip("set DET_OUT")
	}
	scale := experiment.Scale{PublishCount: 6, SpawnFactor: 6.0 / 180.0, Label: "bench"}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fig3, fig4, _ := experiment.Fig3And4(scale)
	fmt.Fprintf(f, "%v\n%v\n", fig3, fig4)
	r := experiment.RunNaradaScale(scale)
	fmt.Fprintf(f, "%v\n%v\n%v\n%v\n", experiment.Fig6(r), experiment.Fig7(r), experiment.Fig8(r), experiment.Fig9(r))
	f10, _ := experiment.Fig10(scale)
	fmt.Fprintf(f, "%v\n", f10)
	rg := experiment.RunRGMAScale(scale)
	fmt.Fprintf(f, "%v\n%v\n%v\n%v\n", experiment.Fig11(rg), experiment.Fig12(rg), experiment.Fig13(rg), experiment.Fig14(rg))
}
