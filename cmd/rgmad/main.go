// Command rgmad serves the R-GMA virtual database over HTTP, the
// transport the original gLite implementation used. Producers publish
// tuples with SQL INSERT statements and consumers poll continuous,
// latest or history SELECT queries.
//
// Usage:
//
//	rgmad [-listen :8088]
//
// Try it:
//
//	curl -X POST localhost:8088/schema/createTable \
//	  -d '{"sql":"CREATE TABLE generator (genid INTEGER PRIMARY KEY, power DOUBLE PRECISION)"}'
//	curl -X POST localhost:8088/producer/create -d '{"table":"generator"}'
//	curl -X POST localhost:8088/producer/insert \
//	  -d '{"producer":1,"sql":"INSERT INTO generator (genid, power) VALUES (1, 480.5)"}'
//	curl -X POST localhost:8088/consumer/create \
//	  -d '{"query":"SELECT * FROM generator","type":"latest"}'
//	curl 'localhost:8088/consumer/pop?id=2'
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"

	"gridmon/internal/rgmahttp"
)

func main() {
	listen := flag.String("listen", ":8088", "HTTP listen address")
	flag.Parse()

	srv := rgmahttp.NewServer()
	addr, err := srv.ListenAndServe(*listen)
	if err != nil {
		log.Fatalf("rgmad: %v", err)
	}
	log.Printf("rgmad listening on %s", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Print("rgmad: shutting down")
	_ = srv.Close()
}
