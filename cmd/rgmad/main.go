// Command rgmad serves the R-GMA virtual database over two transports
// that share one sharded core: HTTP (the request/response binding the
// original gLite implementation used, consumers poll) and a persistent
// binary protocol on a second port (producers pipeline batched INSERT
// frames, continuous consumers receive tuples by server push).
// Producers publish tuples with SQL INSERT statements and consumers run
// continuous, latest or history SELECT queries; a tuple inserted on
// either port is visible to consumers on both.
//
// Usage:
//
//	rgmad [-listen :8088] [-listen-bin :8089] [-shards 0] [-serial] [-stats 1m]
//	      [-data-dir DIR] [-fsync] [-locked-read] [-pprof]
//
// By default the service core is sharded across the CPUs (inserts into
// different producers and pops on different consumers run in parallel),
// and the insert/pop read paths are lock-free: they route through a
// copy-on-write snapshot of the per-table indexes instead of taking the
// table shard's lock. -locked-read restores lock-held reads as an A/B
// baseline, -serial restores the seed's single global mutex, -shards
// pins the lock-domain count — the same flags naradad exposes for the
// broker core. -pprof mounts net/http/pprof under /debug/pprof/ on the
// HTTP port and enables mutex profiling, so read-path contention can be
// measured on a live daemon (see README "Concurrency architecture").
// -listen-bin "" disables the binary port. The daemon stops cleanly on
// SIGINT or SIGTERM (containerized runs send the latter).
//
// -data-dir makes the core's durable state — table schemas, producers
// with their retained tuples, polling consumers — survive restarts: a
// segmented write-ahead log under DIR is replayed before either port
// serves, and a clean shutdown snapshots and marks the log so the next
// start skips the replay scan. -fsync additionally syncs every group
// commit, so an acknowledged INSERT survives power loss. Without
// -data-dir the core is memory-only, exactly as before. WAL counters
// appear under "wal" in /stats and in the binary stats RPC.
//
// Try it:
//
//	curl -X POST localhost:8088/schema/createTable \
//	  -d '{"sql":"CREATE TABLE generator (genid INTEGER PRIMARY KEY, power DOUBLE PRECISION)"}'
//	curl -X POST localhost:8088/producer/create -d '{"table":"generator"}'
//	curl -X POST localhost:8088/producer/insert \
//	  -d '{"producer":1,"sql":"INSERT INTO generator (genid, power) VALUES (1, 480.5)"}'
//	curl -X POST localhost:8088/consumer/create \
//	  -d '{"query":"SELECT * FROM generator","type":"latest"}'
//	curl 'localhost:8088/consumer/pop?id=2'
//	curl localhost:8088/stats
//
// and drive the binary port with rgmaload -transport bin -server localhost:8089.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gridmon/internal/rgmabin"
	"gridmon/internal/rgmahttp"
	"gridmon/internal/rgmawal"
	"gridmon/internal/wal"
	"gridmon/internal/walfs"
)

func main() {
	listen := flag.String("listen", ":8088", "HTTP listen address")
	listenBin := flag.String("listen-bin", ":8089", "binary transport listen address (empty disables)")
	shards := flag.Int("shards", 0, "lock-domain shard count (0 = one per CPU)")
	serial := flag.Bool("serial", false, "serialize every request behind one global mutex (pre-shard baseline)")
	statsEvery := flag.Duration("stats", time.Minute, "stats logging interval (0 disables)")
	dataDir := flag.String("data-dir", "", "persist schemas, producers and tuples to a write-ahead log under this directory (empty = memory-only)")
	fsync := flag.Bool("fsync", false, "fsync every WAL group commit (durable against power loss, not just crashes)")
	lockedRead := flag.Bool("locked-read", false, "take the table-shard lock on the insert/pop read paths (pre-snapshot baseline)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ and enable mutex profiling")
	flag.Parse()

	if *pprofOn {
		runtime.SetMutexProfileFraction(5)
	}
	srv := rgmahttp.NewServerWith(rgmahttp.Config{
		Shards:         *shards,
		Serial:         *serial,
		LockedReadPath: *lockedRead,
		Pprof:          *pprofOn,
	})

	// With -data-dir, recover the core before either port serves: the
	// core is quiescent until ListenAndServe below.
	var pers *rgmawal.Persister
	if *dataDir != "" {
		fsys, err := walfs.Disk(*dataDir)
		if err != nil {
			log.Fatalf("rgmad: %v", err)
		}
		p, info, err := rgmawal.Open(fsys, wal.Options{Fsync: *fsync}, srv.Core())
		if err != nil {
			log.Fatalf("rgmad: wal: %v", err)
		}
		pers = p
		srv.SetWALStats(pers.Stats)
		log.Printf("rgmad recovered %s: %d records, %d segments, snapshot gen %d, %d torn bytes dropped, clean=%v",
			*dataDir, info.Records, info.Segments, info.SnapshotGen, info.TruncatedTail, info.CleanStart)
	}

	addr, err := srv.ListenAndServe(*listen)
	if err != nil {
		log.Fatalf("rgmad: %v", err)
	}
	mode := "sharded"
	if *serial {
		mode = "serial"
	}
	readPath := "snapshot reads"
	if *lockedRead {
		readPath = "locked reads"
	}
	log.Printf("rgmad listening on %s (%s, %s, %d shards)", addr, mode, readPath, srv.NumShards())

	var binSrv *rgmabin.Server
	if *listenBin != "" {
		binSrv = rgmabin.NewServer(srv.Core(), rgmabin.Config{})
		if pers != nil {
			binSrv.SetWALStats(pers.Stats)
		}
		srv.SetBinEgress(func() rgmahttp.BinEgressStats {
			es := binSrv.EgressStats()
			return rgmahttp.BinEgressStats{
				WriterFlushes:  es.WriterFlushes,
				WriterFrames:   es.WriterFrames,
				MergedPushes:   es.MergedPushes,
				FramesPerFlush: es.FramesPerFlush,
			}
		})
		binAddr, err := binSrv.ListenAndServe(*listenBin)
		if err != nil {
			log.Fatalf("rgmad: binary transport: %v", err)
		}
		log.Printf("rgmad binary transport on %s (same core)", binAddr)
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := srv.StatsSnapshot()
				log.Printf("stats: producers=%d consumers=%d inserts=%d pops=%d streamed=%d popped=%d dropped=%d",
					s.Producers, s.Consumers, s.Inserts, s.Pops, s.TuplesStreamed, s.TuplesPopped, s.TuplesDropped)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Printf("rgmad: shutting down (%v)", got)
	if binSrv != nil {
		_ = binSrv.Close()
	}
	_ = srv.Close()
	if pers != nil {
		// Both transports are closed; give in-flight request goroutines a
		// moment to drain so the snapshot dump runs against a quiescent
		// core.
		time.Sleep(200 * time.Millisecond)
		if err := pers.CloseClean(); err != nil {
			log.Printf("rgmad: wal close: %v", err)
		}
	}
}
