// Command rgmad serves the R-GMA virtual database over HTTP, the
// transport the original gLite implementation used. Producers publish
// tuples with SQL INSERT statements and consumers poll continuous,
// latest or history SELECT queries.
//
// Usage:
//
//	rgmad [-listen :8088] [-shards 0] [-serial] [-stats 1m]
//
// By default the service core is sharded across the CPUs (inserts into
// different producers and pops on different consumers run in parallel);
// -serial restores the seed's single global mutex as an A/B baseline
// for load tests, -shards pins the lock-domain count — the same flags
// naradad exposes for the broker core. The daemon stops cleanly on
// SIGINT or SIGTERM (containerized runs send the latter).
//
// Try it:
//
//	curl -X POST localhost:8088/schema/createTable \
//	  -d '{"sql":"CREATE TABLE generator (genid INTEGER PRIMARY KEY, power DOUBLE PRECISION)"}'
//	curl -X POST localhost:8088/producer/create -d '{"table":"generator"}'
//	curl -X POST localhost:8088/producer/insert \
//	  -d '{"producer":1,"sql":"INSERT INTO generator (genid, power) VALUES (1, 480.5)"}'
//	curl -X POST localhost:8088/consumer/create \
//	  -d '{"query":"SELECT * FROM generator","type":"latest"}'
//	curl 'localhost:8088/consumer/pop?id=2'
//	curl localhost:8088/stats
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gridmon/internal/rgmahttp"
)

func main() {
	listen := flag.String("listen", ":8088", "HTTP listen address")
	shards := flag.Int("shards", 0, "lock-domain shard count (0 = one per CPU)")
	serial := flag.Bool("serial", false, "serialize every request behind one global mutex (pre-shard baseline)")
	statsEvery := flag.Duration("stats", time.Minute, "stats logging interval (0 disables)")
	flag.Parse()

	srv := rgmahttp.NewServerWith(rgmahttp.Config{Shards: *shards, Serial: *serial})
	addr, err := srv.ListenAndServe(*listen)
	if err != nil {
		log.Fatalf("rgmad: %v", err)
	}
	mode := "sharded"
	if *serial {
		mode = "serial"
	}
	log.Printf("rgmad listening on %s (%s, %d shards)", addr, mode, srv.NumShards())

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := srv.StatsSnapshot()
				log.Printf("stats: producers=%d consumers=%d inserts=%d pops=%d streamed=%d popped=%d",
					s.Producers, s.Consumers, s.Inserts, s.Pops, s.TuplesStreamed, s.TuplesPopped)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Printf("rgmad: shutting down (%v)", got)
	_ = srv.Close()
}
