// Command rgmaload load-tests a live rgmad server, the R-GMA
// counterpart of gridpub's load-test mode: parallel producer
// connections publish SQL INSERTs at a controlled per-connection rate,
// spread across several tables so the inserts land on different table
// shards, while optional continuous consumers observe the stream.
//
// Usage:
//
//	rgmaload [-server localhost:8088] [-transport http|bin] [-conns 8]
//	         [-rate 100] [-tables 8] [-count 1000] [-batch 1]
//	         [-consumers 0] [-poll 100ms]
//
// -transport selects the wire protocol. http is the original gLite-style
// request/response binding: one POST per insert, consumers poll every
// -poll (the paper's 100 ms subscriber loop). bin is the persistent
// binary transport: producers pipeline -batch INSERT statements per
// frame over one connection, and continuous consumers receive tuples by
// server push the moment they are inserted — no polling at all, so
// -poll is ignored. Point -server at the matching rgmad port (rgmad
// -listen for http, rgmad -listen-bin for bin).
//
// Example — 8 parallel producers at 100 inserts/s each (0 = as fast as
// possible) round-robin onto load0 … load7, with one continuous
// consumer per table:
//
//	rgmaload -transport bin -server localhost:8089 \
//	         -conns 8 -rate 100 -tables 8 -count 1000 -batch 16 -consumers 8
//
// It reports the aggregate insert throughput achieved, the
// p50/p95/p99/max latency of the acknowledged operations (each HTTP
// insert request; each pipelined batch flush on bin) and, when
// consumers run, the tuples they observed. Drive rgmad once with
// -transport http and once with bin to measure the push transport's
// gain on your hardware.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gridmon/internal/latency"
	"gridmon/internal/rgmabin"
	"gridmon/internal/rgmahttp"
	"gridmon/internal/sqlmini"
)

// producerSession is one worker's handle on the server, whichever
// transport carries it. flush pushes out any partial batch (a no-op
// over HTTP, which has no batching). Each transport records its acked
// operation into the worker's latency recorder: HTTP times every
// insert request, bin times every batch flush.
type producerSession struct {
	send  func(sql string) error
	flush func() error
	close func() error
}

func main() {
	server := flag.String("server", "localhost:8088", "rgmad address (the HTTP port for -transport http, the binary port for bin)")
	transport := flag.String("transport", "http", "wire protocol: http (request/response, polling consumers) or bin (persistent binary, push consumers)")
	conns := flag.Int("conns", 8, "parallel producer connections")
	rate := flag.Float64("rate", 0, "per-connection insert rate in tuples/s (0 = full speed)")
	tables := flag.Int("tables", 8, "spread producers across N tables (load0 ... loadN-1)")
	count := flag.Int("count", 1000, "inserts per connection (0 = run until interrupted)")
	batch := flag.Int("batch", 1, "INSERT statements per frame on the bin transport (http always sends one per request)")
	consumers := flag.Int("consumers", 0, "continuous consumers (one per table, round-robin)")
	poll := flag.Duration("poll", 100*time.Millisecond, "consumer poll interval for -transport http (bin consumers are push-fed)")
	flag.Parse()

	if *tables < 1 {
		*tables = 1
	}
	if *batch < 1 {
		*batch = 1
	}
	tableName := func(i int) string { return fmt.Sprintf("load%d", i%*tables) }

	// Transport bindings. Each branch fills in the same four hooks so
	// the load loop below is transport-blind.
	var (
		createTable   func(sql string) error
		newProducer   func(w int, table string, rec *latency.Recorder) (producerSession, error)
		startConsumer func(i int, popped *atomic.Int64) (stop func(), err error)
		serverStats   func()
	)
	switch *transport {
	case "http":
		c := rgmahttp.NewClient(*server)
		createTable = c.CreateTable
		newProducer = func(w int, table string, rec *latency.Recorder) (producerSession, error) {
			p, err := c.CreatePrimaryProducer(table, 30*time.Second, time.Minute)
			if err != nil {
				return producerSession{}, err
			}
			return producerSession{
				send: func(sql string) error {
					t0 := time.Now()
					err := p.Insert(sql)
					if err == nil {
						rec.Record(time.Since(t0))
					}
					return err
				},
				flush: func() error { return nil },
				close: p.Close,
			}, nil
		}
		startConsumer = func(i int, popped *atomic.Int64) (func(), error) {
			cons, err := c.CreateConsumer(fmt.Sprintf("SELECT * FROM %s", tableName(i)), "continuous")
			if err != nil {
				return nil, err
			}
			done := make(chan struct{})
			finished := make(chan struct{})
			go func() {
				defer close(finished)
				defer func() { _ = cons.Close() }() // leave no standing consumer on the server
				tick := time.NewTicker(*poll)
				defer tick.Stop()
				for {
					select {
					case <-done:
						// Final drain so late inserts are counted.
						if tuples, err := cons.Pop(); err == nil {
							popped.Add(int64(len(tuples)))
						}
						return
					case <-tick.C:
						tuples, err := cons.Pop()
						if err != nil {
							log.Printf("rgmaload: pop: %v", err)
							return
						}
						popped.Add(int64(len(tuples)))
					}
				}
			}()
			return func() { close(done); <-finished }, nil
		}
		serverStats = func() {
			if st, err := c.Stats(); err == nil {
				log.Printf("rgmaload: server stats: %+v", st)
			}
		}
	case "bin":
		control, err := rgmabin.Dial(*server)
		if err != nil {
			log.Fatalf("rgmaload: dial %s: %v", *server, err)
		}
		defer control.Close()
		createTable = control.CreateTable
		newProducer = func(w int, table string, rec *latency.Recorder) (producerSession, error) {
			// Each worker gets its own connection so -conns measures
			// genuinely parallel binary sessions, like HTTP's pooled
			// sockets.
			pc, err := rgmabin.Dial(*server)
			if err != nil {
				return producerSession{}, err
			}
			p, err := pc.CreatePrimaryProducer(table, 30*time.Second, time.Minute)
			if err != nil {
				_ = pc.Close()
				return producerSession{}, err
			}
			pending := make([]string, 0, *batch)
			flush := func() error {
				if len(pending) == 0 {
					return nil
				}
				t0 := time.Now()
				err := p.InsertBatch(pending)
				if err == nil {
					rec.Record(time.Since(t0))
				}
				pending = pending[:0]
				return err
			}
			return producerSession{
				send: func(sql string) error {
					pending = append(pending, sql)
					if len(pending) < *batch {
						return nil
					}
					return flush()
				},
				flush: flush,
				close: func() error {
					err := p.Close()
					_ = pc.Close()
					return err
				},
			}, nil
		}
		startConsumer = func(i int, popped *atomic.Int64) (func(), error) {
			// Push-fed: the server delivers tuples as they are
			// inserted; the callback just counts them.
			cons, err := control.CreateConsumer(
				fmt.Sprintf("SELECT * FROM %s", tableName(i)), "continuous",
				func(tuples []rgmabin.PoppedTuple) { popped.Add(int64(len(tuples))) })
			if err != nil {
				return nil, err
			}
			return func() {
				// Grace period: pushes still in flight after the last
				// insert ack should be counted before we unsubscribe.
				time.Sleep(200 * time.Millisecond)
				_ = cons.Close()
			}, nil
		}
		serverStats = func() {} // stats endpoint is HTTP-only
	default:
		log.Fatalf("rgmaload: unknown -transport %q (want http or bin)", *transport)
	}

	schema := &sqlmini.Table{Columns: []sqlmini.Column{
		{Name: "genid", Type: sqlmini.TInteger, Primary: true},
		{Name: "seq", Type: sqlmini.TInteger},
		{Name: "power", Type: sqlmini.TDouble},
		{Name: "site", Type: sqlmini.TChar, Len: 20},
	}}
	for i := 0; i < *tables; i++ {
		sql := fmt.Sprintf("CREATE TABLE %s (genid INTEGER PRIMARY KEY, seq INTEGER, power DOUBLE PRECISION, site CHAR(20))", tableName(i))
		if err := createTable(sql); err != nil {
			log.Fatalf("rgmaload: create table: %v", err)
		}
	}

	var popped atomic.Int64
	stops := make([]func(), 0, *consumers)
	for i := 0; i < *consumers; i++ {
		stop, err := startConsumer(i, &popped)
		if err != nil {
			log.Fatalf("rgmaload: create consumer: %v", err)
		}
		stops = append(stops, stop)
	}

	var sent, failed atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	recs := make([]*latency.Recorder, *conns)
	for w := 0; w < *conns; w++ {
		recs[w] = latency.NewRecorder(0)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tab := *schema
			tab.Name = tableName(w)
			p, err := newProducer(w, tab.Name, recs[w])
			if err != nil {
				log.Printf("conn %d: %v", w, err)
				failed.Add(1)
				return
			}
			defer func() { _ = p.close() }()
			var tick <-chan time.Time
			if *rate > 0 {
				interval := time.Duration(float64(time.Second) / *rate)
				if interval <= 0 {
					interval = time.Nanosecond // absurd -rate: full speed
				}
				t := time.NewTicker(interval)
				defer t.Stop()
				tick = t.C
			}
			for seq := int64(1); *count == 0 || seq <= int64(*count); seq++ {
				row := sqlmini.Row{
					sqlmini.IntV(int64(w)),
					sqlmini.IntV(seq),
					sqlmini.FloatV(480.5),
					sqlmini.StringV(fmt.Sprintf("site-%04d", w)),
				}
				if err := p.send(sqlmini.FormatInsert(&tab, row)); err != nil {
					log.Printf("conn %d: insert: %v", w, err)
					failed.Add(1)
					return
				}
				sent.Add(1)
				if tick != nil {
					<-tick
				}
			}
			if err := p.flush(); err != nil {
				log.Printf("conn %d: flush: %v", w, err)
				failed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, stop := range stops {
		stop()
	}

	n := sent.Load()
	log.Printf("rgmaload: %d inserts over %d conns on %d tables in %v (%.0f inserts/s aggregate, transport %s)",
		n, *conns, *tables, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), *transport)
	all := latency.NewRecorder(0)
	for _, r := range recs {
		all.Merge(r)
	}
	op := "insert round trip"
	if *transport == "bin" {
		op = fmt.Sprintf("batch flush round trip (batch %d)", *batch)
	}
	log.Printf("rgmaload: %s latency: %v", op, all.Summarize())
	if *consumers > 0 {
		log.Printf("rgmaload: %d consumers observed %d tuples", *consumers, popped.Load())
	}
	if failed.Load() > 0 {
		log.Printf("rgmaload: %d connections failed (producer create or mid-run insert)", failed.Load())
	}
	serverStats()
	// A bounded run that lost inserts must not look like a clean one to
	// scripts: exit non-zero unless every planned insert was sent and
	// every batch flushed.
	if failed.Load() > 0 || (*count > 0 && n != int64(*conns)*int64(*count)) {
		log.Printf("rgmaload: sent %d of %d planned inserts", n, int64(*conns)*int64(*count))
		os.Exit(1)
	}
}
