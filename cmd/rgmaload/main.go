// Command rgmaload load-tests a live rgmad server over HTTP, the R-GMA
// counterpart of gridpub's load-test mode: parallel producer
// connections publish SQL INSERTs at a controlled per-connection rate,
// spread across several tables so the inserts land on different table
// shards, while optional continuous consumers poll concurrently like
// the paper's 100 ms subscriber loop.
//
// Usage:
//
//	rgmaload [-server localhost:8088] [-conns 8] [-rate 100] [-tables 8]
//	         [-count 1000] [-consumers 0] [-poll 100ms]
//
// Example — 8 parallel producers at 100 inserts/s each (0 = as fast as
// possible) round-robin onto load0 … load7, with one continuous
// consumer per table polling every 100 ms:
//
//	rgmaload -conns 8 -rate 100 -tables 8 -count 1000 -consumers 8
//
// It reports the aggregate insert throughput achieved and, when
// consumers run, the tuples they observed. Drive rgmad once with
// -serial and once without to measure the sharded core's gain on your
// hardware.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gridmon/internal/rgmahttp"
	"gridmon/internal/sqlmini"
)

func main() {
	server := flag.String("server", "localhost:8088", "rgmad address")
	conns := flag.Int("conns", 8, "parallel producer connections")
	rate := flag.Float64("rate", 0, "per-connection insert rate in tuples/s (0 = full speed)")
	tables := flag.Int("tables", 8, "spread producers across N tables (load0 ... loadN-1)")
	count := flag.Int("count", 1000, "inserts per connection (0 = run until interrupted)")
	consumers := flag.Int("consumers", 0, "continuous consumers (one per table, round-robin)")
	poll := flag.Duration("poll", 100*time.Millisecond, "consumer poll interval (the paper's subscriber period)")
	flag.Parse()

	if *tables < 1 {
		*tables = 1
	}
	c := rgmahttp.NewClient(*server)

	schema := &sqlmini.Table{Columns: []sqlmini.Column{
		{Name: "genid", Type: sqlmini.TInteger, Primary: true},
		{Name: "seq", Type: sqlmini.TInteger},
		{Name: "power", Type: sqlmini.TDouble},
		{Name: "site", Type: sqlmini.TChar, Len: 20},
	}}
	tableName := func(i int) string { return fmt.Sprintf("load%d", i%*tables) }
	for i := 0; i < *tables; i++ {
		tab := *schema
		tab.Name = tableName(i)
		sql := fmt.Sprintf("CREATE TABLE %s (genid INTEGER PRIMARY KEY, seq INTEGER, power DOUBLE PRECISION, site CHAR(20))", tab.Name)
		if err := c.CreateTable(sql); err != nil {
			log.Fatalf("rgmaload: create table: %v", err)
		}
	}

	var popped atomic.Int64
	stopPolling := make(chan struct{})
	var pollWG sync.WaitGroup
	for i := 0; i < *consumers; i++ {
		cons, err := c.CreateConsumer(fmt.Sprintf("SELECT * FROM %s", tableName(i)), "continuous")
		if err != nil {
			log.Fatalf("rgmaload: create consumer: %v", err)
		}
		pollWG.Add(1)
		go func(cons *rgmahttp.RemoteConsumer) {
			defer pollWG.Done()
			defer func() { _ = cons.Close() }() // leave no standing consumer on the server
			tick := time.NewTicker(*poll)
			defer tick.Stop()
			for {
				select {
				case <-stopPolling:
					// Final drain so late inserts are counted.
					if tuples, err := cons.Pop(); err == nil {
						popped.Add(int64(len(tuples)))
					}
					return
				case <-tick.C:
					tuples, err := cons.Pop()
					if err != nil {
						log.Printf("rgmaload: pop: %v", err)
						return
					}
					popped.Add(int64(len(tuples)))
				}
			}
		}(cons)
	}

	var sent, failed atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tab := *schema
			tab.Name = tableName(w)
			p, err := c.CreatePrimaryProducer(tab.Name, 30*time.Second, time.Minute)
			if err != nil {
				log.Printf("conn %d: %v", w, err)
				failed.Add(1)
				return
			}
			defer func() { _ = p.Close() }()
			var tick <-chan time.Time
			if *rate > 0 {
				interval := time.Duration(float64(time.Second) / *rate)
				if interval <= 0 {
					interval = time.Nanosecond // absurd -rate: full speed
				}
				t := time.NewTicker(interval)
				defer t.Stop()
				tick = t.C
			}
			for seq := int64(1); *count == 0 || seq <= int64(*count); seq++ {
				row := sqlmini.Row{
					sqlmini.IntV(int64(w)),
					sqlmini.IntV(seq),
					sqlmini.FloatV(480.5),
					sqlmini.StringV(fmt.Sprintf("site-%04d", w)),
				}
				if err := p.InsertRow(&tab, row); err != nil {
					log.Printf("conn %d: insert: %v", w, err)
					failed.Add(1)
					return
				}
				sent.Add(1)
				if tick != nil {
					<-tick
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stopPolling)
	pollWG.Wait()

	n := sent.Load()
	log.Printf("rgmaload: %d inserts over %d conns on %d tables in %v (%.0f inserts/s aggregate)",
		n, *conns, *tables, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	if *consumers > 0 {
		log.Printf("rgmaload: %d consumers popped %d tuples", *consumers, popped.Load())
	}
	if failed.Load() > 0 {
		log.Printf("rgmaload: %d connections failed (producer create or mid-run insert)", failed.Load())
	}
	if st, err := c.Stats(); err == nil {
		log.Printf("rgmaload: server stats: %+v", st)
	}
	// A bounded run that lost inserts must not look like a clean one to
	// scripts: exit non-zero unless every planned insert was sent.
	if *count > 0 && n != int64(*conns)*int64(*count) {
		log.Printf("rgmaload: sent %d of %d planned inserts", n, int64(*conns)*int64(*count))
		os.Exit(1)
	}
}
