// Command gridpub simulates power generators against a real naradad
// broker: each generator publishes the paper's monitoring MapMessage on a
// topic at a fixed period.
//
// Usage:
//
//	gridpub [-broker localhost:7672] [-topic power.monitoring]
//	        [-generators 10] [-period 10s] [-count 0]
package main

import (
	"flag"
	"log"
	"sync"
	"time"

	"gridmon/internal/gridgen"
	"gridmon/internal/jms"
	"gridmon/internal/message"
)

func main() {
	addr := flag.String("broker", "localhost:7672", "broker address")
	topic := flag.String("topic", "power.monitoring", "topic to publish on")
	generators := flag.Int("generators", 10, "number of simulated generators")
	period := flag.Duration("period", 10*time.Second, "publish period per generator")
	count := flag.Int("count", 0, "messages per generator (0 = run until interrupted)")
	sync_ := flag.Bool("sync", false, "wait for broker acknowledgement per publish")
	flag.Parse()

	var wg sync.WaitGroup
	for g := 0; g < *generators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := jms.Dial(*addr, "gridpub")
			if err != nil {
				log.Printf("generator %d: %v", g, err)
				return
			}
			defer conn.Close()
			seq := int64(0)
			for {
				seq++
				m := gridgen.MonitoringMessage(g, seq)
				m.Dest = message.Topic(*topic)
				var err error
				if *sync_ {
					err = conn.PublishSync(m)
				} else {
					err = conn.Publish(m)
				}
				if err != nil {
					log.Printf("generator %d: publish: %v", g, err)
					return
				}
				if *count > 0 && seq >= int64(*count) {
					return
				}
				time.Sleep(*period)
			}
		}(g)
	}
	wg.Wait()
	log.Printf("gridpub: all generators finished")
}
