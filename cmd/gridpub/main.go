// Command gridpub simulates power generators against a real naradad
// broker: each generator publishes the paper's monitoring MapMessage on a
// topic at a fixed period.
//
// Usage:
//
//	gridpub [-broker localhost:7672] [-topic power.monitoring]
//	        [-generators 10] [-period 10s] [-count 0]
//
// Load-test mode drives the sharded server from parallel connections at
// a controlled aggregate rate — spread across several topics so the
// publishes land on different destination shards:
//
//	gridpub -conns 8 -rate 100 -topics 8 -count 10000
//
// runs 8 parallel connections, each publishing 100 msg/s (0 = as fast
// as possible) round-robin onto power.monitoring.0 … power.monitoring.7,
// and reports the aggregate throughput achieved plus per-publish
// latency percentiles (p50/p95/p99/max). With -sync each sample is the
// full publish→broker-acknowledgement round trip; without it, the time
// to hand the message to the connection's writer (local enqueue).
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"gridmon/internal/gridgen"
	"gridmon/internal/jms"
	"gridmon/internal/latency"
	"gridmon/internal/message"
)

func main() {
	addr := flag.String("broker", "localhost:7672", "broker address")
	topic := flag.String("topic", "power.monitoring", "topic to publish on")
	generators := flag.Int("generators", 10, "number of simulated generators")
	period := flag.Duration("period", 10*time.Second, "publish period per generator")
	count := flag.Int("count", 0, "messages per generator/connection (0 = run until interrupted)")
	sync_ := flag.Bool("sync", false, "wait for broker acknowledgement per publish")
	conns := flag.Int("conns", 0, "load-test mode: number of parallel connections (0 = generator mode)")
	rate := flag.Float64("rate", 0, "load-test mode: per-connection publish rate in msg/s (0 = full speed)")
	topics := flag.Int("topics", 1, "load-test mode: spread publishes across N topics (topic.0 ... topic.N-1)")
	flag.Parse()

	if *conns > 0 {
		loadTest(*addr, *topic, *conns, *topics, *count, *rate, *sync_)
		return
	}

	var wg sync.WaitGroup
	recs := make([]*latency.Recorder, *generators)
	for g := 0; g < *generators; g++ {
		recs[g] = latency.NewRecorder(0)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := jms.Dial(*addr, "gridpub")
			if err != nil {
				log.Printf("generator %d: %v", g, err)
				return
			}
			defer conn.Close()
			seq := int64(0)
			for {
				seq++
				m := gridgen.MonitoringMessage(g, seq)
				m.Dest = message.Topic(*topic)
				var err error
				t0 := time.Now()
				if *sync_ {
					err = conn.PublishSync(m)
				} else {
					err = conn.Publish(m)
				}
				if err != nil {
					log.Printf("generator %d: publish: %v", g, err)
					return
				}
				recs[g].Record(time.Since(t0))
				if *count > 0 && seq >= int64(*count) {
					return
				}
				time.Sleep(*period)
			}
		}(g)
	}
	wg.Wait()
	log.Printf("gridpub: all generators finished")
	logLatency(recs, *sync_)
}

// logLatency merges the workers' recorders (after they have joined) and
// prints the per-publish percentile summary.
func logLatency(recs []*latency.Recorder, syncMode bool) {
	all := latency.NewRecorder(0)
	for _, r := range recs {
		all.Merge(r)
	}
	kind := "publish enqueue"
	if syncMode {
		kind = "publish-ack round trip"
	}
	log.Printf("gridpub: %s latency: %v", kind, all.Summarize())
}

// loadTest runs nConns parallel connections, each publishing at the
// given per-connection rate, cycling over nTopics topics so the sharded
// server spreads the load across destination shards.
func loadTest(addr, topic string, nConns, nTopics, count int, rate float64, syncMode bool) {
	if nTopics < 1 {
		nTopics = 1
	}
	var sent, failed atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	recs := make([]*latency.Recorder, nConns)
	for c := 0; c < nConns; c++ {
		recs[c] = latency.NewRecorder(0)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := jms.Dial(addr, fmt.Sprintf("gridpub-load-%d", c))
			if err != nil {
				log.Printf("conn %d: %v", c, err)
				failed.Add(1)
				return
			}
			defer conn.Close()
			var tick <-chan time.Time
			if rate > 0 {
				interval := time.Duration(float64(time.Second) / rate)
				if interval <= 0 {
					interval = time.Nanosecond // absurd -rate: full speed
				}
				t := time.NewTicker(interval)
				defer t.Stop()
				tick = t.C
			}
			for seq := int64(1); count == 0 || seq <= int64(count); seq++ {
				m := gridgen.MonitoringMessage(c, seq)
				if nTopics > 1 {
					m.Dest = message.Topic(fmt.Sprintf("%s.%d", topic, (c+int(seq))%nTopics))
				} else {
					m.Dest = message.Topic(topic)
				}
				var err error
				t0 := time.Now()
				if syncMode {
					err = conn.PublishSync(m)
				} else {
					err = conn.Publish(m)
				}
				if err != nil {
					log.Printf("conn %d: publish: %v", c, err)
					return
				}
				recs[c].Record(time.Since(t0))
				sent.Add(1)
				if tick != nil {
					<-tick
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	n := sent.Load()
	log.Printf("gridpub: load test done: %d msgs over %d conns on %d topics in %v (%.0f msg/s aggregate)",
		n, nConns, nTopics, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	logLatency(recs, syncMode)
	if failed.Load() > 0 {
		log.Printf("gridpub: %d connections failed to dial", failed.Load())
	}
}
