// Command naradad runs the NaradaBrokering-style message broker on real
// TCP. It speaks the same wire protocol the simulator validates, so
// anything measured in the reproduction holds for this daemon.
//
// Usage:
//
//	naradad [-listen :7672] [-id broker-1] [-max-conn-mem 0]
//	        [-shards 0] [-serial]
//
// By default the broker core is sharded across the CPUs (publishes to
// different topics run in parallel); -serial restores the single
// event-loop dispatch as an A/B baseline for load tests, -shards pins
// the destination-shard count.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"gridmon/internal/broker"
	"gridmon/internal/jms"
)

func main() {
	listen := flag.String("listen", ":7672", "TCP listen address")
	id := flag.String("id", "naradad", "broker identifier")
	maxConnMem := flag.Int64("max-conn-mem", 0, "per-connection memory budget in bytes (0 = unlimited); reproduces the paper's admission cliff")
	statsEvery := flag.Duration("stats", time.Minute, "stats logging interval (0 disables)")
	shards := flag.Int("shards", 0, "destination shard count (0 = one per CPU)")
	serial := flag.Bool("serial", false, "single event-loop dispatch (pre-shard baseline)")
	flag.Parse()

	cfg := broker.DefaultConfig(*id)
	cfg.Shards = *shards
	cfg.SerialCore = *serial
	srv, err := jms.ListenAndServe(*listen, jms.ServerConfig{
		Broker:        cfg,
		MaxConnMemory: *maxConnMem,
	})
	if err != nil {
		log.Fatalf("naradad: %v", err)
	}
	log.Printf("naradad %q listening on %s", *id, srv.Addr())

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := srv.Stats()
				log.Printf("stats: conns=%d (peak %d) published=%d delivered=%d acked=%d refused=%d",
					s.Connections, s.PeakConnections, s.Published, s.Delivered, s.Acked, s.RefusedConns)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println()
	log.Print("naradad: shutting down")
	srv.Close()
}
