// Command naradad runs the NaradaBrokering-style message broker on real
// TCP. It speaks the same wire protocol the simulator validates, so
// anything measured in the reproduction holds for this daemon.
//
// Usage:
//
//	naradad [-listen :7672] [-id broker-1] [-max-conn-mem 0]
//	        [-shards 0] [-serial] [-locked-read] [-data-dir DIR] [-fsync]
//	        [-routing broadcast|tree] [-peer host:port]...
//	        [-stats-listen :7680] [-pprof]
//
// By default the broker core is sharded across the CPUs (publishes to
// different topics run in parallel) and topic routing is lock-free: a
// publish reads a copy-on-write snapshot of the subscriber index
// without taking its shard's lock. -locked-read restores lock-held
// routing as an A/B baseline, -serial restores the single event-loop
// dispatch, -shards pins the destination-shard count. -pprof mounts
// net/http/pprof under /debug/pprof/ on the stats listener (requires
// -stats-listen) and enables mutex profiling, so routing-path
// contention can be measured on a live daemon; the shard-lock wait
// counters appear in GET /stats either way.
//
// -data-dir makes the broker's durable state — durable subscriptions,
// their disconnected backlogs and queue backlogs — survive restarts: a
// segmented write-ahead log under DIR is replayed before the listener
// accepts, and a clean shutdown (SIGINT/SIGTERM) snapshots and marks
// the log so the next start skips the replay scan. -fsync additionally
// syncs every group commit, making an acknowledged publish durable
// against power loss, not just process death. Without -data-dir the
// broker is memory-only, exactly as before.
//
// Several naradad processes form the paper's Distributed Broker Network
// over real TCP: give every daemon the same -routing mode and point
// each non-root broker at its parent with -peer (repeatable; configure
// each link on exactly one of its ends). A three-broker tree:
//
//	naradad -listen :7771 -id b1 -routing tree
//	naradad -listen :7772 -id b2 -routing tree -peer localhost:7771
//	naradad -listen :7773 -id b3 -routing tree -peer localhost:7772
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gridmon/internal/broker"
	"gridmon/internal/brokernet"
	"gridmon/internal/brokerwal"
	"gridmon/internal/jms"
	"gridmon/internal/wal"
	"gridmon/internal/walfs"
)

func main() {
	listen := flag.String("listen", ":7672", "TCP listen address")
	id := flag.String("id", "naradad", "broker identifier")
	maxConnMem := flag.Int64("max-conn-mem", 0, "per-connection memory budget in bytes (0 = unlimited); reproduces the paper's admission cliff")
	statsEvery := flag.Duration("stats", time.Minute, "stats logging interval (0 disables)")
	statsListen := flag.String("stats-listen", "", "HTTP address serving GET /stats as JSON (empty disables)")
	shards := flag.Int("shards", 0, "destination shard count (0 = one per CPU)")
	serial := flag.Bool("serial", false, "single event-loop dispatch (pre-shard baseline)")
	lockedRead := flag.Bool("locked-read", false, "take the shard lock on the topic-routing read path (pre-snapshot baseline)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the stats listener (requires -stats-listen) and enable mutex profiling")
	dataDir := flag.String("data-dir", "", "persist durable subscriptions and queues to a write-ahead log under this directory (empty = memory-only)")
	fsync := flag.Bool("fsync", false, "fsync every WAL group commit (durable against power loss, not just crashes)")
	routing := flag.String("routing", "", "join a distributed broker network with this routing mode (broadcast or tree)")
	var peers []string
	flag.Func("peer", "peer broker address to link to (repeatable; requires -routing)", func(v string) error {
		peers = append(peers, v)
		return nil
	})
	flag.Parse()

	if len(peers) > 0 && *routing == "" {
		log.Fatal("naradad: -peer requires -routing (broadcast or tree)")
	}
	if *pprofOn {
		if *statsListen == "" {
			log.Fatal("naradad: -pprof requires -stats-listen (pprof mounts on the stats endpoint)")
		}
		runtime.SetMutexProfileFraction(5)
	}

	cfg := broker.DefaultConfig(*id)
	cfg.Shards = *shards
	cfg.SerialCore = *serial
	cfg.LockedReadPath = *lockedRead

	// With -data-dir, recovery runs in NewServerRestored's quiescent
	// window: the WAL is replayed into the broker before the listener
	// accepts its first connection.
	var pers *brokerwal.Persister
	var restore func(*broker.Broker) error
	if *dataDir != "" {
		fsys, err := walfs.Disk(*dataDir)
		if err != nil {
			log.Fatalf("naradad: %v", err)
		}
		restore = func(b *broker.Broker) error {
			p, info, err := brokerwal.Open(fsys, wal.Options{Fsync: *fsync}, b)
			if err != nil {
				return err
			}
			pers = p
			log.Printf("naradad %q recovered %s: %d records, %d segments, snapshot gen %d, %d torn bytes dropped, clean=%v",
				*id, *dataDir, info.Records, info.Segments, info.SnapshotGen, info.TruncatedTail, info.CleanStart)
			return nil
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("naradad: %v", err)
	}
	srv, err := jms.NewServerRestored(ln, jms.ServerConfig{
		Broker:        cfg,
		MaxConnMemory: *maxConnMem,
	}, restore)
	if err != nil {
		log.Fatalf("naradad: %v", err)
	}
	log.Printf("naradad %q listening on %s", *id, srv.Addr())

	if *routing != "" {
		mode, err := brokernet.ParseRoutingMode(*routing)
		if err != nil {
			log.Fatalf("naradad: %v", err)
		}
		if _, err := srv.JoinNetwork(mode); err != nil {
			log.Fatalf("naradad: %v", err)
		}
		log.Printf("naradad %q joined broker network (%s routing)", *id, mode)
		for _, addr := range peers {
			go maintainPeer(srv, *id, addr)
		}
	}

	if *statsListen != "" {
		go serveStats(*statsListen, srv, pers, *pprofOn)
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := srv.Stats()
				line := fmt.Sprintf("stats: conns=%d (peak %d) published=%d delivered=%d acked=%d forwarded-out=%d forwarded-in=%d refused=%d",
					s.Connections, s.PeakConnections, s.Published, s.Delivered, s.Acked, s.ForwardedOut, s.ForwardedIn, s.RefusedConns)
				if pers != nil {
					w := pers.Stats()
					line += fmt.Sprintf(" wal: records=%d bytes=%d fsyncs=%d snapshots=%d",
						w.RecordsAppended, w.BytesLogged, w.Fsyncs, w.Snapshots)
				}
				log.Print(line)
			}
		}()
	}

	// SIGTERM alongside SIGINT: containerized runs (docker stop,
	// Kubernetes) send SIGTERM, and with -data-dir a signal-driven exit
	// is what installs the clean-shutdown marker.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Println()
	log.Printf("naradad: shutting down (%v)", got)
	srv.Close()
	if pers != nil {
		// Close dropped every connection; give their reader goroutines a
		// moment to finish releasing broker resources so the snapshot
		// dump runs against a quiescent core.
		time.Sleep(200 * time.Millisecond)
		if err := pers.CloseClean(); err != nil {
			log.Printf("naradad: wal close: %v", err)
		}
	}
}

// serveStats exposes the broker and WAL counters as JSON on
// GET /stats, the naradad counterpart of rgmad's HTTP stats endpoint.
// With pprofOn the net/http/pprof handlers ride on the same listener —
// the capture recipe is in the README's "Concurrency architecture"
// section.
func serveStats(addr string, srv *jms.Server, pers *brokerwal.Persister, pprofOn bool) {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		out := struct {
			broker.Stats
			// EgressFramesPerFlush is the broker-level average coalescing
			// run length (Deliver frames per batched emission);
			// TransportEgress counts the socket-level writer batching.
			EgressFramesPerFlush float64         `json:"egress_frames_per_flush"`
			TransportEgress      jms.EgressStats `json:"transport_egress"`
			WAL                  *wal.Stats      `json:"wal,omitempty"`
		}{Stats: srv.Stats(), TransportEgress: srv.EgressStats()}
		out.EgressFramesPerFlush = out.Stats.EgressFramesPerFlush()
		if pers != nil {
			ws := pers.Stats()
			out.WAL = &ws
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("naradad: stats endpoint: %v", err)
	}
}

// maintainPeer supervises one configured peer link for the daemon's
// lifetime: it dials (retrying while the peer daemon is still starting
// up — broker trees launch as independent processes) and, whenever an
// established link later dies, withdraws to the dial loop and relinks,
// so a transient TCP failure cannot permanently partition the network.
func maintainPeer(srv *jms.Server, id, addr string) {
	logged := false
	for {
		peerID, err := srv.DialPeer(addr)
		if err != nil {
			if !logged {
				log.Printf("naradad %q: peer %s not linked yet (retrying): %v", id, addr, err)
				logged = true
			}
			time.Sleep(500 * time.Millisecond)
			continue
		}
		logged = false
		log.Printf("naradad %q linked to peer %q at %s", id, peerID, addr)
		for srv.Member().HasPeer(peerID) {
			time.Sleep(time.Second)
		}
		log.Printf("naradad %q: link to peer %q at %s died, redialing", id, peerID, addr)
	}
}
