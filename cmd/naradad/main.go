// Command naradad runs the NaradaBrokering-style message broker on real
// TCP. It speaks the same wire protocol the simulator validates, so
// anything measured in the reproduction holds for this daemon.
//
// Usage:
//
//	naradad [-listen :7672] [-id broker-1] [-max-conn-mem 0]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"gridmon/internal/broker"
	"gridmon/internal/jms"
)

func main() {
	listen := flag.String("listen", ":7672", "TCP listen address")
	id := flag.String("id", "naradad", "broker identifier")
	maxConnMem := flag.Int64("max-conn-mem", 0, "per-connection memory budget in bytes (0 = unlimited); reproduces the paper's admission cliff")
	statsEvery := flag.Duration("stats", time.Minute, "stats logging interval (0 disables)")
	flag.Parse()

	srv, err := jms.ListenAndServe(*listen, jms.ServerConfig{
		Broker:        broker.DefaultConfig(*id),
		MaxConnMemory: *maxConnMem,
	})
	if err != nil {
		log.Fatalf("naradad: %v", err)
	}
	log.Printf("naradad %q listening on %s", *id, srv.Addr())

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := srv.Stats()
				log.Printf("stats: conns=%d (peak %d) published=%d delivered=%d acked=%d refused=%d",
					s.Connections, s.PeakConnections, s.Published, s.Delivered, s.Acked, s.RefusedConns)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println()
	log.Print("naradad: shutting down")
	srv.Close()
}
