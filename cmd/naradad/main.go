// Command naradad runs the NaradaBrokering-style message broker on real
// TCP. It speaks the same wire protocol the simulator validates, so
// anything measured in the reproduction holds for this daemon.
//
// Usage:
//
//	naradad [-listen :7672] [-id broker-1] [-max-conn-mem 0]
//	        [-shards 0] [-serial]
//	        [-routing broadcast|tree] [-peer host:port]...
//
// By default the broker core is sharded across the CPUs (publishes to
// different topics run in parallel); -serial restores the single
// event-loop dispatch as an A/B baseline for load tests, -shards pins
// the destination-shard count.
//
// Several naradad processes form the paper's Distributed Broker Network
// over real TCP: give every daemon the same -routing mode and point
// each non-root broker at its parent with -peer (repeatable; configure
// each link on exactly one of its ends). A three-broker tree:
//
//	naradad -listen :7771 -id b1 -routing tree
//	naradad -listen :7772 -id b2 -routing tree -peer localhost:7771
//	naradad -listen :7773 -id b3 -routing tree -peer localhost:7772
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"gridmon/internal/broker"
	"gridmon/internal/brokernet"
	"gridmon/internal/jms"
)

func main() {
	listen := flag.String("listen", ":7672", "TCP listen address")
	id := flag.String("id", "naradad", "broker identifier")
	maxConnMem := flag.Int64("max-conn-mem", 0, "per-connection memory budget in bytes (0 = unlimited); reproduces the paper's admission cliff")
	statsEvery := flag.Duration("stats", time.Minute, "stats logging interval (0 disables)")
	shards := flag.Int("shards", 0, "destination shard count (0 = one per CPU)")
	serial := flag.Bool("serial", false, "single event-loop dispatch (pre-shard baseline)")
	routing := flag.String("routing", "", "join a distributed broker network with this routing mode (broadcast or tree)")
	var peers []string
	flag.Func("peer", "peer broker address to link to (repeatable; requires -routing)", func(v string) error {
		peers = append(peers, v)
		return nil
	})
	flag.Parse()

	if len(peers) > 0 && *routing == "" {
		log.Fatal("naradad: -peer requires -routing (broadcast or tree)")
	}

	cfg := broker.DefaultConfig(*id)
	cfg.Shards = *shards
	cfg.SerialCore = *serial
	srv, err := jms.ListenAndServe(*listen, jms.ServerConfig{
		Broker:        cfg,
		MaxConnMemory: *maxConnMem,
	})
	if err != nil {
		log.Fatalf("naradad: %v", err)
	}
	log.Printf("naradad %q listening on %s", *id, srv.Addr())

	if *routing != "" {
		mode, err := brokernet.ParseRoutingMode(*routing)
		if err != nil {
			log.Fatalf("naradad: %v", err)
		}
		if _, err := srv.JoinNetwork(mode); err != nil {
			log.Fatalf("naradad: %v", err)
		}
		log.Printf("naradad %q joined broker network (%s routing)", *id, mode)
		for _, addr := range peers {
			go maintainPeer(srv, *id, addr)
		}
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				s := srv.Stats()
				log.Printf("stats: conns=%d (peak %d) published=%d delivered=%d acked=%d forwarded-out=%d forwarded-in=%d refused=%d",
					s.Connections, s.PeakConnections, s.Published, s.Delivered, s.Acked, s.ForwardedOut, s.ForwardedIn, s.RefusedConns)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println()
	log.Print("naradad: shutting down")
	srv.Close()
}

// maintainPeer supervises one configured peer link for the daemon's
// lifetime: it dials (retrying while the peer daemon is still starting
// up — broker trees launch as independent processes) and, whenever an
// established link later dies, withdraws to the dial loop and relinks,
// so a transient TCP failure cannot permanently partition the network.
func maintainPeer(srv *jms.Server, id, addr string) {
	logged := false
	for {
		peerID, err := srv.DialPeer(addr)
		if err != nil {
			if !logged {
				log.Printf("naradad %q: peer %s not linked yet (retrying): %v", id, addr, err)
				logged = true
			}
			time.Sleep(500 * time.Millisecond)
			continue
		}
		logged = false
		log.Printf("naradad %q linked to peer %q at %s", id, peerID, addr)
		for srv.Member().HasPeer(peerID) {
			time.Sleep(time.Second)
		}
		log.Printf("naradad %q: link to peer %q at %s died, redialing", id, peerID, addr)
	}
}
