// Command gridsub is the receiving program of the paper's experiments on
// real TCP: it subscribes to a topic with a JMS selector and reports
// round-trip statistics from the publishers' embedded timestamps.
//
// Usage:
//
//	gridsub [-broker localhost:7672] [-topic power.monitoring]
//	        [-selector "id<10000"] [-report 10s]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"sync"
	"time"

	"gridmon/internal/jms"
	"gridmon/internal/message"
	"gridmon/internal/metrics"
)

func main() {
	addr := flag.String("broker", "localhost:7672", "broker address")
	topic := flag.String("topic", "power.monitoring", "topic to subscribe to")
	selector := flag.String("selector", "id<10000", "JMS message selector")
	report := flag.Duration("report", 10*time.Second, "statistics reporting interval")
	flag.Parse()

	conn, err := jms.Dial(*addr, "gridsub")
	if err != nil {
		log.Fatalf("gridsub: %v", err)
	}
	defer conn.Close()

	var mu sync.Mutex
	var rtt metrics.RTT
	if _, err := conn.Subscribe(message.Topic(*topic), *selector, func(m *message.Message) {
		ms := float64(time.Now().UnixNano()-m.Timestamp) / 1e6
		mu.Lock()
		rtt.Add(ms)
		mu.Unlock()
	}); err != nil {
		log.Fatalf("gridsub: subscribe: %v", err)
	}
	log.Printf("gridsub: subscribed to %s with selector %q on %s", *topic, *selector, conn.BrokerID())

	tick := time.Tick(*report)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	for {
		select {
		case <-tick:
			mu.Lock()
			if rtt.Count() > 0 {
				log.Printf("received=%d mean=%.2fms stddev=%.2fms p99=%.2fms max=%.2fms",
					rtt.Count(), rtt.Mean(), rtt.Stddev(), rtt.Percentile(99), rtt.Max())
			} else {
				log.Printf("received=0")
			}
			mu.Unlock()
		case <-sig:
			return
		}
	}
}
