// Command gridsub is the receiving program of the paper's experiments on
// real TCP: it subscribes to a topic with a JMS selector and reports
// round-trip statistics from the publishers' embedded timestamps.
//
// Usage:
//
//	gridsub [-broker localhost:7672] [-topic power.monitoring]
//	        [-selector "id<10000"] [-durable NAME] [-report 10s]
//	        [-n 0] [-timeout 0] [-quiet]
//
// -durable NAME makes the subscription durable under that name: the
// broker stores matching messages while the subscriber is away and
// replays the backlog when a gridsub reconnects with the same name.
// Against a naradad running with -data-dir, the subscription and its
// backlog also survive broker restarts.
//
// Scripted runs (CI smoke tests, DBN topology checks) use -n to exit 0
// after exactly N messages, -timeout to exit 1 when they don't arrive in
// time, and -quiet to suppress the periodic reports:
//
//	gridsub -broker localhost:7773 -topic power -n 10 -timeout 30s -quiet
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"sync"
	"time"

	"gridmon/internal/jms"
	"gridmon/internal/message"
	"gridmon/internal/metrics"
)

func main() {
	addr := flag.String("broker", "localhost:7672", "broker address")
	topic := flag.String("topic", "power.monitoring", "topic to subscribe to")
	selector := flag.String("selector", "id<10000", "JMS message selector")
	durable := flag.String("durable", "", "durable subscription name (empty = non-durable)")
	report := flag.Duration("report", 10*time.Second, "statistics reporting interval")
	n := flag.Int64("n", 0, "exit 0 after receiving this many messages (0 = run until interrupted)")
	timeout := flag.Duration("timeout", 0, "exit 1 if -n messages have not arrived within this duration (0 = no limit)")
	quiet := flag.Bool("quiet", false, "suppress periodic reports (final summary still printed)")
	flag.Parse()

	conn, err := jms.Dial(*addr, "gridsub")
	if err != nil {
		log.Fatalf("gridsub: %v", err)
	}
	defer conn.Close()

	var mu sync.Mutex
	var rtt metrics.RTT
	done := make(chan struct{})
	var doneOnce sync.Once
	if _, err := conn.SubscribeDurable(message.Topic(*topic), *selector, *durable, func(m *message.Message) {
		ms := float64(time.Now().UnixNano()-m.Timestamp) / 1e6
		mu.Lock()
		rtt.Add(ms)
		count := rtt.Count()
		mu.Unlock()
		if *n > 0 && int64(count) >= *n {
			doneOnce.Do(func() { close(done) })
		}
	}); err != nil {
		log.Fatalf("gridsub: subscribe: %v", err)
	}
	if !*quiet {
		kind := "subscribed"
		if *durable != "" {
			kind = "durably subscribed as " + *durable
		}
		log.Printf("gridsub: %s to %s with selector %q on %s", kind, *topic, *selector, conn.BrokerID())
	}

	summary := func() {
		mu.Lock()
		defer mu.Unlock()
		if rtt.Count() > 0 {
			log.Printf("received=%d mean=%.2fms stddev=%.2fms p99=%.2fms max=%.2fms",
				rtt.Count(), rtt.Mean(), rtt.Stddev(), rtt.Percentile(99), rtt.Max())
		} else {
			log.Printf("received=0")
		}
	}

	var tick <-chan time.Time
	if !*quiet {
		tick = time.Tick(*report)
	}
	var deadline <-chan time.Time
	if *timeout > 0 {
		deadline = time.After(*timeout)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	for {
		select {
		case <-tick:
			summary()
		case <-done:
			summary()
			return
		case <-deadline:
			summary()
			mu.Lock()
			got := rtt.Count()
			mu.Unlock()
			// The nth message and the deadline can be ready in the same
			// select; a run that met its target is a success regardless
			// of which channel won. With no -n target the deadline is
			// just a run-duration limit.
			if *n > 0 && int64(got) < *n {
				log.Printf("gridsub: timeout after %v with %d/%d messages", *timeout, got, *n)
				os.Exit(1)
			}
			return
		case <-sig:
			summary()
			return
		}
	}
}
