// Command gridbench regenerates every table and figure of the paper's
// evaluation on the deterministic simulator.
//
// Usage:
//
//	gridbench [-scale quick|full] [-run all|table1|table2|table3|fig3|fig4|
//	          fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|fig15|
//	          warmup|oom|ablations]
//	gridbench contention [-benchtime 100000x] [-workers 0] [-out FILE]
//	gridbench match [-benchtime 2000x] [-selectors 1,10,100,1000] [-out FILE]
//	gridbench fanout [-benchtime 2000x] [-subs 10,100,1000] [-cpu 1,4] [-out FILE]
//
// -scale full reproduces the paper's 30-minute runs (slower); quick keeps
// the same connection counts and rates with a shorter measurement window.
// The contention subcommand measures the lock-free read path against the
// LockedReadPath baseline on live cores (see contention.go); it feeds
// BENCH_contention.json. The match subcommand measures the content-based
// matching index against the LinearMatch baseline (see match.go); it
// feeds BENCH_match.json. The fanout subcommand measures the parallel
// fan-out engine and its egress coalescing against the SerialFanout
// baseline (see fanout.go); it feeds BENCH_fanout.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gridmon/internal/experiment"
	"gridmon/internal/simbroker"
)

func main() {
	// Subcommand dispatch: `gridbench contention` measures live lock
	// contention (see contention.go) and `gridbench match` the matching
	// index (see match.go); everything else is the simulator's
	// figure/table runner.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "contention":
			contentionMain(os.Args[2:])
			return
		case "match":
			matchMain(os.Args[2:])
			return
		case "fanout":
			fanoutMain(os.Args[2:])
			return
		}
	}
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	runFlag := flag.String("run", "all", "comma-separated experiment ids (see doc comment)")
	flag.Parse()

	var scale experiment.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiment.Quick()
	case "full":
		scale = experiment.Full()
	default:
		fmt.Fprintf(os.Stderr, "gridbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*runFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := want["all"]
	sel := func(ids ...string) bool {
		if all {
			return true
		}
		for _, id := range ids {
			if want[id] {
				return true
			}
		}
		return false
	}

	start := time.Now()
	fmt.Printf("gridbench: scale=%s run=%s\n\n", scale.Label, *runFlag)

	if sel("table1") {
		fmt.Println(experiment.Table1().Render())
	}
	if sel("table2") {
		fmt.Println(experiment.Table2().Render())
	}
	if sel("fig3", "fig4") {
		fig3, fig4, _ := experiment.Fig3And4(scale)
		fmt.Println(fig3.Render())
		fmt.Println(fig4.Render())
	}
	if sel("fig6", "fig7", "fig8", "fig9") {
		r := experiment.RunNaradaScale(scale)
		fmt.Println(experiment.Fig6(r).Render())
		fmt.Println(experiment.Fig7(r).Render())
		fmt.Println(experiment.Fig8(r).Render())
		fmt.Println(experiment.Fig9(r).Render())
	}
	if sel("fig10") {
		t, _ := experiment.Fig10(scale)
		fmt.Println(t.Render())
	}
	if sel("fig11", "fig12", "fig13", "fig14") {
		r := experiment.RunRGMAScale(scale)
		fmt.Println(experiment.Fig11(r).Render())
		fmt.Println(experiment.Fig12(r).Render())
		fmt.Println(experiment.Fig13(r).Render())
		fmt.Println(experiment.Fig14(r).Render())
	}
	if sel("fig15") {
		t, _ := experiment.Fig15(scale)
		fmt.Println(t.Render())
	}
	if sel("warmup") {
		t, _ := experiment.WarmupLoss(scale)
		fmt.Println(t.Render())
	}
	if sel("oom") {
		t, _, _ := experiment.OOMCliffs(scale)
		fmt.Println(t.Render())
	}
	if sel("table3") {
		narada := experiment.RunNarada(experiment.NaradaConfig{
			Label: "narada", Connections: 500, Transport: tcp(), Scale: scale, Seed: 1001,
		})
		dbn := experiment.RunNarada(experiment.NaradaConfig{
			Label: "dbn", Connections: 500, Transport: tcp(), DBN: true, Scale: scale, Seed: 1002,
		})
		rs := experiment.RunRGMA(experiment.RGMAConfig{Label: "rgma", Connections: 200, Scale: scale, Seed: 1003})
		rd := experiment.RunRGMA(experiment.RGMAConfig{Label: "rgma-d", Connections: 200, Distributed: true, Scale: scale, Seed: 1004})
		fmt.Println(experiment.Table3(narada, dbn, rs, rd).Render())
	}
	if sel("ablations", "ablation") {
		t1, _ := experiment.AblationRouting(scale)
		fmt.Println(t1.Render())
		t2, _ := experiment.AblationAckMode(scale)
		fmt.Println(t2.Render())
		t3, _ := experiment.AblationAggregation(scale)
		fmt.Println(t3.Render())
		t4, _ := experiment.AblationPollInterval(scale)
		fmt.Println(t4.Render())
	}

	fmt.Printf("gridbench: done in %v\n", time.Since(start).Round(time.Millisecond))
}

func tcp() simbroker.Transport { return simbroker.TCP() }
