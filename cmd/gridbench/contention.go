// The contention mode measures the PR's tentpole claim directly on a
// live in-process broker and R-GMA core: with every worker hammering
// the SAME destination — the worst case for lock-held routing — the
// snapshot read path must take zero read-path shard locks per publish
// while the LockedReadPath baseline takes one, and the ns/op of both
// modes is recorded side by side. Run it as
//
//	gridbench contention [-benchtime 100000x] [-workers 4] [-cpu 1,4]
//	                     [-out BENCH_contention.json]
//
// -benchtime accepts go-bench syntax: "Nx" for a fixed operation count
// or a duration to run at least that long. -workers 0 means GOMAXPROCS;
// -cpu runs the whole matrix once per GOMAXPROCS value, the same axis
// the other BENCH_*.json files sweep. Without -out the JSON goes to
// stdout. The mode self-checks: a snapshot-mode cell with a non-zero
// read-lock rate is a regression and exits non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"gridmon/internal/broker"
	"gridmon/internal/message"
	"gridmon/internal/rgma"
	"gridmon/internal/rgmacore"
	"gridmon/internal/wire"
)

// contentionResult is one cell of BENCH_contention.json.
type contentionResult struct {
	Component      string  `json:"component"` // broker | rgmacore
	Mode           string  `json:"mode"`      // snapshot | locked
	CPUs           int     `json:"gomaxprocs"`
	Workers        int     `json:"workers"`
	Ops            int64   `json:"ops"`
	NsPerOp        float64 `json:"ns_per_op"`
	ReadLocksPerOp float64 `json:"read_locks_per_op"`
}

func contentionMain(args []string) {
	fs := flag.NewFlagSet("gridbench contention", flag.ExitOnError)
	bt := fs.String("benchtime", "100000x", "operations per cell (Nx) or minimum duration per cell")
	workers := fs.Int("workers", 4, "concurrent workers per cell (0 = GOMAXPROCS)")
	cpus := fs.String("cpu", "", "comma-separated GOMAXPROCS values to matrix over (empty = current)")
	out := fs.String("out", "", "write the JSON here (empty = stdout)")
	_ = fs.Parse(args)

	budget, err := parseBenchTime(*bt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridbench contention: %v\n", err)
		os.Exit(2)
	}
	cpuList := []int{runtime.GOMAXPROCS(0)}
	if *cpus != "" {
		if cpuList, err = parseIntList(*cpus); err != nil {
			fmt.Fprintf(os.Stderr, "gridbench contention: bad -cpu %q\n", *cpus)
			os.Exit(2)
		}
	}

	prev := runtime.GOMAXPROCS(0)
	var results []contentionResult
	for _, nCPU := range cpuList {
		runtime.GOMAXPROCS(nCPU)
		w := *workers
		if w <= 0 {
			w = nCPU
		}
		for _, locked := range []bool{false, true} {
			results = append(results, brokerContention(budget, nCPU, w, locked))
		}
		for _, locked := range []bool{false, true} {
			results = append(results, rgmaContention(budget, nCPU, w, locked))
		}
	}
	runtime.GOMAXPROCS(prev)

	writeArtifact("gridbench contention", *out,
		"read-path lock contention: copy-on-write snapshot routing vs LockedReadPath baseline",
		"All workers publish to one topic / insert into one table — the worst case for lock-held "+
			"routing. read_locks_per_op counts read-path shard-lock acquisitions (broker Stats.ReadLockAcquisitions, "+
			"rgmacore Stats.ReadLockAcquisitions): the snapshot path must show 0, the locked baseline 1 per op. "+
			"ns/op differences need real cores; on a single-CPU host the modes time-share and converge.",
		results)

	var regressions []string
	for _, r := range results {
		if r.Mode == "snapshot" && r.ReadLocksPerOp != 0 {
			regressions = append(regressions, fmt.Sprintf(
				"%s snapshot path took %.3f read locks/op (want 0)", r.Component, r.ReadLocksPerOp))
		}
	}
	failRegressions("gridbench contention", regressions)
}

// contEnv is the minimal thread-safe broker.Env for the contention
// cells: deliveries are recorded per subscriber connection so workers
// can feed acks back, exactly what a live transport does.
type contEnv struct {
	mu    sync.Mutex
	pairs []wire.Ack // one recorded (sub, tag) per entry
}

func (e *contEnv) Now() int64 { return 0 }
func (e *contEnv) Send(c broker.ConnID, f wire.Frame) {
	if d, ok := f.(*wire.Deliver); ok {
		e.mu.Lock()
		e.pairs = append(e.pairs, wire.Ack{SubID: d.SubID, Tags: []int64{d.Tag}})
		e.mu.Unlock()
		wire.PutDeliver(d)
	}
}
func (e *contEnv) CloseConn(broker.ConnID) {}
func (e *contEnv) AllocConn() error        { return nil }
func (e *contEnv) FreeConn()               {}
func (e *contEnv) Alloc(int64) error       { return nil }
func (e *contEnv) Free(int64)              {}

func brokerContention(budget benchTime, nCPU, workers int, locked bool) contentionResult {
	env := &contEnv{}
	cfg := broker.DefaultConfig("contention")
	cfg.LockedReadPath = locked
	b := broker.New(env, cfg)

	const subConn, subs = broker.ConnID(1), 16
	if err := b.OnConnOpen(subConn); err != nil {
		panic(err)
	}
	for s := 0; s < subs; s++ {
		b.OnFrame(subConn, wire.Subscribe{SubID: int64(s + 1), Dest: message.Topic("hot")})
	}
	for g := 0; g < workers; g++ {
		if err := b.OnConnOpen(broker.ConnID(100 + g)); err != nil {
			panic(err)
		}
	}
	before := b.Stats()

	var scratch sync.Pool
	ops, elapsed := runCells(budget, workers, func(g int, i int64) {
		m := message.NewText("reading")
		m.ID = fmt.Sprintf("ID:cont/%d", i)
		m.Dest = message.Topic("hot")
		m.SetProperty("id", message.Int(int32(i%100)))
		b.OnFrame(broker.ConnID(100+g), wire.Publish{Seq: i, Msg: m})
		// Feed back whatever acks have accumulated; contention on the
		// record mirrors a shared subscriber socket.
		var acks []wire.Ack
		if v := scratch.Get(); v != nil {
			acks = v.([]wire.Ack)
		}
		env.mu.Lock()
		acks = append(acks[:0], env.pairs...)
		env.pairs = env.pairs[:0]
		env.mu.Unlock()
		for _, a := range acks {
			b.OnFrame(subConn, a)
		}
		scratch.Put(acks)
	})

	after := b.Stats()
	return contentionResult{
		Component:      "broker",
		Mode:           modeName(locked),
		CPUs:           nCPU,
		Workers:        workers,
		Ops:            ops,
		NsPerOp:        float64(elapsed.Nanoseconds()) / float64(ops),
		ReadLocksPerOp: float64(after.ReadLockAcquisitions-before.ReadLockAcquisitions) / float64(ops),
	}
}

func rgmaContention(budget benchTime, nCPU, workers int, locked bool) contentionResult {
	c := rgmacore.New(rgmacore.Config{LockedReadPath: locked})
	if _, err := c.CreateTable("CREATE TABLE hot (genid INTEGER PRIMARY KEY, seq INTEGER, site CHAR(20))"); err != nil {
		panic(err)
	}
	for s := 0; s < 16; s++ {
		if _, err := c.CreateConsumer("SELECT * FROM hot", rgma.ContinuousQuery, nil); err != nil {
			panic(err)
		}
	}
	prods := make([]*rgmacore.Producer, workers)
	for g := range prods {
		p, err := c.CreateProducer("hot", 0, 0)
		if err != nil {
			panic(err)
		}
		prods[g] = p
	}
	before := c.StatsSnapshot()

	ops, elapsed := runCells(budget, workers, func(g int, i int64) {
		stmt := fmt.Sprintf("INSERT INTO hot (genid, seq, site) VALUES (%d, %d, 'cont')", i%100, i)
		if err := c.Insert(prods[g].ID(), stmt); err != nil {
			panic(err)
		}
	})

	after := c.StatsSnapshot()
	return contentionResult{
		Component:      "rgmacore",
		Mode:           modeName(locked),
		CPUs:           nCPU,
		Workers:        workers,
		Ops:            ops,
		NsPerOp:        float64(elapsed.Nanoseconds()) / float64(ops),
		ReadLocksPerOp: float64(after.ReadLockAcquisitions-before.ReadLockAcquisitions) / float64(ops),
	}
}

func modeName(locked bool) string {
	if locked {
		return "locked"
	}
	return "snapshot"
}
