// Shared scaffolding for gridbench's JSON-artifact modes (contention,
// match): benchtime parsing, the shared-counter worker driver, the
// BENCH_*.json envelope writer and the self-check reporter. Every mode
// emits the same envelope — benchmark, description, host_cpus, results
// — and exits non-zero when its self-check finds a regression, so CI
// can run any mode as a smoke test.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// benchTime is a parsed -benchtime: either a fixed op count or a
// minimum duration (whole rounds of opsPerRound run until it elapses).
type benchTime struct {
	ops int64
	dur time.Duration
}

func parseBenchTime(s string) (benchTime, error) {
	if n, ok := strings.CutSuffix(s, "x"); ok {
		ops, err := strconv.ParseInt(n, 10, 64)
		if err != nil || ops < 1 {
			return benchTime{}, fmt.Errorf("bad -benchtime %q", s)
		}
		return benchTime{ops: ops}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return benchTime{}, fmt.Errorf("bad -benchtime %q", s)
	}
	return benchTime{dur: d}, nil
}

// parseIntList parses a comma-separated list of positive ints (the -cpu
// and -selectors axes).
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad list entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// runCells drives `workers` goroutines pulling operation slots from a
// shared counter until the benchtime budget is spent, and returns the
// op count and wall time.
func runCells(budget benchTime, workers int, op func(worker int, i int64)) (ops int64, elapsed time.Duration) {
	var next, done atomic.Int64
	start := time.Now()
	deadline := start.Add(budget.dur)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				i := next.Add(1)
				if budget.ops > 0 {
					if i > budget.ops {
						return
					}
				} else if i%256 == 0 && time.Now().After(deadline) {
					return
				}
				op(g, i)
				done.Add(1)
			}
		}(g)
	}
	wg.Wait()
	return done.Load(), time.Since(start)
}

// writeArtifact marshals the standard BENCH_*.json envelope to outPath
// (stdout when empty). tool names the mode for error messages.
func writeArtifact(tool, outPath, benchmark, description string, results any) {
	buf, err := json.MarshalIndent(map[string]any{
		"benchmark":   benchmark,
		"description": description,
		"host_cpus":   runtime.NumCPU(),
		"results":     results,
	}, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if outPath == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(outPath, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		os.Exit(1)
	}
}

// failRegressions reports each self-check failure and exits non-zero if
// there were any. Runs after the artifact is written so the failing
// numbers are always inspectable.
func failRegressions(tool string, regressions []string) {
	for _, r := range regressions {
		fmt.Fprintf(os.Stderr, "%s: REGRESSION: %s\n", tool, r)
	}
	if len(regressions) > 0 {
		os.Exit(1)
	}
}
