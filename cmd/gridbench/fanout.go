// The fanout mode measures the parallel fan-out engine and its egress
// coalescing on a live in-process broker: one publisher, N subscribers
// spread over 8 connections, serial (broker.Config.SerialFanout) vs
// parallel mode side by side across a GOMAXPROCS matrix. Run it as
//
//	gridbench fanout [-benchtime 2000x] [-subs 10,100,1000] [-cpu 1,4]
//	                 [-out BENCH_fanout.json]
//
// Every (subs, GOMAXPROCS) pair self-checks before it is timed: both
// modes publish the same fixed message sequence and the delivered
// multiset — how many times each (connection, subscription) saw a
// delivery — must be identical, or the run exits non-zero. The parallel
// 1000-subscriber cell additionally must show egress coalescing
// actually batching (more than one Deliver frame per flush); a cell
// pinned at 1 frame/flush means the per-connection run grouping broke.
// As with the other artifact modes, ns/op differences need real cores:
// on a single-CPU host the chunk workers time-share the publisher's
// core and the modes converge.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"gridmon/internal/broker"
	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// fanoutResult is one cell of BENCH_fanout.json.
type fanoutResult struct {
	Subscribers          int     `json:"subscribers"`
	Mode                 string  `json:"mode"` // serial | parallel
	CPUs                 int     `json:"gomaxprocs"`
	Ops                  int64   `json:"ops"`
	NsPerOp              float64 `json:"ns_per_publish"`
	DeliveriesPerOp      float64 `json:"deliveries_per_publish"`
	FanoutTasks          uint64  `json:"fanout_tasks"`
	EgressFramesPerFlush float64 `json:"egress_frames_per_flush"`
}

// fanoutSubConns is how many connections the subscribers are spread
// over: enough that the plan has real per-connection runs to chunk, few
// enough that runs are long and coalescing is visible (1000 subscribers
// → 8 runs of 125).
const fanoutSubConns = 8

func fanoutMain(args []string) {
	fs := flag.NewFlagSet("gridbench fanout", flag.ExitOnError)
	bt := fs.String("benchtime", "2000x", "publishes per cell (Nx) or minimum duration per cell")
	subsList := fs.String("subs", "10,100,1000", "comma-separated subscriber counts")
	cpus := fs.String("cpu", "", "comma-separated GOMAXPROCS values to matrix over (empty = current)")
	out := fs.String("out", "", "write the JSON here (empty = stdout)")
	_ = fs.Parse(args)

	budget, err := parseBenchTime(*bt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridbench fanout: %v\n", err)
		os.Exit(2)
	}
	subsAxis, err := parseIntList(*subsList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridbench fanout: bad -subs %q\n", *subsList)
		os.Exit(2)
	}
	cpuList := []int{runtime.GOMAXPROCS(0)}
	if *cpus != "" {
		if cpuList, err = parseIntList(*cpus); err != nil {
			fmt.Fprintf(os.Stderr, "gridbench fanout: bad -cpu %q\n", *cpus)
			os.Exit(2)
		}
	}

	prev := runtime.GOMAXPROCS(0)
	var results []fanoutResult
	var regressions []string
	for _, nCPU := range cpuList {
		runtime.GOMAXPROCS(nCPU)
		for _, subs := range subsAxis {
			// Equivalence self-check: same fixed publish sequence, both
			// modes, identical delivered multisets required.
			serialSeen := fanoutMultiset(subs, true)
			parallelSeen := fanoutMultiset(subs, false)
			if !multisetEqual(serialSeen, parallelSeen) {
				regressions = append(regressions, fmt.Sprintf(
					"subs=%d GOMAXPROCS=%d: delivered multisets differ between serial and parallel fan-out", subs, nCPU))
			}
			for _, serial := range []bool{true, false} {
				r := fanoutCell(budget, nCPU, subs, serial)
				results = append(results, r)
				if !serial && subs >= 1000 && r.EgressFramesPerFlush <= 1 {
					regressions = append(regressions, fmt.Sprintf(
						"subs=%d GOMAXPROCS=%d: parallel egress coalescing stuck at %.2f frames/flush (want >1)",
						subs, nCPU, r.EgressFramesPerFlush))
				}
			}
		}
	}
	runtime.GOMAXPROCS(prev)

	writeArtifact("gridbench fanout", *out,
		"publish fan-out: parallel per-connection chunked engine + egress coalescing vs serial per-frame loop",
		"One publisher, N subscribers spread over 8 connections on one topic; ns per publish incl. delivery "+
			"and ack feedback. serial = broker.Config.SerialFanout (the per-frame loop); parallel chunks "+
			"per-connection runs across the worker pool and emits one DeliverBatch per run. Each cell's "+
			"delivered multiset is self-checked identical across modes before timing. Speedups need real "+
			"cores; on a single-CPU host the chunk workers time-share and the modes converge.",
		results)
	failRegressions("gridbench fanout", regressions)
}

// fanEnv is the minimal thread-safe broker.Env for the fan-out cells:
// deliveries — per-frame or batched — are recorded so the publisher can
// feed acks back, and optionally counted into a (conn, sub) multiset
// for the cross-mode self-check.
type fanEnv struct {
	mu    sync.Mutex
	acks  []fanAck
	seen  map[[2]int64]uint64 // (conn, sub) → deliveries; nil when not checking
	total uint64
}

type fanAck struct {
	conn broker.ConnID
	ack  wire.Ack
}

func (e *fanEnv) record(c broker.ConnID, subID, tag int64) {
	e.acks = append(e.acks, fanAck{conn: c, ack: wire.Ack{SubID: subID, Tags: []int64{tag}}})
	e.total++
	if e.seen != nil {
		e.seen[[2]int64{int64(c), subID}]++
	}
}

func (e *fanEnv) Now() int64 { return 0 }
func (e *fanEnv) Send(c broker.ConnID, f wire.Frame) {
	switch d := f.(type) {
	case *wire.Deliver:
		e.mu.Lock()
		e.record(c, d.SubID, d.Tag)
		e.mu.Unlock()
		wire.PutDeliver(d)
	case *wire.DeliverBatch:
		e.mu.Lock()
		for _, ent := range d.Entries {
			e.record(c, ent.SubID, ent.Tag)
		}
		e.mu.Unlock()
		wire.PutDeliverBatch(d)
	}
}
func (e *fanEnv) CloseConn(broker.ConnID) {}
func (e *fanEnv) AllocConn() error        { return nil }
func (e *fanEnv) FreeConn()               {}
func (e *fanEnv) Alloc(int64) error       { return nil }
func (e *fanEnv) Free(int64)              {}

// drainAcks feeds every recorded delivery back as an Ack from its
// owning connection, as a live transport's clients would.
func (e *fanEnv) drainAcks(b *broker.Broker, scratch []fanAck) []fanAck {
	e.mu.Lock()
	scratch = append(scratch[:0], e.acks...)
	e.acks = e.acks[:0]
	e.mu.Unlock()
	for i := range scratch {
		b.OnFrame(scratch[i].conn, &scratch[i].ack)
	}
	return scratch
}

// setupFanoutCell builds a broker with subs subscribers on one topic,
// spread round-robin over fanoutSubConns connections, plus a publisher
// connection 100.
func setupFanoutCell(subs int, serial bool) (*broker.Broker, *fanEnv) {
	env := &fanEnv{}
	cfg := broker.DefaultConfig("fanout")
	cfg.SerialFanout = serial
	b := broker.New(env, cfg)
	for c := 1; c <= fanoutSubConns; c++ {
		if err := b.OnConnOpen(broker.ConnID(c)); err != nil {
			panic(err)
		}
	}
	if err := b.OnConnOpen(100); err != nil {
		panic(err)
	}
	for s := 0; s < subs; s++ {
		conn := broker.ConnID(s%fanoutSubConns + 1)
		b.OnFrame(conn, wire.Subscribe{SubID: int64(s + 1), Dest: message.Topic("power")})
	}
	return b, env
}

func fanoutPublishCell(b *broker.Broker, i int64) {
	m := message.NewText("reading")
	m.ID = fmt.Sprintf("ID:fan/%d", i)
	m.Dest = message.Topic("power")
	m.SetProperty("seq", message.Int(int32(i%1000)))
	b.OnFrame(100, wire.Publish{Seq: i, Msg: m})
}

// fanoutMultiset publishes a fixed 20-message sequence and returns the
// delivered (conn, sub) multiset for the cross-mode self-check.
func fanoutMultiset(subs int, serial bool) map[[2]int64]uint64 {
	b, env := setupFanoutCell(subs, serial)
	env.seen = make(map[[2]int64]uint64)
	var scratch []fanAck
	for i := int64(0); i < 20; i++ {
		fanoutPublishCell(b, i)
		scratch = env.drainAcks(b, scratch)
	}
	return env.seen
}

func multisetEqual(a, b map[[2]int64]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// fanoutCell times one (subs, mode, GOMAXPROCS) cell: a single
// publishing goroutine (the engine supplies the parallelism being
// measured), ack feedback after every publish.
func fanoutCell(budget benchTime, nCPU, subs int, serial bool) fanoutResult {
	b, env := setupFanoutCell(subs, serial)
	var scratch []fanAck
	before := b.Stats()
	ops, elapsed := runCells(budget, 1, func(_ int, i int64) {
		fanoutPublishCell(b, i)
		scratch = env.drainAcks(b, scratch)
	})
	after := b.Stats()

	mode := "parallel"
	if serial {
		mode = "serial"
	}
	r := fanoutResult{
		Subscribers:     subs,
		Mode:            mode,
		CPUs:            nCPU,
		Ops:             ops,
		NsPerOp:         float64(elapsed.Nanoseconds()) / float64(ops),
		DeliveriesPerOp: float64(after.Delivered-before.Delivered) / float64(ops),
		FanoutTasks:     after.FanoutTasks - before.FanoutTasks,
	}
	if fl := after.EgressFlushes - before.EgressFlushes; fl > 0 {
		r.EgressFramesPerFlush = float64(after.EgressFrames-before.EgressFrames) / float64(fl)
	}
	return r
}
