// The match mode measures the content-based matching index's tentpole
// claim on a live in-process broker and R-GMA core: with N distinct
// equality selectors on one hot topic (one hot table) and each message
// matching exactly one of them, the indexed path must evaluate O(1)
// compiled programs per publish while the LinearMatch baseline
// evaluates all N. Run it as
//
//	gridbench match [-benchtime 2000x] [-selectors 1,10,100,1000]
//	                [-out BENCH_match.json]
//
// Publishing runs from a single worker so the per-op eval counts are
// exact, not averaged over racing publishers. The mode self-checks: at
// every selector count both modes must deliver identically, and at
// >= 1000 selectors the linear mode must burn at least 10x the indexed
// mode's program evaluations per op — the acceptance floor for this
// index — or the run exits non-zero.
package main

import (
	"flag"
	"fmt"
	"os"

	"gridmon/internal/broker"
	"gridmon/internal/message"
	"gridmon/internal/rgma"
	"gridmon/internal/rgmacore"
	"gridmon/internal/wire"
)

// matchResult is one cell of BENCH_match.json.
type matchResult struct {
	Component       string  `json:"component"` // broker | rgmacore
	Mode            string  `json:"mode"`      // indexed | linear
	Selectors       int     `json:"selectors"`
	Ops             int64   `json:"ops"`
	NsPerOp         float64 `json:"ns_per_op"`
	EvalsPerOp      float64 `json:"program_evals_per_op"`
	CandidatesPerOp float64 `json:"index_candidates_per_op"`
	DeliveredPerOp  float64 `json:"delivered_per_op"`
}

func matchMain(args []string) {
	fs := flag.NewFlagSet("gridbench match", flag.ExitOnError)
	bt := fs.String("benchtime", "2000x", "operations per cell (Nx) or minimum duration per cell")
	sels := fs.String("selectors", "1,10,100,1000", "comma-separated distinct-selector counts to matrix over")
	out := fs.String("out", "", "write the JSON here (empty = stdout)")
	_ = fs.Parse(args)

	budget, err := parseBenchTime(*bt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridbench match: %v\n", err)
		os.Exit(2)
	}
	selList, err := parseIntList(*sels)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gridbench match: bad -selectors %q\n", *sels)
		os.Exit(2)
	}

	var results []matchResult
	for _, n := range selList {
		for _, linear := range []bool{false, true} {
			results = append(results, brokerMatch(budget, n, linear))
		}
		for _, linear := range []bool{false, true} {
			results = append(results, rgmaMatch(budget, n, linear))
		}
	}

	writeArtifact("gridbench match", *out,
		"content-based matching index: O(matching) predicate dispatch vs LinearMatch baseline",
		"N distinct equality selectors subscribe to one hot topic (consume one hot table); each published "+
			"message matches exactly one. program_evals_per_op counts compiled predicate evaluations "+
			"(Stats.MatchProgramEvals): the indexed path probes the index and evaluates only the candidates "+
			"(~1 here), the LinearMatch baseline evaluates all N. delivered_per_op must be identical across "+
			"modes — the index may only skip predicates that could not match.",
		results)

	var regressions []string
	byKey := map[string]matchResult{}
	for _, r := range results {
		byKey[fmt.Sprintf("%s/%s/%d", r.Component, r.Mode, r.Selectors)] = r
	}
	for _, r := range results {
		if r.Mode != "indexed" {
			continue
		}
		lin, ok := byKey[fmt.Sprintf("%s/linear/%d", r.Component, r.Selectors)]
		if !ok {
			continue
		}
		if r.DeliveredPerOp != lin.DeliveredPerOp {
			regressions = append(regressions, fmt.Sprintf(
				"%s at %d selectors: indexed delivered %.3f/op, linear %.3f/op (must be identical)",
				r.Component, r.Selectors, r.DeliveredPerOp, lin.DeliveredPerOp))
		}
		if r.Selectors >= 1000 && lin.EvalsPerOp < 10*r.EvalsPerOp {
			regressions = append(regressions, fmt.Sprintf(
				"%s at %d selectors: linear %.1f evals/op vs indexed %.1f — below the 10x floor",
				r.Component, r.Selectors, lin.EvalsPerOp, r.EvalsPerOp))
		}
	}
	failRegressions("gridbench match", regressions)
}

func matchModeName(linear bool) string {
	if linear {
		return "linear"
	}
	return "indexed"
}

func brokerMatch(budget benchTime, selectors int, linear bool) matchResult {
	env := &contEnv{}
	cfg := broker.DefaultConfig("match")
	cfg.LinearMatch = linear
	b := broker.New(env, cfg)

	const subConn, pubConn = broker.ConnID(1), broker.ConnID(2)
	for _, c := range []broker.ConnID{subConn, pubConn} {
		if err := b.OnConnOpen(c); err != nil {
			panic(err)
		}
	}
	for s := 0; s < selectors; s++ {
		b.OnFrame(subConn, wire.Subscribe{
			SubID:    int64(s + 1),
			Dest:     message.Topic("hot"),
			Selector: fmt.Sprintf("key = 'sub-%d'", s),
		})
	}
	before := b.Stats()

	keys := make([]message.Value, selectors)
	for s := range keys {
		keys[s] = message.String(fmt.Sprintf("sub-%d", s))
	}
	ops, elapsed := runCells(budget, 1, func(_ int, i int64) {
		m := message.NewText("reading")
		m.ID = fmt.Sprintf("ID:match/%d", i)
		m.Dest = message.Topic("hot")
		m.SetProperty("key", keys[i%int64(selectors)])
		b.OnFrame(pubConn, wire.Publish{Seq: i, Msg: m})
		env.mu.Lock()
		for _, a := range env.pairs {
			b.OnFrame(subConn, a)
		}
		env.pairs = env.pairs[:0]
		env.mu.Unlock()
	})

	after := b.Stats()
	return matchResult{
		Component:       "broker",
		Mode:            matchModeName(linear),
		Selectors:       selectors,
		Ops:             ops,
		NsPerOp:         float64(elapsed.Nanoseconds()) / float64(ops),
		EvalsPerOp:      float64(after.MatchProgramEvals-before.MatchProgramEvals) / float64(ops),
		CandidatesPerOp: float64(after.MatchIndexCandidates-before.MatchIndexCandidates) / float64(ops),
		DeliveredPerOp:  float64(after.Delivered-before.Delivered) / float64(ops),
	}
}

func rgmaMatch(budget benchTime, selectors int, linear bool) matchResult {
	c := rgmacore.New(rgmacore.Config{LinearMatch: linear})
	if _, err := c.CreateTable("CREATE TABLE hot (genid INTEGER PRIMARY KEY, seq INTEGER, site CHAR(20))"); err != nil {
		panic(err)
	}
	// A discarding sink: streamed tuples are counted by Stats; buffering
	// them would turn the benchmark into a ring-buffer test.
	sink := func(int64, *rgmacore.Streamed) {}
	for s := 0; s < selectors; s++ {
		q := fmt.Sprintf("SELECT * FROM hot WHERE site = 'c%d'", s)
		if _, err := c.CreateConsumer(q, rgma.ContinuousQuery, sink); err != nil {
			panic(err)
		}
	}
	p, err := c.CreateProducer("hot", 0, 0)
	if err != nil {
		panic(err)
	}
	before := c.StatsSnapshot()

	ops, elapsed := runCells(budget, 1, func(_ int, i int64) {
		stmt := fmt.Sprintf("INSERT INTO hot (genid, seq, site) VALUES (%d, %d, 'c%d')",
			i%100, i, i%int64(selectors))
		if err := c.Insert(p.ID(), stmt); err != nil {
			panic(err)
		}
	})

	after := c.StatsSnapshot()
	return matchResult{
		Component:       "rgmacore",
		Mode:            matchModeName(linear),
		Selectors:       selectors,
		Ops:             ops,
		NsPerOp:         float64(elapsed.Nanoseconds()) / float64(ops),
		EvalsPerOp:      float64(after.MatchProgramEvals-before.MatchProgramEvals) / float64(ops),
		CandidatesPerOp: float64(after.MatchIndexCandidates-before.MatchIndexCandidates) / float64(ops),
		DeliveredPerOp:  float64(after.TuplesStreamed-before.TuplesStreamed) / float64(ops),
	}
}
