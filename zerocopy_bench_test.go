package gridmon

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// Zero-copy fan-out benchmarks: the shared-reference delivery path
// (frozen message fanned out by reference, pooled Deliver frames)
// against the pre-zero-copy baseline (a private deep copy per delivery,
// restored by broker.Config.CloneDeliveries), and the encode-once splice
// path (cached message encoding memcpy'd into each Deliver frame)
// against field-by-field re-encoding per frame.
//
// `go test -bench=ZeroCopy` runs the matrix; `BENCH_ZEROCOPY_OUT=
// BENCH_zerocopy.json go test -run TestWriteZeroCopyBench .` times every
// cell and writes the before/after file kept alongside BENCH_fanout.json.

func BenchmarkZeroCopyFanout(b *testing.B) {
	for _, subs := range []int{100, 1000} {
		for _, class := range []string{"none", "simple"} {
			for _, mode := range []string{"shared", "clone"} {
				b.Run(fmt.Sprintf("subs=%d/sel=%s/%s", subs, class, mode), func(b *testing.B) {
					benchmarkFanoutMode(b, subs, class, false, mode == "clone")
				})
			}
		}
	}
}

// zerocopyMessage is the fan-out payload used by the encode benchmarks:
// same shape as the fan-out bench publishes.
func zerocopyMessage() *message.Message {
	m := message.NewText("reading")
	m.ID = "ID:bench/1"
	m.Dest = message.Topic("power")
	m.SetProperty("id", message.Int(4242))
	m.SetProperty("region", message.String("eu"))
	m.SetProperty("name", message.String("gen-42"))
	m.SetProperty("load", message.Double(400))
	return m
}

// BenchmarkDeliverEncode compares the splice path (frozen message,
// cached encoding appended per frame) against full field-by-field
// encoding (unfrozen message), per Deliver frame written into a reused
// transport buffer — the per-subscriber cost of a TCP fan-out.
func BenchmarkDeliverEncode(b *testing.B) {
	for _, mode := range []string{"splice", "full"} {
		b.Run(mode, func(b *testing.B) {
			m := zerocopyMessage()
			if mode == "splice" {
				m.Freeze()
			}
			d := &wire.Deliver{SubID: 7, Tag: 1, Msg: m}
			buf := make([]byte, 0, 4096)
			// Prime the encoding cache outside the timed loop, as the
			// first delivery of a fan-out would.
			var err error
			if buf, err = wire.AppendFrame(buf[:0], d); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(buf)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, err = wire.AppendFrame(buf[:0], d)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// zerocopyResult is one fan-out cell of BENCH_zerocopy.json.
type zerocopyResult struct {
	Subscribers    int     `json:"subscribers"`
	Selector       string  `json:"selector"`
	SharedNsOp     float64 `json:"shared_ns_per_publish"`
	CloneNsOp      float64 `json:"clone_ns_per_publish"`
	SharedAllocsOp float64 `json:"shared_allocs_per_publish"`
	CloneAllocsOp  float64 `json:"clone_allocs_per_publish"`
	SharedBytesOp  float64 `json:"shared_bytes_per_publish"`
	CloneBytesOp   float64 `json:"clone_bytes_per_publish"`
	Speedup        float64 `json:"speedup"`
	AllocsRatio    float64 `json:"allocs_ratio"`
}

// encodeResult is one splice-vs-full cell of BENCH_zerocopy.json.
type encodeResult struct {
	Mode     string  `json:"mode"`
	NsOp     float64 `json:"ns_per_frame"`
	AllocsOp float64 `json:"allocs_per_frame"`
}

// TestWriteZeroCopyBench times shared-vs-clone fan-out and splice-vs-
// full encoding and writes BENCH_zerocopy.json. Gated behind an env var
// so the regular test run stays fast:
// BENCH_ZEROCOPY_OUT=BENCH_zerocopy.json go test -run TestWriteZeroCopyBench .
func TestWriteZeroCopyBench(t *testing.T) {
	out := os.Getenv("BENCH_ZEROCOPY_OUT")
	if out == "" {
		t.Skip("set BENCH_ZEROCOPY_OUT to write the zero-copy benchmark file")
	}
	var fanout []zerocopyResult
	for _, subs := range []int{100, 1000} {
		for _, class := range []string{"none", "simple", "complex"} {
			cell := zerocopyResult{Subscribers: subs, Selector: class}
			for _, clone := range []bool{false, true} {
				subs, class, clone := subs, class, clone
				r := testing.Benchmark(func(b *testing.B) {
					benchmarkFanoutMode(b, subs, class, false, clone)
				})
				ns := float64(r.T.Nanoseconds()) / float64(r.N)
				if clone {
					cell.CloneNsOp = ns
					cell.CloneAllocsOp = float64(r.AllocsPerOp())
					cell.CloneBytesOp = float64(r.AllocedBytesPerOp())
				} else {
					cell.SharedNsOp = ns
					cell.SharedAllocsOp = float64(r.AllocsPerOp())
					cell.SharedBytesOp = float64(r.AllocedBytesPerOp())
				}
			}
			cell.Speedup = cell.CloneNsOp / cell.SharedNsOp
			if cell.SharedAllocsOp > 0 {
				cell.AllocsRatio = cell.CloneAllocsOp / cell.SharedAllocsOp
			}
			fanout = append(fanout, cell)
			t.Logf("subs=%d sel=%s: shared %.0f ns/publish (%.0f allocs), clone %.0f ns/publish (%.0f allocs), speedup %.2fx, allocs ratio %.1fx",
				subs, class, cell.SharedNsOp, cell.SharedAllocsOp, cell.CloneNsOp, cell.CloneAllocsOp, cell.Speedup, cell.AllocsRatio)
		}
	}
	var encode []encodeResult
	for _, mode := range []string{"splice", "full"} {
		mode := mode
		m := zerocopyMessage()
		if mode == "splice" {
			m.Freeze()
		}
		r := testing.Benchmark(func(b *testing.B) {
			d := &wire.Deliver{SubID: 7, Tag: 1, Msg: m}
			buf, err := wire.AppendFrame(make([]byte, 0, 4096), d)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, err = wire.AppendFrame(buf[:0], d)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		encode = append(encode, encodeResult{
			Mode:     mode,
			NsOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp: float64(r.AllocsPerOp()),
		})
		t.Logf("deliver encode %s: %.0f ns/frame", mode, encode[len(encode)-1].NsOp)
	}
	buf, err := json.MarshalIndent(map[string]any{
		"benchmark": "zero-copy fan-out: frozen shared-reference deliveries vs per-delivery deep copies; splice vs full frame encoding",
		"description": "fan-out cells: one topic, N subscribers split across 10 selector interest bands, ns and allocs per publish incl. delivery + ack processing; " +
			"clone restores broker.Config.CloneDeliveries (the PR 1 behaviour, cf. BENCH_fanout.json). encode cells: one Deliver frame into a reused buffer.",
		"fanout": fanout,
		"encode": encode,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
