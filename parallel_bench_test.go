package gridmon

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"gridmon/internal/broker"
	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// Parallel-publish benchmarks for the sharded broker core: P publisher
// goroutines on P distinct topics (each with subsPer no-selector
// subscribers) drive OnFrame concurrently. In sharded mode each
// publisher runs the whole publish→deliver→ack cycle inline on its own
// goroutine, meeting the others only on shard locks — on an N-core box,
// publishes to different topics execute on different cores. In
// SerialCore mode the same frames funnel through a single event-loop
// goroutine, reproducing the pre-shard architecture as the measured
// baseline (broker.Config.SerialCore, same A/B pattern as
// LegacyLinearScan/CloneDeliveries).
//
// `go test -bench ParallelPublish -cpu 1,4,8` runs the matrix;
// `BENCH_PARALLEL_OUT=BENCH_parallel.json go test -run
// TestWriteParallelBench .` times every cell across GOMAXPROCS values
// and writes the scaling curve.

// parAckPair is one recorded delivery awaiting acknowledgement.
type parAckPair struct {
	sub, tag int64
}

// parConnRec accumulates deliveries per subscriber connection. With one
// publisher per topic the owning publisher is the only goroutine that
// ever touches its topic's record (deliveries happen inline during its
// OnFrame call), so the mutex is uncontended; it exists for the serial
// funnel, where the loop goroutine does the writing.
type parConnRec struct {
	mu    sync.Mutex
	pairs []parAckPair
}

// parEnv is a thread-safe broker.Env for the benchmark: unlimited
// memory, deliveries recorded for ack feedback, pooled frames released
// like a real transport would.
type parEnv struct {
	recs      map[broker.ConnID]*parConnRec // fixed key set after setup
	delivered atomic.Uint64
}

func (e *parEnv) Now() int64 { return 0 }
func (e *parEnv) Send(c broker.ConnID, f wire.Frame) {
	if d, ok := f.(*wire.Deliver); ok {
		e.delivered.Add(1)
		if r := e.recs[c]; r != nil {
			r.mu.Lock()
			r.pairs = append(r.pairs, parAckPair{sub: d.SubID, tag: d.Tag})
			r.mu.Unlock()
		}
		wire.PutDeliver(d)
	}
}
func (e *parEnv) CloseConn(broker.ConnID) {}
func (e *parEnv) AllocConn() error        { return nil }
func (e *parEnv) FreeConn()               {}
func (e *parEnv) Alloc(int64) error       { return nil }
func (e *parEnv) Free(int64)              {}

// parTopicNames picks one topic name per shard-distinct slot so the P
// topics occupy P distinct lock domains (hash collisions would silently
// serialize two publishers and understate scaling).
func parTopicNames(b *broker.Broker, n int) []string {
	names := make([]string, 0, n)
	used := map[int]bool{}
	for i := 0; len(names) < n; i++ {
		name := fmt.Sprintf("par.%d", i)
		s := b.ShardOf(name)
		if b.NumShards() >= n && used[s] {
			continue
		}
		used[s] = true
		names = append(names, name)
	}
	return names
}

func parMessage(topic string, i int) *message.Message {
	m := message.NewText("reading")
	m.ID = "ID:bench/1"
	m.Dest = message.Topic(topic)
	m.SetProperty("id", message.Int(int32(i)))
	m.SetProperty("load", message.Double(400))
	return m
}

// benchmarkParallelPublish times b.N publishes spread across `pubs`
// publisher goroutines on `pubs` shard-distinct topics, each with
// subsPer subscribers; every publish feeds its deliveries' acks back,
// as a live broker would see them.
func benchmarkParallelPublish(b *testing.B, pubs, subsPer int, serial bool) {
	env := &parEnv{recs: make(map[broker.ConnID]*parConnRec)}
	cfg := broker.DefaultConfig("bench")
	cfg.SerialCore = serial
	if !serial {
		cfg.Shards = pubs
	}
	br := broker.New(env, cfg)
	topics := parTopicNames(br, pubs)

	subConn := func(t int) broker.ConnID { return broker.ConnID(10_000 + t) }
	pubConn := func(p int) broker.ConnID { return broker.ConnID(20_000 + p) }
	for t := 0; t < pubs; t++ {
		id := subConn(t)
		env.recs[id] = &parConnRec{}
		if err := br.OnConnOpen(id); err != nil {
			b.Fatal(err)
		}
		for s := 0; s < subsPer; s++ {
			br.OnFrame(id, wire.Subscribe{SubID: int64(s + 1), Dest: message.Topic(topics[t])})
		}
	}
	for p := 0; p < pubs; p++ {
		if err := br.OnConnOpen(pubConn(p)); err != nil {
			b.Fatal(err)
		}
	}

	// drainAcks feeds the recorded deliveries of topic t back as acks,
	// reusing the caller's scratch buffers across iterations.
	drainAcks := func(t int, scratch *[]parAckPair, ack *wire.Ack) {
		r := env.recs[subConn(t)]
		r.mu.Lock()
		*scratch = append((*scratch)[:0], r.pairs...)
		r.pairs = r.pairs[:0]
		r.mu.Unlock()
		for _, pr := range *scratch {
			ack.SubID = pr.sub
			ack.Tags = append(ack.Tags[:0], pr.tag)
			br.OnFrame(subConn(t), ack)
		}
	}

	var funnel chan func()
	var loopWG sync.WaitGroup
	if serial {
		// The pre-shard architecture: one event-loop goroutine owns all
		// frame processing; publisher goroutines only enqueue.
		funnel = make(chan func(), 256)
		loopWG.Add(1)
		go func() {
			defer loopWG.Done()
			for fn := range funnel {
				fn()
			}
		}()
	}

	b.ReportAllocs()
	b.ResetTimer()
	var next int64
	var pending sync.WaitGroup
	pending.Add(b.N)
	var workers sync.WaitGroup
	for p := 0; p < pubs; p++ {
		workers.Add(1)
		go func(p int) {
			defer workers.Done()
			t := p % pubs
			scratch := make([]parAckPair, 0, subsPer)
			var ack wire.Ack
			for {
				i := atomic.AddInt64(&next, 1)
				if i > int64(b.N) {
					return
				}
				m := parMessage(topics[t], int(i))
				pub := wire.Publish{Seq: i, Msg: m}
				if serial {
					funnel <- func() {
						br.OnFrame(pubConn(p), pub)
						drainAcks(t, &scratch, &ack)
						pending.Done()
					}
				} else {
					br.OnFrame(pubConn(p), pub)
					drainAcks(t, &scratch, &ack)
					pending.Done()
				}
			}
		}(p)
	}
	workers.Wait()
	pending.Wait()
	b.StopTimer()
	if serial {
		close(funnel)
		loopWG.Wait()
	}
	b.ReportMetric(float64(env.delivered.Load())/float64(b.N), "deliveries/op")
}

func BenchmarkParallelPublish(b *testing.B) {
	for _, pubs := range []int{1, 8} {
		for _, mode := range []string{"sharded", "serial"} {
			b.Run(fmt.Sprintf("pubs=%d/topics=%d/subs=100/%s", pubs, pubs, mode), func(b *testing.B) {
				benchmarkParallelPublish(b, pubs, 100, mode == "serial")
			})
		}
	}
}

// parallelResult is one cell of BENCH_parallel.json.
type parallelResult struct {
	CPUs           int     `json:"gomaxprocs"`
	Publishers     int     `json:"publishers"`
	Topics         int     `json:"topics"`
	Subscribers    int     `json:"subscribers_per_topic"`
	ShardedNsOp    float64 `json:"sharded_ns_per_publish"`
	SerialNsOp     float64 `json:"serial_ns_per_publish"`
	ShardedPubSec  float64 `json:"sharded_publishes_per_sec"`
	SerialPubSec   float64 `json:"serial_publishes_per_sec"`
	Speedup        float64 `json:"speedup_vs_serial_core"`
	ShardedAllocOp float64 `json:"sharded_allocs_per_publish"`
}

// TestWriteParallelBench times the sharded core against the SerialCore
// event-loop baseline across GOMAXPROCS values and writes
// BENCH_parallel.json. Gated behind an env var so the regular test run
// stays fast: BENCH_PARALLEL_OUT=BENCH_parallel.json go test -run
// TestWriteParallelBench .
func TestWriteParallelBench(t *testing.T) {
	out := os.Getenv("BENCH_PARALLEL_OUT")
	if out == "" {
		t.Skip("set BENCH_PARALLEL_OUT to write the parallel benchmark file")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var results []parallelResult
	for _, cpus := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(cpus)
		const pubs, subs = 8, 100
		cell := parallelResult{CPUs: cpus, Publishers: pubs, Topics: pubs, Subscribers: subs}
		for _, serial := range []bool{false, true} {
			serial := serial
			r := testing.Benchmark(func(b *testing.B) {
				benchmarkParallelPublish(b, pubs, subs, serial)
			})
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if serial {
				cell.SerialNsOp = ns
				cell.SerialPubSec = 1e9 / ns
			} else {
				cell.ShardedNsOp = ns
				cell.ShardedPubSec = 1e9 / ns
				cell.ShardedAllocOp = float64(r.AllocsPerOp())
			}
		}
		cell.Speedup = cell.SerialNsOp / cell.ShardedNsOp
		results = append(results, cell)
		t.Logf("gomaxprocs=%d: sharded %.0f ns/publish, serial-core %.0f ns/publish, speedup %.2fx",
			cpus, cell.ShardedNsOp, cell.SerialNsOp, cell.Speedup)
	}
	runtime.GOMAXPROCS(prev)
	buf, err := json.MarshalIndent(map[string]any{
		"benchmark": "parallel publish: sharded destination layer vs SerialCore single event loop",
		"description": "8 publisher goroutines on 8 shard-distinct topics, 100 subscribers each; ns per publish incl. " +
			"delivery + ack processing. Speedup above 1x requires real cores: on a single-core host all GOMAXPROCS " +
			"values time-share one CPU and the sharded and serial figures converge.",
		"host_cpus": runtime.NumCPU(),
		"results":   results,
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
