package gridmon

// Benchmarks, one per table/figure of the paper plus the ablations of
// DESIGN.md §5. Each benchmark executes the corresponding experiment at a
// reduced-but-proportional scale per iteration and reports the headline
// quantity (mean RTT, loss, accepted connections) as a custom metric, so
// `go test -bench=. -benchmem` regenerates the whole evaluation. Use
// `cmd/gridbench -scale full` for paper-fidelity runs.

import (
	"testing"
	"time"

	"gridmon/internal/experiment"
	"gridmon/internal/message"
	"gridmon/internal/simbroker"
	"gridmon/internal/wire"
)

// benchScale keeps connection counts and rates identical to the paper
// with a short measurement window.
func benchScale() experiment.Scale {
	return experiment.Scale{PublishCount: 6, SpawnFactor: 6.0 / 180.0, Label: "bench"}
}

func BenchmarkFig3Fig4TransportComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, results := experiment.Fig3And4(benchScale())
		for _, r := range results {
			b.ReportMetric(r.RTT.Mean(), "ms_rtt_"+sanitize(r.Label))
		}
	}
}

func BenchmarkFig6to9NaradaScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.RunNaradaScale(benchScale())
		b.ReportMetric(r.Single[len(r.Single)-1].RTT.Mean(), "ms_rtt_single3000")
		b.ReportMetric(r.DBN[len(r.DBN)-1].RTT.Mean(), "ms_rtt_dbn4000")
		b.ReportMetric(r.Single[len(r.Single)-1].CPUIdlePct, "pct_idle_single3000")
	}
}

func BenchmarkFig10SecondaryProducer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := experiment.Fig10(benchScale())
		b.ReportMetric(results[len(results)-1].RTT.Percentile(100)/1000, "s_rtt_p100_200conns")
	}
}

func BenchmarkFig11to14RGMAScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.RunRGMAScale(benchScale())
		b.ReportMetric(r.Single[len(r.Single)-1].RTT.Mean(), "ms_rtt_single600")
		b.ReportMetric(r.Distributed[len(r.Distributed)-1].RTT.Mean(), "ms_rtt_dist1000")
	}
}

func BenchmarkFig15Decomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, res := experiment.Fig15(benchScale())
		b.ReportMetric(res.RGMA.PT.Mean(), "ms_rgma_pt")
		b.ReportMetric(res.Narada.MeanRTT(), "ms_narada_rtt")
	}
}

func BenchmarkWarmupLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := experiment.WarmupLoss(benchScale())
		b.ReportMetric(results[1].Loss.RatePercent(), "pct_loss_nowarmup")
	}
}

func BenchmarkOOMCliffs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, narada, rgmaRes := experiment.OOMCliffs(benchScale())
		b.ReportMetric(float64(4000-narada.Refused), "conns_narada_accepted")
		b.ReportMetric(float64(900-rgmaRes.Refused), "conns_rgma_accepted")
	}
}

func BenchmarkTable3Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		narada := experiment.RunNarada(experiment.NaradaConfig{
			Label: "n", Connections: 500, Transport: simbroker.TCP(), Scale: benchScale(), Seed: 1,
		})
		rgmaRes := experiment.RunRGMA(experiment.RGMAConfig{
			Label: "r", Connections: 200, Scale: benchScale(), Seed: 2,
		})
		b.ReportMetric(rgmaRes.RTT.Mean()/narada.RTT.Mean(), "x_rgma_over_narada")
	}
}

func BenchmarkAblationRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := experiment.AblationRouting(benchScale())
		b.ReportMetric(results[0].RTT.Mean(), "ms_rtt_broadcast")
		b.ReportMetric(results[1].RTT.Mean(), "ms_rtt_tree")
	}
}

func BenchmarkAblationAckMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := experiment.AblationAckMode(benchScale())
		b.ReportMetric(results[0].RTT.Mean(), "ms_rtt_auto")
		b.ReportMetric(results[1].RTT.Mean(), "ms_rtt_client")
	}
}

func BenchmarkAblationAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := experiment.AblationAggregation(benchScale())
		b.ReportMetric(results[0].CPUIdlePct, "pct_idle_single")
		b.ReportMetric(results[1].CPUIdlePct, "pct_idle_aggregated")
	}
}

func BenchmarkAblationPollInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results := experiment.AblationPollInterval(benchScale())
		b.ReportMetric(results[2].RTT.Mean()-results[0].RTT.Mean(), "ms_rtt_poll_spread")
	}
}

// BenchmarkEndToEndMessage measures simulator throughput for the full
// publish -> route -> deliver -> ack pipeline of one message.
func BenchmarkEndToEndMessage(b *testing.B) {
	s := NewSimulation(1)
	host := s.NewBroker("broker")
	sub, err := host.Connect(s.Node("client"), simbroker.TCP(), "sub")
	if err != nil {
		b.Fatal(err)
	}
	pub, err := host.Connect(s.Node("client"), simbroker.TCP(), "pub")
	if err != nil {
		b.Fatal(err)
	}
	delivered := 0
	sub.OnDeliver = func(wire.Deliver) { delivered++ }
	sub.Subscribe(1, message.Topic("t"), "id<10000")
	s.RunUntilIdle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := message.NewMap()
		m.Dest = message.Topic("t")
		m.SetProperty("id", message.Int(1))
		m.MapSet("power", message.Double(1))
		pub.Publish(m)
		s.RunUntilIdle()
	}
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkSimulatedSecond measures how much wall time one virtual second
// of the paper's 800-generator workload costs.
func BenchmarkSimulatedSecond(b *testing.B) {
	res := experiment.RunNarada(experiment.NaradaConfig{
		Label: "bench", Connections: 800, Transport: simbroker.TCP(),
		Scale: benchScale(), Seed: 3,
	})
	if res.Loss.Sent == 0 {
		b.Fatal("no messages")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiment.RunNarada(experiment.NaradaConfig{
			Label: "bench", Connections: 800, Transport: simbroker.TCP(),
			Scale: benchScale(), Seed: int64(i + 4),
		})
	}
	_ = time.Now()
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}
