// Package gridmon is a study platform for publish/subscribe middleware in
// real-time power-grid monitoring, reproducing Huang, Hobson, Taylor &
// Kyberd, "A Study of Publish/Subscribe Systems for Real-Time Grid
// Monitoring" (IPDPS 2007).
//
// It bundles two complete middleware implementations —
//
//   - a NaradaBrokering-style JMS broker (topics, queues, selectors,
//     acknowledgement modes, durable subscriptions, distributed broker
//     networks), usable both on a deterministic discrete-event simulator
//     and over real TCP (package internal/jms, cmd/naradad);
//   - an R-GMA-style relational virtual database (SQL INSERT producers,
//     continuous/latest/history SELECT consumers, registry mediation,
//     secondary producers) on the same simulator
//
// — plus the paper's full experiment harness (cmd/gridbench), which
// regenerates every table and figure.
//
// This file is the facade for the simulation side: a Simulation owns a
// virtual-time kernel and a modelled 100 Mbps LAN onto which brokers,
// R-GMA deployments, generator fleets and monitors are placed.
package gridmon

import (
	"fmt"
	"time"

	"gridmon/internal/broker"
	"gridmon/internal/brokernet"
	"gridmon/internal/rgma"
	"gridmon/internal/sim"
	"gridmon/internal/simbroker"
	"gridmon/internal/simnet"
)

// Simulation is a deterministic virtual testbed: nodes on a switched
// 100 Mbps LAN, driven by a single discrete-event kernel.
type Simulation struct {
	kernel *sim.Kernel
	net    *simnet.Network
	nodes  map[string]*simnet.Node
}

// NewSimulation creates a testbed. Equal seeds give bit-identical runs.
func NewSimulation(seed int64) *Simulation {
	k := sim.New(seed)
	return &Simulation{kernel: k, net: simnet.New(k), nodes: make(map[string]*simnet.Node)}
}

// Kernel exposes the simulation kernel for scheduling custom events.
func (s *Simulation) Kernel() *sim.Kernel { return s.kernel }

// Network exposes the underlying network model.
func (s *Simulation) Network() *simnet.Network { return s.net }

// Node returns (creating on first use) a Hydra-class machine.
func (s *Simulation) Node(name string) *simnet.Node {
	if n, ok := s.nodes[name]; ok {
		return n
	}
	n := s.net.AddNode(name, simnet.HydraNode())
	s.nodes[name] = n
	return n
}

// NewBroker places a NaradaBrokering-style broker on the named node.
func (s *Simulation) NewBroker(nodeName string) *simbroker.Host {
	return simbroker.NewHost(s.net, s.Node(nodeName), broker.DefaultConfig(nodeName), simbroker.DefaultCosts())
}

// NewBrokerNetwork places a broker on each named node, joins them into a
// distributed broker network with the given routing mode, and links them
// in a chain (the topology used by the paper reproduction).
func (s *Simulation) NewBrokerNetwork(mode brokernet.RoutingMode, nodeNames ...string) []*simbroker.Host {
	if len(nodeNames) < 2 {
		panic("gridmon: a broker network needs at least two nodes")
	}
	hosts := make([]*simbroker.Host, len(nodeNames))
	for i, name := range nodeNames {
		hosts[i] = s.NewBroker(name)
		hosts[i].JoinNetwork(mode)
	}
	for i := 1; i < len(hosts); i++ {
		simbroker.Peer(hosts[i-1], hosts[i])
	}
	return hosts
}

// NewRGMA creates an R-GMA deployment with its registry on the named
// node.
func (s *Simulation) NewRGMA(registryNode string) *rgma.Deployment {
	return rgma.NewDeployment(s.net, s.Node(registryNode), rgma.DefaultCosts())
}

// Run advances virtual time by d.
func (s *Simulation) Run(d time.Duration) {
	s.kernel.RunUntil(s.kernel.Now() + sim.FromDuration(d))
}

// RunUntilIdle drains every pending event.
func (s *Simulation) RunUntilIdle() { s.kernel.Run() }

// Now reports the current virtual time since simulation start.
func (s *Simulation) Now() time.Duration { return s.kernel.Now().Duration() }

// String summarises the testbed.
func (s *Simulation) String() string {
	sent, delivered, dropped := s.net.Stats()
	return fmt.Sprintf("gridmon.Simulation{t=%v nodes=%d frames=%d/%d/%d}",
		s.Now(), len(s.nodes), sent, delivered, dropped)
}
