package gridmon

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridmon/internal/rgma"
	"gridmon/internal/rgmahttp"
	"gridmon/internal/sqlmini"
)

// R-GMA service-stack benchmarks: P producer lanes — each one table on
// its own table shard, with one producer inserting and one continuous
// consumer popping — drive the HTTP handler concurrently, the full
// servlet path the paper measured (JSON decode, SQL parse, typed store
// insert, compiled-predicate streaming, buffered pop). In sharded mode
// each lane runs the whole insert→stream→pop cycle inline on its own
// goroutine, meeting the others only on shard locks; Config.Serial
// funnels every request behind the seed's global mutex as the measured
// baseline (the same A/B pattern as broker.Config.SerialCore).
//
// `go test -bench RGMA -cpu 1,4,8` runs the matrix;
// `BENCH_RGMA_OUT=BENCH_rgma.json go test -run TestWriteRGMABench .`
// times every cell across GOMAXPROCS values — including the
// compiled-vs-interpreted predicate table — and writes the curves.

// rgmaLaneNames picks one table name per shard-distinct slot, so the P
// lanes occupy P distinct lock domains (a hash collision would silently
// serialize two lanes and understate scaling).
func rgmaLaneNames(s *rgmahttp.Server, n int) []string {
	names := make([]string, 0, n)
	used := map[int]bool{}
	for i := 0; len(names) < n; i++ {
		name := fmt.Sprintf("lane%d", i)
		sh := s.TableShardOf(name)
		if s.NumShards() >= n && used[sh] {
			continue
		}
		used[sh] = true
		names = append(names, name)
	}
	return names
}

// rgmaCall drives one request through the handler, failing the
// benchmark on a non-200 status.
func rgmaCall(b *testing.B, h http.Handler, method, target, body string) {
	b.Helper()
	req := httptest.NewRequest(method, target, strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("%s %s: %d %s", method, target, w.Code, w.Body.String())
	}
}

// benchmarkRGMAInsertPop times b.N inserts spread across `lanes`
// concurrent lanes; every lane drains its continuous consumer each 32
// inserts, so streamed buffers stay bounded and the pop path is in the
// measured mix.
func benchmarkRGMAInsertPop(b *testing.B, lanes int, serial bool) {
	cfg := rgmahttp.Config{Serial: serial}
	if !serial {
		cfg.Shards = lanes
	}
	s := rgmahttp.NewServerWith(cfg)
	h := s.Handler()
	names := rgmaLaneNames(s, lanes)

	producerIDs := make([]int64, lanes)
	consumerIDs := make([]int64, lanes)
	insertBody := make([]string, lanes)
	for i, name := range names {
		rgmaCall(b, h, "POST", "/schema/createTable", fmt.Sprintf(
			`{"sql":"CREATE TABLE %s (genid INTEGER PRIMARY KEY, seq INTEGER, power DOUBLE PRECISION, site CHAR(20))"}`, name))
		req := httptest.NewRequest("POST", "/producer/create", strings.NewReader(fmt.Sprintf(`{"table":%q}`, name)))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		var pres struct {
			Producer int64 `json:"producer"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &pres); err != nil || pres.Producer == 0 {
			b.Fatalf("producer create: %s", w.Body.String())
		}
		producerIDs[i] = pres.Producer
		req = httptest.NewRequest("POST", "/consumer/create", strings.NewReader(fmt.Sprintf(
			`{"query":"SELECT * FROM %s WHERE genid < 1000000","type":"continuous"}`, name)))
		w = httptest.NewRecorder()
		h.ServeHTTP(w, req)
		var cres struct {
			Consumer int64 `json:"consumer"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &cres); err != nil || cres.Consumer == 0 {
			b.Fatalf("consumer create: %s", w.Body.String())
		}
		consumerIDs[i] = cres.Consumer
		insertBody[i] = fmt.Sprintf(
			`{"producer":%d,"sql":"INSERT INTO %s (genid, seq, power, site) VALUES (%d, 1, 480.5, 'site-%04d')"}`,
			producerIDs[i], name, i, i)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var next int64
	var workers sync.WaitGroup
	for p := 0; p < lanes; p++ {
		workers.Add(1)
		go func(p int) {
			defer workers.Done()
			popTarget := fmt.Sprintf("/consumer/pop?id=%d", consumerIDs[p])
			since := 0
			for {
				i := atomic.AddInt64(&next, 1)
				if i > int64(b.N) {
					return
				}
				req := httptest.NewRequest("POST", "/producer/insert", strings.NewReader(insertBody[p]))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Errorf("insert: %d %s", w.Code, w.Body.String())
					return
				}
				if since++; since >= 32 {
					since = 0
					req := httptest.NewRequest("GET", popTarget, nil)
					w := httptest.NewRecorder()
					h.ServeHTTP(w, req)
					_, _ = io.Copy(io.Discard, w.Body)
				}
			}
		}(p)
	}
	workers.Wait()
	b.StopTimer()
	st := s.StatsSnapshot()
	if st.Inserts != uint64(b.N) || st.TuplesStreamed != uint64(b.N) {
		b.Fatalf("stats = %+v, want %d inserts streamed", st, b.N)
	}
}

func BenchmarkRGMAParallelInsertPop(b *testing.B) {
	for _, lanes := range []int{1, 8} {
		for _, mode := range []string{"sharded", "serial"} {
			b.Run(fmt.Sprintf("lanes=%d/%s", lanes, mode), func(b *testing.B) {
				benchmarkRGMAInsertPop(b, lanes, mode == "serial")
			})
		}
	}
}

// BenchmarkRGMACompiledPredicate evaluates the paper's WHERE shapes
// over the monitoring row: compiled Program vs tree-walking Eval.
func BenchmarkRGMACompiledPredicate(b *testing.B) {
	tab := rgma.MonitoringTable()
	row := rgma.MonitoringRow(7, 3)
	for _, c := range rgmaPredicateCases() {
		sel, err := rgma.ParseQuery(c.query)
		if err != nil {
			b.Fatal(err)
		}
		prog := sel.Compiled(tab)
		b.Run(c.name+"/compiled", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				prog.Matches(row)
			}
		})
		b.Run(c.name+"/interpreted", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sqlmini.Matches(tab, sel, row)
			}
		})
	}
}

type rgmaPredCase struct {
	name  string
	query string
}

func rgmaPredicateCases() []rgmaPredCase {
	return []rgmaPredCase{
		{"simple", "SELECT * FROM generator WHERE genid < 10000"},
		{"string", "SELECT * FROM generator WHERE site = 'site-0007'"},
		{"complex", "SELECT * FROM generator WHERE (genid < 100 OR status = 'RUNNING') AND power > 100 AND seq IS NOT NULL"},
	}
}

// --- BENCH_rgma.json harness ---

type rgmaParallelCell struct {
	CPUs          int     `json:"gomaxprocs"`
	Lanes         int     `json:"lanes"`
	ShardedNsOp   float64 `json:"sharded_ns_per_insert"`
	SerialNsOp    float64 `json:"serial_ns_per_insert"`
	ShardedInsSec float64 `json:"sharded_inserts_per_sec"`
	SerialInsSec  float64 `json:"serial_inserts_per_sec"`
	Speedup       float64 `json:"speedup_vs_serial_mutex"`
}

type rgmaPredicateCell struct {
	Query         string  `json:"query"`
	InterpretedNs float64 `json:"interpreted_ns_per_row"`
	CompiledNs    float64 `json:"compiled_ns_per_row"`
	Speedup       float64 `json:"speedup_compiled_vs_interpreted"`
}

type rgmaTransportCell struct {
	Transport  string  `json:"transport"`
	Mode       string  `json:"mode"`
	PollMs     float64 `json:"poll_interval_ms,omitempty"`
	MedianMs   float64 `json:"median_insert_to_deliver_ms"`
	P99Ms      float64 `json:"p99_insert_to_deliver_ms"`
	Samples    int     `json:"samples"`
	SpeedupMed float64 `json:"median_speedup_vs_http_poll,omitempty"`
}

// TestWriteRGMABench times the sharded R-GMA service against the
// serial global-mutex baseline across GOMAXPROCS values, plus the
// compiled-vs-interpreted predicate table, and writes BENCH_rgma.json.
// Gated behind an env var so the regular test run stays fast:
// BENCH_RGMA_OUT=BENCH_rgma.json go test -run TestWriteRGMABench .
func TestWriteRGMABench(t *testing.T) {
	out := os.Getenv("BENCH_RGMA_OUT")
	if out == "" {
		t.Skip("set BENCH_RGMA_OUT to write the R-GMA benchmark file")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var parallel []rgmaParallelCell
	for _, cpus := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(cpus)
		const lanes = 8
		cell := rgmaParallelCell{CPUs: cpus, Lanes: lanes}
		for _, serial := range []bool{false, true} {
			serial := serial
			r := testing.Benchmark(func(b *testing.B) {
				benchmarkRGMAInsertPop(b, lanes, serial)
			})
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if serial {
				cell.SerialNsOp = ns
				cell.SerialInsSec = 1e9 / ns
			} else {
				cell.ShardedNsOp = ns
				cell.ShardedInsSec = 1e9 / ns
			}
		}
		cell.Speedup = cell.SerialNsOp / cell.ShardedNsOp
		parallel = append(parallel, cell)
	}
	runtime.GOMAXPROCS(prev)

	tab := rgma.MonitoringTable()
	row := rgma.MonitoringRow(7, 3)
	var preds []rgmaPredicateCell
	for _, c := range rgmaPredicateCases() {
		sel, err := rgma.ParseQuery(c.query)
		if err != nil {
			t.Fatal(err)
		}
		prog := sel.Compiled(tab)
		ri := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sqlmini.Matches(tab, sel, row)
			}
		})
		rc := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog.Matches(row)
			}
		})
		cell := rgmaPredicateCell{
			Query:         c.query,
			InterpretedNs: float64(ri.T.Nanoseconds()) / float64(ri.N),
			CompiledNs:    float64(rc.T.Nanoseconds()) / float64(rc.N),
		}
		cell.Speedup = cell.InterpretedNs / cell.CompiledNs
		preds = append(preds, cell)
	}

	// Insert→deliver latency, the paper's push-vs-poll measurement: the
	// HTTP lane polls at the paper's 100 ms subscriber period, the
	// binary lane receives server pushes. Both run over live TCP.
	const latSamples = 40
	pollInterval := 100 * time.Millisecond
	httpLat := measureInsertDeliverLatency(t, "http", latSamples, 5*time.Millisecond, pollInterval)
	binLat := measureInsertDeliverLatency(t, "bin", latSamples, 5*time.Millisecond, pollInterval)
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	httpCell := rgmaTransportCell{
		Transport: "http", Mode: "poll", PollMs: ms(pollInterval),
		MedianMs: ms(latencyQuantile(httpLat, 0.5)),
		P99Ms:    ms(latencyQuantile(httpLat, 0.99)),
		Samples:  len(httpLat),
	}
	binCell := rgmaTransportCell{
		Transport: "bin", Mode: "push",
		MedianMs: ms(latencyQuantile(binLat, 0.5)),
		P99Ms:    ms(latencyQuantile(binLat, 0.99)),
		Samples:  len(binLat),
	}
	binCell.SpeedupMed = httpCell.MedianMs / binCell.MedianMs
	if binCell.SpeedupMed < 10 {
		t.Errorf("binary push median %.3f ms is only %.1fx below the %v-poll median %.3f ms, want >= 10x",
			binCell.MedianMs, binCell.SpeedupMed, pollInterval, httpCell.MedianMs)
	}

	doc := map[string]any{
		"benchmark":   "R-GMA service stack: sharded lock domains vs the seed's global server mutex (8 lanes of insert+continuous pop through the HTTP handler), compiled vs interpreted WHERE predicates, and insert-to-deliver latency of the push binary transport vs the paper's 100 ms HTTP poll",
		"description": "ns per insert includes JSON decode, SQL parse, typed store insert, compiled-predicate streaming to the lane's continuous consumer, and a pop drain every 32 inserts. Speedup above 1x requires real cores: on a single-core host all GOMAXPROCS values time-share one CPU and the sharded and serial figures converge. transport_latency times tuples end to end over live TCP: a polled tuple waits for the next consumer poll, a pushed tuple is written to subscribed connections on the insert path.",
		"host_cpus":   runtime.NumCPU(),
		"parallel":    parallel,
		"predicate":   preds,
		"transport_latency": []rgmaTransportCell{
			httpCell, binCell,
		},
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
}
