package gridmon

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridmon/internal/rgmabin"
	"gridmon/internal/rgmacore"
	"gridmon/internal/rgmahttp"
)

// Transport latency harness: the paper's central JMS-vs-R-GMA gap is
// push versus poll. Its R-GMA consumers polled every 100 ms, so a tuple
// waits on average half a poll period before anyone sees it; the
// binary transport pushes tuples to continuous consumers on the insert
// path. measureInsertDeliverLatency times that gap end to end over
// live TCP servers: a producer inserts n timestamped tuples spaced
// `gap` apart, and the consumer side records insert→deliver latency
// per tuple — via a poll loop with period `poll` for HTTP, via the
// server-push callback for bin.

const transportTableSQL = "CREATE TABLE generator (genid INTEGER PRIMARY KEY, seq INTEGER, power DOUBLE PRECISION, site CHAR(20))"

func measureInsertDeliverLatency(t testing.TB, transport string, n int, gap, poll time.Duration) []time.Duration {
	sendTimes := make([]time.Time, n)
	var mu sync.Mutex
	latencies := make([]time.Duration, 0, n)
	done := make(chan struct{})
	record := func(seqCell string, now time.Time) {
		seq, err := strconv.Atoi(seqCell)
		if err != nil || seq < 0 || seq >= n {
			t.Errorf("bad seq cell %q", seqCell)
			return
		}
		mu.Lock()
		latencies = append(latencies, now.Sub(sendTimes[seq]))
		full := len(latencies) == n
		mu.Unlock()
		if full {
			close(done)
		}
	}

	var insert func(sql string) error
	switch transport {
	case "http":
		s := rgmahttp.NewServerWith(rgmahttp.Config{Shards: 2})
		addr, err := s.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = s.Close() }()
		c := rgmahttp.NewClient(addr)
		if err := c.CreateTable(transportTableSQL); err != nil {
			t.Fatal(err)
		}
		cons, err := c.CreateConsumer("SELECT * FROM generator", "continuous")
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(poll)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					tuples, err := cons.Pop()
					if err != nil {
						return
					}
					now := time.Now()
					for _, tp := range tuples {
						record(tp.Row[1], now)
					}
				}
			}
		}()
		p, err := c.CreatePrimaryProducer("generator", time.Minute, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		insert = p.Insert
	case "bin":
		s := rgmabin.NewServer(rgmacore.New(rgmacore.Config{Shards: 2}), rgmabin.Config{})
		addr, err := s.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = s.Close() }()
		c, err := rgmabin.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		if err := c.CreateTable(transportTableSQL); err != nil {
			t.Fatal(err)
		}
		if _, err := c.CreateConsumer("SELECT * FROM generator", "continuous",
			func(tuples []rgmabin.PoppedTuple) {
				now := time.Now()
				for _, tp := range tuples {
					record(tp.Row[1], now)
				}
			}); err != nil {
			t.Fatal(err)
		}
		pc, err := rgmabin.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = pc.Close() }()
		p, err := pc.CreatePrimaryProducer("generator", time.Minute, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		insert = p.Insert
	default:
		t.Fatalf("unknown transport %q", transport)
	}

	for i := 0; i < n; i++ {
		stmt := fmt.Sprintf(
			"INSERT INTO generator (genid, seq, power, site) VALUES (%d, %d, 480.5, 'site-0001')", i, i)
		sendTimes[i] = time.Now()
		if err := insert(stmt); err != nil {
			t.Fatal(err)
		}
		time.Sleep(gap)
	}
	select {
	case <-done:
	case <-time.After(10*time.Second + 2*time.Duration(n)*poll):
		mu.Lock()
		got := len(latencies)
		mu.Unlock()
		t.Fatalf("%s: delivered %d of %d tuples before timeout", transport, got, n)
	}
	mu.Lock()
	defer mu.Unlock()
	return append([]time.Duration(nil), latencies...)
}

func latencyQuantile(samples []time.Duration, q float64) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

// TestBinPushLatencyBeatsPoll is the always-on guard for the transport
// the PR exists to add: with a 60 ms poll period, a polled tuple waits
// tens of milliseconds while a pushed tuple crosses in well under one,
// so even a modest 5x margin has enormous slack on a loaded CI box.
// (The full 100 ms-poll 10x comparison lives in the gated
// TestWriteRGMABench, which writes BENCH_rgma.json.)
func TestBinPushLatencyBeatsPoll(t *testing.T) {
	const n = 15
	poll := 60 * time.Millisecond
	httpLat := measureInsertDeliverLatency(t, "http", n, 4*time.Millisecond, poll)
	binLat := measureInsertDeliverLatency(t, "bin", n, 4*time.Millisecond, poll)
	httpMed := latencyQuantile(httpLat, 0.5)
	binMed := latencyQuantile(binLat, 0.5)
	t.Logf("insert→deliver median: http(poll %v) %v, bin(push) %v", poll, httpMed, binMed)
	if binMed*5 > httpMed {
		t.Fatalf("binary push median %v not at least 5x below %v-poll median %v", binMed, poll, httpMed)
	}
}

// BenchmarkRGMABinInsertDeliver times the binary transport's full
// insert→push→deliver cycle over live TCP: batched INSERT frames from
// one connection fan out to a push-fed continuous consumer on another,
// and an iteration is complete only when the tuple has been delivered
// to the consumer callback — the closest benchmark analogue of the
// paper's end-to-end publish-to-subscriber measurement.
func BenchmarkRGMABinInsertDeliver(b *testing.B) {
	s := rgmabin.NewServer(rgmacore.New(rgmacore.Config{Shards: 2}),
		rgmabin.Config{WriteBuffer: 1 << 16})
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	cc, err := rgmabin.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = cc.Close() }()
	if err := cc.CreateTable(transportTableSQL); err != nil {
		b.Fatal(err)
	}
	var delivered atomic.Int64
	if _, err := cc.CreateConsumer("SELECT * FROM generator", "continuous",
		func(tuples []rgmabin.PoppedTuple) { delivered.Add(int64(len(tuples))) }); err != nil {
		b.Fatal(err)
	}
	pc, err := rgmabin.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = pc.Close() }()
	p, err := pc.CreatePrimaryProducer("generator", time.Minute, time.Minute)
	if err != nil {
		b.Fatal(err)
	}

	const batch = 16
	stmts := make([]string, 0, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stmts = append(stmts, fmt.Sprintf(
			"INSERT INTO generator (genid, seq, power, site) VALUES (%d, %d, 480.5, 'site-0001')", i, i))
		if len(stmts) == batch || i == b.N-1 {
			if err := p.InsertBatch(stmts); err != nil {
				b.Fatal(err)
			}
			stmts = stmts[:0]
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for delivered.Load() < int64(b.N) {
		if time.Now().After(deadline) {
			b.Fatalf("delivered %d of %d", delivered.Load(), b.N)
		}
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
}
