package rgma

import (
	"strings"
	"testing"
	"testing/quick"

	"gridmon/internal/sim"
	"gridmon/internal/simnet"
	"gridmon/internal/sqlmini"
)

// --- TupleStore ---

func TestTupleStoreLatestAndHistory(t *testing.T) {
	tab := MonitoringTable()
	s := NewTupleStore(tab, 30*sim.Second, sim.Minute)
	star, _ := ParseQuery("SELECT * FROM generator")
	// Two inserts for the same generator: latest keeps one, history both.
	s.Insert(Tuple{Row: MonitoringRow(1, 1), InsertedAt: 0})
	s.Insert(Tuple{Row: MonitoringRow(1, 2), InsertedAt: 10 * sim.Second})
	s.Insert(Tuple{Row: MonitoringRow(2, 1), InsertedAt: 10 * sim.Second})
	if got := len(s.History(15*sim.Second, star)); got != 3 {
		t.Fatalf("history = %d, want 3", got)
	}
	latest := s.Latest(15*sim.Second, star)
	if len(latest) != 2 {
		t.Fatalf("latest = %d, want 2 (one per genid)", len(latest))
	}
	for _, tu := range latest {
		if tu.Row[0].Equal(sqlmini.IntV(1)) && !tu.Row[1].Equal(sqlmini.IntV(2)) {
			t.Fatalf("latest for genid 1 is seq %v, want 2", tu.Row[1])
		}
	}
}

func TestTupleStoreRetention(t *testing.T) {
	tab := MonitoringTable()
	s := NewTupleStore(tab, 30*sim.Second, sim.Minute)
	star, _ := ParseQuery("SELECT * FROM generator")
	s.Insert(Tuple{Row: MonitoringRow(1, 1), InsertedAt: 0})
	// At 40s the latest (30s) has expired but history (60s) remains.
	if got := len(s.Latest(40*sim.Second, star)); got != 0 {
		t.Fatalf("latest after 40s = %d", got)
	}
	if got := len(s.History(40*sim.Second, star)); got != 1 {
		t.Fatalf("history after 40s = %d", got)
	}
	// At 90s history has expired too.
	if got := len(s.History(90*sim.Second, star)); got != 0 {
		t.Fatalf("history after 90s = %d", got)
	}
}

func TestTupleStoreQueryFilter(t *testing.T) {
	tab := MonitoringTable()
	s := NewTupleStore(tab, sim.Minute, sim.Minute)
	for i := 0; i < 10; i++ {
		s.Insert(Tuple{Row: MonitoringRow(i, 1), InsertedAt: 0})
	}
	q, _ := ParseQuery("SELECT * FROM generator WHERE genid < 3")
	if got := len(s.History(0, q)); got != 3 {
		t.Fatalf("filtered history = %d, want 3", got)
	}
}

func TestTupleStoreBadRetentionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero retention did not panic")
		}
	}()
	NewTupleStore(MonitoringTable(), 0, sim.Minute)
}

func TestMonitoringRowMatchesSchema(t *testing.T) {
	tab := MonitoringTable()
	if err := sqlmini.CheckRow(tab, MonitoringRow(7, 3)); err != nil {
		t.Fatalf("monitoring row invalid: %v", err)
	}
	counts := map[sqlmini.ColType]int{}
	for _, c := range tab.Columns {
		counts[c.Type]++
	}
	if counts[sqlmini.TInteger] != 4 || counts[sqlmini.TDouble] != 8 || counts[sqlmini.TChar] != 4 {
		t.Fatalf("paper schema mix wrong: %v", counts)
	}
}

// --- Registry ---

func TestRegistryMediation(t *testing.T) {
	r := NewRegistry()
	p1 := r.RegisterProducer(ProducerEntry{Kind: PrimaryKind, Table: "generator", Service: 0})
	p2 := r.RegisterProducer(ProducerEntry{Kind: SecondaryKind, Table: "generator", Service: 1})
	r.RegisterProducer(ProducerEntry{Kind: PrimaryKind, Table: "other", Service: 0})
	if got := len(r.ProducersFor("generator", 0)); got != 2 {
		t.Fatalf("any-kind producers = %d", got)
	}
	if got := r.ProducersFor("generator", PrimaryKind); len(got) != 1 || got[0].ID != p1 {
		t.Fatalf("primary producers = %v", got)
	}
	if got := r.ProducersFor("GENERATOR", SecondaryKind); len(got) != 1 || got[0].ID != p2 {
		t.Fatalf("case-insensitive secondary = %v", got)
	}
	r.UnregisterProducer(p1)
	if got := len(r.ProducersFor("generator", 0)); got != 1 {
		t.Fatalf("after unregister = %d", got)
	}
	pn, cn := r.Counts()
	if pn != 2 || cn != 0 {
		t.Fatalf("counts = %d/%d", pn, cn)
	}
}

func TestParseQuery(t *testing.T) {
	if _, err := ParseQuery("SELECT * FROM generator WHERE genid < 10"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseQuery("INSERT INTO t VALUES (1)"); err == nil {
		t.Fatal("non-SELECT accepted")
	}
	if _, err := ParseQuery("SELECT FROM"); err == nil {
		t.Fatal("garbage accepted")
	}
	if ContinuousQuery.String() != "CONTINUOUS" || LatestQuery.String() != "LATEST" || HistoryQuery.String() != "HISTORY" {
		t.Fatal("query type names")
	}
	if PrimaryKind.String() != "PrimaryProducer" || SecondaryKind.String() != "SecondaryProducer" {
		t.Fatal("kind names")
	}
}

// --- Deployment end to end ---

type rgmaWorld struct {
	k    *sim.Kernel
	net  *simnet.Network
	dep  *Deployment
	psvc *ProducerService
	csvc *ConsumerService
	cli  *simnet.Node
}

// singleServer builds the paper's single-server configuration: registry,
// producer and consumer services all on one Hydra node.
func singleServer(seed int64) *rgmaWorld {
	k := sim.New(seed)
	net := simnet.New(k)
	server := net.AddNode("server", simnet.HydraNode())
	cli := net.AddNode("client1", simnet.HydraNode())
	dep := NewDeployment(net, server, DefaultCosts())
	dep.CreateTable(MonitoringTable())
	return &rgmaWorld{
		k: k, net: net, dep: dep,
		psvc: dep.AddProducerService(server),
		csvc: dep.AddConsumerService(server),
		cli:  cli,
	}
}

func TestEndToEndContinuous(t *testing.T) {
	w := singleServer(1)
	cons, err := w.dep.CreateConsumer(w.cli, w.csvc, "SELECT * FROM generator", ContinuousQuery, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub := StartSubscriber(cons)
	pp, err := w.dep.CreatePrimaryProducer(w.cli, w.psvc, "generator", 30*sim.Second, sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up (the paper's guidance), then insert every 10 s.
	for i := 1; i <= 5; i++ {
		seq := int64(i)
		w.k.At(sim.Time(10+10*i)*sim.Second, func() { pp.Insert(MonitoringRow(1, seq)) })
	}
	w.k.RunUntil(3 * sim.Minute)
	sub.Stop()
	if sub.Received() != 5 {
		t.Fatalf("received = %d, want 5", sub.Received())
	}
	mean := sub.RTT().Mean()
	// R-GMA RTT must be in the sub-second to seconds regime at light
	// load — orders of magnitude above the broker's milliseconds.
	if mean < 100 || mean > 5000 {
		t.Fatalf("R-GMA mean RTT = %v ms, outside plausible band", mean)
	}
}

func TestContentFiltering(t *testing.T) {
	w := singleServer(2)
	cons, err := w.dep.CreateConsumer(w.cli, w.csvc, "SELECT * FROM generator WHERE genid < 2", ContinuousQuery, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub := StartSubscriber(cons)
	for g := 0; g < 4; g++ {
		pp, err := w.dep.CreatePrimaryProducer(w.cli, w.psvc, "generator", 30*sim.Second, sim.Minute)
		if err != nil {
			t.Fatal(err)
		}
		g := g
		w.k.At(20*sim.Second, func() { pp.Insert(MonitoringRow(g, 1)) })
	}
	w.k.RunUntil(sim.Minute)
	if sub.Received() != 2 {
		t.Fatalf("filtered received = %d, want 2 (genid 0 and 1)", sub.Received())
	}
}

func TestInsertAckPRT(t *testing.T) {
	w := singleServer(3)
	pp, err := w.dep.CreatePrimaryProducer(w.cli, w.psvc, "generator", 30*sim.Second, sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var prt sim.Time
	pp.OnInsertAck = func(seq int64, at sim.Time) { prt = at }
	var sent sim.Time
	w.k.At(10*sim.Second, func() {
		sent = w.k.Now()
		pp.Insert(MonitoringRow(1, 1))
	})
	w.k.RunUntil(20 * sim.Second)
	if prt == 0 {
		t.Fatal("no insert ack")
	}
	d := prt - sent
	// Publishing response time is short (paper fig. 15: tens of ms).
	if d < sim.Millisecond || d > 200*sim.Millisecond {
		t.Fatalf("PRT = %v, outside short-request band", d)
	}
}

func TestLatestQueryGather(t *testing.T) {
	w := singleServer(4)
	pp, err := w.dep.CreatePrimaryProducer(w.cli, w.psvc, "generator", sim.Minute, 2*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	w.k.At(10*sim.Second, func() { pp.Insert(MonitoringRow(1, 1)) })
	w.k.At(20*sim.Second, func() { pp.Insert(MonitoringRow(1, 2)) })
	cons, err := w.dep.CreateConsumer(w.cli, w.csvc, "SELECT * FROM generator", LatestQuery, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []StreamedTuple
	w.k.At(40*sim.Second, func() { cons.Pop(func(b []StreamedTuple) { got = b }) })
	w.k.RunUntil(sim.Minute)
	if len(got) != 1 {
		t.Fatalf("latest gather = %d tuples, want 1", len(got))
	}
	if !got[0].Row[1].Equal(sqlmini.IntV(2)) {
		t.Fatalf("latest seq = %v, want 2", got[0].Row[1])
	}
}

func TestHistoryQueryGather(t *testing.T) {
	w := singleServer(5)
	pp, err := w.dep.CreatePrimaryProducer(w.cli, w.psvc, "generator", sim.Minute, 5*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	w.k.At(10*sim.Second, func() { pp.Insert(MonitoringRow(1, 1)) })
	w.k.At(20*sim.Second, func() { pp.Insert(MonitoringRow(1, 2)) })
	cons, err := w.dep.CreateConsumer(w.cli, w.csvc, "SELECT * FROM generator", HistoryQuery, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got []StreamedTuple
	w.k.At(40*sim.Second, func() { cons.Pop(func(b []StreamedTuple) { got = b }) })
	w.k.RunUntil(sim.Minute)
	if len(got) != 2 {
		t.Fatalf("history gather = %d tuples, want 2", len(got))
	}
}

func TestWarmupLoss(t *testing.T) {
	// Publishing immediately after creation loses the first tuples: the
	// consumer has not yet mediated to the new producer (§III.F).
	w := singleServer(6)
	cons, err := w.dep.CreateConsumer(w.cli, w.csvc, "SELECT * FROM generator", ContinuousQuery, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub := StartSubscriber(cons)
	w.k.At(30*sim.Second, func() {
		pp, err := w.dep.CreatePrimaryProducer(w.cli, w.psvc, "generator", 30*sim.Second, sim.Minute)
		if err != nil {
			t.Error(err)
			return
		}
		pp.Insert(MonitoringRow(1, 1)) // immediately, no warm-up
		for i := 2; i <= 4; i++ {
			seq := int64(i)
			w.k.After(sim.Time(i-1)*10*sim.Second, func() { pp.Insert(MonitoringRow(1, seq)) })
		}
	})
	w.k.RunUntil(2 * sim.Minute)
	if sub.Received() >= 4 {
		t.Fatalf("received %d of 4: warm-up loss did not occur", sub.Received())
	}
	if sub.Received() < 2 {
		t.Fatalf("received only %d: mediation never caught up", sub.Received())
	}
}

func TestSecondaryProducerDelay(t *testing.T) {
	w := singleServer(7)
	if _, err := w.dep.CreateSecondaryProducer(w.psvc, w.csvc, "generator", sim.Minute, 2*sim.Minute); err != nil {
		t.Fatal(err)
	}
	// Subscriber reads from the secondary producer only (fig. 10 chain).
	cons, err := w.dep.CreateConsumer(w.cli, w.csvc, "SELECT * FROM generator", ContinuousQuery, SecondaryKind)
	if err != nil {
		t.Fatal(err)
	}
	sub := StartSubscriber(cons)
	pp, err := w.dep.CreatePrimaryProducer(w.cli, w.psvc, "generator", sim.Minute, 2*sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	w.k.At(15*sim.Second, func() { pp.Insert(MonitoringRow(1, 1)) })
	w.k.RunUntil(2 * sim.Minute)
	if sub.Received() != 1 {
		t.Fatalf("received = %d, want 1", sub.Received())
	}
	// The secondary chain must add roughly the deliberate 30 s delay.
	if rtt := sub.RTT().Mean(); rtt < 30000 || rtt > 40000 {
		t.Fatalf("secondary-chain RTT = %v ms, want ~30-40 s", rtt)
	}
}

func TestProducerOOMAround800(t *testing.T) {
	w := singleServer(8)
	created := 0
	for i := 0; i < 1000; i++ {
		if _, err := w.dep.CreatePrimaryProducer(w.cli, w.psvc, "generator", 30*sim.Second, sim.Minute); err != nil {
			break
		}
		created++
	}
	// 1 GB heap minus 64 MB baseline over ~1.15 MB per producer: the
	// paper's "one R-GMA server cannot accept 800 concurrent
	// connections".
	if created < 700 || created >= 900 {
		t.Fatalf("single server accepted %d producers, want a cliff near 800", created)
	}
	if w.dep.RefusedProducers() != 1 {
		t.Fatalf("refused = %d", w.dep.RefusedProducers())
	}
}

func TestGCFactorGrowsWithHeap(t *testing.T) {
	w := singleServer(9)
	node := w.psvc.Node()
	f0 := w.dep.gcFactor(node)
	for i := 0; i < 400; i++ {
		if _, err := w.dep.CreatePrimaryProducer(w.cli, w.psvc, "generator", 30*sim.Second, sim.Minute); err != nil {
			t.Fatal(err)
		}
	}
	f400 := w.dep.gcFactor(node)
	if !(f400 > f0 && f0 >= 1) {
		t.Fatalf("gc factor not increasing: %v -> %v", f0, f400)
	}
}

func TestBadInputs(t *testing.T) {
	w := singleServer(10)
	if _, err := w.dep.CreatePrimaryProducer(w.cli, w.psvc, "nope", sim.Second, sim.Second); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := w.dep.CreateConsumer(w.cli, w.csvc, "SELECT * FROM nope", ContinuousQuery, 0); err == nil {
		t.Fatal("consumer on unknown table accepted")
	}
	if _, err := w.dep.CreateConsumer(w.cli, w.csvc, "not sql", ContinuousQuery, 0); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := w.dep.CreateSecondaryProducer(w.psvc, w.csvc, "nope", sim.Second, sim.Second); err == nil {
		t.Fatal("secondary on unknown table accepted")
	}
}

func TestCloseFreesResources(t *testing.T) {
	w := singleServer(11)
	node := w.psvc.Node()
	base := node.Heap.Used()
	pp, err := w.dep.CreatePrimaryProducer(w.cli, w.psvc, "generator", 30*sim.Second, sim.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := w.dep.CreateConsumer(w.cli, w.csvc, "SELECT * FROM generator", ContinuousQuery, 0)
	if err != nil {
		t.Fatal(err)
	}
	w.k.RunUntil(10 * sim.Second)
	pp.Close()
	cons.Close()
	pp.Close() // double close is a no-op
	if node.Heap.Used() != base {
		t.Fatalf("heap not restored: %d vs %d", node.Heap.Used(), base)
	}
	p, c := w.dep.Registry().Counts()
	if p != 0 || c != 0 {
		t.Fatalf("registry not cleaned: %d/%d", p, c)
	}
}

func TestDistributedFasterThanSingleUnderLoad(t *testing.T) {
	// The paper's headline R-GMA result: the distributed deployment
	// outperforms the single server. Run 120 producers against both.
	run := func(distributed bool) float64 {
		k := sim.New(20)
		net := simnet.New(k)
		cli := net.AddNode("client1", simnet.HydraNode())
		var dep *Deployment
		var psvc *ProducerService
		var csvc *ConsumerService
		if distributed {
			p1 := net.AddNode("prod1", simnet.HydraNode())
			c1 := net.AddNode("cons1", simnet.HydraNode())
			dep = NewDeployment(net, c1, DefaultCosts())
			psvc = dep.AddProducerService(p1)
			csvc = dep.AddConsumerService(c1)
		} else {
			server := net.AddNode("server", simnet.HydraNode())
			dep = NewDeployment(net, server, DefaultCosts())
			psvc = dep.AddProducerService(server)
			csvc = dep.AddConsumerService(server)
		}
		dep.CreateTable(MonitoringTable())
		cons, err := dep.CreateConsumer(cli, csvc, "SELECT * FROM generator", ContinuousQuery, 0)
		if err != nil {
			t.Fatal(err)
		}
		sub := StartSubscriber(cons)
		for g := 0; g < 120; g++ {
			g := g
			k.At(sim.Time(g)*sim.Second, func() {
				pp, err := dep.CreatePrimaryProducer(cli, psvc, "generator", 30*sim.Second, sim.Minute)
				if err != nil {
					t.Error(err)
					return
				}
				for s := 1; s <= 6; s++ {
					seq := int64(s)
					k.After(sim.Time(10+10*s)*sim.Second, func() { pp.Insert(MonitoringRow(g, seq)) })
				}
			})
		}
		k.RunUntil(5 * sim.Minute)
		sub.Stop()
		if sub.Received() == 0 {
			t.Fatal("no deliveries")
		}
		return sub.RTT().Mean()
	}
	single := run(false)
	dist := run(true)
	if dist >= single {
		t.Fatalf("distributed RTT %.0f ms not below single-server %.0f ms", dist, single)
	}
}

func TestDeterministicRGMA(t *testing.T) {
	run := func() (uint64, float64) {
		w := singleServer(42)
		cons, err := w.dep.CreateConsumer(w.cli, w.csvc, "SELECT * FROM generator", ContinuousQuery, 0)
		if err != nil {
			t.Fatal(err)
		}
		sub := StartSubscriber(cons)
		pp, err := w.dep.CreatePrimaryProducer(w.cli, w.psvc, "generator", 30*sim.Second, sim.Minute)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 10; i++ {
			seq := int64(i)
			w.k.At(sim.Time(10+5*i)*sim.Second, func() { pp.Insert(MonitoringRow(1, seq)) })
		}
		w.k.RunUntil(3 * sim.Minute)
		return sub.Received(), sub.RTT().Mean()
	}
	r1, m1 := run()
	r2, m2 := run()
	if r1 != r2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", r1, m1, r2, m2)
	}
}

// Property: the tuple store's latest view always holds at most one row
// per primary key, whatever the insert sequence.
func TestPropertyLatestUnique(t *testing.T) {
	tab := MonitoringTable()
	star, _ := ParseQuery("SELECT * FROM generator")
	f := func(ids []uint8) bool {
		s := NewTupleStore(tab, sim.Minute, sim.Minute)
		for i, id := range ids {
			s.Insert(Tuple{Row: MonitoringRow(int(id%10), int64(i)), InsertedAt: sim.Time(i)})
		}
		latest := s.Latest(sim.Time(len(ids)), star)
		seen := map[string]bool{}
		for _, tu := range latest {
			k := tu.Row[0].String()
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		return len(latest) <= 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatInsertIsValidSQL(t *testing.T) {
	tab := MonitoringTable()
	sql := sqlmini.FormatInsert(tab, MonitoringRow(3, 9))
	if !strings.HasPrefix(sql, "INSERT INTO generator") {
		t.Fatalf("sql = %q", sql)
	}
	if _, err := sqlmini.Parse(sql); err != nil {
		t.Fatalf("generated SQL does not parse: %v", err)
	}
}
