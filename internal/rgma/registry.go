package rgma

import (
	"fmt"
	"strings"

	"gridmon/internal/sqlmini"
)

// ProducerKind distinguishes primary from secondary producers in the
// registry, so queries can be mediated to the right kind (the paper's
// fig. 10 chain reads from Secondary Producers).
type ProducerKind uint8

// Producer kinds.
const (
	PrimaryKind ProducerKind = iota + 1
	SecondaryKind
)

func (k ProducerKind) String() string {
	if k == PrimaryKind {
		return "PrimaryProducer"
	}
	return "SecondaryProducer"
}

// ProducerEntry is a registry record for one producer resource.
type ProducerEntry struct {
	ID      int64
	Kind    ProducerKind
	Table   string
	Service int // producer-service index hosting the resource
}

// ConsumerEntry is a registry record for one consumer resource.
type ConsumerEntry struct {
	ID      int64
	Table   string
	Service int // consumer-service index hosting the resource
}

// Registry is the R-GMA registry's core logic: producer/consumer records
// and table-based mediation. It is pure state; the deployment layer
// charges CPU and network costs around calls.
type Registry struct {
	nextID    int64
	producers map[int64]ProducerEntry
	consumers map[int64]ConsumerEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		producers: make(map[int64]ProducerEntry),
		consumers: make(map[int64]ConsumerEntry),
	}
}

// RegisterProducer records a producer and returns its assigned ID.
func (r *Registry) RegisterProducer(e ProducerEntry) int64 {
	r.nextID++
	e.ID = r.nextID
	r.producers[e.ID] = e
	return e.ID
}

// RegisterConsumer records a consumer and returns its assigned ID.
func (r *Registry) RegisterConsumer(e ConsumerEntry) int64 {
	r.nextID++
	e.ID = r.nextID
	r.consumers[e.ID] = e
	return e.ID
}

// UnregisterProducer removes a producer record.
func (r *Registry) UnregisterProducer(id int64) { delete(r.producers, id) }

// UnregisterConsumer removes a consumer record.
func (r *Registry) UnregisterConsumer(id int64) { delete(r.consumers, id) }

// ProducersFor mediates a consumer query: all producers of the named
// table, restricted to the given kind (0 means any).
func (r *Registry) ProducersFor(table string, kind ProducerKind) []ProducerEntry {
	var out []ProducerEntry
	for _, e := range r.producers {
		if strings.EqualFold(e.Table, table) && (kind == 0 || e.Kind == kind) {
			out = append(out, e)
		}
	}
	return out
}

// Counts reports registered producer and consumer record counts.
func (r *Registry) Counts() (producers, consumers int) {
	return len(r.producers), len(r.consumers)
}

// QueryType is the R-GMA consumer query flavour.
type QueryType uint8

// Query types.
const (
	ContinuousQuery QueryType = iota + 1
	LatestQuery
	HistoryQuery
)

func (q QueryType) String() string {
	switch q {
	case ContinuousQuery:
		return "CONTINUOUS"
	case LatestQuery:
		return "LATEST"
	case HistoryQuery:
		return "HISTORY"
	}
	return "query(?)"
}

// ParseQuery parses and validates a consumer's SELECT statement.
func ParseQuery(src string) (sqlmini.Select, error) {
	st, err := sqlmini.Parse(src)
	if err != nil {
		return sqlmini.Select{}, err
	}
	sel, ok := st.(sqlmini.Select)
	if !ok {
		return sqlmini.Select{}, fmt.Errorf("rgma: consumer query must be SELECT, got %T", st)
	}
	return sel, nil
}
