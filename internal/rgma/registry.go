package rgma

import (
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"gridmon/internal/shardhash"
	"gridmon/internal/sqlmini"
)

// ProducerKind distinguishes primary from secondary producers in the
// registry, so queries can be mediated to the right kind (the paper's
// fig. 10 chain reads from Secondary Producers).
type ProducerKind uint8

// Producer kinds.
const (
	PrimaryKind ProducerKind = iota + 1
	SecondaryKind
)

func (k ProducerKind) String() string {
	if k == PrimaryKind {
		return "PrimaryProducer"
	}
	return "SecondaryProducer"
}

// ProducerEntry is a registry record for one producer resource.
type ProducerEntry struct {
	ID      int64
	Kind    ProducerKind
	Table   string
	Service int // producer-service index hosting the resource
}

// ConsumerEntry is a registry record for one consumer resource.
type ConsumerEntry struct {
	ID      int64
	Table   string
	Service int // consumer-service index hosting the resource
}

// registryShard is one lock domain of the registry. A table's records
// all live on the shard its (lowercased) name hashes to, so mediation
// for one table never contends with registrations on another.
type registryShard struct {
	mu        sync.RWMutex
	producers map[int64]ProducerEntry
	consumers map[int64]ConsumerEntry
	// producersByTable indexes producer IDs by lowercased table name in
	// registration order, so ProducersFor is an index lookup instead of
	// a full-registry scan — and, unlike the old map range, its result
	// order is deterministic.
	producersByTable map[string][]int64
}

// Registry is the R-GMA registry's core logic: producer/consumer records
// and table-based mediation. State is partitioned into lock-domain
// shards keyed by table-name hash; the shards are lock domains, not
// worker goroutines, so a single caller observes bit-identical behaviour
// for any shard count (IDs are assigned from one atomic counter, and
// every per-table order is registration order). All methods are
// shard-safe: they may be called from any goroutine. The deployment
// layer charges CPU and network costs around calls.
type Registry struct {
	nextID    atomic.Int64
	shards    []*registryShard
	producerN atomic.Int64
	consumerN atomic.Int64
}

// DefaultRegistryShards is the shard count NewRegistry uses.
const DefaultRegistryShards = 16

// NewRegistry returns an empty registry with the default shard count.
func NewRegistry() *Registry { return NewRegistrySharded(DefaultRegistryShards) }

// NewRegistrySharded returns an empty registry partitioned into n lock
// domains (n < 1 is treated as 1).
func NewRegistrySharded(n int) *Registry {
	if n < 1 {
		n = 1
	}
	r := &Registry{shards: make([]*registryShard, n)}
	for i := range r.shards {
		r.shards[i] = &registryShard{
			producers:        make(map[int64]ProducerEntry),
			consumers:        make(map[int64]ConsumerEntry),
			producersByTable: make(map[string][]int64),
		}
	}
	return r
}

// tableKey normalises a table name for indexing (SQL table matching in
// mediation is case-insensitive, as the old EqualFold scan behaved).
func tableKey(table string) string { return strings.ToLower(table) }

// shardFor returns the lock domain owning a table's records (routed by
// the repo-wide shard hash).
func (r *Registry) shardFor(table string) *registryShard {
	if len(r.shards) == 1 {
		return r.shards[0]
	}
	return r.shards[shardhash.FNV1a(tableKey(table))%uint32(len(r.shards))]
}

// NumShards reports the registry's lock-domain count. Shard-safe.
func (r *Registry) NumShards() int { return len(r.shards) }

// RegisterProducer records a producer and returns its assigned ID.
// Shard-safe.
func (r *Registry) RegisterProducer(e ProducerEntry) int64 {
	e.ID = r.nextID.Add(1)
	sh := r.shardFor(e.Table)
	key := tableKey(e.Table)
	sh.mu.Lock()
	sh.producers[e.ID] = e
	sh.producersByTable[key] = append(sh.producersByTable[key], e.ID)
	sh.mu.Unlock()
	r.producerN.Add(1)
	return e.ID
}

// RegisterConsumer records a consumer and returns its assigned ID.
// Shard-safe.
func (r *Registry) RegisterConsumer(e ConsumerEntry) int64 {
	e.ID = r.nextID.Add(1)
	sh := r.shardFor(e.Table)
	sh.mu.Lock()
	sh.consumers[e.ID] = e
	sh.mu.Unlock()
	r.consumerN.Add(1)
	return e.ID
}

// UnregisterProducerFrom removes a producer record whose table is
// known, locking only the table's shard. Every caller that created the
// registration knows the table; prefer this over UnregisterProducer.
// Shard-safe.
func (r *Registry) UnregisterProducerFrom(table string, id int64) {
	r.unregisterProducer(r.shardFor(table), id)
}

// UnregisterProducer removes a producer record by ID alone. The ID does
// not name the owning shard, so the shards are probed in turn; records
// are id-unique, so at most one shard holds it. Shard-safe.
func (r *Registry) UnregisterProducer(id int64) {
	for _, sh := range r.shards {
		if r.unregisterProducer(sh, id) {
			return
		}
	}
}

func (r *Registry) unregisterProducer(sh *registryShard, id int64) bool {
	sh.mu.Lock()
	e, ok := sh.producers[id]
	if !ok {
		sh.mu.Unlock()
		return false
	}
	delete(sh.producers, id)
	key := tableKey(e.Table)
	ids := sh.producersByTable[key]
	if i := slices.Index(ids, id); i >= 0 {
		sh.producersByTable[key] = slices.Delete(ids, i, i+1)
	}
	sh.mu.Unlock()
	r.producerN.Add(-1)
	return true
}

// UnregisterConsumerFrom removes a consumer record whose table is
// known, locking only the table's shard. Shard-safe.
func (r *Registry) UnregisterConsumerFrom(table string, id int64) {
	r.unregisterConsumer(r.shardFor(table), id)
}

// UnregisterConsumer removes a consumer record by ID alone (probing the
// shards, as UnregisterProducer does). Shard-safe.
func (r *Registry) UnregisterConsumer(id int64) {
	for _, sh := range r.shards {
		if r.unregisterConsumer(sh, id) {
			return
		}
	}
}

func (r *Registry) unregisterConsumer(sh *registryShard, id int64) bool {
	sh.mu.Lock()
	if _, ok := sh.consumers[id]; !ok {
		sh.mu.Unlock()
		return false
	}
	delete(sh.consumers, id)
	sh.mu.Unlock()
	r.consumerN.Add(-1)
	return true
}

// ProducersFor mediates a consumer query: all producers of the named
// table, restricted to the given kind (0 means any), in registration
// order. The lookup reads only the table's shard and only the table's
// own index entry — mediation cost no longer grows with the number of
// producers on other tables. Shard-safe.
func (r *Registry) ProducersFor(table string, kind ProducerKind) []ProducerEntry {
	sh := r.shardFor(table)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	ids := sh.producersByTable[tableKey(table)]
	var out []ProducerEntry
	for _, id := range ids {
		e := sh.producers[id]
		if kind == 0 || e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Counts reports registered producer and consumer record counts from
// atomic counters; it takes no locks and is safe during concurrent
// registration sweeps. Shard-safe.
func (r *Registry) Counts() (producers, consumers int) {
	return int(r.producerN.Load()), int(r.consumerN.Load())
}

// QueryType is the R-GMA consumer query flavour.
type QueryType uint8

// Query types.
const (
	ContinuousQuery QueryType = iota + 1
	LatestQuery
	HistoryQuery
)

func (q QueryType) String() string {
	switch q {
	case ContinuousQuery:
		return "CONTINUOUS"
	case LatestQuery:
		return "LATEST"
	case HistoryQuery:
		return "HISTORY"
	}
	return "query(?)"
}

// ParseQuery parses and validates a consumer's SELECT statement.
func ParseQuery(src string) (sqlmini.Select, error) {
	st, err := sqlmini.Parse(src)
	if err != nil {
		return sqlmini.Select{}, err
	}
	sel, ok := st.(sqlmini.Select)
	if !ok {
		return sqlmini.Select{}, fmt.Errorf("rgma: consumer query must be SELECT, got %T", st)
	}
	return sel, nil
}
