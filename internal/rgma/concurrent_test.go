package rgma

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"gridmon/internal/sim"
)

// --- mediation index correctness ---

// refRegistry is the seed's registry: one flat map, mediation by full
// linear scan. The sharded registry must mediate to exactly the same
// producer sets through every register/unregister sequence.
type refRegistry struct {
	nextID    int64
	producers map[int64]ProducerEntry
}

func (r *refRegistry) register(e ProducerEntry) int64 {
	r.nextID++
	e.ID = r.nextID
	r.producers[e.ID] = e
	return e.ID
}

func (r *refRegistry) producersFor(table string, kind ProducerKind) []ProducerEntry {
	var out []ProducerEntry
	for _, e := range r.producers {
		if equalFold(e.Table, table) && (kind == 0 || e.Kind == kind) {
			out = append(out, e)
		}
	}
	return out
}

func equalFold(a, b string) bool { return tableKey(a) == tableKey(b) }

// TestMediationMatchesLinearScan pins that the by-table index returns
// the same mediation results as the full-registry scan it replaced,
// over randomized register/unregister sequences, kinds and shard
// counts (including the degenerate single shard).
func TestMediationMatchesLinearScan(t *testing.T) {
	tables := []string{"generator", "Generator", "turbine", "grid_load", "SUBSTATION", "x"}
	for _, shards := range []int{1, 2, 8, 16} {
		rng := rand.New(rand.NewSource(int64(1000 + shards)))
		r := NewRegistrySharded(shards)
		ref := &refRegistry{producers: make(map[int64]ProducerEntry)}
		var live []int64
		for op := 0; op < 2000; op++ {
			if len(live) > 0 && rng.Intn(4) == 0 {
				i := rng.Intn(len(live))
				id := live[i]
				live = append(live[:i], live[i+1:]...)
				r.UnregisterProducer(id)
				delete(ref.producers, id)
				continue
			}
			e := ProducerEntry{
				Kind:    ProducerKind(1 + rng.Intn(2)),
				Table:   tables[rng.Intn(len(tables))],
				Service: rng.Intn(4),
			}
			id := r.RegisterProducer(e)
			refID := ref.register(e)
			if id != refID {
				t.Fatalf("shards=%d: sharded ID %d, reference ID %d — single-caller ID sequence diverged", shards, id, refID)
			}
			live = append(live, id)
		}
		for _, table := range tables {
			for _, kind := range []ProducerKind{0, PrimaryKind, SecondaryKind} {
				got := r.ProducersFor(table, kind)
				want := ref.producersFor(table, kind)
				sortEntries(got)
				sortEntries(want)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("shards=%d ProducersFor(%q, %v):\n got %v\nwant %v", shards, table, kind, got, want)
				}
			}
		}
		gotP, _ := r.Counts()
		if gotP != len(ref.producers) {
			t.Fatalf("shards=%d: Counts %d, reference %d", shards, gotP, len(ref.producers))
		}
	}
}

func sortEntries(es []ProducerEntry) {
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
}

// TestMediationOrderDeterministic pins the index's registration-order
// contract (the old map scan returned a random permutation; the sim
// kernel breaks event ties by submission order, so mediation must not
// reintroduce map-range nondeterminism).
func TestMediationOrderDeterministic(t *testing.T) {
	r := NewRegistry()
	var want []int64
	for i := 0; i < 50; i++ {
		want = append(want, r.RegisterProducer(ProducerEntry{Kind: PrimaryKind, Table: "generator"}))
	}
	for trial := 0; trial < 5; trial++ {
		got := r.ProducersFor("GENERATOR", 0)
		if len(got) != len(want) {
			t.Fatalf("mediated %d of %d", len(got), len(want))
		}
		for i, e := range got {
			if e.ID != want[i] {
				t.Fatalf("trial %d: position %d has ID %d, want registration order %d", trial, i, e.ID, want[i])
			}
		}
	}
}

// TestRegistryShardedVsSerialEquivalence replays one randomized op
// sequence against a single-shard and a many-shard registry: every
// mediation result and count along the way must be identical — shards
// are lock domains, not a behaviour change.
func TestRegistryShardedVsSerialEquivalence(t *testing.T) {
	tables := []string{"generator", "turbine", "grid_load", "relay", "meter"}
	run := func(shards int) string {
		rng := rand.New(rand.NewSource(99))
		r := NewRegistrySharded(shards)
		var transcript []string
		var live []int64
		for op := 0; op < 1500; op++ {
			switch {
			case len(live) > 0 && rng.Intn(5) == 0:
				i := rng.Intn(len(live))
				r.UnregisterProducer(live[i])
				live = append(live[:i], live[i+1:]...)
			case rng.Intn(5) == 1:
				r.RegisterConsumer(ConsumerEntry{Table: tables[rng.Intn(len(tables))]})
			default:
				id := r.RegisterProducer(ProducerEntry{
					Kind:  ProducerKind(1 + rng.Intn(2)),
					Table: tables[rng.Intn(len(tables))],
				})
				live = append(live, id)
			}
			if op%37 == 0 {
				entries := r.ProducersFor(tables[rng.Intn(len(tables))], ProducerKind(rng.Intn(3)))
				p, c := r.Counts()
				transcript = append(transcript, fmt.Sprint(entries, p, c))
			}
		}
		return fmt.Sprint(transcript)
	}
	serial := run(1)
	for _, shards := range []int{4, 16, 64} {
		if got := run(shards); got != serial {
			t.Fatalf("shards=%d transcript diverges from single-shard run", shards)
		}
	}
}

// --- -race stress ---

// TestRegistryConcurrentStress hammers one registry from many
// goroutines: registrations, unregistrations, mediation sweeps and
// count reads across more tables than shards. Run under -race.
func TestRegistryConcurrentStress(t *testing.T) {
	r := NewRegistrySharded(8)
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []int64
			for op := 0; op < 800; op++ {
				table := fmt.Sprintf("table%d", rng.Intn(24))
				switch {
				case len(mine) > 0 && rng.Intn(3) == 0:
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					r.UnregisterProducer(id)
				case rng.Intn(4) == 0:
					r.ProducersFor(table, ProducerKind(rng.Intn(3)))
				case rng.Intn(7) == 0:
					r.Counts()
				default:
					mine = append(mine, r.RegisterProducer(ProducerEntry{
						Kind:  ProducerKind(1 + rng.Intn(2)),
						Table: table,
					}))
				}
			}
			for _, id := range mine {
				r.UnregisterProducer(id)
			}
		}(w)
	}
	wg.Wait()
	p, _ := r.Counts()
	if p != 0 {
		t.Fatalf("producers left after teardown: %d", p)
	}
	for i := 0; i < 24; i++ {
		if got := r.ProducersFor(fmt.Sprintf("table%d", i), 0); len(got) != 0 {
			t.Fatalf("table%d still mediates %d producers after teardown", i, len(got))
		}
	}
}

// TestTupleStoreConcurrentStress drives one store from parallel
// inserters, queriers and retention sweeps. Run under -race.
func TestTupleStoreConcurrentStress(t *testing.T) {
	tab := MonitoringTable()
	s := NewTupleStore(tab, 30*sim.Second, sim.Minute)
	star, _ := ParseQuery("SELECT * FROM generator")
	prog := star.Compiled(tab)
	filtered, _ := ParseQuery("SELECT * FROM generator WHERE genid < 4")
	fprog := filtered.Compiled(tab)
	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				now := sim.Time(i) * sim.Millisecond
				switch w % 4 {
				case 0:
					s.Insert(Tuple{Row: MonitoringRow(w, int64(i)), InsertedAt: now})
				case 1:
					s.LatestCompiled(now, fprog)
				case 2:
					s.HistoryCompiled(now, prog)
				default:
					s.Purge(now)
					s.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Inserts != 3*500 {
		t.Fatalf("inserts = %d, want %d", st.Inserts, 3*500)
	}
	if got := len(s.LatestCompiled(0, prog)); got > 3 {
		t.Fatalf("latest rows = %d, want <= 3 distinct genids", got)
	}
}

// TestLatestDeterministicOrder pins the primary-key ordering of the
// latest view (the seed returned map order, which a concurrent binding
// cannot reproduce run-to-run).
func TestLatestDeterministicOrder(t *testing.T) {
	tab := MonitoringTable()
	s := NewTupleStore(tab, sim.Minute, sim.Minute)
	for _, id := range []int{9, 3, 7, 1, 5} {
		s.Insert(Tuple{Row: MonitoringRow(id, 1), InsertedAt: 0})
	}
	star, _ := ParseQuery("SELECT * FROM generator")
	var prev string
	for trial := 0; trial < 4; trial++ {
		out := s.Latest(0, star)
		var ids string
		for _, tu := range out {
			ids += tu.Row[0].String() + ","
		}
		if trial > 0 && ids != prev {
			t.Fatalf("latest order changed between calls: %q vs %q", ids, prev)
		}
		prev = ids
	}
	if prev != "1,3,5,7,9," {
		t.Fatalf("latest order = %q, want sorted primary keys", prev)
	}
}

// TestStoreCompiledMatchesInterpreted cross-checks the store's compiled
// query path against the interpreted one on the same store state.
func TestStoreCompiledMatchesInterpreted(t *testing.T) {
	tab := MonitoringTable()
	s := NewTupleStore(tab, sim.Minute, 2*sim.Minute)
	for i := 0; i < 20; i++ {
		s.Insert(Tuple{Row: MonitoringRow(i%7, int64(i)), InsertedAt: sim.Time(i) * sim.Second})
	}
	for _, q := range []string{
		"SELECT * FROM generator",
		"SELECT * FROM generator WHERE genid < 3",
		"SELECT * FROM generator WHERE genid = 2 OR seq > 15",
		"SELECT * FROM generator WHERE site = 'site-0003' AND genid IS NOT NULL",
	} {
		sel, err := ParseQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		prog := sel.Compiled(tab)
		now := 30 * sim.Second
		if got, want := fmt.Sprint(s.HistoryCompiled(now, prog)), fmt.Sprint(s.History(now, sel)); got != want {
			t.Fatalf("%s: compiled history differs\n got %s\nwant %s", q, got, want)
		}
		if got, want := fmt.Sprint(s.LatestCompiled(now, prog)), fmt.Sprint(s.Latest(now, sel)); got != want {
			t.Fatalf("%s: compiled latest differs\n got %s\nwant %s", q, got, want)
		}
	}
}
