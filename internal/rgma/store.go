// Package rgma reproduces the Relational Grid Monitoring Architecture
// (R-GMA, gLite 3.0) as evaluated by the paper: a virtual database in
// which Primary Producers publish tuples via SQL INSERT into memory
// storage with latest/history retention, Secondary Producers re-publish
// with their deliberate ~30 s delay, Consumers run continuous, latest or
// history SELECT queries mediated through a Registry, and subscribers
// poll their consumer every 100 ms.
//
// The performance-relevant mechanisms the paper observed are modelled
// explicitly: servlet/HTTP request costs, the producer→consumer streaming
// period, registry mediation sweeps (whose latency causes the "warm-up"
// data loss of §III.F), JVM heap pressure that inflates service times as
// the heap fills (the growth in fig. 11), and per-producer heap costs
// that out-of-memory a single server near 800 connections.
//
// # Concurrency
//
// The package has two halves with different thread-safety contracts.
//
// Shard-safe (callable from any goroutine): Registry — state partitioned
// into lock-domain shards keyed by table-name hash, counts atomic — and
// TupleStore, whose retention sweeps, inserts, queries and stats are
// guarded internally (stats are atomic counters). Shards are lock
// domains, not worker goroutines: a single caller observes bit-identical
// behaviour for any shard count, which keeps the simulated experiment
// figures byte-identical.
//
// Serial-only: Deployment and everything reached through it
// (ProducerService, ConsumerService, PrimaryProducer, Consumer,
// Subscriber, SecondaryProducer). These run inside the deterministic
// simulation kernel, whose event loop is the only caller; they take no
// locks of their own. The concurrent HTTP binding lives in
// internal/rgmahttp and composes the shard-safe half only.
package rgma

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"gridmon/internal/sim"
	"gridmon/internal/sqlmini"
)

// Tuple is a stored row with its timing metadata.
type Tuple struct {
	Row sqlmini.Row
	// SentAt is the generator-side creation instant (before_sending).
	SentAt sim.Time
	// InsertedAt is when the producer service stored the row.
	InsertedAt sim.Time
}

// TupleStore is a Primary/Secondary Producer's memory storage: history
// rows retained for the history retention period and a latest row per
// primary key retained for the latest retention period, as configured by
// the paper's tests (30 s latest, 1 min history).
//
// A TupleStore is shard-safe: Insert, Purge, the query methods and
// Stats may be called from any goroutine (a mutex guards the row state;
// counters are atomic). With a single caller the lock is uncontended
// and behaviour is identical to the pre-concurrency store, except that
// Latest now returns rows in deterministic primary-key order rather
// than map order.
type TupleStore struct {
	table            *sqlmini.Table
	latestRetention  sim.Time
	historyRetention sim.Time

	mu      sync.Mutex
	history []Tuple
	latest  map[string]Tuple

	inserts atomic.Uint64
	purged  atomic.Uint64
}

// NewTupleStore creates memory storage for one table.
func NewTupleStore(table *sqlmini.Table, latestRetention, historyRetention sim.Time) *TupleStore {
	if latestRetention <= 0 || historyRetention <= 0 {
		panic("rgma: non-positive retention period")
	}
	return &TupleStore{
		table:            table,
		latestRetention:  latestRetention,
		historyRetention: historyRetention,
		latest:           make(map[string]Tuple),
	}
}

// Table returns the store's schema.
func (s *TupleStore) Table() *sqlmini.Table { return s.table }

// keyOf renders the primary-key value(s) of a row. Tables without a
// primary key treat the whole row as identity.
func (s *TupleStore) keyOf(row sqlmini.Row) string {
	pk := s.table.PrimaryKey()
	if len(pk) == 0 {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		return strings.Join(parts, "|")
	}
	parts := make([]string, len(pk))
	for i, idx := range pk {
		if idx < len(row) {
			parts[i] = row[idx].String()
		}
	}
	return strings.Join(parts, "|")
}

// Insert stores a tuple, updating the latest view.
func (s *TupleStore) Insert(t Tuple) {
	key := s.keyOf(t.Row)
	s.mu.Lock()
	s.history = append(s.history, t)
	s.latest[key] = t
	s.mu.Unlock()
	s.inserts.Add(1)
}

// Purge drops rows past their retention periods. Safe from any
// goroutine — retention sweeps may run concurrently with inserts and
// queries.
func (s *TupleStore) Purge(now sim.Time) {
	s.mu.Lock()
	s.purgeLocked(now)
	s.mu.Unlock()
}

func (s *TupleStore) purgeLocked(now sim.Time) {
	cut := 0
	for cut < len(s.history) && now-s.history[cut].InsertedAt > s.historyRetention {
		cut++
	}
	if cut > 0 {
		s.history = append([]Tuple(nil), s.history[cut:]...)
		s.purged.Add(uint64(cut))
	}
	for k, t := range s.latest {
		if now-t.InsertedAt > s.latestRetention {
			delete(s.latest, k)
		}
	}
}

// History returns retained history tuples matching the query, via the
// interpreted predicate path.
func (s *TupleStore) History(now sim.Time, sel sqlmini.Select) []Tuple {
	return s.historyWith(now, func(r sqlmini.Row) bool { return sqlmini.Matches(s.table, sel, r) })
}

// HistoryCompiled returns retained history tuples accepted by a
// compiled predicate program (nil matches every row). The program must
// have been compiled against this store's schema.
func (s *TupleStore) HistoryCompiled(now sim.Time, p *sqlmini.Program) []Tuple {
	return s.historyWith(now, p.Matches)
}

func (s *TupleStore) historyWith(now sim.Time, match func(sqlmini.Row) bool) []Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeLocked(now)
	var out []Tuple
	for _, t := range s.history {
		if match(t.Row) {
			out = append(out, t)
		}
	}
	return out
}

// Latest returns the retained latest tuple per primary key matching the
// query, via the interpreted predicate path, in primary-key order.
func (s *TupleStore) Latest(now sim.Time, sel sqlmini.Select) []Tuple {
	return s.latestWith(now, func(r sqlmini.Row) bool { return sqlmini.Matches(s.table, sel, r) })
}

// LatestCompiled returns the retained latest tuples accepted by a
// compiled predicate program (nil matches every row), in primary-key
// order. The program must have been compiled against this store's
// schema.
func (s *TupleStore) LatestCompiled(now sim.Time, p *sqlmini.Program) []Tuple {
	return s.latestWith(now, p.Matches)
}

func (s *TupleStore) latestWith(now sim.Time, match func(sqlmini.Row) bool) []Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.purgeLocked(now)
	keys := make([]string, 0, len(s.latest))
	for k := range s.latest {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Tuple
	for _, k := range keys {
		if t := s.latest[k]; match(t.Row) {
			out = append(out, t)
		}
	}
	return out
}

// Dump snapshots the store's retained tuples in replay order: latest-view
// tuples whose history copy has already been purged (oldest first, key
// order on ties), then the history in insert order. Re-inserting the
// returned tuples in order — preserving their InsertedAt stamps — rebuilds
// both views: the pre-history tuples seed latest entries that outlived
// their history copies, and each history insert overwrites latest for its
// key exactly as the original did. Tuples past a retention period at
// replay time are shed by the first post-replay purge, so a replayed
// store answers every query identically. The returned Tuples share Row
// slices with the store; callers must not mutate them.
func (s *TupleStore) Dump() []Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	covered := make(map[string]bool, len(s.history))
	for _, t := range s.history {
		covered[s.keyOf(t.Row)] = true
	}
	type keyed struct {
		key string
		t   Tuple
	}
	var pre []keyed
	for k, t := range s.latest {
		if !covered[k] {
			pre = append(pre, keyed{k, t})
		}
	}
	sort.Slice(pre, func(i, j int) bool {
		if pre[i].t.InsertedAt != pre[j].t.InsertedAt {
			return pre[i].t.InsertedAt < pre[j].t.InsertedAt
		}
		return pre[i].key < pre[j].key
	})
	out := make([]Tuple, 0, len(pre)+len(s.history))
	for _, kt := range pre {
		out = append(out, kt.t)
	}
	return append(out, s.history...)
}

// Len reports retained history size (after no purge; tests use it).
func (s *TupleStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.history)
}

// StoreStats is a TupleStore's counters, readable from any goroutine.
type StoreStats struct {
	Inserts uint64 // tuples ever inserted
	Purged  uint64 // history rows dropped by retention sweeps
	History int    // currently retained history rows
	Latest  int    // currently retained latest rows
}

// Stats snapshots the store's counters. Shard-safe.
func (s *TupleStore) Stats() StoreStats {
	s.mu.Lock()
	h, l := len(s.history), len(s.latest)
	s.mu.Unlock()
	return StoreStats{
		Inserts: s.inserts.Load(),
		Purged:  s.purged.Load(),
		History: h,
		Latest:  l,
	}
}

// MonitoringTable returns the paper's R-GMA workload schema: "four
// integer, eight double and four char (length 20) values".
func MonitoringTable() *sqlmini.Table {
	return &sqlmini.Table{
		Name: "generator",
		Columns: []sqlmini.Column{
			{Name: "genid", Type: sqlmini.TInteger, Primary: true},
			{Name: "seq", Type: sqlmini.TInteger},
			{Name: "status_code", Type: sqlmini.TInteger},
			{Name: "alarms", Type: sqlmini.TInteger},
			{Name: "power", Type: sqlmini.TDouble},
			{Name: "voltage", Type: sqlmini.TDouble},
			{Name: "current", Type: sqlmini.TDouble},
			{Name: "frequency", Type: sqlmini.TDouble},
			{Name: "phase", Type: sqlmini.TDouble},
			{Name: "temp", Type: sqlmini.TDouble},
			{Name: "pressure", Type: sqlmini.TDouble},
			{Name: "efficiency", Type: sqlmini.TDouble},
			{Name: "site", Type: sqlmini.TChar, Len: 20},
			{Name: "model", Type: sqlmini.TChar, Len: 20},
			{Name: "status", Type: sqlmini.TChar, Len: 20},
			{Name: "operator", Type: sqlmini.TChar, Len: 20},
		},
	}
}

// MonitoringRow builds one sample row for the paper's schema.
func MonitoringRow(genID int, seq int64) sqlmini.Row {
	return sqlmini.Row{
		sqlmini.IntV(int64(genID)),
		sqlmini.IntV(seq),
		sqlmini.IntV(0),
		sqlmini.IntV(0),
		sqlmini.FloatV(480.5),
		sqlmini.FloatV(239.9),
		sqlmini.FloatV(13.2),
		sqlmini.FloatV(50.01),
		sqlmini.FloatV(0.42),
		sqlmini.FloatV(341.25),
		sqlmini.FloatV(101.325),
		sqlmini.FloatV(0.9312),
		sqlmini.StringV(fmt.Sprintf("site-%04d", genID%500)),
		sqlmini.StringV("wind-v90"),
		sqlmini.StringV("RUNNING"),
		sqlmini.StringV("grid-ops"),
	}
}
