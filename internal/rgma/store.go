// Package rgma reproduces the Relational Grid Monitoring Architecture
// (R-GMA, gLite 3.0) as evaluated by the paper: a virtual database in
// which Primary Producers publish tuples via SQL INSERT into memory
// storage with latest/history retention, Secondary Producers re-publish
// with their deliberate ~30 s delay, Consumers run continuous, latest or
// history SELECT queries mediated through a Registry, and subscribers
// poll their consumer every 100 ms.
//
// The performance-relevant mechanisms the paper observed are modelled
// explicitly: servlet/HTTP request costs, the producer→consumer streaming
// period, registry mediation sweeps (whose latency causes the "warm-up"
// data loss of §III.F), JVM heap pressure that inflates service times as
// the heap fills (the growth in fig. 11), and per-producer heap costs
// that out-of-memory a single server near 800 connections.
package rgma

import (
	"fmt"
	"strings"

	"gridmon/internal/sim"
	"gridmon/internal/sqlmini"
)

// Tuple is a stored row with its timing metadata.
type Tuple struct {
	Row sqlmini.Row
	// SentAt is the generator-side creation instant (before_sending).
	SentAt sim.Time
	// InsertedAt is when the producer service stored the row.
	InsertedAt sim.Time
}

// TupleStore is a Primary/Secondary Producer's memory storage: history
// rows retained for the history retention period and a latest row per
// primary key retained for the latest retention period, as configured by
// the paper's tests (30 s latest, 1 min history).
type TupleStore struct {
	table            *sqlmini.Table
	latestRetention  sim.Time
	historyRetention sim.Time

	history []Tuple
	latest  map[string]Tuple
}

// NewTupleStore creates memory storage for one table.
func NewTupleStore(table *sqlmini.Table, latestRetention, historyRetention sim.Time) *TupleStore {
	if latestRetention <= 0 || historyRetention <= 0 {
		panic("rgma: non-positive retention period")
	}
	return &TupleStore{
		table:            table,
		latestRetention:  latestRetention,
		historyRetention: historyRetention,
		latest:           make(map[string]Tuple),
	}
}

// Table returns the store's schema.
func (s *TupleStore) Table() *sqlmini.Table { return s.table }

// keyOf renders the primary-key value(s) of a row. Tables without a
// primary key treat the whole row as identity.
func (s *TupleStore) keyOf(row sqlmini.Row) string {
	pk := s.table.PrimaryKey()
	if len(pk) == 0 {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		return strings.Join(parts, "|")
	}
	parts := make([]string, len(pk))
	for i, idx := range pk {
		parts[i] = row[idx].String()
	}
	return strings.Join(parts, "|")
}

// Insert stores a tuple, updating the latest view.
func (s *TupleStore) Insert(t Tuple) {
	s.history = append(s.history, t)
	s.latest[s.keyOf(t.Row)] = t
}

// Purge drops rows past their retention periods.
func (s *TupleStore) Purge(now sim.Time) {
	cut := 0
	for cut < len(s.history) && now-s.history[cut].InsertedAt > s.historyRetention {
		cut++
	}
	if cut > 0 {
		s.history = append([]Tuple(nil), s.history[cut:]...)
	}
	for k, t := range s.latest {
		if now-t.InsertedAt > s.latestRetention {
			delete(s.latest, k)
		}
	}
}

// History returns retained history tuples matching the query.
func (s *TupleStore) History(now sim.Time, sel sqlmini.Select) []Tuple {
	s.Purge(now)
	var out []Tuple
	for _, t := range s.history {
		if sqlmini.Matches(s.table, sel, t.Row) {
			out = append(out, t)
		}
	}
	return out
}

// Latest returns the retained latest tuple per primary key matching the
// query.
func (s *TupleStore) Latest(now sim.Time, sel sqlmini.Select) []Tuple {
	s.Purge(now)
	var out []Tuple
	for _, t := range s.latest {
		if sqlmini.Matches(s.table, sel, t.Row) {
			out = append(out, t)
		}
	}
	return out
}

// Len reports retained history size (after no purge; tests use it).
func (s *TupleStore) Len() int { return len(s.history) }

// MonitoringTable returns the paper's R-GMA workload schema: "four
// integer, eight double and four char (length 20) values".
func MonitoringTable() *sqlmini.Table {
	return &sqlmini.Table{
		Name: "generator",
		Columns: []sqlmini.Column{
			{Name: "genid", Type: sqlmini.TInteger, Primary: true},
			{Name: "seq", Type: sqlmini.TInteger},
			{Name: "status_code", Type: sqlmini.TInteger},
			{Name: "alarms", Type: sqlmini.TInteger},
			{Name: "power", Type: sqlmini.TDouble},
			{Name: "voltage", Type: sqlmini.TDouble},
			{Name: "current", Type: sqlmini.TDouble},
			{Name: "frequency", Type: sqlmini.TDouble},
			{Name: "phase", Type: sqlmini.TDouble},
			{Name: "temp", Type: sqlmini.TDouble},
			{Name: "pressure", Type: sqlmini.TDouble},
			{Name: "efficiency", Type: sqlmini.TDouble},
			{Name: "site", Type: sqlmini.TChar, Len: 20},
			{Name: "model", Type: sqlmini.TChar, Len: 20},
			{Name: "status", Type: sqlmini.TChar, Len: 20},
			{Name: "operator", Type: sqlmini.TChar, Len: 20},
		},
	}
}

// MonitoringRow builds one sample row for the paper's schema.
func MonitoringRow(genID int, seq int64) sqlmini.Row {
	return sqlmini.Row{
		sqlmini.IntV(int64(genID)),
		sqlmini.IntV(seq),
		sqlmini.IntV(0),
		sqlmini.IntV(0),
		sqlmini.FloatV(480.5),
		sqlmini.FloatV(239.9),
		sqlmini.FloatV(13.2),
		sqlmini.FloatV(50.01),
		sqlmini.FloatV(0.42),
		sqlmini.FloatV(341.25),
		sqlmini.FloatV(101.325),
		sqlmini.FloatV(0.9312),
		sqlmini.StringV(fmt.Sprintf("site-%04d", genID%500)),
		sqlmini.StringV("wind-v90"),
		sqlmini.StringV("RUNNING"),
		sqlmini.StringV("grid-ops"),
	}
}
