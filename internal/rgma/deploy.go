package rgma

import (
	"fmt"

	"gridmon/internal/metrics"
	"gridmon/internal/sim"
	"gridmon/internal/simnet"
	"gridmon/internal/sqlmini"
)

// Costs models R-GMA's servlet-era overheads. CPU costs are virtual time
// on the reference Pentium III node; requests additionally pay RPCLatency
// on the wire. Service CPU costs are inflated by the hosting node's heap
// pressure (gcFactor), the mechanism behind the paper's load growth.
type Costs struct {
	ServletRequest   sim.Time // HTTP parse + servlet dispatch per request
	InsertParse      sim.Time // SQL INSERT parse + validate + store
	PerTupleStream   sim.Time // per tuple per flush at the producer service
	PerTupleIngest   sim.Time // per tuple arriving at the consumer service
	PopRequest       sim.Time // consumer poll handling
	RegistryLookup   sim.Time // mediation lookup
	RegistryRegister sim.Time // producer/consumer registration
	ClientRequest    sim.Time // client-side cost per API call
	RPCLatency       sim.Time // one-way HTTP-over-LAN latency

	StreamPeriod    sim.Time // producer->consumer flush period (base)
	MediationPeriod sim.Time // consumer mediation sweep period
	PollInterval    sim.Time // subscriber poll period (paper: 100 ms)
	SecondaryDelay  sim.Time // Secondary Producer's deliberate delay

	HeapPerProducer int64 // producer resource + servlet/thread state
	HeapPerConsumer int64 // consumer resource state

	// GCAlpha controls heap-pressure slowdown: service times scale by
	// 1/(1-GCAlpha*heapFraction), approximating the paper-era JVM's GC
	// behaviour as the heap fills.
	GCAlpha float64
}

// DefaultCosts returns the calibrated R-GMA model.
func DefaultCosts() Costs {
	return Costs{
		ServletRequest:   1200 * sim.Microsecond,
		InsertParse:      1200 * sim.Microsecond,
		PerTupleStream:   400 * sim.Microsecond,
		PerTupleIngest:   400 * sim.Microsecond,
		PopRequest:       600 * sim.Microsecond,
		RegistryLookup:   5 * sim.Millisecond,
		RegistryRegister: 8 * sim.Millisecond,
		ClientRequest:    300 * sim.Microsecond,
		RPCLatency:       300 * sim.Microsecond,

		StreamPeriod:    1400 * sim.Millisecond,
		MediationPeriod: 3 * sim.Second,
		PollInterval:    100 * sim.Millisecond,
		SecondaryDelay:  30 * sim.Second,

		HeapPerProducer: 1228 << 10, // ~1.2 MB
		HeapPerConsumer: 300 << 10,

		GCAlpha: 0.75,
	}
}

// Deployment is one R-GMA installation: a registry/schema node plus any
// number of producer- and consumer-service nodes (which may all be the
// same node — the paper's "single server" configuration).
type Deployment struct {
	k     *sim.Kernel
	net   *simnet.Network
	costs Costs

	registryNode *simnet.Node
	registry     *Registry
	schema       map[string]*sqlmini.Table

	producerSvcs []*ProducerService
	consumerSvcs []*ConsumerService

	refusedProducers int
	refusedConsumers int
}

// NewDeployment creates a deployment whose registry and schema services
// run on registryNode.
func NewDeployment(net *simnet.Network, registryNode *simnet.Node, costs Costs) *Deployment {
	return &Deployment{
		k:            net.Kernel(),
		net:          net,
		costs:        costs,
		registryNode: registryNode,
		registry:     NewRegistry(),
		schema:       make(map[string]*sqlmini.Table),
	}
}

// Registry exposes the registry state (tests and experiments read it).
func (d *Deployment) Registry() *Registry { return d.registry }

// RefusedProducers reports producer creations refused for memory.
func (d *Deployment) RefusedProducers() int { return d.refusedProducers }

// CreateTable publishes a schema definition (the schema service).
func (d *Deployment) CreateTable(t *sqlmini.Table) {
	d.schema[t.Name] = t
}

// AddProducerService attaches a producer servlet container to a node.
func (d *Deployment) AddProducerService(node *simnet.Node) *ProducerService {
	s := &ProducerService{d: d, idx: len(d.producerSvcs), node: node, resources: make(map[int64]*producerRes)}
	d.producerSvcs = append(d.producerSvcs, s)
	return s
}

// AddConsumerService attaches a consumer servlet container to a node.
func (d *Deployment) AddConsumerService(node *simnet.Node) *ConsumerService {
	s := &ConsumerService{d: d, idx: len(d.consumerSvcs), node: node, resources: make(map[int64]*consumerRes)}
	d.consumerSvcs = append(d.consumerSvcs, s)
	return s
}

// gcFactor reports the heap-pressure service-time multiplier for a node.
func (d *Deployment) gcFactor(node *simnet.Node) float64 {
	limit := node.Heap.Limit()
	if limit <= 0 || d.costs.GCAlpha <= 0 {
		return 1
	}
	u := float64(node.Heap.Used()) / float64(limit)
	if u > 1 {
		u = 1
	}
	f := 1 / (1 - d.costs.GCAlpha*u)
	if f > 12 {
		f = 12
	}
	return f
}

// rpc models one HTTP request leg: wire latency plus serialization, then
// CPU work at the destination scaled by its heap pressure.
func (d *Deployment) rpc(to *simnet.Node, bytes int, cost sim.Time, fn func()) {
	lat := d.costs.RPCLatency + sim.Time(bytes)*80*sim.Nanosecond // 100 Mbps
	d.k.After(lat, func() {
		scaled := sim.Time(float64(cost) * d.gcFactor(to))
		to.CPU.Submit(scaled, fn)
	})
}

// --- producer service ---

// ProducerService hosts producer resources (the paper's "Producer node"
// servlets).
type ProducerService struct {
	d         *Deployment
	idx       int
	node      *simnet.Node
	resources map[int64]*producerRes

	Inserts        uint64
	Flushes        uint64
	TuplesStreamed uint64
}

// Node returns the hosting node.
func (s *ProducerService) Node() *simnet.Node { return s.node }

type streamAttach struct {
	res *consumerRes
	// prog is the consumer query's WHERE predicate, compiled once at
	// attach time; flush matching is per-tuple and runs it constantly.
	prog *sqlmini.Program
}

type producerRes struct {
	svc     *ProducerService
	localID int64
	regID   int64
	kind    ProducerKind
	table   *sqlmini.Table
	store   *TupleStore
	pending []Tuple
	streams []*streamAttach
	closed  bool
}

var producerLocalIDs int64

// flushLoop re-arms itself with a heap-pressure-stretched period, so a
// loaded server streams less often — the dominant term in R-GMA's
// process time.
func (r *producerRes) scheduleFlush() {
	d := r.svc.d
	period := sim.Time(float64(d.costs.StreamPeriod) * d.gcFactor(r.svc.node))
	d.k.After(period, func() {
		if r.closed {
			return
		}
		r.flush()
		r.scheduleFlush()
	})
}

func (r *producerRes) flush() {
	d := r.svc.d
	batch := r.pending
	r.pending = nil
	r.store.Purge(d.k.Now())
	if len(batch) == 0 {
		return
	}
	r.svc.Flushes++
	// Producer-side CPU for assembling the stream chunk, then one RPC
	// per attached consumer carrying the matching tuples.
	cost := d.costs.ServletRequest + sim.Time(len(batch))*d.costs.PerTupleStream
	r.svc.node.CPU.Submit(sim.Time(float64(cost)*d.gcFactor(r.svc.node)), func() {
		for _, att := range r.streams {
			var matched []Tuple
			for _, t := range batch {
				if att.prog.Matches(t.Row) {
					matched = append(matched, t)
				}
			}
			if len(matched) == 0 {
				continue
			}
			r.svc.TuplesStreamed += uint64(len(matched))
			bytes := 120 * len(matched)
			ingest := d.costs.ServletRequest + sim.Time(len(matched))*d.costs.PerTupleIngest
			d.rpc(att.res.svc.node, bytes, ingest, func() {
				att.res.ingest(matched)
			})
		}
	})
}

// --- consumer service ---

// ConsumerService hosts consumer resources (the paper's "Consumer node"
// servlets).
type ConsumerService struct {
	d         *Deployment
	idx       int
	node      *simnet.Node
	resources map[int64]*consumerRes

	TuplesBuffered uint64
	Pops           uint64
}

// Node returns the hosting node.
func (s *ConsumerService) Node() *simnet.Node { return s.node }

// StreamedTuple is a tuple as seen by a consumer, with the instant it
// reached the consumer service (before_receiving in the paper's
// decomposition).
type StreamedTuple struct {
	Tuple
	StreamedAt sim.Time
}

type consumerRes struct {
	svc      *ConsumerService
	regID    int64
	table    string
	query    sqlmini.Select
	prog     *sqlmini.Program // query.Where compiled against the table schema
	qtype    QueryType
	kindPref ProducerKind
	buffer   []StreamedTuple
	known    map[int64]bool
	closed   bool
}

func (c *consumerRes) ingest(tuples []Tuple) {
	if c.closed {
		return
	}
	now := c.svc.d.k.Now()
	for _, t := range tuples {
		c.buffer = append(c.buffer, StreamedTuple{Tuple: t, StreamedAt: now})
	}
	c.svc.TuplesBuffered += uint64(len(tuples))
}

// mediate runs one registry sweep: look up producers for the table and
// attach to any new ones. Continuous queries install a standing stream;
// latest/history queries only record the producer for on-demand reads.
func (c *consumerRes) mediate() {
	d := c.svc.d
	if c.closed {
		return
	}
	d.rpc(d.registryNode, 200, d.costs.RegistryLookup, func() {
		entries := d.registry.ProducersFor(c.table, c.kindPref)
		for _, entry := range entries {
			if c.known[entry.ID] {
				continue
			}
			c.known[entry.ID] = true
			e := entry
			ps := d.producerSvcs[e.Service]
			d.rpc(ps.node, 300, d.costs.ServletRequest, func() {
				r, ok := ps.resources[e.ID]
				if !ok || r.closed {
					return
				}
				if c.qtype == ContinuousQuery {
					r.streams = append(r.streams, &streamAttach{res: c, prog: c.prog})
				}
			})
		}
		d.k.After(sim.Time(float64(d.costs.MediationPeriod)*d.gcFactor(c.svc.node)), c.mediate)
	})
}

// --- client-side API ---

// PrimaryProducer is the client handle for one generator's producer
// resource.
type PrimaryProducer struct {
	d          *Deployment
	clientNode *simnet.Node
	svc        *ProducerService
	res        *producerRes
	seq        int64

	// OnInsertAck observes the completion of each insert round trip
	// (after_sending in the paper's decomposition).
	OnInsertAck func(seq int64, at sim.Time)
}

// CreatePrimaryProducer allocates a producer resource on the given
// producer service with memory storage and the given retention periods,
// and registers it. It fails when the service's heap cannot hold another
// producer — the paper's single-server limit near 800 connections.
func (d *Deployment) CreatePrimaryProducer(clientNode *simnet.Node, svc *ProducerService, tableName string, latestRet, historyRet sim.Time) (*PrimaryProducer, error) {
	table, ok := d.schema[tableName]
	if !ok {
		return nil, fmt.Errorf("rgma: no such table %q", tableName)
	}
	if err := svc.node.Heap.Alloc(d.costs.HeapPerProducer); err != nil {
		d.refusedProducers++
		return nil, fmt.Errorf("rgma: producer refused: %w", err)
	}
	producerLocalIDs++
	res := &producerRes{
		svc:     svc,
		localID: producerLocalIDs,
		kind:    PrimaryKind,
		table:   table,
		store:   NewTupleStore(table, latestRet, historyRet),
	}
	pp := &PrimaryProducer{d: d, clientNode: clientNode, svc: svc, res: res}
	// Register asynchronously; until the registry processes it, no
	// consumer can mediate to this producer (the warm-up window).
	d.rpc(d.registryNode, 250, d.costs.RegistryRegister, func() {
		id := d.registry.RegisterProducer(ProducerEntry{Kind: PrimaryKind, Table: tableName, Service: svc.idx})
		res.regID = id
		svc.resources[id] = res
	})
	res.scheduleFlush()
	return pp, nil
}

// Insert publishes one tuple via SQL INSERT. The row is rendered to SQL
// on the client and parsed by the producer servlet, exercising the real
// SQL path end to end.
func (p *PrimaryProducer) Insert(row sqlmini.Row) int64 {
	p.seq++
	seq := p.seq
	d := p.d
	sentAt := d.k.Now()
	sql := sqlmini.FormatInsert(p.res.table, row)
	p.clientNode.CPU.Submit(d.costs.ClientRequest, func() {
		d.rpc(p.svc.node, len(sql)+200, d.costs.ServletRequest+d.costs.InsertParse, func() {
			if p.res.closed {
				return
			}
			st, err := sqlmini.Parse(sql)
			if err != nil {
				return // malformed inserts are dropped by the servlet
			}
			ins, ok := st.(sqlmini.Insert)
			if !ok {
				return
			}
			r, err := sqlmini.ReorderInsert(p.res.table, ins)
			if err != nil {
				return
			}
			t := Tuple{Row: r, SentAt: sentAt, InsertedAt: d.k.Now()}
			p.res.store.Insert(t)
			p.res.pending = append(p.res.pending, t)
			p.svc.Inserts++
			// Response leg back to the client.
			d.rpc(p.clientNode, 100, d.costs.ClientRequest, func() {
				if p.OnInsertAck != nil {
					p.OnInsertAck(seq, d.k.Now())
				}
			})
		})
	})
	return seq
}

// Close unregisters the producer and frees its resources.
func (p *PrimaryProducer) Close() {
	if p.res.closed {
		return
	}
	p.res.closed = true
	p.svc.node.Heap.Free(p.d.costs.HeapPerProducer)
	if p.res.regID != 0 {
		p.d.registry.UnregisterProducerFrom(p.res.table.Name, p.res.regID)
		delete(p.svc.resources, p.res.regID)
	}
}

// Consumer is the client handle for a consumer resource.
type Consumer struct {
	d          *Deployment
	clientNode *simnet.Node
	svc        *ConsumerService
	res        *consumerRes
}

// CreateConsumer allocates a consumer resource running the given query.
// kindPref restricts mediation to one producer kind (0 = any).
func (d *Deployment) CreateConsumer(clientNode *simnet.Node, svc *ConsumerService, querySrc string, qtype QueryType, kindPref ProducerKind) (*Consumer, error) {
	sel, err := ParseQuery(querySrc)
	if err != nil {
		return nil, err
	}
	table, ok := d.schema[sel.Table]
	if !ok {
		return nil, fmt.Errorf("rgma: no such table %q", sel.Table)
	}
	if err := svc.node.Heap.Alloc(d.costs.HeapPerConsumer); err != nil {
		d.refusedConsumers++
		return nil, fmt.Errorf("rgma: consumer refused: %w", err)
	}
	res := &consumerRes{
		svc:      svc,
		table:    sel.Table,
		query:    sel,
		prog:     sel.Compiled(table),
		qtype:    qtype,
		kindPref: kindPref,
		known:    make(map[int64]bool),
	}
	d.rpc(d.registryNode, 250, d.costs.RegistryRegister, func() {
		id := d.registry.RegisterConsumer(ConsumerEntry{Table: sel.Table, Service: svc.idx})
		res.regID = id
		svc.resources[id] = res
		res.mediate()
	})
	return &Consumer{d: d, clientNode: clientNode, svc: svc, res: res}, nil
}

// Pop polls the consumer: for continuous queries it drains the buffered
// stream; for latest/history queries it reads the producers' stores
// on demand. cb runs on the client after the response returns.
func (c *Consumer) Pop(cb func([]StreamedTuple)) {
	d := c.d
	c.clientNode.CPU.Submit(d.costs.ClientRequest, func() {
		d.rpc(c.svc.node, 150, d.costs.PopRequest, func() {
			c.svc.Pops++
			switch c.res.qtype {
			case ContinuousQuery:
				batch := c.res.buffer
				c.res.buffer = nil
				d.rpc(c.clientNode, 60+120*len(batch), d.costs.ClientRequest, func() {
					cb(batch)
				})
			default:
				c.gather(cb)
			}
		})
	})
}

// gather answers a latest/history pop by querying every known producer's
// store and combining the results.
func (c *Consumer) gather(cb func([]StreamedTuple)) {
	d := c.d
	now := d.k.Now()
	var out []StreamedTuple
	ids := make([]int64, 0, len(c.res.known))
	for id := range c.res.known {
		ids = append(ids, id)
	}
	remaining := len(ids)
	if remaining == 0 {
		d.rpc(c.clientNode, 60, d.costs.ClientRequest, func() { cb(nil) })
		return
	}
	for _, id := range ids {
		var r *producerRes
		for _, ps := range d.producerSvcs {
			if res, ok := ps.resources[id]; ok {
				r = res
				break
			}
		}
		done := func() {
			remaining--
			if remaining == 0 {
				d.rpc(c.clientNode, 60+120*len(out), d.costs.ClientRequest, func() { cb(out) })
			}
		}
		if r == nil || r.closed {
			done()
			continue
		}
		d.rpc(r.svc.node, 200, d.costs.ServletRequest, func() {
			var tuples []Tuple
			if c.res.qtype == LatestQuery {
				tuples = r.store.LatestCompiled(d.k.Now(), c.res.prog)
			} else {
				tuples = r.store.HistoryCompiled(d.k.Now(), c.res.prog)
			}
			for _, t := range tuples {
				out = append(out, StreamedTuple{Tuple: t, StreamedAt: now})
			}
			done()
		})
	}
}

// Close frees the consumer resource.
func (c *Consumer) Close() {
	if c.res.closed {
		return
	}
	c.res.closed = true
	c.svc.node.Heap.Free(c.d.costs.HeapPerConsumer)
	if c.res.regID != 0 {
		c.d.registry.UnregisterConsumerFrom(c.res.table, c.res.regID)
		delete(c.svc.resources, c.res.regID)
	}
}

// Subscriber is the paper's receiving program: it polls a continuous
// consumer every PollInterval and records round-trip times (SentAt to
// poll-response arrival, which includes the paper's "100 millisecond
// error").
type Subscriber struct {
	c        *Consumer
	rtt      metrics.RTT
	received uint64
	stopped  bool

	// OnTuple observes each tuple after metrics are recorded.
	OnTuple func(t StreamedTuple, at sim.Time)
}

// StartSubscriber begins the poll loop.
func StartSubscriber(c *Consumer) *Subscriber {
	s := &Subscriber{c: c}
	s.poll()
	return s
}

func (s *Subscriber) poll() {
	if s.stopped {
		return
	}
	d := s.c.d
	s.c.Pop(func(batch []StreamedTuple) {
		now := d.k.Now()
		for _, t := range batch {
			s.received++
			s.rtt.Add(float64(now-t.SentAt) / float64(sim.Millisecond))
			if s.OnTuple != nil {
				s.OnTuple(t, now)
			}
		}
	})
	d.k.After(d.costs.PollInterval, s.poll)
}

// Stop ends polling.
func (s *Subscriber) Stop() { s.stopped = true }

// RTT exposes accumulated round-trip statistics.
func (s *Subscriber) RTT() *metrics.RTT { return &s.rtt }

// Received reports tuples delivered to the subscriber.
func (s *Subscriber) Received() uint64 { return s.received }

// --- secondary producer ---

// SecondaryProducer consumes a table's primary stream and re-publishes
// it after the implementation's deliberate delay (30 s in the release
// the paper tested; its developers confirmed the delay was intentional).
type SecondaryProducer struct {
	d    *Deployment
	res  *producerRes
	cons *Consumer
	heap int64
}

// CreateSecondaryProducer installs a secondary producer for a table: a
// continuous consumer over primary producers plus a producer resource
// registered as SecondaryKind that re-publishes each tuple SecondaryDelay
// after it arrives.
func (d *Deployment) CreateSecondaryProducer(psvc *ProducerService, csvc *ConsumerService, tableName string, latestRet, historyRet sim.Time) (*SecondaryProducer, error) {
	table, ok := d.schema[tableName]
	if !ok {
		return nil, fmt.Errorf("rgma: no such table %q", tableName)
	}
	if err := psvc.node.Heap.Alloc(d.costs.HeapPerProducer); err != nil {
		return nil, fmt.Errorf("rgma: secondary producer refused: %w", err)
	}
	producerLocalIDs++
	res := &producerRes{
		svc:     psvc,
		localID: producerLocalIDs,
		kind:    SecondaryKind,
		table:   table,
		store:   NewTupleStore(table, latestRet, historyRet),
	}
	sp := &SecondaryProducer{d: d, res: res, heap: d.costs.HeapPerProducer}
	d.rpc(d.registryNode, 250, d.costs.RegistryRegister, func() {
		id := d.registry.RegisterProducer(ProducerEntry{Kind: SecondaryKind, Table: tableName, Service: psvc.idx})
		res.regID = id
		psvc.resources[id] = res
	})
	res.scheduleFlush()

	cons, err := d.CreateConsumer(psvc.node, csvc, "SELECT * FROM "+tableName, ContinuousQuery, PrimaryKind)
	if err != nil {
		psvc.node.Heap.Free(d.costs.HeapPerProducer)
		res.closed = true
		return nil, err
	}
	sp.cons = cons
	sp.pump()
	return sp, nil
}

// pump drains the internal consumer and schedules each tuple's
// re-publication after the deliberate delay.
func (sp *SecondaryProducer) pump() {
	if sp.res.closed {
		return
	}
	d := sp.d
	sp.cons.Pop(func(batch []StreamedTuple) {
		for _, st := range batch {
			t := st.Tuple
			d.k.After(d.costs.SecondaryDelay, func() {
				if sp.res.closed {
					return
				}
				nt := Tuple{Row: t.Row, SentAt: t.SentAt, InsertedAt: d.k.Now()}
				sp.res.store.Insert(nt)
				sp.res.pending = append(sp.res.pending, nt)
			})
		}
	})
	d.k.After(d.costs.StreamPeriod, sp.pump)
}

// Close tears the secondary producer down.
func (sp *SecondaryProducer) Close() {
	if sp.res.closed {
		return
	}
	sp.res.closed = true
	sp.res.svc.node.Heap.Free(sp.heap)
	if sp.res.regID != 0 {
		sp.d.registry.UnregisterProducerFrom(sp.res.table.Name, sp.res.regID)
		delete(sp.res.svc.resources, sp.res.regID)
	}
	sp.cons.Close()
}
