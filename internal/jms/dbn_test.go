package jms

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"gridmon/internal/broker"
	"gridmon/internal/brokernet"
	"gridmon/internal/message"
)

// startDBN builds a chain of n servers joined in the given routing mode,
// with links dialed child→parent (b2→b1, b3→b2, …) over real TCP.
func startDBN(t *testing.T, mode brokernet.RoutingMode, n int) []*Server {
	t.Helper()
	servers := make([]*Server, n)
	for i := range servers {
		cfg := broker.DefaultConfig(fmt.Sprintf("b%d", i+1))
		cfg.Shards = 4
		servers[i] = startServer(t, ServerConfig{Broker: cfg})
		if _, err := servers[i].JoinNetwork(mode); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i++ {
		peerID, err := servers[i].DialPeer(servers[i-1].Addr())
		if err != nil {
			t.Fatalf("peer %d->%d: %v", i+1, i, err)
		}
		if want := fmt.Sprintf("b%d", i); peerID != want {
			t.Fatalf("peer %d->%d handshake returned id %q, want %q", i+1, i, peerID, want)
		}
	}
	return servers
}

func TestDBNTreeDeliversAcrossBrokers(t *testing.T) {
	servers := startDBN(t, brokernet.RoutingTree, 3)

	var got atomic.Int64
	sub := dial(t, servers[2], "sub")
	if _, err := sub.Subscribe(message.Topic("power"), "", func(m *message.Message) {
		if m.Text() == "cross-broker" {
			got.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Tree routing: wait for interest to propagate b3→b2→b1 before
	// publishing, or the first publishes are (correctly) pruned.
	waitFor(t, func() bool {
		return len(servers[0].Member().InterestedPeers("power")) == 1
	})

	pub := dial(t, servers[0], "pub")
	m := message.NewText("cross-broker")
	m.Dest = message.Topic("power")
	if err := pub.PublishSync(m); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 })

	// The message transited the middle broker exactly once.
	waitFor(t, func() bool {
		_, received, _ := servers[1].Member().Stats()
		return received == 1
	})
}

func TestDBNBroadcastFloodsAllBrokers(t *testing.T) {
	servers := startDBN(t, brokernet.RoutingBroadcast, 3)

	// No subscribers anywhere: broadcast still pushes every publish
	// through the whole chain (the paper's criticised behaviour).
	pub := dial(t, servers[0], "pub")
	for i := 0; i < 5; i++ {
		m := message.NewText("flood")
		m.Dest = message.Topic("nobody.listens")
		if err := pub.PublishSync(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, idx := range []int{1, 2} {
		idx := idx
		waitFor(t, func() bool {
			_, received, _ := servers[idx].Member().Stats()
			return received == 5
		})
	}
}

func TestDBNTreePrunesUninterested(t *testing.T) {
	servers := startDBN(t, brokernet.RoutingTree, 2)
	pub := dial(t, servers[0], "pub")
	for i := 0; i < 5; i++ {
		m := message.NewText("noise")
		m.Dest = message.Topic("unwatched")
		if err := pub.PublishSync(m); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		_, _, pruned := servers[0].Member().Stats()
		return pruned == 5
	})
	_, received, _ := servers[1].Member().Stats()
	if received != 0 {
		t.Fatalf("pruned publishes reached the peer: received=%d", received)
	}
}

func TestDBNDuplicateLinkRejected(t *testing.T) {
	servers := startDBN(t, brokernet.RoutingTree, 2)
	if _, err := servers[1].DialPeer(servers[0].Addr()); err == nil {
		t.Fatal("duplicate peer link accepted")
	}
}

func TestDBNPeerRequiresJoin(t *testing.T) {
	s := startServer(t, ServerConfig{})
	if _, err := s.DialPeer("127.0.0.1:1"); err != ErrNotJoined {
		t.Fatalf("err = %v, want ErrNotJoined", err)
	}
	if _, err := s.JoinNetwork(brokernet.RoutingTree); err != nil {
		t.Fatal(err)
	}
	if _, err := s.JoinNetwork(brokernet.RoutingTree); err != ErrAlreadyJoined {
		t.Fatalf("second join: %v", err)
	}
}

func TestDBNRoutingModeMismatchRejected(t *testing.T) {
	a := startServer(t, ServerConfig{Broker: broker.DefaultConfig("a")})
	b := startServer(t, ServerConfig{Broker: broker.DefaultConfig("b")})
	if _, err := a.JoinNetwork(brokernet.RoutingTree); err != nil {
		t.Fatal(err)
	}
	if _, err := b.JoinNetwork(brokernet.RoutingBroadcast); err != nil {
		t.Fatal(err)
	}
	if _, err := b.DialPeer(a.Addr()); err == nil {
		t.Fatal("mismatched routing modes linked")
	}
}

// TestDBNConcurrentPublishStress publishes concurrently through both
// brokers of a linked pair while a subscriber on each end counts
// arrivals: the forwarding layer must lose nothing with Shards>1 and
// many simultaneous OnFrame callers. This is the TCP half of the -race
// forwarding proof (the brokernet package has the in-process half).
func TestDBNConcurrentPublishStress(t *testing.T) {
	servers := startDBN(t, brokernet.RoutingTree, 2)

	const pubsPerBroker, msgsPerPub = 4, 25
	const total = 2 * pubsPerBroker * msgsPerPub

	counts := make([]atomic.Int64, 2)
	for i, s := range servers {
		sub := dial(t, s, fmt.Sprintf("sub-%d", i))
		i := i
		if _, err := sub.Subscribe(message.Topic("power"), "", func(*message.Message) {
			counts[i].Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Let tree interest propagate both ways before the storm.
	for _, s := range servers {
		s := s
		waitFor(t, func() bool { return len(s.Member().InterestedPeers("power")) == 1 })
	}

	var wg sync.WaitGroup
	for si, s := range servers {
		for p := 0; p < pubsPerBroker; p++ {
			c := dial(t, s, fmt.Sprintf("pub-%d-%d", si, p))
			wg.Add(1)
			go func(c *Connection) {
				defer wg.Done()
				for i := 0; i < msgsPerPub; i++ {
					m := message.NewText("x")
					m.Dest = message.Topic("power")
					if err := c.PublishSync(m); err != nil {
						t.Error(err)
						return
					}
				}
			}(c)
		}
	}
	wg.Wait()
	for i := range counts {
		i := i
		waitFor(t, func() bool { return counts[i].Load() == total })
	}
}
