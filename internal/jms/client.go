package jms

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// Errors returned by the client.
var (
	ErrClosed       = errors.New("jms: connection closed")
	ErrSubRejected  = errors.New("jms: subscription rejected (invalid selector?)")
	ErrTimeout      = errors.New("jms: request timed out")
	ErrNotConnected = errors.New("jms: handshake incomplete")
)

// MessageListener consumes asynchronously delivered messages, in the
// style of javax.jms.MessageListener.
type MessageListener func(m *message.Message)

// Connection is a client connection to a broker server. It is safe for
// concurrent use.
type Connection struct {
	conn net.Conn

	writeMu sync.Mutex
	wbuf    []byte // reusable encode buffer, guarded by writeMu

	mu          sync.Mutex
	brokerID    string
	connected   chan struct{}
	subs        map[int64]*subscription
	subOK       map[int64]chan bool
	pubAcks     map[int64]chan struct{}
	pongs       map[int64]chan struct{}
	closed      bool
	closeErr    error
	pendingTags []pendingTag // CLIENT-mode deliveries awaiting Acknowledge

	nextSub int64
	nextSeq int64
	nextTok int64

	timeout time.Duration
	ackMode message.AckMode
}

type subscription struct {
	id       int64
	listener MessageListener
	conn     *Connection
}

// Dial connects and performs the protocol handshake with a 10 s request
// timeout.
func Dial(addr string, clientID string) (*Connection, error) {
	return DialTimeout(addr, clientID, 10*time.Second)
}

// DialTimeout is Dial with an explicit request/handshake timeout.
func DialTimeout(addr string, clientID string, timeout time.Duration) (*Connection, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Connection{
		conn:      nc,
		connected: make(chan struct{}),
		subs:      make(map[int64]*subscription),
		subOK:     make(map[int64]chan bool),
		pubAcks:   make(map[int64]chan struct{}),
		pongs:     make(map[int64]chan struct{}),
		timeout:   timeout,
		ackMode:   message.AutoAck,
	}
	go c.readLoop()
	if err := c.send(wire.Connect{ClientID: clientID}); err != nil {
		_ = nc.Close()
		return nil, err
	}
	select {
	case <-c.connected:
		return c, nil
	case <-time.After(c.timeout):
		_ = nc.Close()
		return nil, ErrNotConnected
	}
}

// SetAckMode selects AUTO (default) or CLIENT acknowledgement. In CLIENT
// mode the application must call Acknowledge.
func (c *Connection) SetAckMode(m message.AckMode) {
	c.mu.Lock()
	c.ackMode = m
	c.mu.Unlock()
}

// BrokerID reports the broker's identifier from the handshake.
func (c *Connection) BrokerID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.brokerID
}

// maxRetainedSendBuf caps the encode buffer kept across sends; an
// occasional huge frame should not pin its buffer for the connection's
// lifetime.
const maxRetainedSendBuf = 64 << 10

func (c *Connection) send(f wire.Frame) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	buf, err := wire.AppendFrame(c.wbuf[:0], f)
	if err != nil {
		return err
	}
	if cap(buf) <= maxRetainedSendBuf {
		c.wbuf = buf
	} else {
		c.wbuf = nil
	}
	_, err = c.conn.Write(buf)
	return err
}

func (c *Connection) readLoop() {
	fr := wire.NewFrameReader(c.conn)
	for {
		f, err := fr.Read()
		if err != nil {
			c.shutdown(err)
			return
		}
		switch v := f.(type) {
		case wire.Connected:
			c.mu.Lock()
			c.brokerID = v.BrokerID
			select {
			case <-c.connected:
			default:
				close(c.connected)
			}
			c.mu.Unlock()
		case wire.SubOK:
			id := v.SubID
			ok := true
			if id < 0 {
				id, ok = -id, false
			}
			c.mu.Lock()
			ch := c.subOK[id]
			delete(c.subOK, id)
			c.mu.Unlock()
			if ch != nil {
				ch <- ok
			}
		case wire.PubAck:
			c.mu.Lock()
			ch := c.pubAcks[v.Seq]
			delete(c.pubAcks, v.Seq)
			c.mu.Unlock()
			if ch != nil {
				close(ch)
			}
		case wire.Pong:
			c.mu.Lock()
			ch := c.pongs[v.Token]
			delete(c.pongs, v.Token)
			c.mu.Unlock()
			if ch != nil {
				close(ch)
			}
		case wire.Deliver:
			c.mu.Lock()
			sub := c.subs[v.SubID]
			mode := c.ackMode
			c.mu.Unlock()
			if sub != nil && sub.listener != nil {
				sub.listener(v.Msg)
			}
			if mode == message.AutoAck || mode == message.DupsOKAck {
				_ = c.send(wire.Ack{SubID: v.SubID, Tags: []int64{v.Tag}})
			} else {
				c.mu.Lock()
				// CLIENT mode: remember tags for Acknowledge.
				c.pendingTags = append(c.pendingTags, pendingTag{sub: v.SubID, tag: v.Tag})
				c.mu.Unlock()
			}
		}
	}
}

type pendingTag struct {
	sub, tag int64
}

// Acknowledge acknowledges all deliveries received so far (CLIENT mode).
func (c *Connection) Acknowledge() error {
	c.mu.Lock()
	tags := c.pendingTags
	c.pendingTags = nil
	c.mu.Unlock()
	bySub := map[int64][]int64{}
	for _, pt := range tags {
		bySub[pt.sub] = append(bySub[pt.sub], pt.tag)
	}
	for sub, ts := range bySub {
		if err := c.send(wire.Ack{SubID: sub, Tags: ts}); err != nil {
			return err
		}
	}
	return nil
}

func (c *Connection) shutdown(err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.closeErr = err
	for _, ch := range c.subOK {
		ch <- false
	}
	c.subOK = map[int64]chan bool{}
	for _, ch := range c.pubAcks {
		close(ch)
	}
	c.pubAcks = map[int64]chan struct{}{}
	c.mu.Unlock()
	_ = c.conn.Close()
}

// Close terminates the connection gracefully.
func (c *Connection) Close() error {
	_ = c.send(wire.Close{})
	c.shutdown(ErrClosed)
	return nil
}

// Subscribe registers a listener on a destination with an optional JMS
// selector, blocking until the broker confirms.
func (c *Connection) Subscribe(dest message.Destination, selector string, l MessageListener) (int64, error) {
	return c.subscribe(dest, selector, "", l)
}

// SubscribeDurable registers a durable topic subscription.
func (c *Connection) SubscribeDurable(dest message.Destination, selector, durableName string, l MessageListener) (int64, error) {
	return c.subscribe(dest, selector, durableName, l)
}

func (c *Connection) subscribe(dest message.Destination, selector, durable string, l MessageListener) (int64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	c.nextSub++
	id := c.nextSub
	ch := make(chan bool, 1)
	c.subOK[id] = ch
	c.subs[id] = &subscription{id: id, listener: l, conn: c}
	mode := c.ackMode
	c.mu.Unlock()

	err := c.send(wire.Subscribe{
		SubID: id, Dest: dest, Selector: selector,
		Durable: durable != "", DurableName: durable, AckMode: mode,
	})
	if err != nil {
		return 0, err
	}
	select {
	case ok := <-ch:
		if !ok {
			c.mu.Lock()
			delete(c.subs, id)
			c.mu.Unlock()
			return 0, fmt.Errorf("%w: %q", ErrSubRejected, selector)
		}
		return id, nil
	case <-time.After(c.timeout):
		return 0, ErrTimeout
	}
}

// Unsubscribe removes a subscription.
func (c *Connection) Unsubscribe(subID int64) error {
	c.mu.Lock()
	delete(c.subs, subID)
	c.mu.Unlock()
	return c.send(wire.Unsubscribe{SubID: subID})
}

// Publish sends a message without waiting for the broker (JMS
// NON_PERSISTENT semantics).
func (c *Connection) Publish(m *message.Message) error {
	seq := atomic.AddInt64(&c.nextSeq, 1)
	c.stamp(m, seq)
	return c.send(wire.Publish{Seq: seq, Msg: m})
}

// PublishSync sends a message and waits for the broker's acknowledgement
// (PERSISTENT-style confirmation).
func (c *Connection) PublishSync(m *message.Message) error {
	seq := atomic.AddInt64(&c.nextSeq, 1)
	c.stamp(m, seq)
	ch := make(chan struct{})
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.pubAcks[seq] = ch
	c.mu.Unlock()
	if err := c.send(wire.Publish{Seq: seq, Msg: m}); err != nil {
		return err
	}
	select {
	case <-ch:
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return ErrClosed
		}
		return nil
	case <-time.After(c.timeout):
		return ErrTimeout
	}
}

func (c *Connection) stamp(m *message.Message, seq int64) {
	m.Timestamp = time.Now().UnixNano()
	if m.ID == "" {
		m.ID = fmt.Sprintf("ID:%p/%d", c, seq)
	}
}

// Ping round-trips a liveness probe.
func (c *Connection) Ping() error {
	tok := atomic.AddInt64(&c.nextTok, 1)
	ch := make(chan struct{})
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.pongs[tok] = ch
	c.mu.Unlock()
	if err := c.send(wire.Ping{Token: tok}); err != nil {
		return err
	}
	select {
	case <-ch:
		return nil
	case <-time.After(c.timeout):
		return ErrTimeout
	}
}
