package jms

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridmon/internal/message"
)

func startServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	s, err := ListenAndServe("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func dial(t *testing.T, s *Server, id string) *Connection {
	t.Helper()
	c, err := Dial(s.Addr(), id)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

func TestTCPPubSubRoundTrip(t *testing.T) {
	s := startServer(t, ServerConfig{})
	sub := dial(t, s, "sub")
	pub := dial(t, s, "pub")
	if sub.BrokerID() != "naradad" {
		t.Fatalf("broker id = %q", sub.BrokerID())
	}

	var got atomic.Int64
	var mu sync.Mutex
	var lastPower float64
	if _, err := sub.Subscribe(message.Topic("power"), "id < 10000", func(m *message.Message) {
		v, _ := m.MapGet("power")
		f, _ := v.AsDouble()
		mu.Lock()
		lastPower = f
		mu.Unlock()
		got.Add(1)
	}); err != nil {
		t.Fatal(err)
	}

	m := message.NewMap()
	m.Dest = message.Topic("power")
	m.SetProperty("id", message.Int(42))
	m.MapSet("power", message.Double(1.5))
	if err := pub.PublishSync(m); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 })
	mu.Lock()
	defer mu.Unlock()
	if lastPower != 1.5 {
		t.Fatalf("payload power = %v", lastPower)
	}
}

func TestTCPSelectorFilters(t *testing.T) {
	s := startServer(t, ServerConfig{})
	sub := dial(t, s, "sub")
	pub := dial(t, s, "pub")
	var got atomic.Int64
	if _, err := sub.Subscribe(message.Topic("t"), "kind = 'a'", func(*message.Message) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"a", "b", "a"} {
		m := message.NewText("x")
		m.Dest = message.Topic("t")
		m.SetProperty("kind", message.String(kind))
		if err := pub.PublishSync(m); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return got.Load() == 2 })
	time.Sleep(50 * time.Millisecond)
	if got.Load() != 2 {
		t.Fatalf("got %d, want 2", got.Load())
	}
}

func TestTCPInvalidSelectorRejected(t *testing.T) {
	s := startServer(t, ServerConfig{})
	c := dial(t, s, "c")
	if _, err := c.Subscribe(message.Topic("t"), "id <", nil); !errors.Is(err, ErrSubRejected) {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPQueueRoundRobin(t *testing.T) {
	s := startServer(t, ServerConfig{})
	c1 := dial(t, s, "c1")
	c2 := dial(t, s, "c2")
	pub := dial(t, s, "pub")
	var n1, n2 atomic.Int64
	if _, err := c1.Subscribe(message.Queue("work"), "", func(*message.Message) { n1.Add(1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Subscribe(message.Queue("work"), "", func(*message.Message) { n2.Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m := message.NewText("job")
		m.Dest = message.Queue("work")
		if err := pub.PublishSync(m); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return n1.Load()+n2.Load() == 10 })
	if n1.Load() != 5 || n2.Load() != 5 {
		t.Fatalf("split %d/%d, want 5/5", n1.Load(), n2.Load())
	}
}

func TestTCPUnsubscribe(t *testing.T) {
	s := startServer(t, ServerConfig{})
	sub := dial(t, s, "sub")
	pub := dial(t, s, "pub")
	var got atomic.Int64
	id, err := sub.Subscribe(message.Topic("t"), "", func(*message.Message) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	m := message.NewText("x")
	m.Dest = message.Topic("t")
	if err := pub.PublishSync(m); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got.Load() != 0 {
		t.Fatal("unsubscribed listener fired")
	}
}

func TestTCPDurableSubscription(t *testing.T) {
	s := startServer(t, ServerConfig{})
	pub := dial(t, s, "pub")

	c1, err := Dial(s.Addr(), "durable-client")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.SubscribeDurable(message.Topic("t"), "", "d1", nil); err != nil {
		t.Fatal(err)
	}
	_ = c1.Close()

	// Publish while the durable subscriber is away.
	waitFor(t, func() bool { return s.Stats().Connections == 1 })
	m := message.NewText("missed-you")
	m.Dest = message.Topic("t")
	if err := pub.PublishSync(m); err != nil {
		t.Fatal(err)
	}

	var got atomic.Int64
	c2 := dial(t, s, "durable-client")
	if _, err := c2.SubscribeDurable(message.Topic("t"), "", "d1", func(m *message.Message) {
		if m.Text() == "missed-you" {
			got.Add(1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 })
}

func TestTCPClientAckMode(t *testing.T) {
	s := startServer(t, ServerConfig{})
	sub := dial(t, s, "sub")
	sub.SetAckMode(message.ClientAck)
	pub := dial(t, s, "pub")
	var got atomic.Int64
	if _, err := sub.Subscribe(message.Topic("t"), "", func(*message.Message) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	m := message.NewText("x")
	m.Dest = message.Topic("t")
	if err := pub.PublishSync(m); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 })
	// Unacknowledged: broker still holds the delivery.
	waitFor(t, func() bool { return s.Stats().Delivered == 1 })
	if s.Stats().Acked != 0 {
		t.Fatal("delivery acked before Acknowledge")
	}
	if err := sub.Acknowledge(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.Stats().Acked == 1 })
}

func TestTCPPing(t *testing.T) {
	s := startServer(t, ServerConfig{})
	c := dial(t, s, "c")
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPConnectionLimit(t *testing.T) {
	s := startServer(t, ServerConfig{
		MaxConnMemory: 2 * (256 << 10),
		MemPerConn:    256 << 10,
	})
	c1 := dial(t, s, "c1")
	c2 := dial(t, s, "c2")
	_ = c1.Ping()
	_ = c2.Ping()
	// Third connection is admitted at TCP level then dropped by the
	// broker; the handshake never completes.
	if _, err := DialTimeout(s.Addr(), "c3", time.Second); err == nil {
		t.Fatal("third connection should have been refused")
	}
	waitFor(t, func() bool { return s.Stats().RefusedConns >= 1 })
}

func TestTCPConcurrentPublishers(t *testing.T) {
	s := startServer(t, ServerConfig{})
	sub := dial(t, s, "sub")
	var got atomic.Int64
	if _, err := sub.Subscribe(message.Topic("t"), "", func(*message.Message) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	const pubs, each = 8, 25
	var wg sync.WaitGroup
	for p := 0; p < pubs; p++ {
		wg.Add(1)
		c := dial(t, s, "pub")
		go func(c *Connection) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m := message.NewText("x")
				m.Dest = message.Topic("t")
				if err := c.PublishSync(m); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	waitFor(t, func() bool { return got.Load() == pubs*each })
}

func TestTCPServerCloseUnblocksClients(t *testing.T) {
	s := startServer(t, ServerConfig{})
	c := dial(t, s, "c")
	s.Close()
	waitFor(t, func() bool {
		m := message.NewText("x")
		m.Dest = message.Topic("t")
		return c.Publish(m) != nil
	})
}
