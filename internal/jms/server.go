// Package jms binds the sans-I/O broker core to real TCP, providing the
// server used by cmd/naradad and a JMS-flavoured client API (Connection /
// Subscribe with listener callbacks / synchronous Publish). The same
// broker core that runs under the simulator for the paper's experiments
// serves real sockets here, so everything validated by the simulation —
// selectors, acknowledgement bookkeeping, durable subscriptions — holds
// on the wire.
//
// By default the server dispatches each connection's reader goroutine
// straight into the broker core: the core's destination layer is
// partitioned into lock-guarded shards (broker.Config.Shards, defaulted
// here to GOMAXPROCS), so publishes to different topics execute
// concurrently on different cores and the single-event-loop ceiling of
// the paper's broker is gone. broker.Config.SerialCore restores that
// pre-shard architecture — every frame funnelled through one event-loop
// goroutine — as the measured baseline for the parallel-publish
// benchmarks.
package jms

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"gridmon/internal/broker"
	"gridmon/internal/simproc"
	"gridmon/internal/wire"
)

// ServerConfig tunes the TCP broker server.
type ServerConfig struct {
	// Broker configures the wrapped core; zero value gets defaults with
	// one destination shard per CPU. Set Broker.SerialCore for the
	// single-event-loop baseline, Broker.Shards to pin the shard count.
	Broker broker.Config
	// MaxConnMemory bounds simulated per-connection memory, reproducing
	// the paper's admission cliff on real sockets too (0 = unlimited).
	MaxConnMemory int64
	// MemPerConn is the per-connection charge against MaxConnMemory.
	MemPerConn int64
	// WriteBuffer is the per-connection outbound frame queue length.
	WriteBuffer int
}

// Server runs a broker core behind a TCP listener. Per-connection reader
// goroutines feed the sharded core directly (or a single event-loop
// goroutine in SerialCore mode); per-connection writer goroutines
// shuttle frames out.
type Server struct {
	cfg    ServerConfig
	ln     net.Listener
	b      *broker.Broker
	serial bool

	events chan func() // SerialCore only
	done   chan struct{}

	mu      sync.Mutex
	writers map[broker.ConnID]*connWriter
	nextID  broker.ConnID
	closed  bool

	native *simproc.SharedHeap
	heap   *simproc.SharedHeap
}

type connWriter struct {
	conn net.Conn
	out  chan wire.Frame
	done chan struct{}
}

// NewServer starts a broker server on the given listener. Close releases
// it.
func NewServer(ln net.Listener, cfg ServerConfig) *Server {
	if cfg.Broker == (broker.Config{}) {
		cfg.Broker = broker.DefaultConfig("naradad")
	} else if cfg.Broker.ID == "" {
		cfg.Broker.ID = "naradad"
	}
	if cfg.Broker.LegacyLinearScan {
		// The legacy scan is a serial-only baseline (it walks the global
		// durable table without shard partitioning); never combine it
		// with concurrent reader dispatch.
		cfg.Broker.SerialCore = true
	}
	if !cfg.Broker.SerialCore && cfg.Broker.Shards <= 0 {
		cfg.Broker.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.WriteBuffer <= 0 {
		cfg.WriteBuffer = 256
	}
	if cfg.MemPerConn <= 0 {
		cfg.MemPerConn = 256 << 10
	}
	s := &Server{
		cfg:     cfg,
		ln:      ln,
		serial:  cfg.Broker.SerialCore,
		done:    make(chan struct{}),
		writers: make(map[broker.ConnID]*connWriter),
		native:  simproc.NewSharedHeap("server-native", cfg.MaxConnMemory, 0),
		heap:    simproc.NewSharedHeap("server-heap", 0, 0),
	}
	s.b = broker.New((*serverEnv)(s), cfg.Broker)
	if s.serial {
		s.events = make(chan func(), 1024)
		go s.loop()
	}
	go s.accept()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and drops all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	writers := make([]*connWriter, 0, len(s.writers))
	for _, w := range s.writers {
		writers = append(writers, w)
	}
	s.mu.Unlock()
	_ = s.ln.Close()
	for _, w := range writers {
		_ = w.conn.Close()
	}
	close(s.done)
}

// Stats proxies the broker core's counters. The core keeps them in
// atomics, so this is safe from any goroutine in both dispatch modes.
func (s *Server) Stats() broker.Stats {
	return s.b.Stats()
}

// loop is the SerialCore event-loop goroutine: the single owner of all
// frame processing, reproducing the pre-shard architecture.
func (s *Server) loop() {
	for {
		select {
		case fn := <-s.events:
			fn()
		case <-s.done:
			return
		}
	}
}

// post runs fn on the event loop (dropped after Close). SerialCore only.
func (s *Server) post(fn func()) {
	select {
	case s.events <- fn:
	case <-s.done:
	}
}

func (s *Server) accept() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.nextID++
		id := s.nextID
		w := &connWriter{conn: conn, out: make(chan wire.Frame, s.cfg.WriteBuffer), done: make(chan struct{})}
		s.writers[id] = w
		s.mu.Unlock()

		// Admission runs on the accept goroutine; the broker's session
		// layer serializes it internally.
		if s.b.OnConnOpen(id) != nil {
			s.dropConn(id, w, false)
			continue
		}
		go w.run()
		go s.read(id, w)
	}
}

// maxWriteBatch caps how many bytes of queued frames the writer encodes
// into one buffer before flushing to the socket.
const maxWriteBatch = 64 << 10

// writeBufPool recycles per-connection encode buffers across connection
// lifetimes, so churning clients don't allocate a fresh buffer per
// accept. Buffers are pooled behind a pointer so Put doesn't box the
// slice header; oversized buffers are dropped rather than pooled.
var writeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// release returns a consumed frame to its pool. The writer owns each
// frame it dequeues once encoding is done; broker fan-out Deliver frames
// are pooled, everything else is left to the GC.
func release(f wire.Frame) {
	if d, ok := f.(*wire.Deliver); ok {
		wire.PutDeliver(d)
	}
}

func (w *connWriter) run() {
	// One reusable encode buffer per connection (pooled across
	// connections): frames already queued when the writer wakes
	// (same-tick deliveries of a fan-out) are coalesced into a single
	// Write call.
	bp := writeBufPool.Get().(*[]byte)
	buf := *bp
	defer func() {
		if cap(buf) <= maxWriteBatch {
			*bp = buf[:0]
			writeBufPool.Put(bp)
		}
	}()
	for {
		select {
		case f := <-w.out:
			var err error
			buf, err = wire.AppendFrame(buf[:0], f)
			release(f)
			if err != nil {
				_ = w.conn.Close()
				return
			}
		coalesce:
			for len(buf) < maxWriteBatch {
				select {
				case f2 := <-w.out:
					buf, err = wire.AppendFrame(buf, f2)
					release(f2)
					if err != nil {
						// Flush the frames that did encode before
						// dropping the connection.
						_, _ = w.conn.Write(buf)
						_ = w.conn.Close()
						return
					}
				default:
					break coalesce
				}
			}
			if _, err := w.conn.Write(buf); err != nil {
				_ = w.conn.Close()
				return
			}
			// An occasional oversized frame must not pin its buffer for
			// the connection's lifetime.
			if cap(buf) > maxWriteBatch {
				buf = make([]byte, 0, 4096)
			}
		case <-w.done:
			return
		}
	}
}

// read pumps one connection's frames into the core: directly in sharded
// mode (reads of different connections then execute concurrently,
// serialized only where they meet on a destination shard), via the
// event loop in SerialCore mode.
func (s *Server) read(id broker.ConnID, w *connWriter) {
	fr := wire.NewFrameReader(w.conn)
	for {
		f, err := fr.Read()
		if err != nil {
			s.dropConn(id, w, true)
			return
		}
		if s.serial {
			s.post(func() { s.b.OnFrame(id, f) })
		} else {
			s.b.OnFrame(id, f)
		}
	}
}

// dropConn tears down one connection; notify releases core state. The
// first dropper wins: later calls for the same id are no-ops.
func (s *Server) dropConn(id broker.ConnID, w *connWriter, notify bool) {
	s.mu.Lock()
	_, live := s.writers[id]
	if live {
		delete(s.writers, id)
		close(w.done)
	}
	s.mu.Unlock()
	_ = w.conn.Close()
	if notify && live {
		// Always on a fresh goroutine: Send may drop a slow consumer
		// from inside a delivery — while its shard lock is held (shard
		// mode) or on the event-loop goroutine itself (SerialCore mode,
		// where posting back to a full events queue would deadlock the
		// loop). OnConnClose is safe from any goroutine in both modes.
		go s.b.OnConnClose(id)
	}
}

// serverEnv implements broker.Env. All methods are safe for concurrent
// use: frame queues are per-connection channels behind the writers
// mutex, memory accounting is atomic (simproc.SharedHeap).
type serverEnv Server

func (e *serverEnv) Now() int64 { return time.Now().UnixNano() }

func (e *serverEnv) Send(id broker.ConnID, f wire.Frame) {
	s := (*Server)(e)
	s.mu.Lock()
	w, ok := s.writers[id]
	s.mu.Unlock()
	if !ok {
		return
	}
	select {
	case w.out <- f:
	default:
		// Slow consumer: drop the connection rather than block the
		// broker (NaradaBrokering-era brokers did the same).
		s.dropConn(id, w, true)
	}
}

func (e *serverEnv) CloseConn(id broker.ConnID) {
	s := (*Server)(e)
	s.mu.Lock()
	w, ok := s.writers[id]
	s.mu.Unlock()
	if ok {
		s.dropConn(id, w, false)
	}
}

func (e *serverEnv) AllocConn() error {
	return (*Server)(e).native.Alloc((*Server)(e).cfg.MemPerConn)
}

func (e *serverEnv) FreeConn() { (*Server)(e).native.Free((*Server)(e).cfg.MemPerConn) }

func (e *serverEnv) Alloc(n int64) error { return (*Server)(e).heap.Alloc(n) }

func (e *serverEnv) Free(n int64) { (*Server)(e).heap.Free(n) }

// ListenAndServe starts a server on addr and returns it.
func ListenAndServe(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("jms: listen %s: %w", addr, err)
	}
	return NewServer(ln, cfg), nil
}
