// Package jms binds the sans-I/O broker core to real TCP, providing the
// server used by cmd/naradad and a JMS-flavoured client API (Connection /
// Subscribe with listener callbacks / synchronous Publish). The same
// broker core that runs under the simulator for the paper's experiments
// serves real sockets here, so everything validated by the simulation —
// selectors, acknowledgement bookkeeping, durable subscriptions — holds
// on the wire.
package jms

import (
	"fmt"
	"net"
	"sync"
	"time"

	"gridmon/internal/broker"
	"gridmon/internal/simproc"
	"gridmon/internal/wire"
)

// ServerConfig tunes the TCP broker server.
type ServerConfig struct {
	// Broker configures the wrapped core; zero value gets defaults.
	Broker broker.Config
	// MaxConnMemory bounds simulated per-connection memory, reproducing
	// the paper's admission cliff on real sockets too (0 = unlimited).
	MaxConnMemory int64
	// MemPerConn is the per-connection charge against MaxConnMemory.
	MemPerConn int64
	// WriteBuffer is the per-connection outbound frame queue length.
	WriteBuffer int
}

// Server runs a broker core behind a TCP listener. All core access is
// serialized through one event-loop goroutine; per-connection reader and
// writer goroutines shuttle frames in and out.
type Server struct {
	cfg ServerConfig
	ln  net.Listener
	b   *broker.Broker

	events chan func()
	done   chan struct{}

	mu      sync.Mutex
	writers map[broker.ConnID]*connWriter
	nextID  broker.ConnID
	closed  bool

	native *simproc.Heap
	heap   *simproc.Heap
}

type connWriter struct {
	conn net.Conn
	out  chan wire.Frame
	done chan struct{}
}

// NewServer starts a broker server on the given listener. Close releases
// it.
func NewServer(ln net.Listener, cfg ServerConfig) *Server {
	if cfg.Broker.ID == "" {
		cfg.Broker = broker.DefaultConfig("naradad")
	}
	if cfg.WriteBuffer <= 0 {
		cfg.WriteBuffer = 256
	}
	if cfg.MemPerConn <= 0 {
		cfg.MemPerConn = 256 << 10
	}
	s := &Server{
		cfg:     cfg,
		ln:      ln,
		events:  make(chan func(), 1024),
		done:    make(chan struct{}),
		writers: make(map[broker.ConnID]*connWriter),
		native:  simproc.NewHeap("server-native", cfg.MaxConnMemory, 0),
		heap:    simproc.NewHeap("server-heap", 0, 0),
	}
	s.b = broker.New((*serverEnv)(s), cfg.Broker)
	go s.loop()
	go s.accept()
	return s
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and drops all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	writers := make([]*connWriter, 0, len(s.writers))
	for _, w := range s.writers {
		writers = append(writers, w)
	}
	s.mu.Unlock()
	_ = s.ln.Close()
	for _, w := range writers {
		_ = w.conn.Close()
	}
	close(s.done)
}

// Stats proxies the broker core's counters (evaluated on the event loop).
func (s *Server) Stats() broker.Stats {
	ch := make(chan broker.Stats, 1)
	select {
	case s.events <- func() { ch <- s.b.Stats() }:
		return <-ch
	case <-s.done:
		return broker.Stats{}
	}
}

// loop is the single goroutine that owns the broker core.
func (s *Server) loop() {
	for {
		select {
		case fn := <-s.events:
			fn()
		case <-s.done:
			return
		}
	}
}

// post runs fn on the event loop (dropped after Close).
func (s *Server) post(fn func()) {
	select {
	case s.events <- fn:
	case <-s.done:
	}
}

func (s *Server) accept() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.nextID++
		id := s.nextID
		w := &connWriter{conn: conn, out: make(chan wire.Frame, s.cfg.WriteBuffer), done: make(chan struct{})}
		s.writers[id] = w
		s.mu.Unlock()

		admitted := make(chan bool, 1)
		s.post(func() { admitted <- s.b.OnConnOpen(id) == nil })
		go func() {
			ok := false
			select {
			case ok = <-admitted:
			case <-s.done:
			}
			if !ok {
				s.dropConn(id, w, false)
				return
			}
			go w.run()
			s.read(id, w)
		}()
	}
}

// maxWriteBatch caps how many bytes of queued frames the writer encodes
// into one buffer before flushing to the socket.
const maxWriteBatch = 64 << 10

// writeBufPool recycles per-connection encode buffers across connection
// lifetimes, so churning clients don't allocate a fresh buffer per
// accept. Buffers are pooled behind a pointer so Put doesn't box the
// slice header; oversized buffers are dropped rather than pooled.
var writeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// release returns a consumed frame to its pool. The writer owns each
// frame it dequeues once encoding is done; broker fan-out Deliver frames
// are pooled, everything else is left to the GC.
func release(f wire.Frame) {
	if d, ok := f.(*wire.Deliver); ok {
		wire.PutDeliver(d)
	}
}

func (w *connWriter) run() {
	// One reusable encode buffer per connection (pooled across
	// connections): frames already queued when the writer wakes
	// (same-tick deliveries of a fan-out) are coalesced into a single
	// Write call.
	bp := writeBufPool.Get().(*[]byte)
	buf := *bp
	defer func() {
		if cap(buf) <= maxWriteBatch {
			*bp = buf[:0]
			writeBufPool.Put(bp)
		}
	}()
	for {
		select {
		case f := <-w.out:
			var err error
			buf, err = wire.AppendFrame(buf[:0], f)
			release(f)
			if err != nil {
				_ = w.conn.Close()
				return
			}
		coalesce:
			for len(buf) < maxWriteBatch {
				select {
				case f2 := <-w.out:
					buf, err = wire.AppendFrame(buf, f2)
					release(f2)
					if err != nil {
						// Flush the frames that did encode before
						// dropping the connection.
						_, _ = w.conn.Write(buf)
						_ = w.conn.Close()
						return
					}
				default:
					break coalesce
				}
			}
			if _, err := w.conn.Write(buf); err != nil {
				_ = w.conn.Close()
				return
			}
			// An occasional oversized frame must not pin its buffer for
			// the connection's lifetime.
			if cap(buf) > maxWriteBatch {
				buf = make([]byte, 0, 4096)
			}
		case <-w.done:
			return
		}
	}
}

func (s *Server) read(id broker.ConnID, w *connWriter) {
	fr := wire.NewFrameReader(w.conn)
	for {
		f, err := fr.Read()
		if err != nil {
			s.dropConn(id, w, true)
			return
		}
		s.post(func() { s.b.OnFrame(id, f) })
	}
}

// dropConn tears down one connection; notify releases core state.
func (s *Server) dropConn(id broker.ConnID, w *connWriter, notify bool) {
	s.mu.Lock()
	if _, ok := s.writers[id]; ok {
		delete(s.writers, id)
		close(w.done)
	}
	s.mu.Unlock()
	_ = w.conn.Close()
	if notify {
		s.post(func() { s.b.OnConnClose(id) })
	}
}

// serverEnv implements broker.Env on the event loop.
type serverEnv Server

func (e *serverEnv) Now() int64 { return time.Now().UnixNano() }

func (e *serverEnv) Send(id broker.ConnID, f wire.Frame) {
	s := (*Server)(e)
	s.mu.Lock()
	w, ok := s.writers[id]
	s.mu.Unlock()
	if !ok {
		return
	}
	select {
	case w.out <- f:
	default:
		// Slow consumer: drop the connection rather than block the
		// broker loop (NaradaBrokering-era brokers did the same).
		s.dropConn(id, w, true)
	}
}

func (e *serverEnv) CloseConn(id broker.ConnID) {
	s := (*Server)(e)
	s.mu.Lock()
	w, ok := s.writers[id]
	s.mu.Unlock()
	if ok {
		s.dropConn(id, w, false)
	}
}

func (e *serverEnv) AllocConn() error {
	return (*Server)(e).native.Alloc((*Server)(e).cfg.MemPerConn)
}

func (e *serverEnv) FreeConn() { (*Server)(e).native.Free((*Server)(e).cfg.MemPerConn) }

func (e *serverEnv) Alloc(n int64) error { return (*Server)(e).heap.Alloc(n) }

func (e *serverEnv) Free(n int64) { (*Server)(e).heap.Free(n) }

// ListenAndServe starts a server on addr and returns it.
func ListenAndServe(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("jms: listen %s: %w", addr, err)
	}
	return NewServer(ln, cfg), nil
}
