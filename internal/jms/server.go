// Package jms binds the sans-I/O broker core to real TCP, providing the
// server used by cmd/naradad and a JMS-flavoured client API (Connection /
// Subscribe with listener callbacks / synchronous Publish). The same
// broker core that runs under the simulator for the paper's experiments
// serves real sockets here, so everything validated by the simulation —
// selectors, acknowledgement bookkeeping, durable subscriptions — holds
// on the wire.
//
// By default the server dispatches each connection's reader goroutine
// straight into the broker core: the core's destination layer is
// partitioned into lock-guarded shards (broker.Config.Shards, defaulted
// here to GOMAXPROCS), so publishes to different topics execute
// concurrently on different cores and the single-event-loop ceiling of
// the paper's broker is gone. Topic routing itself is lock-free on the
// publish side — a reader goroutine carrying a Publish routes through
// the shard's copy-on-write subscriber snapshot without taking the
// shard lock at all, so publishes to the *same* topic no longer
// serialize on routing either (see the broker package comment;
// broker.Config.LockedReadPath restores lock-held routing as the A/B
// baseline). broker.Config.SerialCore restores the pre-shard
// architecture — every frame funnelled through one event-loop goroutine
// — as the measured baseline for the parallel-publish benchmarks.
//
// Wide fan-outs arrive at the writers batched: at or above
// broker.Config.ParallelFanoutThreshold matched subscriptions the core
// runs its parallel fan-out engine and hands each per-connection run to
// Env.Send as one wire.DeliverBatch, and the connection's writer
// splices the frozen message's cached encoding once per entry into a
// single buffered flush — one syscall where the serial path made N —
// switching to vectored writev (net.Buffers) for large payloads so the
// encodings are never copied at all. The batch's stream form is exactly
// the N MESSAGE frames it stands for, so clients are untouched.
// broker.Config.SerialFanout restores per-frame emission as the A/B
// baseline; EgressStats reports writer flushes, frames and writev use.
//
// The writer owns every pooled frame it dequeues and releases it
// exactly once, including on the slow-consumer and shutdown paths: a
// writer that dies drains its queue under a writer-side quiescence lock
// (connWriter.quit), and senders that lose the enqueue race release the
// frame themselves (trySend). A DeliverBatch dropped this way releases
// the whole batch once — never per-entry.
//
// Servers also peer with each other over the same listener, forming the
// paper's Distributed Broker Network on real TCP: JoinNetwork attaches
// the broker to a brokernet.Member, DialPeer opens an inter-broker link
// (a BROKER_LINK handshake on an ordinary connection upgrades it), and
// forwarded frames ride the same per-connection batching writers as
// client deliveries — a BrokerForward splices the frozen message's
// cached encoding, so relaying costs no re-encode.
package jms

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gridmon/internal/broker"
	"gridmon/internal/brokernet"
	"gridmon/internal/simproc"
	"gridmon/internal/wire"
)

// ServerConfig tunes the TCP broker server.
type ServerConfig struct {
	// Broker configures the wrapped core; zero value gets defaults with
	// one destination shard per CPU. Set Broker.SerialCore for the
	// single-event-loop baseline, Broker.Shards to pin the shard count.
	Broker broker.Config
	// MaxConnMemory bounds simulated per-connection memory, reproducing
	// the paper's admission cliff on real sockets too (0 = unlimited).
	MaxConnMemory int64
	// MemPerConn is the per-connection charge against MaxConnMemory.
	MemPerConn int64
	// WriteBuffer is the per-connection outbound frame queue length.
	WriteBuffer int
	// PeerWriteBuffer is the outbound frame queue length for
	// broker-to-broker links (default 4096). Peer links absorb the
	// aggregated forward traffic of a whole broker, so they get a much
	// deeper queue than client connections; a peer that still overflows
	// it is dropped like any slow consumer.
	PeerWriteBuffer int
}

// Server runs a broker core behind a TCP listener. Per-connection reader
// goroutines feed the sharded core directly (or a single event-loop
// goroutine in SerialCore mode); per-connection writer goroutines
// shuttle frames out.
type Server struct {
	cfg    ServerConfig
	ln     net.Listener
	b      *broker.Broker
	serial bool

	events chan func() // SerialCore only
	done   chan struct{}

	mu      sync.Mutex
	writers map[broker.ConnID]*connWriter
	nextID  broker.ConnID
	closed  bool

	// member is the broker-network attachment (nil until JoinNetwork).
	// Written once under mu; read lock-free on the peer hot path is safe
	// because JoinNetwork must precede any peer link.
	member  *brokernet.Member
	routing brokernet.RoutingMode

	native *simproc.SharedHeap
	heap   *simproc.SharedHeap

	egress egressMeters
}

type connWriter struct {
	conn net.Conn
	out  chan wire.Frame
	done chan struct{}
	eg   *egressMeters

	// quit guards the enqueue/shutdown race for pooled frames: senders
	// enqueue under the read lock, the exiting writer goroutine sets dead
	// under the write lock and then drains the channel. Any frame
	// enqueued before the writer observed dead is therefore drained (and
	// released) by the writer; any sender arriving after sees dead and
	// releases the frame itself — every pooled frame is released exactly
	// once no matter when the connection dies.
	quit sync.RWMutex
	dead bool
}

// sendResult reports what trySend did with the frame.
type sendResult int

const (
	sendOK   sendResult = iota
	sendFull            // queue full: frame released, connection should drop
	sendDead            // writer exited: frame released
)

// trySend enqueues f for the writer goroutine without blocking. The
// frame's ownership transfers to the writer only on sendOK; on sendFull
// and sendDead it has already been released here.
func (w *connWriter) trySend(f wire.Frame) sendResult {
	w.quit.RLock()
	if w.dead {
		w.quit.RUnlock()
		release(f)
		return sendDead
	}
	select {
	case w.out <- f:
		w.quit.RUnlock()
		return sendOK
	default:
		w.quit.RUnlock()
		release(f)
		return sendFull
	}
}

// shutdown marks the writer dead and releases every frame still queued.
// Called exactly once, from the writer goroutine's exit path.
func (w *connWriter) shutdown() {
	w.quit.Lock()
	w.dead = true
	w.quit.Unlock()
	for {
		select {
		case f := <-w.out:
			release(f)
		default:
			return
		}
	}
}

// egressMeters counts transport-level egress batching on a server: how
// many socket flushes the per-connection writers performed, how many
// frames those flushes carried (a DeliverBatch counts each spliced
// Deliver), and how many flushes went out as vectored writes.
type egressMeters struct {
	flushes atomic.Uint64
	frames  atomic.Uint64
	writevs atomic.Uint64
}

// EgressStats is the naradad /stats view of the transport egress layer.
type EgressStats struct {
	WriterFlushes  uint64  `json:"writer_flushes"`
	WriterFrames   uint64  `json:"writer_frames"`
	WriterWritevs  uint64  `json:"writer_writevs"`
	FramesPerFlush float64 `json:"frames_per_flush"`
}

// EgressStats reports the server's transport egress counters.
func (s *Server) EgressStats() EgressStats {
	fl, fr := s.egress.flushes.Load(), s.egress.frames.Load()
	es := EgressStats{WriterFlushes: fl, WriterFrames: fr, WriterWritevs: s.egress.writevs.Load()}
	if fl > 0 {
		es.FramesPerFlush = float64(fr) / float64(fl)
	}
	return es
}

// NewServer starts a broker server on the given listener. Close releases
// it.
func NewServer(ln net.Listener, cfg ServerConfig) *Server {
	s, _ := NewServerRestored(ln, cfg, nil)
	return s
}

// NewServerRestored builds the server but runs restore on the wrapped
// broker core before the listener starts accepting. That window is the
// recovery slot: no connection exists yet, so the broker is quiescent
// and the callback may replay journaled state (Restore*), take a
// compaction snapshot (Dump*), and attach a Journal — cmd/naradad wires
// brokerwal through here when -data-dir is set. A restore error aborts
// startup and closes the listener.
func NewServerRestored(ln net.Listener, cfg ServerConfig, restore func(*broker.Broker) error) (*Server, error) {
	if cfg.Broker == (broker.Config{}) {
		cfg.Broker = broker.DefaultConfig("naradad")
	} else if cfg.Broker.ID == "" {
		cfg.Broker.ID = "naradad"
	}
	if cfg.Broker.LegacyLinearScan {
		// The legacy scan is a serial-only baseline (it walks the global
		// durable table without shard partitioning); never combine it
		// with concurrent reader dispatch.
		cfg.Broker.SerialCore = true
	}
	if !cfg.Broker.SerialCore && cfg.Broker.Shards <= 0 {
		cfg.Broker.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.WriteBuffer <= 0 {
		cfg.WriteBuffer = 256
	}
	if cfg.PeerWriteBuffer <= 0 {
		cfg.PeerWriteBuffer = 4096
	}
	if cfg.MemPerConn <= 0 {
		cfg.MemPerConn = 256 << 10
	}
	s := &Server{
		cfg:     cfg,
		ln:      ln,
		serial:  cfg.Broker.SerialCore,
		done:    make(chan struct{}),
		writers: make(map[broker.ConnID]*connWriter),
		native:  simproc.NewSharedHeap("server-native", cfg.MaxConnMemory, 0),
		heap:    simproc.NewSharedHeap("server-heap", 0, 0),
	}
	s.b = broker.New((*serverEnv)(s), cfg.Broker)
	if restore != nil {
		if err := restore(s.b); err != nil {
			_ = ln.Close()
			return nil, err
		}
	}
	if s.serial {
		s.events = make(chan func(), 1024)
		go s.loop()
	}
	go s.accept()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Broker exposes the wrapped core. The broker's API is shard-safe, but
// recovery-oriented calls (Restore*, Dump*) assume quiescence — use the
// NewServerRestored callback or call after Close.
func (s *Server) Broker() *broker.Broker { return s.b }

// Close stops the server and drops all connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	writers := make([]*connWriter, 0, len(s.writers))
	for _, w := range s.writers {
		writers = append(writers, w)
	}
	s.mu.Unlock()
	_ = s.ln.Close()
	for _, w := range writers {
		_ = w.conn.Close()
	}
	close(s.done)
}

// Stats proxies the broker core's counters. The core keeps them in
// atomics, so this is safe from any goroutine in both dispatch modes.
func (s *Server) Stats() broker.Stats {
	return s.b.Stats()
}

// loop is the SerialCore event-loop goroutine: the single owner of all
// frame processing, reproducing the pre-shard architecture.
func (s *Server) loop() {
	for {
		select {
		case fn := <-s.events:
			fn()
		case <-s.done:
			return
		}
	}
}

// post runs fn on the event loop (dropped after Close). SerialCore only.
func (s *Server) post(fn func()) {
	select {
	case s.events <- fn:
	case <-s.done:
	}
}

func (s *Server) accept() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.nextID++
		id := s.nextID
		w := &connWriter{conn: conn, out: make(chan wire.Frame, s.cfg.WriteBuffer), done: make(chan struct{}), eg: &s.egress}
		s.writers[id] = w
		s.mu.Unlock()

		// Admission runs on the accept goroutine; the broker's session
		// layer serializes it internally.
		if s.b.OnConnOpen(id) != nil {
			s.dropConn(id, w, false)
			continue
		}
		go w.run()
		go s.read(id, w)
	}
}

// maxWriteBatch caps how many bytes of queued frames the writer encodes
// into one buffer before flushing to the socket.
const maxWriteBatch = 64 << 10

// writeBufPool recycles per-connection encode buffers across connection
// lifetimes, so churning clients don't allocate a fresh buffer per
// accept. Buffers are pooled behind a pointer so Put doesn't box the
// slice header; oversized buffers are dropped rather than pooled.
var writeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// release returns a consumed frame to its pool. The writer owns each
// frame it dequeues once encoding is done; broker fan-out Deliver frames
// and DeliverBatch envelopes are pooled, everything else is left to the
// GC.
func release(f wire.Frame) {
	switch d := f.(type) {
	case *wire.Deliver:
		wire.PutDeliver(d)
	case *wire.DeliverBatch:
		wire.PutDeliverBatch(d)
	}
}

// vecPayloadMin is the smallest cached encoding for which a multi-entry
// DeliverBatch goes out as a vectored write (one writev referencing the
// shared payload N times) instead of being spliced into the coalescing
// buffer N times. Below it, copying into one buffer is cheaper than the
// per-iovec syscall bookkeeping.
const vecPayloadMin = 4 << 10

func (w *connWriter) run() {
	// One reusable encode buffer per connection (pooled across
	// connections): frames already queued when the writer wakes
	// (same-tick deliveries of a fan-out, or one broker-batched
	// DeliverBatch, which AppendFrame splices as N MESSAGE frames
	// sharing one cached payload encoding) are coalesced into a single
	// Write call. On every exit path shutdown drains and releases the
	// frames still queued, so pooled Delivers/DeliverBatches are
	// returned exactly once even when the connection dies mid-stream.
	bp := writeBufPool.Get().(*[]byte)
	buf := *bp
	var vec [][]byte // writev scratch, reused across flushes
	defer func() {
		w.shutdown()
		if cap(buf) <= maxWriteBatch {
			*bp = buf[:0]
			writeBufPool.Put(bp)
		}
	}()
	for {
		select {
		case f := <-w.out:
			// Large-payload batches skip the copy entirely: one writev
			// whose iovecs alternate per-entry headers (sliced from buf)
			// with the single shared payload encoding.
			if b, ok := f.(*wire.DeliverBatch); ok && len(b.Entries) >= 2 && b.Msg.EncodedSize() >= vecPayloadMin {
				frames := len(b.Entries)
				v, hdr, err := wire.AppendDeliverBatchVec(vec[:0], buf[:0], b)
				release(f)
				if err != nil {
					_ = w.conn.Close()
					return
				}
				vec, buf = v, hdr
				bufs := net.Buffers(vec)
				_, err = bufs.WriteTo(w.conn)
				if err != nil {
					_ = w.conn.Close()
					return
				}
				w.eg.flushes.Add(1)
				w.eg.frames.Add(uint64(frames))
				w.eg.writevs.Add(1)
				if cap(buf) > maxWriteBatch {
					buf = make([]byte, 0, 4096)
				}
				continue
			}
			frames := wire.FrameCount(f)
			var err error
			buf, err = wire.AppendFrame(buf[:0], f)
			release(f)
			if err != nil {
				_ = w.conn.Close()
				return
			}
		coalesce:
			for len(buf) < maxWriteBatch {
				select {
				case f2 := <-w.out:
					frames += wire.FrameCount(f2)
					buf, err = wire.AppendFrame(buf, f2)
					release(f2)
					if err != nil {
						// Flush the frames that did encode before
						// dropping the connection.
						_, _ = w.conn.Write(buf)
						_ = w.conn.Close()
						return
					}
				default:
					break coalesce
				}
			}
			if _, err := w.conn.Write(buf); err != nil {
				_ = w.conn.Close()
				return
			}
			w.eg.flushes.Add(1)
			w.eg.frames.Add(uint64(frames))
			// An occasional oversized frame must not pin its buffer for
			// the connection's lifetime.
			if cap(buf) > maxWriteBatch {
				buf = make([]byte, 0, 4096)
			}
		case <-w.done:
			return
		}
	}
}

// read pumps one connection's frames into the core: directly in sharded
// mode (reads of different connections then execute concurrently,
// serialized only where they meet on a destination shard), via the
// event loop in SerialCore mode.
func (s *Server) read(id broker.ConnID, w *connWriter) {
	fr := wire.NewFrameReader(w.conn)
	for first := true; ; first = false {
		f, err := fr.Read()
		if err != nil {
			s.dropConn(id, w, true)
			return
		}
		if bl, ok := f.(wire.BrokerLink); ok {
			// A dialing peer broker, not a client: convert the
			// connection into an inter-broker link and hand the read
			// loop over to the broker network. Only the connection's
			// first frame may do this — the upgrade path assumes a
			// session with no subscriptions and an empty write queue,
			// so a mid-session BrokerLink is a protocol violation.
			if first {
				s.handlePeerLink(id, w, bl, fr)
			} else {
				s.dropConn(id, w, true)
			}
			return
		}
		if s.serial {
			s.post(func() { s.b.OnFrame(id, f) })
		} else {
			s.b.OnFrame(id, f)
		}
	}
}

// --- broker-to-broker links ---

// Errors returned by the peering API.
var (
	ErrNotJoined     = errors.New("jms: JoinNetwork before peering")
	ErrAlreadyJoined = errors.New("jms: JoinNetwork called twice")
)

// JoinNetwork makes the server's broker a member of a Distributed Broker
// Network with the given routing mode. It must be called once, before
// any peer links are dialed or accepted.
func (s *Server) JoinNetwork(mode brokernet.RoutingMode) (*brokernet.Member, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.member != nil {
		return nil, ErrAlreadyJoined
	}
	s.member = brokernet.NewMember(s.b, mode)
	// Peer fan-out shares the broker's worker pool (nil when the core
	// runs a serial baseline — forwarding then stays serial too).
	s.member.SetFanoutPool(s.b.FanoutPool())
	s.routing = mode
	return s.member, nil
}

// Member returns the broker-network member (nil before JoinNetwork).
func (s *Server) Member() *brokernet.Member {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.member
}

// newPeerWriter registers a deep-buffered connWriter for a peer link and
// starts its writer goroutine. With old == nil a fresh id is allocated
// (outbound dial); otherwise old's registration is atomically replaced
// and old's writer goroutine stopped (inbound upgrade — old's queue is
// empty by construction: a connection whose first frame was the peer
// handshake was never sent anything).
func (s *Server) newPeerWriter(id broker.ConnID, old *connWriter, conn net.Conn) (broker.ConnID, *connWriter, error) {
	w := &connWriter{conn: conn, out: make(chan wire.Frame, s.cfg.PeerWriteBuffer), done: make(chan struct{}), eg: &s.egress}
	s.mu.Lock()
	if s.closed || (old != nil && s.writers[id] != old) {
		s.mu.Unlock()
		return 0, nil, errors.New("jms: server closed")
	}
	if old == nil {
		s.nextID++
		id = s.nextID
	}
	s.writers[id] = w
	s.mu.Unlock()
	if old != nil {
		close(old.done)
	}
	go w.run()
	return id, w, nil
}

// peerSender builds the brokernet.LinkSender for one peer link: a
// non-blocking enqueue onto the link's writer channel. Enqueue-only is
// the LinkSender contract (the caller holds member and shard locks), and
// non-blocking keeps a stalled peer from wedging publishers: on
// overflow the TCP connection is closed, the link's read loop observes
// the error on its own goroutine and detaches the peer — the same
// drop-the-slow-consumer policy clients get, with a much deeper queue.
func (s *Server) peerSender(w *connWriter) brokernet.LinkSender {
	return func(f wire.Frame) {
		if w.trySend(f) == sendFull {
			_ = w.conn.Close()
		}
	}
}

// handlePeerLink upgrades an accepted client connection into a peer
// link: release the client session the accept path admitted, answer the
// handshake, register the link, and pump peer frames.
func (s *Server) handlePeerLink(id broker.ConnID, w *connWriter, bl wire.BrokerLink, fr *wire.FrameReader) {
	// The connection was admitted as a client (and has processed no
	// other frame, so it owns no subscriptions); hand that session back.
	s.b.OnConnClose(id)

	s.mu.Lock()
	member, routing := s.member, s.routing
	s.mu.Unlock()
	if member == nil || bl.Routing != uint8(routing) {
		s.dropConn(id, w, false)
		return
	}
	// Swap the accept-time writer (client-sized queue, empty: nothing
	// was ever sent to this conn) for a peer-sized one.
	_, pw, err := s.newPeerWriter(id, w, w.conn)
	if err != nil {
		_ = w.conn.Close()
		return
	}
	// The success reply travels as Link's preamble: it is enqueued only
	// after validation succeeds, atomically with registration and ahead
	// of the interest advertisements — so a refused dialer (duplicate
	// link, including a stale one whose death we haven't observed yet)
	// never sees success and keeps retrying, while an accepted dialer's
	// synchronous handshake read sees BrokerLink first.
	reply := wire.BrokerLink{BrokerID: s.b.ID(), Routing: uint8(routing)}
	if err := member.Link(bl.BrokerID, s.peerSender(pw), reply); err != nil {
		s.dropConn(id, pw, false)
		return
	}
	s.readPeer(id, pw, member, bl.BrokerID, fr)
}

// DialPeer connects this broker to a peer broker's listener, registers
// the link with the broker network and returns the peer's broker id.
// Each link should be configured on exactly one of its two ends (both
// ends dialing each other would be rejected as a duplicate link by
// whichever handshake lands second). Links are not supervised: a caller
// that wants the link back after a failure watches
// Member().HasPeer(peerID) and re-dials (cmd/naradad does).
func (s *Server) DialPeer(addr string) (string, error) {
	s.mu.Lock()
	member, routing := s.member, s.routing
	s.mu.Unlock()
	if member == nil {
		return "", ErrNotJoined
	}
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return "", fmt.Errorf("jms: dial peer %s: %w", addr, err)
	}
	// Handshake synchronously on the dialing goroutine: our BrokerLink
	// first, the peer's reply before anything else.
	if err := wire.WriteFrame(conn, wire.BrokerLink{BrokerID: s.b.ID(), Routing: uint8(routing)}); err != nil {
		_ = conn.Close()
		return "", fmt.Errorf("jms: peer handshake %s: %w", addr, err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := wire.ReadFrame(conn)
	if err != nil {
		_ = conn.Close()
		return "", fmt.Errorf("jms: peer handshake %s: %w", addr, err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	reply, ok := f.(wire.BrokerLink)
	if !ok {
		_ = conn.Close()
		return "", fmt.Errorf("jms: peer %s answered %v, want BROKER_LINK", addr, f.Type())
	}
	if reply.Routing != uint8(routing) {
		_ = conn.Close()
		return "", fmt.Errorf("jms: peer %s routes %q, this broker routes %q", addr,
			brokernet.RoutingMode(reply.Routing), routing)
	}
	id, pw, err := s.newPeerWriter(0, nil, conn)
	if err != nil {
		_ = conn.Close()
		return "", err
	}
	if err := member.Link(reply.BrokerID, s.peerSender(pw)); err != nil {
		s.dropConn(id, pw, false)
		return "", err
	}
	go s.readPeer(id, pw, member, reply.BrokerID, wire.NewFrameReader(conn))
	return reply.BrokerID, nil
}

// readPeer pumps one peer link's frames into the broker network —
// directly in sharded mode, via the event loop in SerialCore mode (the
// serial architecture funnels every frame source through one goroutine).
// On link death the peer is detached and its subtree's interest
// withdrawn.
func (s *Server) readPeer(id broker.ConnID, w *connWriter, member *brokernet.Member, peerID string, fr *wire.FrameReader) {
	for {
		f, err := fr.Read()
		if err != nil {
			member.RemovePeer(peerID)
			s.dropConn(id, w, false)
			return
		}
		if s.serial {
			s.post(func() { member.OnPeerFrame(peerID, f) })
		} else {
			member.OnPeerFrame(peerID, f)
		}
	}
}

// dropConn tears down one connection; notify releases core state. The
// first dropper wins: later calls for the same id are no-ops, as are
// calls holding a stale writer (a client writer swapped out by a peer
// upgrade), so w.done is closed exactly once.
func (s *Server) dropConn(id broker.ConnID, w *connWriter, notify bool) {
	s.mu.Lock()
	live := s.writers[id] == w
	if live {
		delete(s.writers, id)
		close(w.done)
	}
	s.mu.Unlock()
	_ = w.conn.Close()
	if notify && live {
		// Always on a fresh goroutine: Send may drop a slow consumer
		// from inside a delivery — while the subscription's own lock is
		// held (snapshot routing), while its shard lock is held (locked
		// routing) or on the event-loop goroutine itself (SerialCore
		// mode, where posting back to a full events queue would deadlock
		// the loop). OnConnClose is safe from any goroutine in all modes.
		go s.b.OnConnClose(id)
	}
}

// serverEnv implements broker.Env. All methods are safe for concurrent
// use: frame queues are per-connection channels behind the writers
// mutex, memory accounting is atomic (simproc.SharedHeap).
type serverEnv Server

func (e *serverEnv) Now() int64 { return time.Now().UnixNano() }

func (e *serverEnv) Send(id broker.ConnID, f wire.Frame) {
	s := (*Server)(e)
	s.mu.Lock()
	w, ok := s.writers[id]
	s.mu.Unlock()
	if !ok {
		return
	}
	switch w.trySend(f) {
	case sendOK, sendDead:
	case sendFull:
		// Slow consumer: drop the connection rather than block the
		// broker (NaradaBrokering-era brokers did the same). trySend
		// already released the frame.
		s.dropConn(id, w, true)
	}
}

func (e *serverEnv) CloseConn(id broker.ConnID) {
	s := (*Server)(e)
	s.mu.Lock()
	w, ok := s.writers[id]
	s.mu.Unlock()
	if ok {
		s.dropConn(id, w, false)
	}
}

func (e *serverEnv) AllocConn() error {
	return (*Server)(e).native.Alloc((*Server)(e).cfg.MemPerConn)
}

func (e *serverEnv) FreeConn() { (*Server)(e).native.Free((*Server)(e).cfg.MemPerConn) }

func (e *serverEnv) Alloc(n int64) error { return (*Server)(e).heap.Alloc(n) }

func (e *serverEnv) Free(n int64) { (*Server)(e).heap.Free(n) }

// ListenAndServe starts a server on addr and returns it.
func ListenAndServe(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("jms: listen %s: %w", addr, err)
	}
	return NewServer(ln, cfg), nil
}
