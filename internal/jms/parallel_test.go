package jms

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"gridmon/internal/broker"
	"gridmon/internal/message"
)

// Parallel-publish coverage for the sharded server: P publisher
// connections on distinct topics drive the core concurrently (reader
// goroutines dispatch straight into destination shards), and the same
// workload must behave identically under the SerialCore event-loop
// baseline. The CI race job runs this package with -race, which makes
// these tests the end-to-end locking check for the TCP binding.

func runParallelTopics(t *testing.T, serial bool) {
	cfg := ServerConfig{}
	cfg.Broker = broker.DefaultConfig("naradad")
	cfg.Broker.SerialCore = serial
	if !serial {
		cfg.Broker.Shards = 8
	}
	s := startServer(t, cfg)

	const topics, perTopic = 4, 50
	var counts [topics]atomic.Int64
	subs := make([]*Connection, topics)
	for i := 0; i < topics; i++ {
		subs[i] = dial(t, s, fmt.Sprintf("sub-%d", i))
		i := i
		if _, err := subs[i].Subscribe(message.Topic(fmt.Sprintf("par.%d", i)), "", func(*message.Message) {
			counts[i].Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < topics; i++ {
		wg.Add(1)
		pub := dial(t, s, fmt.Sprintf("pub-%d", i))
		go func(i int, pub *Connection) {
			defer wg.Done()
			for n := 0; n < perTopic; n++ {
				m := message.NewText("x")
				m.Dest = message.Topic(fmt.Sprintf("par.%d", i))
				m.SetProperty("n", message.Int(int32(n)))
				if err := pub.PublishSync(m); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, pub)
	}
	wg.Wait()

	for i := 0; i < topics; i++ {
		i := i
		waitFor(t, func() bool { return counts[i].Load() == perTopic })
	}
	st := s.Stats()
	if st.Published != topics*perTopic || st.Delivered != topics*perTopic {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTCPParallelTopicsSharded(t *testing.T) { runParallelTopics(t, false) }

func TestTCPParallelTopicsSerialCore(t *testing.T) { runParallelTopics(t, true) }

// TestTCPStatsFromAnyGoroutine hammers Server.Stats while publishers
// run: the counters are atomics in the broker's egress layer, so no
// event-loop round-trip (and no lock) is involved.
func TestTCPStatsFromAnyGoroutine(t *testing.T) {
	s := startServer(t, ServerConfig{})
	sub := dial(t, s, "sub")
	var got atomic.Int64
	if _, err := sub.Subscribe(message.Topic("t"), "", func(*message.Message) { got.Add(1) }); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = s.Stats()
				}
			}
		}()
	}
	pub := dial(t, s, "pub")
	for i := 0; i < 100; i++ {
		m := message.NewText("x")
		m.Dest = message.Topic("t")
		if err := pub.PublishSync(m); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()
	waitFor(t, func() bool { return got.Load() == 100 })
	if st := s.Stats(); st.Published != 100 {
		t.Fatalf("published = %d", st.Published)
	}
}
