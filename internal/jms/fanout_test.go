package jms

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// Transport-level coverage of the parallel fan-out engine: batched
// emission over real sockets, slow-consumer drops fired from inside a
// worker chunk, and exactly-once release of pooled DeliverBatch
// envelopes on the partial-failure paths (the counting pool in
// internal/wire — gets vs puts — is the leak detector).

// TestBatchedFanoutDelivery subscribes enough listeners (spread over
// two client connections) to push every publish over the parallel
// threshold, and checks that all deliveries arrive through the batched
// path: the broker must report pool tasks and >1 frames per egress
// flush, the transport >1 frames per socket flush, and every listener
// must see every message.
func TestBatchedFanoutDelivery(t *testing.T) {
	s := startServer(t, ServerConfig{})
	subA := dial(t, s, "subA")
	subB := dial(t, s, "subB")
	pub := dial(t, s, "pub")

	const subsPerConn = 40 // 80 total, over the default threshold of 64
	const msgs = 20
	var got atomic.Int64
	for _, c := range []*Connection{subA, subB} {
		for i := 0; i < subsPerConn; i++ {
			if _, err := c.Subscribe(message.Topic("wide"), "", func(m *message.Message) {
				got.Add(1)
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < msgs; i++ {
		m := message.NewText(fmt.Sprintf("m%d", i))
		m.Dest = message.Topic("wide")
		if err := pub.Publish(m); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return got.Load() == 2*subsPerConn*msgs })

	st := s.Stats()
	if st.FanoutTasks == 0 {
		t.Fatalf("no fan-out pool tasks recorded: %+v", st)
	}
	if f := st.EgressFramesPerFlush(); f <= 1 {
		t.Fatalf("broker egress not coalescing: %.2f frames/flush", f)
	}
	if es := s.EgressStats(); es.FramesPerFlush <= 1 {
		t.Fatalf("transport egress not coalescing: %+v", es)
	}
}

// stalledClient speaks just enough of the protocol to subscribe and
// then never reads its socket again — the canonical slow consumer.
type stalledClient struct {
	nc net.Conn
}

func newStalledClient(t *testing.T, s *Server, nSubs int, topic string) *stalledClient {
	t.Helper()
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nc.Close() })
	if err := wire.WriteFrame(nc, wire.Connect{ClientID: "stalled"}); err != nil {
		t.Fatal(err)
	}
	// Read the Connected reply so the handshake completes.
	fr := wire.NewFrameReader(nc)
	if _, err := fr.Read(); err != nil {
		t.Fatal(err)
	}
	// Subscribe one at a time, reading each SubOK before sending the
	// next: the test servers run with tiny writer queues, and a burst of
	// unread SubOK replies would trip the slow-consumer drop before the
	// stall we actually want to test. After the last SubOK the client
	// goes silent for good.
	for i := 0; i < nSubs; i++ {
		if err := wire.WriteFrame(nc, wire.Subscribe{SubID: int64(i + 1), Dest: message.Topic(topic)}); err != nil {
			t.Fatal(err)
		}
		if _, err := fr.Read(); err != nil {
			t.Fatalf("sub %d reply: %v", i+1, err)
		}
	}
	return &stalledClient{nc: nc}
}

// TestBatchPoolExactlyOnceUnderDrop pins the exactly-once release rule
// for pooled DeliverBatch envelopes on the partial-failure path: a
// stalled subscriber connection accumulates batched deliveries until
// the writer queue overflows, the slow-consumer drop fires from inside
// a fan-out worker chunk (Env.Send → trySend full → dropConn, the PR 3
// deferred-OnConnClose path), the dying writer drains and releases its
// queue, and late publishes hit the dead-writer release path. At
// quiesce the counting pool must balance: every GetDeliverBatch matched
// by exactly one PutDeliverBatch (a double put panics in the pool).
func TestBatchPoolExactlyOnceUnderDrop(t *testing.T) {
	gets0, puts0 := wire.DeliverBatchPoolCounters()

	s := startServer(t, ServerConfig{WriteBuffer: 2})
	pub := dial(t, s, "pub")
	_ = newStalledClient(t, s, 70, "drop") // 70 targets ≥ threshold, one conn → one batch per publish

	waitFor(t, func() bool { return s.Broker().TopicSubscribers("drop") == 70 })

	// Publish (synchronously, so the publisher's own PubAck replies never
	// burst its queue) until the stalled connection is dropped: its
	// writer queue holds 2 batches and the socket buffers absorb a few
	// more, then Env.Send overflows and drops it. Keep publishing
	// afterwards so late batches exercise the dead-writer release path
	// too.
	payload := make([]byte, 32<<10)
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().Connections > 1 { // pub + stalled = 2
		if time.Now().After(deadline) {
			t.Fatal("stalled consumer never dropped")
		}
		m := message.NewText(string(payload))
		m.Dest = message.Topic("drop")
		if err := pub.PublishSync(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m := message.NewText("tail")
		m.Dest = message.Topic("drop")
		if err := pub.PublishSync(m); err != nil {
			t.Fatal(err)
		}
	}

	waitFor(t, func() bool {
		gets1, puts1 := wire.DeliverBatchPoolCounters()
		return gets1-gets0 > 0 && gets1-gets0 == puts1-puts0
	})
}

// TestFanoutChurnOverTCP races a wide fan-out with subscribers joining
// and leaving mid-publish and a stalled consumer being dropped from a
// worker chunk, under -race in CI. The assertion is convergence: the
// surviving subscriber keeps receiving, and the pool balances.
func TestFanoutChurnOverTCP(t *testing.T) {
	gets0, puts0 := wire.DeliverBatchPoolCounters()

	s := startServer(t, ServerConfig{WriteBuffer: 4})
	pub := dial(t, s, "pub")
	keeper := dial(t, s, "keeper")

	var got atomic.Int64
	for i := 0; i < 40; i++ {
		if _, err := keeper.Subscribe(message.Topic("churn"), "", func(m *message.Message) {
			got.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	_ = newStalledClient(t, s, 40, "churn")
	waitFor(t, func() bool { return s.Broker().TopicSubscribers("churn") == 80 })

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // churner: connections subscribing and closing mid-fan-out
		defer wg.Done()
		for i := 0; i < 15; i++ {
			c, err := Dial(s.Addr(), fmt.Sprintf("churn%d", i))
			if err != nil {
				continue
			}
			for j := 0; j < 30; j++ {
				_, _ = c.Subscribe(message.Topic("churn"), "", func(m *message.Message) {})
			}
			time.Sleep(2 * time.Millisecond)
			_ = c.Close()
		}
	}()
	payload := make([]byte, 16<<10)
	go func() { // publisher: every publish is over the threshold
		defer wg.Done()
		for i := 0; i < 120; i++ {
			m := message.NewText(string(payload))
			m.Dest = message.Topic("churn")
			if err := pub.PublishSync(m); err != nil {
				return
			}
		}
	}()
	wg.Wait()

	if n := got.Load(); n == 0 {
		t.Fatal("surviving subscriber received nothing")
	}
	waitFor(t, func() bool {
		gets1, puts1 := wire.DeliverBatchPoolCounters()
		return gets1-gets0 == puts1-puts0
	})
}
