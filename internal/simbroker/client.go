package simbroker

import (
	"sort"

	"gridmon/internal/message"
	"gridmon/internal/sim"
	"gridmon/internal/simnet"
	"gridmon/internal/wire"
)

// Client is one simulated JMS client (a power generator's connection or a
// subscriber program) attached to a broker Host. All of its work —
// serializing publishes, deserializing deliveries, dispatching the
// listener — is charged to its own node's CPU, so 750 generators sharing
// a machine contend for that machine's processor exactly as the paper's
// generator threads did.
type Client struct {
	k     *sim.Kernel
	node  *simnet.Node
	port  *simnet.Port
	tr    Transport
	costs Costs
	id    string

	rel     *relChan
	nextSeq int64

	ackMode  message.AckMode
	ackBatch int
	ackBuf   map[int64][]int64 // subID -> tags awaiting a batched ack

	// Callbacks, all invoked after client-side CPU costs are paid.
	OnConnected func(brokerID string)
	OnSubOK     func(subID int64)
	OnPubAck    func(seq int64)
	OnDeliver   func(d wire.Deliver)
	OnPong      func(token int64)
	// OnSendLost fires when an unreliable transport abandons a frame
	// after its retry budget (counted by loss-rate experiments).
	OnSendLost func(f wire.Frame)

	published uint64
	received  uint64
}

func newClient(k *sim.Kernel, node *simnet.Node, port *simnet.Port, tr Transport, costs Costs, id string) *Client {
	c := &Client{
		k:        k,
		node:     node,
		port:     port,
		tr:       tr,
		costs:    costs,
		id:       id,
		ackMode:  message.AutoAck,
		ackBatch: 10,
		ackBuf:   make(map[int64][]int64),
	}
	if !tr.Reliable {
		c.rel = newRelChan(k, port, tr, c.clientIn)
	} else {
		port.SetHandler(func(f simnet.Frame) {
			if wf, ok := f.Payload.(wire.Frame); ok {
				c.clientIn(wf)
			}
		})
	}
	return c
}

// ID returns the client identifier.
func (c *Client) ID() string { return c.id }

// Node returns the machine the client runs on.
func (c *Client) Node() *simnet.Node { return c.node }

// Published and Received report message counters.
func (c *Client) Published() uint64 { return c.published }

// Received reports how many deliveries reached the client's listener.
func (c *Client) Received() uint64 { return c.received }

// SetAckMode selects the JMS session acknowledgement mode. In AutoAck the
// client acknowledges each delivery as soon as the listener returns; in
// ClientAck it batches acknowledgements (ackBatch deliveries per Ack
// frame), as a CLIENT_ACKNOWLEDGE application typically does.
func (c *Client) SetAckMode(m message.AckMode) { c.ackMode = m }

// sendFrame pays the client-side CPU cost and transmits.
func (c *Client) sendFrame(f wire.Frame) {
	c.node.CPU.Submit(c.costs.clientSendCost(f, c.tr), func() {
		if c.rel != nil {
			c.rel.Send(f, func(ok bool) {
				if !ok && c.OnSendLost != nil {
					c.OnSendLost(f)
				}
			})
		} else {
			c.port.Send(f, wire.Size(f))
		}
	})
}

// Subscribe registers a subscription with the broker.
func (c *Client) Subscribe(subID int64, dest message.Destination, sel string) {
	c.sendFrame(wire.Subscribe{SubID: subID, Dest: dest, Selector: sel, AckMode: c.ackMode})
}

// SubscribeDurable registers a durable topic subscription.
func (c *Client) SubscribeDurable(subID int64, dest message.Destination, sel, durableName string) {
	c.sendFrame(wire.Subscribe{SubID: subID, Dest: dest, Selector: sel, Durable: true, DurableName: durableName, AckMode: c.ackMode})
}

// Unsubscribe removes a subscription.
func (c *Client) Unsubscribe(subID int64) {
	c.sendFrame(wire.Unsubscribe{SubID: subID})
}

// Publish stamps and sends a message, returning its publish sequence
// number. The message's Timestamp is set to the current virtual time
// (the paper's "before_sending" instant).
func (c *Client) Publish(m *message.Message) int64 {
	c.nextSeq++
	m.Timestamp = int64(c.k.Now())
	if m.ID == "" {
		m.ID = wireMsgID(c.id, c.nextSeq)
	}
	c.published++
	c.sendFrame(wire.Publish{Seq: c.nextSeq, Msg: m})
	return c.nextSeq
}

// Ping sends a liveness probe.
func (c *Client) Ping(token int64) { c.sendFrame(wire.Ping{Token: token}) }

// CloseSession sends a graceful close.
func (c *Client) CloseSession() { c.sendFrame(wire.Close{}) }

func wireMsgID(clientID string, seq int64) string {
	// Compact deterministic id, e.g. "ID:gen-17/42".
	return "ID:" + clientID + "/" + itoa(seq)
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// clientIn handles a frame after transport-level processing; CPU cost is
// charged before dispatch.
func (c *Client) clientIn(f wire.Frame) {
	c.node.CPU.Submit(c.costs.clientRecvCost(f, c.tr), func() {
		switch v := f.(type) {
		case wire.Connected:
			if c.OnConnected != nil {
				c.OnConnected(v.BrokerID)
			}
		case wire.SubOK:
			if c.OnSubOK != nil {
				c.OnSubOK(v.SubID)
			}
		case wire.PubAck:
			if c.OnPubAck != nil {
				c.OnPubAck(v.Seq)
			}
		case wire.Pong:
			if c.OnPong != nil {
				c.OnPong(v.Token)
			}
		case wire.Deliver:
			c.received++
			if c.OnDeliver != nil {
				c.OnDeliver(v)
			}
			c.acknowledge(v)
		case *wire.Deliver:
			// The broker's fan-out frames arrive by pointer over the
			// simulated (by-reference) transport. Dispatch a value copy
			// so listeners keep their existing signature. These frames
			// are GC-managed, never pooled: the host opts the broker out
			// of the wire frame pool (see NewHost) because unreliable
			// transports may still hold a frame for retransmission long
			// after this dispatch — returning it to the pool here would
			// let a later publish overwrite an in-flight retransmission.
			c.received++
			if c.OnDeliver != nil {
				c.OnDeliver(*v)
			}
			c.acknowledge(*v)
		}
	})
}

func (c *Client) acknowledge(d wire.Deliver) {
	switch c.ackMode {
	case message.ClientAck:
		c.ackBuf[d.SubID] = append(c.ackBuf[d.SubID], d.Tag)
		if len(c.ackBuf[d.SubID]) >= c.ackBatch {
			tags := c.ackBuf[d.SubID]
			c.ackBuf[d.SubID] = nil
			c.sendFrame(wire.Ack{SubID: d.SubID, Tags: tags})
		}
	default: // AutoAck, DupsOKAck
		c.sendFrame(wire.Ack{SubID: d.SubID, Tags: []int64{d.Tag}})
	}
}

// FlushAcks sends any batched acknowledgements immediately, in ascending
// subscription order so the simulation stays deterministic.
func (c *Client) FlushAcks() {
	ids := make([]int64, 0, len(c.ackBuf))
	for subID, tags := range c.ackBuf {
		if len(tags) > 0 {
			ids = append(ids, subID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, subID := range ids {
		tags := c.ackBuf[subID]
		c.ackBuf[subID] = nil
		c.sendFrame(wire.Ack{SubID: subID, Tags: tags})
	}
}
