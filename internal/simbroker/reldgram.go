package simbroker

import (
	"gridmon/internal/sim"
	"gridmon/internal/simnet"
	"gridmon/internal/wire"
)

// dgram is the on-wire unit for unreliable transports: either a data
// frame with a sequence number or a pure acknowledgement.
type dgram struct {
	seq   int64
	ack   bool
	frame wire.Frame // nil for acks
}

const dgramHeader = 12 // seq + flags on the wire

func dgramSize(d dgram) int {
	if d.ack {
		return dgramHeader
	}
	return dgramHeader + wire.Size(d.frame)
}

// relChan implements NaradaBrokering's JMS-over-UDP behaviour on one
// direction-pair of a lossy simnet connection: every data frame must be
// acknowledged; unacknowledged frames are retransmitted up to MaxRetries
// times; frames still unacknowledged after that are abandoned (the
// residual loss the paper measured); retransmitted frames the peer
// already saw are deduplicated.
type relChan struct {
	k    *sim.Kernel
	port *simnet.Port
	tr   Transport

	nextSeq int64
	pending map[int64]*relPending
	seen    map[int64]bool

	deliver func(wire.Frame)

	// Counters.
	sent, delivered, retransmits, abandoned, dupes uint64
}

type relPending struct {
	d       dgram
	retries int
	timer   *sim.Event
	done    func(ok bool)
}

// newRelChan wraps a port with the reliable-datagram protocol. deliver
// receives deduplicated data frames.
func newRelChan(k *sim.Kernel, port *simnet.Port, tr Transport, deliver func(wire.Frame)) *relChan {
	r := &relChan{
		k:       k,
		port:    port,
		tr:      tr,
		pending: make(map[int64]*relPending),
		seen:    make(map[int64]bool),
		deliver: deliver,
	}
	port.SetHandler(r.onFrame)
	return r
}

// Send transmits a frame with at-least-once delivery effort. done, if
// non-nil, fires with ok=true when the peer acknowledged and ok=false when
// the frame was abandoned after the retry budget.
func (r *relChan) Send(f wire.Frame, done func(ok bool)) {
	r.nextSeq++
	p := &relPending{d: dgram{seq: r.nextSeq, frame: f}, done: done}
	r.pending[p.d.seq] = p
	r.sent++
	r.transmit(p)
}

func (r *relChan) transmit(p *relPending) {
	r.port.Send(p.d, dgramSize(p.d))
	p.timer = r.k.After(r.tr.AckTimeout, func() { r.timeout(p) })
}

func (r *relChan) timeout(p *relPending) {
	if _, live := r.pending[p.d.seq]; !live {
		return
	}
	if p.retries >= r.tr.MaxRetries {
		delete(r.pending, p.d.seq)
		r.abandoned++
		if p.done != nil {
			p.done(false)
		}
		return
	}
	p.retries++
	r.retransmits++
	r.transmit(p)
}

func (r *relChan) onFrame(f simnet.Frame) {
	d, ok := f.Payload.(dgram)
	if !ok {
		return
	}
	if d.ack {
		p, live := r.pending[d.seq]
		if !live {
			return
		}
		delete(r.pending, d.seq)
		r.k.Cancel(p.timer)
		if p.done != nil {
			p.done(true)
		}
		return
	}
	// Data: always ack (the ack itself may be lost; the peer will then
	// retransmit and we deduplicate).
	r.port.Send(dgram{seq: d.seq, ack: true}, dgramHeader)
	if r.seen[d.seq] {
		r.dupes++
		return
	}
	r.seen[d.seq] = true
	r.delivered++
	r.deliver(d.frame)
}

// Stats reports protocol counters: data frames sent, delivered (deduped),
// retransmitted, abandoned after retries, and duplicates suppressed.
func (r *relChan) Stats() (sent, delivered, retransmits, abandoned, dupes uint64) {
	return r.sent, r.delivered, r.retransmits, r.abandoned, r.dupes
}
