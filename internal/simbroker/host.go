package simbroker

import (
	"fmt"

	"gridmon/internal/broker"
	"gridmon/internal/brokernet"
	"gridmon/internal/sim"
	"gridmon/internal/simnet"
	"gridmon/internal/simproc"
	"gridmon/internal/wire"
)

// Host runs one broker core on a simulated node. It implements broker.Env,
// charging every frame's CPU cost to the node's processor and backing the
// broker's memory accounting with the node's JVM heap (messages, session
// buffers) plus a separate native budget (thread stacks).
type Host struct {
	net   *simnet.Network
	k     *sim.Kernel
	node  *simnet.Node
	costs Costs

	b      *broker.Broker
	member *brokernet.Member

	native *simproc.Heap

	links    map[broker.ConnID]*hostLink
	nextConn broker.ConnID

	sampler *simproc.Sampler
}

type hostLink struct {
	conn *simnet.Conn
	port *simnet.Port // broker-side port
	tr   Transport
	rel  *relChan // non-nil for unreliable transports
}

// NewHost creates a broker on the given simulated node.
//
// The simulated transports carry frames by reference and may hold a
// Deliver frame indefinitely (unreliable transports keep it queued for
// retransmission until acked or abandoned), so the consume-exactly-once
// ownership rule of the wire frame pool cannot hold here. The host
// therefore opts the broker out of the pool: sim deliveries are
// GC-managed, and wire.PutDeliver is never called on them.
//
// The host also forces the serial fan-out: its Env runs inside the
// single-threaded simulation kernel (Send schedules events, Alloc
// charges a non-atomic heap), so the parallel engine's concurrent
// chunk workers may not call it — and the figures' event order must
// stay deterministic regardless of GOMAXPROCS.
func NewHost(net *simnet.Network, node *simnet.Node, cfg broker.Config, costs Costs) *Host {
	cfg.DisableDeliverPool = true
	cfg.SerialFanout = true
	h := &Host{
		net:    net,
		k:      net.Kernel(),
		node:   node,
		costs:  costs,
		native: simproc.NewHeap(node.Name()+"-native", costs.NativeBudget, 0),
		links:  make(map[broker.ConnID]*hostLink),
	}
	h.b = broker.New(h, cfg)
	return h
}

// Broker exposes the wrapped broker core.
func (h *Host) Broker() *broker.Broker { return h.b }

// Node returns the node the broker runs on.
func (h *Host) Node() *simnet.Node { return h.node }

// Member returns the broker-network member (nil unless JoinNetwork was
// called).
func (h *Host) Member() *brokernet.Member { return h.member }

// JoinNetwork makes the broker a member of a Distributed Broker Network
// with the given routing mode. Must be called before Peer.
func (h *Host) JoinNetwork(mode brokernet.RoutingMode) {
	if h.member != nil {
		panic("simbroker: JoinNetwork called twice")
	}
	h.member = brokernet.NewMember(h.b, mode)
}

// StartSampler begins vmstat-style sampling of the broker node.
func (h *Host) StartSampler(period sim.Time) *simproc.Sampler {
	h.sampler = simproc.NewSampler(h.k, h.node.CPU, h.node.Heap, period)
	return h.sampler
}

// Sampler returns the running sampler (nil before StartSampler).
func (h *Host) Sampler() *simproc.Sampler { return h.sampler }

// NativeUsed reports thread-stack budget consumption.
func (h *Host) NativeUsed() int64 { return h.native.Used() }

// --- broker.Env implementation ---

// Now implements broker.Env.
func (h *Host) Now() int64 { return int64(h.k.Now()) }

// Send implements broker.Env: outbound frames are serialized through the
// broker CPU (the dispatch thread) before hitting the wire.
func (h *Host) Send(conn broker.ConnID, f wire.Frame) {
	l, ok := h.links[conn]
	if !ok {
		return
	}
	h.node.CPU.Submit(h.costs.brokerSendCost(f, l.tr), func() {
		if l.conn.Closed() {
			return
		}
		if l.rel != nil {
			l.rel.Send(f, nil)
		} else {
			l.port.Send(f, wire.Size(f))
		}
	})
}

// CloseConn implements broker.Env.
func (h *Host) CloseConn(conn broker.ConnID) {
	if l, ok := h.links[conn]; ok {
		l.conn.Close()
		delete(h.links, conn)
	}
}

// AllocConn implements broker.Env: one native thread stack plus session
// buffers on the heap. Either budget can refuse the connection.
func (h *Host) AllocConn() error {
	if err := h.native.Alloc(h.costs.NativePerConn); err != nil {
		return err
	}
	if err := h.node.Heap.Alloc(h.costs.HeapPerConn); err != nil {
		h.native.Free(h.costs.NativePerConn)
		return err
	}
	return nil
}

// FreeConn implements broker.Env.
func (h *Host) FreeConn() {
	h.native.Free(h.costs.NativePerConn)
	h.node.Heap.Free(h.costs.HeapPerConn)
}

// Alloc implements broker.Env (message heap).
func (h *Host) Alloc(n int64) error { return h.node.Heap.Alloc(n) }

// Free implements broker.Env.
func (h *Host) Free(n int64) { h.node.Heap.Free(n) }

// --- client admission ---

// Connect attaches a new client on clientNode to the broker over the
// given transport. Admission is synchronous: if the broker cannot afford
// the connection's thread stack it refuses (the generator sees a failed
// connect, as on the paper's testbed).
func (h *Host) Connect(clientNode *simnet.Node, tr Transport, clientID string) (*Client, error) {
	opts := simnet.LANOptions()
	o := tr.connOptions()
	opts.Reliable = o.reliable
	opts.LossProb = o.lossProb

	conn := h.net.Connect(clientNode, h.node, opts)
	h.nextConn++
	id := h.nextConn
	if err := h.b.OnConnOpen(id); err != nil {
		conn.Close()
		return nil, fmt.Errorf("simbroker: connect %s: %w", clientID, err)
	}

	l := &hostLink{conn: conn, port: conn.B(), tr: tr}
	h.links[id] = l
	brokerIn := func(f wire.Frame) {
		cost := h.costs.brokerRecvCost(f, h.b.Stats().Connections, tr)
		if p, ok := f.(wire.Publish); ok {
			subs := h.b.TopicSubscribers(p.Msg.Dest.Name)
			cost += sim.Time(subs) * h.costs.selectorCost(3)
		}
		h.node.CPU.Submit(cost, func() { h.b.OnFrame(id, f) })
	}
	if !tr.Reliable {
		l.rel = newRelChan(h.k, l.port, tr, brokerIn)
	} else {
		l.port.SetHandler(func(f simnet.Frame) {
			if wf, ok := f.Payload.(wire.Frame); ok {
				brokerIn(wf)
			}
		})
	}

	c := newClient(h.k, clientNode, conn.A(), tr, h.costs, clientID)
	c.sendFrame(wire.Connect{ClientID: clientID})
	return c, nil
}

// --- broker peering ---

// Peer links two broker hosts with a reliable LAN connection and
// registers them with each other's network members. Both hosts must have
// joined a network first.
func Peer(a, b *Host) {
	if a.member == nil || b.member == nil {
		panic("simbroker: Peer before JoinNetwork")
	}
	conn := a.net.Connect(a.node, b.node, simnet.LANOptions())
	pa, pb := conn.A(), conn.B()

	sendFrom := func(h *Host, port *simnet.Port) brokernet.LinkSender {
		return func(f wire.Frame) {
			// Forward-out is cheap: the message is already serialized.
			h.node.CPU.Submit(h.costs.ForwardOut, func() { port.Send(f, wire.Size(f)) })
		}
	}
	recvAt := func(h *Host, from string) simnet.Handler {
		return func(f simnet.Frame) {
			wf, ok := f.Payload.(wire.Frame)
			if !ok {
				return
			}
			cost := h.costs.BrokerSmallSend
			if _, fw := wf.(wire.BrokerForward); fw {
				cost = h.costs.ForwardIn + sim.Time(frameBytes(wf))*h.costs.BrokerPerByte
			}
			h.node.CPU.Submit(cost, func() { h.member.OnPeerFrame(from, wf) })
		}
	}

	pa.SetHandler(recvAt(a, b.b.ID()))
	pb.SetHandler(recvAt(b, a.b.ID()))
	a.member.AddPeer(b.b.ID(), sendFrom(a, pa))
	b.member.AddPeer(a.b.ID(), sendFrom(b, pb))
}
