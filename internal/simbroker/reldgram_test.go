package simbroker

import (
	"testing"
	"testing/quick"

	"gridmon/internal/sim"
	"gridmon/internal/simnet"
	"gridmon/internal/wire"
)

// relPair wires two relChans over a lossy connection.
func relPair(seed int64, loss float64, retries int) (*sim.Kernel, *relChan, *relChan, *[]wire.Frame, *[]wire.Frame) {
	k := sim.New(seed)
	net := simnet.New(k)
	a := net.AddNode("a", simnet.HydraNode())
	b := net.AddNode("b", simnet.HydraNode())
	conn := net.Connect(a, b, simnet.ConnOptions{Latency: sim.Millisecond, LossProb: loss})
	tr := Transport{Name: "test", LossProb: loss, AckTimeout: 50 * sim.Millisecond, MaxRetries: retries}
	var gotA, gotB []wire.Frame
	ra := newRelChan(k, conn.A(), tr, func(f wire.Frame) { gotA = append(gotA, f) })
	rb := newRelChan(k, conn.B(), tr, func(f wire.Frame) { gotB = append(gotB, f) })
	return k, ra, rb, &gotA, &gotB
}

func TestRelChanLosslessDelivery(t *testing.T) {
	k, ra, _, _, gotB := relPair(1, 0, 1)
	for i := 0; i < 20; i++ {
		ra.Send(wire.Ping{Token: int64(i)}, nil)
	}
	k.Run()
	if len(*gotB) != 20 {
		t.Fatalf("delivered %d of 20", len(*gotB))
	}
	sent, delivered, retransmits, abandoned, dupes := ra.Stats()
	if sent != 20 || retransmits != 0 || abandoned != 0 || dupes != 0 || delivered != 0 {
		t.Fatalf("sender stats: %d/%d/%d/%d/%d", sent, delivered, retransmits, abandoned, dupes)
	}
}

func TestRelChanRetransmitRecoversLoss(t *testing.T) {
	// With generous retries, even heavy datagram loss delivers all.
	k, ra, _, _, gotB := relPair(2, 0.3, 10)
	acked := 0
	for i := 0; i < 100; i++ {
		ra.Send(wire.Ping{Token: int64(i)}, func(ok bool) {
			if ok {
				acked++
			}
		})
	}
	k.Run()
	if len(*gotB) != 100 {
		t.Fatalf("delivered %d of 100 with retries", len(*gotB))
	}
	if acked != 100 {
		t.Fatalf("acked %d of 100", acked)
	}
	_, _, retransmits, _, _ := ra.Stats()
	if retransmits == 0 {
		t.Fatal("no retransmissions under 30% loss")
	}
}

func TestRelChanAbandonsAfterRetries(t *testing.T) {
	k, ra, _, _, gotB := relPair(3, 0.6, 1)
	failed := 0
	const total = 300
	for i := 0; i < total; i++ {
		ra.Send(wire.Ping{Token: int64(i)}, func(ok bool) {
			if !ok {
				failed++
			}
		})
	}
	k.Run()
	if failed == 0 {
		t.Fatal("no abandons under 60% loss with one retry")
	}
	_, _, _, abandoned, _ := ra.Stats()
	if int(abandoned) != failed {
		t.Fatalf("abandoned=%d but %d done(false) callbacks", abandoned, failed)
	}
	// Note: done(false) means no ACK arrived; the data may still have
	// been delivered (the ack itself can be lost), so delivered can
	// exceed total-abandoned but never total.
	if len(*gotB) > total {
		t.Fatalf("delivered %d > sent %d", len(*gotB), total)
	}
}

func TestRelChanDeduplicates(t *testing.T) {
	// Loss on acks forces retransmits; receiver must not deliver twice.
	k, ra, rb, _, gotB := relPair(4, 0.4, 5)
	for i := 0; i < 200; i++ {
		ra.Send(wire.Ping{Token: int64(i)}, nil)
	}
	k.Run()
	seen := map[int64]bool{}
	for _, f := range *gotB {
		tok := f.(wire.Ping).Token
		if seen[tok] {
			t.Fatalf("token %d delivered twice", tok)
		}
		seen[tok] = true
	}
	_, _, _, _, dupes := rb.Stats()
	if dupes == 0 {
		t.Fatal("expected suppressed duplicates under ack loss")
	}
}

func TestRelChanBidirectionalSeqSpaces(t *testing.T) {
	// Both directions use independent sequence spaces over one conn.
	k, ra, rb, gotA, gotB := relPair(5, 0, 1)
	for i := 0; i < 10; i++ {
		ra.Send(wire.Ping{Token: int64(i)}, nil)
		rb.Send(wire.Pong{Token: int64(100 + i)}, nil)
	}
	k.Run()
	if len(*gotA) != 10 || len(*gotB) != 10 {
		t.Fatalf("bidirectional delivery %d/%d", len(*gotA), len(*gotB))
	}
}

// Property: delivered+abandoned accounting holds under arbitrary loss.
func TestPropertyRelChanAccounting(t *testing.T) {
	f := func(seed int64, lossPct uint8, n uint8) bool {
		loss := float64(lossPct%90) / 100
		k, ra, _, _, gotB := relPair(seed, loss, 2)
		okCount, failCount := 0, 0
		for i := 0; i < int(n); i++ {
			ra.Send(wire.Ping{Token: int64(i)}, func(ok bool) {
				if ok {
					okCount++
				} else {
					failCount++
				}
			})
		}
		k.Run()
		sent, _, _, abandoned, _ := ra.Stats()
		// Every send resolves exactly once.
		if okCount+failCount != int(n) || sent != uint64(n) {
			return false
		}
		// Ack-confirmed messages were certainly delivered.
		return len(*gotB) >= okCount && int(abandoned) == failCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTransportProfiles(t *testing.T) {
	if !TCP().Reliable || !NIO().Reliable {
		t.Fatal("TCP/NIO must be reliable")
	}
	if UDP().Reliable || UDPClientAck().Reliable {
		t.Fatal("UDP profiles must be unreliable")
	}
	if UDP().LossProb <= UDPClientAck().LossProb {
		t.Fatal("UDP CLI must model lower loss than UDP (paper 0.03% vs 0.06%)")
	}
	if NIO().DataOverhead <= TCP().DataOverhead {
		t.Fatal("NIO must carry more per-frame overhead than TCP")
	}
	if UDP().DataOverhead <= NIO().DataOverhead {
		t.Fatal("UDP ack bookkeeping must exceed NIO overhead")
	}
}

func TestCostModelMonotonicity(t *testing.T) {
	c := DefaultCosts()
	small := wire.Publish{Msg: paperMsg("t")}
	big := wire.Publish{Msg: TriplePayload(paperMsg("t"))}
	if c.brokerRecvCost(big, 100, TCP()) <= c.brokerRecvCost(small, 100, TCP()) {
		t.Fatal("bigger payloads must cost more at the broker")
	}
	if c.brokerRecvCost(small, 4000, TCP()) <= c.brokerRecvCost(small, 80, TCP()) {
		t.Fatal("more connections must cost more per frame (thread scan)")
	}
	if c.clientSendCost(big, TCP()) <= c.clientSendCost(small, TCP()) {
		t.Fatal("bigger payloads must cost more at the client")
	}
	if c.selectorCost(10) <= c.selectorCost(1) {
		t.Fatal("selector cost must grow with complexity")
	}
	if c.DeliverRecvCost(paperMsg("t").Clone(), TCP()) <= 0 {
		t.Fatal("deliver recv cost must be positive")
	}
}
