package simbroker

import (
	"fmt"
	"testing"

	"gridmon/internal/broker"
	"gridmon/internal/message"
	"gridmon/internal/sim"
	"gridmon/internal/simnet"
	"gridmon/internal/wire"
)

// The wire Deliver-frame pool requires consume-exactly-once ownership.
// The simulator cannot provide it: its transports carry frames by
// reference and the unreliable ones keep a frame queued for
// retransmission until acked or abandoned. NewHost therefore opts the
// broker out of the pool (broker.Config.DisableDeliverPool), and these
// tests pin that ownership rule down.

func TestHostOptsOutOfDeliverPool(t *testing.T) {
	r := newRig(t)
	if !r.host.Broker().Config().DisableDeliverPool {
		t.Fatal("simbroker host must disable the Deliver-frame pool: " +
			"retransmission may hold frames past delivery")
	}
}

// TestRetransmissionIntactUnderPoolChurn runs a lossy-transport workload
// whose deliveries are forced through the retransmission path while an
// in-process pool user (modelling e.g. a TCP broker sharing the process)
// continuously recycles Deliver frames through wire.GetDeliver /
// wire.PutDeliver. Every message that reaches the subscriber must carry
// its original, uncorrupted payload: if sim frames entered the pool, the
// churner would scribble over frames still queued for retransmission.
func TestRetransmissionIntactUnderPoolChurn(t *testing.T) {
	k := sim.New(42)
	net := simnet.New(k)
	bn := net.AddNode("broker", simnet.HydraNode())
	cn := net.AddNode("client1", simnet.HydraNode())
	host := NewHost(net, bn, broker.DefaultConfig("broker"), DefaultCosts())

	// Heavy loss with a deep retry budget: many deliveries retransmit at
	// least once, none are abandoned.
	tr := Transport{
		Name:       "lossy",
		LossProb:   0.4,
		AckTimeout: 50 * sim.Millisecond,
		MaxRetries: 10,
	}
	sub, err := host.Connect(cn, tr, "sub")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := host.Connect(cn, tr, "pub")
	if err != nil {
		t.Fatal(err)
	}

	got := map[string]int64{} // frame's message ID -> its payload counter
	sub.OnDeliver = func(d wire.Deliver) {
		v, _ := d.Msg.Property("n")
		n, _ := v.AsLong()
		got[d.Msg.ID] = n
	}
	sub.Subscribe(1, message.Topic("power"), "")

	// Pool churner: every virtual millisecond, grab frames, scribble on
	// them, and return them. If a sim delivery frame were ever pooled
	// while a retransmission queue still held it, this would corrupt the
	// retransmitted copy.
	ticker := k.Every(sim.Millisecond, sim.Millisecond, func() {
		for i := 0; i < 8; i++ {
			d := wire.GetDeliver()
			d.SubID, d.Tag, d.Msg = -999, -999, nil
			wire.PutDeliver(d)
		}
	})

	const total = 50
	for i := 0; i < total; i++ {
		m := paperMsg("power")
		m.ID = fmt.Sprintf("ID:pool/%d", i)
		m.SetProperty("n", message.Int(int32(i)))
		pub.Publish(m)
	}
	k.RunUntil(30 * sim.Second)
	ticker.Stop()
	k.Run() // drain whatever the ticker no longer feeds

	if len(got) < total/2 {
		t.Fatalf("only %d of %d deliveries survived the lossy transport", len(got), total)
	}
	for id, n := range got {
		if want := fmt.Sprintf("ID:pool/%d", n); id != want {
			t.Fatalf("delivery corrupted: payload %d inside frame %q", n, id)
		}
	}
	// The broker-side channel of the subscriber link carries deliveries;
	// the workload must actually have exercised its retransmission path.
	_, _, retransmits, abandoned, _ := host.links[1].rel.Stats()
	if retransmits == 0 {
		t.Fatal("workload never exercised retransmission; loss model broken")
	}
	if abandoned != 0 {
		t.Fatalf("%d deliveries abandoned despite deep retry budget", abandoned)
	}
}
