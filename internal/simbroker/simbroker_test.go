package simbroker

import (
	"testing"

	"gridmon/internal/broker"
	"gridmon/internal/brokernet"
	"gridmon/internal/message"
	"gridmon/internal/sim"
	"gridmon/internal/simnet"
	"gridmon/internal/wire"
)

type rig struct {
	k      *sim.Kernel
	net    *simnet.Network
	host   *Host
	client *simnet.Node // one client machine
}

func newRig(t *testing.T) *rig {
	t.Helper()
	k := sim.New(1)
	net := simnet.New(k)
	bn := net.AddNode("broker", simnet.HydraNode())
	cn := net.AddNode("client1", simnet.HydraNode())
	host := NewHost(net, bn, broker.DefaultConfig("broker"), DefaultCosts())
	return &rig{k: k, net: net, host: host, client: cn}
}

func paperMsg(topic string) *message.Message {
	m := message.NewMap()
	m.Dest = message.Topic(topic)
	m.SetProperty("id", message.Int(7))
	m.MapSet("power", message.Float(1.5))
	m.MapSet("voltage", message.Float(240))
	m.MapSet("site", message.String("aberdeen"))
	return m
}

func TestEndToEndTCP(t *testing.T) {
	r := newRig(t)
	sub, err := r.host.Connect(r.client, TCP(), "sub")
	if err != nil {
		t.Fatal(err)
	}
	pub, err := r.host.Connect(r.client, TCP(), "pub")
	if err != nil {
		t.Fatal(err)
	}
	var gotBroker string
	sub.OnConnected = func(id string) { gotBroker = id }
	var subOK []int64
	sub.OnSubOK = func(id int64) { subOK = append(subOK, id) }
	var rtts []sim.Time
	sub.OnDeliver = func(d wire.Deliver) {
		rtts = append(rtts, r.k.Now()-sim.Time(d.Msg.Timestamp))
	}
	var acked []int64
	pub.OnPubAck = func(seq int64) { acked = append(acked, seq) }

	sub.Subscribe(1, message.Topic("power"), "id<10000")
	r.k.After(sim.Second, func() { pub.Publish(paperMsg("power")) })
	r.k.Run()

	if gotBroker != "broker" {
		t.Fatalf("connected broker = %q", gotBroker)
	}
	if len(subOK) != 1 || subOK[0] != 1 {
		t.Fatalf("subOK = %v", subOK)
	}
	if len(rtts) != 1 {
		t.Fatalf("deliveries = %d", len(rtts))
	}
	if len(acked) != 1 {
		t.Fatalf("pubacks = %v", acked)
	}
	// RTT must be positive, millisecond-scale on an idle system.
	if rtts[0] <= 0 || rtts[0] > 20*sim.Millisecond {
		t.Fatalf("TCP RTT = %v, want low single-digit ms", rtts[0])
	}
	if sub.Received() != 1 || pub.Published() != 1 {
		t.Fatalf("counters: recv=%d pub=%d", sub.Received(), pub.Published())
	}
	// The auto-ack must have cleared broker pending state.
	if got := r.host.Broker().PendingCount(); got != 0 {
		t.Fatalf("pending after auto-ack = %d", got)
	}
}

func TestSelectorChargedAndFiltering(t *testing.T) {
	r := newRig(t)
	sub, _ := r.host.Connect(r.client, TCP(), "sub")
	pub, _ := r.host.Connect(r.client, TCP(), "pub")
	got := 0
	sub.OnDeliver = func(wire.Deliver) { got++ }
	sub.Subscribe(1, message.Topic("power"), "id > 100")
	r.k.After(sim.Second, func() {
		m := paperMsg("power") // id = 7, filtered out
		pub.Publish(m)
	})
	r.k.Run()
	if got != 0 {
		t.Fatal("selector did not filter")
	}
	if r.host.Broker().Stats().SelectorRejected != 1 {
		t.Fatalf("stats: %+v", r.host.Broker().Stats())
	}
}

func TestTransportRTTOrdering(t *testing.T) {
	// The paper's fig. 3 ordering at light load: TCP < NIO < UDP.
	rtt := func(tr Transport) sim.Time {
		k := sim.New(42)
		net := simnet.New(k)
		bn := net.AddNode("broker", simnet.HydraNode())
		cn := net.AddNode("client", simnet.HydraNode())
		host := NewHost(net, bn, broker.DefaultConfig("b"), DefaultCosts())
		sub, err := host.Connect(cn, tr, "sub")
		if err != nil {
			t.Fatal(err)
		}
		pub, err := host.Connect(cn, tr, "pub")
		if err != nil {
			t.Fatal(err)
		}
		var total sim.Time
		n := 0
		sub.OnDeliver = func(d wire.Deliver) {
			total += k.Now() - sim.Time(d.Msg.Timestamp)
			n++
		}
		sub.Subscribe(1, message.Topic("t"), "id<10000")
		for i := 0; i < 20; i++ {
			k.At(sim.Time(i+1)*sim.Second, func() { pub.Publish(paperMsg("t")) })
		}
		k.Run()
		if n == 0 {
			t.Fatalf("%s: no deliveries", tr.Name)
		}
		return total / sim.Time(n)
	}
	tcp, nio, udp := rtt(TCP()), rtt(NIO()), rtt(UDP())
	if !(tcp < nio && nio < udp) {
		t.Fatalf("RTT ordering violated: tcp=%v nio=%v udp=%v", tcp, nio, udp)
	}
}

func TestUDPLossAndRetransmission(t *testing.T) {
	k := sim.New(7)
	net := simnet.New(k)
	bn := net.AddNode("broker", simnet.HydraNode())
	cn := net.AddNode("client", simnet.HydraNode())
	host := NewHost(net, bn, broker.DefaultConfig("b"), DefaultCosts())
	tr := UDP()
	tr.LossProb = 0.2 // exaggerate for the test
	sub, _ := host.Connect(cn, tr, "sub")
	pub, _ := host.Connect(cn, tr, "pub")
	received := 0
	seen := map[string]bool{}
	dup := 0
	sub.OnDeliver = func(d wire.Deliver) {
		received++
		if seen[d.Msg.ID] {
			dup++
		}
		seen[d.Msg.ID] = true
	}
	lost := 0
	pub.OnSendLost = func(wire.Frame) { lost++ }
	sub.Subscribe(1, message.Topic("t"), "")
	const total = 400
	for i := 0; i < total; i++ {
		k.At(sim.Time(i+1)*sim.Second, func() { pub.Publish(paperMsg("t")) })
	}
	k.Run()
	if dup != 0 {
		t.Fatalf("%d duplicate deliveries leaked through dedup", dup)
	}
	if received == total {
		t.Fatal("no residual loss with 20% datagram loss and 1 retry")
	}
	// With p=0.2 and one retry, residual message loss is ~p^2 = 4% per
	// hop; across pub and deliver hops expect roughly 5-15% end-to-end.
	rate := float64(total-received) / float64(total)
	if rate < 0.01 || rate > 0.25 {
		t.Fatalf("loss rate = %.3f, outside plausible band", rate)
	}
}

func TestClientAckBatching(t *testing.T) {
	r := newRig(t)
	sub, _ := r.host.Connect(r.client, TCP(), "sub")
	pub, _ := r.host.Connect(r.client, TCP(), "pub")
	sub.SetAckMode(message.ClientAck)
	sub.OnDeliver = func(wire.Deliver) {}
	sub.Subscribe(1, message.Topic("t"), "")
	for i := 0; i < 25; i++ {
		r.k.At(sim.Time(i+1)*sim.Second, func() { pub.Publish(paperMsg("t")) })
	}
	r.k.Run()
	// 25 deliveries, batch size 10: 20 acked, 5 still pending.
	if got := r.host.Broker().PendingCount(); got != 5 {
		t.Fatalf("pending = %d, want 5", got)
	}
	sub.FlushAcks()
	r.k.Run()
	if got := r.host.Broker().PendingCount(); got != 0 {
		t.Fatalf("pending after flush = %d", got)
	}
}

func TestConnectionRefusalAtNativeBudget(t *testing.T) {
	k := sim.New(1)
	net := simnet.New(k)
	bn := net.AddNode("broker", simnet.HydraNode())
	cn := net.AddNode("client", simnet.HydraNode())
	costs := DefaultCosts()
	costs.NativeBudget = 10 * costs.NativePerConn
	host := NewHost(net, bn, broker.DefaultConfig("b"), costs)
	opened := 0
	for i := 0; i < 20; i++ {
		if _, err := host.Connect(cn, TCP(), "c"); err == nil {
			opened++
		}
	}
	if opened != 10 {
		t.Fatalf("opened %d, want 10", opened)
	}
	if host.Broker().Stats().RefusedConns != 10 {
		t.Fatalf("refused = %d", host.Broker().Stats().RefusedConns)
	}
}

func TestHeapAccountsConnections(t *testing.T) {
	r := newRig(t)
	before := r.host.Node().Heap.Used()
	if _, err := r.host.Connect(r.client, TCP(), "c1"); err != nil {
		t.Fatal(err)
	}
	if got := r.host.Node().Heap.Used() - before; got != DefaultCosts().HeapPerConn {
		t.Fatalf("heap delta = %d", got)
	}
	if r.host.NativeUsed() != DefaultCosts().NativePerConn {
		t.Fatalf("native = %d", r.host.NativeUsed())
	}
}

func TestDBNForwarding(t *testing.T) {
	for _, mode := range []brokernet.RoutingMode{brokernet.RoutingBroadcast, brokernet.RoutingTree} {
		k := sim.New(1)
		net := simnet.New(k)
		b1n := net.AddNode("b1", simnet.HydraNode())
		b2n := net.AddNode("b2", simnet.HydraNode())
		cn := net.AddNode("client", simnet.HydraNode())
		h1 := NewHost(net, b1n, broker.DefaultConfig("b1"), DefaultCosts())
		h2 := NewHost(net, b2n, broker.DefaultConfig("b2"), DefaultCosts())
		h1.JoinNetwork(mode)
		h2.JoinNetwork(mode)
		Peer(h1, h2)

		sub, _ := h2.Connect(cn, TCP(), "sub")
		pub, _ := h1.Connect(cn, TCP(), "pub")
		got := 0
		var rtt sim.Time
		sub.OnDeliver = func(d wire.Deliver) {
			got++
			rtt = k.Now() - sim.Time(d.Msg.Timestamp)
		}
		sub.Subscribe(1, message.Topic("power"), "id<10000")
		k.At(sim.Second, func() { pub.Publish(paperMsg("power")) })
		k.Run()
		if got != 1 {
			t.Fatalf("%v: cross-broker deliveries = %d", mode, got)
		}
		if rtt <= 0 || rtt > 50*sim.Millisecond {
			t.Fatalf("%v: DBN RTT = %v", mode, rtt)
		}
	}
}

func TestDBNSingleVsNetworkRTT(t *testing.T) {
	// A cross-broker path must cost more than a same-broker path: the
	// mechanism behind the paper's fig. 7 RTT2 > RTT.
	singleRTT := func() sim.Time {
		r := newRig(t)
		sub, _ := r.host.Connect(r.client, TCP(), "sub")
		pub, _ := r.host.Connect(r.client, TCP(), "pub")
		var rtt sim.Time
		sub.OnDeliver = func(d wire.Deliver) { rtt = r.k.Now() - sim.Time(d.Msg.Timestamp) }
		sub.Subscribe(1, message.Topic("t"), "")
		r.k.At(sim.Second, func() { pub.Publish(paperMsg("t")) })
		r.k.Run()
		return rtt
	}()

	k := sim.New(1)
	net := simnet.New(k)
	h1 := NewHost(net, net.AddNode("b1", simnet.HydraNode()), broker.DefaultConfig("b1"), DefaultCosts())
	h2 := NewHost(net, net.AddNode("b2", simnet.HydraNode()), broker.DefaultConfig("b2"), DefaultCosts())
	cn := net.AddNode("client", simnet.HydraNode())
	h1.JoinNetwork(brokernet.RoutingBroadcast)
	h2.JoinNetwork(brokernet.RoutingBroadcast)
	Peer(h1, h2)
	sub, _ := h2.Connect(cn, TCP(), "sub")
	pub, _ := h1.Connect(cn, TCP(), "pub")
	var dbnRTT sim.Time
	sub.OnDeliver = func(d wire.Deliver) { dbnRTT = k.Now() - sim.Time(d.Msg.Timestamp) }
	sub.Subscribe(1, message.Topic("t"), "")
	k.At(sim.Second, func() { pub.Publish(paperMsg("t")) })
	k.Run()

	if dbnRTT <= singleRTT {
		t.Fatalf("DBN RTT %v not above single-broker RTT %v", dbnRTT, singleRTT)
	}
}

func TestTriplePayload(t *testing.T) {
	m := paperMsg("t")
	tr := TriplePayload(m)
	if tr.MapLen() != 3*m.MapLen() {
		t.Fatalf("triple map len = %d, want %d", tr.MapLen(), 3*m.MapLen())
	}
	if tr.EncodedSize() <= 2*m.EncodedSize() {
		t.Fatalf("triple size %d vs original %d", tr.EncodedSize(), m.EncodedSize())
	}
	// Non-map messages pass through as clones.
	txt := message.NewText("x")
	if TriplePayload(txt).Text() != "x" {
		t.Fatal("non-map triple broke message")
	}
}

func TestPingPongThroughSim(t *testing.T) {
	r := newRig(t)
	c, _ := r.host.Connect(r.client, TCP(), "c")
	var tok int64
	c.OnPong = func(v int64) { tok = v }
	c.Ping(99)
	r.k.Run()
	if tok != 99 {
		t.Fatalf("pong token = %d", tok)
	}
}

func TestCloseSession(t *testing.T) {
	r := newRig(t)
	c, _ := r.host.Connect(r.client, TCP(), "c")
	c.CloseSession()
	r.k.Run()
	if got := r.host.Broker().Stats().Connections; got != 0 {
		t.Fatalf("connections after close = %d", got)
	}
}

func TestJoinNetworkTwicePanics(t *testing.T) {
	r := newRig(t)
	r.host.JoinNetwork(brokernet.RoutingTree)
	defer func() {
		if recover() == nil {
			t.Fatal("double JoinNetwork did not panic")
		}
	}()
	r.host.JoinNetwork(brokernet.RoutingTree)
}

func TestPeerWithoutNetworkPanics(t *testing.T) {
	k := sim.New(1)
	net := simnet.New(k)
	h1 := NewHost(net, net.AddNode("b1", simnet.HydraNode()), broker.DefaultConfig("b1"), DefaultCosts())
	h2 := NewHost(net, net.AddNode("b2", simnet.HydraNode()), broker.DefaultConfig("b2"), DefaultCosts())
	defer func() {
		if recover() == nil {
			t.Fatal("Peer before JoinNetwork did not panic")
		}
	}()
	Peer(h1, h2)
}
