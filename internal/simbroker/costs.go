// Package simbroker binds the sans-I/O broker core to the discrete-event
// simulator: it hosts brokers on simnet nodes, charges virtual CPU time
// for every frame according to a calibrated cost model, models the JVM's
// split memory budget (heap for messages and sessions, native for thread
// stacks), and emulates the three transport profiles of the paper's
// comparison tests — blocking TCP, non-blocking NIO, and JMS-over-UDP with
// its acknowledgement/retransmission dance.
package simbroker

import (
	"gridmon/internal/message"
	"gridmon/internal/sim"
	"gridmon/internal/wire"
)

// Costs is the CPU cost model, calibrated so the paper's workload lands in
// the paper's RTT regime on the reference (Pentium III 866 MHz) node:
// single-digit milliseconds per message through the broker, saturating
// around 3000–4000 connections at the paper's 0.1 msg/s per generator.
// All costs are virtual CPU time on a speed-1.0 node.
type Costs struct {
	// BrokerFrameBase is charged for every inbound client frame.
	BrokerFrameBase sim.Time
	// BrokerPerByte is charged per payload byte on publish-path frames
	// (serialization, copying, GC pressure).
	BrokerPerByte sim.Time
	// BrokerDeliverBase is charged for every outbound Deliver frame.
	BrokerDeliverBase sim.Time
	// BrokerSmallSend is charged for outbound control frames.
	BrokerSmallSend sim.Time
	// BrokerAck is charged for every inbound Ack frame.
	BrokerAck sim.Time
	// BrokerSelectorNode is charged per selector AST node per match test.
	BrokerSelectorNode sim.Time
	// BrokerPerConnScan models thread-per-connection scheduling overhead:
	// it is charged per inbound data frame, multiplied by the number of
	// open connections. This is what separates the paper's "80
	// connections at 10x rate" test from the 800-connection baseline.
	BrokerPerConnScan sim.Time
	// ForwardOut / ForwardIn are charged per inter-broker frame.
	ForwardOut sim.Time
	ForwardIn  sim.Time

	// Client-side costs.
	ClientSendBase sim.Time
	ClientRecvBase sim.Time
	ClientPerByte  sim.Time
	ClientSmall    sim.Time

	// Memory model.
	HeapPerConn   int64 // session + socket buffers on the JVM heap
	NativePerConn int64 // thread stack outside the heap
	NativeBudget  int64 // address space available for thread stacks
}

// DefaultCosts returns the calibrated model for the paper's testbed.
func DefaultCosts() Costs {
	return Costs{
		BrokerFrameBase:    400 * sim.Microsecond,
		BrokerPerByte:      1500 * sim.Nanosecond,
		BrokerDeliverBase:  500 * sim.Microsecond,
		BrokerSmallSend:    60 * sim.Microsecond,
		BrokerAck:          250 * sim.Microsecond,
		BrokerSelectorNode: 4 * sim.Microsecond,
		BrokerPerConnScan:  150 * sim.Nanosecond,
		ForwardOut:         150 * sim.Microsecond,
		ForwardIn:          700 * sim.Microsecond,

		ClientSendBase: 200 * sim.Microsecond,
		ClientRecvBase: 200 * sim.Microsecond,
		ClientPerByte:  800 * sim.Nanosecond,
		ClientSmall:    40 * sim.Microsecond,

		HeapPerConn:   96 << 10,
		NativePerConn: 256 << 10,
		NativeBudget:  960 << 20,
	}
}

// frameBytes reports how many payload bytes a frame carries (for per-byte
// cost purposes; control frames count as zero). Deliver frames appear
// both by value (decoded off a real wire) and by pointer (the broker's
// pooled zero-copy fan-out).
func frameBytes(f wire.Frame) int {
	switch v := f.(type) {
	case wire.Publish:
		return v.Msg.EncodedSize()
	case wire.Deliver:
		return v.Msg.EncodedSize()
	case *wire.Deliver:
		return v.Msg.EncodedSize()
	case *wire.DeliverBatch:
		// Stream-identical to N Delivers of the same message (the batch
		// is a transport-internal envelope): N payload copies' worth.
		return len(v.Entries) * v.Msg.EncodedSize()
	case wire.BrokerForward:
		return v.Msg.EncodedSize()
	}
	return 0
}

// brokerRecvCost prices an inbound frame at the broker, given the current
// connection count and the transport's per-data-frame overhead.
func (c Costs) brokerRecvCost(f wire.Frame, conns int, tr Transport) sim.Time {
	switch f.(type) {
	case wire.Publish:
		return c.BrokerFrameBase +
			sim.Time(frameBytes(f))*c.BrokerPerByte +
			sim.Time(conns)*c.BrokerPerConnScan +
			tr.DataOverhead
	case wire.Ack:
		return c.BrokerAck
	default:
		return c.BrokerFrameBase
	}
}

// brokerSendCost prices an outbound frame at the broker.
func (c Costs) brokerSendCost(f wire.Frame, tr Transport) sim.Time {
	switch v := f.(type) {
	case wire.Deliver, *wire.Deliver:
		return c.BrokerDeliverBase + sim.Time(frameBytes(f))*c.BrokerPerByte + tr.DataOverhead
	case *wire.DeliverBatch:
		// Parity with the N Deliver frames the batch replaces (the sim
		// hosts force SerialFanout, so this prices hypothetical runs).
		return sim.Time(len(v.Entries))*(c.BrokerDeliverBase+tr.DataOverhead) +
			sim.Time(frameBytes(f))*c.BrokerPerByte
	default:
		return c.BrokerSmallSend
	}
}

// clientSendCost prices frame submission on the client node.
func (c Costs) clientSendCost(f wire.Frame, tr Transport) sim.Time {
	if _, ok := f.(wire.Publish); ok {
		return c.ClientSendBase + sim.Time(frameBytes(f))*c.ClientPerByte + tr.DataOverhead
	}
	return c.ClientSmall
}

// clientRecvCost prices frame reception on the client node.
func (c Costs) clientRecvCost(f wire.Frame, tr Transport) sim.Time {
	switch v := f.(type) {
	case wire.Deliver, *wire.Deliver:
		return c.ClientRecvBase + sim.Time(frameBytes(f))*c.ClientPerByte + tr.DataOverhead
	case *wire.DeliverBatch:
		return sim.Time(len(v.Entries))*(c.ClientRecvBase+tr.DataOverhead) +
			sim.Time(frameBytes(f))*c.ClientPerByte
	}
	return c.ClientSmall
}

// selectorCost prices one selector evaluation.
func (c Costs) selectorCost(complexity int) sim.Time {
	return sim.Time(complexity) * c.BrokerSelectorNode
}

// DeliverRecvCost reports the client-side cost of receiving one message —
// the subscribing response time in the paper's decomposition (fig. 15).
func (c Costs) DeliverRecvCost(m *message.Message, tr Transport) sim.Time {
	return c.clientRecvCost(wire.Deliver{Msg: m}, tr)
}

// Transport is a NaradaBrokering transport profile (the paper's §III.E.1
// comparison dimension).
type Transport struct {
	Name string
	// Reliable transports (TCP, NIO) never lose frames and need no
	// application-level acknowledgement dance.
	Reliable bool
	// LossProb is the per-datagram loss probability for unreliable
	// transports.
	LossProb float64
	// AckTimeout and MaxRetries drive the datagram retransmission state
	// machine for unreliable transports.
	AckTimeout sim.Time
	MaxRetries int
	// DataOverhead is extra CPU charged per data frame on both ends:
	// NIO's selector/buffer management, or UDP's JMS acknowledgement
	// bookkeeping (the mechanism the paper blames for UDP's
	// "surprisingly high" RTT).
	DataOverhead sim.Time
}

// TCP is the blocking TCP transport, the paper's recommendation.
func TCP() Transport {
	return Transport{Name: "TCP", Reliable: true}
}

// NIO is non-blocking TCP; the paper measured it slightly slower than
// blocking TCP for this workload.
func NIO() Transport {
	return Transport{Name: "NIO", Reliable: true, DataOverhead: 500 * sim.Microsecond}
}

// UDP carries JMS over datagrams: per-message acknowledgement state, a
// retransmission timer, and residual loss after retries (the paper's test
// 1 lost 0.06% of messages).
func UDP() Transport {
	return Transport{
		Name:         "UDP",
		LossProb:     0.017,
		AckTimeout:   120 * sim.Millisecond,
		MaxRetries:   1,
		DataOverhead: 1800 * sim.Microsecond,
	}
}

// UDPClientAck is the paper's "UDP CLI" variant: CLIENT_ACKNOWLEDGE
// sessions batch JMS acks, which measured marginally slower RTT but half
// the loss (0.03%).
func UDPClientAck() Transport {
	return Transport{
		Name:         "UDP CLI",
		LossProb:     0.012,
		AckTimeout:   120 * sim.Millisecond,
		MaxRetries:   1,
		DataOverhead: 2000 * sim.Microsecond,
	}
}

// connOptions maps a transport onto simnet connection options for the
// Hydra LAN.
func (t Transport) connOptions() simnetOpts {
	return simnetOpts{reliable: t.Reliable, lossProb: t.LossProb}
}

type simnetOpts struct {
	reliable bool
	lossProb float64
}

// TriplePayload expands a map-message workload payload by a factor of
// three, the paper's test 5. It clones the message and duplicates every
// map entry twice more under suffixed names.
func TriplePayload(m *message.Message) *message.Message {
	out := m.Clone()
	if m.BodyKind() != message.MapBody {
		return out
	}
	for _, name := range m.MapNames() {
		v, _ := m.MapGet(name)
		out.MapSet(name+"_2", v)
		out.MapSet(name+"_3", v)
	}
	return out
}
