// Package shardhash provides the one routing hash every sharded layer
// in this repo uses to map names onto lock domains: the broker's
// destination shards, the R-GMA registry's table shards and the R-GMA
// HTTP service's table shards. Keeping it in one place means a future
// routing change cannot leave two layers hashing the same name to
// different shards.
package shardhash

// FNV1a is the 32-bit FNV-1a hash over a string, allocation-free.
func FNV1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
