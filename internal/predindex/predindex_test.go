package predindex

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

// mapSource probes from a plain attribute map.
type mapSource map[string]Value

func (m mapSource) ProbeAttr(attr string) (Value, bool) {
	v, ok := m[attr]
	return v, ok
}

func cands(t *testing.T, ix *Index, src Source) []int32 {
	t.Helper()
	out := ix.Candidates(src, nil)
	if !slices.IsSorted(out) {
		t.Fatalf("candidates not sorted: %v", out)
	}
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1] {
			t.Fatalf("duplicate candidate seq %d in %v", out[i], out)
		}
	}
	return out
}

func TestBuildAndCandidatesBasics(t *testing.T) {
	ix := Build([]Key{
		EqKey("site", Str("cern")),             // 0
		EqKey("site", Str("ral")),              // 1
		EqKey("site", Str("cern"), Str("ral")), // 2
		RangeKey("load", math.Inf(-1), 5),      // 3: load <= 5
		RangeKey("load", 3, math.Inf(1)),       // 4: load >= 3
		ResidualKey(),                          // 5
		NeverKey(),                             // 6
		EqKey("up", Boolean(true)),             // 7
		RangeKey("load", 10, 20),               // 8
	})
	if ix.Len() != 9 || ix.NumResidual() != 1 || ix.NumNever() != 1 {
		t.Fatalf("Len=%d residual=%d never=%d", ix.Len(), ix.NumResidual(), ix.NumNever())
	}

	got := cands(t, ix, mapSource{"site": Str("cern"), "load": Num(4), "up": Boolean(true)})
	want := []int32{0, 2, 3, 4, 5, 7}
	if !slices.Equal(got, want) {
		t.Fatalf("candidates %v, want %v", got, want)
	}

	// Absent attributes contribute nothing; residual always present.
	got = cands(t, ix, mapSource{})
	if !slices.Equal(got, []int32{5}) {
		t.Fatalf("empty probe candidates %v, want [5]", got)
	}

	// Range endpoints are inclusive on both sides.
	got = cands(t, ix, mapSource{"load": Num(10)})
	if !slices.Equal(got, []int32{4, 5, 8}) {
		t.Fatalf("load=10 candidates %v, want [4 5 8]", got)
	}
	got = cands(t, ix, mapSource{"load": Num(20)})
	if !slices.Equal(got, []int32{4, 5, 8}) {
		t.Fatalf("load=20 candidates %v, want [4 5 8]", got)
	}

	// Non-numeric probe value never stabs the interval tree.
	got = cands(t, ix, mapSource{"load": Str("4")})
	if !slices.Equal(got, []int32{5}) {
		t.Fatalf("string load candidates %v, want [5]", got)
	}
}

func TestKeyConstructorsDegrade(t *testing.T) {
	if k := EqKey("a"); k.Kind != Never {
		t.Fatalf("empty EqKey kind %v, want Never", k.Kind)
	}
	if k := RangeKey("a", 5, 3); k.Kind != Never {
		t.Fatalf("empty RangeKey kind %v, want Never", k.Kind)
	}
	if k := RangeKey("a", math.NaN(), 3); k.Kind != Never {
		t.Fatalf("NaN RangeKey kind %v, want Never", k.Kind)
	}
	if k := RangeKey("a", 3, 3); k.Kind != Range {
		t.Fatalf("point RangeKey kind %v, want Range", k.Kind)
	}
}

func TestAndCombinator(t *testing.T) {
	eq1 := EqKey("a", Num(1))
	eq2 := EqKey("b", Num(1), Num(2))
	rng := RangeKey("c", 0, 10)
	res := ResidualKey()
	nev := NeverKey()

	if k := And(res, nev); k.Kind != Never {
		t.Fatalf("And(residual, never) = %v", k)
	}
	if k := And(eq1, rng); k.Kind != Eq || k.Attr != "a" {
		t.Fatalf("And(eq, range) = %+v, want eq1", k)
	}
	if k := And(rng, res); k.Kind != Range {
		t.Fatalf("And(range, residual) = %+v, want range", k)
	}
	// Ties between Eq keys: fewer values wins.
	if k := And(eq2, eq1); k.Attr != "a" {
		t.Fatalf("And(eq2, eq1) = %+v, want the 1-value key", k)
	}
	if k := And(eq1, eq2); k.Attr != "a" {
		t.Fatalf("And(eq1, eq2) = %+v, want the 1-value key", k)
	}
}

func TestOrCombinator(t *testing.T) {
	if k := Or(NeverKey(), EqKey("a", Num(1))); k.Kind != Eq {
		t.Fatalf("Or(never, eq) = %+v", k)
	}
	if k := Or(ResidualKey(), EqKey("a", Num(1))); k.Kind != Residual {
		t.Fatalf("Or(residual, eq) = %+v", k)
	}
	// Same-attr Eq union, deduplicated.
	k := Or(EqKey("a", Num(1), Num(2)), EqKey("a", Num(2), Num(3)))
	if k.Kind != Eq || len(k.Vals) != 3 {
		t.Fatalf("Or eq-union = %+v, want 3 deduped values", k)
	}
	// Different attrs cannot be admitted by one key.
	if k := Or(EqKey("a", Num(1)), EqKey("b", Num(1))); k.Kind != Residual {
		t.Fatalf("Or cross-attr = %+v, want Residual", k)
	}
	// Same-attr Range hull.
	k = Or(RangeKey("a", 0, 5), RangeKey("a", 10, 20))
	if k.Kind != Range || k.Lo != 0 || k.Hi != 20 {
		t.Fatalf("Or range-hull = %+v, want [0,20]", k)
	}
	// Eq-vs-Range stays safe.
	if k := Or(EqKey("a", Str("x")), RangeKey("a", 0, 5)); k.Kind != Residual {
		t.Fatalf("Or eq-vs-range = %+v, want Residual", k)
	}
}

// TestIntervalStabRandomized cross-checks the implicit interval tree
// against a brute-force scan over random interval sets and probe
// points, including open (±Inf) sides and shared endpoints.
func TestIntervalStabRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		keys := make([]Key, n)
		type ivt struct{ lo, hi float64 }
		ivs := make([]ivt, n)
		for i := range keys {
			lo := float64(rng.Intn(21) - 10)
			hi := lo + float64(rng.Intn(11))
			if rng.Intn(8) == 0 {
				lo = math.Inf(-1)
			}
			if rng.Intn(8) == 0 {
				hi = math.Inf(1)
			}
			keys[i] = RangeKey("x", lo, hi)
			ivs[i] = ivt{lo, hi}
		}
		ix := Build(keys)
		for probe := 0; probe < 30; probe++ {
			x := float64(rng.Intn(31) - 15)
			got := cands(t, ix, mapSource{"x": Num(x)})
			var want []int32
			for i, v := range ivs {
				if v.lo <= x && x <= v.hi {
					want = append(want, int32(i))
				}
			}
			if !slices.Equal(got, want) {
				t.Fatalf("trial %d x=%v: got %v, want %v", trial, x, got, want)
			}
		}
	}
}

// TestCandidatesScratchReuse pins the zero-allocation contract: a
// recycled buffer large enough for the result must be reused, not
// reallocated.
func TestCandidatesScratchReuse(t *testing.T) {
	ix := Build([]Key{EqKey("a", Num(1)), ResidualKey(), RangeKey("a", 0, 2)})
	buf := make([]int32, 0, 16)
	src := mapSource{"a": Num(1)}
	out := ix.Candidates(src, buf)
	if !slices.Equal(out, []int32{0, 1, 2}) {
		t.Fatalf("candidates %v", out)
	}
	if &out[:1][0] != &buf[:1][0] {
		t.Fatal("Candidates reallocated despite sufficient scratch capacity")
	}
	if n := testing.AllocsPerRun(100, func() {
		buf = ix.Candidates(src, buf[:0])
	}); n != 0 {
		t.Fatalf("Candidates allocates %v per run with recycled scratch", n)
	}
}

// TestMultiValueEqSingleProbe pins the per-plan dedup invariant: a
// multi-value Eq key emits its seq at most once per probe even when
// values collide after canonicalization.
func TestMultiValueEqSingleProbe(t *testing.T) {
	ix := Build([]Key{EqKey("a", Num(1), Num(1), Str("x"))})
	got := cands(t, ix, mapSource{"a": Num(1)})
	if !slices.Equal(got, []int32{0}) {
		t.Fatalf("candidates %v, want [0]", got)
	}
}
