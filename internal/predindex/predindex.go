// Package predindex implements the content-based matching index shared
// by the broker's topic routing and the R-GMA core's insert fan-out.
//
// Both hot paths dispatch one message (or tuple) against many distinct
// compiled predicates; scanning every predicate makes the per-message
// cost O(#predicates) even when one matches. The index turns that into
// O(#matching + #residual): each predicate is summarized by a *required
// key* — a conjunct the whole predicate cannot be TRUE without — and
// the message probes only the buckets its own attribute values select.
// Equality keys hash into per-attribute value buckets, numeric range
// keys go into a per-attribute interval tree, and predicates without an
// extractable key fall to a residual list that is scanned linearly.
//
// The contract is *candidate superset*, never exact match: Candidates
// returns every predicate that could evaluate to TRUE (and possibly
// some that do not), in the same first-appearance order a linear scan
// would visit them, and the caller's compiled program still renders the
// verdict. Correctness therefore cannot depend on extraction precision:
// an imprecise key only costs candidates, a wrong key would lose them —
// which is why extraction (internal/selector, internal/sqlmini) only
// widens (inclusive float64 bounds, residual on anything subtle).
//
// Shard-safety: an Index is immutable after Build and may be read
// concurrently without synchronization. Both users build it at
// copy-on-write route-patch time (broker topicRoute, rgmacore
// tableSnap) and publish it through the same atomic.Pointer snapshot,
// so the lock-free read paths consult it with no additional ordering.
package predindex

import (
	"math"
	"slices"
	"sort"
)

// ValueKind tags a canonical probe/bucket value.
type ValueKind uint8

// Value kinds. All numerics — int64, float32, float64 — canonicalize to
// KNum via float64: the evaluators compare mixed numeric types through
// float64 promotion, so two values that can compare equal always hash
// to the same bucket. (Exact long/long comparison agrees: equal int64s
// convert to equal float64s. Distinct int64s that collide as float64
// merely share a bucket; the compiled program rejects the extras.)
const (
	KNum ValueKind = iota + 1
	KStr
	KBool
)

// Value is a canonical attribute value, usable as a map key.
type Value struct {
	Kind ValueKind
	F    float64
	S    string
	B    bool
}

// Num, Str and Boolean construct canonical values.
func Num(f float64) Value  { return Value{Kind: KNum, F: f} }
func Str(s string) Value   { return Value{Kind: KStr, S: s} }
func Boolean(b bool) Value { return Value{Kind: KBool, B: b} }

// KeyKind tags a required key.
type KeyKind uint8

// Key kinds.
//
//   - Residual: no required conjunct could be extracted; the predicate
//     is always a candidate.
//   - Never: the predicate can be proven to never evaluate TRUE for any
//     input (e.g. `x = NULL` is always UNKNOWN); it is never a
//     candidate.
//   - Eq: the predicate requires attr to equal one of Vals.
//   - Range: the predicate requires attr to be numeric and inside the
//     inclusive interval [Lo, Hi] (±Inf for open sides).
const (
	Residual KeyKind = iota
	Never
	Eq
	Range
)

// Key is the required-conjunct summary of one predicate.
type Key struct {
	Kind KeyKind
	Attr string
	Vals []Value // Eq: the admissible values (≥1 after construction)
	Lo   float64 // Range: inclusive lower bound
	Hi   float64 // Range: inclusive upper bound
}

// ResidualKey returns the always-a-candidate key.
func ResidualKey() Key { return Key{Kind: Residual} }

// NeverKey returns the never-a-candidate key.
func NeverKey() Key { return Key{Kind: Never} }

// EqKey returns a key requiring attr to equal one of vals. With no
// values the predicate can never be TRUE, so the key degrades to Never.
func EqKey(attr string, vals ...Value) Key {
	if len(vals) == 0 {
		return NeverKey()
	}
	return Key{Kind: Eq, Attr: attr, Vals: vals}
}

// RangeKey returns a key requiring attr to be numeric in [lo, hi]
// inclusive. An empty interval degrades to Never.
func RangeKey(attr string, lo, hi float64) Key {
	if !(lo <= hi) { // also catches NaN bounds
		return NeverKey()
	}
	return Key{Kind: Range, Attr: attr, Lo: lo, Hi: hi}
}

// And combines the keys of two conjuncts: `p AND q` is TRUE only when
// both sides are TRUE, so either side's key is a valid required key for
// the conjunction and And picks the more selective one. It never
// narrows below what one side already guarantees, keeping the superset
// property.
func And(a, b Key) Key {
	if a.Kind == Never || b.Kind == Never {
		return NeverKey()
	}
	return pickSelective(a, b)
}

// pickSelective orders Eq (fewest values first) > Range > Residual.
func pickSelective(a, b Key) Key {
	score := func(k Key) int {
		switch k.Kind {
		case Eq:
			return 2
		case Range:
			return 1
		}
		return 0
	}
	sa, sb := score(a), score(b)
	if sa > sb {
		return a
	}
	if sb > sa {
		return b
	}
	if a.Kind == Eq && len(b.Vals) < len(a.Vals) {
		return b
	}
	return a
}

// Or combines the keys of two disjuncts: `p OR q` is TRUE when either
// side is, so a required key must admit both sides' admissible inputs.
// Same-attribute Eq keys union their value sets; same-attribute Range
// keys take the convex hull; anything else falls to Residual (unless
// one side is Never, whose inputs need no admitting).
func Or(a, b Key) Key {
	if a.Kind == Never {
		return b
	}
	if b.Kind == Never {
		return a
	}
	if a.Kind == Residual || b.Kind == Residual {
		return ResidualKey()
	}
	if a.Attr != b.Attr {
		return ResidualKey()
	}
	if a.Kind == Eq && b.Kind == Eq {
		vals := make([]Value, 0, len(a.Vals)+len(b.Vals))
		vals = append(vals, a.Vals...)
	outer:
		for _, v := range b.Vals {
			for _, u := range a.Vals {
				if u == v {
					continue outer
				}
			}
			vals = append(vals, v)
		}
		return Key{Kind: Eq, Attr: a.Attr, Vals: vals}
	}
	if a.Kind == Range && b.Kind == Range {
		return RangeKey(a.Attr, math.Min(a.Lo, b.Lo), math.Max(a.Hi, b.Hi))
	}
	// Eq-vs-Range on one attribute: a numeric hull would admit both, but
	// Eq values may be non-numeric (strings, bools), so stay safe.
	return ResidualKey()
}

// Source supplies attribute values while probing the index. ok=false
// means the attribute is absent or NULL — no Eq or Range conjunct over
// it can be TRUE, so those plans contribute no candidates.
type Source interface {
	ProbeAttr(attr string) (Value, bool)
}

// iv is one range entry: predicate seq requires the attribute in
// [lo, hi].
type iv struct {
	lo, hi float64
	seq    int32
}

// attrPlan holds every key extracted for one attribute.
type attrPlan struct {
	attr string
	eq   map[Value][]int32 // bucket → seqs, each seq in exactly one bucket
	ivs  []iv              // sorted by lo; stabbed via maxHi
	// maxHi[i] is the maximum hi in the subtree rooted at i of the
	// implicit balanced tree over ivs (midpoint recursion), enabling
	// O(log n + k) stabbing queries.
	maxHi []float64
}

// Index is a built discrimination index over a fixed predicate list.
// Immutable after Build; see the package comment for shard-safety.
type Index struct {
	plans    []attrPlan
	residual []int32
	n        int
	never    int
}

// Build constructs an index over keys[i] for predicate seq i. The seqs
// emitted by Candidates index into the same slice order.
func Build(keys []Key) *Index {
	ix := &Index{n: len(keys)}
	byAttr := map[string]int{}
	plan := func(attr string) *attrPlan {
		i, ok := byAttr[attr]
		if !ok {
			i = len(ix.plans)
			byAttr[attr] = i
			ix.plans = append(ix.plans, attrPlan{attr: attr})
		}
		return &ix.plans[i]
	}
	for seq, k := range keys {
		switch k.Kind {
		case Never:
			ix.never++
		case Eq:
			pl := plan(k.Attr)
			if pl.eq == nil {
				pl.eq = map[Value][]int32{}
			}
			seen := map[Value]bool{}
			for _, v := range k.Vals {
				if !seen[v] { // a seq must appear at most once per probe
					seen[v] = true
					pl.eq[v] = append(pl.eq[v], int32(seq))
				}
			}
		case Range:
			pl := plan(k.Attr)
			pl.ivs = append(pl.ivs, iv{lo: k.Lo, hi: k.Hi, seq: int32(seq)})
		default:
			ix.residual = append(ix.residual, int32(seq))
		}
	}
	for i := range ix.plans {
		pl := &ix.plans[i]
		if len(pl.ivs) == 0 {
			continue
		}
		sort.Slice(pl.ivs, func(a, b int) bool {
			if pl.ivs[a].lo != pl.ivs[b].lo {
				return pl.ivs[a].lo < pl.ivs[b].lo
			}
			return pl.ivs[a].seq < pl.ivs[b].seq
		})
		pl.maxHi = make([]float64, len(pl.ivs))
		buildMaxHi(pl.ivs, pl.maxHi, 0, len(pl.ivs))
	}
	return ix
}

// buildMaxHi fills the implicit-tree subtree maxima for ivs[l:r) and
// returns the subtree maximum.
func buildMaxHi(ivs []iv, maxHi []float64, l, r int) float64 {
	if l >= r {
		return math.Inf(-1)
	}
	mid := (l + r) / 2
	m := ivs[mid].hi
	if lm := buildMaxHi(ivs, maxHi, l, mid); lm > m {
		m = lm
	}
	if rm := buildMaxHi(ivs, maxHi, mid+1, r); rm > m {
		m = rm
	}
	maxHi[mid] = m
	return m
}

// Len reports the number of predicates the index was built over.
func (ix *Index) Len() int { return ix.n }

// NumResidual reports how many predicates fell to the linear residual.
func (ix *Index) NumResidual() int { return len(ix.residual) }

// NumNever reports how many predicates were proven never-TRUE.
func (ix *Index) NumNever() int { return ix.never }

// Candidates appends to out the seqs of every predicate that could
// evaluate TRUE for the probe source, sorted ascending — the same
// first-appearance order a linear scan visits, which keeps delivery
// order (and therefore single-caller runs) bit-identical to the linear
// path. out is used as scratch; pass a recycled buffer to avoid
// allocation.
func (ix *Index) Candidates(src Source, out []int32) []int32 {
	for i := range ix.plans {
		pl := &ix.plans[i]
		v, ok := src.ProbeAttr(pl.attr)
		if !ok {
			continue
		}
		if pl.eq != nil {
			out = append(out, pl.eq[v]...)
		}
		if len(pl.ivs) > 0 && v.Kind == KNum {
			out = stab(pl.ivs, pl.maxHi, v.F, 0, len(pl.ivs), out)
		}
	}
	out = append(out, ix.residual...)
	// Each seq appears at most once (one bucket per plan, plans are
	// disjoint by attr, residual is disjoint from plans), so a plain
	// sort restores first-appearance order. slices.Sort does not
	// allocate, unlike sort.Slice — this runs per publish.
	slices.Sort(out)
	return out
}

// stab walks the implicit interval tree over ivs[l:r) appending every
// interval containing x. NaN x matches nothing (all comparisons false).
func stab(ivs []iv, maxHi []float64, x float64, l, r int, out []int32) []int32 {
	if l >= r || !(maxHi[(l+r)/2] >= x) {
		return out
	}
	mid := (l + r) / 2
	out = stab(ivs, maxHi, x, l, mid, out)
	if ivs[mid].lo <= x {
		if ivs[mid].hi >= x {
			out = append(out, ivs[mid].seq)
		}
		out = stab(ivs, maxHi, x, mid+1, r, out)
	}
	return out
}
