package walfs

import (
	"errors"
	"sync"
)

// ErrInjected is the error every faulted operation returns.
var ErrInjected = errors.New("walfs: injected fault")

// Fault wraps an FS and fails the Nth mutating I/O (counting Write and
// Sync calls across all files, 1-based). A failing Write may first
// apply a torn prefix of its payload — modeling a crash mid-write —
// and every operation after the trigger also fails, modeling a process
// that cannot touch the disk again until restart.
//
// Crash-point tests sweep FailAt over every I/O a workload performs and
// assert recovery from each resulting image.
type Fault struct {
	fs FS

	mu        sync.Mutex
	failAt    int // 1-based op index to fail; 0 disables
	tornBytes int // bytes of the failing Write applied before the error
	ops       int
	triggered bool
}

// NewFault wraps fs so the failAt'th Write/Sync fails, with tornBytes
// of a failing Write applied first.
func NewFault(fs FS, failAt, tornBytes int) *Fault {
	return &Fault{fs: fs, failAt: failAt, tornBytes: tornBytes}
}

// Triggered reports whether the injected fault has fired.
func (f *Fault) Triggered() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.triggered
}

// Ops reports how many Write/Sync calls have been observed; a sweep
// runs once with no fault to size its FailAt range.
func (f *Fault) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// step counts one mutating op and decides whether it faults. torn is
// how many bytes of a faulting Write to apply first (0 for Sync).
func (f *Fault) step() (fail bool, torn int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.triggered {
		return true, 0
	}
	f.ops++
	if f.failAt > 0 && f.ops == f.failAt {
		f.triggered = true
		return true, f.tornBytes
	}
	return false, 0
}

func (f *Fault) OpenFile(name string, create bool) (File, error) {
	ff, err := f.fs.OpenFile(name, create)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: ff, ctl: f}, nil
}

func (f *Fault) Remove(name string) error {
	f.mu.Lock()
	dead := f.triggered
	f.mu.Unlock()
	if dead {
		return ErrInjected
	}
	return f.fs.Remove(name)
}

func (f *Fault) Rename(oldname, newname string) error {
	f.mu.Lock()
	dead := f.triggered
	f.mu.Unlock()
	if dead {
		return ErrInjected
	}
	return f.fs.Rename(oldname, newname)
}

func (f *Fault) List() ([]string, error) { return f.fs.List() }

type faultFile struct {
	f   File
	ctl *Fault
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *faultFile) Size() (int64, error)                    { return f.f.Size() }
func (f *faultFile) Close() error                            { return f.f.Close() }

func (f *faultFile) Write(p []byte) (int, error) {
	fail, torn := f.ctl.step()
	if fail {
		if torn > len(p) {
			torn = len(p)
		}
		if torn > 0 {
			_, _ = f.f.Write(p[:torn])
		}
		return 0, ErrInjected
	}
	return f.f.Write(p)
}

func (f *faultFile) Truncate(size int64) error {
	if f.ctl.Triggered() {
		return ErrInjected
	}
	return f.f.Truncate(size)
}

func (f *faultFile) Sync() error {
	if fail, _ := f.ctl.step(); fail {
		return ErrInjected
	}
	return f.f.Sync()
}
