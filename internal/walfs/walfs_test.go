package walfs

import (
	"errors"
	"io/fs"
	"testing"
)

// backends runs a subtest against the mem and disk implementations so
// both honor the same contract.
func backends(t *testing.T, run func(t *testing.T, fsys FS)) {
	t.Run("mem", func(t *testing.T) { run(t, NewMem()) })
	t.Run("disk", func(t *testing.T) {
		d, err := Disk(t.TempDir() + "/wal")
		if err != nil {
			t.Fatal(err)
		}
		run(t, d)
	})
}

func write(t *testing.T, f File, data string) {
	t.Helper()
	if n, err := f.Write([]byte(data)); err != nil || n != len(data) {
		t.Fatalf("Write = %d, %v", n, err)
	}
}

func readFull(t *testing.T, f File) string {
	t.Helper()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	return string(buf)
}

func TestBackendContract(t *testing.T) {
	backends(t, func(t *testing.T, fsys FS) {
		if _, err := fsys.OpenFile("absent", false); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("open missing without create: err = %v, want fs.ErrNotExist", err)
		}
		f, err := fsys.OpenFile("a", true)
		if err != nil {
			t.Fatal(err)
		}
		write(t, f, "hello ")
		write(t, f, "world")
		if got := readFull(t, f); got != "hello world" {
			t.Fatalf("appended content = %q", got)
		}
		if err := f.Truncate(5); err != nil {
			t.Fatal(err)
		}
		write(t, f, "!")
		if got := readFull(t, f); got != "hello!" {
			t.Fatalf("after truncate+append: %q", got)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		// Reopen preserves content and append position.
		f, err = fsys.OpenFile("a", false)
		if err != nil {
			t.Fatal(err)
		}
		write(t, f, "?")
		if got := readFull(t, f); got != "hello!?" {
			t.Fatalf("after reopen+append: %q", got)
		}
		_ = f.Close()

		if err := fsys.Rename("a", "b"); err != nil {
			t.Fatal(err)
		}
		names, err := fsys.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 1 || names[0] != "b" {
			t.Fatalf("List after rename = %v", names)
		}
		if err := fsys.Remove("b"); err != nil {
			t.Fatal(err)
		}
		if names, _ := fsys.List(); len(names) != 0 {
			t.Fatalf("List after remove = %v", names)
		}
	})
}

func TestMemCrashDropsUnsynced(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenFile("f", true)
	write(t, f, "durable")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	write(t, f, " volatile")
	m.Crash()
	g, err := m.OpenFile("f", false)
	if err != nil {
		t.Fatal(err)
	}
	if got := readFull(t, g); got != "durable" {
		t.Fatalf("after crash: %q, want only the synced prefix", got)
	}
}

func TestMemCrashKeepUnsynced(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenFile("f", true)
	write(t, f, "durable")
	_ = f.Sync()
	write(t, f, " lucky")
	m.CrashKeepUnsynced()
	m.Crash() // everything is now synced, so nothing drops
	g, _ := m.OpenFile("f", false)
	if got := readFull(t, g); got != "durable lucky" {
		t.Fatalf("after keep-unsynced crash: %q", got)
	}
}

func TestMemTruncateLowersSyncedLen(t *testing.T) {
	m := NewMem()
	f, _ := m.OpenFile("f", true)
	write(t, f, "0123456789")
	_ = f.Sync()
	if err := f.Truncate(4); err != nil {
		t.Fatal(err)
	}
	write(t, f, "ab")
	m.Crash() // "ab" unsynced; synced mark must have moved down to 4
	g, _ := m.OpenFile("f", false)
	if got := readFull(t, g); got != "0123" {
		t.Fatalf("after truncate+crash: %q", got)
	}
}

func TestFaultFailsNthOp(t *testing.T) {
	// Ops: write(1) sync(2) write(3) — fail the third, torn by 2 bytes.
	m := NewMem()
	ff := NewFault(m, 3, 2)
	f, err := ff.OpenFile("f", true)
	if err != nil {
		t.Fatal(err)
	}
	write(t, f, "aaaa")
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("bbbb")); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd op: err = %v, want ErrInjected", err)
	}
	if !ff.Triggered() {
		t.Fatal("fault did not report triggered")
	}
	// Everything after the trigger fails too.
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trigger sync: err = %v", err)
	}
	if _, err := f.Write([]byte("c")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trigger write: err = %v", err)
	}
	if err := ff.Remove("f"); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-trigger remove: err = %v", err)
	}
	// The torn prefix of the failing write reached the file.
	g, _ := m.OpenFile("f", false)
	if got := readFull(t, g); got != "aaaabb" {
		t.Fatalf("file content = %q, want synced prefix + 2 torn bytes", got)
	}
}

func TestFaultOpsCounter(t *testing.T) {
	ff := NewFault(NewMem(), 0, 0)
	f, _ := ff.OpenFile("f", true)
	write(t, f, "x")
	_ = f.Sync()
	write(t, f, "y")
	if got := ff.Ops(); got != 3 {
		t.Fatalf("Ops = %d, want 3", got)
	}
	if ff.Triggered() {
		t.Fatal("fault with FailAt=0 must never trigger")
	}
}
