package walfs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Mem is an in-memory FS that models crash durability: each file tracks
// how much of its data has been Synced, and Crash simulates power loss
// by discarding everything after the synced prefix. Directory
// operations (Rename, Remove) are treated as immediately durable — the
// disk backend fsyncs the directory to earn the same guarantee.
//
// Mem is safe for concurrent use.
type Mem struct {
	mu    sync.Mutex
	files map[string]*memData
}

type memData struct {
	data   []byte
	synced int // bytes guaranteed to survive Crash
}

// NewMem returns an empty in-memory FS.
func NewMem() *Mem {
	return &Mem{files: make(map[string]*memData)}
}

func (m *Mem) OpenFile(name string, create bool) (File, error) {
	if !validName(name) {
		return nil, fmt.Errorf("walfs: invalid name %q", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.files[name]
	if d == nil {
		if !create {
			return nil, notExist
		}
		d = &memData{}
		m.files[name] = d
	}
	return &memFile{m: m, d: d}, nil
}

func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return notExist
	}
	delete(m.files, name)
	return nil
}

func (m *Mem) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.files[oldname]
	if !ok {
		return notExist
	}
	delete(m.files, oldname)
	m.files[newname] = d
	return nil
}

func (m *Mem) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Crash simulates power loss: every file loses its unsynced suffix.
// Open files remain usable (they model file descriptors in the process
// that died; tests normally reopen through a fresh Open of the log).
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.files {
		d.data = d.data[:d.synced]
	}
}

// CrashKeepUnsynced simulates the other legal outcome of power loss:
// unsynced bytes happened to reach the platter before the lights went
// out. Recovery must tolerate both worlds (and every prefix in
// between, which Fault's torn writes exercise).
func (m *Mem) CrashKeepUnsynced() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.files {
		d.synced = len(d.data)
	}
}

type memFile struct {
	m *Mem
	d *memData
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if off < 0 || off > int64(len(f.d.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	f.d.data = append(f.d.data, p...)
	return len(p), nil
}

func (f *memFile) Truncate(size int64) error {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if size < int64(len(f.d.data)) {
		f.d.data = f.d.data[:size]
		if f.d.synced > int(size) {
			f.d.synced = int(size)
		}
	}
	return nil
}

func (f *memFile) Sync() error {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	f.d.synced = len(f.d.data)
	return nil
}

func (f *memFile) Size() (int64, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	return int64(len(f.d.data)), nil
}

func (f *memFile) Close() error { return nil }
