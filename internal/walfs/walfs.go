// Package walfs is the storage seam under the write-ahead log: a small
// VFS interface with a disk backend for daemons, an in-memory backend
// for tests, and a fault-injecting wrapper that fails (and optionally
// tears) the Nth I/O so crash-point recovery is testable
// deterministically.
//
// The interface is deliberately narrow — append-only files, whole-file
// reads, rename, remove, list — because that is all a segmented WAL
// needs. Nothing here knows about record framing; internal/wal layers
// that on top.
package walfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is one log file. Writes are append-only: every Write extends the
// file at its current end. Data is durable only after Sync returns (a
// crash may drop or tear anything unsynced — the Mem backend models
// exactly that).
type File interface {
	io.ReaderAt
	io.Closer
	// Write appends p at the end of the file.
	Write(p []byte) (int, error)
	// Truncate discards everything at or beyond size.
	Truncate(size int64) error
	// Sync makes all appended data durable.
	Sync() error
	// Size reports the current file length.
	Size() (int64, error)
}

// FS is the directory holding one log: a flat namespace of files.
type FS interface {
	// OpenFile opens name for reading and appending, creating it if
	// create is set; opening a missing file without create fails with
	// an error satisfying errors.Is(err, fs.ErrNotExist).
	OpenFile(name string, create bool) (File, error)
	// Remove deletes name.
	Remove(name string) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// List returns every file name in the directory, sorted.
	List() ([]string, error)
}

// diskFS backs FS with a real directory. Rename and Remove are followed
// by a directory fsync so the namespace change is durable too — without
// it a crash can resurrect a pruned segment or lose a freshly installed
// snapshot on some filesystems.
type diskFS struct{ dir string }

// Disk returns a disk-backed FS rooted at dir, creating it if needed.
func Disk(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &diskFS{dir: dir}, nil
}

func (d *diskFS) path(name string) string { return filepath.Join(d.dir, name) }

func (d *diskFS) OpenFile(name string, create bool) (File, error) {
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE
	}
	f, err := os.OpenFile(d.path(name), flags, 0o644)
	if err != nil {
		return nil, err
	}
	off, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	return &diskFile{f: f, end: off}, nil
}

func (d *diskFS) Remove(name string) error {
	if err := os.Remove(d.path(name)); err != nil {
		return err
	}
	return d.syncDir()
}

func (d *diskFS) Rename(oldname, newname string) error {
	if err := os.Rename(d.path(oldname), d.path(newname)); err != nil {
		return err
	}
	return d.syncDir()
}

func (d *diskFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d *diskFS) syncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// diskFile tracks the append offset itself instead of using O_APPEND so
// Truncate (used to drop a torn tail during recovery) composes with
// later appends.
type diskFile struct {
	f   *os.File
	end int64
}

func (f *diskFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }

func (f *diskFile) Write(p []byte) (int, error) {
	n, err := f.f.WriteAt(p, f.end)
	f.end += int64(n)
	return n, err
}

func (f *diskFile) Truncate(size int64) error {
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	if size < f.end {
		f.end = size
	}
	return nil
}

func (f *diskFile) Sync() error          { return f.f.Sync() }
func (f *diskFile) Size() (int64, error) { return f.end, nil }
func (f *diskFile) Close() error         { return f.f.Close() }

// notExist adapts a missing-file condition to fs.ErrNotExist for
// backends that don't come by it naturally.
var notExist = &fs.PathError{Op: "open", Err: fs.ErrNotExist}

// cleanName rejects path separators so every backend presents the same
// flat namespace the disk backend has.
func validName(name string) bool {
	return name != "" && !strings.ContainsAny(name, "/\\")
}
