package experiment

import (
	"fmt"

	"gridmon/internal/broker"
	"gridmon/internal/gridgen"
	"gridmon/internal/message"
	"gridmon/internal/metrics"
	"gridmon/internal/rgma"
	"gridmon/internal/sim"
	"gridmon/internal/simbroker"
	"gridmon/internal/simnet"
	"gridmon/internal/wire"
)

// DecompResults carries the fig. 15 phase measurements for both systems.
type DecompResults struct {
	Narada metrics.Decomposition
	RGMA   metrics.Decomposition
}

// Fig15 reproduces the RTT decomposition: RTT = PRT + PT + SRT, measured
// for NaradaBrokering and R-GMA at 400 connections. The defining result
// is that R-GMA's publishing and subscribing response times are short but
// its middleware process time is seconds long, while all three Narada
// phases are milliseconds.
func Fig15(scale Scale) (Table, DecompResults) {
	var res DecompResults
	res.Narada = naradaDecomposition(scale)
	res.RGMA = rgmaDecomposition(scale)

	t := Table{
		Title:  "Fig. 15 — RTT decomposition: cumulative time at each phase boundary (ms)",
		Header: []string{"system", "before_sending", "after_sending", "before_receiving", "after_receiving"},
		Notes: []string{
			"PRT = before_sending..after_sending, PT = after_sending..before_receiving, SRT = before_receiving..after_receiving",
		},
	}
	for _, row := range []struct {
		name string
		d    *metrics.Decomposition
	}{{"RGMA", &res.RGMA}, {"Narada", &res.Narada}} {
		tl := row.d.Timeline()
		t.Rows = append(t.Rows, []string{row.name, f2(tl[0]), f2(tl[1]), f2(tl[2]), f2(tl[3])})
	}
	return t, res
}

// naradaDecomposition runs 400 TCP generators with per-message publish
// acknowledgement tracking.
func naradaDecomposition(scale Scale) metrics.Decomposition {
	k := sim.New(901)
	net := simnet.New(k)
	host := simbroker.NewHost(net, net.AddNode("broker", simnet.HydraNode()), broker.DefaultConfig("broker"), simbroker.DefaultCosts())
	clientNode := net.AddNode("client1", simnet.HydraNode())

	sentAt := make(map[string]sim.Time)
	ackAt := make(map[string]sim.Time)
	var decomp metrics.Decomposition
	costs := simbroker.DefaultCosts()

	mon, err := gridgen.StartMonitor(k, gridgen.MonitorConfig{
		Host: host, Node: clientNode, Transport: simbroker.TCP(), Topics: []string{"power"},
	})
	if err != nil {
		panic(err)
	}
	mon.OnMessage = func(d wire.Deliver, at sim.Time) {
		sent, okS := sentAt[d.Msg.ID]
		ack, okA := ackAt[d.Msg.ID]
		if !okS || !okA {
			return
		}
		// The client's deserialization/dispatch cost approximates the
		// subscribing response time; the remainder after PRT is
		// middleware process time.
		srt := float64(costs.DeliverRecvCost(d.Msg, simbroker.TCP())) / float64(sim.Millisecond)
		prt := float64(ack-sent) / float64(sim.Millisecond)
		rtt := float64(at-sent) / float64(sim.Millisecond)
		pt := rtt - prt - srt
		if pt < 0 {
			pt = 0
		}
		decomp.AddPhases(prt, pt, srt)
		delete(sentAt, d.Msg.ID)
		delete(ackAt, d.Msg.ID)
	}

	const gens = 400
	for g := 0; g < gens; g++ {
		g := g
		k.At(sim.Time(g)*500*sim.Millisecond, func() {
			client, err := host.Connect(clientNode, simbroker.TCP(), fmt.Sprintf("gen-%d", g))
			if err != nil {
				return
			}
			pending := make(map[int64]string)
			client.OnPubAck = func(seq int64) {
				if id, ok := pending[seq]; ok {
					ackAt[id] = k.Now()
					delete(pending, seq)
				}
			}
			warm := 10*sim.Second + sim.Time(k.Rand().Int63n(int64(10*sim.Second)))
			count := 0
			var tick *sim.Ticker
			tick = k.Every(k.Now()+warm, 10*sim.Second, func() {
				if count >= scale.PublishCount {
					tick.Stop()
					return
				}
				count++
				m := gridgen.MonitoringMessage(g, int64(count))
				m.Dest = message.Topic("power")
				seq := client.Publish(m)
				sentAt[m.ID] = sim.Time(m.Timestamp)
				pending[seq] = m.ID
			})
		})
	}
	k.RunUntil(sim.Time(gens)*500*sim.Millisecond + 20*sim.Second + sim.Time(scale.PublishCount+2)*10*sim.Second)
	return decomp
}

// rgmaDecomposition runs 400 producers on a single R-GMA server with
// insert-acknowledgement and stream-arrival tracking.
func rgmaDecomposition(scale Scale) metrics.Decomposition {
	k := sim.New(902)
	net := simnet.New(k)
	server := net.AddNode("server", simnet.HydraNode())
	clientNode := net.AddNode("client1", simnet.HydraNode())
	dep := rgma.NewDeployment(net, server, rgma.DefaultCosts())
	dep.CreateTable(rgma.MonitoringTable())
	psvc := dep.AddProducerService(server)
	csvc := dep.AddConsumerService(server)

	type key struct {
		gen int64
		seq int64
	}
	sentAt := make(map[key]sim.Time)
	ackAt := make(map[key]sim.Time)
	var decomp metrics.Decomposition

	cons, err := dep.CreateConsumer(clientNode, csvc, "SELECT * FROM generator", rgma.ContinuousQuery, rgma.PrimaryKind)
	if err != nil {
		panic(err)
	}
	sub := rgma.StartSubscriber(cons)
	sub.OnTuple = func(t rgma.StreamedTuple, at sim.Time) {
		g, _ := t.Row[0].Int, error(nil)
		s := t.Row[1].Int
		kk := key{gen: g, seq: s}
		sent, okS := sentAt[kk]
		ack, okA := ackAt[kk]
		if !okS || !okA {
			return
		}
		prt := float64(ack-sent) / float64(sim.Millisecond)
		pt := float64(t.StreamedAt-ack) / float64(sim.Millisecond)
		if pt < 0 {
			pt = 0
		}
		srt := float64(at-t.StreamedAt) / float64(sim.Millisecond)
		decomp.AddPhases(prt, pt, srt)
		delete(sentAt, kk)
		delete(ackAt, kk)
	}

	const gens = 400
	for g := 0; g < gens; g++ {
		g := g
		k.At(sim.Time(g)*sim.Second, func() {
			pp, err := dep.CreatePrimaryProducer(clientNode, psvc, "generator", 30*sim.Second, sim.Minute)
			if err != nil {
				return
			}
			seqToKey := make(map[int64]key)
			pp.OnInsertAck = func(seq int64, at sim.Time) {
				if kk, ok := seqToKey[seq]; ok {
					ackAt[kk] = at
					delete(seqToKey, seq)
				}
			}
			warm := 10*sim.Second + sim.Time(k.Rand().Int63n(int64(10*sim.Second)))
			count := 0
			var tick *sim.Ticker
			tick = k.Every(k.Now()+warm, 10*sim.Second, func() {
				if count >= scale.PublishCount {
					tick.Stop()
					return
				}
				count++
				kk := key{gen: int64(g), seq: int64(count)}
				sentAt[kk] = k.Now()
				seq := pp.Insert(rgma.MonitoringRow(g, int64(count)))
				seqToKey[seq] = kk
			})
		})
	}
	k.RunUntil(sim.Time(gens)*sim.Second + 20*sim.Second + sim.Time(scale.PublishCount+2)*10*sim.Second + 2*sim.Minute)
	return decomp
}
