package experiment

import (
	"strings"
	"testing"

	"gridmon/internal/simbroker"
)

func tcpT() simbroker.Transport { return simbroker.TCP() }

// The experiment tests assert the paper's qualitative findings — who
// wins, by roughly what factor, where the cliffs fall — at Quick scale.
// Absolute numbers are asserted only as broad bands.

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	out := tab.Render()
	for _, want := range []string{"T\n", "a", "bb", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "x,y"}},
	}
	csvOut := tab.CSV()
	if !strings.Contains(csvOut, "a,b\n") || !strings.Contains(csvOut, `"x,y"`) {
		t.Fatalf("CSV = %q", csvOut)
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	cfg := NaradaConfig{Label: "d", Connections: 300, Transport: tcpT(), Scale: Quick(), Seed: 77}
	a, b := RunNarada(cfg), RunNarada(cfg)
	if a.RTT.Mean() != b.RTT.Mean() || a.RTT.Stddev() != b.RTT.Stddev() || a.Loss != b.Loss {
		t.Fatalf("Narada runs differ: %v vs %v", a.RTT.Mean(), b.RTT.Mean())
	}
	rcfg := RGMAConfig{Label: "d", Connections: 80, Scale: Quick(), Seed: 78}
	ra, rb := RunRGMA(rcfg), RunRGMA(rcfg)
	if ra.RTT.Mean() != rb.RTT.Mean() || ra.Loss != rb.Loss {
		t.Fatalf("RGMA runs differ: %v vs %v", ra.RTT.Mean(), rb.RTT.Mean())
	}
}

func TestStaticTables(t *testing.T) {
	t1, t2 := Table1(), Table2()
	if len(t1.Rows) < 5 || len(t2.Rows) != 6 {
		t.Fatalf("static tables wrong: %d, %d", len(t1.Rows), len(t2.Rows))
	}
	if !strings.Contains(t2.Render(), "Triple") {
		t.Fatal("table II missing Triple test")
	}
}

func TestScaleSpawnInterval(t *testing.T) {
	if Full().spawnInterval(simMillis(500)) != simMillis(500) {
		t.Fatal("full scale must keep the paper's spawn interval")
	}
	q := Quick().spawnInterval(simMillis(500))
	if q >= simMillis(500) || q <= 0 {
		t.Fatalf("quick spawn interval = %v", q)
	}
	if (Scale{PublishCount: 1}).spawnInterval(simMillis(500)) != simMillis(500) {
		t.Fatal("zero SpawnFactor should default to 1.0")
	}
}

func TestFig3And4Shapes(t *testing.T) {
	_, _, results := Fig3And4(Quick())
	byLabel := map[string]NaradaResult{}
	for _, r := range results {
		byLabel[r.Label] = r
	}
	tcp, nio, udp, udpCli := byLabel["TCP"], byLabel["NIO"], byLabel["UDP"], byLabel["UDP CLI"]
	triple, eighty := byLabel["Triple"], byLabel["80"]

	// Paper finding 1: TCP is fastest among the 800-connection tests;
	// UDP is paradoxically slow.
	if !(tcp.RTT.Mean() < nio.RTT.Mean() && nio.RTT.Mean() < udp.RTT.Mean()) {
		t.Fatalf("transport ordering: tcp=%.2f nio=%.2f udp=%.2f", tcp.RTT.Mean(), nio.RTT.Mean(), udp.RTT.Mean())
	}
	// Triple payload slows TCP down ("Narada is good at small sized
	// messages").
	if triple.RTT.Mean() < 1.5*tcp.RTT.Mean() {
		t.Fatalf("triple %.2f not clearly above tcp %.2f", triple.RTT.Mean(), tcp.RTT.Mean())
	}
	// Fewer connections at higher rate is at least as fast as 800.
	if eighty.RTT.Mean() > tcp.RTT.Mean() {
		t.Fatalf("80-connection test %.2f above TCP %.2f", eighty.RTT.Mean(), tcp.RTT.Mean())
	}
	// Loss: only the UDP tests lose messages, fractions of a percent.
	for _, r := range []NaradaResult{tcp, nio, triple, eighty} {
		if r.Loss.Rate() != 0 {
			t.Fatalf("%s lost messages: %v", r.Label, r.Loss)
		}
	}
	for _, r := range []NaradaResult{udp, udpCli} {
		lp := r.Loss.RatePercent()
		if lp <= 0 || lp > 0.5 {
			t.Fatalf("%s loss%% = %.3f, want (0, 0.5]", r.Label, lp)
		}
	}
	// UDP CLI loses less than UDP (paper: 0.03% vs 0.06%).
	if udpCli.Loss.Rate() >= udp.Loss.Rate() {
		t.Fatalf("UDP CLI loss %.4f not below UDP %.4f", udpCli.Loss.RatePercent(), udp.Loss.RatePercent())
	}
	// Percentile tails: UDP's retransmissions push its high percentiles
	// far above TCP's.
	if udp.RTT.Percentile(99) < 5*tcp.RTT.Percentile(99) {
		t.Fatalf("UDP P99 %.1f not >> TCP P99 %.1f", udp.RTT.Percentile(99), tcp.RTT.Percentile(99))
	}
}

func TestNaradaScaleShapes(t *testing.T) {
	r := RunNaradaScale(Quick())
	// RTT grows smoothly with connections (fig. 7).
	for i := 1; i < len(r.Single); i++ {
		if r.Single[i].RTT.Mean() <= r.Single[i-1].RTT.Mean() {
			t.Fatalf("single RTT not increasing: %v -> %v at %d conns",
				r.Single[i-1].RTT.Mean(), r.Single[i].RTT.Mean(), r.Single[i].Connections)
		}
	}
	// CPU idle falls and memory grows with connections (fig. 6).
	for i := 1; i < len(r.Single); i++ {
		if r.Single[i].CPUIdlePct >= r.Single[i-1].CPUIdlePct {
			t.Fatal("single CPU idle not decreasing")
		}
		if r.Single[i].MemMB <= r.Single[i-1].MemMB {
			t.Fatal("single memory not increasing")
		}
	}
	// Paper: 99.8% of messages arrived within 100 ms.
	for _, s := range r.Single {
		if p99 := s.RTT.Percentile(99); p99 > 100 {
			t.Fatalf("P99 at %d conns = %.1f ms, paper says within 100 ms", s.Connections, p99)
		}
	}
	// The DBN is slower than the single broker at equal load (fig. 7's
	// "disappointing" RTT2 > RTT) but accepts 4000 connections.
	single2000 := r.Single[2]
	var dbn2000, dbn4000 NaradaResult
	for _, d := range r.DBN {
		if d.Connections == 2000 {
			dbn2000 = d
		}
		if d.Connections == 4000 {
			dbn4000 = d
		}
	}
	if dbn2000.RTT.Mean() <= single2000.RTT.Mean() {
		t.Fatalf("DBN RTT %.2f not above single %.2f at 2000 conns", dbn2000.RTT.Mean(), single2000.RTT.Mean())
	}
	if dbn4000.Refused != 0 {
		t.Fatalf("DBN refused %d connections at 4000", dbn4000.Refused)
	}
	if dbn4000.Loss.Rate() != 0 {
		t.Fatalf("DBN lost messages: %+v", dbn4000.Loss)
	}
}

func TestRGMAScaleShapes(t *testing.T) {
	r := RunRGMAScale(Quick())
	// R-GMA RTT is orders of magnitude above Narada's (seconds, not
	// milliseconds) and grows with connections.
	for i, s := range r.Single {
		if s.RTT.Mean() < 200 {
			t.Fatalf("single RTT at %d conns = %.0f ms, implausibly fast for R-GMA", s.Connections, s.RTT.Mean())
		}
		if i > 0 && s.RTT.Mean() <= r.Single[i-1].RTT.Mean() {
			t.Fatal("single R-GMA RTT not increasing")
		}
		if s.Loss.Rate() != 0 {
			t.Fatalf("warmed-up R-GMA run lost data: %+v", s.Loss)
		}
	}
	// Distributed beats single at the same load and scales to 1000.
	var single400, dist400, dist1000 RGMAResult
	for _, s := range r.Single {
		if s.Connections == 400 {
			single400 = s
		}
	}
	for _, d := range r.Distributed {
		if d.Connections == 400 {
			dist400 = d
		}
		if d.Connections == 1000 {
			dist1000 = d
		}
	}
	if dist400.RTT.Mean() >= single400.RTT.Mean() {
		t.Fatalf("distributed %.0f ms not below single %.0f ms at 400 conns", dist400.RTT.Mean(), single400.RTT.Mean())
	}
	if dist1000.Refused != 0 {
		t.Fatalf("distributed refused %d at 1000 conns", dist1000.Refused)
	}
	// CPU: distributed idles more per node than the single server
	// (fig. 13); memory per node is lower.
	if dist400.CPUIdlePct <= single400.CPUIdlePct {
		t.Fatal("distributed CPU idle not above single")
	}
	if dist400.MemMB >= single400.MemMB {
		t.Fatal("distributed per-node memory not below single")
	}
}

func TestFig10SecondaryDelays(t *testing.T) {
	_, results := Fig10(Quick())
	for _, r := range results {
		// All percentiles sit near the deliberate 30 s delay, up to the
		// paper's ~35 s.
		p95 := r.RTT.Percentile(95) / 1000
		p100 := r.RTT.Percentile(100) / 1000
		if p95 < 30 || p100 > 45 {
			t.Fatalf("%d conns: secondary percentiles [%.1f, %.1f] s outside 30-45 s band", r.Connections, p95, p100)
		}
		if r.Loss.Rate() != 0 {
			t.Fatalf("secondary chain lost data: %+v", r.Loss)
		}
	}
}

func TestFig15Decomposition(t *testing.T) {
	_, res := Fig15(Quick())
	// R-GMA: publishing and subscribing response times short, process
	// time very long.
	if res.RGMA.PT.Mean() < 10*res.RGMA.PRT.Mean() || res.RGMA.PT.Mean() < 10*res.RGMA.SRT.Mean() {
		t.Fatalf("R-GMA PT %.0f not dominating PRT %.1f / SRT %.1f",
			res.RGMA.PT.Mean(), res.RGMA.PRT.Mean(), res.RGMA.SRT.Mean())
	}
	if res.RGMA.PT.Mean() < 300 {
		t.Fatalf("R-GMA PT %.0f ms too small", res.RGMA.PT.Mean())
	}
	// Narada: all three phases are very short (milliseconds).
	if total := res.Narada.MeanRTT(); total > 50 {
		t.Fatalf("Narada total %.1f ms, want milliseconds", total)
	}
	// R-GMA's middleware time exceeds Narada's whole round trip by
	// orders of magnitude.
	if res.RGMA.PT.Mean() < 20*res.Narada.MeanRTT() {
		t.Fatal("R-GMA PT does not dwarf Narada RTT")
	}
}

func TestWarmupLossShape(t *testing.T) {
	_, results := WarmupLoss(Quick())
	with, without := results[0], results[1]
	if with.Loss.Rate() != 0 {
		t.Fatalf("warm-up run lost data: %+v", with.Loss)
	}
	if without.Loss.Rate() == 0 {
		t.Fatal("no-warm-up run lost nothing")
	}
	if without.Loss.RatePercent() > 5 {
		t.Fatalf("no-warm-up loss %.2f%% implausibly high", without.Loss.RatePercent())
	}
}

func TestOOMCliffShapes(t *testing.T) {
	_, narada, rgmaRes := OOMCliffs(Quick())
	if narada.Refused == 0 {
		t.Fatal("single Narada broker accepted 4000 connections")
	}
	if accepted := 4000 - narada.Refused; accepted < 3000 || accepted > 3950 {
		t.Fatalf("Narada accepted %d, want a cliff between 3000 and 4000", accepted)
	}
	if rgmaRes.Refused == 0 {
		t.Fatal("single R-GMA server accepted 900 producers")
	}
	if accepted := 900 - rgmaRes.Refused; accepted < 700 || accepted > 850 {
		t.Fatalf("R-GMA accepted %d, want a cliff near 800", accepted)
	}
}

func TestAblationRoutingShape(t *testing.T) {
	_, results := AblationRouting(Quick())
	broadcast, tree := results[0], results[1]
	// Tree routing fixes the broadcast deficiency: lower RTT and more
	// idle CPU at the same load.
	if tree.RTT.Mean() >= broadcast.RTT.Mean() {
		t.Fatalf("tree RTT %.2f not below broadcast %.2f", tree.RTT.Mean(), broadcast.RTT.Mean())
	}
	if tree.CPUIdlePct <= broadcast.CPUIdlePct {
		t.Fatalf("tree idle %.1f not above broadcast %.1f", tree.CPUIdlePct, broadcast.CPUIdlePct)
	}
	if tree.Loss.Rate() != 0 || broadcast.Loss.Rate() != 0 {
		t.Fatal("routing ablation lost messages")
	}
}

func TestAblationAggregationShape(t *testing.T) {
	_, results := AblationAggregation(Quick())
	single, agg := results[0], results[1]
	// Message quantity dominates (RMM): five-fold aggregation leaves the
	// broker more idle even though the data volume is the same.
	if agg.CPUIdlePct <= single.CPUIdlePct {
		t.Fatalf("aggregated idle %.1f not above per-sample idle %.1f", agg.CPUIdlePct, single.CPUIdlePct)
	}
	if agg.Loss.Sent >= single.Loss.Sent {
		t.Fatal("aggregation did not reduce message count")
	}
}

func TestAblationAckModeRuns(t *testing.T) {
	_, results := AblationAckMode(Quick())
	for _, r := range results {
		if r.Loss.Rate() != 0 {
			t.Fatalf("%s lost messages over TCP", r.Label)
		}
		if r.RTT.Count() == 0 {
			t.Fatalf("%s produced no samples", r.Label)
		}
	}
}

func TestAblationPollIntervalShape(t *testing.T) {
	_, results := AblationPollInterval(Quick())
	// Longer poll intervals add latency: 10 ms < 100 ms < 1000 ms.
	if !(results[0].RTT.Mean() < results[1].RTT.Mean() && results[1].RTT.Mean() < results[2].RTT.Mean()) {
		t.Fatalf("poll ordering violated: %.0f, %.0f, %.0f",
			results[0].RTT.Mean(), results[1].RTT.Mean(), results[2].RTT.Mean())
	}
}

func TestTable3Derivation(t *testing.T) {
	narada := RunNarada(NaradaConfig{Label: "n", Connections: 200, Transport: tcpT(), Scale: Quick(), Seed: 1})
	dbn := RunNarada(NaradaConfig{Label: "d", Connections: 200, Transport: tcpT(), Scale: Quick(), DBN: true, Seed: 2})
	rs := RunRGMA(RGMAConfig{Label: "r", Connections: 100, Scale: Quick(), Seed: 3})
	rd := RunRGMA(RGMAConfig{Label: "rd", Connections: 100, Distributed: true, Scale: Quick(), Seed: 4})
	tab := Table3(narada, dbn, rs, rd)
	out := tab.Render()
	// Narada: very good real-time; R-GMA: average real-time but very
	// good scalability (TABLE III).
	if !strings.Contains(out, "Narada") || !strings.Contains(out, "R-GMA") {
		t.Fatalf("table 3 missing rows:\n%s", out)
	}
	if tab.Rows[1][1] != "Very good" {
		t.Fatalf("Narada real-time rating = %q", tab.Rows[1][1])
	}
	if tab.Rows[0][1] != "Average" {
		t.Fatalf("R-GMA real-time rating = %q", tab.Rows[0][1])
	}
	if tab.Rows[0][3] != "Very good" {
		t.Fatalf("R-GMA scalability rating = %q", tab.Rows[0][3])
	}
}
