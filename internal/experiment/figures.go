package experiment

import (
	"fmt"

	"gridmon/internal/brokernet"
	"gridmon/internal/message"
	"gridmon/internal/metrics"
	"gridmon/internal/simbroker"
)

// Table1 reproduces TABLE I: hardware specifications and software
// versions — here, the simulation model standing in for each component.
func Table1() Table {
	return Table{
		Title:  "TABLE I — testbed model (paper hardware -> simulation substitute)",
		Header: []string{"component", "paper", "this reproduction"},
		Rows: [][]string{
			{"CPU", "Pentium III 866 MHz", "serial CPU model, calibrated service costs"},
			{"memory", "2 GB RAM, 1 GB JVM heap", "1 GiB heap + 960 MiB native thread budget"},
			{"network", "100 Mbps switched LAN, 7-8 MB/s", "100 Mbps per-NIC serialization + 100-150 us latency"},
			{"OS/JVM", "Sci Linux 2.4.21, Hotspot 1.4.2", "discrete-event kernel, GC-pressure cost model"},
			{"middleware", "NaradaBrokering v1.1.3", "internal/broker + internal/brokernet"},
			{"middleware", "R-GMA gLite 3.0, Tomcat 5.0.28", "internal/rgma + internal/sqlmini"},
		},
	}
}

// Table2 reproduces TABLE II: the comparison test settings.
func Table2() Table {
	return Table{
		Title:  "TABLE II — comparison test settings",
		Header: []string{"test", "transport", "ack mode", "comment"},
		Rows: [][]string{
			{"Test1 (UDP)", "UDP", "AUTO", ""},
			{"Test2 (UDP CLI)", "UDP", "CLIENT", ""},
			{"Test3 (NIO)", "NIO", "AUTO", ""},
			{"Test4 (TCP)", "TCP", "AUTO", ""},
			{"Test5 (Triple)", "TCP", "AUTO", "triple payload, 1/3 rate"},
			{"Test6 (80)", "TCP", "AUTO", "80 connections, 10x rate"},
		},
	}
}

// comparisonConfigs builds the six runs of TABLE II at 800 generators.
func comparisonConfigs(scale Scale) []NaradaConfig {
	return []NaradaConfig{
		{Label: "UDP", Connections: 800, Transport: simbroker.UDP(), Scale: scale, Seed: 11},
		{Label: "UDP CLI", Connections: 800, Transport: simbroker.UDPClientAck(), AckMode: message.ClientAck, Scale: scale, Seed: 12},
		{Label: "NIO", Connections: 800, Transport: simbroker.NIO(), Scale: scale, Seed: 13},
		{Label: "TCP", Connections: 800, Transport: simbroker.TCP(), Scale: scale, Seed: 14},
		{Label: "Triple", Connections: 800, Transport: simbroker.TCP(), PayloadTriple: true, Scale: scale, Seed: 15},
		{Label: "80", Connections: 80, Transport: simbroker.TCP(), RateFactor: 10, Scale: scale, Seed: 16},
	}
}

// Fig3And4 reproduces fig. 3 (RTT + STDDEV per transport) and fig. 4
// (percentile of RTT), including the §III.E.1 loss rates.
func Fig3And4(scale Scale) (fig3, fig4 Table, results []NaradaResult) {
	for _, cfg := range comparisonConfigs(scale) {
		results = append(results, RunNarada(cfg))
	}
	fig3 = Table{
		Title:  "Fig. 3 — Narada comparison tests: RTT and standard deviation (ms)",
		Header: []string{"test", "RTT", "STDDEV", "loss%", "sent", "received"},
	}
	for _, r := range results {
		fig3.Rows = append(fig3.Rows, []string{
			r.Label, f2(r.RTT.Mean()), f2(r.RTT.Stddev()), f3(r.Loss.RatePercent()),
			fmt.Sprintf("%d", r.Loss.Sent), fmt.Sprintf("%d", r.Loss.Received),
		})
	}
	fig4 = Table{
		Title:  "Fig. 4 — Narada comparison tests: percentile of RTT (ms)",
		Header: []string{"test", "95%", "96%", "97%", "98%", "99%", "100%"},
	}
	for _, r := range results {
		fig4.Rows = append(fig4.Rows, pctRow(r.Label, r.RTT))
	}
	return fig3, fig4, results
}

// NaradaScaleResults runs the fig. 6/7/8/9 sweep: single broker at
// 500-3000 connections and the 3-broker DBN at 2000-4000.
type NaradaScaleResults struct {
	Single []NaradaResult
	DBN    []NaradaResult
}

// RunNaradaScale executes the scalability sweep once; fig. 6, 7, 8 and 9
// are different views of the same runs.
func RunNaradaScale(scale Scale) NaradaScaleResults {
	var out NaradaScaleResults
	for _, n := range []int{500, 1000, 2000, 3000} {
		out.Single = append(out.Single, RunNarada(NaradaConfig{
			Label: "single", Connections: n, Transport: simbroker.TCP(), Scale: scale, Seed: int64(100 + n),
		}))
	}
	for _, n := range []int{2000, 3000, 4000} {
		out.DBN = append(out.DBN, RunNarada(NaradaConfig{
			Label: "DBN", Connections: n, Transport: simbroker.TCP(), Scale: scale,
			DBN: true, Routing: brokernet.RoutingBroadcast, Seed: int64(200 + n),
		}))
	}
	return out
}

// Fig6 renders CPU idle and memory consumption vs connections.
func Fig6(r NaradaScaleResults) Table {
	t := Table{
		Title:  "Fig. 6 — Narada tests: CPU idle (%) and memory consumption (MB)",
		Header: []string{"connections", "CPU idle (single)", "MEM MB (single)", "CPU idle (DBN)", "MEM MB (DBN)"},
		Notes:  []string{"DBN values are per-broker means across the 3-broker chain"},
	}
	byConn := map[int][]string{}
	order := []int{}
	for _, s := range r.Single {
		byConn[s.Connections] = []string{d0(s.Connections), f1(s.CPUIdlePct), f1(s.MemMB), "-", "-"}
		order = append(order, s.Connections)
	}
	for _, d := range r.DBN {
		row, ok := byConn[d.Connections]
		if !ok {
			row = []string{d0(d.Connections), "-", "-", "-", "-"}
			order = append(order, d.Connections)
		}
		row[3] = f1(d.CPUIdlePct)
		row[4] = f1(d.MemMB)
		byConn[d.Connections] = row
	}
	for _, c := range order {
		t.Rows = append(t.Rows, byConn[c])
	}
	return t
}

// Fig7 renders RTT and STDDEV vs connections, single vs DBN.
func Fig7(r NaradaScaleResults) Table {
	t := Table{
		Title:  "Fig. 7 — Narada tests: round-trip time and standard deviation (ms)",
		Header: []string{"connections", "RTT (single)", "STDDEV (single)", "RTT2 (DBN)", "STDDEV2 (DBN)"},
	}
	byConn := map[int][]string{}
	order := []int{}
	for _, s := range r.Single {
		byConn[s.Connections] = []string{d0(s.Connections), f2(s.RTT.Mean()), f2(s.RTT.Stddev()), "-", "-"}
		order = append(order, s.Connections)
	}
	for _, d := range r.DBN {
		row, ok := byConn[d.Connections]
		if !ok {
			row = []string{d0(d.Connections), "-", "-", "-", "-"}
			order = append(order, d.Connections)
		}
		row[3] = f2(d.RTT.Mean())
		row[4] = f2(d.RTT.Stddev())
		byConn[d.Connections] = row
	}
	for _, c := range order {
		t.Rows = append(t.Rows, byConn[c])
	}
	return t
}

// Fig8 renders single-broker RTT percentiles.
func Fig8(r NaradaScaleResults) Table {
	t := Table{
		Title:  "Fig. 8 — Narada single server tests: percentile of RTT (ms)",
		Header: []string{"connections", "95%", "96%", "97%", "98%", "99%", "100%"},
	}
	for _, s := range r.Single {
		t.Rows = append(t.Rows, pctRow(d0(s.Connections), s.RTT))
	}
	return t
}

// Fig9 renders DBN RTT percentiles.
func Fig9(r NaradaScaleResults) Table {
	t := Table{
		Title:  "Fig. 9 — Narada DBN tests: percentile of RTT (ms)",
		Header: []string{"connections", "95%", "96%", "97%", "98%", "99%", "100%"},
	}
	for _, d := range r.DBN {
		t.Rows = append(t.Rows, pctRow(d0(d.Connections), d.RTT))
	}
	return t
}

// Fig10 reproduces the Primary + Secondary Producer tests: percentiles of
// RTT through the deliberate ~30 s secondary delay, in seconds.
func Fig10(scale Scale) (Table, []RGMAResult) {
	var results []RGMAResult
	for _, n := range []int{50, 100, 200} {
		results = append(results, RunRGMA(RGMAConfig{
			Label: "PP+SP", Connections: n, Secondary: true, Scale: scale, Seed: int64(300 + n),
		}))
	}
	t := Table{
		Title:  "Fig. 10 — R-GMA Primary and Secondary Producer tests: percentile of RTT (s)",
		Header: []string{"connections", "95%", "96%", "97%", "98%", "99%", "100%"},
	}
	for _, r := range results {
		row := []string{d0(r.Connections)}
		for _, p := range r.RTT.Percentiles(metrics.PaperPercentiles...) {
			row = append(row, f1(p/1000)) // ms -> s, the paper's fig 10 axis
		}
		t.Rows = append(t.Rows, row)
	}
	return t, results
}

// RGMAScaleResults is the fig. 11-14 sweep.
type RGMAScaleResults struct {
	Single      []RGMAResult
	Distributed []RGMAResult
}

// RunRGMAScale executes the R-GMA scalability sweep: single server at
// 100-600 connections, distributed deployment at 400-1000.
func RunRGMAScale(scale Scale) RGMAScaleResults {
	var out RGMAScaleResults
	for _, n := range []int{100, 200, 400, 600} {
		out.Single = append(out.Single, RunRGMA(RGMAConfig{
			Label: "single", Connections: n, Scale: scale, Seed: int64(400 + n),
		}))
	}
	for _, n := range []int{400, 600, 800, 1000} {
		out.Distributed = append(out.Distributed, RunRGMA(RGMAConfig{
			Label: "distributed", Connections: n, Distributed: true, Scale: scale, Seed: int64(500 + n),
		}))
	}
	return out
}

// Fig11 renders R-GMA RTT and STDDEV vs connections, single vs
// distributed.
func Fig11(r RGMAScaleResults) Table {
	t := Table{
		Title:  "Fig. 11 — R-GMA Primary Producer and Consumer tests: RTT and STDDEV (ms)",
		Header: []string{"connections", "RTT (single)", "STDDEV (single)", "RTT2 (dist)", "STDDEV2 (dist)"},
	}
	byConn := map[int][]string{}
	order := []int{}
	for _, s := range r.Single {
		byConn[s.Connections] = []string{d0(s.Connections), f1(s.RTT.Mean()), f1(s.RTT.Stddev()), "-", "-"}
		order = append(order, s.Connections)
	}
	for _, d := range r.Distributed {
		row, ok := byConn[d.Connections]
		if !ok {
			row = []string{d0(d.Connections), "-", "-", "-", "-"}
			order = append(order, d.Connections)
		}
		row[3] = f1(d.RTT.Mean())
		row[4] = f1(d.RTT.Stddev())
		byConn[d.Connections] = row
	}
	for _, c := range order {
		t.Rows = append(t.Rows, byConn[c])
	}
	return t
}

// Fig12 renders single-server R-GMA percentiles.
func Fig12(r RGMAScaleResults) Table {
	t := Table{
		Title:  "Fig. 12 — R-GMA single server tests: percentile of RTT (ms)",
		Header: []string{"connections", "95%", "96%", "97%", "98%", "99%", "100%"},
	}
	for _, s := range r.Single {
		t.Rows = append(t.Rows, pctRow(d0(s.Connections), s.RTT))
	}
	return t
}

// Fig13 renders R-GMA CPU idle and memory.
func Fig13(r RGMAScaleResults) Table {
	t := Table{
		Title:  "Fig. 13 — R-GMA Consumer tests: CPU idle (%) and memory consumption (MB)",
		Header: []string{"connections", "CPU idle (single)", "MEM MB (single)", "CPU idle (dist)", "MEM MB (dist)"},
		Notes:  []string{"distributed values are per-node means across the 4 service nodes"},
	}
	byConn := map[int][]string{}
	order := []int{}
	for _, s := range r.Single {
		byConn[s.Connections] = []string{d0(s.Connections), f1(s.CPUIdlePct), f1(s.MemMB), "-", "-"}
		order = append(order, s.Connections)
	}
	for _, d := range r.Distributed {
		row, ok := byConn[d.Connections]
		if !ok {
			row = []string{d0(d.Connections), "-", "-", "-", "-"}
			order = append(order, d.Connections)
		}
		row[3] = f1(d.CPUIdlePct)
		row[4] = f1(d.MemMB)
		byConn[d.Connections] = row
	}
	for _, c := range order {
		t.Rows = append(t.Rows, byConn[c])
	}
	return t
}

// Fig14 renders distributed R-GMA percentiles.
func Fig14(r RGMAScaleResults) Table {
	t := Table{
		Title:  "Fig. 14 — R-GMA distributed network tests: percentile of RTT (ms)",
		Header: []string{"connections", "95%", "96%", "97%", "98%", "99%", "100%"},
	}
	for _, d := range r.Distributed {
		t.Rows = append(t.Rows, pctRow(d0(d.Connections), d.RTT))
	}
	return t
}

// Table3 reproduces TABLE III, deriving the qualitative ratings from
// measured data: an order-of-magnitude RTT gap separates "very good"
// from "average" real-time performance, and the single-vs-distributed
// trend determines the scalability rating.
func Table3(narada NaradaResult, naradaDBN NaradaResult, rgmaSingle RGMAResult, rgmaDist RGMAResult) Table {
	rate := func(cond bool, yes, no string) string {
		if cond {
			return yes
		}
		return no
	}
	naradaRT := rate(narada.RTT.Mean() < 100, "Very good", "Average")
	rgmaRT := rate(rgmaSingle.RTT.Mean() < 100, "Very good", "Average")
	// Scalability: does the distributed deployment beat its own single
	// configuration?
	naradaScale := rate(naradaDBN.RTT.Mean() < narada.RTT.Mean(), "Very good", "Average")
	rgmaScale := rate(rgmaDist.RTT.Mean() < rgmaSingle.RTT.Mean(), "Very good", "Average")
	return Table{
		Title:  "TABLE III — R-GMA and NaradaBrokering comparison (derived from measurements)",
		Header: []string{"middleware", "real-time performance", "connections & throughput", "scalability"},
		Rows: [][]string{
			{"R-GMA", rgmaRT, "Average", rgmaScale},
			{"Narada", naradaRT, "Very good", naradaScale},
		},
		Notes: []string{
			fmt.Sprintf("Narada single RTT %.1f ms vs DBN %.1f ms; R-GMA single %.0f ms vs distributed %.0f ms",
				narada.RTT.Mean(), naradaDBN.RTT.Mean(), rgmaSingle.RTT.Mean(), rgmaDist.RTT.Mean()),
		},
	}
}

// WarmupLoss reproduces §III.F's warm-up experiment: 400 generators
// publishing with and without the 10-20 s warm-up wait.
func WarmupLoss(scale Scale) (Table, []RGMAResult) {
	with := RunRGMA(RGMAConfig{Label: "with warm-up", Connections: 400, Scale: scale, Seed: 601})
	without := RunRGMA(RGMAConfig{Label: "no warm-up", Connections: 400, NoWarmup: true, Scale: scale, Seed: 602})
	t := Table{
		Title:  "§III.F — R-GMA warm-up experiment: 400 generators",
		Header: []string{"variant", "sent", "received", "loss%"},
		Notes:  []string{"paper: 72000 sent, 71876 received, 0.17% loss without warm-up"},
	}
	for _, r := range []RGMAResult{with, without} {
		t.Rows = append(t.Rows, []string{r.Label, fmt.Sprintf("%d", r.Loss.Sent), fmt.Sprintf("%d", r.Loss.Received), f3(r.Loss.RatePercent())})
	}
	return t, []RGMAResult{with, without}
}

// OOMCliffs reproduces the out-of-memory limits: a single Narada broker
// refusing connections near 4000 and a single R-GMA server near 800.
func OOMCliffs(scale Scale) (Table, NaradaResult, RGMAResult) {
	narada := RunNarada(NaradaConfig{
		Label: "narada-4000", Connections: 4000, Transport: simbroker.TCP(), Scale: Scale{PublishCount: 3, Label: "oom"}, Seed: 701,
	})
	rgmaRes := RunRGMA(RGMAConfig{
		Label: "rgma-900", Connections: 900, Scale: Scale{PublishCount: 2, Label: "oom"}, Seed: 702,
	})
	t := Table{
		Title:  "OOM cliffs — connection admission limits (single servers)",
		Header: []string{"system", "attempted", "accepted", "refused"},
		Notes: []string{
			"paper: a single Narada broker cannot accept 4000 connections; one R-GMA server cannot accept 800",
		},
	}
	t.Rows = append(t.Rows, []string{"Narada single", "4000", d0(4000 - narada.Refused), d0(narada.Refused)})
	t.Rows = append(t.Rows, []string{"R-GMA single", "900", d0(900 - rgmaRes.Refused), d0(rgmaRes.Refused)})
	return t, narada, rgmaRes
}

// AblationRouting compares the v1.1.3 broadcast DBN against tree routing
// at the same load — the fix the paper anticipated from "the newest
// release".
func AblationRouting(scale Scale) (Table, []NaradaResult) {
	broadcast := RunNarada(NaradaConfig{
		Label: "broadcast", Connections: 2000, Transport: simbroker.TCP(), Scale: scale,
		DBN: true, Routing: brokernet.RoutingBroadcast, Seed: 801,
	})
	tree := RunNarada(NaradaConfig{
		Label: "tree", Connections: 2000, Transport: simbroker.TCP(), Scale: scale,
		DBN: true, Routing: brokernet.RoutingTree, Seed: 802,
	})
	t := Table{
		Title:  "Ablation — DBN routing mode at 2000 connections",
		Header: []string{"routing", "RTT ms", "STDDEV ms", "CPU idle %", "MEM MB"},
		Notes:  []string{"broadcast reproduces the paper's v1.1.3 deficiency (unnecessary data flow)"},
	}
	for _, r := range []NaradaResult{broadcast, tree} {
		t.Rows = append(t.Rows, []string{r.Label, f2(r.RTT.Mean()), f2(r.RTT.Stddev()), f1(r.CPUIdlePct), f1(r.MemMB)})
	}
	return t, []NaradaResult{broadcast, tree}
}

// AblationAckMode compares AUTO vs CLIENT acknowledge over TCP.
func AblationAckMode(scale Scale) (Table, []NaradaResult) {
	auto := RunNarada(NaradaConfig{Label: "AUTO", Connections: 800, Transport: simbroker.TCP(), Scale: scale, Seed: 811})
	client := RunNarada(NaradaConfig{Label: "CLIENT", Connections: 800, Transport: simbroker.TCP(), AckMode: message.ClientAck, Scale: scale, Seed: 812})
	t := Table{
		Title:  "Ablation — acknowledgement mode over TCP, 800 connections",
		Header: []string{"ack mode", "RTT ms", "STDDEV ms", "loss%"},
	}
	for _, r := range []NaradaResult{auto, client} {
		t.Rows = append(t.Rows, []string{r.Label, f2(r.RTT.Mean()), f2(r.RTT.Stddev()), f3(r.Loss.RatePercent())})
	}
	return t, []NaradaResult{auto, client}
}

// AblationAggregation tests the related-work (IBM RMM, §IV) claim that
// message quantity, not size, dominates MOM overhead: the same data
// volume sent as 1x-rate single samples vs aggregated batches of 5 at
// 1/5 rate.
func AblationAggregation(scale Scale) (Table, []NaradaResult) {
	single := RunNarada(NaradaConfig{Label: "no aggregation", Connections: 800, Transport: simbroker.TCP(), Scale: scale, Seed: 821})
	aggregated := RunNarada(NaradaConfig{
		Label: "aggregate x5", Connections: 800, Transport: simbroker.TCP(),
		Scale: Scale{PublishCount: (scale.PublishCount + 4) / 5, Label: scale.Label}, Seed: 822,
		PayloadTriple: false, RateFactor: 1, AggregateFactor: 5,
	})
	t := Table{
		Title:  "Ablation — sender-side message aggregation (same data volume)",
		Header: []string{"variant", "messages", "broker CPU idle %", "RTT ms"},
		Notes:  []string{"aggregation cuts per-message overhead; RMM's mechanism (related work §IV)"},
	}
	for _, r := range []NaradaResult{single, aggregated} {
		t.Rows = append(t.Rows, []string{r.Label, fmt.Sprintf("%d", r.Loss.Sent), f1(r.CPUIdlePct), f2(r.RTT.Mean())})
	}
	return t, []NaradaResult{single, aggregated}
}

// AblationPollInterval varies the R-GMA subscriber poll period around the
// paper's 100 ms choice.
func AblationPollInterval(scale Scale) (Table, []RGMAResult) {
	var results []RGMAResult
	for _, p := range []int{10, 100, 1000} {
		results = append(results, RunRGMA(RGMAConfig{
			Label:        fmt.Sprintf("poll %dms", p),
			Connections:  200,
			Scale:        scale,
			PollInterval: simMillis(p),
			Seed:         int64(830 + p),
		}))
	}
	t := Table{
		Title:  "Ablation — R-GMA subscriber poll interval, 200 connections",
		Header: []string{"poll", "RTT ms", "STDDEV ms"},
		Notes:  []string{"the paper's 100 ms poll adds its acknowledged '100 millisecond error'"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{r.Label, f1(r.RTT.Mean()), f1(r.RTT.Stddev())})
	}
	return t, results
}
