// Package experiment defines one runnable experiment per table and figure
// in the paper's evaluation (§III), plus the ablations called out in
// DESIGN.md. Each experiment builds the relevant topology on the
// discrete-event simulator, drives the paper's generator workload, and
// returns both a rendered text table and the raw numbers (which the test
// suite asserts shape properties against).
package experiment

import (
	"encoding/csv"
	"fmt"
	"strings"

	"gridmon/internal/broker"
	"gridmon/internal/brokernet"
	"gridmon/internal/gridgen"
	"gridmon/internal/message"
	"gridmon/internal/metrics"
	"gridmon/internal/rgma"
	"gridmon/internal/sim"
	"gridmon/internal/simbroker"
	"gridmon/internal/simnet"
	"gridmon/internal/simproc"
)

// Scale trades fidelity for runtime. Full reproduces the paper's
// 30-minute runs (180 publishes per generator, spawn every 0.5 s/1 s);
// Quick shrinks the per-generator publish count — and the spawn ramp by
// the same factor, so the fraction of the run during which all N
// generators publish concurrently matches the full-scale experiment —
// while keeping connection counts, rates and topology identical. The
// queueing behaviour that shapes the results depends on rates and
// concurrency, not run length.
type Scale struct {
	PublishCount int
	// SpawnFactor scales the generator spawn interval (1.0 = the
	// paper's 0.5 s for Narada / 1 s for R-GMA).
	SpawnFactor float64
	Label       string
}

// Full is the paper-fidelity scale (30-minute tests).
func Full() Scale { return Scale{PublishCount: 180, SpawnFactor: 1.0, Label: "full"} }

// Quick is the CI scale: 24 publishes and a proportionally shorter ramp.
func Quick() Scale { return Scale{PublishCount: 24, SpawnFactor: 24.0 / 180.0, Label: "quick"} }

// spawnInterval applies the scale to a base spawn interval.
func (s Scale) spawnInterval(base sim.Time) sim.Time {
	f := s.SpawnFactor
	if f <= 0 {
		f = 1
	}
	iv := sim.Time(float64(base) * f)
	if iv < sim.Millisecond {
		iv = sim.Millisecond
	}
	return iv
}

// genPerClientNode is the paper's limit for generators on one machine
// ("for most tests, we simulated no more than 750 generators on one
// computer").
const genPerClientNode = 750

// NaradaConfig describes one NaradaBrokering run.
type NaradaConfig struct {
	Label       string
	Connections int
	Transport   simbroker.Transport
	AckMode     message.AckMode
	Scale       Scale
	// PayloadTriple enables the paper's test 5 (triple payload at 1/3
	// rate).
	PayloadTriple bool
	// RateFactor multiplies the publish rate (divides the period); the
	// paper's test 6 ("80") uses 10 with a tenth of the connections.
	RateFactor int
	// AggregateFactor > 1 bundles that many samples into one message
	// published at 1/factor rate (the RMM aggregation ablation).
	AggregateFactor int
	// DBN runs the 3-broker distributed broker network instead of a
	// single broker.
	DBN bool
	// Routing selects the DBN routing mode (broadcast = paper's v1.1.3).
	Routing brokernet.RoutingMode
	// Seed for the deterministic kernel.
	Seed int64
}

// NaradaResult carries one run's measurements.
type NaradaResult struct {
	Label       string
	Connections int
	RTT         *metrics.RTT
	Loss        metrics.Loss
	CPUIdlePct  float64 // mean across broker nodes
	MemMB       float64 // mean heap consumption across broker nodes
	Refused     int
}

// RunNarada executes one NaradaBrokering experiment.
func RunNarada(cfg NaradaConfig) NaradaResult {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.RateFactor == 0 {
		cfg.RateFactor = 1
	}
	k := sim.New(cfg.Seed)
	net := simnet.New(k)

	// Broker topology.
	var hosts []*simbroker.Host
	if cfg.DBN {
		// The paper's DBN: a unit controller assigns addresses to three
		// broker nodes; we arrange them in a chain so cross-broker
		// traffic transits the middle broker.
		ctrl := brokernet.NewController()
		ids := []string{"b1", "b2", "b3"}
		ctrl.ChainLinks(ids)
		if err := ctrl.ValidateTree(); err != nil {
			panic(err)
		}
		for _, id := range ids {
			h := simbroker.NewHost(net, net.AddNode(id, simnet.HydraNode()), broker.DefaultConfig(id), simbroker.DefaultCosts())
			h.JoinNetwork(cfg.Routing)
			hosts = append(hosts, h)
		}
		for _, l := range ctrl.Links() {
			var a, b *simbroker.Host
			for _, h := range hosts {
				if h.Broker().ID() == l[0] {
					a = h
				}
				if h.Broker().ID() == l[1] {
					b = h
				}
			}
			simbroker.Peer(a, b)
		}
	} else {
		h := simbroker.NewHost(net, net.AddNode("broker", simnet.HydraNode()), broker.DefaultConfig("broker"), simbroker.DefaultCosts())
		hosts = append(hosts, h)
	}
	for _, h := range hosts {
		h.StartSampler(5 * sim.Second)
	}

	// Client machines.
	nClientNodes := (cfg.Connections + genPerClientNode - 1) / genPerClientNode
	if nClientNodes < 1 {
		nClientNodes = 1
	}
	var clientNodes []*simnet.Node
	for i := 0; i < nClientNodes; i++ {
		clientNodes = append(clientNodes, net.AddNode(fmt.Sprintf("client%d", i+1), simnet.HydraNode()))
	}

	// Placement: each client machine publishes to a machine-specific
	// topic; its monitor subscribes to that topic so data "were received
	// by the node where they were sent". On the DBN, publishers attach
	// to the edge ("publishing") brokers and monitors to the middle
	// ("subscribing") broker.
	nodeOf := func(genID int) int { return genID % nClientNodes }
	pubHost := func(genID int) *simbroker.Host {
		if !cfg.DBN {
			return hosts[0]
		}
		return hosts[nodeOf(genID)%len(hosts)]
	}
	// On the DBN, each client machine's monitor attaches to a different
	// broker than its publishers ("publishers connect to publishing
	// brokers, subscribers connect to subscribing brokers"), so every
	// message crosses the broker network.
	subHostFor := func(clientIdx int) *simbroker.Host {
		if !cfg.DBN {
			return hosts[0]
		}
		return hosts[(clientIdx+1)%len(hosts)]
	}

	period := 10 * sim.Second / sim.Time(cfg.RateFactor)
	payload := gridgen.MonitoringMessage
	if cfg.PayloadTriple {
		payload = func(genID int, seq int64) *message.Message {
			return simbroker.TriplePayload(gridgen.MonitoringMessage(genID, seq))
		}
	}
	if cfg.AggregateFactor > 1 {
		k := cfg.AggregateFactor
		period *= sim.Time(k)
		payload = func(genID int, seq int64) *message.Message {
			// One message carrying k samples' worth of map entries.
			m := gridgen.MonitoringMessage(genID, seq)
			for i := 1; i < k; i++ {
				extra := gridgen.MonitoringMessage(genID, seq*int64(k)+int64(i))
				for _, name := range extra.MapNames() {
					v, _ := extra.MapGet(name)
					m.MapSet(fmt.Sprintf("%s_%d", name, i), v)
				}
			}
			return m
		}
	}

	var monitors []*gridgen.Monitor
	for i := 0; i < nClientNodes; i++ {
		mon, err := gridgen.StartMonitor(k, gridgen.MonitorConfig{
			Host:      subHostFor(i),
			Node:      clientNodes[i],
			Transport: cfg.Transport,
			AckMode:   cfg.AckMode,
			Topics:    []string{fmt.Sprintf("power.node%d", i)},
		})
		if err != nil {
			panic(fmt.Sprintf("monitor refused: %v", err))
		}
		monitors = append(monitors, mon)
	}

	fleet := gridgen.StartFleet(k, gridgen.FleetConfig{
		Generators:    cfg.Connections,
		SpawnInterval: cfg.Scale.spawnInterval(500 * sim.Millisecond),
		WarmupMin:     10 * sim.Second,
		WarmupMax:     20 * sim.Second,
		Period:        period,
		PublishCount:  cfg.Scale.PublishCount,
		Transport:     cfg.Transport,
		AckMode:       cfg.AckMode,
		TopicFor:      func(g int) string { return fmt.Sprintf("power.node%d", nodeOf(g)) },
		HostFor:       pubHost,
		NodeFor:       func(g int) *simnet.Node { return clientNodes[nodeOf(g)] },
		Payload:       payload,
	})

	k.RunUntil(fleet.EndTime() + sim.Minute)

	res := NaradaResult{Label: cfg.Label, Connections: cfg.Connections, RTT: &metrics.RTT{}, Refused: fleet.Refused()}
	var received uint64
	for _, mon := range monitors {
		res.RTT.Merge(mon.RTT())
		received += mon.Received()
	}
	res.Loss = metrics.Loss{Sent: fleet.Published(), Received: received}
	// CPU idle is the busiest broker's (on the DBN chain that is the
	// middle broker, which relays everything in broadcast mode); memory
	// is the per-broker mean.
	minIdle := 100.0
	var memSum float64
	for _, h := range hosts {
		if idle := h.Sampler().MeanIdle() * 100; idle < minIdle {
			minIdle = idle
		}
		memSum += float64(h.Node().Heap.Consumption()) / (1 << 20)
	}
	res.CPUIdlePct = minIdle
	res.MemMB = memSum / float64(len(hosts))
	return res
}

// RGMAConfig describes one R-GMA run.
type RGMAConfig struct {
	Label       string
	Connections int
	Distributed bool
	Scale       Scale
	// Secondary routes the subscriber through Secondary Producers
	// (fig. 10's chain).
	Secondary bool
	// NoWarmup makes generators publish immediately after creation (the
	// paper's loss experiment).
	NoWarmup bool
	// PollInterval overrides the subscriber poll period (0 = 100 ms).
	PollInterval sim.Time
	Seed         int64
}

// RGMAResult carries one run's measurements.
type RGMAResult struct {
	Label       string
	Connections int
	RTT         *metrics.RTT
	Loss        metrics.Loss
	CPUIdlePct  float64
	MemMB       float64
	Refused     int
}

// RunRGMA executes one R-GMA experiment.
func RunRGMA(cfg RGMAConfig) RGMAResult {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	k := sim.New(cfg.Seed)
	net := simnet.New(k)
	costs := rgma.DefaultCosts()
	if cfg.PollInterval > 0 {
		costs.PollInterval = cfg.PollInterval
	}

	// Service topology: single server hosts everything on one node; the
	// distributed deployment uses two producer and two consumer nodes
	// (registry on the first consumer node), as installed in the paper.
	var dep *rgma.Deployment
	var psvcs []*rgma.ProducerService
	var csvcs []*rgma.ConsumerService
	var serviceNodes []*simnet.Node
	if cfg.Distributed {
		p1 := net.AddNode("prod1", simnet.HydraNode())
		p2 := net.AddNode("prod2", simnet.HydraNode())
		c1 := net.AddNode("cons1", simnet.HydraNode())
		c2 := net.AddNode("cons2", simnet.HydraNode())
		dep = rgma.NewDeployment(net, c1, costs)
		psvcs = []*rgma.ProducerService{dep.AddProducerService(p1), dep.AddProducerService(p2)}
		csvcs = []*rgma.ConsumerService{dep.AddConsumerService(c1), dep.AddConsumerService(c2)}
		serviceNodes = []*simnet.Node{p1, p2, c1, c2}
	} else {
		server := net.AddNode("server", simnet.HydraNode())
		dep = rgma.NewDeployment(net, server, costs)
		psvcs = []*rgma.ProducerService{dep.AddProducerService(server)}
		csvcs = []*rgma.ConsumerService{dep.AddConsumerService(server)}
		serviceNodes = []*simnet.Node{server}
	}
	dep.CreateTable(rgma.MonitoringTable())

	var samplers []*simproc.Sampler
	for _, n := range serviceNodes {
		samplers = append(samplers, simproc.NewSampler(k, n.CPU, n.Heap, 5*sim.Second))
	}

	nClientNodes := (cfg.Connections + genPerClientNode - 1) / genPerClientNode
	if nClientNodes < 1 {
		nClientNodes = 1
	}
	var clientNodes []*simnet.Node
	for i := 0; i < nClientNodes; i++ {
		clientNodes = append(clientNodes, net.AddNode(fmt.Sprintf("client%d", i+1), simnet.HydraNode()))
	}

	// One secondary producer per producer service when requested.
	if cfg.Secondary {
		for i, ps := range psvcs {
			if _, err := dep.CreateSecondaryProducer(ps, csvcs[i%len(csvcs)], "generator", 30*sim.Second, sim.Minute); err != nil {
				panic(err)
			}
		}
	}

	// One consumer + subscriber per client machine, partitioned by genid
	// range so each machine receives exactly its own generators' data.
	kindPref := rgma.ProducerKind(0)
	if cfg.Secondary {
		kindPref = rgma.SecondaryKind
	} else {
		kindPref = rgma.PrimaryKind
	}
	var subs []*rgma.Subscriber
	for i := 0; i < nClientNodes; i++ {
		query := fmt.Sprintf("SELECT * FROM generator WHERE genid >= %d AND genid < %d",
			i*genPerClientNode, (i+1)*genPerClientNode)
		cons, err := dep.CreateConsumer(clientNodes[i], csvcs[i%len(csvcs)], query, rgma.ContinuousQuery, kindPref)
		if err != nil {
			panic(fmt.Sprintf("consumer refused: %v", err))
		}
		subs = append(subs, rgma.StartSubscriber(cons))
	}

	// Generator fleet: created at 1 s intervals; each waits the warm-up
	// (10–20 s, or none for the loss experiment) then inserts every 10 s.
	warmMin, warmMax := 10*sim.Second, 20*sim.Second
	if cfg.NoWarmup {
		warmMin, warmMax = 0, 3*sim.Second
	}
	var published uint64
	refused := 0
	spawnIv := cfg.Scale.spawnInterval(sim.Second)
	for g := 0; g < cfg.Connections; g++ {
		g := g
		k.At(sim.Time(g)*spawnIv, func() {
			ps := psvcs[g%len(psvcs)]
			pp, err := dep.CreatePrimaryProducer(clientNodes[g%nClientNodes], ps, "generator", 30*sim.Second, sim.Minute)
			if err != nil {
				refused++
				return
			}
			warm := warmMin
			if span := int64(warmMax - warmMin); span > 0 {
				warm += sim.Time(k.Rand().Int63n(span))
			}
			seq := int64(0)
			var tick *sim.Ticker
			tick = k.Every(k.Now()+warm, 10*sim.Second, func() {
				if seq >= int64(cfg.Scale.PublishCount) {
					tick.Stop()
					return
				}
				seq++
				pp.Insert(rgma.MonitoringRow(g, seq))
				published++
			})
		})
	}

	ramp := sim.Time(cfg.Connections) * spawnIv
	end := ramp + warmMax + sim.Time(cfg.Scale.PublishCount+1)*10*sim.Second + 2*sim.Minute
	if cfg.Secondary {
		end += costs.SecondaryDelay + sim.Minute
	}
	k.RunUntil(end)

	res := RGMAResult{Label: cfg.Label, Connections: cfg.Connections, RTT: &metrics.RTT{}, Refused: refused}
	var received uint64
	for _, s := range subs {
		s.Stop()
		res.RTT.Merge(s.RTT())
		received += s.Received()
	}
	res.Loss = metrics.Loss{Sent: published, Received: received}
	var idleSum, memSum float64
	for i, s := range samplers {
		s.Stop()
		idleSum += s.MeanIdle() * 100
		memSum += float64(serviceNodes[i].Heap.Consumption()) / (1 << 20)
	}
	res.CPUIdlePct = idleSum / float64(len(samplers))
	res.MemMB = memSum / float64(len(samplers))
	return res
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table with aligned columns.
func (t Table) Render() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteString("\n")
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteString("\n")
	}
	return sb.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d0(v int) string     { return fmt.Sprintf("%d", v) }

// CSV renders the table as RFC 4180 CSV (header row first) for plotting
// the figures with external tools.
func (t Table) CSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	_ = w.Write(t.Header)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return sb.String()
}

func simMillis(ms int) sim.Time { return sim.Time(ms) * sim.Millisecond }

func pctRow(label string, r *metrics.RTT) []string {
	row := []string{label}
	for _, p := range r.Percentiles(metrics.PaperPercentiles...) {
		row = append(row, f1(p))
	}
	return row
}
