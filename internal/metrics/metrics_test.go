package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyRTT(t *testing.T) {
	var r RTT
	if r.Count() != 0 || r.Mean() != 0 || r.Stddev() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Fatal("empty RTT not all zero")
	}
	if r.Percentile(99) != 0 {
		t.Fatal("empty percentile not zero")
	}
}

func TestMeanStddevKnown(t *testing.T) {
	var r RTT
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.Mean() != 5 {
		t.Fatalf("mean = %v", r.Mean())
	}
	if math.Abs(r.Stddev()-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", r.Stddev())
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
	if r.Count() != 8 {
		t.Fatalf("count = %d", r.Count())
	}
}

func TestSingleSample(t *testing.T) {
	var r RTT
	r.Add(3.5)
	if r.Mean() != 3.5 || r.Stddev() != 0 || r.Percentile(50) != 3.5 || r.Percentile(100) != 3.5 {
		t.Fatal("single sample stats wrong")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	var r RTT
	for i := 1; i <= 100; i++ {
		r.Add(float64(i))
	}
	for _, c := range []struct{ p, want float64 }{
		{95, 95}, {99, 99}, {100, 100}, {50, 50}, {1, 1},
	} {
		if got := r.Percentile(c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileAfterLaterAdd(t *testing.T) {
	var r RTT
	r.Add(10)
	r.Add(20)
	_ = r.Percentile(100)
	r.Add(5) // must re-sort
	if r.Percentile(100) != 20 || r.Percentile(1) != 5 {
		t.Fatal("percentile stale after Add")
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	var r RTT
	r.Add(1)
	for _, p := range []float64{0, -1, 101} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Percentile(%v) did not panic", p)
				}
			}()
			r.Percentile(p)
		}()
	}
}

func TestPercentilesAndPaperPoints(t *testing.T) {
	var r RTT
	for i := 1; i <= 1000; i++ {
		r.Add(float64(i))
	}
	ps := r.Percentiles(PaperPercentiles...)
	want := []float64{950, 960, 970, 980, 990, 1000}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("paper percentiles = %v", ps)
		}
	}
}

func TestMerge(t *testing.T) {
	var a, b RTT
	for i := 0; i < 50; i++ {
		a.Add(float64(i))
		b.Add(float64(i + 50))
	}
	a.Merge(&b)
	if a.Count() != 100 || a.Mean() != 49.5 || a.Max() != 99 {
		t.Fatalf("merged: n=%d mean=%v max=%v", a.Count(), a.Mean(), a.Max())
	}
}

func TestLossRate(t *testing.T) {
	// The paper's UDP test: 144000 sent, 143914 received -> 0.06%.
	l := Loss{Sent: 144000, Received: 143914}
	if got := l.RatePercent(); math.Abs(got-0.0597) > 0.001 {
		t.Fatalf("loss = %v%%, want ~0.06%%", got)
	}
	if (Loss{}).Rate() != 0 {
		t.Fatal("empty loss not zero")
	}
	if (Loss{Sent: 5, Received: 5}).Rate() != 0 {
		t.Fatal("lossless not zero")
	}
	if (Loss{Sent: 5, Received: 7}).Rate() != 0 {
		t.Fatal("over-receive (duplicates) should clamp to zero")
	}
}

func TestDecomposition(t *testing.T) {
	var d Decomposition
	for i := 0; i < 10; i++ {
		d.AddPhases(1, 100, 2)
	}
	if d.PRT.Mean() != 1 || d.PT.Mean() != 100 || d.SRT.Mean() != 2 {
		t.Fatal("phase means wrong")
	}
	if d.MeanRTT() != 103 {
		t.Fatalf("mean RTT = %v", d.MeanRTT())
	}
	tl := d.Timeline()
	want := [4]float64{0, 1, 101, 103}
	if tl != want {
		t.Fatalf("timeline = %v", tl)
	}
}

func TestSummarize(t *testing.T) {
	var r RTT
	for i := 1; i <= 100; i++ {
		r.Add(float64(i))
	}
	s := Summarize("tcp", 800, &r, Loss{Sent: 100, Received: 99})
	if s.Label != "tcp" || s.Connections != 800 || s.RTTMean != 50.5 {
		t.Fatalf("summary = %+v", s)
	}
	if len(s.Pcts) != 6 || s.Pcts[5] != 100 {
		t.Fatalf("pcts = %v", s.Pcts)
	}
	if math.Abs(s.LossPercent-1.0) > 1e-9 {
		t.Fatalf("loss%% = %v", s.LossPercent)
	}
}

func TestWelfordAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var r RTT
	var vals []float64
	for i := 0; i < 10000; i++ {
		v := rng.Float64()*1000 + 5
		vals = append(vals, v)
		r.Add(v)
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	var ss float64
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(len(vals)))
	if math.Abs(r.Mean()-mean) > 1e-9 || math.Abs(r.Stddev()-sd) > 1e-9 {
		t.Fatalf("welford drifted: mean %v vs %v, sd %v vs %v", r.Mean(), mean, r.Stddev(), sd)
	}
}

// Property: Percentile(100) == Max and percentiles are monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var r RTT
		for _, v := range raw {
			r.Add(float64(v))
		}
		if r.Percentile(100) != r.Max() {
			return false
		}
		prev := 0.0
		for p := 5.0; p <= 100; p += 5 {
			cur := r.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: nearest-rank percentile equals the sorted-slice definition.
func TestPropertyPercentileDefinition(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		p := float64(pRaw%100) + 1 // 1..100
		var r RTT
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
			r.Add(float64(v))
		}
		sort.Float64s(vals)
		rank := int(math.Ceil(p / 100 * float64(len(vals))))
		if rank < 1 {
			rank = 1
		}
		return r.Percentile(p) == vals[rank-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRTTAdd(b *testing.B) {
	var r RTT
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Add(float64(i % 1000))
	}
}
