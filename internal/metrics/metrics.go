// Package metrics implements the performance metrics of the paper's
// §III.C: mean round-trip time, RTT variation (standard deviation),
// percentile of RTT, loss rate, and the RTT decomposition of §III.F.2
// (RTT = PRT + PT + SRT). Welford's algorithm provides numerically stable
// streaming mean/variance; percentiles are exact nearest-rank over the
// retained sample set, as the paper computed them from dumped logs.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// RTT accumulates round-trip time samples in milliseconds.
type RTT struct {
	samples []float64
	sorted  bool

	// Welford state.
	n    uint64
	mean float64
	m2   float64

	min, max float64
}

// Add records one sample (milliseconds).
func (r *RTT) Add(ms float64) {
	if len(r.samples) == 0 {
		r.min, r.max = ms, ms
	} else {
		if ms < r.min {
			r.min = ms
		}
		if ms > r.max {
			r.max = ms
		}
	}
	r.samples = append(r.samples, ms)
	r.sorted = false
	r.n++
	d := ms - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (ms - r.mean)
}

// Count reports the number of samples.
func (r *RTT) Count() uint64 { return r.n }

// Mean reports the sample mean (0 when empty).
func (r *RTT) Mean() float64 { return r.mean }

// Stddev reports the population standard deviation, matching the paper's
// "RTT variation was calculated as the standard deviation (STDDEV) of all
// the round-trip times" (0 for fewer than 2 samples).
func (r *RTT) Stddev() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n))
}

// Min and Max report sample extremes (0 when empty).
func (r *RTT) Min() float64 { return r.min }

// Max reports the largest sample.
func (r *RTT) Max() float64 { return r.max }

// Percentile returns the nearest-rank p-th percentile, p in (0, 100].
// Percentile(100) is the maximum. It returns 0 when no samples exist.
func (r *RTT) Percentile(p float64) float64 {
	if r.n == 0 {
		return 0
	}
	if p <= 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of (0,100]", p))
	}
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
	rank := int(math.Ceil(p / 100 * float64(len(r.samples))))
	if rank < 1 {
		rank = 1
	}
	return r.samples[rank-1]
}

// Percentiles evaluates several percentiles at once.
func (r *RTT) Percentiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = r.Percentile(p)
	}
	return out
}

// PaperPercentiles are the x-axis points of the paper's percentile
// figures (fig. 4, 8, 9, 10, 12, 14): 95% through 100%.
var PaperPercentiles = []float64{95, 96, 97, 98, 99, 100}

// Merge folds another RTT accumulator into this one.
func (r *RTT) Merge(o *RTT) {
	for _, s := range o.samples {
		r.Add(s)
	}
}

// Loss tracks message accounting. The paper reports loss rate as
// (sent-received)/sent, e.g. "a total of 144,000 messages were sent and
// 143,914 messages were received. The loss rate was 0.06%".
type Loss struct {
	Sent     uint64
	Received uint64
}

// Rate reports the loss fraction in [0,1]; 0 when nothing was sent.
func (l Loss) Rate() float64 {
	if l.Sent == 0 {
		return 0
	}
	if l.Received >= l.Sent {
		return 0
	}
	return float64(l.Sent-l.Received) / float64(l.Sent)
}

// RatePercent reports the loss rate in percent.
func (l Loss) RatePercent() float64 { return l.Rate() * 100 }

// Decomposition splits RTT into the paper's three phases:
//
//	PRT (publishing response time)  = before_sending .. after_sending
//	PT  (process time)              = after_sending .. before_receiving
//	SRT (subscribing response time) = before_receiving .. after_receiving
type Decomposition struct {
	PRT RTT
	PT  RTT
	SRT RTT
}

// AddPhases records one message's phase times (milliseconds).
func (d *Decomposition) AddPhases(prt, pt, srt float64) {
	d.PRT.Add(prt)
	d.PT.Add(pt)
	d.SRT.Add(srt)
}

// MeanRTT reports the mean of the reconstructed RTT (sum of phase means).
func (d *Decomposition) MeanRTT() float64 {
	return d.PRT.Mean() + d.PT.Mean() + d.SRT.Mean()
}

// Timeline converts cumulative phase means into the paper's fig. 15
// x-axis: elapsed time at before_sending, after_sending, before_receiving
// and after_receiving.
func (d *Decomposition) Timeline() [4]float64 {
	t0 := 0.0
	t1 := t0 + d.PRT.Mean()
	t2 := t1 + d.PT.Mean()
	t3 := t2 + d.SRT.Mean()
	return [4]float64{t0, t1, t2, t3}
}

// Summary is a compact result record used by experiment tables.
type Summary struct {
	Label       string
	Connections int
	RTTMean     float64 // ms
	RTTStddev   float64 // ms
	Pcts        []float64
	LossPercent float64
	CPUIdle     float64 // percent
	MemoryMB    float64
	Sent        uint64
	Received    uint64
}

// Summarize builds a Summary from an RTT accumulator and loss record.
func Summarize(label string, conns int, r *RTT, l Loss) Summary {
	return Summary{
		Label:       label,
		Connections: conns,
		RTTMean:     r.Mean(),
		RTTStddev:   r.Stddev(),
		Pcts:        r.Percentiles(PaperPercentiles...),
		LossPercent: l.RatePercent(),
		Sent:        l.Sent,
		Received:    l.Received,
	}
}
