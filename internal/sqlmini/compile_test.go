package sqlmini

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The conformance suite: every predicate is evaluated by both the
// interpreted Expr.Eval path and the compiled Program against the same
// rows, and the three-valued verdicts must be identical — the same
// contract internal/selector enforces between EvalInterpreted and
// Compiled.

func confTable() *Table {
	return &Table{Name: "t", Columns: []Column{
		{Name: "a", Type: TInteger},
		{Name: "b", Type: TInteger},
		{Name: "x", Type: TDouble},
		{Name: "y", Type: TDouble},
		{Name: "s", Type: TVarchar, Len: 50},
		{Name: "u", Type: TVarchar, Len: 50},
	}}
}

func mustSelect(t *testing.T, where string) Select {
	t.Helper()
	st, err := Parse("SELECT * FROM t WHERE " + where)
	if err != nil {
		t.Fatalf("Parse(%q): %v", where, err)
	}
	return st.(Select)
}

// assertConformance checks interpreted == compiled for one predicate
// over a set of rows.
func assertConformance(t *testing.T, tab *Table, where string, rows []Row) {
	t.Helper()
	sel := mustSelect(t, where)
	prog := sel.Compiled(tab)
	for ri, row := range rows {
		want := sel.Where.Eval(tab, row)
		got := prog.Eval(row)
		if got != want {
			t.Errorf("WHERE %s row %d (%v): compiled %d, interpreted %d", where, ri, row, got, want)
		}
		if prog.Matches(row) != (want == 1) {
			t.Errorf("WHERE %s row %d: Matches disagrees with verdict %d", where, ri, want)
		}
		if Matches(tab, sel, row) != prog.Matches(row) {
			t.Errorf("WHERE %s row %d: package Matches disagrees with compiled", where, ri)
		}
	}
}

// confRows is a fixed row set covering the value-kind matrix: typed
// values, NULLs, ill-typed cells (string in a numeric column and vice
// versa — the type-mismatch-is-UNKNOWN rule), and a short row.
func confRows() []Row {
	return []Row{
		{IntV(7), IntV(3), FloatV(1.5), FloatV(-2), StringV("aberdeen"), StringV("z")},
		{IntV(-7), Null(), FloatV(0), Null(), StringV(""), Null()},
		{Null(), Null(), Null(), Null(), Null(), Null()},
		{StringV("oops"), IntV(1), StringV("bad"), FloatV(9), IntV(5), FloatV(1)}, // ill-typed
		{IntV(100), IntV(100), FloatV(100), FloatV(100), StringV("100"), StringV("100")},
		{IntV(7), IntV(3)}, // short row: x, y, s, u read as missing
		{FloatV(math.NaN()), IntV(3), FloatV(math.NaN()), FloatV(2), StringV("n"), Null()}, // IEEE unordered
		{},
	}
}

func TestCompiledConformanceFixed(t *testing.T) {
	tab := confTable()
	rows := confRows()
	for _, where := range []string{
		"a = 7",
		"a <> 7",
		"a < 10",
		"a <= 7",
		"a > 7",
		"a >= 100",
		"x > 1.0",
		"x > 1",
		"s = 'aberdeen'",
		"s < 'b'",
		"s >= ''",
		"a = NULL",
		"s = NULL",
		"a IS NULL",
		"a IS NOT NULL",
		"u IS NULL",
		"nosuchcol = 5",
		"nosuchcol IS NULL",
		"nosuchcol IS NOT NULL",
		"NOT a = 7",
		"NOT NOT a = 7",
		"NOT b = 1",
		"a = 7 AND x > 1",
		"a = 7 AND b = 1",
		"b = 1 AND a = 7",
		"a = 9 OR s = 'aberdeen'",
		"b = 3 OR b = 4",
		"a = 7 AND nosuchcol = 5",
		"nosuchcol = 5 AND a = 7",
		"a = 7 OR nosuchcol = 5",
		"nosuchcol = 5 OR a = 7",
		"nosuchcol = 5 AND nosuchcol2 = 6",
		"nosuchcol = 5 OR nosuchcol2 = 6",
		"NOT nosuchcol = 5",
		"(a = 7 OR b = 8) AND x > 1",
		"(a = 7 AND b = 3) OR (s = 'aberdeen' AND u = 'z')",
		"NOT (a = 7 AND (b = 3 OR x < 0))",
		"a IS NULL OR b IS NULL OR x IS NULL",
		"a IS NOT NULL AND s IS NOT NULL",
		"s = 5",     // string column vs numeric literal
		"a = 'lit'", // numeric column vs string literal (via parser: a = 'lit' — allowed)
	} {
		assertConformance(t, tab, where, rows)
	}
}

// TestCompiledNullThreeValued pins the SQL 3VL corner cases the paper's
// content filtering depends on: NULL propagation through AND/OR/NOT and
// IS NULL, identically in both evaluation paths.
func TestCompiledNullThreeValued(t *testing.T) {
	tab := confTable()
	rows := []Row{
		// b is NULL throughout; a carries a known value.
		{IntV(1), Null(), FloatV(1), FloatV(1), StringV("s"), StringV("s")},
		{IntV(0), Null(), Null(), Null(), Null(), Null()},
	}
	type tc struct {
		where string
		want  int // verdict on rows[0]
	}
	for _, c := range []tc{
		{"b = 1", -1},  // NULL comparison is UNKNOWN
		{"b <> 1", -1}, // ... under every operator
		{"b < 1", -1},
		{"NOT b = 1", -1},            // NOT UNKNOWN = UNKNOWN
		{"b = 1 AND a = 1", -1},      // UNKNOWN AND TRUE = UNKNOWN
		{"b = 1 AND a = 2", 0},       // UNKNOWN AND FALSE = FALSE
		{"a = 2 AND b = 1", 0},       // FALSE short-circuits AND
		{"b = 1 OR a = 1", 1},        // UNKNOWN OR TRUE = TRUE
		{"a = 1 OR b = 1", 1},        // TRUE short-circuits OR
		{"b = 1 OR a = 2", -1},       // UNKNOWN OR FALSE = UNKNOWN
		{"b = 1 OR b = 2", -1},       // UNKNOWN OR UNKNOWN = UNKNOWN
		{"b = 1 AND b = 2", -1},      // UNKNOWN AND UNKNOWN = UNKNOWN
		{"NOT (b = 1 OR a = 1)", 0},  // NOT TRUE
		{"NOT (b = 1 AND a = 2)", 1}, // NOT FALSE
		{"NOT (b = 1 OR a = 2)", -1}, // NOT UNKNOWN
		{"b IS NULL", 1},             // IS NULL sees NULL as a value
		{"b IS NOT NULL", 0},
		{"b IS NULL AND b = 1", -1}, // TRUE AND UNKNOWN
		{"a = NULL", -1},            // NULL literal folds to UNKNOWN
		{"a = NULL OR a = 1", 1},
		{"a = NULL AND a = 1", -1},
		{"NOT a = NULL", -1},
	} {
		sel := mustSelect(t, c.where)
		prog := sel.Compiled(tab)
		for ri, row := range rows {
			want := sel.Where.Eval(tab, row)
			got := prog.Eval(row)
			if got != want {
				t.Errorf("WHERE %s row %d: compiled %d, interpreted %d", c.where, ri, got, want)
			}
			if ri == 0 && want != c.want {
				t.Errorf("WHERE %s: interpreted verdict %d, expected %d — case is mislabelled", c.where, want, c.want)
			}
		}
	}
}

// randPredicate generates a random WHERE source string: comparison and
// IS NULL leaves (sometimes against columns the schema lacks, sometimes
// against NULL literals) combined with AND/OR/NOT and parentheses.
func randPredicate(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		cols := []string{"a", "b", "x", "y", "s", "u", "ghost"}
		col := cols[rng.Intn(len(cols))]
		if rng.Intn(5) == 0 {
			if rng.Intn(2) == 0 {
				return col + " IS NULL"
			}
			return col + " IS NOT NULL"
		}
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		op := ops[rng.Intn(len(ops))]
		var lit string
		switch rng.Intn(4) {
		case 0:
			lit = fmt.Sprintf("%d", rng.Intn(21)-10)
		case 1:
			lit = fmt.Sprintf("%.2f", rng.Float64()*20-10)
		case 2:
			lit = fmt.Sprintf("'%c'", 'a'+rune(rng.Intn(4)))
		default:
			lit = "NULL"
		}
		return col + " " + op + " " + lit
	}
	switch rng.Intn(4) {
	case 0:
		return "NOT " + randPredicate(rng, depth-1)
	case 1:
		return "(" + randPredicate(rng, depth-1) + ")"
	case 2:
		return randPredicate(rng, depth-1) + " AND " + randPredicate(rng, depth-1)
	default:
		return randPredicate(rng, depth-1) + " OR " + randPredicate(rng, depth-1)
	}
}

// randRow generates a random row: NULLs, ints, floats and strings in
// every column regardless of declared type (predicate evaluation must
// handle ill-typed cells), occasionally truncated short of the schema.
func randRow(rng *rand.Rand, width int) Row {
	if rng.Intn(12) == 0 {
		width = rng.Intn(width + 1)
	}
	row := make(Row, width)
	for i := range row {
		switch rng.Intn(5) {
		case 0:
			row[i] = Null()
		case 1:
			row[i] = IntV(int64(rng.Intn(21) - 10))
		case 2:
			row[i] = FloatV(rng.Float64()*20 - 10)
		case 3:
			row[i] = FloatV(math.NaN()) // IEEE unordered: matches only <>
		default:
			row[i] = StringV(string('a' + rune(rng.Intn(4))))
		}
	}
	return row
}

func TestCompiledConformanceRandomized(t *testing.T) {
	tab := confTable()
	rng := rand.New(rand.NewSource(20260727))
	for i := 0; i < 4000; i++ {
		where := randPredicate(rng, 3)
		sel := mustSelect(t, where)
		prog := sel.Compiled(tab)
		for j := 0; j < 8; j++ {
			row := randRow(rng, len(tab.Columns))
			want := sel.Where.Eval(tab, row)
			got := prog.Eval(row)
			if got != want {
				t.Fatalf("seed case %d: WHERE %s over %v: compiled %d, interpreted %d", i, where, row, got, want)
			}
		}
	}
}

func TestCompiledNilAndConstVerdict(t *testing.T) {
	tab := confTable()
	var nilProg *Program
	if !nilProg.Matches(Row{IntV(1)}) || nilProg.Eval(nil) != 1 {
		t.Fatal("nil program must match everything")
	}
	star, err := Parse("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	p := star.(Select).Compiled(tab)
	if v, ok := p.ConstVerdict(); !ok || v != 1 {
		t.Fatalf("no-predicate ConstVerdict = %d, %v", v, ok)
	}
	folded := mustSelect(t, "ghost = 5").Compiled(tab)
	if v, ok := folded.ConstVerdict(); !ok || v != -1 {
		t.Fatalf("folded ConstVerdict = %d, %v", v, ok)
	}
	varying := mustSelect(t, "a = 5").Compiled(tab)
	if _, ok := varying.ConstVerdict(); ok {
		t.Fatal("varying predicate reported const")
	}
}

// TestCompiledFoldsShortCircuitShapes pins that folding produces the
// compact programs the compiler promises (a single constant push), so a
// regression back to full emission is visible.
func TestCompiledFoldsConstantSubtrees(t *testing.T) {
	tab := confTable()
	for _, where := range []string{
		"ghost = 5",
		"a = NULL",
		"ghost IS NULL",
		"ghost = 5 AND a = NULL",
		"ghost IS NULL OR s = NULL",
		"NOT ghost = 5",
	} {
		p := mustSelect(t, where).Compiled(tab)
		if len(p.ins) != 1 || p.ins[0].op != opTri {
			t.Errorf("WHERE %s compiled to %d instructions, want 1 constant", where, len(p.ins))
		}
	}
	// AND with a folded FALSE side folds even when the other side varies.
	p := mustSelect(t, "a = 1 AND ghost IS NOT NULL").Compiled(tab)
	if v, ok := p.ConstVerdict(); !ok || v != 0 {
		t.Errorf("AND-with-folded-FALSE = (%d, %v), want constant FALSE", v, ok)
	}
	// OR with a folded TRUE side folds likewise.
	p = mustSelect(t, "a = 1 OR ghost IS NULL").Compiled(tab)
	if v, ok := p.ConstVerdict(); !ok || v != 1 {
		t.Errorf("OR-with-folded-TRUE = (%d, %v), want constant TRUE", v, ok)
	}
}

// A foreign Expr implementation (not produced by Parse) must still
// evaluate through the compiled program, via the interpreter fallback.
type oddRowExpr struct{}

func (oddRowExpr) Eval(t *Table, row Row) int {
	if len(row) == 0 || row[0].Kind != VInt {
		return -1
	}
	if row[0].Int%2 != 0 {
		return 1
	}
	return 0
}
func (oddRowExpr) String() string { return "odd(row)" }

func TestCompiledForeignExprFallback(t *testing.T) {
	tab := confTable()
	p := Compile(tab, oddRowExpr{})
	for _, row := range []Row{{IntV(3)}, {IntV(4)}, {Null()}, {}} {
		if got, want := p.Eval(row), (oddRowExpr{}).Eval(tab, row); got != want {
			t.Fatalf("fallback Eval(%v) = %d, want %d", row, got, want)
		}
	}
	// And combined under a native connective.
	combined := Compile(tab, &andNode{oddRowExpr{}, &cmpNode{col: "a", op: ">", lit: IntV(0)}})
	for _, row := range []Row{{IntV(3)}, {IntV(4)}, {IntV(-3)}} {
		want := (&andNode{oddRowExpr{}, &cmpNode{col: "a", op: ">", lit: IntV(0)}}).Eval(tab, row)
		if got := combined.Eval(row); got != want {
			t.Fatalf("combined fallback Eval(%v) = %d, want %d", row, got, want)
		}
	}
}

func BenchmarkWhereCompiled(b *testing.B) {
	tab := &Table{Name: "t", Columns: []Column{{Name: "x", Type: TInteger}, {Name: "s", Type: TVarchar, Len: 50}}}
	st, _ := Parse("SELECT * FROM t WHERE x < 100 AND s = 'aberdeen'")
	p := st.(Select).Compiled(tab)
	r := Row{IntV(7), StringV("aberdeen")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !p.Matches(r) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkWhereCompiledSimple(b *testing.B) {
	tab := &Table{Name: "t", Columns: []Column{{Name: "genid", Type: TInteger}}}
	st, _ := Parse("SELECT * FROM t WHERE genid < 10000")
	p := st.(Select).Compiled(tab)
	r := Row{IntV(7)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !p.Matches(r) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkWhereInterpretedSimple(b *testing.B) {
	tab := &Table{Name: "t", Columns: []Column{{Name: "genid", Type: TInteger}}}
	st, _ := Parse("SELECT * FROM t WHERE genid < 10000")
	s := st.(Select)
	r := Row{IntV(7)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Matches(tab, s, r) {
			b.Fatal("no match")
		}
	}
}

// TestCompiledNaNUnordered pins IEEE NaN comparison semantics on both
// evaluators: '=' and every ordering against (or from) NaN are FALSE,
// '<>' is TRUE — never UNKNOWN, the operands are present and numeric.
// This is the semantic the matching index assumes: a NaN cell hits no
// Eq bucket and no interval, and '<>' extracts Residual.
func TestCompiledNaNUnordered(t *testing.T) {
	tab := confTable()
	nanRow := Row{FloatV(math.NaN()), IntV(1), FloatV(math.NaN()), FloatV(2), StringV("s"), Null()}
	cases := []struct {
		where string
		want  int
	}{
		{"a = 5", 0},
		{"a <> 5", 1},
		{"a < 5", 0},
		{"a <= 5", 0},
		{"a > 5", 0},
		{"a >= 5", 0},
		{"x = 1.5", 0},
		{"x <> 1.5", 1},
		{"NOT a = 5", 1},
		{"a < 5 OR a >= 5", 0}, // NaN escapes the apparent tautology
	}
	for _, c := range cases {
		sel := mustSelect(t, c.where)
		if got := sel.Where.Eval(tab, nanRow); got != c.want {
			t.Errorf("interpreted WHERE %s on NaN row = %d, want %d", c.where, got, c.want)
		}
		if got := sel.Compiled(tab).Eval(nanRow); got != c.want {
			t.Errorf("compiled WHERE %s on NaN row = %d, want %d", c.where, got, c.want)
		}
	}
}
