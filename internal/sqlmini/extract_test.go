package sqlmini

import (
	"math/rand"
	"slices"
	"testing"

	"gridmon/internal/predindex"
)

// testRowProbe adapts a row to the index probe interface, as
// rgmacore's insert path does.
type testRowProbe struct {
	tab *Table
	row Row
}

func (p *testRowProbe) ProbeAttr(attr string) (predindex.Value, bool) {
	return ProbeValue(p.tab, p.row, attr)
}

// TestRequiredKeySupersetRandomized is the randomized superset-property
// suite over WHERE extraction: 4000 generated predicates (the same
// generator the compile conformance suite fuzzes with — comparisons
// against ints, floats, strings, NULL and ghost columns under
// AND/OR/NOT nesting), batched into indexes and probed with random rows
// (NULLs, ill-typed cells, short rows). Every predicate whose compiled
// program matches a row MUST appear among the index candidates for that
// row: the index may over-include, never under-include.
func TestRequiredKeySupersetRandomized(t *testing.T) {
	tab := confTable()
	rng := rand.New(rand.NewSource(20260807))
	const batches, perBatch = 100, 40
	skipped := 0
	for b := 0; b < batches; b++ {
		wheres := make([]string, perBatch)
		progs := make([]*Program, perBatch)
		keys := make([]predindex.Key, perBatch)
		for i := 0; i < perBatch; i++ {
			wheres[i] = randPredicate(rng, 3)
			sel := mustSelect(t, wheres[i])
			progs[i] = sel.Compiled(tab)
			keys[i] = RequiredKey(sel.Where)
		}
		ix := predindex.Build(keys)
		skipped += ix.NumNever()
		probe := &testRowProbe{tab: tab}
		var buf []int32
		for trial := 0; trial < 25; trial++ {
			probe.row = randRow(rng, len(tab.Columns))
			buf = ix.Candidates(probe, buf[:0])
			for seq, prog := range progs {
				if prog.Matches(probe.row) && !slices.Contains(buf, int32(seq)) {
					t.Fatalf("batch %d: WHERE %s matches row %v but is not a candidate (key %+v, candidates %v)",
						b, wheres[seq], probe.row, keys[seq], buf)
				}
			}
		}
	}
	if skipped == 0 {
		t.Fatal("generator produced no Never keys — NULL-literal coverage lost")
	}
}

// TestRequiredKeyShapes pins the extraction rules the index relies on.
func TestRequiredKeyShapes(t *testing.T) {
	cases := []struct {
		where string
		kind  predindex.KeyKind
	}{
		{"a = 5", predindex.Eq},
		{"s = 'x'", predindex.Eq},
		{"x = 1.5", predindex.Eq},
		{"a < 5", predindex.Range},
		{"a >= 5", predindex.Range},
		{"a <> 5", predindex.Residual},
		{"a = NULL", predindex.Never},
		{"a < NULL", predindex.Never},
		{"s < 'x'", predindex.Residual}, // SQL string ordering is real here
		{"a = 1 AND b = 2", predindex.Eq},
		{"a = 1 OR a = 2", predindex.Eq},
		{"a = 1 OR b = 2", predindex.Residual},
		{"a < 5 OR a > 10", predindex.Range},
		{"a = 1 AND s IS NULL", predindex.Eq},
		{"s IS NULL", predindex.Residual},
		{"NOT a = 5", predindex.Residual},
		{"a = 1 OR a = NULL", predindex.Eq}, // Never side drops out
	}
	for _, c := range cases {
		sel := mustSelect(t, c.where)
		if k := RequiredKey(sel.Where); k.Kind != c.kind {
			t.Errorf("RequiredKey(%q).Kind = %v, want %v", c.where, k.Kind, c.kind)
		}
	}
}

// TestProbeValueColumns pins probe behaviour: case-insensitive column
// resolution, NULL and missing cells reported as absent.
func TestProbeValueColumns(t *testing.T) {
	tab := confTable()
	row := Row{IntV(7), Null(), FloatV(1.5)}
	if v, ok := ProbeValue(tab, row, "A"); !ok || v != predindex.Num(7) {
		t.Fatalf("ProbeValue(A) = %v, %v", v, ok)
	}
	if _, ok := ProbeValue(tab, row, "b"); ok {
		t.Fatal("NULL cell must probe as absent")
	}
	if _, ok := ProbeValue(tab, row, "s"); ok {
		t.Fatal("cell beyond short row must probe as absent")
	}
	if _, ok := ProbeValue(tab, row, "ghost"); ok {
		t.Fatal("unknown column must probe as absent")
	}
	if v, ok := ProbeValue(tab, row, "x"); !ok || v != predindex.Num(1.5) {
		t.Fatalf("ProbeValue(x) = %v, %v", v, ok)
	}
}
