package sqlmini

import (
	"errors"
	"slices"
	"strings"
	"testing"
	"testing/quick"
)

// paperTable is the R-GMA monitoring table from the paper's workload:
// four integer, eight double and four char(20) values.
func paperTable(t *testing.T) *Table {
	t.Helper()
	src := `CREATE TABLE generator (
		genid INTEGER PRIMARY KEY, seq INTEGER, status_code INTEGER, alarms INTEGER,
		power DOUBLE PRECISION, voltage DOUBLE PRECISION, current DOUBLE PRECISION,
		frequency DOUBLE PRECISION, phase DOUBLE PRECISION, temp DOUBLE PRECISION,
		pressure DOUBLE PRECISION, efficiency DOUBLE PRECISION,
		site CHAR(20), model CHAR(20), status CHAR(20), operator CHAR(20))`
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("parse create: %v", err)
	}
	ct := st.(CreateTable)
	return &ct.Table
}

func TestCreateTablePaperSchema(t *testing.T) {
	tab := paperTable(t)
	if tab.Name != "generator" || len(tab.Columns) != 16 {
		t.Fatalf("table = %+v", tab)
	}
	counts := map[ColType]int{}
	for _, c := range tab.Columns {
		counts[c.Type]++
	}
	if counts[TInteger] != 4 || counts[TDouble] != 8 || counts[TChar] != 4 {
		t.Fatalf("paper column mix wrong: %v", counts)
	}
	if got := tab.PrimaryKey(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("primary key = %v", got)
	}
	if tab.Columns[12].Len != 20 {
		t.Fatalf("char len = %d", tab.Columns[12].Len)
	}
	if tab.ColIndex("POWER") != 4 {
		t.Fatal("case-insensitive column lookup failed")
	}
	if tab.ColIndex("nope") != -1 {
		t.Fatal("missing column index")
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO generator (genid, power, site) VALUES (7, 1.5, 'aberdeen')")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(Insert)
	if ins.Table != "generator" || len(ins.Columns) != 3 || len(ins.Values) != 3 {
		t.Fatalf("insert = %+v", ins)
	}
	if !ins.Values[0].Equal(IntV(7)) || !ins.Values[1].Equal(FloatV(1.5)) || !ins.Values[2].Equal(StringV("aberdeen")) {
		t.Fatalf("values = %v", ins.Values)
	}
}

func TestParseInsertNegativeAndNull(t *testing.T) {
	st, err := Parse("INSERT INTO t VALUES (-5, NULL, -2.5, 'x')")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(Insert)
	if !ins.Values[0].Equal(IntV(-5)) || !ins.Values[1].IsNull() || !ins.Values[2].Equal(FloatV(-2.5)) {
		t.Fatalf("values = %v", ins.Values)
	}
}

func TestParseSelect(t *testing.T) {
	st, err := Parse("SELECT genid, power FROM generator WHERE power > 1.0 AND site = 'aberdeen'")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(Select)
	if sel.Table != "generator" || len(sel.Columns) != 2 || sel.Where == nil {
		t.Fatalf("select = %+v", sel)
	}
	st2, err := Parse("SELECT * FROM generator")
	if err != nil {
		t.Fatal(err)
	}
	if sel2 := st2.(Select); sel2.Columns != nil || sel2.Where != nil {
		t.Fatalf("select * = %+v", sel2)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"DROP TABLE x",
		"CREATE TABLE",
		"CREATE TABLE t (x BLOB)",
		"CREATE TABLE t (x INTEGER, x REAL)",
		"CREATE TABLE t (x DOUBLE)",
		"CREATE TABLE t (s CHAR)",
		"INSERT INTO t VALUES",
		"INSERT INTO t (a, b) VALUES (1)",
		"INSERT INTO t VALUES (1,)",
		"INSERT INTO t VALUES (-'x')",
		"SELECT FROM t",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a",
		"SELECT a FROM t WHERE a ==",
		"SELECT a FROM t WHERE (a = 1",
		"SELECT a FROM t WHERE a = 1 garbage",
		"SELECT a FROM t WHERE 'lit' = a",
		"INSERT INTO t VALUES ('unterminated)",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		} else if !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) error not ErrSyntax: %v", src, err)
		}
	}
}

func row(t *testing.T, tab *Table, genid int64, power float64, site string) Row {
	t.Helper()
	r := make(Row, len(tab.Columns))
	r[tab.ColIndex("genid")] = IntV(genid)
	r[tab.ColIndex("power")] = FloatV(power)
	r[tab.ColIndex("site")] = StringV(site)
	return r
}

func sel(t *testing.T, src string) Select {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st.(Select)
}

func TestWhereEvaluation(t *testing.T) {
	tab := paperTable(t)
	r := row(t, tab, 7, 1.5, "aberdeen")
	cases := []struct {
		where string
		want  bool
	}{
		{"genid = 7", true},
		{"genid <> 7", false},
		{"genid < 10", true},
		{"genid >= 8", false},
		{"power > 1.0", true},
		{"power > 1", true}, // int literal vs double column
		{"site = 'aberdeen'", true},
		{"site < 'b'", true}, // SQL string ordering
		{"site = 'cardiff'", false},
		{"genid = 7 AND power > 1", true},
		{"genid = 7 AND power > 2", false},
		{"genid = 9 OR site = 'aberdeen'", true},
		{"NOT genid = 9", true},
		{"seq IS NULL", true},
		{"seq IS NOT NULL", false},
		{"genid IS NOT NULL", true},
		{"(genid = 7 OR genid = 8) AND power > 1", true},
	}
	for _, c := range cases {
		s := sel(t, "SELECT * FROM generator WHERE "+c.where)
		if got := Matches(tab, s, r); got != c.want {
			t.Errorf("WHERE %s = %v, want %v", c.where, got, c.want)
		}
	}
}

func TestWhereNullThreeValued(t *testing.T) {
	tab := paperTable(t)
	r := row(t, tab, 7, 1.5, "aberdeen") // seq is NULL
	// NULL comparisons are unknown -> no match; NOT unknown stays unknown.
	for _, where := range []string{"seq = 1", "seq <> 1", "NOT seq = 1", "seq < 5 AND genid = 7"} {
		s := sel(t, "SELECT * FROM generator WHERE "+where)
		if Matches(tab, s, r) {
			t.Errorf("WHERE %s matched a NULL row", where)
		}
	}
	// Unknown OR true = true.
	s := sel(t, "SELECT * FROM generator WHERE seq = 1 OR genid = 7")
	if !Matches(tab, s, r) {
		t.Error("unknown OR true should match")
	}
}

func TestTypeMismatchUnknown(t *testing.T) {
	tab := paperTable(t)
	r := row(t, tab, 7, 1.5, "aberdeen")
	s := sel(t, "SELECT * FROM generator WHERE site = 5")
	if Matches(tab, s, r) {
		t.Error("string/number mismatch matched")
	}
	s2 := sel(t, "SELECT * FROM generator WHERE nosuchcol = 5")
	if Matches(tab, s2, r) {
		t.Error("missing column matched")
	}
}

func TestCheckRow(t *testing.T) {
	tab := paperTable(t)
	good := row(t, tab, 1, 2.5, "x")
	if err := CheckRow(tab, good); err != nil {
		t.Fatalf("good row rejected: %v", err)
	}
	short := Row{IntV(1)}
	if err := CheckRow(tab, short); err == nil {
		t.Fatal("short row accepted")
	}
	bad := row(t, tab, 1, 2.5, "x")
	bad[tab.ColIndex("genid")] = StringV("oops")
	if err := CheckRow(tab, bad); err == nil {
		t.Fatal("type mismatch accepted")
	}
	long := row(t, tab, 1, 2.5, strings.Repeat("z", 21))
	if err := CheckRow(tab, long); err == nil {
		t.Fatal("over-length CHAR accepted")
	}
	intoDouble := row(t, tab, 1, 2.5, "x")
	intoDouble[tab.ColIndex("power")] = IntV(3)
	if err := CheckRow(tab, intoDouble); err != nil {
		t.Fatalf("int into double rejected: %v", err)
	}
}

func TestReorderInsert(t *testing.T) {
	tab := paperTable(t)
	st, _ := Parse("INSERT INTO generator (power, genid, site) VALUES (1.5, 7, 'aberdeen')")
	r, err := ReorderInsert(tab, st.(Insert))
	if err != nil {
		t.Fatal(err)
	}
	if !r[0].Equal(IntV(7)) || !r[4].Equal(FloatV(1.5)) {
		t.Fatalf("reordered = %v", r)
	}
	if !r[1].IsNull() {
		t.Fatal("unnamed column not NULL")
	}
	// Unknown column.
	st2, _ := Parse("INSERT INTO generator (bogus) VALUES (1)")
	if _, err := ReorderInsert(tab, st2.(Insert)); err == nil {
		t.Fatal("unknown column accepted")
	}
	// Full positional insert requires all columns.
	st3, _ := Parse("INSERT INTO generator VALUES (1, 2)")
	if _, err := ReorderInsert(tab, st3.(Insert)); err == nil {
		t.Fatal("short positional insert accepted")
	}
}

func TestProject(t *testing.T) {
	tab := paperTable(t)
	r := row(t, tab, 7, 1.5, "aberdeen")
	s := sel(t, "SELECT site, genid FROM generator")
	got, err := Project(tab, s, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Equal(StringV("aberdeen")) || !got[1].Equal(IntV(7)) {
		t.Fatalf("projected = %v", got)
	}
	star := sel(t, "SELECT * FROM generator")
	all, err := Project(tab, star, r)
	if err != nil || len(all) != len(tab.Columns) {
		t.Fatalf("star projection: %v %v", all, err)
	}
	bad := sel(t, "SELECT nope FROM generator")
	if _, err := Project(tab, bad, r); err == nil {
		t.Fatal("bad projection accepted")
	}
}

func TestFormatInsertRoundTrip(t *testing.T) {
	tab := paperTable(t)
	r := row(t, tab, 7, 1.5, "it's")
	src := FormatInsert(tab, r)
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("re-parse %q: %v", src, err)
	}
	r2, err := ReorderInsert(tab, st.(Insert))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r {
		if !r[i].Equal(r2[i]) {
			t.Fatalf("round trip differs at %d: %v vs %v", i, r[i], r2[i])
		}
	}
}

func TestValueStrings(t *testing.T) {
	if Null().String() != "NULL" || IntV(-3).String() != "-3" || FloatV(1.5).String() != "1.5" {
		t.Fatal("value strings")
	}
	if StringV("a'b").String() != "'a''b'" {
		t.Fatalf("quote escape = %s", StringV("a'b").String())
	}
	if TDouble.String() != "DOUBLE PRECISION" || TInteger.String() != "INTEGER" {
		t.Fatal("type names")
	}
}

// Property: FormatInsert always re-parses to the identical row.
func TestPropertyInsertRoundTrip(t *testing.T) {
	tab := &Table{Name: "t", Columns: []Column{
		{Name: "a", Type: TInteger},
		{Name: "b", Type: TDouble},
		{Name: "c", Type: TVarchar, Len: 1000},
	}}
	f := func(a int64, b float64, c string) bool {
		if strings.ContainsAny(c, "\x00") || len(c) > 1000 {
			return true
		}
		r := Row{IntV(a), FloatV(b), StringV(c)}
		st, err := Parse(FormatInsert(tab, r))
		if err != nil {
			return false
		}
		r2, err := ReorderInsert(tab, st.(Insert))
		if err != nil {
			return false
		}
		return r[0].Equal(r2[0]) && r[1].Equal(r2[1]) && r[2].Equal(r2[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: WHERE threshold agrees with direct comparison.
func TestPropertyWhereThreshold(t *testing.T) {
	tab := &Table{Name: "t", Columns: []Column{{Name: "x", Type: TInteger}}}
	s := sel(t, "SELECT * FROM t WHERE x < 100")
	f := func(x int16) bool {
		return Matches(tab, s, Row{IntV(int64(x))}) == (int64(x) < 100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParseInsert(b *testing.B) {
	src := "INSERT INTO generator (genid, power, site) VALUES (7, 1.5, 'aberdeen')"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWhereEval(b *testing.B) {
	tab := &Table{Name: "t", Columns: []Column{{Name: "x", Type: TInteger}, {Name: "s", Type: TVarchar, Len: 50}}}
	st, _ := Parse("SELECT * FROM t WHERE x < 100 AND s = 'aberdeen'")
	s := st.(Select)
	r := Row{IntV(7), StringV("aberdeen")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Matches(tab, s, r) {
			b.Fatal("no match")
		}
	}
}

func TestCreateSQLRoundTrip(t *testing.T) {
	tables := []*Table{
		{Name: "t1", Columns: []Column{
			{Name: "id", Type: TInteger, Primary: true},
			{Name: "x", Type: TReal},
			{Name: "y", Type: TDouble},
			{Name: "s", Type: TChar, Len: 20},
			{Name: "v", Type: TVarchar, Len: 64},
		}},
		{Name: "nokey", Columns: []Column{{Name: "a", Type: TInteger}, {Name: "b", Type: TInteger}}},
	}
	for _, tab := range tables {
		sql := tab.CreateSQL()
		st, err := Parse(sql)
		if err != nil {
			t.Fatalf("%s: Parse(CreateSQL) = %v\nsql: %s", tab.Name, err, sql)
		}
		got := st.(CreateTable).Table
		if got.Name != tab.Name || !slices.Equal(got.Columns, tab.Columns) {
			t.Errorf("%s: round-trip changed schema\nsql:  %s\ngot:  %+v\nwant: %+v", tab.Name, sql, got, *tab)
		}
		if got2 := got.CreateSQL(); got2 != sql {
			t.Errorf("%s: CreateSQL not a fixpoint: %q then %q", tab.Name, sql, got2)
		}
	}
}

func TestInsertSQLRoundTrip(t *testing.T) {
	tab := &Table{Name: "t", Columns: []Column{
		{Name: "id", Type: TInteger, Primary: true},
		{Name: "f", Type: TDouble},
		{Name: "g", Type: TDouble},
		{Name: "s", Type: TVarchar, Len: 50},
		{Name: "n", Type: TInteger},
	}}
	rows := []Row{
		{IntV(7), FloatV(1.5), FloatV(480), StringV("it's"), Null()},
		{IntV(-3), FloatV(-0.25), FloatV(1e21), StringV(""), IntV(-9)},
	}
	for _, row := range rows {
		sql := InsertSQL(tab.Name, row)
		st, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(InsertSQL) = %v\nsql: %s", err, sql)
		}
		got, err := ReorderInsert(tab, st.(Insert))
		if err != nil {
			t.Fatalf("ReorderInsert: %v\nsql: %s", err, sql)
		}
		if !slices.Equal(got, row) {
			t.Errorf("round-trip changed row\nsql:  %s\ngot:  %v\nwant: %v", sql, got, row)
		}
	}
}
