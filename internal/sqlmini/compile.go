package sqlmini

// This file implements the WHERE-predicate compilation pass, the same
// playbook internal/selector applies to JMS selectors. Parse builds an
// Expr tree and Compile flattens it into a Program: a compact
// instruction slice executed by a small stack machine over raw tri
// values (1 true, 0 false, -1 unknown), with no per-node interface
// dispatch and no per-row column-name resolution. The compiler performs
// three optimisations on the way down:
//
//   - column-slot pre-resolution: column names are resolved against the
//     schema once at compile time, so evaluating a predicate against a
//     row is a direct index load instead of a case-insensitive name
//     scan per row;
//   - constant folding: subtrees whose verdict is row-independent (a
//     NULL comparison literal, a column absent from the schema, a
//     logical combination forced by a folded operand) are evaluated at
//     compile time and emitted as a single constant push;
//   - fused compare ops: `col OP literal` — the workload's dominant
//     shape — compiles to one instruction specialised on the literal's
//     kind, with the operator pre-decoded.
//
// The compiled evaluator is semantically bit-identical to the
// interpreted Expr.Eval path, including SQL three-valued NULL
// propagation, numeric comparison via float64 promotion, the
// type-mismatch-is-UNKNOWN rule, and short rows (a row narrower than
// the schema reads as NULL columns under IS NULL and UNKNOWN under
// comparison, exactly as Eval behaves). The conformance suite in
// compile_test.go runs every case against both evaluators.

type popcode uint8

const (
	opTri       popcode = iota // push constant tri a
	opCmpNum                   // push row[slot] CMP numeric literal litF
	opCmpStr                   // push row[slot] CMP string literal litS
	opPredNull                 // push IS [NOT] NULL verdict for row[slot]
	opTriNot                   // pop v; push NOT v
	opTriAnd                   // pop r, l; push l AND r
	opTriOr                    // pop r, l; push l OR r
	opPJmpFalse                // if top is FALSE jump to a (top stays)
	opPJmpTrue                 // if top is TRUE jump to a (top stays)
	opEvalExpr                 // push exprs[a].Eval(schema, row) — fallback for foreign Expr impls
)

// pCmpCode is a pre-resolved comparison operator. pCmpBad replicates the
// interpreter's behaviour for an operator string it does not recognise:
// the verdict is FALSE once both operands pass the NULL and type checks.
type pCmpCode uint8

const (
	pCmpEQ pCmpCode = iota
	pCmpNE
	pCmpLT
	pCmpLE
	pCmpGT
	pCmpGE
	pCmpBad
)

func pCmpCodeOf(op string) pCmpCode {
	switch op {
	case "=":
		return pCmpEQ
	case "<>":
		return pCmpNE
	case "<":
		return pCmpLT
	case "<=":
		return pCmpLE
	case ">":
		return pCmpGT
	case ">=":
		return pCmpGE
	}
	return pCmpBad
}

func pCmpVerdict(code pCmpCode, c int) int {
	ok := false
	switch code {
	case pCmpEQ:
		ok = c == 0
	case pCmpNE:
		ok = c != 0
	case pCmpLT:
		ok = c < 0
	case pCmpLE:
		ok = c <= 0
	case pCmpGT:
		ok = c > 0
	case pCmpGE:
		ok = c >= 0
	}
	if ok {
		return 1
	}
	return 0
}

type pIns struct {
	op   popcode
	not  bool     // IS NOT NULL
	cmp  pCmpCode // fused comparison operator
	slot int32    // pre-resolved column index
	a    int32    // constant tri / jump target / fallback expr index
	litF float64  // numeric comparison literal, promoted once
	litS string   // string comparison literal
}

// Program is the compiled form of a SELECT's WHERE predicate, bound to
// the schema it was compiled against. A nil Program (or one compiled
// from a nil predicate) matches every row. Programs are immutable after
// Compile and safe for concurrent use from any goroutine.
type Program struct {
	ins      []pIns
	schema   *Table // only for the opEvalExpr fallback
	exprs    []Expr // foreign Expr implementations, interpreted in place
	maxStack int

	// fc short-circuits the instruction loop for single-comparison
	// programs ("genid < 10" and friends), the dominant predicate shape
	// in the paper's workload.
	fc *pIns
}

// Compiled compiles the SELECT's WHERE predicate against a schema. The
// returned program is valid only for rows of that schema (column slots
// are resolved at compile time).
func (sel Select) Compiled(t *Table) *Program { return Compile(t, sel.Where) }

// Compile compiles a WHERE predicate tree against a schema. A nil
// predicate compiles to the empty always-true program.
func Compile(t *Table, e Expr) *Program {
	p := &Program{schema: t}
	if e == nil {
		return p
	}
	c := &pCompiler{p: p, schema: t}
	c.compile(e)
	if len(p.ins) == 1 {
		switch p.ins[0].op {
		case opCmpNum, opCmpStr, opPredNull:
			p.fc = &p.ins[0]
		}
	}
	return p
}

type pCompiler struct {
	p      *Program
	schema *Table
	depth  int
}

func (c *pCompiler) emit(i pIns, delta int) int {
	c.p.ins = append(c.p.ins, i)
	c.depth += delta
	if c.depth > c.p.maxStack {
		c.p.maxStack = c.depth
	}
	return len(c.p.ins) - 1
}

// fold attempts compile-time evaluation of a subtree. A subtree folds
// when its verdict is the same for every row: comparisons against a
// NULL literal or a column the schema lacks, IS NULL on a missing
// column, and logical nodes whose folded operands force the result
// (AND with a FALSE side, OR with a TRUE side, and combinations of two
// folded sides). Expressions are pure, so folding an operand the
// interpreter would have evaluated is unobservable.
func (c *pCompiler) fold(e Expr) (int, bool) {
	switch v := e.(type) {
	case *cmpNode:
		if c.schema.ColIndex(v.col) < 0 || v.lit.IsNull() {
			return -1, true
		}
	case *isNullNode:
		if c.schema.ColIndex(v.col) < 0 {
			// A missing column reads as NULL: IS NULL is TRUE, IS NOT
			// NULL is FALSE.
			if v.not {
				return 0, true
			}
			return 1, true
		}
	case *notNode:
		if t, ok := c.fold(v.inner); ok {
			return triNotP(t), true
		}
	case *andNode:
		lt, lok := c.fold(v.l)
		rt, rok := c.fold(v.r)
		if lok && lt == 0 || rok && rt == 0 {
			return 0, true
		}
		if lok && rok {
			return triAndP(lt, rt), true
		}
	case *orNode:
		lt, lok := c.fold(v.l)
		rt, rok := c.fold(v.r)
		if lok && lt == 1 || rok && rt == 1 {
			return 1, true
		}
		if lok && rok {
			return triOrP(lt, rt), true
		}
	}
	return 0, false
}

func (c *pCompiler) compile(e Expr) {
	if t, ok := c.fold(e); ok {
		c.emit(pIns{op: opTri, a: int32(t)}, 1)
		return
	}
	switch v := e.(type) {
	case *cmpNode:
		slot := int32(c.schema.ColIndex(v.col)) // >= 0: folded otherwise
		i := pIns{slot: slot, cmp: pCmpCodeOf(v.op)}
		if v.lit.Kind == VString {
			i.op = opCmpStr
			i.litS = v.lit.Str
		} else {
			i.op = opCmpNum
			i.litF = v.lit.AsFloat()
		}
		c.emit(i, 1)
	case *isNullNode:
		c.emit(pIns{op: opPredNull, not: v.not, slot: int32(c.schema.ColIndex(v.col))}, 1)
	case *notNode:
		c.compile(v.inner)
		c.emit(pIns{op: opTriNot}, 0)
	case *andNode:
		// A folded left operand combines without a jump (FALSE already
		// folded the whole node away); a folded TRUE left is the
		// identity and vanishes entirely.
		if lt, ok := c.fold(v.l); ok {
			if lt == 1 {
				c.compile(v.r)
				return
			}
			c.emit(pIns{op: opTri, a: int32(lt)}, 1)
			c.compile(v.r)
			c.emit(pIns{op: opTriAnd}, -1)
			return
		}
		if rt, ok := c.fold(v.r); ok && rt == 1 {
			c.compile(v.l)
			return
		}
		// Short-circuit: a FALSE left operand jumps over the right side
		// and the combine, leaving itself as the result — the
		// interpreter never evaluates the right side either.
		c.compile(v.l)
		j := c.emit(pIns{op: opPJmpFalse}, 0)
		c.compile(v.r)
		c.emit(pIns{op: opTriAnd}, -1)
		c.p.ins[j].a = int32(len(c.p.ins))
	case *orNode:
		if lt, ok := c.fold(v.l); ok {
			if lt == 0 {
				c.compile(v.r)
				return
			}
			c.emit(pIns{op: opTri, a: int32(lt)}, 1)
			c.compile(v.r)
			c.emit(pIns{op: opTriOr}, -1)
			return
		}
		if rt, ok := c.fold(v.r); ok && rt == 0 {
			c.compile(v.l)
			return
		}
		c.compile(v.l)
		j := c.emit(pIns{op: opPJmpTrue}, 0)
		c.compile(v.r)
		c.emit(pIns{op: opTriOr}, -1)
		c.p.ins[j].a = int32(len(c.p.ins))
	default:
		// An Expr implementation from outside this package: interpret it
		// in place. Everything Parse produces compiles natively.
		c.p.exprs = append(c.p.exprs, e)
		c.emit(pIns{op: opEvalExpr, a: int32(len(c.p.exprs) - 1)}, 1)
	}
}

// triNotP, triAndP and triOrP are the SQL three-valued connectives over
// raw tri values, identical to notNode/andNode/orNode.Eval.
func triNotP(a int) int {
	switch a {
	case 1:
		return 0
	case 0:
		return 1
	}
	return -1
}

func triAndP(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a == 1 && b == 1 {
		return 1
	}
	return -1
}

func triOrP(a, b int) int {
	if a == 1 || b == 1 {
		return 1
	}
	if a == 0 && b == 0 {
		return 0
	}
	return -1
}

// evalIns executes one pushing instruction against a row. The NULL,
// short-row and type-mismatch rules replicate cmpNode.Eval and
// isNullNode.Eval exactly.
func (p *Program) evalIns(i *pIns, row Row) int {
	switch i.op {
	case opTri:
		return int(i.a)
	case opCmpNum:
		if int(i.slot) >= len(row) {
			return -1
		}
		v := row[i.slot]
		if v.Kind == VNull {
			return -1
		}
		if v.Kind == VString {
			return -1 // type mismatch
		}
		a, b := v.AsFloat(), i.litF
		if a != a || b != b {
			// IEEE unordered (NaN operand): only <> holds, exactly as
			// cmpNode.Eval decides.
			if i.cmp == pCmpNE {
				return 1
			}
			return 0
		}
		c := 0
		switch {
		case a < b:
			c = -1
		case a > b:
			c = 1
		}
		return pCmpVerdict(i.cmp, c)
	case opCmpStr:
		if int(i.slot) >= len(row) {
			return -1
		}
		v := row[i.slot]
		if v.Kind == VNull {
			return -1
		}
		if v.Kind != VString {
			return -1 // type mismatch
		}
		c := 0
		switch {
		case v.Str < i.litS:
			c = -1
		case v.Str > i.litS:
			c = 1
		}
		return pCmpVerdict(i.cmp, c)
	case opPredNull:
		isNull := int(i.slot) >= len(row) || row[i.slot].IsNull()
		if isNull != i.not {
			return 1
		}
		return 0
	}
	return int(p.exprs[i.a].Eval(p.schema, row)) // opEvalExpr
}

// Eval runs the compiled program against a row and returns the SQL
// three-valued verdict: 1 true, 0 false, -1 unknown. A nil or empty
// program is TRUE for every row.
func (p *Program) Eval(row Row) int {
	if p == nil || len(p.ins) == 0 {
		return 1
	}
	if p.fc != nil {
		return p.evalIns(p.fc, row)
	}
	var arr [16]int8
	var stack []int8
	if p.maxStack <= len(arr) {
		stack = arr[:]
	} else {
		stack = make([]int8, p.maxStack)
	}
	sp := 0
	code := p.ins
	for pc := 0; pc < len(code); pc++ {
		in := &code[pc]
		switch in.op {
		case opTriNot:
			stack[sp-1] = int8(triNotP(int(stack[sp-1])))
		case opTriAnd:
			sp--
			stack[sp-1] = int8(triAndP(int(stack[sp-1]), int(stack[sp])))
		case opTriOr:
			sp--
			stack[sp-1] = int8(triOrP(int(stack[sp-1]), int(stack[sp])))
		case opPJmpFalse:
			if stack[sp-1] == 0 {
				pc = int(in.a) - 1
			}
		case opPJmpTrue:
			if stack[sp-1] == 1 {
				pc = int(in.a) - 1
			}
		default:
			stack[sp] = int8(p.evalIns(in, row))
			sp++
		}
	}
	return int(stack[sp-1])
}

// Matches reports whether the program accepts the row (TRUE verdict;
// FALSE and UNKNOWN both reject, per SQL WHERE semantics). It is the
// compiled equivalent of Matches(t, sel, row).
func (p *Program) Matches(row Row) bool { return p.Eval(row) == 1 }

// ConstVerdict reports whether the program's verdict is row-independent,
// and if so what it is. Callers use it to keep always-true predicates
// ("SELECT * FROM t") off the per-row evaluation path entirely.
func (p *Program) ConstVerdict() (int, bool) {
	if p == nil || len(p.ins) == 0 {
		return 1, true
	}
	if len(p.ins) == 1 && p.ins[0].op == opTri {
		return int(p.ins[0].a), true
	}
	return 0, false
}
