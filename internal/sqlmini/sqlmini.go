// Package sqlmini implements the SQL subset that R-GMA exposes on its
// "virtual database": CREATE TABLE, INSERT, and SELECT with WHERE
// predicates. The paper's producers publish monitoring tuples with SQL
// INSERT statements and consumers pose continuous/latest/history SELECT
// queries; R-GMA's content-based filtering is exactly WHERE-predicate
// evaluation, so this package provides the parser, the type system and
// the predicate evaluator the rgma package builds on.
//
// Predicates evaluate two ways: the tree-walking Expr.Eval interpreter
// (the reference baseline) and compiled Programs (Select.Compiled /
// Compile) with column slots pre-resolved against the schema, constant
// subtrees folded and comparisons fused — the same pattern
// internal/selector applies to JMS selectors, proven equivalent by the
// conformance suite in compile_test.go.
//
// Everything in the package is shard-safe in the read direction: parsed
// statements, Tables, Rows and compiled Programs are immutable after
// construction and may be shared freely across goroutines. There is no
// mutable package state.
package sqlmini

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ColType enumerates supported column types (the subset R-GMA's schema
// service supports that the paper's workload uses).
type ColType uint8

// Column types.
const (
	TInteger ColType = iota + 1
	TReal
	TDouble
	TChar
	TVarchar
)

func (t ColType) String() string {
	switch t {
	case TInteger:
		return "INTEGER"
	case TReal:
		return "REAL"
	case TDouble:
		return "DOUBLE PRECISION"
	case TChar:
		return "CHAR"
	case TVarchar:
		return "VARCHAR"
	}
	return "TYPE(?)"
}

// Column is one schema column.
type Column struct {
	Name    string
	Type    ColType
	Len     int  // for CHAR/VARCHAR
	Primary bool // PRIMARY KEY column (R-GMA latest-query identity)
}

// Table is a schema definition.
type Table struct {
	Name    string
	Columns []Column
}

// ColIndex returns the index of a column by name (-1 when absent).
// Column names are case-insensitive, as in SQL.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// PrimaryKey returns the indexes of primary-key columns.
func (t *Table) PrimaryKey() []int {
	var out []int
	for i, c := range t.Columns {
		if c.Primary {
			out = append(out, i)
		}
	}
	return out
}

// CreateSQL renders the schema back to a CREATE TABLE statement that
// Parse accepts and that round-trips to an identical Table. Persistence
// layers journal this canonical form rather than the client's original
// text, so replayed schemas compare equal under sameSchema checks.
func (t *Table) CreateSQL() string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(t.Name)
	sb.WriteString(" (")
	for i, c := range t.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteByte(' ')
		sb.WriteString(c.Type.String())
		if c.Type == TChar || c.Type == TVarchar {
			sb.WriteString("(")
			sb.WriteString(strconv.Itoa(c.Len))
			sb.WriteString(")")
		}
		if c.Primary {
			sb.WriteString(" PRIMARY KEY")
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// InsertSQL renders a row (in table column order) as an INSERT statement
// that Parse accepts and ReorderInsert maps back to the same row —
// Value.String emits exact literal forms (FormatFloat -1 precision), so
// the round-trip is lossless. Persistence layers use it to re-emit
// stored tuples as compacted journal records.
func InsertSQL(table string, row Row) string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO ")
	sb.WriteString(table)
	sb.WriteString(" VALUES (")
	for i, v := range row {
		if i > 0 {
			sb.WriteString(", ")
		}
		if v.Kind == VFloat {
			// Whole floats must not collapse to integer literals — the
			// parser would hand back VInt and the round-trip would change
			// the value's kind.
			s := strconv.FormatFloat(v.F, 'g', -1, 64)
			if !strings.ContainsAny(s, ".eE") {
				s += ".0"
			}
			sb.WriteString(s)
		} else {
			sb.WriteString(v.String())
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// Value is a SQL runtime value.
type Value struct {
	Kind ValueKind
	Int  int64
	F    float64
	Str  string
}

// ValueKind tags Value.
type ValueKind uint8

// Value kinds.
const (
	VNull ValueKind = iota
	VInt
	VFloat
	VString
)

// Null, IntV, FloatV and StringV construct values.
func Null() Value            { return Value{} }
func IntV(n int64) Value     { return Value{Kind: VInt, Int: n} }
func FloatV(f float64) Value { return Value{Kind: VFloat, F: f} }
func StringV(s string) Value { return Value{Kind: VString, Str: s} }

// IsNull reports SQL NULL.
func (v Value) IsNull() bool { return v.Kind == VNull }

// AsFloat promotes numerics.
func (v Value) AsFloat() float64 {
	if v.Kind == VInt {
		return float64(v.Int)
	}
	return v.F
}

// String renders a SQL literal form.
func (v Value) String() string {
	switch v.Kind {
	case VNull:
		return "NULL"
	case VInt:
		return strconv.FormatInt(v.Int, 10)
	case VFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	}
}

// Equal compares values strictly (kind-sensitive, for tests).
func (v Value) Equal(o Value) bool { return v == o }

// Row is one tuple.
type Row []Value

// Stmt is a parsed statement.
type Stmt interface{ stmt() }

// CreateTable is a parsed CREATE TABLE.
type CreateTable struct {
	Table Table
}

// Insert is a parsed INSERT.
type Insert struct {
	Table   string
	Columns []string
	Values  []Value
}

// Select is a parsed SELECT.
type Select struct {
	Columns []string // nil means *
	Table   string
	Where   Expr // nil means no predicate
}

func (CreateTable) stmt() {}
func (Insert) stmt()      {}
func (Select) stmt()      {}

// Expr is a WHERE predicate node.
type Expr interface {
	// Eval returns SQL three-valued logic: 1 true, 0 false, -1 unknown.
	Eval(schema *Table, row Row) int
	String() string
}

// ErrSyntax wraps all parse failures.
var ErrSyntax = errors.New("sqlmini: syntax error")

// --- lexer ---

type sqlToken struct {
	kind byte // 'i' ident/keyword (upper), 'n' number, 's' string, 'p' punct, 0 EOF
	text string
	ival int64
	fval float64
	isF  bool
	pos  int
}

type sqlLexer struct {
	src string
	pos int
}

func (l *sqlLexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("%w: %s at offset %d in %q", ErrSyntax, fmt.Sprintf(format, args...), pos, l.src)
}

func (l *sqlLexer) next() (sqlToken, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return sqlToken{pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
				l.pos++
				continue
			}
			break
		}
		return sqlToken{kind: 'i', text: l.src[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		isF := false
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if c >= '0' && c <= '9' {
				l.pos++
			} else if c == '.' && !isF {
				isF = true
				l.pos++
			} else if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) {
				isF = true
				l.pos++
				if l.src[l.pos] == '+' || l.src[l.pos] == '-' {
					l.pos++
				}
			} else {
				break
			}
		}
		text := l.src[start:l.pos]
		if isF {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return sqlToken{}, l.errf(start, "bad number %q", text)
			}
			return sqlToken{kind: 'n', text: text, fval: f, isF: true, pos: start}, nil
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return sqlToken{}, l.errf(start, "bad number %q", text)
		}
		return sqlToken{kind: 'n', text: text, ival: n, pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return sqlToken{kind: 's', text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		return sqlToken{}, l.errf(start, "unterminated string")
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
		}
		return sqlToken{kind: 'p', text: l.src[start:l.pos], pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return sqlToken{kind: 'p', text: l.src[start:l.pos], pos: start}, nil
	case strings.ContainsRune("=(),*+-/", rune(c)):
		l.pos++
		return sqlToken{kind: 'p', text: string(c), pos: start}, nil
	}
	return sqlToken{}, l.errf(start, "unexpected character %q", string(c))
}

// --- parser ---

type sqlParser struct {
	lex *sqlLexer
	tok sqlToken
}

func (p *sqlParser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *sqlParser) errf(format string, args ...any) error {
	return p.lex.errf(p.tok.pos, format, args...)
}

func (p *sqlParser) keyword() string {
	if p.tok.kind == 'i' {
		return strings.ToUpper(p.tok.text)
	}
	return ""
}

func (p *sqlParser) expectKeyword(kw string) error {
	if p.keyword() != kw {
		return p.errf("expected %s, found %q", kw, p.tok.text)
	}
	return p.advance()
}

func (p *sqlParser) expectPunct(s string) error {
	if p.tok.kind != 'p' || p.tok.text != s {
		return p.errf("expected %q, found %q", s, p.tok.text)
	}
	return p.advance()
}

func (p *sqlParser) ident() (string, error) {
	if p.tok.kind != 'i' {
		return "", p.errf("expected identifier, found %q", p.tok.text)
	}
	name := p.tok.text
	return name, p.advance()
}

// Parse parses one SQL statement.
func Parse(src string) (Stmt, error) {
	p := &sqlParser{lex: &sqlLexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var s Stmt
	var err error
	switch p.keyword() {
	case "CREATE":
		s, err = p.parseCreate()
	case "INSERT":
		s, err = p.parseInsert()
	case "SELECT":
		s, err = p.parseSelect()
	default:
		return nil, p.errf("expected CREATE, INSERT or SELECT")
	}
	if err != nil {
		return nil, err
	}
	if p.tok.kind != 0 {
		return nil, p.errf("trailing input %q", p.tok.text)
	}
	return s, nil
}

func (p *sqlParser) parseCreate() (Stmt, error) {
	if err := p.advance(); err != nil { // CREATE
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	t := Table{Name: name}
	for {
		col, err := p.parseColumn()
		if err != nil {
			return nil, err
		}
		t.Columns = append(t.Columns, col)
		if p.tok.kind == 'p' && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, c := range t.Columns {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return nil, fmt.Errorf("%w: duplicate column %q", ErrSyntax, c.Name)
		}
		seen[lc] = true
	}
	return CreateTable{Table: t}, nil
}

func (p *sqlParser) parseColumn() (Column, error) {
	name, err := p.ident()
	if err != nil {
		return Column{}, err
	}
	col := Column{Name: name}
	switch p.keyword() {
	case "INTEGER", "INT":
		col.Type = TInteger
	case "REAL":
		col.Type = TReal
	case "DOUBLE":
		col.Type = TDouble
		if err := p.advance(); err != nil {
			return Column{}, err
		}
		if p.keyword() != "PRECISION" {
			return Column{}, p.errf("expected PRECISION after DOUBLE")
		}
	case "CHAR", "VARCHAR":
		if p.keyword() == "CHAR" {
			col.Type = TChar
		} else {
			col.Type = TVarchar
		}
		if err := p.advance(); err != nil {
			return Column{}, err
		}
		if err := p.expectPunct("("); err != nil {
			return Column{}, err
		}
		if p.tok.kind != 'n' || p.tok.isF {
			return Column{}, p.errf("expected length")
		}
		col.Len = int(p.tok.ival)
		if err := p.advance(); err != nil {
			return Column{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return Column{}, err
		}
		goto modifiers
	default:
		return Column{}, p.errf("unknown column type %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return Column{}, err
	}
modifiers:
	if p.keyword() == "PRIMARY" {
		if err := p.advance(); err != nil {
			return Column{}, err
		}
		if err := p.expectKeyword("KEY"); err != nil {
			return Column{}, err
		}
		col.Primary = true
	}
	return col, nil
}

func (p *sqlParser) parseInsert() (Stmt, error) {
	if err := p.advance(); err != nil { // INSERT
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := Insert{Table: name}
	if p.tok.kind == 'p' && p.tok.text == "(" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.tok.kind == 'p' && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, v)
		if p.tok.kind == 'p' && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if len(ins.Columns) > 0 && len(ins.Columns) != len(ins.Values) {
		return nil, fmt.Errorf("%w: %d columns but %d values", ErrSyntax, len(ins.Columns), len(ins.Values))
	}
	return ins, nil
}

func (p *sqlParser) parseLiteral() (Value, error) {
	neg := false
	if p.tok.kind == 'p' && (p.tok.text == "-" || p.tok.text == "+") {
		neg = p.tok.text == "-"
		if err := p.advance(); err != nil {
			return Value{}, err
		}
	}
	switch {
	case p.tok.kind == 'n' && p.tok.isF:
		v := p.tok.fval
		if neg {
			v = -v
		}
		return FloatV(v), p.advance()
	case p.tok.kind == 'n':
		v := p.tok.ival
		if neg {
			v = -v
		}
		return IntV(v), p.advance()
	case p.tok.kind == 's':
		if neg {
			return Value{}, p.errf("negated string")
		}
		return StringV(p.tok.text), p.advance()
	case p.keyword() == "NULL":
		if neg {
			return Value{}, p.errf("negated NULL")
		}
		return Null(), p.advance()
	}
	return Value{}, p.errf("expected literal, found %q", p.tok.text)
}

func (p *sqlParser) parseSelect() (Stmt, error) {
	if err := p.advance(); err != nil { // SELECT
		return nil, err
	}
	sel := Select{}
	if p.tok.kind == 'p' && p.tok.text == "*" {
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.Columns = append(sel.Columns, col)
			if p.tok.kind == 'p' && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = name
	if p.keyword() == "WHERE" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	return sel, nil
}

// --- predicate expressions ---

func (p *sqlParser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword() == "OR" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &orNode{left, right}
	}
	return left, nil
}

func (p *sqlParser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword() == "AND" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &andNode{left, right}
	}
	return left, nil
}

func (p *sqlParser) parseNot() (Expr, error) {
	if p.keyword() == "NOT" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &notNode{inner}, nil
	}
	return p.parsePredicate()
}

func (p *sqlParser) parsePredicate() (Expr, error) {
	if p.tok.kind == 'p' && p.tok.text == "(" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.keyword() == "IS" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		not := false
		if p.keyword() == "NOT" {
			not = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &isNullNode{col: col, not: not}, nil
	}
	if p.tok.kind != 'p' || !isSQLCmp(p.tok.text) {
		return nil, p.errf("expected comparison operator, found %q", p.tok.text)
	}
	op := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &cmpNode{col: col, op: op, lit: lit}, nil
}

func isSQLCmp(s string) bool {
	switch s {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

type cmpNode struct {
	col string
	op  string
	lit Value
}

func (n *cmpNode) Eval(schema *Table, row Row) int {
	i := schema.ColIndex(n.col)
	if i < 0 || i >= len(row) {
		return -1
	}
	v := row[i]
	if v.IsNull() || n.lit.IsNull() {
		return -1
	}
	var c int
	switch {
	case v.Kind == VString && n.lit.Kind == VString:
		c = strings.Compare(v.Str, n.lit.Str)
	case v.Kind != VString && n.lit.Kind != VString:
		a, b := v.AsFloat(), n.lit.AsFloat()
		if a != a || b != b {
			// IEEE unordered (NaN operand): only <> holds. The matching
			// index agrees — a NaN value hits no Eq bucket and no
			// interval, and <> extracts Residual.
			if n.op == "<>" {
				return 1
			}
			return 0
		}
		switch {
		case a < b:
			c = -1
		case a > b:
			c = 1
		}
	default:
		return -1 // type mismatch
	}
	ok := false
	switch n.op {
	case "=":
		ok = c == 0
	case "<>":
		ok = c != 0
	case "<":
		ok = c < 0
	case "<=":
		ok = c <= 0
	case ">":
		ok = c > 0
	case ">=":
		ok = c >= 0
	}
	if ok {
		return 1
	}
	return 0
}

func (n *cmpNode) String() string { return fmt.Sprintf("%s %s %s", n.col, n.op, n.lit) }

type isNullNode struct {
	col string
	not bool
}

func (n *isNullNode) Eval(schema *Table, row Row) int {
	i := schema.ColIndex(n.col)
	isNull := i < 0 || i >= len(row) || row[i].IsNull()
	if isNull != n.not {
		return 1
	}
	return 0
}

func (n *isNullNode) String() string {
	if n.not {
		return n.col + " IS NOT NULL"
	}
	return n.col + " IS NULL"
}

type andNode struct{ l, r Expr }

func (n *andNode) Eval(s *Table, row Row) int {
	a := n.l.Eval(s, row)
	if a == 0 {
		return 0
	}
	b := n.r.Eval(s, row)
	if b == 0 {
		return 0
	}
	if a == 1 && b == 1 {
		return 1
	}
	return -1
}
func (n *andNode) String() string { return "(" + n.l.String() + " AND " + n.r.String() + ")" }

type orNode struct{ l, r Expr }

func (n *orNode) Eval(s *Table, row Row) int {
	a := n.l.Eval(s, row)
	if a == 1 {
		return 1
	}
	b := n.r.Eval(s, row)
	if b == 1 {
		return 1
	}
	if a == 0 && b == 0 {
		return 0
	}
	return -1
}
func (n *orNode) String() string { return "(" + n.l.String() + " OR " + n.r.String() + ")" }

type notNode struct{ inner Expr }

func (n *notNode) Eval(s *Table, row Row) int {
	switch n.inner.Eval(s, row) {
	case 1:
		return 0
	case 0:
		return 1
	}
	return -1
}
func (n *notNode) String() string { return "NOT " + n.inner.String() }

// --- helpers used by the rgma engine ---

// CheckRow validates a row against a schema: length, types and CHAR
// length limits. Integers are accepted into REAL/DOUBLE columns.
func CheckRow(t *Table, row Row) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("sqlmini: row has %d values, table %s has %d columns", len(row), t.Name, len(t.Columns))
	}
	for i, v := range row {
		if v.IsNull() {
			continue
		}
		col := t.Columns[i]
		switch col.Type {
		case TInteger:
			if v.Kind != VInt {
				return fmt.Errorf("sqlmini: column %s wants INTEGER, got %s", col.Name, v)
			}
		case TReal, TDouble:
			if v.Kind != VInt && v.Kind != VFloat {
				return fmt.Errorf("sqlmini: column %s wants numeric, got %s", col.Name, v)
			}
		case TChar, TVarchar:
			if v.Kind != VString {
				return fmt.Errorf("sqlmini: column %s wants string, got %s", col.Name, v)
			}
			if col.Len > 0 && len(v.Str) > col.Len {
				return fmt.Errorf("sqlmini: column %s value exceeds length %d", col.Name, col.Len)
			}
		}
	}
	return nil
}

// ReorderInsert maps an INSERT's values into schema column order,
// filling unnamed columns with NULL. An INSERT without a column list must
// cover every column in order.
func ReorderInsert(t *Table, ins Insert) (Row, error) {
	if len(ins.Columns) == 0 {
		if len(ins.Values) != len(t.Columns) {
			return nil, fmt.Errorf("sqlmini: INSERT has %d values, table %s has %d columns", len(ins.Values), t.Name, len(t.Columns))
		}
		row := make(Row, len(ins.Values))
		copy(row, ins.Values)
		return row, CheckRow(t, row)
	}
	row := make(Row, len(t.Columns))
	for i, col := range ins.Columns {
		idx := t.ColIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("sqlmini: table %s has no column %q", t.Name, col)
		}
		row[idx] = ins.Values[i]
	}
	return row, CheckRow(t, row)
}

// Project applies a SELECT's column list to a row.
func Project(t *Table, sel Select, row Row) (Row, error) {
	if sel.Columns == nil {
		out := make(Row, len(row))
		copy(out, row)
		return out, nil
	}
	out := make(Row, len(sel.Columns))
	for i, col := range sel.Columns {
		idx := t.ColIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("sqlmini: table %s has no column %q", t.Name, col)
		}
		out[i] = row[idx]
	}
	return out, nil
}

// Matches reports whether a row satisfies a SELECT's WHERE clause
// (true when there is no predicate; SQL semantics: only TRUE matches).
func Matches(t *Table, sel Select, row Row) bool {
	if sel.Where == nil {
		return true
	}
	return sel.Where.Eval(t, row) == 1
}

// FormatInsert renders an INSERT statement for a table and row, the form
// the R-GMA producer API puts on the wire.
func FormatInsert(t *Table, row Row) string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO ")
	sb.WriteString(t.Name)
	sb.WriteString(" (")
	for i, c := range t.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
	}
	sb.WriteString(") VALUES (")
	for i, v := range row {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteString(")")
	return sb.String()
}
