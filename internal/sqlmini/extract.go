package sqlmini

import (
	"math"
	"strings"

	"gridmon/internal/predindex"
)

var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)

// This file extracts *required keys* from WHERE predicates for the
// content-based matching index (internal/predindex), mirroring the Eval
// semantics in sqlmini.go. Extraction only ever widens — an over-wide
// key costs candidates (the compiled program rejects them), a narrow
// one would lose tuples — so anything subtle falls to Residual:
//
//   - `col = literal`: Eq on the literal's canonical value. Numerics
//     canonicalize through float64 because Eval compares every numeric
//     pair via AsFloat (see predindex.KNum); strings compare exactly.
//   - `col < n`, `<=`, `>`, `>=` with a *numeric* literal: a Range
//     widened to the inclusive interval. With a *string* literal the
//     comparison is real string ordering (strings.Compare), which the
//     index does not model → Residual.
//   - any comparison with a NULL literal: always UNKNOWN → Never.
//   - AND combines via predindex.And, OR via predindex.Or.
//   - NOT, `<>`, IS [NOT] NULL: Residual (IS NULL is TRUE exactly when
//     the probe has no value to hash, so it can never be indexed).
//   - Expr implementations from outside this package: Residual.
//
// Column names are case-folded to lower case (ColIndex is
// case-insensitive), so `Host = 'x'` and `host = 'y'` share one
// per-attribute plan.

// RequiredKey returns the required-conjunct key of a WHERE predicate.
// A nil predicate (no WHERE) matches every row and is Residual.
func RequiredKey(e Expr) predindex.Key {
	switch n := e.(type) {
	case nil:
		return predindex.ResidualKey()
	case *cmpNode:
		return cmpKey(n)
	case *andNode:
		return predindex.And(RequiredKey(n.l), RequiredKey(n.r))
	case *orNode:
		return predindex.Or(RequiredKey(n.l), RequiredKey(n.r))
	}
	// isNullNode, notNode, foreign Expr implementations.
	return predindex.ResidualKey()
}

func cmpKey(n *cmpNode) predindex.Key {
	if n.lit.IsNull() {
		return predindex.NeverKey() // NULL literal: always UNKNOWN
	}
	attr := strings.ToLower(n.col)
	switch n.op {
	case "=":
		switch n.lit.Kind {
		case VInt:
			return predindex.EqKey(attr, predindex.Num(float64(n.lit.Int)))
		case VFloat:
			if n.lit.F != n.lit.F {
				// `= NaN` is FALSE for every row (IEEE, as Eval decides) —
				// and a NaN bucket could never be probed anyway.
				return predindex.NeverKey()
			}
			return predindex.EqKey(attr, predindex.Num(n.lit.F))
		case VString:
			return predindex.EqKey(attr, predindex.Str(n.lit.Str))
		}
		return predindex.ResidualKey()
	case "<", "<=", ">", ">=":
		if n.lit.Kind == VString {
			// SQL string ordering is real here; not modeled by the index.
			return predindex.ResidualKey()
		}
		b := n.lit.AsFloat()
		if n.op == "<" || n.op == "<=" {
			return predindex.RangeKey(attr, negInf, b)
		}
		return predindex.RangeKey(attr, b, posInf)
	}
	// "<>" can be TRUE for almost any value.
	return predindex.ResidualKey()
}

// ProbeValue resolves one column of a row into the canonical predindex
// value domain, for probing a matching index built over WHERE keys.
// ok=false means the column is absent, out of the row's range, or NULL
// — no Eq/Range conjunct over it can be TRUE.
func ProbeValue(t *Table, row Row, col string) (predindex.Value, bool) {
	i := t.ColIndex(col)
	if i < 0 || i >= len(row) {
		return predindex.Value{}, false
	}
	switch v := row[i]; v.Kind {
	case VInt:
		return predindex.Num(float64(v.Int)), true
	case VFloat:
		return predindex.Num(v.F), true
	case VString:
		return predindex.Str(v.Str), true
	}
	return predindex.Value{}, false
}
