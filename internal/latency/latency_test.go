package latency

import (
	"testing"
	"time"
)

func TestPercentilesExactUnderCap(t *testing.T) {
	r := NewRecorder(0)
	// 1ms..100ms, shuffled enough by stride to prove sorting happens.
	for i := 0; i < 100; i++ {
		r.Record(time.Duration((i*37)%100+1) * time.Millisecond)
	}
	s := r.Summarize()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 != 50*time.Millisecond || s.P95 != 95*time.Millisecond || s.P99 != 99*time.Millisecond {
		t.Fatalf("percentiles = %v / %v / %v", s.P50, s.P95, s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
}

func TestMergeCombinesWorkers(t *testing.T) {
	a, b := NewRecorder(0), NewRecorder(0)
	for i := 1; i <= 50; i++ {
		a.Record(time.Duration(i) * time.Millisecond)
	}
	for i := 51; i <= 100; i++ {
		b.Record(time.Duration(i) * time.Millisecond)
	}
	a.Merge(b)
	s := a.Summarize()
	if s.Count != 100 || s.P50 != 50*time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("merged summary = %+v", s)
	}
}

func TestReservoirBoundsMemory(t *testing.T) {
	r := NewRecorder(64)
	for i := 0; i < 10_000; i++ {
		r.Record(time.Millisecond)
	}
	if len(r.samples) != 64 {
		t.Fatalf("retained %d samples, cap 64", len(r.samples))
	}
	s := r.Summarize()
	if s.Count != 10_000 || s.P50 != time.Millisecond {
		t.Fatalf("summary = %+v", s)
	}
}

func TestEmptySummary(t *testing.T) {
	if s := NewRecorder(0).Summarize(); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
	if got := (Summary{}).String(); got != "no samples" {
		t.Fatalf("empty string = %q", got)
	}
}
