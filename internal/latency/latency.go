// Package latency collects per-operation latency samples and reports
// the tail percentiles load tools print at exit (cmd/gridpub,
// cmd/rgmaload, cmd/gridbench). A Recorder is single-goroutine by
// design — each worker owns one and the driver merges them after the
// workers join — so the record path is an append, not a lock.
package latency

import (
	"fmt"
	"slices"
	"time"
)

// DefaultCap bounds a Recorder's retained samples. A bounded load run
// (tens of thousands of operations per worker) retains everything and
// the percentiles are exact; past the cap, reservoir sampling keeps a
// uniform subset so an unbounded run's summary stays representative
// without unbounded memory.
const DefaultCap = 1 << 16

// Recorder accumulates duration samples for one worker. Not safe for
// concurrent use; merge recorders after their goroutines join.
type Recorder struct {
	samples []int64 // ns, uniformly sampled once past cap
	count   uint64  // all samples ever recorded
	max     int64
	cap     int
	rng     uint64 // xorshift state for reservoir replacement
}

// NewRecorder returns a Recorder retaining at most capacity samples
// (0 = DefaultCap).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Recorder{cap: capacity, rng: 0x9e3779b97f4a7c15}
}

// Record adds one sample (Algorithm R once the reservoir is full).
func (r *Recorder) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	r.count++
	if ns > r.max {
		r.max = ns
	}
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, ns)
		return
	}
	// xorshift64*: cheap, deterministic, no global rand contention.
	r.rng ^= r.rng << 13
	r.rng ^= r.rng >> 7
	r.rng ^= r.rng << 17
	if i := r.rng % r.count; i < uint64(len(r.samples)) {
		r.samples[i] = ns
	}
}

// Merge folds another recorder's retained samples into this one
// (truncating to this recorder's cap). Counts and maxima always merge
// exactly; percentiles stay exact as long as the combined retained
// samples fit the cap.
func (r *Recorder) Merge(o *Recorder) {
	if o == nil {
		return
	}
	r.count += o.count
	if o.max > r.max {
		r.max = o.max
	}
	for _, ns := range o.samples {
		if len(r.samples) < r.cap {
			r.samples = append(r.samples, ns)
		} else {
			r.rng ^= r.rng << 13
			r.rng ^= r.rng >> 7
			r.rng ^= r.rng << 17
			r.samples[r.rng%uint64(len(r.samples))] = ns
		}
	}
}

// Summary is the percentile report for one recorder.
type Summary struct {
	Count uint64
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Summarize sorts the retained samples and reads the nearest-rank
// percentiles. A recorder with no samples yields the zero Summary.
func (r *Recorder) Summarize() Summary {
	if len(r.samples) == 0 {
		return Summary{}
	}
	sorted := slices.Clone(r.samples)
	slices.Sort(sorted)
	rank := func(q float64) time.Duration {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return time.Duration(sorted[i])
	}
	return Summary{
		Count: r.count,
		P50:   rank(0.50),
		P95:   rank(0.95),
		P99:   rank(0.99),
		Max:   time.Duration(r.max),
	}
}

// String renders the summary the way the load tools log it.
func (s Summary) String() string {
	if s.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("p50=%v p95=%v p99=%v max=%v (n=%d)",
		s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond), s.Count)
}
