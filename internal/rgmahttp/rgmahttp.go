// Package rgmahttp serves the R-GMA virtual database over real HTTP, the
// transport the original gLite implementation used (Java servlets on
// Tomcat). It is a thin JSON binding over the transport-neutral
// rgmacore.Core — the same core internal/rgmabin drives over persistent
// binary connections — and reuses the registry, tuple-store and SQL
// components the simulator validates: producers POST SQL INSERT
// statements, consumers create continuous/latest/history queries and
// poll with GET, exactly like the paper's subscriber polling its
// consumer every 100 ms.
//
// # Concurrency
//
// All shared state lives in the core, which is sharded the way the
// broker core is (lock domains, not worker goroutines), so request
// handling runs on the HTTP server's connection goroutines and scales
// with them; see the rgmacore package comment for the lock families and
// the ordering contract. Consumer WHERE predicates are compiled once at
// create time (sqlmini.Program) and evaluated on the insert fast path.
//
// Config.Serial restores the seed architecture — one global mutex held
// for every request — as the measured A/B baseline
// (BenchmarkRGMAParallelInsertPop, cmd/rgmad -serial), the same pattern
// as broker.Config.SerialCore.
//
// Endpoints (all JSON):
//
//	POST /schema/createTable   {"sql": "CREATE TABLE ..."}
//	POST /producer/create      {"table": "...", "latestRetentionSec": 30, "historyRetentionSec": 60}
//	POST /producer/insert      {"producer": 1, "sql": "INSERT INTO ..."}
//	POST /producer/close       {"producer": 1}
//	POST /consumer/create      {"query": "SELECT ...", "type": "continuous|latest|history"}
//	GET  /consumer/pop?id=1
//	POST /consumer/close       {"consumer": 1}
//	GET  /registry
//	GET  /stats
package rgmahttp

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"gridmon/internal/rgmacore"
	"gridmon/internal/sim"
	"gridmon/internal/wal"
)

// Config tunes the server's concurrency architecture.
type Config struct {
	// Shards is the lock-domain count for the core's table and resource
	// shard families (0 = GOMAXPROCS). Shard counts do not change
	// behaviour, only contention.
	Shards int
	// Serial serializes every request behind one global mutex — the
	// seed architecture, kept as the A/B baseline for load tests.
	Serial bool
	// MaxBuffered caps each continuous consumer's undrained tuples
	// (0 = rgmacore.DefaultMaxBuffered, negative = unlimited).
	MaxBuffered int
	// LockedReadPath restores the core's lock-held read paths as the
	// measured A/B baseline (rgmacore.Config.LockedReadPath): inserts
	// scan the continuous-consumer index under the table shard's read
	// lock instead of the lock-free snapshot.
	LockedReadPath bool
	// Pprof mounts net/http/pprof's handlers under /debug/pprof/ on the
	// server's mux (cmd/rgmad -pprof). Combined with
	// runtime.SetMutexProfileFraction this is how read-path lock
	// contention is measured on a live daemon.
	Pprof bool
}

// Server is an R-GMA service over HTTP.
type Server struct {
	cfg      Config
	serialMu sync.Mutex // held around each request when cfg.Serial
	core     *rgmacore.Core

	http *http.Server
	ln   net.Listener

	walStats  atomic.Pointer[func() wal.Stats]
	binEgress atomic.Pointer[func() BinEgressStats]
}

// NewServer constructs an unstarted server with the default sharded
// configuration.
func NewServer() *Server { return NewServerWith(Config{}) }

// NewServerWith constructs an unstarted server with an explicit
// concurrency configuration.
func NewServerWith(cfg Config) *Server {
	return &Server{
		cfg:  cfg,
		core: rgmacore.New(rgmacore.Config{
			Shards:         cfg.Shards,
			MaxBuffered:    cfg.MaxBuffered,
			LockedReadPath: cfg.LockedReadPath,
		}),
	}
}

// Core exposes the transport-neutral service core, so a second binding
// (cmd/rgmad serves rgmabin on another port) can share this server's
// tables and resources.
func (s *Server) Core() *rgmacore.Core { return s.core }

// NumShards reports the core's lock-domain count per shard family.
func (s *Server) NumShards() int { return s.core.NumShards() }

// TableShardOf reports which table shard a name routes to. Load-test
// topologies and benchmarks use it to spread (or concentrate) tables
// across lock domains, as broker.ShardOf does for destinations.
func (s *Server) TableShardOf(name string) int { return s.core.TableShardOf(name) }

// serial wraps a handler in the global mutex when the serial baseline
// is configured; in sharded mode it is the identity.
func (s *Server) serial(h http.HandlerFunc) http.HandlerFunc {
	if !s.cfg.Serial {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		s.serialMu.Lock()
		defer s.serialMu.Unlock()
		h(w, r)
	}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /schema/createTable", s.serial(s.handleCreateTable))
	mux.HandleFunc("POST /producer/create", s.serial(s.handleProducerCreate))
	mux.HandleFunc("POST /producer/insert", s.serial(s.handleInsert))
	mux.HandleFunc("POST /producer/close", s.serial(s.handleProducerClose))
	mux.HandleFunc("POST /consumer/create", s.serial(s.handleConsumerCreate))
	mux.HandleFunc("GET /consumer/pop", s.serial(s.handlePop))
	mux.HandleFunc("POST /consumer/close", s.serial(s.handleConsumerClose))
	mux.HandleFunc("GET /registry", s.serial(s.handleRegistry))
	mux.HandleFunc("GET /stats", s.serial(s.handleStats))
	if s.cfg.Pprof {
		// Never wrapped in serial(): profiling must stay reachable while
		// the serial baseline is saturated — that is when it is needed.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// ListenAndServe starts serving on addr and returns the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler()}
	go func() { _ = s.http.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	if s.http != nil {
		return s.http.Close()
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// statusFor maps core error kinds onto HTTP statuses; anything the core
// rejects without a kind is a bad request.
func statusFor(err error) int {
	switch {
	case errors.Is(err, rgmacore.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, rgmacore.ErrConflict):
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeCoreErr(w http.ResponseWriter, err error) {
	writeErr(w, statusFor(err), err)
}

func decode[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var v T
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rgmahttp: bad request body: %w", err))
		return v, false
	}
	return v, true
}

func (s *Server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		SQL string `json:"sql"`
	}](w, r)
	if !ok {
		return
	}
	name, err := s.core.CreateTable(req.SQL)
	if err != nil {
		writeCoreErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"table": name})
}

func (s *Server) handleProducerCreate(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Table               string `json:"table"`
		LatestRetentionSec  int    `json:"latestRetentionSec"`
		HistoryRetentionSec int    `json:"historyRetentionSec"`
	}](w, r)
	if !ok {
		return
	}
	p, err := s.core.CreateProducer(req.Table,
		sim.Time(req.LatestRetentionSec)*sim.Second,
		sim.Time(req.HistoryRetentionSec)*sim.Second)
	if err != nil {
		writeCoreErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"producer": p.ID()})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Producer int64  `json:"producer"`
		SQL      string `json:"sql"`
	}](w, r)
	if !ok {
		return
	}
	if err := s.core.Insert(req.Producer, req.SQL); err != nil {
		writeCoreErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "stored"})
}

func (s *Server) handleProducerClose(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Producer int64 `json:"producer"`
	}](w, r)
	if !ok {
		return
	}
	if err := s.core.CloseProducer(req.Producer); err != nil {
		writeCoreErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

func (s *Server) handleConsumerCreate(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Query string `json:"query"`
		Type  string `json:"type"`
	}](w, r)
	if !ok {
		return
	}
	qtype, err := rgmacore.ParseQueryType(req.Type)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	c, err := s.core.CreateConsumer(req.Query, qtype, nil)
	if err != nil {
		writeCoreErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"consumer": c.ID()})
}

func (s *Server) handlePop(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rgmahttp: bad consumer id"))
		return
	}
	out, err := s.core.Pop(id)
	if err != nil {
		writeCoreErr(w, err)
		return
	}
	if out == nil {
		out = []rgmacore.PopTuple{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"tuples": out})
}

func (s *Server) handleConsumerClose(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Consumer int64 `json:"consumer"`
	}](w, r)
	if !ok {
		return
	}
	if err := s.core.CloseConsumer(req.Consumer); err != nil {
		writeCoreErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	p, c := s.core.RegistryCounts()
	writeJSON(w, http.StatusOK, map[string]int{"producers": p, "consumers": c})
}

// Stats is the server's counter snapshot.
type Stats struct {
	Producers      int    `json:"producers"`
	Consumers      int    `json:"consumers"`
	Inserts        uint64 `json:"inserts"`
	Pops           uint64 `json:"pops"`
	TuplesStreamed uint64 `json:"tuplesStreamed"`
	TuplesPopped   uint64 `json:"tuplesPopped"`
	TuplesDropped  uint64 `json:"tuplesDropped"`
	Shards         int    `json:"shards"`
	Serial         bool   `json:"serial"`

	// WAL is present only when the server persists to a write-ahead
	// log (cmd/rgmad -data-dir).
	WAL *wal.Stats `json:"wal,omitempty"`

	// BinEgress is present only when a binary push transport shares the
	// core (cmd/rgmad -listen-bin): its writer-side egress batching.
	BinEgress *BinEgressStats `json:"bin_egress,omitempty"`
}

// BinEgressStats mirrors the binary transport's egress counters into
// /stats without coupling this package to internal/rgmabin: socket
// flushes, frames carried, and continuous-query pushes merged into a
// neighbouring same-consumer frame.
type BinEgressStats struct {
	WriterFlushes  uint64  `json:"writer_flushes"`
	WriterFrames   uint64  `json:"writer_frames"`
	MergedPushes   uint64  `json:"merged_pushes"`
	FramesPerFlush float64 `json:"frames_per_flush"`
}

// SetBinEgress installs the binary transport's egress counter source
// reported under "bin_egress" in /stats. Pass nil to detach.
func (s *Server) SetBinEgress(f func() BinEgressStats) {
	if f == nil {
		s.binEgress.Store(nil)
		return
	}
	s.binEgress.Store(&f)
}

// SetWALStats installs the write-ahead-log counter source reported
// under "wal" in /stats. Pass nil to detach.
func (s *Server) SetWALStats(f func() wal.Stats) {
	if f == nil {
		s.walStats.Store(nil)
		return
	}
	s.walStats.Store(&f)
}

// StatsSnapshot reads the core counters; safe from any goroutine.
func (s *Server) StatsSnapshot() Stats {
	cs := s.core.StatsSnapshot()
	st := Stats{
		Producers:      cs.Producers,
		Consumers:      cs.Consumers,
		Inserts:        cs.Inserts,
		Pops:           cs.Pops,
		TuplesStreamed: cs.TuplesStreamed,
		TuplesPopped:   cs.TuplesPopped,
		TuplesDropped:  cs.TuplesDropped,
		Shards:         s.core.NumShards(),
		Serial:         s.cfg.Serial,
	}
	if f := s.walStats.Load(); f != nil {
		ws := (*f)()
		st.WAL = &ws
	}
	if f := s.binEgress.Load(); f != nil {
		be := (*f)()
		st.BinEgress = &be
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}
