// Package rgmahttp serves the R-GMA virtual database over real HTTP, the
// transport the original gLite implementation used (Java servlets on
// Tomcat). It reuses the same registry, tuple-store and SQL components
// the simulator validates: producers POST SQL INSERT statements,
// consumers create continuous/latest/history queries and poll with GET,
// exactly like the paper's subscriber polling its consumer every 100 ms.
//
// Endpoints (all JSON):
//
//	POST /schema/createTable   {"sql": "CREATE TABLE ..."}
//	POST /producer/create      {"table": "...", "latestRetentionSec": 30, "historyRetentionSec": 60}
//	POST /producer/insert      {"producer": 1, "sql": "INSERT INTO ..."}
//	POST /producer/close       {"producer": 1}
//	POST /consumer/create      {"query": "SELECT ...", "type": "continuous|latest|history"}
//	GET  /consumer/pop?id=1
//	POST /consumer/close       {"consumer": 1}
//	GET  /registry
package rgmahttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"gridmon/internal/rgma"
	"gridmon/internal/sim"
	"gridmon/internal/sqlmini"
)

// Server is an R-GMA service over HTTP. All state is guarded by one
// mutex — the workload is monitoring-rate, not OLTP.
type Server struct {
	mu sync.Mutex

	schema    map[string]*sqlmini.Table
	registry  *rgma.Registry
	producers map[int64]*httpProducer
	consumers map[int64]*httpConsumer
	nextID    int64

	start time.Time
	http  *http.Server
	ln    net.Listener
}

type httpProducer struct {
	id    int64
	regID int64
	table *sqlmini.Table
	store *rgma.TupleStore
}

type httpConsumer struct {
	id     int64
	query  sqlmini.Select
	table  *sqlmini.Table
	qtype  rgma.QueryType
	buffer []popTuple
}

type popTuple struct {
	Row        []string `json:"row"`
	InsertedAt int64    `json:"insertedAtNs"`
}

// NewServer constructs an unstarted server.
func NewServer() *Server {
	return &Server{
		schema:    make(map[string]*sqlmini.Table),
		registry:  rgma.NewRegistry(),
		producers: make(map[int64]*httpProducer),
		consumers: make(map[int64]*httpConsumer),
		start:     time.Now(),
	}
}

// now returns virtual-ish time: nanoseconds since server start, the
// domain the TupleStore retention logic works in.
func (s *Server) now() sim.Time { return sim.Time(time.Since(s.start).Nanoseconds()) }

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /schema/createTable", s.handleCreateTable)
	mux.HandleFunc("POST /producer/create", s.handleProducerCreate)
	mux.HandleFunc("POST /producer/insert", s.handleInsert)
	mux.HandleFunc("POST /producer/close", s.handleProducerClose)
	mux.HandleFunc("POST /consumer/create", s.handleConsumerCreate)
	mux.HandleFunc("GET /consumer/pop", s.handlePop)
	mux.HandleFunc("POST /consumer/close", s.handleConsumerClose)
	mux.HandleFunc("GET /registry", s.handleRegistry)
	return mux
}

// ListenAndServe starts serving on addr and returns the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler()}
	go func() { _ = s.http.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	if s.http != nil {
		return s.http.Close()
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decode[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var v T
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rgmahttp: bad request body: %w", err))
		return v, false
	}
	return v, true
}

func (s *Server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		SQL string `json:"sql"`
	}](w, r)
	if !ok {
		return
	}
	st, err := sqlmini.Parse(req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ct, isCreate := st.(sqlmini.CreateTable)
	if !isCreate {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rgmahttp: expected CREATE TABLE"))
		return
	}
	s.mu.Lock()
	s.schema[ct.Table.Name] = &ct.Table
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"table": ct.Table.Name})
}

func (s *Server) handleProducerCreate(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Table               string `json:"table"`
		LatestRetentionSec  int    `json:"latestRetentionSec"`
		HistoryRetentionSec int    `json:"historyRetentionSec"`
	}](w, r)
	if !ok {
		return
	}
	if req.LatestRetentionSec <= 0 {
		req.LatestRetentionSec = 30
	}
	if req.HistoryRetentionSec <= 0 {
		req.HistoryRetentionSec = 60
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	table, exists := s.schema[req.Table]
	if !exists {
		writeErr(w, http.StatusNotFound, fmt.Errorf("rgmahttp: no such table %q", req.Table))
		return
	}
	s.nextID++
	p := &httpProducer{
		id:    s.nextID,
		table: table,
		store: rgma.NewTupleStore(table, sim.Time(req.LatestRetentionSec)*sim.Second, sim.Time(req.HistoryRetentionSec)*sim.Second),
	}
	p.regID = s.registry.RegisterProducer(rgma.ProducerEntry{Kind: rgma.PrimaryKind, Table: req.Table})
	s.producers[p.id] = p
	writeJSON(w, http.StatusOK, map[string]int64{"producer": p.id})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Producer int64  `json:"producer"`
		SQL      string `json:"sql"`
	}](w, r)
	if !ok {
		return
	}
	st, err := sqlmini.Parse(req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ins, isInsert := st.(sqlmini.Insert)
	if !isInsert {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rgmahttp: expected INSERT"))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, exists := s.producers[req.Producer]
	if !exists {
		writeErr(w, http.StatusNotFound, fmt.Errorf("rgmahttp: no such producer %d", req.Producer))
		return
	}
	row, err := sqlmini.ReorderInsert(p.table, ins)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	now := s.now()
	tuple := rgma.Tuple{Row: row, SentAt: now, InsertedAt: now}
	p.store.Insert(tuple)
	// Stream to matching continuous consumers immediately (the HTTP
	// binding does not model the gLite streaming delay; the simulator
	// covers that behaviour).
	for _, c := range s.consumers {
		if c.qtype == rgma.ContinuousQuery && c.table == p.table && sqlmini.Matches(p.table, c.query, row) {
			c.buffer = append(c.buffer, toPop(tuple))
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "stored"})
}

func toPop(t rgma.Tuple) popTuple {
	cells := make([]string, len(t.Row))
	for i, v := range t.Row {
		cells[i] = v.String()
	}
	return popTuple{Row: cells, InsertedAt: int64(t.InsertedAt)}
}

func (s *Server) handleProducerClose(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Producer int64 `json:"producer"`
	}](w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, exists := s.producers[req.Producer]
	if !exists {
		writeErr(w, http.StatusNotFound, fmt.Errorf("rgmahttp: no such producer %d", req.Producer))
		return
	}
	s.registry.UnregisterProducer(p.regID)
	delete(s.producers, p.id)
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

func (s *Server) handleConsumerCreate(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Query string `json:"query"`
		Type  string `json:"type"`
	}](w, r)
	if !ok {
		return
	}
	sel, err := rgma.ParseQuery(req.Query)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var qtype rgma.QueryType
	switch req.Type {
	case "", "continuous":
		qtype = rgma.ContinuousQuery
	case "latest":
		qtype = rgma.LatestQuery
	case "history":
		qtype = rgma.HistoryQuery
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rgmahttp: unknown query type %q", req.Type))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	table, exists := s.schema[sel.Table]
	if !exists {
		writeErr(w, http.StatusNotFound, fmt.Errorf("rgmahttp: no such table %q", sel.Table))
		return
	}
	s.nextID++
	c := &httpConsumer{id: s.nextID, query: sel, table: table, qtype: qtype}
	s.registry.RegisterConsumer(rgma.ConsumerEntry{Table: sel.Table})
	s.consumers[c.id] = c
	writeJSON(w, http.StatusOK, map[string]int64{"consumer": c.id})
}

func (s *Server) handlePop(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rgmahttp: bad consumer id"))
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, exists := s.consumers[id]
	if !exists {
		writeErr(w, http.StatusNotFound, fmt.Errorf("rgmahttp: no such consumer %d", id))
		return
	}
	var out []popTuple
	switch c.qtype {
	case rgma.ContinuousQuery:
		out = c.buffer
		c.buffer = nil
	case rgma.LatestQuery, rgma.HistoryQuery:
		now := s.now()
		for _, p := range s.producers {
			if p.table != c.table {
				continue
			}
			var tuples []rgma.Tuple
			if c.qtype == rgma.LatestQuery {
				tuples = p.store.Latest(now, c.query)
			} else {
				tuples = p.store.History(now, c.query)
			}
			for _, t := range tuples {
				out = append(out, toPop(t))
			}
		}
	}
	if out == nil {
		out = []popTuple{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"tuples": out})
}

func (s *Server) handleConsumerClose(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Consumer int64 `json:"consumer"`
	}](w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.consumers[req.Consumer]; !exists {
		writeErr(w, http.StatusNotFound, fmt.Errorf("rgmahttp: no such consumer %d", req.Consumer))
		return
	}
	delete(s.consumers, req.Consumer)
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	p, c := s.registry.Counts()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]int{"producers": p, "consumers": c})
}
