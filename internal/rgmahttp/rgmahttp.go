// Package rgmahttp serves the R-GMA virtual database over real HTTP, the
// transport the original gLite implementation used (Java servlets on
// Tomcat). It reuses the same registry, tuple-store and SQL components
// the simulator validates: producers POST SQL INSERT statements,
// consumers create continuous/latest/history queries and poll with GET,
// exactly like the paper's subscriber polling its consumer every 100 ms.
//
// # Concurrency
//
// The server is sharded the way the broker core is: state is
// partitioned into lock domains, not handed to worker goroutines, so
// request handling runs on the HTTP server's connection goroutines and
// scales with them. Two shard families exist — table shards (schema
// plus the per-table continuous-consumer and producer indexes, keyed by
// table-name hash) and resource shards (producer/consumer handles keyed
// by resource-id) — plus a per-consumer buffer lock and the internally
// locked rgma.TupleStore and rgma.Registry. Producers inserting into
// different producer resources and consumers popping different
// consumers proceed fully in parallel; an insert and a pop on the same
// continuous consumer serialize only on that consumer's buffer mutex.
// Consumer WHERE predicates are compiled once at create time
// (sqlmini.Program) and evaluated on the insert fast path.
//
// Config.Serial restores the seed architecture — one global mutex held
// for every request — as the measured A/B baseline
// (BenchmarkRGMAParallelInsertPop, cmd/rgmad -serial), the same pattern
// as broker.Config.SerialCore.
//
// Ordering: a producer whose inserts are issued sequentially (each HTTP
// response received before the next request — the paper's client
// pattern) streams to every continuous consumer in insert order, and
// its history reads in the same order. Only inserts POSTed concurrently
// for the *same* producer resource have no defined order, and in
// sharded mode their stream order may additionally differ from their
// store order (store append and consumer fan-out are separate critical
// sections); the serial baseline orders even those totally, as the seed
// did. Inserts from different producers are never ordered relative to
// each other.
//
// Endpoints (all JSON):
//
//	POST /schema/createTable   {"sql": "CREATE TABLE ..."}
//	POST /producer/create      {"table": "...", "latestRetentionSec": 30, "historyRetentionSec": 60}
//	POST /producer/insert      {"producer": 1, "sql": "INSERT INTO ..."}
//	POST /producer/close       {"producer": 1}
//	POST /consumer/create      {"query": "SELECT ...", "type": "continuous|latest|history"}
//	GET  /consumer/pop?id=1
//	POST /consumer/close       {"consumer": 1}
//	GET  /registry
//	GET  /stats
package rgmahttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gridmon/internal/rgma"
	"gridmon/internal/shardhash"
	"gridmon/internal/sim"
	"gridmon/internal/sqlmini"
)

// Config tunes the server's concurrency architecture.
type Config struct {
	// Shards is the lock-domain count for the table and resource shard
	// families (0 = GOMAXPROCS). Shard counts do not change behaviour,
	// only contention.
	Shards int
	// Serial serializes every request behind one global mutex — the
	// seed architecture, kept as the A/B baseline for load tests.
	Serial bool
}

// Server is an R-GMA service over HTTP.
type Server struct {
	cfg      Config
	serialMu sync.Mutex // held around each request when cfg.Serial

	tables   []*tableShard // table-name-hash lock domains
	res      []*resShard   // resource-id lock domains
	registry *rgma.Registry
	nextID   atomic.Int64

	inserts        atomic.Uint64
	pops           atomic.Uint64
	tuplesStreamed atomic.Uint64
	tuplesPopped   atomic.Uint64

	start time.Time
	http  *http.Server
	ln    net.Listener
}

// tableShard owns everything about the tables that hash to it: the
// schema entry, the table's continuous consumers (the insert-time
// streaming index) and its producers (the latest/history gather index),
// both in registration order.
type tableShard struct {
	mu         sync.RWMutex
	tables     map[string]*sqlmini.Table
	continuous map[string][]*httpConsumer
	producers  map[string][]*httpProducer
}

// resShard owns the resource handles whose ids hash to it.
type resShard struct {
	mu        sync.RWMutex
	producers map[int64]*httpProducer
	consumers map[int64]*httpConsumer
}

type httpProducer struct {
	id        int64
	regID     int64
	tableName string
	table     *sqlmini.Table
	store     *rgma.TupleStore
}

type httpConsumer struct {
	id        int64
	regID     int64
	query     sqlmini.Select
	prog      *sqlmini.Program // query.Where compiled against table
	table     *sqlmini.Table
	tableName string
	qtype     rgma.QueryType

	mu     sync.Mutex
	buffer []popTuple
}

// push appends streamed tuples under the consumer's buffer lock.
func (c *httpConsumer) push(t popTuple) {
	c.mu.Lock()
	c.buffer = append(c.buffer, t)
	c.mu.Unlock()
}

// drain empties the buffer under the consumer's buffer lock.
func (c *httpConsumer) drain() []popTuple {
	c.mu.Lock()
	out := c.buffer
	c.buffer = nil
	c.mu.Unlock()
	return out
}

type popTuple struct {
	Row        []string `json:"row"`
	InsertedAt int64    `json:"insertedAtNs"`
}

// NewServer constructs an unstarted server with the default sharded
// configuration.
func NewServer() *Server { return NewServerWith(Config{}) }

// NewServerWith constructs an unstarted server with an explicit
// concurrency configuration.
func NewServerWith(cfg Config) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		cfg:      cfg,
		tables:   make([]*tableShard, cfg.Shards),
		res:      make([]*resShard, cfg.Shards),
		registry: rgma.NewRegistrySharded(cfg.Shards),
		start:    time.Now(),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.tables[i] = &tableShard{
			tables:     make(map[string]*sqlmini.Table),
			continuous: make(map[string][]*httpConsumer),
			producers:  make(map[string][]*httpProducer),
		}
		s.res[i] = &resShard{
			producers: make(map[int64]*httpProducer),
			consumers: make(map[int64]*httpConsumer),
		}
	}
	return s
}

// NumShards reports the lock-domain count per shard family.
func (s *Server) NumShards() int { return len(s.tables) }

// TableShardOf reports which table shard a name routes to. Load-test
// topologies and benchmarks use it to spread (or concentrate) tables
// across lock domains, as broker.ShardOf does for destinations.
func (s *Server) TableShardOf(name string) int {
	if len(s.tables) == 1 {
		return 0
	}
	return int(shardhash.FNV1a(name) % uint32(len(s.tables)))
}

func (s *Server) tableShardFor(table string) *tableShard {
	return s.tables[s.TableShardOf(table)]
}

func (s *Server) resShardFor(id int64) *resShard {
	if len(s.res) == 1 {
		return s.res[0]
	}
	return s.res[uint64(id)%uint64(len(s.res))]
}

func (s *Server) lookupProducer(id int64) (*httpProducer, bool) {
	sh := s.resShardFor(id)
	sh.mu.RLock()
	p, ok := sh.producers[id]
	sh.mu.RUnlock()
	return p, ok
}

func (s *Server) lookupConsumer(id int64) (*httpConsumer, bool) {
	sh := s.resShardFor(id)
	sh.mu.RLock()
	c, ok := sh.consumers[id]
	sh.mu.RUnlock()
	return c, ok
}

// now returns virtual-ish time: nanoseconds since server start, the
// domain the TupleStore retention logic works in.
func (s *Server) now() sim.Time { return sim.Time(time.Since(s.start).Nanoseconds()) }

// serial wraps a handler in the global mutex when the serial baseline
// is configured; in sharded mode it is the identity.
func (s *Server) serial(h http.HandlerFunc) http.HandlerFunc {
	if !s.cfg.Serial {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		s.serialMu.Lock()
		defer s.serialMu.Unlock()
		h(w, r)
	}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /schema/createTable", s.serial(s.handleCreateTable))
	mux.HandleFunc("POST /producer/create", s.serial(s.handleProducerCreate))
	mux.HandleFunc("POST /producer/insert", s.serial(s.handleInsert))
	mux.HandleFunc("POST /producer/close", s.serial(s.handleProducerClose))
	mux.HandleFunc("POST /consumer/create", s.serial(s.handleConsumerCreate))
	mux.HandleFunc("GET /consumer/pop", s.serial(s.handlePop))
	mux.HandleFunc("POST /consumer/close", s.serial(s.handleConsumerClose))
	mux.HandleFunc("GET /registry", s.serial(s.handleRegistry))
	mux.HandleFunc("GET /stats", s.serial(s.handleStats))
	return mux
}

// ListenAndServe starts serving on addr and returns the bound address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler()}
	go func() { _ = s.http.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the server.
func (s *Server) Close() error {
	if s.http != nil {
		return s.http.Close()
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decode[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var v T
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rgmahttp: bad request body: %w", err))
		return v, false
	}
	return v, true
}

func (s *Server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		SQL string `json:"sql"`
	}](w, r)
	if !ok {
		return
	}
	st, err := sqlmini.Parse(req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ct, isCreate := st.(sqlmini.CreateTable)
	if !isCreate {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rgmahttp: expected CREATE TABLE"))
		return
	}
	ts := s.tableShardFor(ct.Table.Name)
	ts.mu.Lock()
	ts.tables[ct.Table.Name] = &ct.Table
	ts.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"table": ct.Table.Name})
}

func (s *Server) handleProducerCreate(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Table               string `json:"table"`
		LatestRetentionSec  int    `json:"latestRetentionSec"`
		HistoryRetentionSec int    `json:"historyRetentionSec"`
	}](w, r)
	if !ok {
		return
	}
	if req.LatestRetentionSec <= 0 {
		req.LatestRetentionSec = 30
	}
	if req.HistoryRetentionSec <= 0 {
		req.HistoryRetentionSec = 60
	}
	ts := s.tableShardFor(req.Table)
	ts.mu.RLock()
	table, exists := ts.tables[req.Table]
	ts.mu.RUnlock()
	if !exists {
		writeErr(w, http.StatusNotFound, fmt.Errorf("rgmahttp: no such table %q", req.Table))
		return
	}
	p := &httpProducer{
		id:        s.nextID.Add(1),
		tableName: req.Table,
		table:     table,
		store:     rgma.NewTupleStore(table, sim.Time(req.LatestRetentionSec)*sim.Second, sim.Time(req.HistoryRetentionSec)*sim.Second),
	}
	p.regID = s.registry.RegisterProducer(rgma.ProducerEntry{Kind: rgma.PrimaryKind, Table: req.Table})
	rs := s.resShardFor(p.id)
	rs.mu.Lock()
	rs.producers[p.id] = p
	rs.mu.Unlock()
	ts.mu.Lock()
	ts.producers[req.Table] = append(ts.producers[req.Table], p)
	ts.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]int64{"producer": p.id})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Producer int64  `json:"producer"`
		SQL      string `json:"sql"`
	}](w, r)
	if !ok {
		return
	}
	st, err := sqlmini.Parse(req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ins, isInsert := st.(sqlmini.Insert)
	if !isInsert {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rgmahttp: expected INSERT"))
		return
	}
	p, exists := s.lookupProducer(req.Producer)
	if !exists {
		writeErr(w, http.StatusNotFound, fmt.Errorf("rgmahttp: no such producer %d", req.Producer))
		return
	}
	row, err := sqlmini.ReorderInsert(p.table, ins)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	now := s.now()
	tuple := rgma.Tuple{Row: row, SentAt: now, InsertedAt: now}
	p.store.Insert(tuple)
	s.inserts.Add(1)
	// Stream to matching continuous consumers immediately (the HTTP
	// binding does not model the gLite streaming delay; the simulator
	// covers that behaviour). The table shard's index narrows the scan
	// to this table's continuous consumers; the compiled predicate
	// decides per consumer; the encoded tuple is shared across buffers.
	ts := s.tableShardFor(p.tableName)
	var encoded popTuple
	encodedReady := false
	ts.mu.RLock()
	for _, c := range ts.continuous[p.tableName] {
		if c.table == p.table && c.prog.Matches(row) {
			if !encodedReady {
				encoded = toPop(tuple)
				encodedReady = true
			}
			c.push(encoded)
			s.tuplesStreamed.Add(1)
		}
	}
	ts.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]string{"status": "stored"})
}

func toPop(t rgma.Tuple) popTuple {
	cells := make([]string, len(t.Row))
	for i, v := range t.Row {
		cells[i] = v.String()
	}
	return popTuple{Row: cells, InsertedAt: int64(t.InsertedAt)}
}

func (s *Server) handleProducerClose(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Producer int64 `json:"producer"`
	}](w, r)
	if !ok {
		return
	}
	rs := s.resShardFor(req.Producer)
	rs.mu.Lock()
	p, exists := rs.producers[req.Producer]
	if exists {
		delete(rs.producers, req.Producer)
	}
	rs.mu.Unlock()
	if !exists {
		writeErr(w, http.StatusNotFound, fmt.Errorf("rgmahttp: no such producer %d", req.Producer))
		return
	}
	s.registry.UnregisterProducerFrom(p.tableName, p.regID)
	ts := s.tableShardFor(p.tableName)
	ts.mu.Lock()
	ts.producers[p.tableName] = removeHandle(ts.producers[p.tableName], p)
	ts.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

// removeHandle deletes one handle from an index slice; slices.Delete
// zeroes the vacated tail slot, so the handle does not leak.
func removeHandle[T comparable](hs []T, h T) []T {
	if i := slices.Index(hs, h); i >= 0 {
		return slices.Delete(hs, i, i+1)
	}
	return hs
}

func (s *Server) handleConsumerCreate(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Query string `json:"query"`
		Type  string `json:"type"`
	}](w, r)
	if !ok {
		return
	}
	sel, err := rgma.ParseQuery(req.Query)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var qtype rgma.QueryType
	switch req.Type {
	case "", "continuous":
		qtype = rgma.ContinuousQuery
	case "latest":
		qtype = rgma.LatestQuery
	case "history":
		qtype = rgma.HistoryQuery
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rgmahttp: unknown query type %q", req.Type))
		return
	}
	ts := s.tableShardFor(sel.Table)
	ts.mu.RLock()
	table, exists := ts.tables[sel.Table]
	ts.mu.RUnlock()
	if !exists {
		writeErr(w, http.StatusNotFound, fmt.Errorf("rgmahttp: no such table %q", sel.Table))
		return
	}
	c := &httpConsumer{
		id:        s.nextID.Add(1),
		query:     sel,
		prog:      sel.Compiled(table),
		table:     table,
		tableName: sel.Table,
		qtype:     qtype,
	}
	c.regID = s.registry.RegisterConsumer(rgma.ConsumerEntry{Table: sel.Table})
	rs := s.resShardFor(c.id)
	rs.mu.Lock()
	rs.consumers[c.id] = c
	rs.mu.Unlock()
	if qtype == rgma.ContinuousQuery {
		ts.mu.Lock()
		ts.continuous[sel.Table] = append(ts.continuous[sel.Table], c)
		ts.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]int64{"consumer": c.id})
}

func (s *Server) handlePop(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("rgmahttp: bad consumer id"))
		return
	}
	c, exists := s.lookupConsumer(id)
	if !exists {
		writeErr(w, http.StatusNotFound, fmt.Errorf("rgmahttp: no such consumer %d", id))
		return
	}
	s.pops.Add(1)
	var out []popTuple
	switch c.qtype {
	case rgma.ContinuousQuery:
		out = c.drain()
	case rgma.LatestQuery, rgma.HistoryQuery:
		// Gather from this table's producers (registration order, via
		// the table shard's index — not a scan over every producer).
		ts := s.tableShardFor(c.tableName)
		ts.mu.RLock()
		producers := append([]*httpProducer(nil), ts.producers[c.tableName]...)
		ts.mu.RUnlock()
		now := s.now()
		for _, p := range producers {
			if p.table != c.table {
				continue
			}
			var tuples []rgma.Tuple
			if c.qtype == rgma.LatestQuery {
				tuples = p.store.LatestCompiled(now, c.prog)
			} else {
				tuples = p.store.HistoryCompiled(now, c.prog)
			}
			for _, t := range tuples {
				out = append(out, toPop(t))
			}
		}
	}
	s.tuplesPopped.Add(uint64(len(out)))
	if out == nil {
		out = []popTuple{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"tuples": out})
}

func (s *Server) handleConsumerClose(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[struct {
		Consumer int64 `json:"consumer"`
	}](w, r)
	if !ok {
		return
	}
	rs := s.resShardFor(req.Consumer)
	rs.mu.Lock()
	c, exists := rs.consumers[req.Consumer]
	if exists {
		delete(rs.consumers, req.Consumer)
	}
	rs.mu.Unlock()
	if !exists {
		writeErr(w, http.StatusNotFound, fmt.Errorf("rgmahttp: no such consumer %d", req.Consumer))
		return
	}
	s.registry.UnregisterConsumerFrom(c.tableName, c.regID)
	if c.qtype == rgma.ContinuousQuery {
		ts := s.tableShardFor(c.tableName)
		ts.mu.Lock()
		ts.continuous[c.tableName] = removeHandle(ts.continuous[c.tableName], c)
		ts.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed"})
}

func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	p, c := s.registry.Counts()
	writeJSON(w, http.StatusOK, map[string]int{"producers": p, "consumers": c})
}

// Stats is the server's atomic counter snapshot.
type Stats struct {
	Producers      int    `json:"producers"`
	Consumers      int    `json:"consumers"`
	Inserts        uint64 `json:"inserts"`
	Pops           uint64 `json:"pops"`
	TuplesStreamed uint64 `json:"tuplesStreamed"`
	TuplesPopped   uint64 `json:"tuplesPopped"`
	Shards         int    `json:"shards"`
	Serial         bool   `json:"serial"`
}

// StatsSnapshot reads the server counters; safe from any goroutine.
func (s *Server) StatsSnapshot() Stats {
	p, c := s.registry.Counts()
	return Stats{
		Producers:      p,
		Consumers:      c,
		Inserts:        s.inserts.Load(),
		Pops:           s.pops.Load(),
		TuplesStreamed: s.tuplesStreamed.Load(),
		TuplesPopped:   s.tuplesPopped.Load(),
		Shards:         len(s.tables),
		Serial:         s.cfg.Serial,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}
