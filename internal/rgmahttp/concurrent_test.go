package rgmahttp

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gridmon/internal/sqlmini"
)

func startServerWith(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	s := NewServerWith(cfg)
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, NewClient(addr)
}

// TestHTTPShardedVsSerialEquivalence replays one randomized
// single-threaded op sequence against the serial-baseline server and
// sharded servers at several shard counts: the full response transcript
// — resource ids, pop payloads, registry counts and traffic stats —
// must be identical. Shards are lock domains; with a single caller the
// architecture is unobservable.
func TestHTTPShardedVsSerialEquivalence(t *testing.T) {
	tables := []string{"generator", "turbine", "relay", "meter", "feeder", "substation"}
	run := func(cfg Config) string {
		rng := rand.New(rand.NewSource(4242))
		_, c := startServerWith(t, cfg)
		var transcript []string
		logf := func(format string, args ...any) {
			transcript = append(transcript, fmt.Sprintf(format, args...))
		}
		for _, tab := range tables {
			if err := c.CreateTable(fmt.Sprintf(
				"CREATE TABLE %s (id INTEGER PRIMARY KEY, seq INTEGER, load DOUBLE PRECISION, site CHAR(20))", tab)); err != nil {
				t.Fatal(err)
			}
		}
		var producers []*RemoteProducer
		var producerTable []string
		var consumers []*RemoteConsumer
		for op := 0; op < 600; op++ {
			tab := tables[rng.Intn(len(tables))]
			switch r := rng.Intn(10); {
			case r == 0:
				p, err := c.CreatePrimaryProducer(tab, 30*time.Second, time.Minute)
				if err != nil {
					t.Fatal(err)
				}
				producers = append(producers, p)
				producerTable = append(producerTable, tab)
				logf("producer %d", p.ID)
			case r == 1:
				qtype := []string{"continuous", "latest", "history"}[rng.Intn(3)]
				where := ""
				if rng.Intn(2) == 0 {
					where = fmt.Sprintf(" WHERE id < %d", rng.Intn(40))
				}
				cons, err := c.CreateConsumer("SELECT * FROM "+tab+where, qtype)
				if err != nil {
					t.Fatal(err)
				}
				consumers = append(consumers, cons)
				logf("consumer %d %s", cons.ID, qtype)
			case r == 2 && len(consumers) > 0:
				cons := consumers[rng.Intn(len(consumers))]
				tuples, err := cons.Pop()
				if err != nil {
					t.Fatal(err)
				}
				// InsertedAt is wall-clock and differs between servers;
				// compare rows only.
				var rows []string
				for _, tu := range tuples {
					rows = append(rows, fmt.Sprint(tu.Row))
				}
				logf("pop %d -> %v", cons.ID, rows)
			case r == 3 && len(producers) > 4:
				i := rng.Intn(len(producers))
				p := producers[i]
				producers = append(producers[:i], producers[i+1:]...)
				producerTable = append(producerTable[:i], producerTable[i+1:]...)
				if err := p.Close(); err != nil {
					t.Fatal(err)
				}
				logf("closed producer %d", p.ID)
			default:
				if len(producers) == 0 {
					continue
				}
				i := rng.Intn(len(producers))
				p := producers[i]
				sql := fmt.Sprintf("INSERT INTO %s (id, seq, load, site) VALUES (%d, %d, %.1f, 'site-%d')",
					producerTable[i], rng.Intn(50), op, rng.Float64()*100, rng.Intn(9))
				if err := p.Insert(sql); err != nil {
					t.Fatal(err)
				}
			}
		}
		pn, cn, err := c.RegistryCounts()
		if err != nil {
			t.Fatal(err)
		}
		st, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		logf("registry %d/%d inserts=%d pops=%d streamed=%d popped=%d",
			pn, cn, st.Inserts, st.Pops, st.TuplesStreamed, st.TuplesPopped)
		return fmt.Sprint(transcript)
	}
	serial := run(Config{Serial: true, Shards: 1})
	for _, cfg := range []Config{{Shards: 1}, {Shards: 8}, {Shards: 32}} {
		if got := run(cfg); got != serial {
			t.Fatalf("shards=%d transcript diverges from serial baseline:\nserial: %.2000s\nsharded: %.2000s", cfg.Shards, serial, got)
		}
	}
}

// TestHTTPConcurrentInsertPopStress is the acceptance stress: parallel
// producers insert while consumers pop concurrently across at least 8
// table shards, over real HTTP. Every matching tuple must reach the
// continuous consumer exactly once, with the race detector watching the
// whole service stack.
func TestHTTPConcurrentInsertPopStress(t *testing.T) {
	s, c := startServerWith(t, Config{Shards: 8})
	const nTables = 8
	const insertsPerTable = 120
	var tables []string
	for i := 0; i < nTables; i++ {
		tab := fmt.Sprintf("stress%d", i)
		tables = append(tables, tab)
		if err := c.CreateTable(fmt.Sprintf(
			"CREATE TABLE %s (id INTEGER PRIMARY KEY, seq INTEGER, load DOUBLE PRECISION)", tab)); err != nil {
			t.Fatal(err)
		}
	}

	type lane struct {
		prod    *RemoteProducer
		cont    *RemoteConsumer
		hist    *RemoteConsumer
		schema  *sqlmini.Table
		got     int
		dropped int // tuples filtered by the WHERE predicate
	}
	lanes := make([]*lane, nTables)
	for i, tab := range tables {
		p, err := c.CreatePrimaryProducer(tab, 30*time.Second, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		// Half the lanes filter: only even ids pass the predicate.
		where := ""
		if i%2 == 0 {
			where = " WHERE id < 60"
		}
		cont, err := c.CreateConsumer("SELECT * FROM "+tab+where, "continuous")
		if err != nil {
			t.Fatal(err)
		}
		hist, err := c.CreateConsumer("SELECT * FROM "+tab, "history")
		if err != nil {
			t.Fatal(err)
		}
		st, err := sqlmini.Parse(fmt.Sprintf("CREATE TABLE %s (id INTEGER PRIMARY KEY, seq INTEGER, load DOUBLE PRECISION)", tab))
		if err != nil {
			t.Fatal(err)
		}
		ct := st.(sqlmini.CreateTable)
		lanes[i] = &lane{prod: p, cont: cont, hist: hist, schema: &ct.Table}
	}

	var wg sync.WaitGroup
	errc := make(chan error, nTables*3)
	for i, ln := range lanes {
		filtered := i%2 == 0
		// Inserter: ids 0..119; under "id < 60" half are filtered out.
		wg.Add(1)
		go func(ln *lane) {
			defer wg.Done()
			for seq := 0; seq < insertsPerTable; seq++ {
				row := sqlmini.Row{sqlmini.IntV(int64(seq)), sqlmini.IntV(int64(seq)), sqlmini.FloatV(1.5)}
				if err := ln.prod.InsertRow(ln.schema, row); err != nil {
					errc <- err
					return
				}
			}
		}(ln)
		if filtered {
			ln.dropped = insertsPerTable - 60
		}
		// Concurrent popper on the continuous consumer.
		wg.Add(1)
		go func(ln *lane) {
			defer wg.Done()
			deadline := time.Now().Add(20 * time.Second)
			want := insertsPerTable - ln.dropped
			for ln.got < want && time.Now().Before(deadline) {
				tuples, err := ln.cont.Pop()
				if err != nil {
					errc <- err
					return
				}
				ln.got += len(tuples)
			}
		}(ln)
		// Concurrent history popper (gather path under churn).
		wg.Add(1)
		go func(ln *lane) {
			defer wg.Done()
			for k := 0; k < 30; k++ {
				if _, err := ln.hist.Pop(); err != nil {
					errc <- err
					return
				}
			}
		}(ln)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for i, ln := range lanes {
		want := insertsPerTable - ln.dropped
		if ln.got != want {
			t.Errorf("lane %d: continuous consumer got %d of %d tuples", i, ln.got, want)
		}
	}
	st := s.StatsSnapshot()
	if st.Inserts != nTables*insertsPerTable {
		t.Errorf("server inserts = %d, want %d", st.Inserts, nTables*insertsPerTable)
	}
	wantStreamed := uint64(0)
	for _, ln := range lanes {
		wantStreamed += uint64(insertsPerTable - ln.dropped)
	}
	if st.TuplesStreamed != wantStreamed {
		t.Errorf("tuplesStreamed = %d, want %d", st.TuplesStreamed, wantStreamed)
	}
}

// TestHTTPStatsAndClose exercises the stats endpoint and consumer-close
// registry bookkeeping (the seed leaked consumer registrations).
func TestHTTPStatsAndClose(t *testing.T) {
	_, c := startServerWith(t, Config{Shards: 4})
	if err := c.CreateTable("CREATE TABLE g (id INTEGER PRIMARY KEY, v DOUBLE PRECISION)"); err != nil {
		t.Fatal(err)
	}
	p, err := c.CreatePrimaryProducer("g", time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := c.CreateConsumer("SELECT * FROM g", "continuous")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("INSERT INTO g (id, v) VALUES (1, 2.5)"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Producers != 1 || st.Consumers != 1 || st.Inserts != 1 || st.TuplesStreamed != 1 || st.Shards != 4 || st.Serial {
		t.Fatalf("stats = %+v", st)
	}
	if err := cons.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Producers != 0 || st.Consumers != 0 {
		t.Fatalf("registry after close = %d/%d, want 0/0", st.Producers, st.Consumers)
	}
	// A closed continuous consumer no longer receives streams: recreate
	// a producer and insert; nothing must panic and stats stay sane.
	p2, err := c.CreatePrimaryProducer("g", time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Insert("INSERT INTO g (id, v) VALUES (2, 1.0)"); err != nil {
		t.Fatal(err)
	}
	st, _ = c.Stats()
	if st.TuplesStreamed != 1 {
		t.Fatalf("closed consumer still streamed to: %+v", st)
	}
}
