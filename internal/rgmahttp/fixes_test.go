package rgmahttp

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHTTPCreateTableRecreate pins the transport-level contract of the
// table re-create fix: declaring an identical schema again returns 200
// and leaves existing streams intact; a conflicting schema returns 409.
// Pre-fix, the second create returned 200 but silently replaced the
// schema object, and the consumer below never received the insert.
func TestHTTPCreateTableRecreate(t *testing.T) {
	_, c := startServer(t)
	if err := c.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	cons, err := c.CreateConsumer("SELECT * FROM generator", "continuous")
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent re-create (a second client declaring defensively).
	if err := c.CreateTable(createSQL); err != nil {
		t.Fatalf("identical re-create rejected: %v", err)
	}
	p, err := c.CreatePrimaryProducer("generator", 30*time.Second, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("INSERT INTO generator (genid, seq, power, site) VALUES (1, 1, 480.5, 'aberdeen')"); err != nil {
		t.Fatal(err)
	}
	tuples, err := cons.Pop()
	if err != nil || len(tuples) != 1 {
		t.Fatalf("stream across re-create: popped %v, %v; want 1 tuple", tuples, err)
	}
	// Conflicting schema: 409.
	err = c.CreateTable("CREATE TABLE generator (genid INTEGER PRIMARY KEY)")
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("conflicting re-create: err = %v, want 409", err)
	}
}

// TestHTTPStatsTuplesDropped: the consumer buffer cap surfaces its drop
// counter in /stats.
func TestHTTPStatsTuplesDropped(t *testing.T) {
	s := NewServerWith(Config{Shards: 2, MaxBuffered: 5})
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	c := NewClient(addr)
	if err := c.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	cons, err := c.CreateConsumer("SELECT * FROM generator", "continuous")
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.CreatePrimaryProducer("generator", 30*time.Second, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		stmt := fmt.Sprintf("INSERT INTO generator (genid, seq, power, site) VALUES (%d, 1, 1.0, 'a')", i)
		if err := p.Insert(stmt); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TuplesDropped != 7 {
		t.Fatalf("stats tuplesDropped = %d, want 7 (12 inserts, cap 5)", st.TuplesDropped)
	}
	if got, _ := cons.Pop(); len(got) != 5 || got[0].Row[0] != "8" {
		t.Fatalf("capped pop = %v, want the newest 5", got)
	}
}

// TestClientRetentionRounding is the regression test for the silent
// retention truncation: a sub-second retention must reach the server as
// ≥1 second (pre-fix int(d.Seconds()) sent 0 and the server silently
// substituted its 30 s/60 s defaults), and non-positive retention must
// be rejected client-side without a request.
func TestClientRetentionRounding(t *testing.T) {
	type createReq struct {
		LatestRetentionSec  int `json:"latestRetentionSec"`
		HistoryRetentionSec int `json:"historyRetentionSec"`
	}
	var got createReq
	calls := 0
	h := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		_ = json.NewDecoder(r.Body).Decode(&got)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"producer": 1}`))
	}))
	defer h.Close()
	c := NewClient(strings.TrimPrefix(h.URL, "http://"))

	if _, err := c.CreatePrimaryProducer("generator", 500*time.Millisecond, 1500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got.LatestRetentionSec != 1 || got.HistoryRetentionSec != 2 {
		t.Fatalf("sub-second retention reached the server as %+v, want 1/2 (rounded up)", got)
	}

	if _, err := c.CreatePrimaryProducer("generator", 0, time.Minute); err == nil {
		t.Fatal("zero retention accepted")
	}
	if _, err := c.CreatePrimaryProducer("generator", time.Minute, -time.Second); err == nil {
		t.Fatal("negative retention accepted")
	}
	if calls != 1 {
		t.Fatalf("invalid retention still sent %d extra requests", calls-1)
	}
}
