package rgmahttp

import (
	"strings"
	"testing"
	"time"

	"gridmon/internal/rgma"
	"gridmon/internal/sqlmini"
)

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer()
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, NewClient(addr)
}

const createSQL = `CREATE TABLE generator (
	genid INTEGER PRIMARY KEY, seq INTEGER,
	power DOUBLE PRECISION, site CHAR(20))`

func TestHTTPCreateInsertPop(t *testing.T) {
	_, c := startServer(t)
	if err := c.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	cons, err := c.CreateConsumer("SELECT * FROM generator WHERE genid < 10", "continuous")
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.CreatePrimaryProducer("generator", 30*time.Second, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("INSERT INTO generator (genid, seq, power, site) VALUES (1, 1, 480.5, 'aberdeen')"); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("INSERT INTO generator (genid, seq, power, site) VALUES (99, 1, 1.0, 'filtered')"); err != nil {
		t.Fatal(err)
	}
	tuples, err := cons.Pop()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 {
		t.Fatalf("popped %d tuples, want 1 (WHERE filter)", len(tuples))
	}
	if tuples[0].Row[0] != "1" || !strings.Contains(tuples[0].Row[3], "aberdeen") {
		t.Fatalf("tuple = %v", tuples[0])
	}
	// Buffer drained: second pop is empty.
	tuples, err = cons.Pop()
	if err != nil || len(tuples) != 0 {
		t.Fatalf("second pop: %v, %v", tuples, err)
	}
}

func TestHTTPLatestAndHistory(t *testing.T) {
	_, c := startServer(t)
	if err := c.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	p, err := c.CreatePrimaryProducer("generator", 30*time.Second, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	tab := tableFor(t)
	for seq := 1; seq <= 3; seq++ {
		row := sqlmini.Row{sqlmini.IntV(1), sqlmini.IntV(int64(seq)), sqlmini.FloatV(480), sqlmini.StringV("a")}
		if err := p.InsertRow(tab, row); err != nil {
			t.Fatal(err)
		}
	}
	latest, err := c.CreateConsumer("SELECT * FROM generator", "latest")
	if err != nil {
		t.Fatal(err)
	}
	got, err := latest.Pop()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Row[1] != "3" {
		t.Fatalf("latest pop = %v", got)
	}
	history, err := c.CreateConsumer("SELECT * FROM generator", "history")
	if err != nil {
		t.Fatal(err)
	}
	hgot, err := history.Pop()
	if err != nil || len(hgot) != 3 {
		t.Fatalf("history pop = %v, %v", hgot, err)
	}
}

func tableFor(t *testing.T) *sqlmini.Table {
	t.Helper()
	st, err := sqlmini.Parse(createSQL)
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(sqlmini.CreateTable)
	return &ct.Table
}

func TestHTTPRegistryCounts(t *testing.T) {
	_, c := startServer(t)
	if err := c.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	p, err := c.CreatePrimaryProducer("generator", time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateConsumer("SELECT * FROM generator", "continuous"); err != nil {
		t.Fatal(err)
	}
	pn, cn, err := c.RegistryCounts()
	if err != nil || pn != 1 || cn != 1 {
		t.Fatalf("registry = %d/%d, %v", pn, cn, err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	pn, _, _ = c.RegistryCounts()
	if pn != 0 {
		t.Fatalf("producers after close = %d", pn)
	}
}

func TestHTTPErrors(t *testing.T) {
	_, c := startServer(t)
	// Unknown table.
	if _, err := c.CreatePrimaryProducer("nope", time.Second, time.Second); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := c.CreateConsumer("SELECT * FROM nope", "continuous"); err == nil {
		t.Fatal("consumer on unknown table accepted")
	}
	// Bad SQL.
	if err := c.CreateTable("DROP TABLE x"); err == nil {
		t.Fatal("non-CREATE accepted")
	}
	if err := c.CreateTable("garbage"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := c.CreateConsumer("SELECT FROM", "continuous"); err == nil {
		t.Fatal("bad query accepted")
	}
	if _, err := c.CreateConsumer("SELECT * FROM generator", "sideways"); err == nil {
		t.Fatal("bad query type accepted")
	}
	// Unknown resources.
	if err := c.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	p := &RemoteProducer{c: c, ID: 999}
	if err := p.Insert("INSERT INTO generator (genid) VALUES (1)"); err == nil {
		t.Fatal("insert on missing producer accepted")
	}
	rc := &RemoteConsumer{c: c, ID: 999}
	if _, err := rc.Pop(); err == nil {
		t.Fatal("pop on missing consumer accepted")
	}
	if err := rc.Close(); err == nil {
		t.Fatal("close on missing consumer accepted")
	}
	// Type-checked insert.
	p2, err := c.CreatePrimaryProducer("generator", time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Insert("INSERT INTO generator (genid) VALUES ('not-an-int')"); err == nil {
		t.Fatal("ill-typed insert accepted")
	}
}

func TestHTTPPollLoopLikePaper(t *testing.T) {
	// The paper's subscriber polls every 100 ms; verify a poll loop sees
	// tuples inserted while it runs.
	_, c := startServer(t)
	if err := c.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	cons, err := c.CreateConsumer("SELECT * FROM generator", "continuous")
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.CreatePrimaryProducer("generator", 30*time.Second, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	tab := tableFor(t)
	done := make(chan int)
	go func() {
		total := 0
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) && total < 5 {
			tuples, err := cons.Pop()
			if err != nil {
				break
			}
			total += len(tuples)
			time.Sleep(20 * time.Millisecond)
		}
		done <- total
	}()
	for seq := 1; seq <= 5; seq++ {
		row := sqlmini.Row{sqlmini.IntV(int64(seq)), sqlmini.IntV(1), sqlmini.FloatV(1), sqlmini.StringV("s")}
		if err := p.InsertRow(tab, row); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := <-done; got != 5 {
		t.Fatalf("poll loop saw %d of 5 tuples", got)
	}
}

func TestHTTPReusesSimValidatedComponents(t *testing.T) {
	// The HTTP binding serves the same schema the simulator uses.
	s, c := startServer(t)
	_ = s
	tab := rgma.MonitoringTable()
	if err := c.CreateTable(tableToSQL(tab)); err != nil {
		t.Fatal(err)
	}
	p, err := c.CreatePrimaryProducer("generator", time.Minute, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.InsertRow(tab, rgma.MonitoringRow(7, 1)); err != nil {
		t.Fatal(err)
	}
	cons, err := c.CreateConsumer("SELECT * FROM generator WHERE genid = 7", "history")
	if err != nil {
		t.Fatal(err)
	}
	got, err := cons.Pop()
	if err != nil || len(got) != 1 {
		t.Fatalf("pop = %v, %v", got, err)
	}
}

// tableToSQL renders a schema back to CREATE TABLE (test helper).
func tableToSQL(t *sqlmini.Table) string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE " + t.Name + " (")
	for i, col := range t.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(col.Name + " ")
		switch col.Type {
		case sqlmini.TInteger:
			sb.WriteString("INTEGER")
		case sqlmini.TReal:
			sb.WriteString("REAL")
		case sqlmini.TDouble:
			sb.WriteString("DOUBLE PRECISION")
		case sqlmini.TChar:
			sb.WriteString("CHAR(" + itoa(col.Len) + ")")
		case sqlmini.TVarchar:
			sb.WriteString("VARCHAR(" + itoa(col.Len) + ")")
		}
		if col.Primary {
			sb.WriteString(" PRIMARY KEY")
		}
	}
	sb.WriteString(")")
	return sb.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
