package rgmahttp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"gridmon/internal/rgmacore"
	"gridmon/internal/sqlmini"
)

// Client is the producer/consumer API against an rgmad server, the shape
// of the original R-GMA client libraries ("R-GMA APIs are available in
// Java, C, C++ and Python" — and now Go).
type Client struct {
	base string
	http *http.Client
}

// NewClient targets an rgmad server at addr (host:port).
func NewClient(addr string) *Client {
	return &Client{
		base: "http://" + addr,
		http: &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *Client) post(path string, req any, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("rgmahttp: %s: %s (%s)", path, resp.Status, e.Error)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

func (c *Client) get(path string, out any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("rgmahttp: %s: %s (%s)", path, resp.Status, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// CreateTable declares a table with a CREATE TABLE statement.
func (c *Client) CreateTable(sql string) error {
	return c.post("/schema/createTable", map[string]string{"sql": sql}, nil)
}

// RemoteProducer is a handle to a producer resource on the server.
type RemoteProducer struct {
	c  *Client
	ID int64
}

// CreatePrimaryProducer allocates a producer with memory storage.
// Retention periods are carried as whole seconds and rounded UP, so a
// sub-second request keeps a short retention (1 s) instead of
// truncating to 0 and silently selecting the server's 30 s/60 s
// defaults; non-positive periods are an error.
func (c *Client) CreatePrimaryProducer(table string, latestRetention, historyRetention time.Duration) (*RemoteProducer, error) {
	latestSec, err := rgmacore.RetentionSeconds(latestRetention)
	if err != nil {
		return nil, err
	}
	historySec, err := rgmacore.RetentionSeconds(historyRetention)
	if err != nil {
		return nil, err
	}
	var out struct {
		Producer int64 `json:"producer"`
	}
	err = c.post("/producer/create", map[string]any{
		"table":               table,
		"latestRetentionSec":  latestSec,
		"historyRetentionSec": historySec,
	}, &out)
	if err != nil {
		return nil, err
	}
	return &RemoteProducer{c: c, ID: out.Producer}, nil
}

// Insert publishes one tuple as a SQL INSERT statement.
func (p *RemoteProducer) Insert(sql string) error {
	return p.c.post("/producer/insert", map[string]any{"producer": p.ID, "sql": sql}, nil)
}

// InsertRow formats and publishes a row for the given table schema.
func (p *RemoteProducer) InsertRow(table *sqlmini.Table, row sqlmini.Row) error {
	return p.Insert(sqlmini.FormatInsert(table, row))
}

// Close releases the producer resource.
func (p *RemoteProducer) Close() error {
	return p.c.post("/producer/close", map[string]any{"producer": p.ID}, nil)
}

// RemoteConsumer is a handle to a consumer resource on the server.
type RemoteConsumer struct {
	c  *Client
	ID int64
}

// CreateConsumer installs a query; qtype is "continuous", "latest" or
// "history".
func (c *Client) CreateConsumer(query, qtype string) (*RemoteConsumer, error) {
	var out struct {
		Consumer int64 `json:"consumer"`
	}
	if err := c.post("/consumer/create", map[string]string{"query": query, "type": qtype}, &out); err != nil {
		return nil, err
	}
	return &RemoteConsumer{c: c, ID: out.Consumer}, nil
}

// PoppedTuple is one tuple from a Pop call; cells are SQL literal forms.
type PoppedTuple struct {
	Row        []string `json:"row"`
	InsertedAt int64    `json:"insertedAtNs"`
}

// Pop polls the consumer, as the paper's subscriber did every 100 ms.
func (rc *RemoteConsumer) Pop() ([]PoppedTuple, error) {
	var out struct {
		Tuples []PoppedTuple `json:"tuples"`
	}
	if err := rc.c.get(fmt.Sprintf("/consumer/pop?id=%d", rc.ID), &out); err != nil {
		return nil, err
	}
	return out.Tuples, nil
}

// Close releases the consumer resource.
func (rc *RemoteConsumer) Close() error {
	return rc.c.post("/consumer/close", map[string]any{"consumer": rc.ID}, nil)
}

// Stats reads the server's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	var out Stats
	if err := c.get("/stats", &out); err != nil {
		return Stats{}, err
	}
	return out, nil
}

// RegistryCounts reports registered producers and consumers.
func (c *Client) RegistryCounts() (producers, consumers int, err error) {
	var out struct {
		Producers int `json:"producers"`
		Consumers int `json:"consumers"`
	}
	if err := c.get("/registry", &out); err != nil {
		return 0, 0, err
	}
	return out.Producers, out.Consumers, nil
}
