package message

import (
	"sync"
	"testing"
)

func frozenSample() *Message {
	m := NewMap()
	m.ID = "ID:gen-1/1"
	m.Dest = Topic("power")
	m.Timestamp = 42
	m.SetProperty("id", Int(7))
	m.SetProperty("site", String("aberdeen"))
	m.MapSet("power", Double(480))
	return m.Freeze()
}

func TestFreezeIsIdempotentAndCachesSize(t *testing.T) {
	m := NewText("hello")
	m.ID = "m1"
	want := m.EncodedSize()
	if m.Frozen() {
		t.Fatal("fresh message reports frozen")
	}
	if m.Freeze() != m {
		t.Fatal("Freeze must return the receiver")
	}
	if !m.Frozen() {
		t.Fatal("message not frozen after Freeze")
	}
	if got := m.EncodedSize(); got != want {
		t.Fatalf("cached EncodedSize = %d, want %d", got, want)
	}
	m.Freeze() // no-op
	if got := m.EncodedSize(); got != want {
		t.Fatalf("EncodedSize after re-freeze = %d, want %d", got, want)
	}
}

func TestFrozenMutatorsPanic(t *testing.T) {
	muts := map[string]func(*Message){
		"SetText":      func(m *Message) { m.SetText("x") },
		"SetBytes":     func(m *Message) { m.SetBytes([]byte{1}) },
		"SetObject":    func(m *Message) { m.SetObject([]byte{1}) },
		"StreamAppend": func(m *Message) { m.StreamAppend(Int(1)) },
		"SetProperty":  func(m *Message) { m.SetProperty("p", Int(1)) },
		"MapSet":       func(m *Message) { m.MapSet("k", Int(1)) },
	}
	for name, mut := range muts {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on frozen message did not panic", name)
				}
			}()
			mut(frozenSample())
		}()
	}
}

func TestCloneOfFrozenIsMutable(t *testing.T) {
	m := frozenSample()
	// Prime the encoding cache as a transport would.
	enc := m.CachedEncoding(func(*Message) []byte { return []byte{0xAA} })
	if len(enc) != 1 {
		t.Fatalf("cached encoding = %v", enc)
	}
	c := m.Clone()
	if c.Frozen() {
		t.Fatal("clone of frozen message is frozen")
	}
	if !c.Equal(m) {
		t.Fatal("clone differs from original")
	}
	if got := c.CachedEncoding(func(*Message) []byte { return nil }); got != nil {
		t.Fatalf("clone inherited the encoding cache: %v", got)
	}
	// The clone accepts mutation without touching the frozen original.
	c.SetProperty("extra", Int(1))
	c.MapSet("power", Double(500))
	c.Redelivered = true
	if _, ok := m.Property("extra"); ok {
		t.Fatal("mutating the clone leaked into the frozen original")
	}
	v, _ := m.MapGet("power")
	if d, _ := v.AsDouble(); d != 480 {
		t.Fatalf("frozen map value changed: %v", v)
	}
}

func TestUnfrozenHasNoCachedEncoding(t *testing.T) {
	m := NewText("x")
	if got := m.CachedEncoding(func(*Message) []byte { return []byte{1} }); got != nil {
		t.Fatalf("unfrozen CachedEncoding = %v, want nil", got)
	}
}

// TestConcurrentFrozenReads proves the fan-out sharing contract under the
// race detector: one frozen message read concurrently by many
// "subscribers" (selector-style field lookups, size queries, encoding
// cache fills) involves no writes that race.
func TestConcurrentFrozenReads(t *testing.T) {
	m := frozenSample()
	var wg sync.WaitGroup
	encode := func(msg *Message) []byte {
		// Stand-in for the wire codec: derive bytes from message state.
		return append([]byte(nil), byte(msg.BodyKind()), byte(len(msg.PropertyNames())))
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if _, ok := m.SelectorField("id"); !ok {
					t.Error("missing property id")
					return
				}
				if m.EncodedSize() <= 0 {
					t.Error("bad encoded size")
					return
				}
				if len(m.CachedEncoding(encode)) != 2 {
					t.Error("bad cached encoding")
					return
				}
				if m.MapLen() != 1 {
					t.Error("bad map len")
					return
				}
			}
		}()
	}
	wg.Wait()
}
