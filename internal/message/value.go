// Package message implements a JMS 1.1-style message model: typed property
// values, message headers, and the five JMS body types. NaradaBrokering is
// "fully compliant with JMS"; the paper's workload wraps each monitoring
// sample (two int, five float, two long, three double and four string
// values) in a JMS MapMessage, so the model here is faithful to the JMS
// spec where the paper exercises it.
package message

import (
	"errors"
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the JMS primitive property/body value types.
type Kind uint8

// Value kinds, mirroring the JMS typed-value system.
const (
	KindNull Kind = iota
	KindBool
	KindByte
	KindShort
	KindInt
	KindLong
	KindFloat
	KindDouble
	KindString
	KindBytes
)

var kindNames = [...]string{"null", "bool", "byte", "short", "int", "long", "float", "double", "string", "bytes"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrConversion is wrapped by all failed value conversions, matching the
// JMS MessageFormatException cases.
var ErrConversion = errors.New("message: unsupported value conversion")

// Value is a typed JMS value. The zero Value is the JMS null.
type Value struct {
	kind Kind
	num  uint64 // bits of the numeric/bool payload
	str  string
	buf  []byte
}

// Constructors for each JMS type.

// Null returns the JMS null value.
func Null() Value { return Value{} }

// Bool wraps a boolean.
func Bool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Byte wraps a signed 8-bit integer.
func Byte(v int8) Value { return Value{kind: KindByte, num: uint64(v)} }

// Short wraps a signed 16-bit integer.
func Short(v int16) Value { return Value{kind: KindShort, num: uint64(v)} }

// Int wraps a signed 32-bit integer.
func Int(v int32) Value { return Value{kind: KindInt, num: uint64(v)} }

// Long wraps a signed 64-bit integer.
func Long(v int64) Value { return Value{kind: KindLong, num: uint64(v)} }

// Float wraps a 32-bit float.
func Float(v float32) Value { return Value{kind: KindFloat, num: uint64(math.Float32bits(v))} }

// Double wraps a 64-bit float.
func Double(v float64) Value { return Value{kind: KindDouble, num: math.Float64bits(v)} }

// String wraps a string.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Bytes wraps a byte slice. The slice is not copied.
func Bytes(b []byte) Value { return Value{kind: KindBytes, buf: b} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is JMS null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsNumeric reports whether the value is one of the numeric kinds.
func (v Value) IsNumeric() bool {
	switch v.kind {
	case KindByte, KindShort, KindInt, KindLong, KindFloat, KindDouble:
		return true
	}
	return false
}

// IsIntegral reports whether the value is an integer kind.
func (v Value) IsIntegral() bool {
	switch v.kind {
	case KindByte, KindShort, KindInt, KindLong:
		return true
	}
	return false
}

// Raw exposes the value's kind together with its raw numeric bits and
// string payload, without conversion checks or error plumbing. Integer
// kinds are stored sign-extended, so int64(num) recovers them; float
// kinds hold their IEEE bits (32-bit for KindFloat). Hot-path evaluators
// (the selector stack machine) use this to avoid the As* conversion
// switches per property access.
func (v Value) Raw() (kind Kind, num uint64, str string) {
	return v.kind, v.num, v.str
}

// rawInt returns the signed integer payload without conversion checks.
func (v Value) rawInt() int64 {
	switch v.kind {
	case KindByte:
		return int64(int8(v.num))
	case KindShort:
		return int64(int16(v.num))
	case KindInt:
		return int64(int32(v.num))
	default:
		return int64(v.num)
	}
}

// rawFloat returns the floating payload without conversion checks.
func (v Value) rawFloat() float64 {
	if v.kind == KindFloat {
		return float64(math.Float32frombits(uint32(v.num)))
	}
	return math.Float64frombits(v.num)
}

// AsBool converts following the JMS conversion table: booleans convert
// directly and strings are parsed; everything else fails.
func (v Value) AsBool() (bool, error) {
	switch v.kind {
	case KindBool:
		return v.num != 0, nil
	case KindString:
		b, err := strconv.ParseBool(v.str)
		if err != nil {
			return false, fmt.Errorf("%w: %q to bool", ErrConversion, v.str)
		}
		return b, nil
	}
	return false, fmt.Errorf("%w: %v to bool", ErrConversion, v.kind)
}

// AsLong converts integral kinds and numeric strings to int64. Floats do
// not convert to integers in JMS.
func (v Value) AsLong() (int64, error) {
	switch v.kind {
	case KindByte, KindShort, KindInt, KindLong:
		return v.rawInt(), nil
	case KindString:
		n, err := strconv.ParseInt(v.str, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("%w: %q to long", ErrConversion, v.str)
		}
		return n, nil
	}
	return 0, fmt.Errorf("%w: %v to long", ErrConversion, v.kind)
}

// AsDouble converts any numeric kind or numeric string to float64.
func (v Value) AsDouble() (float64, error) {
	switch v.kind {
	case KindByte, KindShort, KindInt, KindLong:
		return float64(v.rawInt()), nil
	case KindFloat, KindDouble:
		return v.rawFloat(), nil
	case KindString:
		f, err := strconv.ParseFloat(v.str, 64)
		if err != nil {
			return 0, fmt.Errorf("%w: %q to double", ErrConversion, v.str)
		}
		return f, nil
	}
	return 0, fmt.Errorf("%w: %v to double", ErrConversion, v.kind)
}

// AsString renders any value as a string (every JMS type converts to
// String except bytes, which JMS also allows but without interpretation).
func (v Value) AsString() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindBool:
		return strconv.FormatBool(v.num != 0)
	case KindByte, KindShort, KindInt, KindLong:
		return strconv.FormatInt(v.rawInt(), 10)
	case KindFloat:
		return strconv.FormatFloat(v.rawFloat(), 'g', -1, 32)
	case KindDouble:
		return strconv.FormatFloat(v.rawFloat(), 'g', -1, 64)
	case KindString:
		return v.str
	case KindBytes:
		return fmt.Sprintf("%x", v.buf)
	}
	return ""
}

// AsBytes returns the byte payload for bytes values.
func (v Value) AsBytes() ([]byte, error) {
	if v.kind != KindBytes {
		return nil, fmt.Errorf("%w: %v to bytes", ErrConversion, v.kind)
	}
	return v.buf, nil
}

// Equal reports deep equality of two values (kind and payload).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.str == o.str
	case KindBytes:
		if len(v.buf) != len(o.buf) {
			return false
		}
		for i := range v.buf {
			if v.buf[i] != o.buf[i] {
				return false
			}
		}
		return true
	default:
		return v.num == o.num
	}
}

// String implements fmt.Stringer with the kind annotation, for debugging.
func (v Value) String() string {
	if v.kind == KindNull {
		return "null"
	}
	return fmt.Sprintf("%s(%s)", v.kind, v.AsString())
}

// EncodedSize reports the number of bytes the wire codec uses for the
// value: a one-byte kind tag plus the payload.
func (v Value) EncodedSize() int {
	switch v.kind {
	case KindNull:
		return 1
	case KindBool, KindByte:
		return 2
	case KindShort:
		return 3
	case KindInt, KindFloat:
		return 5
	case KindLong, KindDouble:
		return 9
	case KindString:
		return 1 + 4 + len(v.str)
	case KindBytes:
		return 1 + 4 + len(v.buf)
	}
	return 1
}
