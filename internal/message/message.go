package message

import (
	"fmt"
	"sort"
	"sync"
)

// DestKind distinguishes the two JMS destination flavours.
type DestKind uint8

// JMS destination kinds.
const (
	TopicKind DestKind = iota + 1
	QueueKind
)

func (d DestKind) String() string {
	switch d {
	case TopicKind:
		return "topic"
	case QueueKind:
		return "queue"
	}
	return "dest(?)"
}

// Destination names a topic or queue.
type Destination struct {
	Kind DestKind
	Name string
}

// Topic returns a topic destination.
func Topic(name string) Destination { return Destination{Kind: TopicKind, Name: name} }

// Queue returns a queue destination.
func Queue(name string) Destination { return Destination{Kind: QueueKind, Name: name} }

// IsZero reports whether the destination is unset.
func (d Destination) IsZero() bool { return d.Kind == 0 && d.Name == "" }

func (d Destination) String() string { return fmt.Sprintf("%s:%s", d.Kind, d.Name) }

// DeliveryMode is the JMS persistence flag.
type DeliveryMode uint8

// JMS delivery modes.
const (
	NonPersistent DeliveryMode = 1
	Persistent    DeliveryMode = 2
)

func (m DeliveryMode) String() string {
	switch m {
	case NonPersistent:
		return "NON_PERSISTENT"
	case Persistent:
		return "PERSISTENT"
	}
	return "deliverymode(?)"
}

// AckMode is the JMS session acknowledgement mode. The paper's tests use
// AUTO_ACKNOWLEDGE everywhere except its "UDP CLI" test, which uses
// CLIENT_ACKNOWLEDGE.
type AckMode uint8

// JMS acknowledgement modes.
const (
	AutoAck AckMode = iota + 1
	ClientAck
	DupsOKAck
)

func (m AckMode) String() string {
	switch m {
	case AutoAck:
		return "AUTO_ACKNOWLEDGE"
	case ClientAck:
		return "CLIENT_ACKNOWLEDGE"
	case DupsOKAck:
		return "DUPS_OK_ACKNOWLEDGE"
	}
	return "ackmode(?)"
}

// BodyKind enumerates the five JMS message body types.
type BodyKind uint8

// JMS body kinds. EmptyBody corresponds to a javax.jms.Message with no
// payload.
const (
	EmptyBody BodyKind = iota
	TextBody
	MapBody
	BytesBody
	StreamBody
	ObjectBody
)

func (b BodyKind) String() string {
	switch b {
	case EmptyBody:
		return "Message"
	case TextBody:
		return "TextMessage"
	case MapBody:
		return "MapMessage"
	case BytesBody:
		return "BytesMessage"
	case StreamBody:
		return "StreamMessage"
	case ObjectBody:
		return "ObjectMessage"
	}
	return "body(?)"
}

// Message is a JMS message: headers, user properties, and a typed body.
//
// A message starts out mutable while the producer assembles it. Once the
// broker accepts it, Freeze seals it: mutator methods panic, EncodedSize
// is computed once and cached, and the broker fans the single frozen
// value out to every matching subscriber by reference instead of deep-
// copying per delivery. Clone produces an independent mutable copy for
// the rare paths that genuinely need one (e.g. expanding a payload
// before re-publishing).
type Message struct {
	// Standard JMS headers.
	ID            string // JMSMessageID
	Dest          Destination
	Timestamp     int64 // JMSTimestamp, nanoseconds on the producing clock
	Expiration    int64 // JMSExpiration, 0 = never
	Priority      int   // 0..9, JMS default 4
	CorrelationID string
	ReplyTo       Destination
	Type          string // JMSType
	Redelivered   bool
	Mode          DeliveryMode

	propNames []string // insertion order, for deterministic encoding
	props     map[string]Value

	bodyKind BodyKind
	text     string
	bytes    []byte
	stream   []Value
	mapNames []string
	mapVals  map[string]Value

	// Sealed state. encSize caches EncodedSize at freeze time; encOnce /
	// enc cache the wire codec's message encoding, filled at most once by
	// the first transport that marshals the frozen message (concurrent
	// connection writers may race to it, hence the Once).
	frozen  bool
	encSize int
	encOnce *sync.Once
	enc     []byte
}

// New returns an empty Message with JMS defaults (priority 4,
// non-persistent).
func New() *Message {
	return &Message{Priority: 4, Mode: NonPersistent}
}

// NewText returns a TextMessage.
func NewText(text string) *Message {
	m := New()
	m.SetText(text)
	return m
}

// NewMap returns an empty MapMessage.
func NewMap() *Message {
	m := New()
	m.bodyKind = MapBody
	m.mapVals = make(map[string]Value)
	return m
}

// NewBytes returns a BytesMessage wrapping b (not copied).
func NewBytes(b []byte) *Message {
	m := New()
	m.bodyKind = BytesBody
	m.bytes = b
	return m
}

// BodyKind reports which JMS message type this is.
func (m *Message) BodyKind() BodyKind { return m.bodyKind }

// Freeze seals the message: every mutator method panics from here on,
// and the encoded size is computed once and cached. The broker freezes a
// message when it accepts a publish, then shares the one frozen value
// across all subscriber deliveries, durable backlogs and queue backlogs.
// Freezing a frozen message is a no-op; Freeze returns m for call-site
// convenience.
//
// Exported header fields (ID, Priority, Dest, ...) and the backing array
// of a payload passed to SetBytes cannot be guarded this way — not
// mutating those after Publish is part of the publisher contract and is
// not enforced at runtime.
//
// Freeze itself is not safe for concurrent use — the single broker event
// loop freezes before any sharing — but once frozen the message is safe
// for unsynchronized concurrent reads.
func (m *Message) Freeze() *Message {
	if !m.frozen {
		m.encSize = m.EncodedSize()
		m.encOnce = new(sync.Once)
		m.frozen = true
	}
	return m
}

// Frozen reports whether the message is sealed.
func (m *Message) Frozen() bool { return m.frozen }

// CachedEncoding returns the frozen message's cached wire encoding,
// invoking encode at most once over the message's lifetime (package wire
// supplies the codec; message does not depend on it). Concurrent callers
// are safe: all but the first block until the encoding is published. It
// returns nil for unfrozen messages, whose bytes are not stable enough
// to cache.
func (m *Message) CachedEncoding(encode func(*Message) []byte) []byte {
	if !m.frozen {
		return nil
	}
	m.encOnce.Do(func() { m.enc = encode(m) })
	return m.enc
}

// mustBeMutable panics when op is attempted on a frozen message.
func (m *Message) mustBeMutable(op string) {
	if m.frozen {
		panic("message: " + op + " on frozen message " + m.ID)
	}
}

// SetText makes the message a TextMessage with the given payload.
func (m *Message) SetText(s string) {
	m.mustBeMutable("SetText")
	m.bodyKind = TextBody
	m.text = s
}

// Text returns the TextMessage payload ("" for other kinds).
func (m *Message) Text() string { return m.text }

// BytesPayload returns the BytesMessage (or ObjectMessage) payload.
func (m *Message) BytesPayload() []byte { return m.bytes }

// SetBytes makes the message a BytesMessage with payload b (not copied).
func (m *Message) SetBytes(b []byte) {
	m.mustBeMutable("SetBytes")
	m.bodyKind = BytesBody
	m.bytes = b
}

// SetObject makes the message an ObjectMessage whose serialized form is b.
// The broker treats the payload as opaque, as JMS providers do.
func (m *Message) SetObject(b []byte) {
	m.mustBeMutable("SetObject")
	m.bodyKind = ObjectBody
	m.bytes = b
}

// StreamAppend appends a value to a StreamMessage body.
func (m *Message) StreamAppend(v Value) {
	m.mustBeMutable("StreamAppend")
	m.bodyKind = StreamBody
	m.stream = append(m.stream, v)
}

// Stream returns the StreamMessage values.
func (m *Message) Stream() []Value { return m.stream }

// SetProperty sets a user property. Setting a property that already exists
// overwrites it in place.
func (m *Message) SetProperty(name string, v Value) {
	m.mustBeMutable("SetProperty")
	if m.props == nil {
		m.props = make(map[string]Value)
	}
	if _, ok := m.props[name]; !ok {
		m.propNames = append(m.propNames, name)
	}
	m.props[name] = v
}

// Property returns a user property and whether it exists.
func (m *Message) Property(name string) (Value, bool) {
	v, ok := m.props[name]
	return v, ok
}

// PropertyNames returns property names in insertion order.
func (m *Message) PropertyNames() []string { return m.propNames }

// HeaderField resolves the JMS header pseudo-properties that message
// selectors may reference (JMSPriority, JMSTimestamp, JMSMessageID,
// JMSCorrelationID, JMSType, JMSDeliveryMode). Unknown names report false.
func (m *Message) HeaderField(name string) (Value, bool) {
	switch name {
	case "JMSPriority":
		return Int(int32(m.Priority)), true
	case "JMSTimestamp":
		return Long(m.Timestamp), true
	case "JMSMessageID":
		return String(m.ID), true
	case "JMSCorrelationID":
		return String(m.CorrelationID), true
	case "JMSType":
		return String(m.Type), true
	case "JMSDeliveryMode":
		if m.Mode == Persistent {
			return String("PERSISTENT"), true
		}
		return String("NON_PERSISTENT"), true
	case "JMSRedelivered":
		return Bool(m.Redelivered), true
	}
	return Value{}, false
}

// SelectorField implements the lookup used by selector evaluation: JMS
// headers take precedence, then user properties; missing identifiers are
// null per the selector spec.
func (m *Message) SelectorField(name string) (Value, bool) {
	if v, ok := m.HeaderField(name); ok {
		return v, ok
	}
	return m.Property(name)
}

// MapSet sets a named value in a MapMessage body. It panics when the
// message is not a MapMessage: mixing body kinds is a programming error.
func (m *Message) MapSet(name string, v Value) {
	m.mustBeMutable("MapSet")
	if m.bodyKind != MapBody {
		panic(fmt.Sprintf("message: MapSet on %v", m.bodyKind))
	}
	if _, ok := m.mapVals[name]; !ok {
		m.mapNames = append(m.mapNames, name)
	}
	m.mapVals[name] = v
}

// MapGet returns a named value from a MapMessage body.
func (m *Message) MapGet(name string) (Value, bool) {
	v, ok := m.mapVals[name]
	return v, ok
}

// MapNames returns MapMessage entry names in insertion order.
func (m *Message) MapNames() []string { return m.mapNames }

// MapLen reports the number of entries in a MapMessage body.
func (m *Message) MapLen() int { return len(m.mapVals) }

// Clone returns a deep, mutable copy. Since frozen messages are fanned
// out by reference, cloning is reserved for the paths that truly need a
// private copy — e.g. expanding a payload before re-publishing, or a
// redelivery that must flip Redelivered without aliasing live deliveries.
// A clone of a frozen message is unfrozen and carries no cached encoding.
func (m *Message) Clone() *Message {
	c := *m
	c.frozen = false
	c.encSize = 0
	c.encOnce = nil
	c.enc = nil
	if m.props != nil {
		c.props = make(map[string]Value, len(m.props))
		for k, v := range m.props {
			c.props[k] = v
		}
		c.propNames = append([]string(nil), m.propNames...)
	}
	if m.mapVals != nil {
		c.mapVals = make(map[string]Value, len(m.mapVals))
		for k, v := range m.mapVals {
			c.mapVals[k] = v
		}
		c.mapNames = append([]string(nil), m.mapNames...)
	}
	if m.bytes != nil {
		c.bytes = append([]byte(nil), m.bytes...)
	}
	if m.stream != nil {
		c.stream = append([]Value(nil), m.stream...)
	}
	return &c
}

// EncodedSize estimates the wire size of the message in bytes: fixed
// header fields, property table and body. It matches the wire codec's
// actual output size. Frozen messages return the size cached at freeze
// time without recomputing.
func (m *Message) EncodedSize() int {
	if m.frozen {
		return m.encSize
	}
	n := 1 + // body kind
		4 + len(m.ID) +
		1 + 4 + len(m.Dest.Name) +
		8 + 8 + 1 + // timestamp, expiration, priority
		4 + len(m.CorrelationID) +
		1 + 4 + len(m.ReplyTo.Name) +
		4 + len(m.Type) +
		1 + 1 // redelivered, mode
	n += 4 // property count
	for _, name := range m.propNames {
		n += 4 + len(name) + m.props[name].EncodedSize()
	}
	switch m.bodyKind {
	case TextBody:
		n += 4 + len(m.text)
	case BytesBody, ObjectBody:
		n += 4 + len(m.bytes)
	case MapBody:
		n += 4
		for _, name := range m.mapNames {
			n += 4 + len(name) + m.mapVals[name].EncodedSize()
		}
	case StreamBody:
		n += 4
		for _, v := range m.stream {
			n += v.EncodedSize()
		}
	}
	return n
}

// Equal reports whether two messages have identical headers, properties
// and bodies. Property and map ordering is ignored.
func (m *Message) Equal(o *Message) bool {
	if m == nil || o == nil {
		return m == o
	}
	if m.ID != o.ID || m.Dest != o.Dest || m.Timestamp != o.Timestamp ||
		m.Expiration != o.Expiration || m.Priority != o.Priority ||
		m.CorrelationID != o.CorrelationID || m.ReplyTo != o.ReplyTo ||
		m.Type != o.Type || m.Redelivered != o.Redelivered || m.Mode != o.Mode ||
		m.bodyKind != o.bodyKind || m.text != o.text {
		return false
	}
	if len(m.props) != len(o.props) || len(m.mapVals) != len(o.mapVals) {
		return false
	}
	for k, v := range m.props {
		ov, ok := o.props[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	for k, v := range m.mapVals {
		ov, ok := o.mapVals[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	if len(m.bytes) != len(o.bytes) {
		return false
	}
	for i := range m.bytes {
		if m.bytes[i] != o.bytes[i] {
			return false
		}
	}
	if len(m.stream) != len(o.stream) {
		return false
	}
	for i := range m.stream {
		if !m.stream[i].Equal(o.stream[i]) {
			return false
		}
	}
	return true
}

// String renders a compact debug form.
func (m *Message) String() string {
	keys := append([]string(nil), m.propNames...)
	sort.Strings(keys)
	return fmt.Sprintf("%v{id=%s dest=%v props=%d body=%dB}", m.bodyKind, m.ID, m.Dest, len(keys), m.EncodedSize())
}
