package message

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Bool(true), KindBool},
		{Byte(-3), KindByte},
		{Short(-300), KindShort},
		{Int(-70000), KindInt},
		{Long(1 << 40), KindLong},
		{Float(1.5), KindFloat},
		{Double(2.5), KindDouble},
		{String("x"), KindString},
		{Bytes([]byte{1, 2}), KindBytes},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
	if !Null().IsNull() || Bool(false).IsNull() {
		t.Error("IsNull wrong")
	}
}

func TestNumericPredicates(t *testing.T) {
	for _, v := range []Value{Byte(1), Short(1), Int(1), Long(1)} {
		if !v.IsNumeric() || !v.IsIntegral() {
			t.Errorf("%v should be integral numeric", v)
		}
	}
	for _, v := range []Value{Float(1), Double(1)} {
		if !v.IsNumeric() || v.IsIntegral() {
			t.Errorf("%v should be non-integral numeric", v)
		}
	}
	for _, v := range []Value{Null(), Bool(true), String("1"), Bytes(nil)} {
		if v.IsNumeric() {
			t.Errorf("%v should not be numeric", v)
		}
	}
}

func TestAsBool(t *testing.T) {
	if b, err := Bool(true).AsBool(); err != nil || !b {
		t.Fatalf("Bool->bool: %v %v", b, err)
	}
	if b, err := String("true").AsBool(); err != nil || !b {
		t.Fatalf("String->bool: %v %v", b, err)
	}
	if _, err := String("maybe").AsBool(); !errors.Is(err, ErrConversion) {
		t.Fatalf("bad string->bool err = %v", err)
	}
	if _, err := Int(1).AsBool(); !errors.Is(err, ErrConversion) {
		t.Fatalf("int->bool should fail, got %v", err)
	}
}

func TestAsLong(t *testing.T) {
	for _, c := range []struct {
		v    Value
		want int64
	}{
		{Byte(-5), -5}, {Short(-1000), -1000}, {Int(-100000), -100000},
		{Long(1 << 40), 1 << 40}, {String("42"), 42},
	} {
		got, err := c.v.AsLong()
		if err != nil || got != c.want {
			t.Errorf("%v AsLong = %d, %v; want %d", c.v, got, err, c.want)
		}
	}
	// JMS forbids float->long and bool->long.
	for _, v := range []Value{Float(1), Double(1), Bool(true), Null(), Bytes(nil), String("x")} {
		if _, err := v.AsLong(); !errors.Is(err, ErrConversion) {
			t.Errorf("%v AsLong should fail, got %v", v, err)
		}
	}
}

func TestAsDouble(t *testing.T) {
	for _, c := range []struct {
		v    Value
		want float64
	}{
		{Byte(3), 3}, {Int(-7), -7}, {Long(9), 9},
		{Float(1.5), 1.5}, {Double(2.25), 2.25}, {String("0.5"), 0.5},
	} {
		got, err := c.v.AsDouble()
		if err != nil || got != c.want {
			t.Errorf("%v AsDouble = %v, %v; want %v", c.v, got, err, c.want)
		}
	}
	for _, v := range []Value{Bool(true), Null(), Bytes(nil), String("z")} {
		if _, err := v.AsDouble(); !errors.Is(err, ErrConversion) {
			t.Errorf("%v AsDouble should fail", v)
		}
	}
}

func TestAsString(t *testing.T) {
	for _, c := range []struct {
		v    Value
		want string
	}{
		{Null(), ""}, {Bool(true), "true"}, {Byte(-2), "-2"},
		{Int(12), "12"}, {Long(-9), "-9"}, {Float(1.5), "1.5"},
		{Double(2.5), "2.5"}, {String("hi"), "hi"}, {Bytes([]byte{0xab}), "ab"},
	} {
		if got := c.v.AsString(); got != c.want {
			t.Errorf("%v AsString = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestAsBytes(t *testing.T) {
	b, err := Bytes([]byte{1, 2, 3}).AsBytes()
	if err != nil || len(b) != 3 {
		t.Fatalf("AsBytes: %v %v", b, err)
	}
	if _, err := Int(1).AsBytes(); !errors.Is(err, ErrConversion) {
		t.Fatal("int->bytes should fail")
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(5).Equal(Int(5)) || Int(5).Equal(Int(6)) {
		t.Fatal("int equal wrong")
	}
	if Int(5).Equal(Long(5)) {
		t.Fatal("different kinds must not be Equal")
	}
	if !String("a").Equal(String("a")) || String("a").Equal(String("b")) {
		t.Fatal("string equal wrong")
	}
	if !Bytes([]byte{1}).Equal(Bytes([]byte{1})) || Bytes([]byte{1}).Equal(Bytes([]byte{2})) {
		t.Fatal("bytes equal wrong")
	}
	if Bytes([]byte{1}).Equal(Bytes([]byte{1, 2})) {
		t.Fatal("bytes length mismatch")
	}
	if !Null().Equal(Null()) {
		t.Fatal("null equal wrong")
	}
}

func TestValueStringer(t *testing.T) {
	if s := Int(5).String(); !strings.Contains(s, "int") || !strings.Contains(s, "5") {
		t.Fatalf("String() = %q", s)
	}
	if Null().String() != "null" {
		t.Fatal("null String()")
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind String empty")
	}
}

func TestFloatRoundTripPrecision(t *testing.T) {
	f := float32(math.Pi)
	got, err := Float(f).AsDouble()
	if err != nil || float32(got) != f {
		t.Fatalf("float round trip: %v %v", got, err)
	}
	d := math.Pi
	got, err = Double(d).AsDouble()
	if err != nil || got != d {
		t.Fatalf("double round trip: %v %v", got, err)
	}
}

func TestEncodedSize(t *testing.T) {
	for _, c := range []struct {
		v    Value
		want int
	}{
		{Null(), 1}, {Bool(true), 2}, {Byte(1), 2}, {Short(1), 3},
		{Int(1), 5}, {Float(1), 5}, {Long(1), 9}, {Double(1), 9},
		{String("abc"), 8}, {Bytes([]byte{1, 2}), 7},
	} {
		if got := c.v.EncodedSize(); got != c.want {
			t.Errorf("%v EncodedSize = %d, want %d", c.v.Kind(), got, c.want)
		}
	}
}

// Property: integer round trips through Long are lossless.
func TestPropertyLongRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		got, err := Long(n).AsLong()
		return err == nil && got == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: AsString of an int parses back to the same value.
func TestPropertyStringNumericRoundTrip(t *testing.T) {
	f := func(n int32) bool {
		s := String(Int(n).AsString())
		got, err := s.AsLong()
		return err == nil && got == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
