package message

import (
	"strings"
	"testing"
)

// paperMapMessage builds the paper's exact monitoring payload: "Two
// integer, five float, two long, three double and four string values were
// packaged in a JMS MapMessage".
func paperMapMessage() *Message {
	m := NewMap()
	m.MapSet("id", Int(42))
	m.MapSet("seq", Int(7))
	m.MapSet("power", Float(1.5))
	m.MapSet("voltage", Float(239.9))
	m.MapSet("current", Float(13.1))
	m.MapSet("frequency", Float(50.01))
	m.MapSet("phase", Float(0.4))
	m.MapSet("sent_ns", Long(123456789))
	m.MapSet("uptime_ns", Long(987654321))
	m.MapSet("temp", Double(341.2))
	m.MapSet("pressure", Double(101.3))
	m.MapSet("fuel", Double(0.73))
	m.MapSet("site", String("aberdeen-07"))
	m.MapSet("model", String("wind-v90"))
	m.MapSet("status", String("RUNNING"))
	m.MapSet("operator", String("grid-ops"))
	return m
}

func TestDestinations(t *testing.T) {
	top := Topic("power.monitoring")
	if top.Kind != TopicKind || top.Name != "power.monitoring" {
		t.Fatalf("topic = %+v", top)
	}
	q := Queue("jobs")
	if q.Kind != QueueKind {
		t.Fatalf("queue = %+v", q)
	}
	if !(Destination{}).IsZero() || top.IsZero() {
		t.Fatal("IsZero wrong")
	}
	if top.String() != "topic:power.monitoring" {
		t.Fatalf("String = %q", top.String())
	}
}

func TestEnumsStringers(t *testing.T) {
	if NonPersistent.String() != "NON_PERSISTENT" || Persistent.String() != "PERSISTENT" {
		t.Fatal("delivery mode names")
	}
	if AutoAck.String() != "AUTO_ACKNOWLEDGE" || ClientAck.String() != "CLIENT_ACKNOWLEDGE" || DupsOKAck.String() != "DUPS_OK_ACKNOWLEDGE" {
		t.Fatal("ack mode names")
	}
	if MapBody.String() != "MapMessage" || TextBody.String() != "TextMessage" {
		t.Fatal("body kind names")
	}
	if DeliveryMode(9).String() == "" || AckMode(9).String() == "" || BodyKind(99).String() == "" || DestKind(9).String() == "" {
		t.Fatal("unknown enum stringers empty")
	}
}

func TestNewDefaults(t *testing.T) {
	m := New()
	if m.Priority != 4 || m.Mode != NonPersistent || m.BodyKind() != EmptyBody {
		t.Fatalf("defaults: %+v", m)
	}
}

func TestTextMessage(t *testing.T) {
	m := NewText("hello")
	if m.BodyKind() != TextBody || m.Text() != "hello" {
		t.Fatal("text message")
	}
}

func TestBytesAndObject(t *testing.T) {
	m := NewBytes([]byte{1, 2, 3})
	if m.BodyKind() != BytesBody || len(m.BytesPayload()) != 3 {
		t.Fatal("bytes message")
	}
	m2 := New()
	m2.SetObject([]byte{9})
	if m2.BodyKind() != ObjectBody || len(m2.BytesPayload()) != 1 {
		t.Fatal("object message")
	}
}

func TestStreamMessage(t *testing.T) {
	m := New()
	m.StreamAppend(Int(1))
	m.StreamAppend(String("two"))
	if m.BodyKind() != StreamBody || len(m.Stream()) != 2 {
		t.Fatal("stream message")
	}
}

func TestProperties(t *testing.T) {
	m := New()
	m.SetProperty("id", Int(9))
	m.SetProperty("site", String("x"))
	m.SetProperty("id", Int(10)) // overwrite keeps order
	v, ok := m.Property("id")
	if !ok || !v.Equal(Int(10)) {
		t.Fatalf("property id = %v %v", v, ok)
	}
	if _, ok := m.Property("nope"); ok {
		t.Fatal("missing property found")
	}
	names := m.PropertyNames()
	if len(names) != 2 || names[0] != "id" || names[1] != "site" {
		t.Fatalf("names = %v", names)
	}
}

func TestHeaderFields(t *testing.T) {
	m := New()
	m.ID = "ID:42"
	m.Priority = 7
	m.Timestamp = 1234
	m.CorrelationID = "c1"
	m.Type = "telemetry"
	m.Mode = Persistent
	m.Redelivered = true
	cases := map[string]Value{
		"JMSPriority":      Int(7),
		"JMSTimestamp":     Long(1234),
		"JMSMessageID":     String("ID:42"),
		"JMSCorrelationID": String("c1"),
		"JMSType":          String("telemetry"),
		"JMSDeliveryMode":  String("PERSISTENT"),
		"JMSRedelivered":   Bool(true),
	}
	for name, want := range cases {
		got, ok := m.HeaderField(name)
		if !ok || !got.Equal(want) {
			t.Errorf("HeaderField(%s) = %v %v, want %v", name, got, ok, want)
		}
	}
	if _, ok := m.HeaderField("JMSBogus"); ok {
		t.Fatal("unknown header resolved")
	}
	m.Mode = NonPersistent
	if v, _ := m.HeaderField("JMSDeliveryMode"); v.AsString() != "NON_PERSISTENT" {
		t.Fatal("non-persistent mode header")
	}
}

func TestSelectorFieldPrecedence(t *testing.T) {
	m := New()
	m.Priority = 9
	m.SetProperty("JMSPriority", Int(1)) // header must win
	m.SetProperty("custom", String("v"))
	if v, ok := m.SelectorField("JMSPriority"); !ok || !v.Equal(Int(9)) {
		t.Fatalf("header precedence: %v %v", v, ok)
	}
	if v, ok := m.SelectorField("custom"); !ok || v.AsString() != "v" {
		t.Fatal("property lookup")
	}
	if _, ok := m.SelectorField("absent"); ok {
		t.Fatal("absent field resolved")
	}
}

func TestMapBody(t *testing.T) {
	m := paperMapMessage()
	if m.MapLen() != 16 {
		t.Fatalf("map len = %d, want 16 (2 int + 5 float + 2 long + 3 double + 4 string)", m.MapLen())
	}
	v, ok := m.MapGet("voltage")
	if !ok {
		t.Fatal("voltage missing")
	}
	if f, err := v.AsDouble(); err != nil || f < 239 || f > 240 {
		t.Fatalf("voltage = %v %v", f, err)
	}
	if _, ok := m.MapGet("absent"); ok {
		t.Fatal("absent map entry found")
	}
	names := m.MapNames()
	if names[0] != "id" || names[len(names)-1] != "operator" {
		t.Fatalf("map order: %v", names)
	}
}

func TestMapSetOnNonMapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MapSet on text message did not panic")
		}
	}()
	NewText("x").MapSet("a", Int(1))
}

func TestClone(t *testing.T) {
	m := paperMapMessage()
	m.ID = "ID:1"
	m.SetProperty("id", Int(5))
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.MapSet("power", Float(99))
	c.SetProperty("id", Int(6))
	c.ID = "ID:2"
	if v, _ := m.MapGet("power"); !v.Equal(Float(1.5)) {
		t.Fatal("clone aliased map body")
	}
	if v, _ := m.Property("id"); !v.Equal(Int(5)) {
		t.Fatal("clone aliased properties")
	}
	if m.ID != "ID:1" {
		t.Fatal("clone aliased headers")
	}
}

func TestCloneBytesIndependent(t *testing.T) {
	m := NewBytes([]byte{1, 2, 3})
	c := m.Clone()
	c.BytesPayload()[0] = 9
	if m.BytesPayload()[0] != 1 {
		t.Fatal("clone aliased bytes")
	}
}

func TestEqual(t *testing.T) {
	a, b := paperMapMessage(), paperMapMessage()
	if !a.Equal(b) {
		t.Fatal("identical messages unequal")
	}
	b.MapSet("power", Float(2))
	if a.Equal(b) {
		t.Fatal("different bodies equal")
	}
	c := paperMapMessage()
	c.Priority = 9
	if a.Equal(c) {
		t.Fatal("different headers equal")
	}
	var nilMsg *Message
	if a.Equal(nilMsg) || !nilMsg.Equal(nil) {
		t.Fatal("nil handling")
	}
}

func TestEncodedSizePaperPayload(t *testing.T) {
	m := paperMapMessage()
	size := m.EncodedSize()
	// The paper's payload is a small message; sanity check the range.
	if size < 150 || size > 600 {
		t.Fatalf("paper payload encodes to %d bytes, expected a few hundred", size)
	}
	// Adding a property grows the size by exactly name + value cost.
	before := m.EncodedSize()
	m.SetProperty("k", Int(1))
	if m.EncodedSize() != before+4+1+5 {
		t.Fatalf("property size delta wrong: %d -> %d", before, m.EncodedSize())
	}
}

func TestMessageStringer(t *testing.T) {
	m := paperMapMessage()
	m.ID = "ID:9"
	s := m.String()
	if !strings.Contains(s, "MapMessage") || !strings.Contains(s, "ID:9") {
		t.Fatalf("String() = %q", s)
	}
}
