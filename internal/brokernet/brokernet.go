// Package brokernet implements the Distributed Broker Network (DBN) layer:
// inter-broker links, subscription-interest propagation, and message
// forwarding with two routing modes.
//
// The paper found that NaradaBrokering v1.1.3 "broadcast and not diverged
// to different routes": published data flowed to every broker even when no
// subscriber was attached there, raising CPU load and round-trip time on
// the DBN above the single-broker deployment. RoutingBroadcast reproduces
// that deficiency. RoutingTree implements the fix the authors expected
// (and the "newest release" they planned to test): reverse-path interest
// propagation over the broker tree so messages flow only toward brokers
// with subscribers. The ablation benchmark compares the two.
//
// Broker topologies are assembled by a Controller — the paper's "unit
// controller" node that "assigned addresses to the other three nodes" —
// which allocates broker addresses and records the link map.
package brokernet

import (
	"fmt"
	"sort"

	"gridmon/internal/broker"
	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// RoutingMode selects how members forward published messages.
type RoutingMode uint8

// Routing modes.
const (
	// RoutingBroadcast floods every published message to every peer,
	// regardless of subscriptions (the v1.1.3 behaviour the paper
	// criticises).
	RoutingBroadcast RoutingMode = iota
	// RoutingTree forwards along the broker tree only toward peers whose
	// subtree has interest in the topic.
	RoutingTree
)

func (m RoutingMode) String() string {
	if m == RoutingBroadcast {
		return "broadcast"
	}
	return "tree"
}

// LinkSender transmits a frame to a peer broker. Bindings implement it
// over simnet connections or real TCP.
type LinkSender func(f wire.Frame)

// Member attaches one broker core to the broker network. It implements
// broker.Forwarder for the local broker and consumes peer frames via
// OnPeerFrame. The member assumes a loop-free (tree or single-hop mesh)
// topology: forwarded messages carry their origin and are flooded away
// from the link they arrived on, so a cycle would duplicate messages.
type Member struct {
	b     *broker.Broker
	mode  RoutingMode
	peers map[string]LinkSender
	// peerOrder fixes fan-out iteration to AddPeer order; map iteration
	// here would make multi-broker simulations nondeterministic.
	peerOrder []string

	// interest[peer] is the set of topics for which the subtree reached
	// through that peer has at least one subscriber.
	interest map[string]map[string]bool
	// localTopics tracks this broker's own subscriber interest.
	localTopics map[string]bool

	forwardsSent     uint64
	forwardsReceived uint64
	prunedForwards   uint64
}

// NewMember wraps a broker core as a broker-network member.
func NewMember(b *broker.Broker, mode RoutingMode) *Member {
	m := &Member{
		b:           b,
		mode:        mode,
		peers:       make(map[string]LinkSender),
		interest:    make(map[string]map[string]bool),
		localTopics: make(map[string]bool),
	}
	b.SetForwarder(m)
	b.SetInterestFunc(m.onLocalInterest)
	return m
}

// Broker returns the wrapped broker core.
func (m *Member) Broker() *broker.Broker { return m.b }

// Mode returns the routing mode.
func (m *Member) Mode() RoutingMode { return m.mode }

// Stats reports forwarding counters: frames sent to peers, received from
// peers, and forwards suppressed by tree pruning.
func (m *Member) Stats() (sent, received, pruned uint64) {
	return m.forwardsSent, m.forwardsReceived, m.prunedForwards
}

// AddPeer registers a link to a peer broker and advertises current
// interest over it. Bindings must call OnPeerFrame for frames arriving
// from the peer.
func (m *Member) AddPeer(id string, send LinkSender) {
	if _, dup := m.peers[id]; dup {
		panic(fmt.Sprintf("brokernet: duplicate peer %q on %q", id, m.b.ID()))
	}
	m.peers[id] = send
	m.peerOrder = append(m.peerOrder, id)
	m.interest[id] = make(map[string]bool)
	send(wire.BrokerHello{BrokerID: m.b.ID()})
	// Advertise every topic this subtree is currently interested in, in
	// sorted order so link setup is deterministic.
	adv := m.advertisedTopics(id)
	topics := make([]string, 0, len(adv))
	for topic := range adv {
		topics = append(topics, topic)
	}
	sort.Strings(topics)
	for _, topic := range topics {
		send(wire.BrokerSub{BrokerID: m.b.ID(), Topic: topic, Add: true})
	}
}

// advertisedTopics returns the topics the member must advertise to peer
// `to`: local interest plus interest reachable via any other link.
func (m *Member) advertisedTopics(to string) map[string]bool {
	out := make(map[string]bool)
	for t := range m.localTopics {
		out[t] = true
	}
	for peer, topics := range m.interest {
		if peer == to {
			continue
		}
		for t := range topics {
			out[t] = true
		}
	}
	return out
}

// onLocalInterest reacts to the local broker gaining or losing its last
// subscriber on a topic.
func (m *Member) onLocalInterest(topic string, add bool) {
	if add {
		m.localTopics[topic] = true
	} else {
		delete(m.localTopics, topic)
	}
	m.reAdvertise(topic)
}

// reAdvertise recomputes and pushes the interest advertisement for one
// topic on every link where it changed.
func (m *Member) reAdvertise(topic string) {
	for _, peer := range m.peerOrder {
		send := m.peers[peer]
		want := m.localTopics[topic]
		if !want {
			for other, topics := range m.interest {
				if other != peer && topics[topic] {
					want = true
					break
				}
			}
		}
		// The advertisement is idempotent on the receiver, so send
		// unconditionally on change-relevant events; dedup would need
		// per-link sent-state, which BrokerSub traffic doesn't justify.
		send(wire.BrokerSub{BrokerID: m.b.ID(), Topic: topic, Add: want})
	}
}

// OnLocalPublish implements broker.Forwarder: fan a locally published
// message out to peers according to the routing mode.
func (m *Member) OnLocalPublish(msg *message.Message) {
	m.forward(msg, "")
}

// forward sends a message to peers in AddPeer order, skipping the link
// it arrived on. The message is already frozen by the local broker, so
// every peer frame shares the one immutable value; transports that
// actually serialize it reuse its cached encoding (one encode total, no
// matter how many peers or local subscribers the fan-out reaches).
func (m *Member) forward(msg *message.Message, from string) {
	for _, peer := range m.peerOrder {
		if peer == from {
			continue
		}
		send := m.peers[peer]
		if m.mode == RoutingTree && msg.Dest.Kind == message.TopicKind {
			if !m.interest[peer][msg.Dest.Name] {
				m.prunedForwards++
				continue
			}
		}
		m.forwardsSent++
		m.b.CountForwardOut()
		send(wire.BrokerForward{Origin: m.b.ID(), Msg: msg})
	}
}

// OnPeerFrame processes a frame from a peer broker link.
func (m *Member) OnPeerFrame(from string, f wire.Frame) {
	switch v := f.(type) {
	case wire.BrokerHello:
		// Identification only; links are registered explicitly.
	case wire.BrokerSub:
		if m.interest[from] == nil {
			m.interest[from] = make(map[string]bool)
		}
		changed := m.interest[from][v.Topic] != v.Add
		if v.Add {
			m.interest[from][v.Topic] = true
		} else {
			delete(m.interest[from], v.Topic)
		}
		if changed {
			// Propagate the subtree's interest to the rest of the tree.
			m.reAdvertise(v.Topic)
		}
	case wire.BrokerForward:
		m.forwardsReceived++
		m.b.InjectForwarded(v.Msg)
		// Multi-hop: flood onward, away from the incoming link.
		m.forward(v.Msg, from)
	}
}

// Controller is the paper's unit-controller node: it assigns broker
// addresses and records the network's link map so experiments can build
// topologies declaratively.
type Controller struct {
	nextAddr int
	addrs    map[string]int
	links    [][2]string
}

// NewController returns an empty controller.
func NewController() *Controller {
	return &Controller{addrs: make(map[string]int)}
}

// Register assigns (or returns the existing) address for a broker.
func (c *Controller) Register(brokerID string) int {
	if a, ok := c.addrs[brokerID]; ok {
		return a
	}
	c.nextAddr++
	c.addrs[brokerID] = c.nextAddr
	return c.nextAddr
}

// Address returns a broker's assigned address (0 when unregistered).
func (c *Controller) Address(brokerID string) int { return c.addrs[brokerID] }

// Brokers reports how many brokers are registered.
func (c *Controller) Brokers() int { return len(c.addrs) }

// AddLink records a link between two registered brokers. Both ends must
// be registered; duplicate and self links panic, as they indicate a
// mis-specified topology.
func (c *Controller) AddLink(a, b string) {
	if a == b {
		panic("brokernet: self link")
	}
	if c.addrs[a] == 0 || c.addrs[b] == 0 {
		panic(fmt.Sprintf("brokernet: link between unregistered brokers %q-%q", a, b))
	}
	for _, l := range c.links {
		if (l[0] == a && l[1] == b) || (l[0] == b && l[1] == a) {
			panic(fmt.Sprintf("brokernet: duplicate link %q-%q", a, b))
		}
	}
	c.links = append(c.links, [2]string{a, b})
}

// Links returns the recorded link list.
func (c *Controller) Links() [][2]string { return c.links }

// StarLinks registers the given brokers and links every other broker to
// the first (hub), the topology used for the paper's DBN tests.
func (c *Controller) StarLinks(brokerIDs []string) {
	for _, id := range brokerIDs {
		c.Register(id)
	}
	for _, id := range brokerIDs[1:] {
		c.AddLink(brokerIDs[0], id)
	}
}

// ChainLinks registers the brokers and links them in a line.
func (c *Controller) ChainLinks(brokerIDs []string) {
	for _, id := range brokerIDs {
		c.Register(id)
	}
	for i := 1; i < len(brokerIDs); i++ {
		c.AddLink(brokerIDs[i-1], brokerIDs[i])
	}
}

// Routes computes shortest-path hop counts between all pairs of
// registered brokers over the recorded links (BFS per source). It is the
// "very efficient algorithm to find a shortest route" sanity check used
// by tests and by topology validation.
func (c *Controller) Routes() map[string]map[string]int {
	adj := make(map[string][]string)
	for _, l := range c.links {
		adj[l[0]] = append(adj[l[0]], l[1])
		adj[l[1]] = append(adj[l[1]], l[0])
	}
	out := make(map[string]map[string]int)
	for src := range c.addrs {
		dist := map[string]int{src: 0}
		queue := []string{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if _, seen := dist[nb]; !seen {
					dist[nb] = dist[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		out[src] = dist
	}
	return out
}

// ValidateTree reports an error when the recorded topology is not a tree
// (connected and acyclic), the shape Member forwarding assumes.
func (c *Controller) ValidateTree() error {
	n := len(c.addrs)
	if n == 0 {
		return nil
	}
	if len(c.links) != n-1 {
		return fmt.Errorf("brokernet: %d links for %d brokers, a tree needs %d", len(c.links), n, n-1)
	}
	routes := c.Routes()
	for src := range c.addrs {
		if len(routes[src]) != n {
			return fmt.Errorf("brokernet: topology is disconnected from %q", src)
		}
	}
	return nil
}
