// Package brokernet implements the Distributed Broker Network (DBN) layer:
// inter-broker links, subscription-interest propagation, and message
// forwarding with two routing modes.
//
// The paper found that NaradaBrokering v1.1.3 "broadcast and not diverged
// to different routes": published data flowed to every broker even when no
// subscriber was attached there, raising CPU load and round-trip time on
// the DBN above the single-broker deployment. RoutingBroadcast reproduces
// that deficiency. RoutingTree implements the fix the authors expected
// (and the "newest release" they planned to test): reverse-path interest
// propagation over the broker tree so messages flow only toward brokers
// with subscribers. The ablation benchmark compares the two.
//
// Broker topologies are assembled by a Controller — the paper's "unit
// controller" node that "assigned addresses to the other three nodes" —
// which allocates broker addresses and validates the link map as it is
// built (Link rejects self links, duplicates and cycles, so a forwarding
// loop can never be wired up).
//
// # Concurrency
//
// Member and Controller are safe for concurrent use. A Member guards its
// link table and interest maps with one mutex ordered strictly below the
// broker's locks: the broker's interest and forwarder callbacks arrive
// under a destination shard lock and acquire the member lock beneath it,
// while peer-frame processing takes the member lock only when no broker
// lock is held (BrokerForward injection releases it before calling
// InjectForwarded). Forwarding counters are atomics, so Stats is
// wait-free. The one contract a binding must honour: a LinkSender must
// *enqueue* — hand the frame to a writer goroutine, an event queue, or a
// socket buffer — and never call back into a Member on the caller's
// goroutine, because the caller may hold member and shard locks
// (synchronous re-entry was only ever safe under the old single-caller
// regime). Both real bindings already satisfy this: the TCP server's
// peer links feed per-connection writer channels, and the simulator's
// links submit to the node's CPU queue.
//
// With a single calling goroutine (the discrete-event kernel) every lock
// is uncontended and acquisition order is the caller's order, so the
// paper's DBN figures remain byte-identical to the serial-only
// implementation (TestExperimentDeterminism).
package brokernet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gridmon/internal/broker"
	"gridmon/internal/fanout"
	"gridmon/internal/message"
	"gridmon/internal/wire"
)

// RoutingMode selects how members forward published messages.
type RoutingMode uint8

// Routing modes.
const (
	// RoutingBroadcast floods every published message to every peer,
	// regardless of subscriptions (the v1.1.3 behaviour the paper
	// criticises).
	RoutingBroadcast RoutingMode = iota
	// RoutingTree forwards along the broker tree only toward peers whose
	// subtree has interest in the topic.
	RoutingTree
)

func (m RoutingMode) String() string {
	if m == RoutingBroadcast {
		return "broadcast"
	}
	return "tree"
}

// ParseRoutingMode resolves a mode name ("broadcast" or "tree"), for
// daemon flags.
func ParseRoutingMode(s string) (RoutingMode, error) {
	switch s {
	case "broadcast":
		return RoutingBroadcast, nil
	case "tree":
		return RoutingTree, nil
	}
	return 0, fmt.Errorf("brokernet: unknown routing mode %q (want broadcast or tree)", s)
}

// LinkSender transmits a frame to a peer broker. Bindings implement it
// over simnet connections or real TCP. It MUST enqueue asynchronously
// and must not call back into any Member on the caller's goroutine: the
// caller may hold the member lock and a broker shard lock.
type LinkSender func(f wire.Frame)

// Member attaches one broker core to the broker network. It implements
// broker.Forwarder for the local broker and consumes peer frames via
// OnPeerFrame. Safe for concurrent use (see the package comment for the
// locking discipline). The member assumes a loop-free (tree or
// single-hop mesh) topology: forwarded messages carry their origin and
// are flooded away from the link they arrived on, so a cycle would
// duplicate messages — assemble topologies through a Controller, whose
// Link method rejects cycles outright.
type Member struct {
	b    *broker.Broker
	mode RoutingMode

	// mu guards the link table and interest maps. Lock order: it is
	// acquired under broker shard locks (interest/forwarder callbacks)
	// and must therefore never be held while calling into the broker's
	// locked paths (InjectForwarded and friends). Publish fan-out only
	// reads the table, so it takes the read side: publishers on
	// different destination shards forward in parallel and meet
	// exclusively only on topology and interest changes.
	mu    sync.RWMutex
	peers map[string]LinkSender
	// peerOrder fixes fan-out iteration to AddPeer order; map iteration
	// here would make multi-broker simulations nondeterministic.
	peerOrder []string

	// interest[peer] is the set of topics for which the subtree reached
	// through that peer has at least one subscriber.
	interest map[string]map[string]bool
	// localTopics tracks this broker's own subscriber interest.
	localTopics map[string]bool

	// fanPool, when set, parallelizes wide peer fan-outs (see
	// SetFanoutPool). Guarded by mu like the link table.
	fanPool *fanout.Pool

	forwardsSent     atomic.Uint64
	forwardsReceived atomic.Uint64
	prunedForwards   atomic.Uint64
}

// NewMember wraps a broker core as a broker-network member. A broker
// that already has subscribers (a live TCP server joining the network)
// contributes its existing topics: the interest callback only fires on
// 0↔1 transitions, so without seeding, a topic subscribed before the
// join would never be advertised and tree routing would prune its
// publishes forever. The callback is installed before the snapshot, so
// the union cannot miss a concurrent subscribe (it can transiently
// over-advertise a topic emptied in the window, which the next interest
// transition corrects — false interest costs an extra forward, never a
// lost message).
func NewMember(b *broker.Broker, mode RoutingMode) *Member {
	m := &Member{
		b:           b,
		mode:        mode,
		peers:       make(map[string]LinkSender),
		interest:    make(map[string]map[string]bool),
		localTopics: make(map[string]bool),
	}
	b.SetForwarder(m)
	b.SetInterestFunc(m.onLocalInterest)
	// Snapshot outside the member lock: Topics takes shard locks, and
	// the member lock orders below them.
	topics := b.Topics()
	m.mu.Lock()
	for _, topic := range topics {
		m.localTopics[topic] = true
	}
	m.mu.Unlock()
	return m
}

// parallelForwardMin is the eligible-peer count below which forward
// stays on the publishing goroutine even with a pool set — chunk
// bookkeeping costs more than three channel enqueues.
const parallelForwardMin = 4

// SetFanoutPool shares a worker pool with the member for wide peer
// fan-outs: with p non-nil, a forward reaching parallelForwardMin or
// more eligible peers is chunked across the pool, one whole peer per
// chunk (per-peer frame order is untouched — each link's frames are
// still enqueued by exactly one goroutine per forward, and forward
// itself still blocks until every enqueue is done). Every LinkSender
// must then be safe for concurrent use with the senders of *other*
// peers. Simulated deterministic topologies leave the pool unset and
// keep the exact serial AddPeer-order fan-out. Pass nil to clear.
func (m *Member) SetFanoutPool(p *fanout.Pool) {
	m.mu.Lock()
	m.fanPool = p
	m.mu.Unlock()
}

// Broker returns the wrapped broker core.
func (m *Member) Broker() *broker.Broker { return m.b }

// Mode returns the routing mode.
func (m *Member) Mode() RoutingMode { return m.mode }

// Stats reports forwarding counters: frames sent to peers, received from
// peers, and forwards suppressed by tree pruning. Wait-free.
func (m *Member) Stats() (sent, received, pruned uint64) {
	return m.forwardsSent.Load(), m.forwardsReceived.Load(), m.prunedForwards.Load()
}

// AddPeer registers a link to a peer broker and advertises current
// interest over it, panicking on a duplicate (the historical API for
// statically wired topologies). Bindings must call OnPeerFrame for
// frames arriving from the peer.
func (m *Member) AddPeer(id string, send LinkSender) {
	if err := m.Link(id, send); err != nil {
		panic(err.Error())
	}
}

// Link registers a link to a peer broker and advertises current interest
// over it, returning a descriptive error on a duplicate or self link
// (the TCP binding surfaces it to the dialing peer instead of crashing
// the daemon). Bindings must call OnPeerFrame for frames arriving from
// the peer.
//
// An optional preamble is enqueued on the link after validation
// succeeds and before anything else — atomically with registration, so
// a binding whose handshake reply must (a) only be sent for links that
// are actually accepted and (b) precede the interest advertisements on
// the wire can pass the reply here instead of racing Link for queue
// position.
func (m *Member) Link(id string, send LinkSender, preamble ...wire.Frame) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == m.b.ID() {
		return fmt.Errorf("brokernet: self link on %q", id)
	}
	if _, dup := m.peers[id]; dup {
		return fmt.Errorf("brokernet: duplicate peer %q on %q", id, m.b.ID())
	}
	for _, f := range preamble {
		send(f)
	}
	m.peers[id] = send
	m.peerOrder = append(m.peerOrder, id)
	m.interest[id] = make(map[string]bool)
	send(wire.BrokerHello{BrokerID: m.b.ID()})
	// Advertise every topic this subtree is currently interested in, in
	// sorted order so link setup is deterministic.
	adv := m.advertisedTopicsLocked(id)
	topics := make([]string, 0, len(adv))
	for topic := range adv {
		topics = append(topics, topic)
	}
	sort.Strings(topics)
	for _, topic := range topics {
		send(wire.BrokerSub{BrokerID: m.b.ID(), Topic: topic, Add: true})
	}
	return nil
}

// HasPeer reports whether a link to the peer is registered.
func (m *Member) HasPeer(id string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.peers[id]
	return ok
}

// Peers returns the linked peer ids in AddPeer order.
func (m *Member) Peers() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.peerOrder...)
}

// InterestedPeers returns the peers whose subtree has advertised
// interest in the topic (the links a tree-mode publish would be
// forwarded on), in AddPeer order. Monitoring and tests use it to
// observe interest propagation.
func (m *Member) InterestedPeers(topic string) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for _, peer := range m.peerOrder {
		if m.interest[peer][topic] {
			out = append(out, peer)
		}
	}
	return out
}

// RemovePeer drops the link to a peer (a TCP peer connection died) and
// withdraws the interest its subtree contributed: every topic the peer
// advertised is re-advertised on the remaining links, so the rest of the
// tree stops forwarding toward a subtree that is no longer reachable.
func (m *Member) RemovePeer(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.peers[id]; !ok {
		return
	}
	lost := m.interest[id]
	delete(m.peers, id)
	delete(m.interest, id)
	for i, p := range m.peerOrder {
		if p == id {
			m.peerOrder = append(m.peerOrder[:i], m.peerOrder[i+1:]...)
			break
		}
	}
	topics := make([]string, 0, len(lost))
	for topic := range lost {
		topics = append(topics, topic)
	}
	sort.Strings(topics)
	for _, topic := range topics {
		m.reAdvertiseLocked(topic)
	}
}

// advertisedTopicsLocked returns the topics the member must advertise to
// peer `to`: local interest plus interest reachable via any other link.
// Member lock held.
func (m *Member) advertisedTopicsLocked(to string) map[string]bool {
	out := make(map[string]bool)
	for t := range m.localTopics {
		out[t] = true
	}
	for peer, topics := range m.interest {
		if peer == to {
			continue
		}
		for t := range topics {
			out[t] = true
		}
	}
	return out
}

// onLocalInterest reacts to the local broker gaining or losing its last
// subscriber on a topic. Runs under the topic's shard lock (the broker's
// interest callback contract); the member lock nests beneath it.
func (m *Member) onLocalInterest(topic string, add bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if add {
		m.localTopics[topic] = true
	} else {
		delete(m.localTopics, topic)
	}
	m.reAdvertiseLocked(topic)
}

// reAdvertiseLocked recomputes and pushes the interest advertisement for
// one topic on every link. Member lock held; holding it across the sends
// keeps each link's advertisement stream ordered consistently with the
// interest transitions that produced it (two racing transitions cannot
// enqueue their advertisements in opposite order on the same link).
func (m *Member) reAdvertiseLocked(topic string) {
	for _, peer := range m.peerOrder {
		send := m.peers[peer]
		want := m.localTopics[topic]
		if !want {
			for other, topics := range m.interest {
				if other != peer && topics[topic] {
					want = true
					break
				}
			}
		}
		// The advertisement is idempotent on the receiver, so send
		// unconditionally on change-relevant events; dedup would need
		// per-link sent-state, which BrokerSub traffic doesn't justify.
		send(wire.BrokerSub{BrokerID: m.b.ID(), Topic: topic, Add: want})
	}
}

// OnLocalPublish implements broker.Forwarder: fan a locally published
// message out to peers according to the routing mode. Runs under the
// destination shard's lock, so a destination's peer fan-out is totally
// ordered with its local deliveries.
func (m *Member) OnLocalPublish(msg *message.Message) {
	m.forward(msg, "", m.b.ID())
}

// forward sends a message to peers in AddPeer order, skipping the link
// it arrived on. Origin is the broker that first accepted the publish
// and is preserved across hops (wire.BrokerForward's contract) — it is
// what lets the origin recognize and drop its own publish if a
// mis-wired topology loops it back. The message is already frozen by
// the local broker, so every peer frame shares the one immutable value;
// transports that actually serialize it reuse its cached encoding (one
// encode total, no matter how many peers or local subscribers the
// fan-out reaches).
func (m *Member) forward(msg *message.Message, from, origin string) {
	// Read lock: fan-out only reads the link table and interest maps
	// (counters are atomic), so publishes on different destination
	// shards forward concurrently.
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.fanPool != nil && len(m.peerOrder) >= parallelForwardMin {
		m.forwardParallel(msg, from, origin)
		return
	}
	for _, peer := range m.peerOrder {
		if peer == from {
			continue
		}
		send := m.peers[peer]
		if m.mode == RoutingTree && msg.Dest.Kind == message.TopicKind {
			if !m.interest[peer][msg.Dest.Name] {
				m.prunedForwards.Add(1)
				continue
			}
		}
		m.forwardsSent.Add(1)
		m.b.CountForwardOut()
		send(wire.BrokerForward{Origin: origin, Msg: msg})
	}
}

// forwardParallel is forward's wide-fan-out path: the pruning decisions
// run here on the publishing goroutine (they read the interest maps the
// read lock guards), then the eligible links are chunked across the
// shared pool — a whole peer per chunk, so each link's enqueue order is
// unchanged. Called with m.mu read-held; the lock stays held until
// every chunk finishes (Run blocks), which is what keeps the link table
// stable under the workers.
func (m *Member) forwardParallel(msg *message.Message, from, origin string) {
	sends := make([]LinkSender, 0, len(m.peerOrder))
	for _, peer := range m.peerOrder {
		if peer == from {
			continue
		}
		if m.mode == RoutingTree && msg.Dest.Kind == message.TopicKind {
			if !m.interest[peer][msg.Dest.Name] {
				m.prunedForwards.Add(1)
				continue
			}
		}
		sends = append(sends, m.peers[peer])
	}
	if len(sends) == 0 {
		return
	}
	m.forwardsSent.Add(uint64(len(sends)))
	m.b.CountForwardOutN(len(sends))
	f := wire.BrokerForward{Origin: origin, Msg: msg}
	n := len(sends)
	chunks := n
	if w := m.fanPool.Workers(); chunks > w {
		chunks = w
	}
	m.fanPool.Run(chunks, func(ci int) {
		for i := ci * n / chunks; i < (ci+1)*n/chunks; i++ {
			sends[i](f)
		}
	})
}

// OnPeerFrame processes a frame from a peer broker link. Each link's
// frames must arrive from one goroutine at a time (every transport reads
// a link with one reader); distinct links may call concurrently.
func (m *Member) OnPeerFrame(from string, f wire.Frame) {
	switch v := f.(type) {
	case wire.BrokerHello:
		// Identification only; links are registered explicitly.
	case wire.BrokerSub:
		m.mu.Lock()
		if _, live := m.peers[from]; !live {
			// A frame from a removed (or never-registered) peer —
			// possible when a serialized binding still has the link's
			// frames queued behind its removal. Recording its interest
			// would resurrect m.interest[from] as a ghost subtree that
			// nothing ever cleans up and that advertisedTopicsLocked
			// would advertise forever.
			m.mu.Unlock()
			return
		}
		if m.interest[from] == nil {
			m.interest[from] = make(map[string]bool)
		}
		changed := m.interest[from][v.Topic] != v.Add
		if v.Add {
			m.interest[from][v.Topic] = true
		} else {
			delete(m.interest[from], v.Topic)
		}
		if changed {
			// Propagate the subtree's interest to the rest of the tree.
			m.reAdvertiseLocked(v.Topic)
		}
		m.mu.Unlock()
	case wire.BrokerForward:
		if v.Origin == m.b.ID() {
			// Our own publish came back: the topology has a cycle
			// (mis-wired TCP peering — Controller-built topologies
			// cannot cycle). Dropping it here breaks the infinite
			// circulation; on a loop-free network this never fires.
			return
		}
		m.forwardsReceived.Add(1)
		// Local injection takes shard locks, so the member lock must not
		// be held here; the onward flood then re-acquires it. A racing
		// interest change between the two sections only affects which
		// peers the flood reaches — exactly the race inherent to
		// advertisements and forwards crossing on the wire.
		m.b.InjectForwarded(v.Msg)
		// Multi-hop: flood onward, away from the incoming link,
		// preserving the true origin.
		m.forward(v.Msg, from, v.Origin)
	}
}

// Controller is the paper's unit-controller node: it assigns broker
// addresses and records the network's link map so experiments can build
// topologies declaratively. Safe for concurrent use. Links are validated
// as they are added: Link refuses self links, duplicate links, links
// between unregistered brokers, and — because Member forwarding floods
// away from the arrival link and would deliver duplicates forever on a
// cycle — any link that would close a cycle.
type Controller struct {
	mu       sync.Mutex
	nextAddr int
	addrs    map[string]int
	links    [][2]string
}

// NewController returns an empty controller.
func NewController() *Controller {
	return &Controller{addrs: make(map[string]int)}
}

// Register assigns (or returns the existing) address for a broker.
func (c *Controller) Register(brokerID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a, ok := c.addrs[brokerID]; ok {
		return a
	}
	c.nextAddr++
	c.addrs[brokerID] = c.nextAddr
	return c.nextAddr
}

// Address returns a broker's assigned address (0 when unregistered).
func (c *Controller) Address(brokerID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addrs[brokerID]
}

// Brokers reports how many brokers are registered.
func (c *Controller) Brokers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.addrs)
}

// Link records a link between two registered brokers after validating
// it: self links, duplicates, unregistered endpoints and cycles are
// rejected with a descriptive error. Cycle detection walks the recorded
// links — if both endpoints are already connected, adding the link would
// close a loop, which Member forwarding (flood away from the arrival
// link) would turn into endless duplicate deliveries.
func (c *Controller) Link(a, b string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if a == b {
		return fmt.Errorf("brokernet: self link %q-%q rejected", a, b)
	}
	if c.addrs[a] == 0 || c.addrs[b] == 0 {
		return fmt.Errorf("brokernet: link between unregistered brokers %q-%q", a, b)
	}
	for _, l := range c.links {
		if (l[0] == a && l[1] == b) || (l[0] == b && l[1] == a) {
			return fmt.Errorf("brokernet: duplicate link %q-%q", a, b)
		}
	}
	if path := c.pathLocked(a, b); path != nil {
		return fmt.Errorf("brokernet: link %q-%q would close a cycle (already connected via %v); a cycle duplicates every forwarded message", a, b, path)
	}
	c.links = append(c.links, [2]string{a, b})
	return nil
}

// AddLink is Link with panic-on-error semantics, for statically wired
// topologies where a bad link is a programming error.
func (c *Controller) AddLink(a, b string) {
	if err := c.Link(a, b); err != nil {
		panic(err.Error())
	}
}

// pathLocked returns the broker path from a to b over the recorded links
// (nil when disconnected). BFS with parent tracking; controller lock
// held.
func (c *Controller) pathLocked(a, b string) []string {
	adj := make(map[string][]string)
	for _, l := range c.links {
		adj[l[0]] = append(adj[l[0]], l[1])
		adj[l[1]] = append(adj[l[1]], l[0])
	}
	parent := map[string]string{a: a}
	queue := []string{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == b {
			var path []string
			for n := b; ; n = parent[n] {
				path = append([]string{n}, path...)
				if n == a {
					return path
				}
			}
		}
		for _, nb := range adj[cur] {
			if _, seen := parent[nb]; !seen {
				parent[nb] = cur
				queue = append(queue, nb)
			}
		}
	}
	return nil
}

// Links returns the recorded link list.
func (c *Controller) Links() [][2]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][2]string(nil), c.links...)
}

// StarLinks registers the given brokers and links every other broker to
// the first (hub), the topology used for the paper's DBN tests.
func (c *Controller) StarLinks(brokerIDs []string) {
	for _, id := range brokerIDs {
		c.Register(id)
	}
	for _, id := range brokerIDs[1:] {
		c.AddLink(brokerIDs[0], id)
	}
}

// ChainLinks registers the brokers and links them in a line.
func (c *Controller) ChainLinks(brokerIDs []string) {
	for _, id := range brokerIDs {
		c.Register(id)
	}
	for i := 1; i < len(brokerIDs); i++ {
		c.AddLink(brokerIDs[i-1], brokerIDs[i])
	}
}

// Routes computes shortest-path hop counts between all pairs of
// registered brokers over the recorded links (BFS per source). It is the
// "very efficient algorithm to find a shortest route" sanity check used
// by tests and by topology validation.
func (c *Controller) Routes() map[string]map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.routesLocked()
}

// routesLocked is Routes with the controller lock held.
func (c *Controller) routesLocked() map[string]map[string]int {
	adj := make(map[string][]string)
	for _, l := range c.links {
		adj[l[0]] = append(adj[l[0]], l[1])
		adj[l[1]] = append(adj[l[1]], l[0])
	}
	out := make(map[string]map[string]int)
	for src := range c.addrs {
		dist := map[string]int{src: 0}
		queue := []string{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if _, seen := dist[nb]; !seen {
					dist[nb] = dist[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		out[src] = dist
	}
	return out
}

// ValidateTree reports an error when the recorded topology is not a tree
// (connected and acyclic), the shape Member forwarding assumes. Link
// rejects cycles as they are added, so in practice this checks
// connectedness: every registered broker must be reachable. The whole
// check runs under one lock hold, so it validates a single consistent
// snapshot even while brokers register concurrently.
func (c *Controller) ValidateTree() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.addrs)
	if n == 0 {
		return nil
	}
	if len(c.links) != n-1 {
		return fmt.Errorf("brokernet: %d links for %d brokers, a tree needs %d", len(c.links), n, n-1)
	}
	routes := c.routesLocked()
	for src := range c.addrs {
		if len(routes[src]) != n {
			return fmt.Errorf("brokernet: topology is disconnected from %q", src)
		}
	}
	return nil
}
