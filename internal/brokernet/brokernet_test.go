package brokernet

import (
	"testing"

	"gridmon/internal/broker"
	"gridmon/internal/message"
	"gridmon/internal/simproc"
	"gridmon/internal/wire"
)

// memEnv is a minimal broker.Env for tests: unlimited heap, frame capture.
type memEnv struct {
	sent map[broker.ConnID][]wire.Frame
	heap *simproc.Heap
}

func newMemEnv() *memEnv {
	return &memEnv{sent: make(map[broker.ConnID][]wire.Frame), heap: simproc.NewHeap("t", 0, 0)}
}

func (e *memEnv) Now() int64                         { return 0 }
func (e *memEnv) Send(c broker.ConnID, f wire.Frame) { e.sent[c] = append(e.sent[c], f) }
func (e *memEnv) CloseConn(broker.ConnID)            {}
func (e *memEnv) AllocConn() error                   { return nil }
func (e *memEnv) FreeConn()                          {}
func (e *memEnv) Alloc(n int64) error                { return e.heap.Alloc(n) }
func (e *memEnv) Free(n int64)                       { e.heap.Free(n) }

func (e *memEnv) deliveries(c broker.ConnID) int {
	n := 0
	for _, f := range e.sent[c] {
		if _, ok := f.(*wire.Deliver); ok {
			n++
		}
	}
	return n
}

// testNet wires members together with synchronous in-memory links.
type testNet struct {
	members map[string]*Member
	envs    map[string]*memEnv
}

// build creates n brokers in the given mode and links them per the
// controller's link list (synchronous delivery).
func build(t *testing.T, mode RoutingMode, links [][2]string, ids ...string) *testNet {
	t.Helper()
	tn := &testNet{members: make(map[string]*Member), envs: make(map[string]*memEnv)}
	for _, id := range ids {
		env := newMemEnv()
		tn.envs[id] = env
		tn.members[id] = NewMember(broker.New(env, broker.DefaultConfig(id)), mode)
	}
	for _, l := range links {
		a, b := tn.members[l[0]], tn.members[l[1]]
		la, lb := l[0], l[1]
		a.AddPeer(lb, func(f wire.Frame) { tn.members[lb].OnPeerFrame(la, f) })
		b.AddPeer(la, func(f wire.Frame) { tn.members[la].OnPeerFrame(lb, f) })
	}
	return tn
}

func openAndSubscribe(t *testing.T, tn *testNet, brokerID string, conn broker.ConnID, topic string) {
	t.Helper()
	b := tn.members[brokerID].Broker()
	if err := b.OnConnOpen(conn); err != nil {
		t.Fatal(err)
	}
	b.OnFrame(conn, wire.Subscribe{SubID: 1, Dest: message.Topic(topic)})
}

func publish(t *testing.T, tn *testNet, brokerID string, conn broker.ConnID, topic string) {
	t.Helper()
	b := tn.members[brokerID].Broker()
	if err := b.OnConnOpen(conn); err != nil {
		t.Fatal(err)
	}
	m := message.NewText("x")
	m.Dest = message.Topic(topic)
	b.OnFrame(conn, wire.Publish{Seq: 1, Msg: m})
}

func TestBroadcastReachesRemoteSubscriber(t *testing.T) {
	tn := build(t, RoutingBroadcast, [][2]string{{"b1", "b2"}}, "b1", "b2")
	openAndSubscribe(t, tn, "b2", 10, "power")
	publish(t, tn, "b1", 20, "power")
	if tn.envs["b2"].deliveries(10) != 1 {
		t.Fatal("remote subscriber did not receive message")
	}
}

func TestBroadcastFloodsUninterestedPeers(t *testing.T) {
	// Star: b1 hub; only b2 subscribes. Broadcast must still push the
	// message to b3 and b4 (the paper's "unnecessary data flow").
	links := [][2]string{{"b1", "b2"}, {"b1", "b3"}, {"b1", "b4"}}
	tn := build(t, RoutingBroadcast, links, "b1", "b2", "b3", "b4")
	openAndSubscribe(t, tn, "b2", 10, "power")
	publish(t, tn, "b1", 20, "power")
	for _, id := range []string{"b2", "b3", "b4"} {
		_, received, _ := tn.members[id].Stats()
		if received != 1 {
			t.Fatalf("broker %s received %d forwards, want 1 (broadcast)", id, received)
		}
	}
	if tn.envs["b2"].deliveries(10) != 1 {
		t.Fatal("subscriber missed message")
	}
}

func TestTreeRoutingPrunes(t *testing.T) {
	links := [][2]string{{"b1", "b2"}, {"b1", "b3"}, {"b1", "b4"}}
	tn := build(t, RoutingTree, links, "b1", "b2", "b3", "b4")
	openAndSubscribe(t, tn, "b2", 10, "power")
	publish(t, tn, "b1", 20, "power")
	if tn.envs["b2"].deliveries(10) != 1 {
		t.Fatal("tree routing lost the message")
	}
	for _, id := range []string{"b3", "b4"} {
		_, received, _ := tn.members[id].Stats()
		if received != 0 {
			t.Fatalf("broker %s received %d forwards, want 0 (pruned)", id, received)
		}
	}
	_, _, pruned := tn.members["b1"].Stats()
	if pruned != 2 {
		t.Fatalf("hub pruned %d forwards, want 2", pruned)
	}
}

func TestTreeRoutingMultiHop(t *testing.T) {
	// Chain b1-b2-b3: subscriber at b3, publisher at b1. Interest must
	// propagate through b2 and the message must transit b2.
	links := [][2]string{{"b1", "b2"}, {"b2", "b3"}}
	tn := build(t, RoutingTree, links, "b1", "b2", "b3")
	openAndSubscribe(t, tn, "b3", 10, "power")
	publish(t, tn, "b1", 20, "power")
	if tn.envs["b3"].deliveries(10) != 1 {
		t.Fatal("multi-hop delivery failed")
	}
	_, rcvd2, _ := tn.members["b2"].Stats()
	if rcvd2 != 1 {
		t.Fatalf("middle broker forwards = %d", rcvd2)
	}
}

func TestBroadcastMultiHopNoDuplicates(t *testing.T) {
	links := [][2]string{{"b1", "b2"}, {"b2", "b3"}}
	tn := build(t, RoutingBroadcast, links, "b1", "b2", "b3")
	openAndSubscribe(t, tn, "b3", 10, "power")
	openAndSubscribe(t, tn, "b1", 11, "power")
	publish(t, tn, "b2", 20, "power")
	if tn.envs["b3"].deliveries(10) != 1 || tn.envs["b1"].deliveries(11) != 1 {
		t.Fatal("flood delivery wrong")
	}
	publish(t, tn, "b1", 21, "power")
	if tn.envs["b3"].deliveries(10) != 2 {
		t.Fatalf("end-to-end flood count = %d", tn.envs["b3"].deliveries(10))
	}
}

func TestInterestWithdrawal(t *testing.T) {
	links := [][2]string{{"b1", "b2"}}
	tn := build(t, RoutingTree, links, "b1", "b2")
	openAndSubscribe(t, tn, "b2", 10, "power")
	publish(t, tn, "b1", 20, "power")
	sent1, _, _ := tn.members["b1"].Stats()
	if sent1 != 1 {
		t.Fatalf("initial forward count = %d", sent1)
	}
	// Drop the subscriber: interest withdraws, next publish is pruned.
	tn.members["b2"].Broker().OnConnClose(10)
	m := message.NewText("x")
	m.Dest = message.Topic("power")
	tn.members["b1"].Broker().OnFrame(20, wire.Publish{Seq: 2, Msg: m})
	sent2, _, pruned := tn.members["b1"].Stats()
	if sent2 != 1 || pruned != 1 {
		t.Fatalf("after withdrawal: sent=%d pruned=%d", sent2, pruned)
	}
}

func TestLateJoinerLearnsInterest(t *testing.T) {
	// Subscribe first, then add the link: AddPeer must advertise existing
	// interest so the publisher-side broker forwards.
	tn := &testNet{members: make(map[string]*Member), envs: make(map[string]*memEnv)}
	for _, id := range []string{"b1", "b2"} {
		env := newMemEnv()
		tn.envs[id] = env
		tn.members[id] = NewMember(broker.New(env, broker.DefaultConfig(id)), RoutingTree)
	}
	openAndSubscribe(t, tn, "b2", 10, "power")
	a, b := tn.members["b1"], tn.members["b2"]
	a.AddPeer("b2", func(f wire.Frame) { b.OnPeerFrame("b1", f) })
	b.AddPeer("b1", func(f wire.Frame) { a.OnPeerFrame("b2", f) })
	publish(t, tn, "b1", 20, "power")
	if tn.envs["b2"].deliveries(10) != 1 {
		t.Fatal("late link did not carry interest")
	}
}

func TestQueueForwarding(t *testing.T) {
	// Tree mode forwards queue messages unpruned (interest tracking is
	// topic-only), so a remote queue consumer still receives them.
	links := [][2]string{{"b1", "b2"}}
	tn := build(t, RoutingTree, links, "b1", "b2")
	b2 := tn.members["b2"].Broker()
	if err := b2.OnConnOpen(10); err != nil {
		t.Fatal(err)
	}
	b2.OnFrame(10, wire.Subscribe{SubID: 1, Dest: message.Queue("work")})
	b1 := tn.members["b1"].Broker()
	if err := b1.OnConnOpen(20); err != nil {
		t.Fatal(err)
	}
	m := message.NewText("job")
	m.Dest = message.Queue("work")
	b1.OnFrame(20, wire.Publish{Seq: 1, Msg: m})
	if tn.envs["b2"].deliveries(10) != 1 {
		t.Fatal("queue message not forwarded")
	}
}

func TestDuplicatePeerPanics(t *testing.T) {
	env := newMemEnv()
	m := NewMember(broker.New(env, broker.DefaultConfig("b1")), RoutingTree)
	m.AddPeer("x", func(wire.Frame) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate peer did not panic")
		}
	}()
	m.AddPeer("x", func(wire.Frame) {})
}

func TestModeString(t *testing.T) {
	if RoutingBroadcast.String() != "broadcast" || RoutingTree.String() != "tree" {
		t.Fatal("mode names")
	}
}

func TestControllerAddressing(t *testing.T) {
	c := NewController()
	a1 := c.Register("b1")
	a2 := c.Register("b2")
	if a1 == a2 || c.Register("b1") != a1 {
		t.Fatalf("addresses: %d %d", a1, a2)
	}
	if c.Address("b2") != a2 || c.Address("nope") != 0 {
		t.Fatal("address lookup")
	}
	if c.Brokers() != 2 {
		t.Fatalf("brokers = %d", c.Brokers())
	}
}

func TestControllerStarAndRoutes(t *testing.T) {
	c := NewController()
	c.StarLinks([]string{"hub", "b2", "b3", "b4"})
	if err := c.ValidateTree(); err != nil {
		t.Fatalf("star not a tree: %v", err)
	}
	routes := c.Routes()
	if routes["b2"]["b3"] != 2 || routes["hub"]["b4"] != 1 {
		t.Fatalf("routes = %v", routes)
	}
}

func TestControllerChain(t *testing.T) {
	c := NewController()
	c.ChainLinks([]string{"a", "b", "c", "d"})
	if err := c.ValidateTree(); err != nil {
		t.Fatal(err)
	}
	if c.Routes()["a"]["d"] != 3 {
		t.Fatalf("chain distance = %d", c.Routes()["a"]["d"])
	}
}

func TestControllerValidation(t *testing.T) {
	c := NewController()
	c.Register("a")
	c.Register("b")
	c.Register("c")
	c.AddLink("a", "b")
	if err := c.ValidateTree(); err == nil {
		t.Fatal("disconnected graph validated as tree")
	}
	c.AddLink("b", "c")
	if err := c.ValidateTree(); err != nil {
		t.Fatal(err)
	}
	c.AddLink("a", "c")
	if err := c.ValidateTree(); err == nil {
		t.Fatal("cycle validated as tree")
	}
}

func TestControllerBadLinksPanic(t *testing.T) {
	c := NewController()
	c.Register("a")
	c.Register("b")
	c.AddLink("a", "b")
	for _, fn := range []func(){
		func() { c.AddLink("a", "a") },
		func() { c.AddLink("a", "b") },
		func() { c.AddLink("b", "a") },
		func() { c.AddLink("a", "zz") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad link did not panic")
				}
			}()
			fn()
		}()
	}
}
