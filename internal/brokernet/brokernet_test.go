package brokernet

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"gridmon/internal/broker"
	"gridmon/internal/message"
	"gridmon/internal/simproc"
	"gridmon/internal/wire"
)

// memEnv is a minimal broker.Env for tests: unlimited heap, frame
// capture. Mutex-guarded so the race stress can drive brokers from many
// goroutines.
type memEnv struct {
	mu   sync.Mutex
	sent map[broker.ConnID][]wire.Frame
	heap *simproc.Heap
}

func newMemEnv() *memEnv {
	return &memEnv{sent: make(map[broker.ConnID][]wire.Frame), heap: simproc.NewHeap("t", 0, 0)}
}

func (e *memEnv) Now() int64 { return 0 }
func (e *memEnv) Send(c broker.ConnID, f wire.Frame) {
	e.mu.Lock()
	e.sent[c] = append(e.sent[c], f)
	e.mu.Unlock()
}
func (e *memEnv) CloseConn(broker.ConnID) {}
func (e *memEnv) AllocConn() error        { return nil }
func (e *memEnv) FreeConn()               {}
func (e *memEnv) Alloc(n int64) error     { return e.heap.Alloc(n) }
func (e *memEnv) Free(n int64)            { e.heap.Free(n) }

func (e *memEnv) deliveries(c broker.ConnID) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, f := range e.sent[c] {
		if _, ok := f.(*wire.Deliver); ok {
			n++
		}
	}
	return n
}

// deliveredIDs returns the message IDs delivered to a connection, as a
// sorted multiset for routing-mode equivalence comparisons.
func (e *memEnv) deliveredIDs(c broker.ConnID) []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var ids []string
	for _, f := range e.sent[c] {
		if d, ok := f.(*wire.Deliver); ok {
			ids = append(ids, d.Msg.ID)
		}
	}
	sort.Strings(ids)
	return ids
}

// queuedFrame is one in-flight inter-broker frame.
type queuedFrame struct {
	to, from string
	f        wire.Frame
}

// testNet wires members together with asynchronous in-memory links: a
// LinkSender only enqueues (per the Member contract — synchronous
// re-entry would deadlock on the member locks), and pump() drains the
// queue to quiescence in FIFO order.
type testNet struct {
	members map[string]*Member
	envs    map[string]*memEnv

	mu    sync.Mutex
	queue []queuedFrame
}

// sender returns the LinkSender carrying frames from `from` to `to`.
func (tn *testNet) sender(from, to string) LinkSender {
	return func(f wire.Frame) {
		tn.mu.Lock()
		tn.queue = append(tn.queue, queuedFrame{to: to, from: from, f: f})
		tn.mu.Unlock()
	}
}

// pump delivers queued frames in order until the network is quiescent.
func (tn *testNet) pump() {
	for {
		tn.mu.Lock()
		if len(tn.queue) == 0 {
			tn.mu.Unlock()
			return
		}
		q := tn.queue[0]
		tn.queue = tn.queue[1:]
		tn.mu.Unlock()
		tn.members[q.to].OnPeerFrame(q.from, q.f)
	}
}

func (tn *testNet) link(a, b string) {
	tn.members[a].AddPeer(b, tn.sender(a, b))
	tn.members[b].AddPeer(a, tn.sender(b, a))
	tn.pump()
}

// build creates n brokers in the given mode and links them per the link
// list.
func build(t *testing.T, mode RoutingMode, links [][2]string, ids ...string) *testNet {
	t.Helper()
	tn := &testNet{members: make(map[string]*Member), envs: make(map[string]*memEnv)}
	for _, id := range ids {
		env := newMemEnv()
		tn.envs[id] = env
		tn.members[id] = NewMember(broker.New(env, broker.DefaultConfig(id)), mode)
	}
	for _, l := range links {
		tn.link(l[0], l[1])
	}
	return tn
}

func openAndSubscribe(t *testing.T, tn *testNet, brokerID string, conn broker.ConnID, topic string) {
	t.Helper()
	b := tn.members[brokerID].Broker()
	if err := b.OnConnOpen(conn); err != nil {
		t.Fatal(err)
	}
	b.OnFrame(conn, wire.Subscribe{SubID: 1, Dest: message.Topic(topic)})
	tn.pump()
}

func publish(t *testing.T, tn *testNet, brokerID string, conn broker.ConnID, topic string) {
	t.Helper()
	b := tn.members[brokerID].Broker()
	if err := b.OnConnOpen(conn); err != nil {
		t.Fatal(err)
	}
	m := message.NewText("x")
	m.Dest = message.Topic(topic)
	b.OnFrame(conn, wire.Publish{Seq: 1, Msg: m})
	tn.pump()
}

func TestBroadcastReachesRemoteSubscriber(t *testing.T) {
	tn := build(t, RoutingBroadcast, [][2]string{{"b1", "b2"}}, "b1", "b2")
	openAndSubscribe(t, tn, "b2", 10, "power")
	publish(t, tn, "b1", 20, "power")
	if tn.envs["b2"].deliveries(10) != 1 {
		t.Fatal("remote subscriber did not receive message")
	}
}

func TestBroadcastFloodsUninterestedPeers(t *testing.T) {
	// Star: b1 hub; only b2 subscribes. Broadcast must still push the
	// message to b3 and b4 (the paper's "unnecessary data flow").
	links := [][2]string{{"b1", "b2"}, {"b1", "b3"}, {"b1", "b4"}}
	tn := build(t, RoutingBroadcast, links, "b1", "b2", "b3", "b4")
	openAndSubscribe(t, tn, "b2", 10, "power")
	publish(t, tn, "b1", 20, "power")
	for _, id := range []string{"b2", "b3", "b4"} {
		_, received, _ := tn.members[id].Stats()
		if received != 1 {
			t.Fatalf("broker %s received %d forwards, want 1 (broadcast)", id, received)
		}
	}
	if tn.envs["b2"].deliveries(10) != 1 {
		t.Fatal("subscriber missed message")
	}
}

func TestTreeRoutingPrunes(t *testing.T) {
	links := [][2]string{{"b1", "b2"}, {"b1", "b3"}, {"b1", "b4"}}
	tn := build(t, RoutingTree, links, "b1", "b2", "b3", "b4")
	openAndSubscribe(t, tn, "b2", 10, "power")
	publish(t, tn, "b1", 20, "power")
	if tn.envs["b2"].deliveries(10) != 1 {
		t.Fatal("tree routing lost the message")
	}
	for _, id := range []string{"b3", "b4"} {
		_, received, _ := tn.members[id].Stats()
		if received != 0 {
			t.Fatalf("broker %s received %d forwards, want 0 (pruned)", id, received)
		}
	}
	_, _, pruned := tn.members["b1"].Stats()
	if pruned != 2 {
		t.Fatalf("hub pruned %d forwards, want 2", pruned)
	}
}

func TestTreeRoutingMultiHop(t *testing.T) {
	// Chain b1-b2-b3: subscriber at b3, publisher at b1. Interest must
	// propagate through b2 and the message must transit b2.
	links := [][2]string{{"b1", "b2"}, {"b2", "b3"}}
	tn := build(t, RoutingTree, links, "b1", "b2", "b3")
	openAndSubscribe(t, tn, "b3", 10, "power")
	publish(t, tn, "b1", 20, "power")
	if tn.envs["b3"].deliveries(10) != 1 {
		t.Fatal("multi-hop delivery failed")
	}
	_, rcvd2, _ := tn.members["b2"].Stats()
	if rcvd2 != 1 {
		t.Fatalf("middle broker forwards = %d", rcvd2)
	}
}

func TestBroadcastMultiHopNoDuplicates(t *testing.T) {
	links := [][2]string{{"b1", "b2"}, {"b2", "b3"}}
	tn := build(t, RoutingBroadcast, links, "b1", "b2", "b3")
	openAndSubscribe(t, tn, "b3", 10, "power")
	openAndSubscribe(t, tn, "b1", 11, "power")
	publish(t, tn, "b2", 20, "power")
	if tn.envs["b3"].deliveries(10) != 1 || tn.envs["b1"].deliveries(11) != 1 {
		t.Fatal("flood delivery wrong")
	}
	publish(t, tn, "b1", 21, "power")
	if tn.envs["b3"].deliveries(10) != 2 {
		t.Fatalf("end-to-end flood count = %d", tn.envs["b3"].deliveries(10))
	}
}

func TestInterestWithdrawal(t *testing.T) {
	links := [][2]string{{"b1", "b2"}}
	tn := build(t, RoutingTree, links, "b1", "b2")
	openAndSubscribe(t, tn, "b2", 10, "power")
	publish(t, tn, "b1", 20, "power")
	sent1, _, _ := tn.members["b1"].Stats()
	if sent1 != 1 {
		t.Fatalf("initial forward count = %d", sent1)
	}
	// Drop the subscriber: interest withdraws, next publish is pruned.
	tn.members["b2"].Broker().OnConnClose(10)
	tn.pump()
	m := message.NewText("x")
	m.Dest = message.Topic("power")
	tn.members["b1"].Broker().OnFrame(20, wire.Publish{Seq: 2, Msg: m})
	tn.pump()
	sent2, _, pruned := tn.members["b1"].Stats()
	if sent2 != 1 || pruned != 1 {
		t.Fatalf("after withdrawal: sent=%d pruned=%d", sent2, pruned)
	}
}

func TestLateJoinerLearnsInterest(t *testing.T) {
	// Subscribe first, then add the link: AddPeer must advertise existing
	// interest so the publisher-side broker forwards.
	tn := &testNet{members: make(map[string]*Member), envs: make(map[string]*memEnv)}
	for _, id := range []string{"b1", "b2"} {
		env := newMemEnv()
		tn.envs[id] = env
		tn.members[id] = NewMember(broker.New(env, broker.DefaultConfig(id)), RoutingTree)
	}
	openAndSubscribe(t, tn, "b2", 10, "power")
	tn.link("b1", "b2")
	publish(t, tn, "b1", 20, "power")
	if tn.envs["b2"].deliveries(10) != 1 {
		t.Fatal("late link did not carry interest")
	}
}

func TestPreexistingTopicsAdvertisedOnJoin(t *testing.T) {
	// A live broker gains a subscriber BEFORE it joins the network (the
	// TCP daemon serves clients before JoinNetwork/peering completes).
	// NewMember must seed that interest, or tree routing prunes the
	// topic forever.
	env2 := newMemEnv()
	b2 := broker.New(env2, broker.DefaultConfig("b2"))
	if err := b2.OnConnOpen(10); err != nil {
		t.Fatal(err)
	}
	b2.OnFrame(10, wire.Subscribe{SubID: 1, Dest: message.Topic("power")})

	tn := &testNet{members: make(map[string]*Member), envs: make(map[string]*memEnv)}
	env1 := newMemEnv()
	tn.envs["b1"] = env1
	tn.members["b1"] = NewMember(broker.New(env1, broker.DefaultConfig("b1")), RoutingTree)
	tn.envs["b2"] = env2
	tn.members["b2"] = NewMember(b2, RoutingTree)
	tn.link("b1", "b2")
	publish(t, tn, "b1", 20, "power")
	if tn.envs["b2"].deliveries(10) != 1 {
		t.Fatal("pre-join subscription was not advertised")
	}
}

func TestCycleLoopBroken(t *testing.T) {
	// A mis-wired ring (possible over TCP, where no Controller sees the
	// global topology): b1-b2, b2-b3, b3-b1. A broker must drop its own
	// publish when it loops back, so the flood terminates instead of
	// circulating forever (the pump would never drain otherwise).
	tn := &testNet{members: make(map[string]*Member), envs: make(map[string]*memEnv)}
	for _, id := range []string{"b1", "b2", "b3"} {
		env := newMemEnv()
		tn.envs[id] = env
		tn.members[id] = NewMember(broker.New(env, broker.DefaultConfig(id)), RoutingBroadcast)
	}
	tn.link("b1", "b2")
	tn.link("b2", "b3")
	tn.link("b3", "b1")
	openAndSubscribe(t, tn, "b1", 10, "power")
	publish(t, tn, "b1", 20, "power")
	// The pump returned, so the flood terminated; the origin's local
	// subscriber saw the message exactly once (loop copies dropped).
	if got := tn.envs["b1"].deliveries(10); got != 1 {
		t.Fatalf("origin subscriber deliveries = %d, want 1", got)
	}
}

func TestRemovePeerWithdrawsInterest(t *testing.T) {
	// Chain b1-b2-b3 with the subscriber behind b3. When b2 loses its
	// link to b3 (a TCP peer death), b2 must withdraw the subtree's
	// interest from b1 so b1 stops forwarding into a black hole.
	links := [][2]string{{"b1", "b2"}, {"b2", "b3"}}
	tn := build(t, RoutingTree, links, "b1", "b2", "b3")
	openAndSubscribe(t, tn, "b3", 10, "power")
	publish(t, tn, "b1", 20, "power")
	sent1, _, _ := tn.members["b1"].Stats()
	if sent1 != 1 {
		t.Fatalf("initial forward count = %d", sent1)
	}
	tn.members["b2"].RemovePeer("b3")
	tn.pump()
	if tn.members["b2"].HasPeer("b3") {
		t.Fatal("peer still registered after RemovePeer")
	}
	m := message.NewText("x")
	m.Dest = message.Topic("power")
	tn.members["b1"].Broker().OnFrame(20, wire.Publish{Seq: 2, Msg: m})
	tn.pump()
	sent2, _, pruned1 := tn.members["b1"].Stats()
	if sent2 != 1 || pruned1 != 1 {
		t.Fatalf("after peer removal: sent=%d pruned=%d", sent2, pruned1)
	}
}

func TestLateFramesFromRemovedPeerIgnored(t *testing.T) {
	// A serialized binding can still have a dead link's frames queued
	// behind its RemovePeer. A BrokerSub arriving after removal must not
	// resurrect interest state for the unregistered peer — that ghost
	// subtree would be advertised forever.
	links := [][2]string{{"b1", "b2"}}
	tn := build(t, RoutingTree, links, "b1", "b2")
	m1 := tn.members["b1"]
	m1.RemovePeer("b2")
	tn.pump()
	m1.OnPeerFrame("b2", wire.BrokerSub{BrokerID: "b2", Topic: "power", Add: true})
	tn.pump()
	if got := m1.InterestedPeers("power"); len(got) != 0 {
		t.Fatalf("ghost interest recorded for removed peer: %v", got)
	}
}

func TestQueueForwarding(t *testing.T) {
	// Tree mode forwards queue messages unpruned (interest tracking is
	// topic-only), so a remote queue consumer still receives them.
	links := [][2]string{{"b1", "b2"}}
	tn := build(t, RoutingTree, links, "b1", "b2")
	b2 := tn.members["b2"].Broker()
	if err := b2.OnConnOpen(10); err != nil {
		t.Fatal(err)
	}
	b2.OnFrame(10, wire.Subscribe{SubID: 1, Dest: message.Queue("work")})
	tn.pump()
	b1 := tn.members["b1"].Broker()
	if err := b1.OnConnOpen(20); err != nil {
		t.Fatal(err)
	}
	m := message.NewText("job")
	m.Dest = message.Queue("work")
	b1.OnFrame(20, wire.Publish{Seq: 1, Msg: m})
	tn.pump()
	if tn.envs["b2"].deliveries(10) != 1 {
		t.Fatal("queue message not forwarded")
	}
}

func TestDuplicatePeerPanics(t *testing.T) {
	env := newMemEnv()
	m := NewMember(broker.New(env, broker.DefaultConfig("b1")), RoutingTree)
	m.AddPeer("x", func(wire.Frame) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate peer did not panic")
		}
	}()
	m.AddPeer("x", func(wire.Frame) {})
}

func TestMemberLinkErrors(t *testing.T) {
	env := newMemEnv()
	m := NewMember(broker.New(env, broker.DefaultConfig("b1")), RoutingTree)
	if err := m.Link("b1", func(wire.Frame) {}); err == nil {
		t.Fatal("self link accepted")
	}
	if err := m.Link("x", func(wire.Frame) {}); err != nil {
		t.Fatal(err)
	}
	if err := m.Link("x", func(wire.Frame) {}); err == nil {
		t.Fatal("duplicate link accepted")
	}
	if got := m.Peers(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("peers = %v", got)
	}
}

func TestModeString(t *testing.T) {
	if RoutingBroadcast.String() != "broadcast" || RoutingTree.String() != "tree" {
		t.Fatal("mode names")
	}
	for _, name := range []string{"broadcast", "tree"} {
		mode, err := ParseRoutingMode(name)
		if err != nil || mode.String() != name {
			t.Fatalf("ParseRoutingMode(%q) = %v, %v", name, mode, err)
		}
	}
	if _, err := ParseRoutingMode("mesh"); err == nil {
		t.Fatal("bad mode name accepted")
	}
}

func TestControllerAddressing(t *testing.T) {
	c := NewController()
	a1 := c.Register("b1")
	a2 := c.Register("b2")
	if a1 == a2 || c.Register("b1") != a1 {
		t.Fatalf("addresses: %d %d", a1, a2)
	}
	if c.Address("b2") != a2 || c.Address("nope") != 0 {
		t.Fatal("address lookup")
	}
	if c.Brokers() != 2 {
		t.Fatalf("brokers = %d", c.Brokers())
	}
}

func TestControllerStarAndRoutes(t *testing.T) {
	c := NewController()
	c.StarLinks([]string{"hub", "b2", "b3", "b4"})
	if err := c.ValidateTree(); err != nil {
		t.Fatalf("star not a tree: %v", err)
	}
	routes := c.Routes()
	if routes["b2"]["b3"] != 2 || routes["hub"]["b4"] != 1 {
		t.Fatalf("routes = %v", routes)
	}
}

func TestControllerChain(t *testing.T) {
	c := NewController()
	c.ChainLinks([]string{"a", "b", "c", "d"})
	if err := c.ValidateTree(); err != nil {
		t.Fatal(err)
	}
	if c.Routes()["a"]["d"] != 3 {
		t.Fatalf("chain distance = %d", c.Routes()["a"]["d"])
	}
}

func TestControllerLinkValidation(t *testing.T) {
	c := NewController()
	c.Register("a")
	c.Register("b")
	c.Register("c")
	if err := c.Link("a", "a"); err == nil || !strings.Contains(err.Error(), "self link") {
		t.Fatalf("self link: %v", err)
	}
	if err := c.Link("a", "zz"); err == nil || !strings.Contains(err.Error(), "unregistered") {
		t.Fatalf("unregistered: %v", err)
	}
	if err := c.Link("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := c.Link("b", "a"); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate (reversed): %v", err)
	}
	if err := c.ValidateTree(); err == nil {
		t.Fatal("disconnected graph validated as tree")
	}
	if err := c.Link("b", "c"); err != nil {
		t.Fatal(err)
	}
	if err := c.ValidateTree(); err != nil {
		t.Fatal(err)
	}
	// a-b-c chain: closing a-c would create the cycle that duplicates
	// every forwarded message; Link must reject it and say why.
	err := c.Link("a", "c")
	if err == nil {
		t.Fatal("cycle-closing link accepted")
	}
	if !strings.Contains(err.Error(), "cycle") || !strings.Contains(err.Error(), "already connected") {
		t.Fatalf("cycle error not descriptive: %v", err)
	}
	if len(c.Links()) != 2 {
		t.Fatalf("rejected link was recorded: %v", c.Links())
	}
}

func TestControllerBadLinksPanic(t *testing.T) {
	c := NewController()
	c.Register("a")
	c.Register("b")
	c.AddLink("a", "b")
	for _, fn := range []func(){
		func() { c.AddLink("a", "a") },
		func() { c.AddLink("a", "b") },
		func() { c.AddLink("b", "a") },
		func() { c.AddLink("a", "zz") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad link did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestBroadcastTreeEquivalenceRandomized drives the same randomized
// workload — a random tree topology, random subscriber placement over a
// handful of topics, publishes from random brokers — through both
// routing modes and requires every subscriber to receive the identical
// multiset of messages. Broadcast and tree may differ in how much the
// wire carries, never in what subscribers see.
func TestBroadcastTreeEquivalenceRandomized(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := 2 + rng.Intn(5) // 2..6 brokers
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("b%d", i+1)
		}
		// Random tree: attach each broker to a random earlier one.
		var links [][2]string
		for i := 1; i < n; i++ {
			links = append(links, [2]string{ids[rng.Intn(i)], ids[i]})
		}
		topics := []string{"power", "load", "volts"}
		type subPlace struct {
			brokerIdx int
			conn      broker.ConnID
			topic     string
		}
		var subsPlan []subPlace
		nSubs := 1 + rng.Intn(4)
		for s := 0; s < nSubs; s++ {
			subsPlan = append(subsPlan, subPlace{
				brokerIdx: rng.Intn(n),
				conn:      broker.ConnID(100 + s),
				topic:     topics[rng.Intn(len(topics))],
			})
		}
		type pubOp struct {
			brokerIdx int
			topic     string
			id        string
		}
		var pubs []pubOp
		nPubs := 5 + rng.Intn(20)
		for p := 0; p < nPubs; p++ {
			pubs = append(pubs, pubOp{
				brokerIdx: rng.Intn(n),
				topic:     topics[rng.Intn(len(topics))],
				id:        fmt.Sprintf("ID:eq/%d/%d", trial, p),
			})
		}

		run := func(mode RoutingMode) map[broker.ConnID][]string {
			tn := build(t, mode, links, ids...)
			for _, sp := range subsPlan {
				openAndSubscribe(t, tn, ids[sp.brokerIdx], sp.conn, sp.topic)
			}
			opened := make(map[broker.ConnID]bool)
			for i, po := range pubs {
				b := tn.members[ids[po.brokerIdx]].Broker()
				pubConn := broker.ConnID(1000 + po.brokerIdx)
				if !opened[pubConn] {
					if err := b.OnConnOpen(pubConn); err != nil {
						t.Fatal(err)
					}
					opened[pubConn] = true
				}
				m := message.NewText("x")
				m.ID = po.id
				m.Dest = message.Topic(po.topic)
				b.OnFrame(pubConn, wire.Publish{Seq: int64(i), Msg: m})
				tn.pump()
			}
			got := make(map[broker.ConnID][]string)
			for _, sp := range subsPlan {
				got[sp.conn] = tn.envs[ids[sp.brokerIdx]].deliveredIDs(sp.conn)
			}
			return got
		}

		flood := run(RoutingBroadcast)
		tree := run(RoutingTree)
		for _, sp := range subsPlan {
			a, b := flood[sp.conn], tree[sp.conn]
			if len(a) == 0 && len(b) == 0 {
				continue
			}
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("trial %d: subscriber %d on %s@%s delivered multiset diverges:\nbroadcast: %v\ntree:      %v",
					trial, sp.conn, sp.topic, ids[sp.brokerIdx], a, b)
			}
		}
	}
}

// chanLink is an asynchronous link for the concurrency stress: sends
// enqueue onto a buffered channel drained by a dedicated goroutine, the
// same shape as the TCP binding's per-connection writer. inflight counts
// frames enqueued but not yet fully processed — a frame a link goroutine
// is still handling may enqueue more frames, so "all channels look
// empty" is not quiescence; inflight==0 is.
type chanLink struct {
	ch   chan wire.Frame
	done chan struct{}
}

func startChanLink(to *Member, from string, buf int, inflight *sync.WaitGroup) *chanLink {
	l := &chanLink{ch: make(chan wire.Frame, buf), done: make(chan struct{})}
	go func() {
		defer close(l.done)
		for f := range l.ch {
			to.OnPeerFrame(from, f)
			inflight.Done()
		}
	}()
	return l
}

// TestConcurrentDBNForwardStress hammers a 3-broker chain — sharded
// cores, concurrent publishers on every broker, subscribers flapping to
// exercise interest propagation — and checks nothing is lost end to end
// once quiescent. Run with -race: this is the proof that the forwarding
// layer is shard-safe with Shards>1 and concurrent OnFrame callers.
func TestConcurrentDBNForwardStress(t *testing.T) {
	for _, mode := range []RoutingMode{RoutingBroadcast, RoutingTree} {
		t.Run(mode.String(), func(t *testing.T) {
			const (
				pubsPerBroker = 4
				msgsPerPub    = 150
				linkBuf       = 1 << 15
			)
			ids := []string{"b1", "b2", "b3"}
			envs := make(map[string]*memEnv)
			members := make(map[string]*Member)
			for _, id := range ids {
				env := newMemEnv()
				cfg := broker.DefaultConfig(id)
				cfg.Shards = 4
				envs[id] = env
				members[id] = NewMember(broker.New(env, cfg), mode)
			}
			var lnks []*chanLink
			var inflight sync.WaitGroup
			link := func(a, b string) {
				ab := startChanLink(members[b], a, linkBuf, &inflight)
				ba := startChanLink(members[a], b, linkBuf, &inflight)
				lnks = append(lnks, ab, ba)
				members[a].AddPeer(b, func(f wire.Frame) { inflight.Add(1); ab.ch <- f })
				members[b].AddPeer(a, func(f wire.Frame) { inflight.Add(1); ba.ch <- f })
			}
			link("b1", "b2")
			link("b2", "b3")

			// One steady subscriber per broker on the shared topic, plus a
			// flapper that subscribes/unsubscribes to churn interest.
			for i, id := range ids {
				b := members[id].Broker()
				conn := broker.ConnID(10 + i)
				if err := b.OnConnOpen(conn); err != nil {
					t.Fatal(err)
				}
				b.OnFrame(conn, wire.Subscribe{SubID: 1, Dest: message.Topic("power")})
			}
			// Tree mode prunes until interest propagates; wait for every
			// link to carry "power" interest both ways before the storm,
			// or early remote publishes are (correctly) dropped.
			wantInterest := map[string]int{"b1": 1, "b2": 2, "b3": 1}
			for _, id := range ids {
				for len(members[id].InterestedPeers("power")) != wantInterest[id] {
					runtime.Gosched()
				}
			}

			var wg sync.WaitGroup
			for bi, id := range ids {
				b := members[id].Broker()
				for p := 0; p < pubsPerBroker; p++ {
					conn := broker.ConnID(1000 + 100*bi + p)
					if err := b.OnConnOpen(conn); err != nil {
						t.Fatal(err)
					}
					wg.Add(1)
					go func(b *broker.Broker, conn broker.ConnID) {
						defer wg.Done()
						for i := 0; i < msgsPerPub; i++ {
							m := message.NewText("x")
							m.Dest = message.Topic("power")
							b.OnFrame(conn, wire.Publish{Seq: int64(i), Msg: m})
						}
					}(b, conn)
				}
				// Interest flapper on a broker-private topic.
				conn := broker.ConnID(2000 + bi)
				if err := b.OnConnOpen(conn); err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(b *broker.Broker, conn broker.ConnID, bi int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						sid := int64(i + 1)
						b.OnFrame(conn, wire.Subscribe{SubID: sid, Dest: message.Topic(fmt.Sprintf("flap.%d", bi))})
						b.OnFrame(conn, wire.Unsubscribe{SubID: sid})
					}
				}(b, conn, bi)
			}
			wg.Wait()
			// Quiesce: no frame in flight on any link (an in-flight frame
			// may still spawn more, so inflight hits zero only when the
			// whole network has settled), then shut the links down.
			inflight.Wait()
			for _, l := range lnks {
				close(l.ch)
			}
			for _, l := range lnks {
				<-l.done
			}

			// Every steady subscriber must have received every publish
			// from every broker exactly once.
			const total = 3 * pubsPerBroker * msgsPerPub
			for i, id := range ids {
				if got := envs[id].deliveries(broker.ConnID(10 + i)); got != total {
					t.Fatalf("%s subscriber got %d deliveries, want %d", id, got, total)
				}
			}
		})
	}
}
