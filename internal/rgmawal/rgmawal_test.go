package rgmawal_test

import (
	"fmt"
	"reflect"
	"testing"

	"gridmon/internal/rgma"
	"gridmon/internal/rgmacore"
	"gridmon/internal/rgmawal"
	"gridmon/internal/sim"
	"gridmon/internal/wal"
	"gridmon/internal/walfs"
)

const tableSQL = "CREATE TABLE generator (genid INTEGER PRIMARY KEY, power DOUBLE PRECISION, site CHAR(20))"

func newCore() *rgmacore.Core {
	return rgmacore.New(rgmacore.Config{Shards: 4})
}

func insert(t *testing.T, c *rgmacore.Core, producerID int64, genid int, power float64, site string) {
	t.Helper()
	sql := fmt.Sprintf("INSERT INTO generator VALUES (%d, %g, '%s')", genid, power, site)
	if err := c.Insert(producerID, sql); err != nil {
		t.Fatalf("insert: %v", err)
	}
}

// driveLoad builds a representative persistent state: a table, two
// surviving producers with tuples, a closed producer, a surviving
// latest consumer and a closed one.
func driveLoad(t *testing.T, c *rgmacore.Core) (p1, p2 int64) {
	t.Helper()
	if _, err := c.CreateTable(tableSQL); err != nil {
		t.Fatalf("create table: %v", err)
	}
	pa, err := c.CreateProducer("generator", 0, 0)
	if err != nil {
		t.Fatalf("create producer: %v", err)
	}
	pb, err := c.CreateProducer("generator", 5*sim.Second, 10*sim.Second)
	if err != nil {
		t.Fatalf("create producer: %v", err)
	}
	dead, err := c.CreateProducer("generator", 0, 0)
	if err != nil {
		t.Fatalf("create producer: %v", err)
	}
	insert(t, c, pa.ID(), 1, 480.5, "aberdeen")
	insert(t, c, pa.ID(), 2, 0.25, "glasgow")
	insert(t, c, pb.ID(), 3, 13.25, "dundee")
	insert(t, c, dead.ID(), 9, 1, "gone")
	if err := c.CloseProducer(dead.ID()); err != nil {
		t.Fatalf("close producer: %v", err)
	}
	cn, err := c.CreateConsumer("SELECT * FROM generator WHERE power > 0.5", rgma.LatestQuery, nil)
	if err != nil {
		t.Fatalf("create consumer: %v", err)
	}
	_ = cn
	deadCn, err := c.CreateConsumer("SELECT * FROM generator", rgma.ContinuousQuery, nil)
	if err != nil {
		t.Fatalf("create consumer: %v", err)
	}
	if err := c.CloseConsumer(deadCn.ID()); err != nil {
		t.Fatalf("close consumer: %v", err)
	}
	return pa.ID(), pb.ID()
}

func wantLoadState(t *testing.T, c *rgmacore.Core, p1, p2 int64) {
	t.Helper()
	st := c.DumpPersistent()
	if len(st.Tables) != 1 {
		t.Fatalf("tables = %v, want the generator schema", st.Tables)
	}
	if len(st.Producers) != 2 || st.Producers[0].ID != p1 || st.Producers[1].ID != p2 {
		t.Fatalf("producers = %+v, want ids %d, %d", st.Producers, p1, p2)
	}
	if n := len(st.Producers[0].Tuples); n != 2 {
		t.Errorf("producer %d has %d tuples, want 2", p1, n)
	}
	if n := len(st.Producers[1].Tuples); n != 1 {
		t.Errorf("producer %d has %d tuples, want 1", p2, n)
	}
	if st.Producers[1].LatestRetention != 5*sim.Second || st.Producers[1].HistoryRetention != 10*sim.Second {
		t.Errorf("producer %d retentions = %v/%v, want 5s/10s",
			p2, st.Producers[1].LatestRetention, st.Producers[1].HistoryRetention)
	}
	if len(st.Consumers) != 1 || st.Consumers[0].Type != rgma.LatestQuery {
		t.Fatalf("consumers = %+v, want one latest consumer", st.Consumers)
	}
}

func TestReplayEquivalence(t *testing.T) {
	fsys := walfs.NewMem()
	c := newCore()
	p, info, err := rgmawal.Open(fsys, wal.Options{}, c)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if info.Records != 0 {
		t.Fatalf("fresh open replayed %d records", info.Records)
	}
	p1, p2 := driveLoad(t, c)
	wantLoadState(t, c, p1, p2)
	want := c.DumpPersistent()
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	c2 := newCore()
	p2nd, info, err := rgmawal.Open(fsys, wal.Options{}, c2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2nd.Close()
	if info.Records == 0 {
		t.Fatal("reopen replayed nothing")
	}
	wantLoadState(t, c2, p1, p2)
	if got := c2.DumpPersistent(); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered state differs:\ngot:  %+v\nwant: %+v", got, want)
	}
}

func TestCleanShutdownRoundtrip(t *testing.T) {
	fsys := walfs.NewMem()
	c := newCore()
	p, _, err := rgmawal.Open(fsys, wal.Options{}, c)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	p1, p2 := driveLoad(t, c)
	want := c.DumpPersistent()
	if err := p.CloseClean(); err != nil {
		t.Fatalf("close clean: %v", err)
	}

	c2 := newCore()
	p2nd, info, err := rgmawal.Open(fsys, wal.Options{}, c2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2nd.Close()
	if !info.CleanStart {
		t.Error("reopen after CloseClean should be a clean start")
	}
	wantLoadState(t, c2, p1, p2)
	if got := c2.DumpPersistent(); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered state differs:\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestRecoveredQueriesServe checks a recovered core actually answers:
// latest/history queries see replayed tuples (the clock continued past
// their insertion instants instead of rewinding under them), replayed
// continuous consumers receive post-recovery inserts, and new resource
// ids do not collide with replayed ones.
func TestRecoveredQueriesServe(t *testing.T) {
	fsys := walfs.NewMem()
	c := newCore()
	p, _, err := rgmawal.Open(fsys, wal.Options{}, c)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := c.CreateTable(tableSQL); err != nil {
		t.Fatal(err)
	}
	prod, err := c.CreateProducer("generator", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := c.CreateConsumer("SELECT * FROM generator", rgma.ContinuousQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	insert(t, c, prod.ID(), 1, 480.5, "aberdeen")
	maxID := cont.ID()
	if prod.ID() > maxID {
		maxID = prod.ID()
	}
	_ = p.Close()

	c2 := newCore()
	p2, _, err := rgmawal.Open(fsys, wal.Options{}, c2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer p2.Close()

	// Latest query over the replayed store: the tuple must still be
	// within its 30 s latest retention from the recovered clock.
	latest, err := c2.CreateConsumer("SELECT * FROM generator", rgma.LatestQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if latest.ID() <= maxID {
		t.Errorf("new consumer id %d not past replayed ids (max %d)", latest.ID(), maxID)
	}
	tuples, err := c2.Pop(latest.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 1 || tuples[0].Row[0] != "1" {
		t.Fatalf("latest pop = %+v, want the replayed genid-1 tuple", tuples)
	}

	// The replayed continuous consumer starts empty (buffered tuples are
	// not durable) but receives new inserts.
	got, err := c2.Pop(cont.ID())
	if err != nil {
		t.Fatalf("replayed continuous consumer gone: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("replayed continuous consumer popped %+v, want empty", got)
	}
	insert(t, c2, prod.ID(), 2, 1.5, "glasgow")
	got, err = c2.Pop(cont.ID())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Row[0] != "2" {
		t.Fatalf("continuous pop after recovery = %+v, want the new tuple", got)
	}
}

// TestCrashPointPrefix sweeps injected I/O failures over a fixed insert
// load and asserts the recovered store is always a prefix of the
// inserted sequence.
func TestCrashPointPrefix(t *testing.T) {
	const inserts = 6
	drive := func(c *rgmacore.Core) int64 {
		if _, err := c.CreateTable(tableSQL); err != nil {
			return -1
		}
		prod, err := c.CreateProducer("generator", 0, 0)
		if err != nil {
			return -1
		}
		for i := 0; i < inserts; i++ {
			_ = c.Insert(prod.ID(), fmt.Sprintf("INSERT INTO generator VALUES (%d, 1.5, 'site')", i))
		}
		return prod.ID()
	}

	probe := walfs.NewFault(walfs.NewMem(), 1<<30, 0)
	{
		c := newCore()
		p, _, err := rgmawal.Open(probe, wal.Options{Fsync: true, SegmentBytes: 512}, c)
		if err != nil {
			t.Fatalf("probe open: %v", err)
		}
		drive(c)
		_ = p.Close()
	}
	totalOps := probe.Ops()
	if totalOps < inserts {
		t.Fatalf("probe counted only %d ops", totalOps)
	}

	for failAt := 1; failAt <= totalOps; failAt++ {
		mem := walfs.NewMem()
		fault := walfs.NewFault(mem, failAt, 2)
		c := newCore()
		p, _, err := rgmawal.Open(fault, wal.Options{Fsync: true, SegmentBytes: 512}, c)
		if err != nil {
			continue
		}
		drive(c)
		_ = p.Close()
		mem.Crash()

		c2 := newCore()
		p2, _, err := rgmawal.Open(mem, wal.Options{Fsync: true, SegmentBytes: 512}, c2)
		if err != nil {
			t.Fatalf("failAt=%d: recovery failed: %v", failAt, err)
		}
		st := c2.DumpPersistent()
		if len(st.Producers) > 1 {
			t.Fatalf("failAt=%d: %d producers, want ≤1", failAt, len(st.Producers))
		}
		if len(st.Producers) == 1 {
			for i, tup := range st.Producers[0].Tuples {
				if got, want := tup.Row[0].String(), fmt.Sprint(i); got != want {
					t.Fatalf("failAt=%d: tuple[%d] genid = %s, want %s (prefix violated)", failAt, i, got, want)
				}
			}
		}
		_ = p2.Close()
	}
}
