// Package rgmawal persists an R-GMA core's durable state — table
// schemas, producer resources with their tuple stores, polling consumer
// resources — through the segmented write-ahead log in package wal,
// mirroring what package brokerwal does for the broker. It implements
// rgmacore.Journal on one side and drives rgmacore's Restore API on the
// other; snapshot records are re-emitted operations in the same
// encoding as live journal records, so recovery is one decode path.
//
// Recovery also restarts the core clock: tuple retention works in
// nanoseconds since core start, so Open continues the clock just past
// the newest replayed insertion instant — replayed tuples then age out
// under exactly the retention arithmetic they would have seen had the
// process never died.
//
// The same quiescence rule as brokerwal applies: journal callbacks may
// append from inside core shard locks, but Snapshot/CloseClean dump
// core state while the log's writer is parked, so they must only run
// while nothing mutates the core (daemon startup and shutdown).
package rgmawal

import (
	"fmt"
	"sync"

	"gridmon/internal/rgma"
	"gridmon/internal/rgmacore"
	"gridmon/internal/sim"
	"gridmon/internal/sqlmini"
	"gridmon/internal/wal"
	"gridmon/internal/walfs"
)

// Record encoding: one op byte, then wal/codec fields. SQL texts ride
// last where possible, undelimited.
const (
	opTable         = 1 // sql
	opProducer      = 2 // id, latestRetention, historyRetention, table
	opProducerClose = 3 // id
	opInsert        = 4 // producerID, at, sql
	opConsumer      = 5 // id, qtype, query
	opConsumerClose = 6 // id
)

// Persister implements rgmacore.Journal over a wal.Log. Callback
// methods are safe for concurrent use; Snapshot, CloseClean and Close
// require core quiescence.
type Persister struct {
	log  *wal.Log
	core *rgmacore.Core

	// maxAt tracks the newest insertion instant seen during replay; it
	// becomes the recovered clock origin. Only touched by apply, which
	// wal.Open calls sequentially.
	maxAt sim.Time
}

var encPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// Open recovers core state from the log directory and wires the
// persister in: replay through the Restore API, continue the core
// clock past the newest replayed tuple, compact the replayed state into
// a fresh snapshot, and attach as the core's journal. The core must be
// quiescent — not yet serving transports — for the duration.
func Open(fsys walfs.FS, opts wal.Options, core *rgmacore.Core) (*Persister, wal.RecoverInfo, error) {
	p := &Persister{core: core}
	log, info, err := wal.Open(fsys, opts, p.apply)
	if err != nil {
		return nil, info, err
	}
	p.log = log
	if p.maxAt > 0 {
		core.SetClockOrigin(p.maxAt + 1)
	}
	if info.Records > 0 && !info.CleanStart {
		if err := log.Snapshot(p.dump); err != nil {
			_ = log.Close()
			return nil, info, err
		}
	}
	core.SetJournal(p)
	return p, info, nil
}

// Stats proxies the log's counters.
func (p *Persister) Stats() wal.Stats { return p.log.Stats() }

// Err reports the log's poisoning error, if any I/O has failed.
func (p *Persister) Err() error { return p.log.Err() }

// CloseClean detaches from the core, snapshots its durable state and
// installs the clean-shutdown marker. Requires quiescence.
func (p *Persister) CloseClean() error {
	p.core.SetJournal(nil)
	return p.log.CloseClean(p.dump)
}

// Close detaches and releases the log without marking it clean; the
// next Open replays as after a crash.
func (p *Persister) Close() error {
	p.core.SetJournal(nil)
	return p.log.Close()
}

func (p *Persister) append(buf *[]byte) {
	_ = p.log.Append(*buf)
	*buf = (*buf)[:0]
	encPool.Put(buf)
}

func (p *Persister) TableCreated(sql string) {
	bp := encPool.Get().(*[]byte)
	*bp = append(append(*bp, opTable), sql...)
	p.append(bp)
}

func appendProducer(b []byte, id int64, table string, latest, history sim.Time) []byte {
	b = wal.AppendUvarint(b, uint64(id))
	b = wal.AppendUvarint(b, uint64(latest))
	b = wal.AppendUvarint(b, uint64(history))
	return append(b, table...)
}

func (p *Persister) ProducerCreated(id int64, table string, latestRetention, historyRetention sim.Time) {
	bp := encPool.Get().(*[]byte)
	*bp = appendProducer(append(*bp, opProducer), id, table, latestRetention, historyRetention)
	p.append(bp)
}

func (p *Persister) ProducerClosed(id int64) {
	bp := encPool.Get().(*[]byte)
	*bp = wal.AppendUvarint(append(*bp, opProducerClose), uint64(id))
	p.append(bp)
}

func appendInsert(b []byte, producerID int64, at sim.Time, sql string) []byte {
	b = wal.AppendUvarint(b, uint64(producerID))
	b = wal.AppendUvarint(b, uint64(at))
	return append(b, sql...)
}

func (p *Persister) Inserted(producerID int64, at sim.Time, sql string) {
	bp := encPool.Get().(*[]byte)
	*bp = appendInsert(append(*bp, opInsert), producerID, at, sql)
	p.append(bp)
}

func appendConsumer(b []byte, id int64, qtype rgma.QueryType, query string) []byte {
	b = wal.AppendUvarint(b, uint64(id))
	b = wal.AppendUvarint(b, uint64(qtype))
	return append(b, query...)
}

func (p *Persister) ConsumerCreated(id int64, query string, qtype rgma.QueryType) {
	bp := encPool.Get().(*[]byte)
	*bp = appendConsumer(append(*bp, opConsumer), id, qtype, query)
	p.append(bp)
}

func (p *Persister) ConsumerClosed(id int64) {
	bp := encPool.Get().(*[]byte)
	*bp = wal.AppendUvarint(append(*bp, opConsumerClose), uint64(id))
	p.append(bp)
}

// apply replays one record — live-journaled or snapshot-compacted —
// into the core.
func (p *Persister) apply(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("rgmawal: empty record")
	}
	d := wal.NewDec(rec[1:])
	switch rec[0] {
	case opTable:
		return p.core.RestoreTable(string(d.Rest()))
	case opProducer:
		id := int64(d.Uvarint())
		latest := sim.Time(d.Uvarint())
		history := sim.Time(d.Uvarint())
		if err := d.Err(); err != nil {
			return err
		}
		return p.core.RestoreProducer(id, string(d.Rest()), latest, history)
	case opProducerClose:
		id := int64(d.Uvarint())
		if err := d.Err(); err != nil {
			return err
		}
		p.core.RestoreProducerClose(id)
	case opInsert:
		id := int64(d.Uvarint())
		at := sim.Time(d.Uvarint())
		if err := d.Err(); err != nil {
			return err
		}
		if at > p.maxAt {
			p.maxAt = at
		}
		return p.core.RestoreInsert(id, at, string(d.Rest()))
	case opConsumer:
		id := int64(d.Uvarint())
		qtype := rgma.QueryType(d.Uvarint())
		if err := d.Err(); err != nil {
			return err
		}
		return p.core.RestoreConsumer(id, string(d.Rest()), qtype)
	case opConsumerClose:
		id := int64(d.Uvarint())
		if err := d.Err(); err != nil {
			return err
		}
		p.core.RestoreConsumerClose(id)
	default:
		return fmt.Errorf("rgmawal: unknown op %d", rec[0])
	}
	return nil
}

// dump re-emits the core's durable state as compacted records: schemas
// first, then each producer followed by its retained tuples (stamped
// with their original insertion instants), then polling consumers.
// Requires core quiescence (see package doc).
func (p *Persister) dump(emit func(rec []byte) error) error {
	st := p.core.DumpPersistent()
	for _, sql := range st.Tables {
		if err := emit(append([]byte{opTable}, sql...)); err != nil {
			return err
		}
	}
	for _, pd := range st.Producers {
		rec := appendProducer([]byte{opProducer}, pd.ID, pd.Table, pd.LatestRetention, pd.HistoryRetention)
		if err := emit(rec); err != nil {
			return err
		}
		for _, t := range pd.Tuples {
			rec := appendInsert([]byte{opInsert}, pd.ID, t.InsertedAt, sqlmini.InsertSQL(pd.Table, t.Row))
			if err := emit(rec); err != nil {
				return err
			}
		}
	}
	for _, cd := range st.Consumers {
		if err := emit(appendConsumer([]byte{opConsumer}, cd.ID, cd.Type, cd.Query)); err != nil {
			return err
		}
	}
	return nil
}
