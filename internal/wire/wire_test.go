package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"gridmon/internal/message"
)

func sampleMessage() *message.Message {
	m := message.NewMap()
	m.ID = "ID:hydra1-42"
	m.Dest = message.Topic("power.monitoring")
	m.Timestamp = 1234567890
	m.Expiration = 99
	m.Priority = 4
	m.CorrelationID = "corr"
	m.ReplyTo = message.Queue("replies")
	m.Type = "telemetry"
	m.Mode = message.Persistent
	m.SetProperty("id", message.Int(42))
	m.SetProperty("site", message.String("aberdeen"))
	m.MapSet("power", message.Float(1.5))
	m.MapSet("voltage", message.Double(240.1))
	m.MapSet("count", message.Long(7))
	m.MapSet("ok", message.Bool(true))
	m.MapSet("b", message.Byte(-1))
	m.MapSet("s", message.Short(-2))
	m.MapSet("raw", message.Bytes([]byte{1, 2, 3}))
	m.MapSet("none", message.Null())
	return m
}

func allFrames() []Frame {
	return []Frame{
		Connect{ClientID: "gen-17"},
		Connected{BrokerID: "hydra5"},
		Subscribe{SubID: 3, Dest: message.Topic("t"), Selector: "id<10000", Durable: true, DurableName: "d1", AckMode: message.ClientAck},
		SubOK{SubID: 3},
		Unsubscribe{SubID: 3},
		Publish{Seq: 9, Msg: sampleMessage()},
		PubAck{Seq: 9},
		Deliver{SubID: 3, Tag: 77, Msg: sampleMessage()},
		Ack{SubID: 3, Tags: []int64{1, 2, 3}},
		Close{},
		Ping{Token: 5},
		Pong{Token: 5},
		BrokerHello{BrokerID: "hydra5"},
		BrokerForward{Origin: "hydra5", Msg: sampleMessage()},
		BrokerSub{BrokerID: "hydra6", Topic: "power.monitoring", Add: true},
		BrokerLink{BrokerID: "hydra6", Routing: 1},
		RGMAHello{ClientID: "rgma-gen-3"},
		RGMAWelcome{ServerID: "rgmad"},
		RGMACreateTable{Seq: 1, SQL: "CREATE TABLE g (genid INTEGER PRIMARY KEY)"},
		RGMAProducerCreate{Seq: 2, Table: "g", LatestRetentionSec: 30, HistoryRetentionSec: 60},
		RGMAInsert{Seq: 3, Producer: 7, SQLs: []string{"INSERT INTO g (genid) VALUES (1)", "INSERT INTO g (genid) VALUES (2)"}},
		RGMAConsumerCreate{Seq: 4, Query: "SELECT * FROM g WHERE genid < 10", QType: 1},
		RGMAPop{Seq: 5, Consumer: 8},
		RGMAClose{Seq: 6, Producer: true, ID: 7},
		RGMAOK{Seq: 3, ID: 2},
		RGMAErr{Seq: 4, Code: 2, Msg: "conflict"},
		RGMATuples{Seq: 5, Consumer: 8, Tuples: []RGMATuple{
			{Row: []string{"1", "480.5", "'site-0001'"}, InsertedAt: 12345},
			{Row: nil, InsertedAt: 6},
		}},
		RGMAStatsReq{Seq: 7},
		RGMAStats{
			Seq: 7, Producers: 3, Consumers: 2, Inserts: 100, Pops: 20,
			TuplesStreamed: 90, TuplesPopped: 55, TuplesDropped: 1,
			WALEnabled: true, WALRecordsAppended: 104, WALBytesLogged: 4096,
			WALFsyncs: 13, WALSnapshots: 1, WALReplayRecords: 17,
			WALReplayTruncatedTail: 9, WALCleanStart: true,
		},
	}
}

func rgmaTuplesEqual(a, b []RGMATuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].InsertedAt != b[i].InsertedAt || len(a[i].Row) != len(b[i].Row) {
			return false
		}
		for j := range a[i].Row {
			if a[i].Row[j] != b[i].Row[j] {
				return false
			}
		}
	}
	return true
}

func framesEqual(a, b Frame) bool {
	switch av := a.(type) {
	case Publish:
		bv, ok := b.(Publish)
		return ok && av.Seq == bv.Seq && av.Msg.Equal(bv.Msg)
	case Deliver:
		bv, ok := b.(Deliver)
		return ok && av.SubID == bv.SubID && av.Tag == bv.Tag && av.Msg.Equal(bv.Msg)
	case Ack:
		bv, ok := b.(Ack)
		if !ok || av.SubID != bv.SubID || len(av.Tags) != len(bv.Tags) {
			return false
		}
		for i := range av.Tags {
			if av.Tags[i] != bv.Tags[i] {
				return false
			}
		}
		return true
	case BrokerForward:
		bv, ok := b.(BrokerForward)
		return ok && av.Origin == bv.Origin && av.Msg.Equal(bv.Msg)
	case RGMAInsert:
		bv, ok := b.(RGMAInsert)
		if !ok || av.Seq != bv.Seq || av.Producer != bv.Producer || len(av.SQLs) != len(bv.SQLs) {
			return false
		}
		for i := range av.SQLs {
			if av.SQLs[i] != bv.SQLs[i] {
				return false
			}
		}
		return true
	case RGMATuples:
		bv, ok := b.(RGMATuples)
		return ok && av.Seq == bv.Seq && av.Consumer == bv.Consumer && rgmaTuplesEqual(av.Tuples, bv.Tuples)
	default:
		// Remaining frames are comparable structs.
		return a == b
	}
}

func TestRoundTripAllFrames(t *testing.T) {
	for _, f := range allFrames() {
		buf := Marshal(f)
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("%v: unmarshal: %v", f.Type(), err)
		}
		if got.Type() != f.Type() {
			t.Fatalf("type mismatch: %v vs %v", got.Type(), f.Type())
		}
		if !framesEqual(f, got) {
			t.Fatalf("%v: round trip mismatch:\n in: %#v\nout: %#v", f.Type(), f, got)
		}
	}
}

func TestSizeMatchesMarshal(t *testing.T) {
	for _, f := range allFrames() {
		if got, want := Size(f), len(Marshal(f)); got != want {
			t.Errorf("%v: Size = %d, Marshal len = %d", f.Type(), got, want)
		}
	}
}

func TestMessageEncodedSizeMatchesWire(t *testing.T) {
	m := sampleMessage()
	p := Publish{Seq: 1, Msg: m}
	// Frame overhead is 1 (type) + 8 (seq); the rest is the message.
	if got := len(Marshal(p)) - 9; got != m.EncodedSize() {
		t.Fatalf("message wire size %d != EncodedSize %d", got, m.EncodedSize())
	}
}

func TestAllBodyKindsRoundTrip(t *testing.T) {
	text := message.NewText("hello world")
	text.ID = "t1"
	bytesMsg := message.NewBytes([]byte{9, 8, 7})
	bytesMsg.ID = "b1"
	obj := message.New()
	obj.SetObject([]byte{1, 1, 2, 3, 5})
	obj.ID = "o1"
	stream := message.New()
	stream.StreamAppend(message.Int(1))
	stream.StreamAppend(message.String("two"))
	stream.ID = "s1"
	empty := message.New()
	empty.ID = "e1"

	for _, m := range []*message.Message{text, bytesMsg, obj, stream, empty} {
		buf := Marshal(Publish{Seq: 1, Msg: m})
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("%v: %v", m.BodyKind(), err)
		}
		gm := got.(Publish).Msg
		if !m.Equal(gm) {
			t.Fatalf("%v round trip mismatch", m.BodyKind())
		}
	}
}

func TestStandaloneMessageRoundTrip(t *testing.T) {
	m := sampleMessage()
	buf := MarshalMessage(nil, m)
	got, err := UnmarshalMessage(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Fatal("standalone message round trip mismatch")
	}
	// The standalone form is the embedded form: Publish = type + seq + message.
	if want := len(Marshal(Publish{Seq: 1, Msg: m})) - 9; len(buf) != want {
		t.Fatalf("standalone message size %d != embedded size %d", len(buf), want)
	}
	if _, err := UnmarshalMessage(append(buf, 0)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing bytes err = %v", err)
	}
	if _, err := UnmarshalMessage(buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated message must fail")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{200}); !errors.Is(err, ErrUnknownFrame) {
		t.Fatalf("unknown frame err = %v", err)
	}
	// Truncated connect.
	buf := Marshal(Connect{ClientID: "abcdef"})
	if _, err := Unmarshal(buf[:4]); !errors.Is(err, ErrShortBuffer) {
		t.Fatalf("short buffer err = %v", err)
	}
	// Trailing garbage.
	if _, err := Unmarshal(append(Marshal(Close{}), 0)); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing bytes err = %v", err)
	}
	// Empty buffer.
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("nil buffer should error")
	}
}

func TestCorruptMessagePayload(t *testing.T) {
	buf := Marshal(Publish{Seq: 1, Msg: sampleMessage()})
	// Walk every truncation point; none may panic, all must error.
	for i := 1; i < len(buf); i++ {
		if _, err := Unmarshal(buf[:i]); err == nil {
			t.Fatalf("truncation at %d did not error", i)
		}
	}
}

func TestStreamFraming(t *testing.T) {
	var buf bytes.Buffer
	frames := allFrames()
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write %v: %v", f.Type(), err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !framesEqual(want, got) {
			t.Fatalf("stream round trip mismatch for %v", want.Type())
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Connect{ClientID: "x"}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()-1]
	if _, err := ReadFrame(bytes.NewReader(b)); err == nil {
		t.Fatal("truncated body did not error")
	}
}

func TestReadFrameOversize(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversize err = %v", err)
	}
}

// Property: arbitrary map messages survive the codec byte-for-byte.
func TestPropertyMapMessageRoundTrip(t *testing.T) {
	f := func(id string, i32 int32, i64 int64, f64 float64, s string, bs []byte, pri uint8) bool {
		m := message.NewMap()
		m.ID = id
		m.Dest = message.Topic("t")
		m.Priority = int(pri % 10)
		m.MapSet("i", message.Int(i32))
		m.MapSet("l", message.Long(i64))
		m.MapSet("d", message.Double(f64))
		m.MapSet("s", message.String(s))
		m.MapSet("b", message.Bytes(bs))
		buf := Marshal(Publish{Seq: 1, Msg: m})
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return m.Equal(got.(Publish).Msg) && len(buf) == Size(Publish{Seq: 1, Msg: m})
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Ack frames with arbitrary tag lists round trip.
func TestPropertyAckRoundTrip(t *testing.T) {
	f := func(sub int64, tags []int64) bool {
		in := Ack{SubID: sub, Tags: tags}
		got, err := Unmarshal(Marshal(in))
		if err != nil {
			return false
		}
		out := got.(Ack)
		if out.SubID != sub || len(out.Tags) != len(tags) {
			return false
		}
		for i := range tags {
			if out.Tags[i] != tags[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFrozenSpliceByteIdentical proves the zero-copy splice path: a
// frozen message's cached-encoding output must be byte-for-byte what the
// field-by-field encoder produces, for every frame kind that carries a
// message and for both value and pointer Deliver forms.
func TestFrozenSpliceByteIdentical(t *testing.T) {
	msgs := []*message.Message{sampleMessage(), message.NewText("hello"), message.NewBytes([]byte{1, 2, 3}), message.New()}
	for _, m := range msgs {
		m.ID = "ID:splice"
		m.Dest = message.Topic("power")
		frames := func(mm *message.Message) []Frame {
			return []Frame{
				Deliver{SubID: 3, Tag: 77, Msg: mm},
				&Deliver{SubID: 3, Tag: 77, Msg: mm},
				BrokerForward{Origin: "hydra5", Msg: mm},
				Publish{Seq: 9, Msg: mm},
			}
		}
		full := frames(m)
		want := make([][]byte, len(full))
		for i, f := range full {
			want[i] = Marshal(f) // unfrozen: field-by-field encoding
		}
		frozen := frames(m.Freeze())
		for i, f := range frozen {
			got := Marshal(f) // frozen: cached-encoding splice
			if !bytes.Equal(got, want[i]) {
				t.Errorf("%T: splice output differs from full encoding\n got %x\nwant %x", f, got, want[i])
			}
			if len(got) != Size(f) {
				t.Errorf("%T: Size %d != marshal len %d", f, Size(f), len(got))
			}
			// And the spliced bytes must still decode to an equal message.
			rt, err := Unmarshal(got)
			if err != nil {
				t.Fatalf("%T: unmarshal spliced frame: %v", f, err)
			}
			switch v := rt.(type) {
			case Deliver:
				if !v.Msg.Equal(m) {
					t.Errorf("%T: spliced round trip message differs", f)
				}
			case Publish:
				if !v.Msg.Equal(m) {
					t.Errorf("%T: spliced round trip message differs", f)
				}
			case BrokerForward:
				if !v.Msg.Equal(m) {
					t.Errorf("%T: spliced round trip message differs", f)
				}
			}
		}
	}
}

// TestDeliverPoolRoundTrip checks pooled frames reset cleanly.
func TestDeliverPoolRoundTrip(t *testing.T) {
	d := GetDeliver()
	d.SubID, d.Tag, d.Msg = 1, 2, sampleMessage()
	PutDeliver(d)
	d2 := GetDeliver()
	if d2.SubID != 0 || d2.Tag != 0 || d2.Msg != nil {
		t.Fatalf("pooled Deliver not zeroed: %+v", d2)
	}
	PutDeliver(d2)
}

func TestFrameReaderMatchesReadFrame(t *testing.T) {
	var buf bytes.Buffer
	frames := allFrames()
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("write %v: %v", f.Type(), err)
		}
	}
	fr := NewFrameReader(&buf)
	for _, want := range frames {
		got, err := fr.Read()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !framesEqual(want, got) {
			t.Fatalf("FrameReader round trip mismatch for %v", want.Type())
		}
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func BenchmarkMarshalPublish(b *testing.B) {
	p := Publish{Seq: 1, Msg: sampleMessage()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Marshal(p)
	}
}

func BenchmarkUnmarshalPublish(b *testing.B) {
	buf := Marshal(Publish{Seq: 1, Msg: sampleMessage()})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSize(b *testing.B) {
	p := Publish{Seq: 1, Msg: sampleMessage()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Size(p)
	}
}
