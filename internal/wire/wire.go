// Package wire defines the broker's binary protocol: typed frames, an
// exact binary codec for JMS messages, and length-prefixed stream framing
// for real TCP transports.
//
// The same frame structs travel two ways: over the discrete-event
// simulator they are carried by reference (with Size providing the exact
// number of bytes the codec would produce, so the network model charges
// authentic wire time), and over real TCP they are marshalled with this
// codec. Everything is big-endian.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"gridmon/internal/message"
)

// FrameType tags each protocol frame.
type FrameType uint8

// Protocol frame types.
const (
	FTConnect FrameType = iota + 1
	FTConnected
	FTSubscribe
	FTSubOK
	FTUnsubscribe
	FTPublish
	FTPubAck
	FTMessage
	FTAck
	FTClose
	FTPing
	FTPong
	FTBrokerHello
	FTBrokerForward
	FTBrokerSub
	FTBrokerLink
	FTRGMAHello
	FTRGMAWelcome
	FTRGMACreateTable
	FTRGMAProducerCreate
	FTRGMAInsert
	FTRGMAConsumerCreate
	FTRGMAPop
	FTRGMAClose
	FTRGMAOK
	FTRGMAErr
	FTRGMATuples
	FTRGMAStatsReq
	FTRGMAStats
)

var frameNames = map[FrameType]string{
	FTConnect: "CONNECT", FTConnected: "CONNECTED", FTSubscribe: "SUBSCRIBE",
	FTSubOK: "SUB_OK", FTUnsubscribe: "UNSUBSCRIBE", FTPublish: "PUBLISH",
	FTPubAck: "PUB_ACK", FTMessage: "MESSAGE", FTAck: "ACK", FTClose: "CLOSE",
	FTPing: "PING", FTPong: "PONG", FTBrokerHello: "BROKER_HELLO",
	FTBrokerForward: "BROKER_FORWARD", FTBrokerSub: "BROKER_SUB",
	FTBrokerLink: "BROKER_LINK",
	FTRGMAHello:  "RGMA_HELLO", FTRGMAWelcome: "RGMA_WELCOME",
	FTRGMACreateTable: "RGMA_CREATE_TABLE", FTRGMAProducerCreate: "RGMA_PRODUCER_CREATE",
	FTRGMAInsert: "RGMA_INSERT", FTRGMAConsumerCreate: "RGMA_CONSUMER_CREATE",
	FTRGMAPop: "RGMA_POP", FTRGMAClose: "RGMA_CLOSE", FTRGMAOK: "RGMA_OK",
	FTRGMAErr: "RGMA_ERR", FTRGMATuples: "RGMA_TUPLES",
	FTRGMAStatsReq: "RGMA_STATS_REQ", FTRGMAStats: "RGMA_STATS",
}

func (t FrameType) String() string {
	if s, ok := frameNames[t]; ok {
		return s
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Frame is one protocol message.
type Frame interface {
	Type() FrameType
}

// Connect opens a client connection.
type Connect struct {
	ClientID string
}

// Connected acknowledges Connect.
type Connected struct {
	BrokerID string
}

// Subscribe registers a subscription on a destination with an optional
// JMS selector.
type Subscribe struct {
	SubID       int64
	Dest        message.Destination
	Selector    string
	Durable     bool
	DurableName string
	AckMode     message.AckMode
}

// SubOK acknowledges Subscribe.
type SubOK struct {
	SubID int64
}

// Unsubscribe removes a subscription.
type Unsubscribe struct {
	SubID int64
}

// Publish carries a produced message. Seq lets the broker acknowledge the
// publish on transports that require it.
type Publish struct {
	Seq int64
	Msg *message.Message
}

// PubAck acknowledges a Publish by sequence number.
type PubAck struct {
	Seq int64
}

// Deliver pushes a message to a subscription; Tag identifies the delivery
// for acknowledgement.
type Deliver struct {
	SubID int64
	Tag   int64
	Msg   *message.Message
}

// Ack acknowledges one or more deliveries on a subscription.
type Ack struct {
	SubID int64
	Tags  []int64
}

// Close terminates a connection gracefully.
type Close struct{}

// Ping is a liveness probe; Pong is its reply.
type Ping struct{ Token int64 }

// Pong replies to Ping.
type Pong struct{ Token int64 }

// BrokerHello identifies a peer broker on an inter-broker link.
type BrokerHello struct {
	BrokerID string
}

// BrokerForward carries a published message between brokers in a broker
// network. Origin is the broker that first accepted the publish; brokers
// never re-forward a forwarded message, which keeps the (fully-connected
// or tree) broker network loop-free.
type BrokerForward struct {
	Origin string
	Msg    *message.Message
}

// BrokerSub propagates topic interest between brokers so TREE-mode
// routing can forward selectively.
type BrokerSub struct {
	BrokerID string
	Topic    string
	Add      bool
}

// BrokerLink is the broker-to-broker link handshake on stream
// transports: the first frame a dialing broker sends on a fresh TCP
// connection, answered by the acceptor's own BrokerLink. It converts an
// ordinary client connection into a peer link. Routing carries the
// sender's routing mode so mismatched networks (one side flooding, the
// other pruning) are rejected at link time instead of silently
// misrouting.
type BrokerLink struct {
	BrokerID string
	Routing  uint8
}

// deliverPool recycles Deliver frames on the broker's fan-out hot path:
// a 1000-subscriber publish needs 1000 Deliver values, and boxing each
// one into the Frame interface would otherwise allocate per delivery.
// The broker takes frames with GetDeliver; the transport that consumes a
// frame (e.g. the TCP writer, after encoding it) returns it with
// PutDeliver.
//
// Ownership rule: a pooled frame must have exactly one consumer, and
// only that consumer may release it, exactly once, when no other holder
// can still reference it. Transports that cannot guarantee this —
// anything that retransmits, fans a frame out to several holders, or
// parks frames in queues with independent lifetimes — must not use the
// pool at all: the simulator's by-reference transports opt the broker
// out via broker.Config.DisableDeliverPool and leave their frames to
// the GC, which is always safe; releasing a frame someone still
// references is not.
var deliverPool = sync.Pool{New: func() any { return new(Deliver) }}

// GetDeliver returns a zeroed Deliver frame from the pool. Both Deliver
// and *Deliver implement Frame; pooled frames travel as *Deliver.
func GetDeliver() *Deliver {
	return deliverPool.Get().(*Deliver)
}

// PutDeliver returns a Deliver frame to the pool. Only the frame's final
// consumer may call it, exactly once.
func PutDeliver(d *Deliver) {
	*d = Deliver{}
	deliverPool.Put(d)
}

// Type implementations.
func (Connect) Type() FrameType       { return FTConnect }
func (Connected) Type() FrameType     { return FTConnected }
func (Subscribe) Type() FrameType     { return FTSubscribe }
func (SubOK) Type() FrameType         { return FTSubOK }
func (Unsubscribe) Type() FrameType   { return FTUnsubscribe }
func (Publish) Type() FrameType       { return FTPublish }
func (PubAck) Type() FrameType        { return FTPubAck }
func (Deliver) Type() FrameType       { return FTMessage }
func (Ack) Type() FrameType           { return FTAck }
func (Close) Type() FrameType         { return FTClose }
func (Ping) Type() FrameType          { return FTPing }
func (Pong) Type() FrameType          { return FTPong }
func (BrokerHello) Type() FrameType   { return FTBrokerHello }
func (BrokerForward) Type() FrameType { return FTBrokerForward }
func (BrokerSub) Type() FrameType     { return FTBrokerSub }
func (BrokerLink) Type() FrameType    { return FTBrokerLink }

// Errors returned by the codec.
var (
	ErrShortBuffer  = errors.New("wire: short buffer")
	ErrUnknownFrame = errors.New("wire: unknown frame type")
	ErrBadMessage   = errors.New("wire: malformed message")
	ErrFrameTooBig  = errors.New("wire: frame exceeds maximum size")
)

// MaxFrameSize bounds a single frame on stream transports (16 MB), a
// protective limit far above any monitoring payload.
const MaxFrameSize = 16 << 20

type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) bool(b bool) {
	if b {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrShortBuffer
	}
}
func (r *reader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}
func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}
func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}
func (r *reader) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}
func (r *reader) rbytes() []byte {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	b := append([]byte(nil), r.buf[r.off:r.off+n]...)
	r.off += n
	return b
}
func (r *reader) bool() bool { return r.u8() != 0 }

func writeValue(w *writer, v message.Value) {
	w.u8(uint8(v.Kind()))
	switch v.Kind() {
	case message.KindNull:
	case message.KindBool:
		b, _ := v.AsBool()
		w.bool(b)
	case message.KindByte:
		n, _ := v.AsLong()
		w.u8(uint8(int8(n)))
	case message.KindShort:
		n, _ := v.AsLong()
		w.buf = binary.BigEndian.AppendUint16(w.buf, uint16(int16(n)))
	case message.KindInt:
		n, _ := v.AsLong()
		w.u32(uint32(int32(n)))
	case message.KindLong:
		n, _ := v.AsLong()
		w.u64(uint64(n))
	case message.KindFloat:
		f, _ := v.AsDouble()
		w.u32(math.Float32bits(float32(f)))
	case message.KindDouble:
		f, _ := v.AsDouble()
		w.u64(math.Float64bits(f))
	case message.KindString:
		w.str(v.AsString())
	case message.KindBytes:
		b, _ := v.AsBytes()
		w.bytes(b)
	}
}

func readValue(r *reader) message.Value {
	kind := message.Kind(r.u8())
	switch kind {
	case message.KindNull:
		return message.Null()
	case message.KindBool:
		return message.Bool(r.bool())
	case message.KindByte:
		return message.Byte(int8(r.u8()))
	case message.KindShort:
		if r.err != nil || r.off+2 > len(r.buf) {
			r.fail()
			return message.Null()
		}
		v := int16(binary.BigEndian.Uint16(r.buf[r.off:]))
		r.off += 2
		return message.Short(v)
	case message.KindInt:
		return message.Int(int32(r.u32()))
	case message.KindLong:
		return message.Long(int64(r.u64()))
	case message.KindFloat:
		return message.Float(math.Float32frombits(r.u32()))
	case message.KindDouble:
		return message.Double(math.Float64frombits(r.u64()))
	case message.KindString:
		return message.String(r.str())
	case message.KindBytes:
		return message.Bytes(r.rbytes())
	}
	if r.err == nil {
		r.err = fmt.Errorf("%w: bad value kind %d", ErrBadMessage, kind)
	}
	return message.Null()
}

func writeDest(w *writer, d message.Destination) {
	w.u8(uint8(d.Kind))
	w.str(d.Name)
}

func readDest(r *reader) message.Destination {
	k := message.DestKind(r.u8())
	return message.Destination{Kind: k, Name: r.str()}
}

// writeMessage appends the codec form of m to the writer. Frozen
// messages splice in their cached encoding, computed at most once per
// message, so fanning one publish out to N subscribers costs one encode
// plus N memcpys; the spliced bytes are exactly what writeMessageFields
// would produce. Unfrozen messages (client-side publishes, unit tests)
// are encoded field by field as before.
func writeMessage(w *writer, m *message.Message) {
	if m.Frozen() {
		w.buf = append(w.buf, m.CachedEncoding(encodeMessage)...)
		return
	}
	writeMessageFields(w, m)
}

// encodeMessage produces the standalone codec form of m in an exactly
// sized buffer; it backs the frozen-message encoding cache.
func encodeMessage(m *message.Message) []byte {
	w := &writer{buf: make([]byte, 0, m.EncodedSize())}
	writeMessageFields(w, m)
	return w.buf
}

func writeMessageFields(w *writer, m *message.Message) {
	w.u8(uint8(m.BodyKind()))
	w.str(m.ID)
	writeDest(w, m.Dest)
	w.u64(uint64(m.Timestamp))
	w.u64(uint64(m.Expiration))
	w.u8(uint8(m.Priority))
	w.str(m.CorrelationID)
	writeDest(w, m.ReplyTo)
	w.str(m.Type)
	w.bool(m.Redelivered)
	w.u8(uint8(m.Mode))
	names := m.PropertyNames()
	w.u32(uint32(len(names)))
	for _, name := range names {
		w.str(name)
		v, _ := m.Property(name)
		writeValue(w, v)
	}
	switch m.BodyKind() {
	case message.TextBody:
		w.str(m.Text())
	case message.BytesBody, message.ObjectBody:
		w.bytes(m.BytesPayload())
	case message.MapBody:
		mn := m.MapNames()
		w.u32(uint32(len(mn)))
		for _, name := range mn {
			w.str(name)
			v, _ := m.MapGet(name)
			writeValue(w, v)
		}
	case message.StreamBody:
		vs := m.Stream()
		w.u32(uint32(len(vs)))
		for _, v := range vs {
			writeValue(w, v)
		}
	}
}

func readMessage(r *reader) *message.Message {
	bodyKind := message.BodyKind(r.u8())
	m := message.New()
	switch bodyKind {
	case message.MapBody:
		m = message.NewMap()
	case message.EmptyBody, message.TextBody, message.BytesBody, message.StreamBody, message.ObjectBody:
	default:
		if r.err == nil {
			r.err = fmt.Errorf("%w: bad body kind %d", ErrBadMessage, bodyKind)
		}
		return m
	}
	m.ID = r.str()
	m.Dest = readDest(r)
	m.Timestamp = int64(r.u64())
	m.Expiration = int64(r.u64())
	m.Priority = int(r.u8())
	m.CorrelationID = r.str()
	m.ReplyTo = readDest(r)
	m.Type = r.str()
	m.Redelivered = r.bool()
	m.Mode = message.DeliveryMode(r.u8())
	nprops := int(r.u32())
	for i := 0; i < nprops && r.err == nil; i++ {
		name := r.str()
		m.SetProperty(name, readValue(r))
	}
	switch bodyKind {
	case message.TextBody:
		m.SetText(r.str())
	case message.BytesBody:
		m.SetBytes(r.rbytes())
	case message.ObjectBody:
		m.SetObject(r.rbytes())
	case message.MapBody:
		n := int(r.u32())
		for i := 0; i < n && r.err == nil; i++ {
			name := r.str()
			m.MapSet(name, readValue(r))
		}
	case message.StreamBody:
		n := int(r.u32())
		for i := 0; i < n && r.err == nil; i++ {
			m.StreamAppend(readValue(r))
		}
	}
	return m
}

// MarshalMessage appends the standalone codec form of m to dst — the
// same bytes Publish and Deliver frames embed. It backs the broker's
// write-ahead-log records, which persist stored messages outside any
// frame.
func MarshalMessage(dst []byte, m *message.Message) []byte {
	w := &writer{buf: dst}
	writeMessage(w, m)
	return w.buf
}

// UnmarshalMessage decodes one standalone message produced by
// MarshalMessage; the buffer must contain exactly one message.
func UnmarshalMessage(buf []byte) (*message.Message, error) {
	r := &reader{buf: buf}
	m := readMessage(r)
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(buf)-r.off)
	}
	return m, nil
}

// Marshal encodes a frame to bytes.
func Marshal(f Frame) []byte {
	return MarshalAppend(make([]byte, 0, 64), f)
}

// MarshalAppend encodes a frame onto the end of dst and returns the
// extended slice, letting transports reuse one encode buffer across
// messages instead of allocating per frame.
func MarshalAppend(dst []byte, f Frame) []byte {
	w := &writer{buf: dst}
	w.u8(uint8(f.Type()))
	switch v := f.(type) {
	case Connect:
		w.str(v.ClientID)
	case Connected:
		w.str(v.BrokerID)
	case Subscribe:
		w.u64(uint64(v.SubID))
		writeDest(w, v.Dest)
		w.str(v.Selector)
		w.bool(v.Durable)
		w.str(v.DurableName)
		w.u8(uint8(v.AckMode))
	case SubOK:
		w.u64(uint64(v.SubID))
	case Unsubscribe:
		w.u64(uint64(v.SubID))
	case Publish:
		w.u64(uint64(v.Seq))
		writeMessage(w, v.Msg)
	case PubAck:
		w.u64(uint64(v.Seq))
	case Deliver:
		writeDeliver(w, v)
	case *Deliver:
		// Pooled fan-out frames travel as pointers; same bytes as Deliver.
		writeDeliver(w, *v)
	case Ack:
		w.u64(uint64(v.SubID))
		w.u32(uint32(len(v.Tags)))
		for _, tag := range v.Tags {
			w.u64(uint64(tag))
		}
	case Close:
	case Ping:
		w.u64(uint64(v.Token))
	case Pong:
		w.u64(uint64(v.Token))
	case BrokerHello:
		w.str(v.BrokerID)
	case BrokerForward:
		w.str(v.Origin)
		writeMessage(w, v.Msg)
	case BrokerSub:
		w.str(v.BrokerID)
		w.str(v.Topic)
		w.bool(v.Add)
	case BrokerLink:
		w.str(v.BrokerID)
		w.u8(v.Routing)
	case RGMAHello:
		w.str(v.ClientID)
	case RGMAWelcome:
		w.str(v.ServerID)
	case RGMACreateTable:
		w.u64(uint64(v.Seq))
		w.str(v.SQL)
	case RGMAProducerCreate:
		w.u64(uint64(v.Seq))
		w.str(v.Table)
		w.u32(v.LatestRetentionSec)
		w.u32(v.HistoryRetentionSec)
	case RGMAInsert:
		w.u64(uint64(v.Seq))
		w.u64(uint64(v.Producer))
		w.u32(uint32(len(v.SQLs)))
		for _, q := range v.SQLs {
			w.str(q)
		}
	case RGMAConsumerCreate:
		w.u64(uint64(v.Seq))
		w.str(v.Query)
		w.u8(v.QType)
	case RGMAPop:
		w.u64(uint64(v.Seq))
		w.u64(uint64(v.Consumer))
	case RGMAClose:
		w.u64(uint64(v.Seq))
		w.bool(v.Producer)
		w.u64(uint64(v.ID))
	case RGMAOK:
		w.u64(uint64(v.Seq))
		w.u64(uint64(v.ID))
	case RGMAErr:
		w.u64(uint64(v.Seq))
		w.u8(v.Code)
		w.str(v.Msg)
	case RGMATuples:
		writeRGMATuples(w, v)
	case RGMAStatsReq:
		w.u64(uint64(v.Seq))
	case RGMAStats:
		writeRGMAStats(w, v)
	default:
		panic(fmt.Sprintf("wire: marshal of unknown frame %T", f))
	}
	return w.buf
}

// writeDeliver encodes a Deliver frame body; Deliver and *Deliver share
// it so the two marshal cases cannot drift.
func writeDeliver(w *writer, v Deliver) {
	w.u64(uint64(v.SubID))
	w.u64(uint64(v.Tag))
	writeMessage(w, v.Msg)
}

// Unmarshal decodes a frame from bytes.
func Unmarshal(buf []byte) (Frame, error) {
	r := &reader{buf: buf}
	t := FrameType(r.u8())
	var f Frame
	switch t {
	case FTConnect:
		f = Connect{ClientID: r.str()}
	case FTConnected:
		f = Connected{BrokerID: r.str()}
	case FTSubscribe:
		f = Subscribe{
			SubID:       int64(r.u64()),
			Dest:        readDest(r),
			Selector:    r.str(),
			Durable:     r.bool(),
			DurableName: r.str(),
			AckMode:     message.AckMode(r.u8()),
		}
	case FTSubOK:
		f = SubOK{SubID: int64(r.u64())}
	case FTUnsubscribe:
		f = Unsubscribe{SubID: int64(r.u64())}
	case FTPublish:
		f = Publish{Seq: int64(r.u64()), Msg: readMessage(r)}
	case FTPubAck:
		f = PubAck{Seq: int64(r.u64())}
	case FTMessage:
		f = Deliver{SubID: int64(r.u64()), Tag: int64(r.u64()), Msg: readMessage(r)}
	case FTAck:
		a := Ack{SubID: int64(r.u64())}
		n := int(r.u32())
		for i := 0; i < n && r.err == nil; i++ {
			a.Tags = append(a.Tags, int64(r.u64()))
		}
		f = a
	case FTClose:
		f = Close{}
	case FTPing:
		f = Ping{Token: int64(r.u64())}
	case FTPong:
		f = Pong{Token: int64(r.u64())}
	case FTBrokerHello:
		f = BrokerHello{BrokerID: r.str()}
	case FTBrokerForward:
		f = BrokerForward{Origin: r.str(), Msg: readMessage(r)}
	case FTBrokerSub:
		f = BrokerSub{BrokerID: r.str(), Topic: r.str(), Add: r.bool()}
	case FTBrokerLink:
		f = BrokerLink{BrokerID: r.str(), Routing: r.u8()}
	case FTRGMAHello:
		f = RGMAHello{ClientID: r.str()}
	case FTRGMAWelcome:
		f = RGMAWelcome{ServerID: r.str()}
	case FTRGMACreateTable:
		f = RGMACreateTable{Seq: int64(r.u64()), SQL: r.str()}
	case FTRGMAProducerCreate:
		f = RGMAProducerCreate{
			Seq:                 int64(r.u64()),
			Table:               r.str(),
			LatestRetentionSec:  r.u32(),
			HistoryRetentionSec: r.u32(),
		}
	case FTRGMAInsert:
		v := RGMAInsert{Seq: int64(r.u64()), Producer: int64(r.u64())}
		n := int(r.u32())
		for i := 0; i < n && r.err == nil; i++ {
			v.SQLs = append(v.SQLs, r.str())
		}
		f = v
	case FTRGMAConsumerCreate:
		f = RGMAConsumerCreate{Seq: int64(r.u64()), Query: r.str(), QType: r.u8()}
	case FTRGMAPop:
		f = RGMAPop{Seq: int64(r.u64()), Consumer: int64(r.u64())}
	case FTRGMAClose:
		f = RGMAClose{Seq: int64(r.u64()), Producer: r.bool(), ID: int64(r.u64())}
	case FTRGMAOK:
		f = RGMAOK{Seq: int64(r.u64()), ID: int64(r.u64())}
	case FTRGMAErr:
		f = RGMAErr{Seq: int64(r.u64()), Code: r.u8(), Msg: r.str()}
	case FTRGMATuples:
		f = readRGMATuples(r)
	case FTRGMAStatsReq:
		f = RGMAStatsReq{Seq: int64(r.u64())}
	case FTRGMAStats:
		f = readRGMAStats(r)
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownFrame, t)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(buf)-r.off)
	}
	return f, nil
}

// Size reports the exact number of bytes Marshal produces for f, without
// allocating. The simulator uses this to charge wire time for frames that
// are carried by reference.
func Size(f Frame) int {
	n := 1 // frame type
	switch v := f.(type) {
	case Connect:
		n += 4 + len(v.ClientID)
	case Connected:
		n += 4 + len(v.BrokerID)
	case Subscribe:
		n += 8 + 1 + 4 + len(v.Dest.Name) + 4 + len(v.Selector) + 1 + 4 + len(v.DurableName) + 1
	case SubOK, Unsubscribe, PubAck:
		n += 8
	case Publish:
		n += 8 + v.Msg.EncodedSize()
	case Deliver:
		n += 16 + v.Msg.EncodedSize()
	case *Deliver:
		n += 16 + v.Msg.EncodedSize()
	case *DeliverBatch:
		// The batch's stream form is len(Entries) MESSAGE frames; Size
		// excludes length prefixes, like every other case.
		n = len(v.Entries) * (1 + 16 + v.Msg.EncodedSize())
	case Ack:
		n += 8 + 4 + 8*len(v.Tags)
	case Close:
	case Ping, Pong:
		n += 8
	case BrokerHello:
		n += 4 + len(v.BrokerID)
	case BrokerForward:
		n += 4 + len(v.Origin) + v.Msg.EncodedSize()
	case BrokerSub:
		n += 4 + len(v.BrokerID) + 4 + len(v.Topic) + 1
	case BrokerLink:
		n += 4 + len(v.BrokerID) + 1
	case RGMAHello:
		n += 4 + len(v.ClientID)
	case RGMAWelcome:
		n += 4 + len(v.ServerID)
	case RGMACreateTable:
		n += 8 + 4 + len(v.SQL)
	case RGMAProducerCreate:
		n += 8 + 4 + len(v.Table) + 4 + 4
	case RGMAInsert:
		n += 8 + 8 + 4
		for _, q := range v.SQLs {
			n += 4 + len(q)
		}
	case RGMAConsumerCreate:
		n += 8 + 4 + len(v.Query) + 1
	case RGMAPop:
		n += 8 + 8
	case RGMAClose:
		n += 8 + 1 + 8
	case RGMAOK:
		n += 8 + 8
	case RGMAErr:
		n += 8 + 1 + 4 + len(v.Msg)
	case RGMATuples:
		n += sizeRGMATuples(v)
	case RGMAStatsReq:
		n += 8
	case RGMAStats:
		n += sizeRGMAStats()
	default:
		panic(fmt.Sprintf("wire: size of unknown frame %T", f))
	}
	return n
}

// AppendFrame appends the length-prefixed stream form of f to dst — the
// 4-byte header is reserved up front and patched after encoding, so one
// buffer (and one Write) carries any number of frames. A *DeliverBatch
// expands to one MESSAGE frame per entry (its stream form — see
// batch.go); every other frame appends exactly once. On error dst is
// returned truncated to its original length.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if b, ok := f.(*DeliverBatch); ok {
		return AppendDeliverBatch(dst, b)
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = MarshalAppend(dst, f)
	n := len(dst) - start - 4
	if n > MaxFrameSize {
		return dst[:start], ErrFrameTooBig
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(n))
	return dst, nil
}

// WriteFrame writes a length-prefixed frame to a stream with a single
// Write call (header and body share one buffer). Callers writing many
// frames should hold their own buffer and use AppendFrame directly.
func WriteFrame(w io.Writer, f Frame) error {
	buf, err := AppendFrame(make([]byte, 0, 128), f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one length-prefixed frame from a stream. It allocates
// a fresh body buffer per frame; loops reading many frames should use a
// FrameReader, which reuses one.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooBig
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return Unmarshal(body)
}

// maxRetainedReadBuf caps the body buffer a FrameReader keeps between
// frames; an occasional oversized frame must not pin its buffer for the
// connection's lifetime.
const maxRetainedReadBuf = 64 << 10

// FrameReader reads length-prefixed frames from a stream, reusing one
// body buffer across frames. Reuse is safe because Unmarshal copies
// every variable-length field (strings, byte payloads) out of the input
// buffer. Not safe for concurrent use; each connection's read loop owns
// one.
type FrameReader struct {
	r   io.Reader
	buf []byte
}

// NewFrameReader wraps r for pooled-buffer frame reading.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, buf: make([]byte, 0, 4096)}
}

// Read decodes the next frame from the stream.
func (fr *FrameReader) Read() (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxFrameSize {
		return nil, ErrFrameTooBig
	}
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n)
	}
	body := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return nil, err
	}
	f, err := Unmarshal(body)
	if cap(fr.buf) > maxRetainedReadBuf {
		fr.buf = make([]byte, 0, 4096)
	}
	return f, err
}
