package wire

import (
	"bytes"
	"net"
	"testing"

	"gridmon/internal/message"
)

func batchTestMsg() *message.Message {
	m := message.NewText("batched payload")
	m.ID = "ID:batch/1"
	m.Dest = message.Topic("t")
	m.SetProperty("id", message.Int(7))
	return m.Freeze()
}

// TestDeliverBatchStreamEquivalence: the batch's stream form must be
// byte-identical to appending the equivalent per-subscriber Deliver
// frames — the client cannot tell batched emission happened.
func TestDeliverBatchStreamEquivalence(t *testing.T) {
	m := batchTestMsg()
	b := &DeliverBatch{Msg: m, Entries: []DeliverEntry{
		{SubID: 1, Tag: 10}, {SubID: 2, Tag: 20}, {SubID: 9, Tag: 1},
	}}

	got, err := AppendFrame(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, e := range b.Entries {
		want, err = AppendFrame(want, &Deliver{SubID: e.SubID, Tag: e.Tag, Msg: m})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("batch stream form differs from per-frame emission:\n%x\n%x", got, want)
	}

	// The vectored form flattens to the same bytes.
	vec, _, err := AppendDeliverBatchVec(nil, nil, b)
	if err != nil {
		t.Fatal(err)
	}
	var flat []byte
	for _, s := range vec {
		flat = append(flat, s...)
	}
	if !bytes.Equal(flat, want) {
		t.Fatalf("vectored form differs from per-frame emission")
	}
	if len(vec) != 2*len(b.Entries) {
		t.Fatalf("vec has %d slices, want %d (header+payload per entry)", len(vec), 2*len(b.Entries))
	}
	// Payload slices share one backing array: zero copies of the
	// message encoding.
	if &vec[1][0] != &vec[3][0] {
		t.Fatal("payload slices are copies, want shared cached encoding")
	}
}

// TestDeliverBatchDecodes: a FrameReader at the far end of a batched
// write sees ordinary Deliver frames, in entry order.
func TestDeliverBatchDecodes(t *testing.T) {
	m := batchTestMsg()
	b := &DeliverBatch{Msg: m, Entries: []DeliverEntry{{SubID: 3, Tag: 1}, {SubID: 4, Tag: 2}}}
	buf, err := AppendFrame(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(bytes.NewReader(buf))
	for i, e := range b.Entries {
		f, err := fr.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		d, ok := f.(Deliver)
		if !ok {
			t.Fatalf("frame %d decoded as %T", i, f)
		}
		if d.SubID != e.SubID || d.Tag != e.Tag || d.Msg.ID != m.ID {
			t.Fatalf("frame %d = %+v, want entry %+v", i, d, e)
		}
	}
}

// TestDeliverBatchSize: Size parity with the per-frame form, so the
// simulator's wire-time charge is mode-independent.
func TestDeliverBatchSize(t *testing.T) {
	m := batchTestMsg()
	b := &DeliverBatch{Msg: m, Entries: []DeliverEntry{{1, 1}, {2, 2}, {3, 3}}}
	want := 3 * Size(&Deliver{SubID: 1, Tag: 1, Msg: m})
	if got := Size(b); got != want {
		t.Fatalf("Size(batch) = %d, want %d", got, want)
	}
	if got := FrameCount(b); got != 3 {
		t.Fatalf("FrameCount(batch) = %d, want 3", got)
	}
	if got := FrameCount(PubAck{}); got != 1 {
		t.Fatalf("FrameCount(PubAck) = %d, want 1", got)
	}
}

// TestDeliverBatchVecWritev: the vector form drives net.Buffers without
// the payload being invalidated by header growth.
func TestDeliverBatchVecWritev(t *testing.T) {
	m := batchTestMsg()
	entries := make([]DeliverEntry, 64)
	for i := range entries {
		entries[i] = DeliverEntry{SubID: int64(i + 1), Tag: int64(i + 100)}
	}
	b := &DeliverBatch{Msg: m, Entries: entries}
	vec, _, err := AppendDeliverBatchVec(nil, make([]byte, 0, 8), b)
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	nb := net.Buffers(vec)
	if _, err := nb.WriteTo(&sink); err != nil {
		t.Fatal(err)
	}
	want, _ := AppendDeliverBatch(nil, b)
	if !bytes.Equal(sink.Bytes(), want) {
		t.Fatal("writev bytes differ from flat encoding")
	}
}

// TestDeliverBatchPoolExactlyOnce: the counting pool balances on the
// happy path and panics on a double release.
func TestDeliverBatchPoolExactlyOnce(t *testing.T) {
	g0, p0 := DeliverBatchPoolCounters()
	b := GetDeliverBatch()
	b.Msg = batchTestMsg()
	b.Entries = append(b.Entries, DeliverEntry{1, 1})
	PutDeliverBatch(b)
	g1, p1 := DeliverBatchPoolCounters()
	if g1-g0 != 1 || p1-p0 != 1 {
		t.Fatalf("counters moved by get=%d put=%d, want 1/1", g1-g0, p1-p0)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("double PutDeliverBatch did not panic")
		}
	}()
	PutDeliverBatch(b)
}
