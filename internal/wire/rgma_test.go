package wire

import (
	"bytes"
	"testing"
)

// TestRGMATuplesEncSpliceByteIdentical pins the encode-once contract:
// marshalling a pre-encoded Enc form (AppendRGMATuple bytes spliced
// verbatim) produces the same bytes as marshalling the Tuples form, so
// the push fan-out path can encode each insert once and share it across
// every subscribed connection.
func TestRGMATuplesEncSpliceByteIdentical(t *testing.T) {
	tuples := []RGMATuple{
		{Row: []string{"1", "2", "480.5", "'site-0001'"}, InsertedAt: 99},
		{Row: []string{"7", "8", "239.9", "'site-0002'"}, InsertedAt: 100},
	}
	plain := RGMATuples{Seq: 0, Consumer: 42, Tuples: tuples}
	enc := make([][]byte, len(tuples))
	for i, tp := range tuples {
		enc[i] = AppendRGMATuple(nil, tp)
	}
	spliced := RGMATuples{Seq: 0, Consumer: 42, Enc: enc}

	a, b := Marshal(plain), Marshal(spliced)
	if !bytes.Equal(a, b) {
		t.Fatalf("Enc splice differs from Tuples encode:\n plain:   %x\n spliced: %x", a, b)
	}
	if Size(plain) != len(a) || Size(spliced) != len(b) {
		t.Fatalf("Size mismatch: plain %d/%d, spliced %d/%d", Size(plain), len(a), Size(spliced), len(b))
	}

	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := got.(RGMATuples)
	if !ok || !rgmaTuplesEqual(out.Tuples, tuples) || out.Enc != nil {
		t.Fatalf("round trip of spliced frame = %#v", got)
	}
}

// TestRGMATuplesEmpty covers the zero-tuple forms both ways (an empty
// pop reply is legal).
func TestRGMATuplesEmpty(t *testing.T) {
	for _, f := range []RGMATuples{
		{Seq: 9, Consumer: 1},
		{Seq: 9, Consumer: 1, Enc: [][]byte{}},
	} {
		buf := Marshal(f)
		if Size(f) != len(buf) {
			t.Fatalf("Size = %d, Marshal len = %d", Size(f), len(buf))
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatal(err)
		}
		out := got.(RGMATuples)
		if out.Seq != 9 || out.Consumer != 1 || len(out.Tuples) != 0 {
			t.Fatalf("round trip = %#v", out)
		}
	}
}

// TestRGMAInsertTruncated exercises the codec's short-buffer latching on
// the batched insert frame.
func TestRGMAInsertTruncated(t *testing.T) {
	buf := Marshal(RGMAInsert{Seq: 1, Producer: 2, SQLs: []string{"INSERT INTO g (genid) VALUES (1)"}})
	for cut := 1; cut < len(buf); cut++ {
		if _, err := Unmarshal(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
