// Egress batching: DeliverBatch carries one frozen message's deliveries
// to many subscriptions of a single connection as one transport-internal
// envelope. On the stream it is encoded as len(Entries) ordinary
// length-prefixed MESSAGE frames, so the client-visible byte stream is
// exactly what per-frame emission produces — DeliverBatch never appears
// as a decoded frame type and clients need no changes. What batching
// buys is server-side: one channel handoff and one buffered flush (or
// one writev) per connection per fan-out instead of one per subscriber.

package wire

import (
	"encoding/binary"
	"slices"
	"sync"
	"sync/atomic"

	"gridmon/internal/message"
)

// DeliverEntry is one delivery within a DeliverBatch: the subscription
// and its acknowledgement tag. The message is shared by the batch.
type DeliverEntry struct {
	SubID int64
	Tag   int64
}

// DeliverBatch is a run of deliveries of one frozen message to many
// subscriptions on one connection. Msg must be frozen (the broker
// freezes every message it accepts) so the cached encoding can be
// spliced per entry.
//
// DeliverBatch is transport-internal: Marshal/Unmarshal never see it.
// Stream writers hand it to AppendFrame (or AppendDeliverBatch /
// AppendDeliverBatchVec directly), which emit the per-entry MESSAGE
// frames.
type DeliverBatch struct {
	Msg     *message.Message
	Entries []DeliverEntry

	// released guards against double-release under the pool's
	// exactly-once ownership rule; see PutDeliverBatch.
	released bool
}

// Type returns FTMessage: on the wire a batch IS a run of MESSAGE
// frames.
func (*DeliverBatch) Type() FrameType { return FTMessage }

// deliverBatchPool recycles DeliverBatch envelopes on the fan-out hot
// path, under the same ownership rule as deliverPool: exactly one
// consumer, releasing exactly once. The gets/puts counters exist so
// tests can pin that rule on partial-failure paths (a connection
// dropping mid-run) — at quiesce, every Get must have found its Put.
var (
	deliverBatchPool = sync.Pool{New: func() any { return new(DeliverBatch) }}
	batchGets        atomic.Uint64
	batchPuts        atomic.Uint64
)

// GetDeliverBatch returns an empty DeliverBatch from the pool.
func GetDeliverBatch() *DeliverBatch {
	b := deliverBatchPool.Get().(*DeliverBatch)
	b.released = false
	batchGets.Add(1)
	return b
}

// PutDeliverBatch returns a batch to the pool. Only the batch's final
// consumer may call it, exactly once; a second release panics, because
// a double-put would hand the same envelope to two owners.
func PutDeliverBatch(b *DeliverBatch) {
	if b.released {
		panic("wire: DeliverBatch released twice")
	}
	b.released = true
	b.Msg = nil
	b.Entries = b.Entries[:0]
	batchPuts.Add(1)
	deliverBatchPool.Put(b)
}

// DeliverBatchPoolCounters reports lifetime Get/Put counts of the batch
// pool (process-wide). A quiesced system with balanced counters has
// released every batch exactly once.
func DeliverBatchPoolCounters() (gets, puts uint64) {
	return batchGets.Load(), batchPuts.Load()
}

// deliverHeaderSize is the fixed per-entry overhead of a batched
// MESSAGE frame on the stream: 4-byte length prefix, 1 frame-type byte,
// 8-byte SubID, 8-byte Tag. The message encoding follows.
const deliverHeaderSize = 4 + 1 + 8 + 8

// batchEncoding returns the shared message bytes every entry splices.
func (b *DeliverBatch) batchEncoding() []byte {
	if b.Msg.Frozen() {
		return b.Msg.CachedEncoding(encodeMessage)
	}
	// Unfrozen batches only arise in tests; encode once and splice.
	return encodeMessage(b.Msg)
}

// AppendDeliverBatch appends the batch's stream form — one ordinary
// length-prefixed MESSAGE frame per entry, all splicing the same cached
// message encoding — to dst. On error dst is returned truncated to its
// original length.
func AppendDeliverBatch(dst []byte, b *DeliverBatch) ([]byte, error) {
	start := len(dst)
	enc := b.batchEncoding()
	n := 1 + 8 + 8 + len(enc)
	if n > MaxFrameSize {
		return dst[:start], ErrFrameTooBig
	}
	dst = slices.Grow(dst, len(b.Entries)*(4+n))
	for _, e := range b.Entries {
		dst = binary.BigEndian.AppendUint32(dst, uint32(n))
		dst = append(dst, byte(FTMessage))
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.SubID))
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Tag))
		dst = append(dst, enc...)
	}
	return dst, nil
}

// AppendDeliverBatchVec appends the batch's stream form to vec as a
// header/payload vector sharing ONE payload slice: per entry a
// deliverHeaderSize-byte header followed by the cached message encoding
// by reference. vec is suitable for net.Buffers (writev), which is how
// a large-payload run reaches the socket in one syscall without copying
// the payload per subscriber. hdr is the caller's reusable header
// buffer; the returned slice must be kept alive (and unmodified) until
// the vector has been written. The headers are appended to hdr in one
// pre-grown allocation so earlier header slices stay valid.
func AppendDeliverBatchVec(vec [][]byte, hdr []byte, b *DeliverBatch) ([][]byte, []byte, error) {
	enc := b.batchEncoding()
	n := 1 + 8 + 8 + len(enc)
	if n > MaxFrameSize {
		return vec, hdr, ErrFrameTooBig
	}
	hdr = slices.Grow(hdr, len(b.Entries)*deliverHeaderSize)
	for _, e := range b.Entries {
		h := len(hdr)
		hdr = binary.BigEndian.AppendUint32(hdr, uint32(n))
		hdr = append(hdr, byte(FTMessage))
		hdr = binary.BigEndian.AppendUint64(hdr, uint64(e.SubID))
		hdr = binary.BigEndian.AppendUint64(hdr, uint64(e.Tag))
		vec = append(vec, hdr[h:len(hdr):len(hdr)], enc)
	}
	return vec, hdr, nil
}

// FrameCount reports how many client-visible frames f expands to on the
// stream: len(Entries) for a DeliverBatch, 1 for everything else.
// Egress meters use it so frames-per-flush counts what the client
// actually receives.
func FrameCount(f Frame) int {
	if b, ok := f.(*DeliverBatch); ok {
		return len(b.Entries)
	}
	return 1
}
