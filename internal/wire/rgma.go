package wire

// R-GMA binary-transport frames (internal/rgmabin). The request frames
// carry a client-assigned Seq echoed by the matching RGMAOK / RGMAErr /
// RGMATuples reply; Seq 0 is reserved for unsolicited server pushes, so
// a client multiplexes any number of outstanding requests plus
// continuous-query streams over one connection.

// RGMAHello opens an R-GMA binary connection: the first frame a client
// sends, answered by RGMAWelcome.
type RGMAHello struct {
	ClientID string
}

// RGMAWelcome acknowledges RGMAHello.
type RGMAWelcome struct {
	ServerID string
}

// RGMACreateTable declares a table from a CREATE TABLE statement.
type RGMACreateTable struct {
	Seq int64
	SQL string
}

// RGMAProducerCreate allocates a producer resource with memory storage.
// Retention is carried in whole seconds, as the HTTP binding carries it;
// zero selects the server defaults.
type RGMAProducerCreate struct {
	Seq                 int64
	Table               string
	LatestRetentionSec  uint32
	HistoryRetentionSec uint32
}

// RGMAInsert publishes a batch of SQL INSERT statements for one
// producer in a single frame — the binary transport's batching unit.
// The server applies them in order and acknowledges the whole batch
// with one RGMAOK (ID = statements applied) or fails it with the first
// error (RGMAErr; earlier statements in the batch remain applied).
type RGMAInsert struct {
	Seq      int64
	Producer int64
	SQLs     []string
}

// RGMAConsumerCreate installs a consumer query. QType is the
// rgma.QueryType value; a continuous consumer created over the binary
// transport is push-fed (tuples arrive as unsolicited RGMATuples).
type RGMAConsumerCreate struct {
	Seq   int64
	Query string
	QType uint8
}

// RGMAPop requests a latest/history read (request/response on every
// transport).
type RGMAPop struct {
	Seq      int64
	Consumer int64
}

// RGMAClose releases a producer (Producer true) or consumer resource.
type RGMAClose struct {
	Seq      int64
	Producer bool
	ID       int64
}

// RGMAOK acknowledges a request. ID carries the created resource id
// (creates), the applied statement count (inserts), or zero.
type RGMAOK struct {
	Seq int64
	ID  int64
}

// RGMAErr reports a request failure; Code is an rgmabin error code.
type RGMAErr struct {
	Seq  int64
	Code uint8
	Msg  string
}

// RGMATuple is one delivered tuple; cells are SQL literal forms, the
// same rendering the HTTP binding's JSON carries.
type RGMATuple struct {
	Row        []string
	InsertedAt int64
}

// RGMATuples delivers tuples to a consumer: with Seq non-zero it is the
// reply to an RGMAPop; with Seq zero it is an unsolicited server push
// for a continuous query.
//
// Enc, when non-nil, takes precedence over Tuples during Marshal: each
// element is one pre-encoded tuple body (AppendRGMATuple bytes) spliced
// into the frame verbatim — the encode-once fan-out path, where one
// insert's encoding is shared by every subscribed connection. Unmarshal
// always fills Tuples and leaves Enc nil; the two forms produce
// identical bytes.
type RGMATuples struct {
	Seq      int64
	Consumer int64
	Tuples   []RGMATuple
	Enc      [][]byte
}

// RGMAStatsReq requests a server stats snapshot over the binary
// transport, so monitoring no longer needs the HTTP port.
type RGMAStatsReq struct {
	Seq int64
}

// RGMAStats is the stats reply: the core's counters plus the
// write-ahead-log counters (all zero, with WALEnabled false, when the
// server runs without -data-dir).
type RGMAStats struct {
	Seq            int64
	Producers      uint32
	Consumers      uint32
	Inserts        uint64
	Pops           uint64
	TuplesStreamed uint64
	TuplesPopped   uint64
	TuplesDropped  uint64

	WALEnabled             bool
	WALRecordsAppended     uint64
	WALBytesLogged         uint64
	WALFsyncs              uint64
	WALSnapshots           uint64
	WALReplayRecords       uint64
	WALReplayTruncatedTail uint64
	WALCleanStart          bool
}

// Type implementations.
func (RGMAHello) Type() FrameType          { return FTRGMAHello }
func (RGMAWelcome) Type() FrameType        { return FTRGMAWelcome }
func (RGMACreateTable) Type() FrameType    { return FTRGMACreateTable }
func (RGMAProducerCreate) Type() FrameType { return FTRGMAProducerCreate }
func (RGMAInsert) Type() FrameType         { return FTRGMAInsert }
func (RGMAConsumerCreate) Type() FrameType { return FTRGMAConsumerCreate }
func (RGMAPop) Type() FrameType            { return FTRGMAPop }
func (RGMAClose) Type() FrameType          { return FTRGMAClose }
func (RGMAOK) Type() FrameType             { return FTRGMAOK }
func (RGMAErr) Type() FrameType            { return FTRGMAErr }
func (RGMATuples) Type() FrameType         { return FTRGMATuples }
func (RGMAStatsReq) Type() FrameType       { return FTRGMAStatsReq }
func (RGMAStats) Type() FrameType          { return FTRGMAStats }

// AppendRGMATuple appends one tuple's frame body (cell count, cells,
// inserted-at) to dst. It is exported so the push fan-out path can
// pre-encode a tuple once and carry it via RGMATuples.Enc.
func AppendRGMATuple(dst []byte, t RGMATuple) []byte {
	w := &writer{buf: dst}
	w.u32(uint32(len(t.Row)))
	for _, c := range t.Row {
		w.str(c)
	}
	w.u64(uint64(t.InsertedAt))
	return w.buf
}

func sizeRGMATuple(t RGMATuple) int {
	n := 4 + 8
	for _, c := range t.Row {
		n += 4 + len(c)
	}
	return n
}

func writeRGMATuples(w *writer, v RGMATuples) {
	w.u64(uint64(v.Seq))
	w.u64(uint64(v.Consumer))
	if v.Enc != nil {
		w.u32(uint32(len(v.Enc)))
		for _, e := range v.Enc {
			w.buf = append(w.buf, e...)
		}
		return
	}
	w.u32(uint32(len(v.Tuples)))
	for _, t := range v.Tuples {
		w.buf = AppendRGMATuple(w.buf, t)
	}
}

func readRGMATuple(r *reader) RGMATuple {
	var t RGMATuple
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		t.Row = append(t.Row, r.str())
	}
	t.InsertedAt = int64(r.u64())
	return t
}

func readRGMATuples(r *reader) RGMATuples {
	v := RGMATuples{Seq: int64(r.u64()), Consumer: int64(r.u64())}
	n := int(r.u32())
	for i := 0; i < n && r.err == nil; i++ {
		v.Tuples = append(v.Tuples, readRGMATuple(r))
	}
	return v
}

func writeRGMAStats(w *writer, v RGMAStats) {
	w.u64(uint64(v.Seq))
	w.u32(v.Producers)
	w.u32(v.Consumers)
	w.u64(v.Inserts)
	w.u64(v.Pops)
	w.u64(v.TuplesStreamed)
	w.u64(v.TuplesPopped)
	w.u64(v.TuplesDropped)
	w.bool(v.WALEnabled)
	w.u64(v.WALRecordsAppended)
	w.u64(v.WALBytesLogged)
	w.u64(v.WALFsyncs)
	w.u64(v.WALSnapshots)
	w.u64(v.WALReplayRecords)
	w.u64(v.WALReplayTruncatedTail)
	w.bool(v.WALCleanStart)
}

func readRGMAStats(r *reader) RGMAStats {
	return RGMAStats{
		Seq:                    int64(r.u64()),
		Producers:              r.u32(),
		Consumers:              r.u32(),
		Inserts:                r.u64(),
		Pops:                   r.u64(),
		TuplesStreamed:         r.u64(),
		TuplesPopped:           r.u64(),
		TuplesDropped:          r.u64(),
		WALEnabled:             r.bool(),
		WALRecordsAppended:     r.u64(),
		WALBytesLogged:         r.u64(),
		WALFsyncs:              r.u64(),
		WALSnapshots:           r.u64(),
		WALReplayRecords:       r.u64(),
		WALReplayTruncatedTail: r.u64(),
		WALCleanStart:          r.bool(),
	}
}

// sizeRGMAStats is constant: 8 (seq) + 2×4 + 12×8... spelled out so a
// field added to the frame fails loudly here.
func sizeRGMAStats() int {
	return 8 + 4 + 4 + 5*8 + 1 + 6*8 + 1
}

func sizeRGMATuples(v RGMATuples) int {
	n := 8 + 8 + 4
	if v.Enc != nil {
		for _, e := range v.Enc {
			n += len(e)
		}
		return n
	}
	for _, t := range v.Tuples {
		n += sizeRGMATuple(t)
	}
	return n
}
