// Package simproc models the compute resources of a testbed node: a serial
// CPU with a run queue, a bounded heap, and a vmstat-style sampler.
//
// The paper's Hydra nodes are single-socket Pentium III machines running a
// JVM: middleware work executes on one effective core, each client
// connection costs a thread stack, and the JVM heap is capped at 1 GB
// ("-Xms1024m -Xmx1024m"). Those three properties produce the paper's
// observable behaviour — RTT that grows smoothly with load (CPU queueing),
// CPU idle that falls with connection count, and hard out-of-memory cliffs
// near 4000 connections (NaradaBrokering) and 800 connections (R-GMA). This
// package reproduces exactly those mechanisms and nothing more.
package simproc

import (
	"errors"
	"fmt"

	"gridmon/internal/sim"
)

// ErrOutOfMemory is returned by Heap.Alloc when an allocation would exceed
// the heap limit, mirroring the JVM OutOfMemoryError the paper hit when a
// broker "ran out of memory to create new threads".
var ErrOutOfMemory = errors.New("simproc: out of memory")

// CPU is a serial processor with FIFO queueing. Submitted work items run
// one at a time; each occupies the processor for its service cost. Speed
// scales service costs: a Speed of 0.5 makes every job take twice as long,
// which is how slower testbed nodes are modelled.
type CPU struct {
	k     *sim.Kernel
	name  string
	speed float64

	busyUntil   sim.Time
	segStart    sim.Time // start of the current contiguous busy segment
	accumBefore sim.Time // busy time from segments that ended before segStart
	jobs        uint64
}

// NewCPU returns a CPU attached to kernel k. speed must be positive; 1.0
// means service costs are taken at face value.
func NewCPU(k *sim.Kernel, name string, speed float64) *CPU {
	if speed <= 0 {
		panic("simproc: non-positive CPU speed")
	}
	return &CPU{k: k, name: name, speed: speed}
}

// Name returns the node name the CPU belongs to.
func (c *CPU) Name() string { return c.name }

// Jobs reports how many work items have been submitted.
func (c *CPU) Jobs() uint64 { return c.jobs }

// BusyTime reports the total virtual time the CPU has spent executing work
// up to now. Work that is queued or still executing contributes only the
// portion that lies in the past, so window-based utilisation sampling is
// exact.
func (c *CPU) BusyTime() sim.Time {
	now := c.k.Now()
	end := c.busyUntil
	if now < end {
		end = now
	}
	cur := sim.Time(0)
	if end > c.segStart {
		cur = end - c.segStart
	}
	return c.accumBefore + cur
}

// scaled converts a nominal cost into this CPU's service time.
func (c *CPU) scaled(cost sim.Time) sim.Time {
	return sim.Time(float64(cost) / c.speed)
}

// Submit enqueues a work item with the given nominal service cost and runs
// fn when the item completes (after any queueing delay plus the scaled
// cost). It returns the completion time. fn may be nil when only the
// resource usage matters.
func (c *CPU) Submit(cost sim.Time, fn func()) sim.Time {
	if cost < 0 {
		panic("simproc: negative CPU cost")
	}
	now := c.k.Now()
	svc := c.scaled(cost)
	if c.busyUntil <= now {
		// CPU is idle: close the previous busy segment and start a new one.
		c.accumBefore += c.busyUntil - c.segStart
		c.segStart = now
		c.busyUntil = now + svc
	} else {
		c.busyUntil += svc
	}
	done := c.busyUntil
	c.jobs++
	if fn == nil {
		fn = func() {}
	}
	c.k.At(done, fn)
	return done
}

// QueueDelay reports how long a job submitted now would wait before it
// begins executing.
func (c *CPU) QueueDelay() sim.Time {
	now := c.k.Now()
	if c.busyUntil <= now {
		return 0
	}
	return c.busyUntil - now
}

// Utilization reports the busy fraction over [since, now]. It returns 0
// for an empty window.
func (c *CPU) Utilization(since sim.Time) float64 {
	// This uses total accumulated busy time, so callers that want a true
	// window must sample BusyTime at window boundaries; Sampler does that.
	window := c.k.Now() - since
	if window <= 0 {
		return 0
	}
	u := float64(c.BusyTime()) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}

// Heap models a bounded memory allocator with peak tracking. Sizes are in
// bytes. The zero value is unusable; construct with NewHeap.
type Heap struct {
	name  string
	limit int64
	used  int64
	base  int64 // resident baseline (middleware itself), reported in Used
	peak  int64
	fails uint64
}

// NewHeap returns a heap with the given byte limit (0 means unlimited) and
// a resident baseline that is counted against the limit immediately.
func NewHeap(name string, limit, baseline int64) *Heap {
	h := &Heap{name: name, limit: limit, base: baseline, used: baseline, peak: baseline}
	return h
}

// Alloc reserves n bytes. It fails with ErrOutOfMemory when the limit would
// be exceeded, leaving usage unchanged.
func (h *Heap) Alloc(n int64) error {
	if n < 0 {
		panic("simproc: negative allocation")
	}
	if h.limit > 0 && h.used+n > h.limit {
		h.fails++
		return fmt.Errorf("%w: %s: %d + %d > limit %d", ErrOutOfMemory, h.name, h.used, n, h.limit)
	}
	h.used += n
	if h.used > h.peak {
		h.peak = h.used
	}
	return nil
}

// Free releases n bytes. Freeing below the resident baseline panics: it
// indicates unbalanced accounting in a model.
func (h *Heap) Free(n int64) {
	if n < 0 {
		panic("simproc: negative free")
	}
	h.used -= n
	if h.used < h.base {
		panic(fmt.Sprintf("simproc: heap %s freed below baseline (%d < %d)", h.name, h.used, h.base))
	}
}

// Used reports current usage including the baseline.
func (h *Heap) Used() int64 { return h.used }

// Peak reports the highest usage observed.
func (h *Heap) Peak() int64 { return h.peak }

// Limit reports the configured limit (0 = unlimited).
func (h *Heap) Limit() int64 { return h.limit }

// Failures reports how many allocations were refused.
func (h *Heap) Failures() uint64 { return h.fails }

// Consumption reports peak minus baseline — the paper's "memory
// consumption ... difference between peak and bottom values".
func (h *Heap) Consumption() int64 { return h.peak - h.base }

// Sample is one vmstat-style observation.
type Sample struct {
	At       sim.Time
	CPUIdle  float64 // idle fraction of the sampling window, 0..1
	MemUsed  int64   // heap bytes in use at the sample instant
	MemPeak  int64
	CPUJobs  uint64
	QueueLag sim.Time
}

// Sampler periodically records CPU and heap state, like the vmstat runs in
// the paper's experiments.
type Sampler struct {
	cpu     *CPU
	heap    *Heap
	ticker  *sim.Ticker
	samples []Sample

	lastBusy sim.Time
	lastAt   sim.Time
}

// NewSampler starts sampling cpu and heap every period, beginning one
// period into the run. Stop the returned sampler to cease collection.
func NewSampler(k *sim.Kernel, cpu *CPU, heap *Heap, period sim.Time) *Sampler {
	s := &Sampler{cpu: cpu, heap: heap, lastAt: k.Now(), lastBusy: cpu.BusyTime()}
	s.ticker = k.Every(k.Now()+period, period, func() {
		now := k.Now()
		window := now - s.lastAt
		idle := 1.0
		if window > 0 {
			busy := float64(cpu.BusyTime()-s.lastBusy) / float64(window)
			if busy > 1 {
				busy = 1
			}
			idle = 1 - busy
		}
		s.samples = append(s.samples, Sample{
			At:       now,
			CPUIdle:  idle,
			MemUsed:  heap.Used(),
			MemPeak:  heap.Peak(),
			CPUJobs:  cpu.Jobs(),
			QueueLag: cpu.QueueDelay(),
		})
		s.lastAt = now
		s.lastBusy = cpu.BusyTime()
	})
	return s
}

// Stop ends collection.
func (s *Sampler) Stop() { s.ticker.Stop() }

// Samples returns all collected observations.
func (s *Sampler) Samples() []Sample { return s.samples }

// MeanIdle reports the average CPU idle fraction across all samples
// (1.0 when nothing was sampled), matching the paper's "CPU idle time was
// calculated as the average of CPU idle time during the tests".
func (s *Sampler) MeanIdle() float64 {
	if len(s.samples) == 0 {
		return 1
	}
	var sum float64
	for _, sm := range s.samples {
		sum += sm.CPUIdle
	}
	return sum / float64(len(s.samples))
}
