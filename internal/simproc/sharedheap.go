package simproc

import (
	"fmt"
	"sync/atomic"
)

// SharedHeap is the concurrency-safe counterpart of Heap: a bounded
// allocator whose Alloc/Free are lock-free (CAS on the usage counter),
// for bindings that account memory from many goroutines at once — the
// sharded TCP broker charges delivery memory from every shard and
// connection admission from the accept loop concurrently. Heap itself
// stays single-threaded for the deterministic simulator, where atomic
// ordering would only obscure the model.
type SharedHeap struct {
	name  string
	limit int64
	base  int64 // resident baseline (middleware itself), reported in Used
	used  atomic.Int64
	peak  atomic.Int64
	fails atomic.Uint64
}

// NewSharedHeap returns a shared heap with the given byte limit (0 means
// unlimited) and a resident baseline counted against the limit
// immediately.
func NewSharedHeap(name string, limit, baseline int64) *SharedHeap {
	h := &SharedHeap{name: name, limit: limit, base: baseline}
	h.used.Store(baseline)
	h.peak.Store(baseline)
	return h
}

// Alloc reserves n bytes. It fails with ErrOutOfMemory when the limit
// would be exceeded, leaving usage unchanged. The limit check and the
// reservation are one atomic step, so concurrent allocators can never
// jointly overshoot the limit.
func (h *SharedHeap) Alloc(n int64) error {
	if n < 0 {
		panic("simproc: negative allocation")
	}
	if h.limit <= 0 {
		// Unlimited heap: no limit check to make atomic, so a plain
		// add avoids the CAS retry loop on the delivery hot path.
		h.raisePeak(h.used.Add(n))
		return nil
	}
	for {
		cur := h.used.Load()
		if h.limit > 0 && cur+n > h.limit {
			h.fails.Add(1)
			return fmt.Errorf("%w: %s: %d + %d > limit %d", ErrOutOfMemory, h.name, cur, n, h.limit)
		}
		if h.used.CompareAndSwap(cur, cur+n) {
			h.raisePeak(cur + n)
			return nil
		}
	}
}

func (h *SharedHeap) raisePeak(used int64) {
	for {
		p := h.peak.Load()
		if used <= p || h.peak.CompareAndSwap(p, used) {
			return
		}
	}
}

// Free releases n bytes. Freeing below the resident baseline panics: it
// indicates unbalanced accounting in a binding.
func (h *SharedHeap) Free(n int64) {
	if n < 0 {
		panic("simproc: negative free")
	}
	if after := h.used.Add(-n); after < h.base {
		panic(fmt.Sprintf("simproc: heap %s freed below baseline (%d < %d)", h.name, after, h.base))
	}
}

// Used reports current usage including the baseline.
func (h *SharedHeap) Used() int64 { return h.used.Load() }

// Peak reports the highest usage observed.
func (h *SharedHeap) Peak() int64 { return h.peak.Load() }

// Limit reports the configured limit (0 = unlimited).
func (h *SharedHeap) Limit() int64 { return h.limit }

// Failures reports how many allocations were refused.
func (h *SharedHeap) Failures() uint64 { return h.fails.Load() }

// Consumption reports peak minus baseline — the paper's "memory
// consumption ... difference between peak and bottom values".
func (h *SharedHeap) Consumption() int64 { return h.peak.Load() - h.base }
