package simproc

import (
	"errors"
	"testing"
	"testing/quick"

	"gridmon/internal/sim"
)

func TestCPUSerialQueueing(t *testing.T) {
	k := sim.New(1)
	c := NewCPU(k, "hydra1", 1.0)
	var done []sim.Time
	// Three jobs submitted at t=0, each costing 10ms, must finish at
	// 10, 20, 30ms: the CPU is serial.
	for i := 0; i < 3; i++ {
		c.Submit(10*sim.Millisecond, func() { done = append(done, k.Now()) })
	}
	k.Run()
	want := []sim.Time{10 * sim.Millisecond, 20 * sim.Millisecond, 30 * sim.Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("job %d done at %v, want %v", i, done[i], want[i])
		}
	}
	if c.Jobs() != 3 {
		t.Fatalf("jobs = %d", c.Jobs())
	}
	if c.BusyTime() != 30*sim.Millisecond {
		t.Fatalf("busy = %v", c.BusyTime())
	}
}

func TestCPUIdleGap(t *testing.T) {
	k := sim.New(1)
	c := NewCPU(k, "n", 1.0)
	c.Submit(5*sim.Millisecond, nil)
	k.At(100*sim.Millisecond, func() {
		c.Submit(5*sim.Millisecond, nil)
	})
	k.Run()
	if k.Now() != 105*sim.Millisecond {
		t.Fatalf("now = %v", k.Now())
	}
	if c.BusyTime() != 10*sim.Millisecond {
		t.Fatalf("busy = %v, want 10ms", c.BusyTime())
	}
}

func TestCPUSpeedScaling(t *testing.T) {
	k := sim.New(1)
	slow := NewCPU(k, "slow", 0.5)
	var at sim.Time
	slow.Submit(10*sim.Millisecond, func() { at = k.Now() })
	k.Run()
	if at != 20*sim.Millisecond {
		t.Fatalf("slow CPU finished at %v, want 20ms", at)
	}
}

func TestCPUQueueDelay(t *testing.T) {
	k := sim.New(1)
	c := NewCPU(k, "n", 1.0)
	if c.QueueDelay() != 0 {
		t.Fatal("idle CPU has queue delay")
	}
	c.Submit(30*sim.Millisecond, nil)
	c.Submit(30*sim.Millisecond, nil)
	if c.QueueDelay() != 60*sim.Millisecond {
		t.Fatalf("queue delay = %v, want 60ms", c.QueueDelay())
	}
}

func TestCPUBadInputsPanic(t *testing.T) {
	k := sim.New(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("non-positive speed did not panic")
			}
		}()
		NewCPU(k, "x", 0)
	}()
	c := NewCPU(k, "x", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative cost did not panic")
		}
	}()
	c.Submit(-1, nil)
}

func TestHeapAllocFreeOOM(t *testing.T) {
	h := NewHeap("jvm", 1000, 100)
	if h.Used() != 100 || h.Peak() != 100 {
		t.Fatalf("baseline not counted: used=%d peak=%d", h.Used(), h.Peak())
	}
	if err := h.Alloc(800); err != nil {
		t.Fatalf("alloc: %v", err)
	}
	if err := h.Alloc(200); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
	if h.Failures() != 1 {
		t.Fatalf("failures = %d", h.Failures())
	}
	if h.Used() != 900 {
		t.Fatalf("failed alloc changed usage: %d", h.Used())
	}
	h.Free(400)
	if err := h.Alloc(200); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	if h.Peak() != 900 {
		t.Fatalf("peak = %d, want 900", h.Peak())
	}
	if h.Consumption() != 800 {
		t.Fatalf("consumption = %d, want 800", h.Consumption())
	}
}

func TestHeapUnlimited(t *testing.T) {
	h := NewHeap("big", 0, 0)
	if err := h.Alloc(1 << 40); err != nil {
		t.Fatalf("unlimited heap refused alloc: %v", err)
	}
}

func TestHeapFreeBelowBaselinePanics(t *testing.T) {
	h := NewHeap("jvm", 1000, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("free below baseline did not panic")
		}
	}()
	h.Free(1)
}

func TestHeapNegativePanics(t *testing.T) {
	h := NewHeap("jvm", 0, 0)
	func() {
		defer func() { recover() }()
		h.Alloc(-1)
		t.Fatal("negative alloc did not panic")
	}()
	defer func() {
		if recover() == nil {
			t.Fatal("negative free did not panic")
		}
	}()
	h.Free(-1)
}

func TestSamplerIdleFractions(t *testing.T) {
	k := sim.New(1)
	c := NewCPU(k, "n", 1.0)
	h := NewHeap("n", 0, 0)
	s := NewSampler(k, c, h, sim.Second)
	// Busy 250ms out of each second: submit 250ms of work at each second.
	for i := 0; i < 5; i++ {
		k.At(sim.Time(i)*sim.Second, func() {
			c.Submit(250*sim.Millisecond, nil)
		})
	}
	k.RunUntil(5 * sim.Second)
	s.Stop()
	samples := s.Samples()
	if len(samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(samples))
	}
	for i, sm := range samples {
		if sm.CPUIdle < 0.74 || sm.CPUIdle > 0.76 {
			t.Fatalf("sample %d idle = %v, want ~0.75", i, sm.CPUIdle)
		}
	}
	if mi := s.MeanIdle(); mi < 0.74 || mi > 0.76 {
		t.Fatalf("mean idle = %v", mi)
	}
}

func TestSamplerEmptyMeanIdle(t *testing.T) {
	k := sim.New(1)
	s := NewSampler(k, NewCPU(k, "n", 1), NewHeap("n", 0, 0), sim.Second)
	if s.MeanIdle() != 1 {
		t.Fatalf("empty sampler mean idle = %v", s.MeanIdle())
	}
	s.Stop()
}

func TestSamplerMemory(t *testing.T) {
	k := sim.New(1)
	c := NewCPU(k, "n", 1.0)
	h := NewHeap("n", 0, 50)
	s := NewSampler(k, c, h, sim.Second)
	k.At(500*sim.Millisecond, func() {
		if err := h.Alloc(1000); err != nil {
			t.Errorf("alloc: %v", err)
		}
	})
	k.RunUntil(2 * sim.Second)
	s.Stop()
	if got := s.Samples()[0].MemUsed; got != 1050 {
		t.Fatalf("sample mem = %d, want 1050", got)
	}
}

// Property: the CPU never reorders jobs and completion times are spaced by
// at least the service cost.
func TestPropertyCPUFIFO(t *testing.T) {
	f := func(costs []uint16) bool {
		k := sim.New(11)
		c := NewCPU(k, "n", 1.0)
		var done []sim.Time
		var order []int
		for i, cost := range costs {
			i := i
			c.Submit(sim.Time(cost)*sim.Microsecond, func() {
				done = append(done, k.Now())
				order = append(order, i)
			})
		}
		k.Run()
		if len(done) != len(costs) {
			return false
		}
		for i := 1; i < len(done); i++ {
			if order[i] != order[i-1]+1 {
				return false
			}
			gap := done[i] - done[i-1]
			if gap != sim.Time(costs[i])*sim.Microsecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: heap usage equals baseline + sum(allocs) - sum(frees) and never
// exceeds the limit.
func TestPropertyHeapAccounting(t *testing.T) {
	f := func(ops []int16) bool {
		const limit = 1 << 20
		h := NewHeap("p", limit, 64)
		var live int64
		for _, op := range ops {
			n := int64(op)
			if n >= 0 {
				if err := h.Alloc(n); err == nil {
					live += n
				}
			} else {
				n = -n
				if n > live {
					n = live
				}
				h.Free(n)
				live -= n
			}
			if h.Used() != 64+live || h.Used() > limit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
