package simproc

import (
	"errors"
	"sync"
	"testing"
)

func TestSharedHeapBasics(t *testing.T) {
	h := NewSharedHeap("t", 100, 10)
	if h.Used() != 10 || h.Peak() != 10 || h.Limit() != 100 {
		t.Fatalf("baseline state: used=%d peak=%d limit=%d", h.Used(), h.Peak(), h.Limit())
	}
	if err := h.Alloc(80); err != nil {
		t.Fatal(err)
	}
	if err := h.Alloc(20); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-limit alloc err = %v", err)
	}
	if h.Failures() != 1 {
		t.Fatalf("failures = %d", h.Failures())
	}
	h.Free(80)
	if h.Used() != 10 || h.Peak() != 90 || h.Consumption() != 80 {
		t.Fatalf("after free: used=%d peak=%d consumption=%d", h.Used(), h.Peak(), h.Consumption())
	}
}

func TestSharedHeapFreeBelowBaselinePanics(t *testing.T) {
	h := NewSharedHeap("t", 0, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("free below baseline did not panic")
		}
	}()
	h.Free(1)
}

// TestSharedHeapConcurrentNeverOvershoots hammers Alloc/Free from many
// goroutines and checks the atomic limit invariant: no interleaving may
// push usage past the limit, and balanced alloc/free pairs must return
// usage exactly to the baseline.
func TestSharedHeapConcurrentNeverOvershoots(t *testing.T) {
	const limit, workers, rounds = 1000, 8, 2000
	h := NewSharedHeap("t", limit, 0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(n int64) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := h.Alloc(n); err == nil {
					if u := h.Used(); u > limit {
						t.Errorf("used %d exceeds limit %d", u, limit)
					}
					h.Free(n)
				}
			}
		}(int64(50 + 10*w))
	}
	wg.Wait()
	if h.Used() != 0 {
		t.Fatalf("unbalanced accounting: used=%d", h.Used())
	}
	if h.Peak() > limit {
		t.Fatalf("peak %d exceeds limit %d", h.Peak(), limit)
	}
}
