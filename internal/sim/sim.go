// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel owns a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in scheduling order, which — together
// with a seeded random source — makes every simulation run exactly
// reproducible. All of the network, CPU and middleware models in this
// repository are driven by a single Kernel, mirroring the single-cluster
// testbed of the paper while compressing its 30-minute experiments into
// fractions of a second of wall time.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant of virtual time, expressed as nanoseconds since the
// start of the simulation.
type Time int64

// Common virtual-time unit constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
)

// FromDuration converts a time.Duration into a virtual Time offset.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts a virtual Time (or difference of Times) into a
// time.Duration for reporting.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. Events are created through Kernel.At and
// Kernel.After and may be cancelled before they fire.
type Event struct {
	at     Time
	seq    uint64
	index  int // heap index, -1 once fired or cancelled
	fn     func()
	cancel bool
}

// At reports the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; construct with New.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	fired   uint64
	stopped bool
}

// New returns a Kernel whose random source is seeded with seed. Two kernels
// constructed with the same seed and fed the same schedule produce identical
// event orderings and random draws.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Fired reports how many events have executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending reports how many events are waiting in the queue.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at virtual time t. Scheduling in the past panics:
// a model that rewinds time is a bug, not a policy.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, k.now))
	}
	if fn == nil {
		panic("sim: nil event func")
	}
	e := &Event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, e)
	return e
}

// After schedules fn to run d after the current virtual time. Negative d is
// clamped to zero.
func (k *Kernel) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Cancel removes a pending event from the queue. Cancelling an event that
// has already fired or been cancelled is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.cancel || e.index < 0 {
		if e != nil {
			e.cancel = true
		}
		return
	}
	e.cancel = true
	heap.Remove(&k.events, e.index)
	e.index = -1
}

// Stop makes the current Run/RunUntil call return after the event that is
// executing finishes. Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// step executes the earliest pending event. It reports false when the
// queue is empty.
func (k *Kernel) step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*Event)
	if e.at < k.now {
		panic("sim: event heap corrupted: time went backwards")
	}
	k.now = e.at
	k.fired++
	e.fn()
	return true
}

// Run executes events until the queue drains or Stop is called.
func (k *Kernel) Run() {
	k.stopped = false
	for !k.stopped && k.step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// exactly t (even if the queue still holds later events). It returns the
// number of events fired by this call.
func (k *Kernel) RunUntil(t Time) uint64 {
	k.stopped = false
	start := k.fired
	for !k.stopped && len(k.events) > 0 && k.events[0].at <= t {
		k.step()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
	return k.fired - start
}

// Every schedules fn to run every period, starting at start, until the
// returned Ticker is stopped. fn observes the tick time via Kernel.Now.
func (k *Kernel) Every(start, period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	t := &Ticker{k: k, period: period, fn: fn}
	t.ev = k.At(start, t.tick)
	return t
}

// Ticker repeatedly fires a callback at a fixed virtual-time period.
type Ticker struct {
	k       *Kernel
	period  Time
	fn      func()
	ev      *Event
	stopped bool
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped { // fn may have stopped the ticker
		t.ev = t.k.After(t.period, t.tick)
	}
}

// Stop cancels any pending tick. Safe to call multiple times.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.k.Cancel(t.ev)
}
