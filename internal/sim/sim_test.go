package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if FromDuration(1500*time.Millisecond) != 1500*Millisecond {
		t.Fatalf("FromDuration mismatch")
	}
	if (2 * Second).Duration() != 2*time.Second {
		t.Fatalf("Duration mismatch")
	}
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Fatalf("Seconds = %v, want 0.25", got)
	}
	if got := (3 * Millisecond).Milliseconds(); got != 3 {
		t.Fatalf("Milliseconds = %v, want 3", got)
	}
	if (90 * Second).String() != "1m30s" {
		t.Fatalf("String = %q", (90 * Second).String())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := New(1)
	var order []int
	k.At(30*Millisecond, func() { order = append(order, 3) })
	k.At(10*Millisecond, func() { order = append(order, 1) })
	k.At(20*Millisecond, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 30*Millisecond {
		t.Fatalf("now = %v", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Second, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of scheduling order: %v", order)
		}
	}
}

func TestAfterClampsNegative(t *testing.T) {
	k := New(1)
	fired := false
	k.After(-5*Second, func() { fired = true })
	k.Run()
	if !fired {
		t.Fatal("negative After never fired")
	}
	if k.Now() != 0 {
		t.Fatalf("now = %v, want 0", k.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := New(1)
	k.At(Second, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(0, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	k := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("nil event func did not panic")
		}
	}()
	k.At(Second, nil)
}

func TestCancel(t *testing.T) {
	k := New(1)
	fired := false
	e := k.At(Second, func() { fired = true })
	k.Cancel(e)
	k.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Double-cancel and cancelling a fired event must be no-ops.
	k.Cancel(e)
	e2 := k.At(2*Second, func() {})
	k.Run()
	k.Cancel(e2)
	k.Cancel(nil)
}

func TestCancelMiddleOfHeap(t *testing.T) {
	k := New(1)
	var fired []int
	var evs []*Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, k.At(Time(i+1)*Millisecond, func() { fired = append(fired, i) }))
	}
	// Cancel every third event.
	for i := 0; i < 20; i += 3 {
		k.Cancel(evs[i])
	}
	k.Run()
	for _, v := range fired {
		if v%3 == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
	if len(fired) != 13 {
		t.Fatalf("fired %d events, want 13", len(fired))
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(Time(i)*Second, func() { count++ })
	}
	n := k.RunUntil(5 * Second)
	if n != 5 || count != 5 {
		t.Fatalf("RunUntil fired %d (count %d), want 5", n, count)
	}
	if k.Now() != 5*Second {
		t.Fatalf("now = %v, want 5s", k.Now())
	}
	// Clock advances to the requested horizon even past the last event.
	k.RunUntil(30 * Second)
	if count != 10 || k.Now() != 30*Second {
		t.Fatalf("count=%d now=%v", count, k.Now())
	}
}

func TestStop(t *testing.T) {
	k := New(1)
	count := 0
	for i := 1; i <= 10; i++ {
		k.At(Time(i)*Second, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if k.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", k.Pending())
	}
	// Run resumes after Stop.
	k.Run()
	if count != 10 {
		t.Fatalf("count after resume = %d", count)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	k := New(1)
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 100 {
			k.After(Millisecond, chain)
		}
	}
	k.After(0, chain)
	k.Run()
	if depth != 100 {
		t.Fatalf("depth = %d", depth)
	}
	if k.Now() != 99*Millisecond {
		t.Fatalf("now = %v", k.Now())
	}
}

func TestTicker(t *testing.T) {
	k := New(1)
	var ticks []Time
	tk := k.Every(Second, 10*Second, func() { ticks = append(ticks, k.Now()) })
	k.At(45*Second, func() { tk.Stop() })
	k.Run()
	want := []Time{Second, 11 * Second, 21 * Second, 31 * Second, 41 * Second}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
	tk.Stop() // double stop is a no-op
}

func TestTickerStoppedFromCallback(t *testing.T) {
	k := New(1)
	n := 0
	var tk *Ticker
	tk = k.Every(0, Second, func() {
		n++
		if n == 4 {
			tk.Stop()
		}
	})
	k.Run()
	if n != 4 {
		t.Fatalf("n = %d, want 4", n)
	}
}

func TestTickerBadPeriodPanics(t *testing.T) {
	k := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	k.Every(0, 0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		k := New(seed)
		var draws []int64
		for i := 0; i < 50; i++ {
			k.After(Time(k.Rand().Intn(1000))*Millisecond, func() {
				draws = append(draws, k.Rand().Int63n(1e9))
			})
		}
		k.Run()
		return draws
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

// Property: for any batch of event offsets, events fire in nondecreasing
// time order and the count matches.
func TestPropertyOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		k := New(7)
		var fired []Time
		for _, off := range offsets {
			k.At(Time(off)*Microsecond, func() { fired = append(fired, k.Now()) })
		}
		k.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil(h) fires exactly the events with at <= h.
func TestPropertyRunUntilBoundary(t *testing.T) {
	f := func(offsets []uint16, horizon uint16) bool {
		k := New(3)
		want := 0
		for _, off := range offsets {
			k.At(Time(off)*Microsecond, func() {})
			if off <= horizon {
				want++
			}
		}
		n := k.RunUntil(Time(horizon) * Microsecond)
		return int(n) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKernelScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := New(1)
		for j := 0; j < 1000; j++ {
			k.At(Time(j)*Microsecond, func() {})
		}
		k.Run()
	}
}
