package selector

import (
	"fmt"
	"strings"
)

// Parser: recursive descent over the JMS selector grammar.
//
//	orExpr     := andExpr (OR andExpr)*
//	andExpr    := notExpr (AND notExpr)*
//	notExpr    := [NOT] primaryBool
//	primaryBool:= comparison, with arithmetic expressions as operands
//	comparison := arith ( cmpOp arith
//	                    | [NOT] BETWEEN arith AND arith
//	                    | [NOT] IN '(' string (',' string)* ')'
//	                    | [NOT] LIKE string [ESCAPE string]
//	                    | IS [NOT] NULL )?
//	arith      := term (('+'|'-') term)*
//	term       := unary (('*'|'/') unary)*
//	unary      := ['-'|'+'] primary
//	primary    := literal | identifier | '(' orExpr ')'
type parser struct {
	lex  *lexer
	tok  token
	peek *token
}

func newParser(src string) (*parser, *Error) {
	p := &parser{lex: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() *Error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (token, *Error) {
	if p.peek == nil {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) errf(format string, args ...any) *Error {
	return &Error{Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...), Expr: p.lex.src}
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokKeyword && p.tok.text == kw
}

func (p *parser) isOp(op string) bool {
	return p.tok.kind == tokOp && p.tok.text == op
}

func (p *parser) expectOp(op string) *Error {
	if !p.isOp(op) {
		return p.errf("expected %q, found %q", op, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectKeyword(kw string) *Error {
	if !p.isKeyword(kw) {
		return p.errf("expected %s, found %q", kw, p.tok.text)
	}
	return p.advance()
}

func (p *parser) parseOr() (expr, *Error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &orExpr{left, right}
	}
	return left, nil
}

func (p *parser) parseAnd() (expr, *Error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &andExpr{left, right}
	}
	return left, nil
}

func (p *parser) parseNot() (expr, *Error) {
	if p.isKeyword("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &notExpr{inner}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (expr, *Error) {
	left, err := p.parseArith()
	if err != nil {
		return nil, err
	}
	neg := false
	if p.isKeyword("NOT") {
		// NOT here must introduce BETWEEN / IN / LIKE.
		if err := p.advance(); err != nil {
			return nil, err
		}
		neg = true
	}
	switch {
	case p.tok.kind == tokOp && isCmpOp(p.tok.text):
		if neg {
			return nil, p.errf("NOT before comparison operator")
		}
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseArith()
		if err != nil {
			return nil, err
		}
		return &cmpExpr{op: op, l: left, r: right}, nil

	case p.isKeyword("BETWEEN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		lo, err := p.parseArith()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseArith()
		if err != nil {
			return nil, err
		}
		return &betweenExpr{not: neg, e: left, lo: lo, hi: hi}, nil

	case p.isKeyword("IN"):
		id, ok := left.(*identExpr)
		if !ok {
			return nil, p.errf("IN requires an identifier on the left")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var set []string
		for {
			if p.tok.kind != tokString {
				return nil, p.errf("IN list requires string literals")
			}
			set = append(set, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.isOp(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &inExpr{not: neg, ident: id.name, set: set}, nil

	case p.isKeyword("LIKE"):
		id, ok := left.(*identExpr)
		if !ok {
			return nil, p.errf("LIKE requires an identifier on the left")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, p.errf("LIKE requires a string pattern")
		}
		pattern := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		escape := byte(0)
		if p.isKeyword("ESCAPE") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokString || len(p.tok.text) != 1 {
				return nil, p.errf("ESCAPE requires a single-character string")
			}
			escape = p.tok.text[0]
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		m, err2 := compileLike(pattern, escape)
		if err2 != nil {
			return nil, p.errf("%s", err2.Error())
		}
		return &likeExpr{not: neg, ident: id.name, matcher: m, pattern: pattern}, nil

	case p.isKeyword("IS"):
		if neg {
			return nil, p.errf("NOT before IS")
		}
		id, ok := left.(*identExpr)
		if !ok {
			return nil, p.errf("IS NULL requires an identifier on the left")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		isNot := false
		if p.isKeyword("NOT") {
			isNot = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &isNullExpr{not: isNot, ident: id.name}, nil
	}
	if neg {
		return nil, p.errf("dangling NOT")
	}
	return left, nil
}

func isCmpOp(s string) bool {
	switch s {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) parseArith() (expr, *Error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.isOp("+") || p.isOp("-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = &arithExpr{op: op[0], l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseTerm() (expr, *Error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isOp("*") || p.isOp("/") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &arithExpr{op: op[0], l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (expr, *Error) {
	if p.isOp("-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &negExpr{inner}, nil
	}
	if p.isOp("+") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, *Error) {
	switch {
	case p.tok.kind == tokInt:
		e := &litExpr{v: longVal(p.tok.ival)}
		return e, p.advance()
	case p.tok.kind == tokFloat:
		e := &litExpr{v: doubleVal(p.tok.fval)}
		return e, p.advance()
	case p.tok.kind == tokString:
		e := &litExpr{v: stringVal(p.tok.text)}
		return e, p.advance()
	case p.isKeyword("TRUE"):
		return &litExpr{v: boolVal(true)}, p.advance()
	case p.isKeyword("FALSE"):
		return &litExpr{v: boolVal(false)}, p.advance()
	case p.isKeyword("NULL"):
		return &litExpr{v: nullVal()}, p.advance()
	case p.tok.kind == tokIdent:
		name := p.tok.text
		if strings.HasPrefix(name, "JMSX") || !strings.HasPrefix(name, "JMS") || isAllowedJMSHeader(name) {
			e := &identExpr{name: name}
			return e, p.advance()
		}
		return nil, p.errf("header %s is not selectable", name)
	case p.isOp("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return nil, p.errf("unexpected token %q", p.tok.text)
}

// isAllowedJMSHeader lists the headers JMS permits in selectors (§3.8.1.1:
// only JMSDeliveryMode, JMSPriority, JMSMessageID, JMSTimestamp,
// JMSCorrelationID and JMSType may be referenced).
func isAllowedJMSHeader(name string) bool {
	switch name {
	case "JMSDeliveryMode", "JMSPriority", "JMSMessageID", "JMSTimestamp", "JMSCorrelationID", "JMSType":
		return true
	}
	return false
}
