package selector

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"gridmon/internal/message"
)

// The conformance suite pins down JMS §3.8 selector semantics —
// three-valued NULL propagation, operator precedence, BETWEEN/IN/LIKE
// (with ESCAPE), and numeric type coercion — and runs every case against
// BOTH the tree-walking interpreter and the compiled program, proving the
// two evaluators equivalent.

// confMsg builds the reference message most cases evaluate against.
func confMsg() *message.Message {
	m := message.NewText("payload")
	m.ID = "ID:conf/1"
	m.Type = "reading"
	m.CorrelationID = "corr-9"
	m.Priority = 7
	m.Timestamp = 1234567890
	m.Mode = message.Persistent
	m.SetProperty("i", message.Int(10))
	m.SetProperty("l", message.Long(1_000_000_000_000))
	m.SetProperty("by", message.Byte(3))
	m.SetProperty("sh", message.Short(-4))
	m.SetProperty("f", message.Float(2.5))
	m.SetProperty("d", message.Double(0.125))
	m.SetProperty("s", message.String("hello world"))
	m.SetProperty("pct", message.String("100% done_really"))
	m.SetProperty("t", message.Bool(true))
	m.SetProperty("fa", message.Bool(false))
	m.SetProperty("nul", message.Null())
	m.SetProperty("nan", message.Double(math.NaN()))
	m.SetProperty("raw", message.Bytes([]byte{1, 2}))
	return m
}

type confCase struct {
	expr string
	want Tri
}

func confCases() []confCase {
	return []confCase{
		// Literals and identifiers as conditions.
		{"TRUE", TriTrue},
		{"FALSE", TriFalse},
		{"t", TriTrue},
		{"fa", TriFalse},
		{"nul", TriUnknown},
		{"missing", TriUnknown},
		{"i", TriFalse},     // non-boolean value as condition never matches
		{"s", TriFalse},     // string as condition
		{"raw", TriUnknown}, // bytes are not selectable: treated as null value
		{"42", TriFalse},
		{"NULL", TriUnknown},

		// Comparisons with numeric coercion across integer/float kinds.
		{"i = 10", TriTrue},
		{"i = 10.0", TriTrue},
		{"i <> 10", TriFalse},
		{"by = 3", TriTrue},
		{"sh = -4", TriTrue},
		{"sh < 0", TriTrue},
		{"f = 2.5", TriTrue},
		{"d = 0.125", TriTrue},
		{"f > d", TriTrue},
		{"l = 1000000000000", TriTrue},
		{"i < l", TriTrue},
		{"i >= 10", TriTrue},
		{"i <= 9", TriFalse},
		{"i > 9.5", TriTrue},

		// String and boolean equality (ordering unsupported -> UNKNOWN).
		{"s = 'hello world'", TriTrue},
		{"s <> 'hello world'", TriFalse},
		{"s = 'other'", TriFalse},
		{"s < 'z'", TriUnknown},
		{"t = TRUE", TriTrue},
		{"t <> fa", TriTrue},
		{"t > fa", TriUnknown},

		// IEEE NaN is unordered: '=' and every ordering comparison are
		// FALSE (not UNKNOWN — the operands are present and numeric),
		// '<>' is TRUE, and BETWEEN treats a NaN value or bound as
		// outside every interval. This is the semantic the matching
		// index assumes (a NaN value hits no Eq bucket or interval).
		{"nan = 5", TriFalse},
		{"nan <> 5", TriTrue},
		{"nan < 5", TriFalse},
		{"nan <= 5", TriFalse},
		{"nan > 5", TriFalse},
		{"nan >= 5", TriFalse},
		{"nan = nan", TriFalse},
		{"nan <> nan", TriTrue},
		{"nan BETWEEN 1 AND 5", TriFalse},
		{"nan NOT BETWEEN 1 AND 5", TriTrue},
		{"i = 0.0/0.0", TriFalse}, // NaN constant folds out of the arithmetic
		{"i <> 0.0/0.0", TriTrue},
		{"i <= 0.0/0.0", TriFalse},
		{"i BETWEEN 0.0/0.0 AND 100", TriFalse},
		{"d < 0.0/0.0", TriFalse},
		{"0.0/0.0 = 0.0/0.0", TriFalse}, // folds to constant FALSE

		// Incompatible operand types.
		{"i = 'ten'", TriUnknown},
		{"s = 10", TriUnknown},
		{"t = 1", TriUnknown},

		// NULL propagation through comparison and arithmetic.
		{"nul = 1", TriUnknown},
		{"missing = missing", TriUnknown},
		{"nul + 1 = 2", TriUnknown},
		{"missing * 2 < 10", TriUnknown},

		// Three-valued AND/OR/NOT truth tables.
		{"TRUE AND TRUE", TriTrue},
		{"TRUE AND FALSE", TriFalse},
		{"TRUE AND nul", TriUnknown},
		{"FALSE AND nul", TriFalse}, // short circuit keeps FALSE
		{"nul AND FALSE", TriFalse},
		{"nul AND nul", TriUnknown},
		{"TRUE OR nul", TriTrue},
		{"nul OR TRUE", TriTrue},
		{"FALSE OR nul", TriUnknown},
		{"nul OR nul", TriUnknown},
		{"NOT TRUE", TriFalse},
		{"NOT FALSE", TriTrue},
		{"NOT nul", TriUnknown},
		{"NOT (i = 10)", TriFalse},

		// Precedence: NOT > AND > OR; comparison binds tighter than AND.
		{"TRUE OR FALSE AND FALSE", TriTrue},
		{"(TRUE OR FALSE) AND FALSE", TriFalse},
		{"NOT FALSE AND TRUE", TriTrue},
		{"NOT (FALSE AND TRUE)", TriTrue},
		{"i = 10 AND s = 'hello world' OR FALSE", TriTrue},
		{"FALSE OR i = 10 AND fa", TriFalse},

		// Arithmetic precedence and division semantics.
		{"1 + 2 * 3 = 7", TriTrue},
		{"(1 + 2) * 3 = 9", TriTrue},
		{"i + 5 = 15", TriTrue},
		{"i / 4 = 2", TriTrue},     // integer division truncates
		{"i / 4.0 = 2.5", TriTrue}, // float division
		{"i / 0 = 1", TriUnknown},  // integer division by zero is null
		{"i / 0.0 > 1", TriTrue},   // IEEE +Inf, as in Java
		{"-i = -10", TriTrue},
		{"-f < 0", TriTrue},
		{"+i = 10", TriTrue},
		{"2 * 3 + 1", TriFalse}, // arithmetic as condition is FALSE, not UNKNOWN
		{"1 / 0", TriFalse},     // even a null-valued arithmetic condition

		// BETWEEN.
		{"i BETWEEN 5 AND 15", TriTrue},
		{"i BETWEEN 10 AND 10", TriTrue},
		{"i BETWEEN 11 AND 20", TriFalse},
		{"i NOT BETWEEN 11 AND 20", TriTrue},
		{"i NOT BETWEEN 5 AND 15", TriFalse},
		{"f BETWEEN 2 AND 3", TriTrue},
		{"i BETWEEN nul AND 20", TriUnknown},
		{"nul BETWEEN 1 AND 2", TriUnknown},
		{"s BETWEEN 1 AND 2", TriUnknown},
		{"i BETWEEN 15 AND 5", TriFalse}, // empty range matches nothing

		// IN.
		{"s IN ('hello world', 'x')", TriTrue},
		{"s IN ('x', 'y')", TriFalse},
		{"s NOT IN ('x', 'y')", TriTrue},
		{"s NOT IN ('hello world')", TriFalse},
		{"nul IN ('x')", TriUnknown},
		{"missing IN ('x')", TriUnknown},
		{"i IN ('10')", TriUnknown}, // non-string identifier

		// LIKE, including '_' , '%' and ESCAPE.
		{"s LIKE 'hello%'", TriTrue},
		{"s LIKE '%world'", TriTrue},
		{"s LIKE 'h_llo world'", TriTrue},
		{"s LIKE 'hello'", TriFalse},
		{"s NOT LIKE 'xyz%'", TriTrue},
		{"s LIKE '%'", TriTrue},
		{"s LIKE ''", TriFalse},
		{"pct LIKE '100!% done%' ESCAPE '!'", TriTrue},
		{"pct LIKE '100!%!_done%' ESCAPE '!'", TriFalse},
		{"pct LIKE '%done!_really' ESCAPE '!'", TriTrue},
		{"nul LIKE 'x%'", TriUnknown},
		{"missing LIKE '%'", TriUnknown},
		{"i LIKE '1%'", TriUnknown}, // non-string identifier

		// IS NULL / IS NOT NULL.
		{"nul IS NULL", TriTrue},
		{"missing IS NULL", TriTrue},
		{"i IS NULL", TriFalse},
		{"i IS NOT NULL", TriTrue},
		{"nul IS NOT NULL", TriFalse},
		{"raw IS NULL", TriFalse}, // bytes property exists and is non-null

		// JMS header pseudo-properties (compiled slot pre-resolution).
		{"JMSPriority = 7", TriTrue},
		{"JMSPriority > 4", TriTrue},
		{"JMSType = 'reading'", TriTrue},
		{"JMSMessageID = 'ID:conf/1'", TriTrue},
		{"JMSCorrelationID = 'corr-9'", TriTrue},
		{"JMSTimestamp = 1234567890", TriTrue},
		{"JMSDeliveryMode = 'PERSISTENT'", TriTrue},
		{"JMSDeliveryMode <> 'NON_PERSISTENT'", TriTrue},
		{"JMSType LIKE 'read%'", TriTrue},
		{"JMSPriority BETWEEN 0 AND 9", TriTrue},

		// Constant folding must not change verdicts.
		{"1 = 1", TriTrue},
		{"1 = 2 OR t", TriTrue},
		{"2 + 2 = 4 AND i = 10", TriTrue},
		{"NULL = NULL", TriUnknown},

		// Mixed nesting.
		{"(i = 10 AND (s LIKE 'h%' OR fa)) AND NOT (nul IS NOT NULL)", TriTrue},
		{"i * 2 BETWEEN 19 AND 21", TriTrue},
		{"(i + by) / 2 >= 6", TriTrue},
	}
}

func TestConformanceBothEvaluators(t *testing.T) {
	m := confMsg()
	for _, tc := range confCases() {
		sel, err := Parse(tc.expr)
		if err != nil {
			t.Errorf("parse %q: %v", tc.expr, err)
			continue
		}
		if got := sel.EvalInterpreted(m); got != tc.want {
			t.Errorf("interpreted %q = %v, want %v", tc.expr, got, tc.want)
		}
		if got := sel.Eval(m); got != tc.want {
			t.Errorf("compiled %q = %v, want %v", tc.expr, got, tc.want)
		}
		if sel.Matches(m) != (tc.want == TriTrue) {
			t.Errorf("Matches(%q) disagrees with verdict %v", tc.expr, tc.want)
		}
	}
}

// TestConformanceRandomizedEquivalence fuzzes message property values
// under a fixed set of selector shapes and asserts the interpreter and
// the compiled program return identical verdicts on every input.
func TestConformanceRandomizedEquivalence(t *testing.T) {
	exprs := []string{
		"a = b", "a < b", "a >= b", "a <> b",
		"a + b * 2 > c - 1", "a / b = c", "-a < b",
		"a BETWEEN b AND c", "a NOT BETWEEN 2 AND 8",
		"s LIKE 'v_l%'", "s NOT LIKE '%9'", "s IN ('v1', 'v2', 'v3')",
		"a IS NULL", "s IS NOT NULL",
		"a = 1 AND b = 2 OR NOT (c = 3)",
		"(a > b OR b > c) AND s LIKE 'v%'",
		"JMSPriority > a AND JMSType = s",
		"a AND b", "NOT a", "a OR s",
	}
	sels := make([]*Selector, len(exprs))
	for i, e := range exprs {
		sels[i] = MustParse(e)
	}

	rng := rand.New(rand.NewSource(42))
	randVal := func() (message.Value, bool) {
		switch rng.Intn(9) {
		case 0:
			return message.Int(int32(rng.Intn(10) - 5)), true
		case 7:
			return message.Double(math.NaN()), true
		case 1:
			return message.Long(int64(rng.Intn(1000))), true
		case 2:
			return message.Double(rng.Float64() * 10), true
		case 3:
			return message.Float(float32(rng.Float64())), true
		case 4:
			return message.String(fmt.Sprintf("v%d", rng.Intn(4))), true
		case 5:
			return message.Bool(rng.Intn(2) == 0), true
		case 6:
			return message.Null(), true
		default:
			return message.Value{}, false // property absent
		}
	}

	for trial := 0; trial < 2000; trial++ {
		m := message.NewText("x")
		m.Priority = rng.Intn(10)
		m.Type = fmt.Sprintf("v%d", rng.Intn(4))
		for _, name := range []string{"a", "b", "c", "s"} {
			if v, ok := randVal(); ok {
				m.SetProperty(name, v)
			}
		}
		for i, sel := range sels {
			want, got := sel.EvalInterpreted(m), sel.Eval(m)
			if want != got {
				t.Fatalf("trial %d: %q interpreted=%v compiled=%v on %v",
					trial, exprs[i], want, got, m)
			}
		}
	}
}

// TestCompiledConstVerdict checks constant folding surfaces through
// ConstVerdict/AlwaysTrue, which the broker index relies on.
func TestCompiledConstVerdict(t *testing.T) {
	cases := []struct {
		expr   string
		always bool
	}{
		{"", true},
		{"   ", true},
		{"TRUE", true},
		{"1 = 1", true},
		{"2 + 2 = 4", true},
		{"TRUE OR missing = 1", true}, // short-circuit folds
		{"FALSE", false},
		{"1 = 2", false},
		{"id < 10000", false},
		{"NULL", false},
	}
	for _, tc := range cases {
		sel := MustParse(tc.expr)
		if got := sel.AlwaysTrue(); got != tc.always {
			t.Errorf("AlwaysTrue(%q) = %v, want %v", tc.expr, got, tc.always)
		}
	}
}
