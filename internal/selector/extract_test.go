package selector

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"

	"gridmon/internal/message"
	"gridmon/internal/predindex"
)

// testMsgProbe adapts a message to the index probe interface, as the
// broker's publish path does.
type testMsgProbe struct{ m *message.Message }

func (p *testMsgProbe) ProbeAttr(attr string) (predindex.Value, bool) {
	return ProbeValue(p.m, attr)
}

// randSelector generates a random selector source string over
// properties a, b, c, s, bl: comparisons in both operand orders against
// int, float, string, boolean and NULL literals, BETWEEN, IN, LIKE,
// IS [NOT] NULL, bare boolean identifiers and arithmetic, nested under
// AND/OR/NOT and parentheses.
func randSelector(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		idents := []string{"a", "b", "c", "s", "bl"}
		id := idents[rng.Intn(len(idents))]
		switch rng.Intn(10) {
		case 0:
			return id + " IS NULL"
		case 1:
			return id + " IS NOT NULL"
		case 2:
			return fmt.Sprintf("%s BETWEEN %d AND %d", id, rng.Intn(11)-5, rng.Intn(11))
		case 3:
			return fmt.Sprintf("s IN ('v%d', 'v%d')", rng.Intn(4), rng.Intn(4))
		case 4:
			return fmt.Sprintf("s LIKE 'v%d%%'", rng.Intn(4))
		case 5:
			return "bl"
		case 6:
			return fmt.Sprintf("a + b > %d", rng.Intn(11)-5)
		default:
			ops := []string{"=", "<>", "<", "<=", ">", ">="}
			op := ops[rng.Intn(len(ops))]
			var lit string
			switch rng.Intn(6) {
			case 0:
				lit = fmt.Sprintf("%d", rng.Intn(21)-10)
			case 1:
				lit = fmt.Sprintf("%.2f", rng.Float64()*20-10)
			case 2:
				lit = fmt.Sprintf("'v%d'", rng.Intn(4))
			case 3:
				lit = []string{"TRUE", "FALSE"}[rng.Intn(2)]
			case 4:
				lit = "0.0/0.0" // const-folds to NaN
			default:
				lit = "NULL"
			}
			if rng.Intn(2) == 0 {
				return id + " " + op + " " + lit
			}
			return lit + " " + op + " " + id
		}
	}
	switch rng.Intn(4) {
	case 0:
		return "NOT " + randSelector(rng, depth-1)
	case 1:
		return "(" + randSelector(rng, depth-1) + ")"
	case 2:
		return randSelector(rng, depth-1) + " AND " + randSelector(rng, depth-1)
	default:
		return randSelector(rng, depth-1) + " OR " + randSelector(rng, depth-1)
	}
}

func randMessage(rng *rand.Rand) *message.Message {
	m := message.NewText("x")
	set := func(name string) {
		switch rng.Intn(9) {
		case 0:
			m.SetProperty(name, message.Int(int32(rng.Intn(21)-10)))
		case 7:
			m.SetProperty(name, message.Double(math.NaN()))
		case 1:
			m.SetProperty(name, message.Long(int64(rng.Intn(21)-10)))
		case 2:
			m.SetProperty(name, message.Double(rng.Float64()*20-10))
		case 3:
			m.SetProperty(name, message.Float(float32(rng.Float64())))
		case 4:
			m.SetProperty(name, message.String(fmt.Sprintf("v%d", rng.Intn(4))))
		case 5:
			m.SetProperty(name, message.Bool(rng.Intn(2) == 0))
		case 6:
			m.SetProperty(name, message.Null())
		default: // absent
		}
	}
	for _, name := range []string{"a", "b", "c", "s", "bl"} {
		set(name)
	}
	return m
}

// TestRequiredKeySupersetRandomized is the randomized superset-property
// suite over selector extraction: 4000 generated selectors batched into
// indexes and probed with random messages (typed values, NULLs, absent
// properties). Every selector that matches a message MUST appear among
// that message's index candidates — the index may over-include, never
// under-include. This is the property that makes indexed routing
// byte-identical to the linear scan.
func TestRequiredKeySupersetRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	const batches, perBatch = 100, 40
	never := 0
	for b := 0; b < batches; b++ {
		srcs := make([]string, perBatch)
		sels := make([]*Selector, perBatch)
		keys := make([]predindex.Key, perBatch)
		for i := 0; i < perBatch; i++ {
			srcs[i] = randSelector(rng, 3)
			sels[i] = MustParse(srcs[i])
			keys[i] = sels[i].RequiredKey()
		}
		ix := predindex.Build(keys)
		never += ix.NumNever()
		probe := &testMsgProbe{}
		var buf []int32
		for trial := 0; trial < 25; trial++ {
			probe.m = randMessage(rng)
			buf = ix.Candidates(probe, buf[:0])
			for seq, sel := range sels {
				if sel.Matches(probe.m) && !slices.Contains(buf, int32(seq)) {
					t.Fatalf("batch %d: selector %q matches message but is not a candidate (key %+v, candidates %v)",
						b, srcs[seq], keys[seq], buf)
				}
			}
		}
	}
	if never == 0 {
		t.Fatal("generator produced no Never keys — NULL/ordering coverage lost")
	}
}

// TestRequiredKeyShapes pins the JMS extraction rules the index relies
// on — including the deliberate divergences from sqlmini extraction
// (string/boolean ordering comparisons are always UNKNOWN in JMS, so
// they extract Never rather than Residual).
func TestRequiredKeyShapes(t *testing.T) {
	cases := []struct {
		src  string
		kind predindex.KeyKind
	}{
		{"a = 5", predindex.Eq},
		{"5 = a", predindex.Eq},
		{"s = 'x'", predindex.Eq},
		{"bl = TRUE", predindex.Eq},
		{"bl", predindex.Eq},
		{"a < 5", predindex.Range},
		{"5 < a", predindex.Range},
		{"a BETWEEN 2 AND 8", predindex.Range},
		{"a BETWEEN 8 AND 2", predindex.Never}, // empty interval
		{"s IN ('x', 'y')", predindex.Eq},
		{"s NOT IN ('x', 'y')", predindex.Residual},
		{"a <> 5", predindex.Residual},
		{"a = NULL", predindex.Never},
		{"a = 0.0/0.0", predindex.Never},  // = NaN is FALSE for every input
		{"a <= 0.0/0.0", predindex.Never}, // NaN range bound degrades
		{"a BETWEEN 0.0/0.0 AND 5", predindex.Never},
		{"a <> 0.0/0.0", predindex.Residual}, // TRUE for any numeric a
		{"s < 'x'", predindex.Never},         // JMS string ordering is UNKNOWN
		{"bl < TRUE", predindex.Never},       // JMS boolean ordering is UNKNOWN
		{"a + b", predindex.Never},           // arithmetic in boolean position
		{"a IS NULL", predindex.Residual},
		{"s LIKE 'v%'", predindex.Residual},
		{"a = 1 AND s LIKE 'v%'", predindex.Eq},
		{"a = 1 OR a = 2", predindex.Eq},
		{"a = 1 OR b = 2", predindex.Residual},
		{"a < 5 OR a > 10", predindex.Range},
		{"a = 1 OR a = NULL", predindex.Eq},
		{"TRUE", predindex.Residual},
		{"FALSE", predindex.Never},
		{"1 = 2", predindex.Never},
	}
	for _, c := range cases {
		sel, err := Parse(c.src)
		if err != nil {
			t.Errorf("parse %q: %v", c.src, err)
			continue
		}
		if k := sel.RequiredKey(); k.Kind != c.kind {
			t.Errorf("RequiredKey(%q).Kind = %v, want %v", c.src, k.Kind, c.kind)
		}
	}
}

// TestProbeValueKinds pins probe canonicalization: every numeric type
// probes as the same float64-keyed value, NULL and absent properties
// probe as absent.
func TestProbeValueKinds(t *testing.T) {
	m := message.NewText("x")
	m.SetProperty("i", message.Int(7))
	m.SetProperty("l", message.Long(7))
	m.SetProperty("d", message.Double(7))
	m.SetProperty("f", message.Float(7))
	m.SetProperty("s", message.String("v"))
	m.SetProperty("b", message.Bool(true))
	m.SetProperty("n", message.Null())

	for _, name := range []string{"i", "l", "d", "f"} {
		if v, ok := ProbeValue(m, name); !ok || v != predindex.Num(7) {
			t.Errorf("ProbeValue(%s) = %v, %v — want canonical Num(7)", name, v, ok)
		}
	}
	if v, ok := ProbeValue(m, "s"); !ok || v != predindex.Str("v") {
		t.Errorf("ProbeValue(s) = %v, %v", v, ok)
	}
	if v, ok := ProbeValue(m, "b"); !ok || v != predindex.Boolean(true) {
		t.Errorf("ProbeValue(b) = %v, %v", v, ok)
	}
	if _, ok := ProbeValue(m, "n"); ok {
		t.Error("NULL property must probe as absent")
	}
	if _, ok := ProbeValue(m, "ghost"); ok {
		t.Error("missing property must probe as absent")
	}
}

// TestNaNFieldIndexedLinearAgreement pins the NaN alignment the review
// of this index demanded: a message carrying a NaN double must route
// identically through the index and the linear scan. Under IEEE
// semantics NaN matches no '='/ordering/BETWEEN selector (those carry
// Eq/Range keys the NaN probe never hits), while the selectors NaN
// does match ('<>' and negations) extract Residual and so are always
// candidates. Both evaluators must agree on every verdict.
func TestNaNFieldIndexedLinearAgreement(t *testing.T) {
	srcs := []string{
		"a = 5", "a < 5", "a >= 5", "a BETWEEN 1 AND 5", // NaN never matches
		"a <> 5", "a NOT BETWEEN 1 AND 5", "NOT (a = 5)", // NaN matches: stay candidates
		"a = 0.0/0.0", "a <= 0.0/0.0", // NaN constants: never TRUE for any input
		"a <> 0.0/0.0", // TRUE for any numeric a, NaN included
	}
	wantMatch := map[string]bool{
		"a <> 5": true, "a NOT BETWEEN 1 AND 5": true, "NOT (a = 5)": true,
		"a <> 0.0/0.0": true,
	}
	sels := make([]*Selector, len(srcs))
	keys := make([]predindex.Key, len(srcs))
	for i, src := range srcs {
		sels[i] = MustParse(src)
		keys[i] = sels[i].RequiredKey()
	}
	ix := predindex.Build(keys)

	m := message.NewText("x")
	m.SetProperty("a", message.Double(math.NaN()))
	probe := &testMsgProbe{m: m}
	cands := ix.Candidates(probe, nil)
	for seq, sel := range sels {
		if it, ct := sel.EvalInterpreted(m), sel.Eval(m); it != ct {
			t.Errorf("%q: interpreted %v != compiled %v on NaN field", srcs[seq], it, ct)
		}
		matches := sel.Matches(m)
		if matches != wantMatch[srcs[seq]] {
			t.Errorf("%q: Matches(NaN field) = %v, want %v", srcs[seq], matches, wantMatch[srcs[seq]])
		}
		if matches && !slices.Contains(cands, int32(seq)) {
			t.Errorf("%q matches the NaN message but is not an index candidate (%v)", srcs[seq], cands)
		}
	}
}
