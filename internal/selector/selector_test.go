package selector

import (
	"strings"
	"testing"
	"testing/quick"

	"gridmon/internal/message"
)

// msg builds a message with a representative property set.
func msg() *message.Message {
	m := message.NewMap()
	m.ID = "ID:42"
	m.Priority = 6
	m.Timestamp = 1000
	m.Type = "telemetry"
	m.SetProperty("id", message.Int(1234))
	m.SetProperty("power", message.Double(1.5))
	m.SetProperty("rate", message.Float(0.25))
	m.SetProperty("count", message.Long(9))
	m.SetProperty("site", message.String("aberdeen-07"))
	m.SetProperty("status", message.String("RUNNING"))
	m.SetProperty("active", message.Bool(true))
	m.SetProperty("nothing", message.Null())
	return m
}

func evalOn(t *testing.T, expr string) Tri {
	t.Helper()
	s, err := Parse(expr)
	if err != nil {
		t.Fatalf("Parse(%q): %v", expr, err)
	}
	return s.Eval(msg())
}

func TestPaperSelector(t *testing.T) {
	// The exact selector the paper's subscribers use: "id<10000". It must
	// match every generated message (it "did not filter out any data").
	s := MustParse("id<10000")
	if !s.Matches(msg()) {
		t.Fatal("paper selector rejected a monitoring message")
	}
}

func TestComparisonsTrue(t *testing.T) {
	for _, expr := range []string{
		"id = 1234",
		"id <> 1",
		"id < 10000",
		"id <= 1234",
		"id > 0",
		"id >= 1234",
		"power > 1.0",
		"power = 1.5",
		"rate < 0.5",
		"count = 9",
		"site = 'aberdeen-07'",
		"status <> 'STOPPED'",
		"active = TRUE",
		"active <> FALSE",
		"JMSPriority >= 5",
		"JMSType = 'telemetry'",
		"JMSTimestamp = 1000",
		"JMSMessageID = 'ID:42'",
	} {
		if got := evalOn(t, expr); got != TriTrue {
			t.Errorf("%q = %v, want true", expr, got)
		}
	}
}

func TestComparisonsFalse(t *testing.T) {
	for _, expr := range []string{
		"id = 1",
		"id > 10000",
		"site = 'cardiff'",
		"active = FALSE",
		"power < 1",
	} {
		if got := evalOn(t, expr); got != TriFalse {
			t.Errorf("%q = %v, want false", expr, got)
		}
	}
}

func TestArithmetic(t *testing.T) {
	for _, expr := range []string{
		"id + 1 = 1235",
		"id - 34 = 1200",
		"id * 2 = 2468",
		"id / 2 = 617",
		"power * 2 = 3.0",
		"-id = -1234",
		"+id = 1234",
		"2 + 3 * 4 = 14",    // precedence
		"(2 + 3) * 4 = 20",  // parentheses
		"10 / 4 = 2",        // integer division
		"10.0 / 4 = 2.5",    // float division
		"id + power > 1235", // mixed promotes to double
	} {
		if got := evalOn(t, expr); got != TriTrue {
			t.Errorf("%q = %v, want true", expr, got)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	// Integer division by zero yields null -> unknown.
	if got := evalOn(t, "id / 0 = 5"); got != TriUnknown {
		t.Errorf("int div by zero = %v, want unknown", got)
	}
	// Float division by zero follows IEEE (+Inf > anything finite).
	if got := evalOn(t, "power / 0.0 > 1000000"); got != TriTrue {
		t.Errorf("float div by zero = %v, want true", got)
	}
}

func TestBooleanLogic(t *testing.T) {
	for _, c := range []struct {
		expr string
		want Tri
	}{
		{"id < 10000 AND power > 1", TriTrue},
		{"id < 10000 AND power < 1", TriFalse},
		{"id > 10000 OR power > 1", TriTrue},
		{"id > 10000 OR power < 1", TriFalse},
		{"NOT id > 10000", TriTrue},
		{"NOT active", TriFalse},
		{"active AND NOT (site = 'cardiff')", TriTrue},
		{"id < 10000 AND id > 1000 AND power = 1.5", TriTrue},
	} {
		if got := evalOn(t, c.expr); got != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestThreeValuedLogicWithNull(t *testing.T) {
	// missing and nothing are null; JMS three-valued logic applies.
	for _, c := range []struct {
		expr string
		want Tri
	}{
		{"missing = 1", TriUnknown},
		{"nothing = 1", TriUnknown},
		{"missing = 1 AND active", TriUnknown},
		{"missing = 1 AND id > 10000", TriFalse},  // F AND U = F
		{"missing = 1 OR active", TriTrue},        // U OR T = T
		{"missing = 1 OR id > 10000", TriUnknown}, // U OR F = U
		{"NOT (missing = 1)", TriUnknown},
		{"missing IS NULL", TriTrue},
		{"missing IS NOT NULL", TriFalse},
		{"id IS NULL", TriFalse},
		{"id IS NOT NULL", TriTrue},
		{"nothing IS NULL", TriTrue},
	} {
		if got := evalOn(t, c.expr); got != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestBetween(t *testing.T) {
	for _, c := range []struct {
		expr string
		want Tri
	}{
		{"id BETWEEN 1000 AND 2000", TriTrue},
		{"id BETWEEN 1234 AND 1234", TriTrue},
		{"id BETWEEN 0 AND 100", TriFalse},
		{"id NOT BETWEEN 0 AND 100", TriTrue},
		{"power BETWEEN 1 AND 2", TriTrue},
		{"power BETWEEN 1.6 AND 2", TriFalse},
		{"missing BETWEEN 1 AND 2", TriUnknown},
		{"site BETWEEN 1 AND 2", TriUnknown}, // string is not numeric
	} {
		if got := evalOn(t, c.expr); got != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestIn(t *testing.T) {
	for _, c := range []struct {
		expr string
		want Tri
	}{
		{"status IN ('RUNNING', 'STARTING')", TriTrue},
		{"status IN ('STOPPED')", TriFalse},
		{"status NOT IN ('STOPPED')", TriTrue},
		{"missing IN ('x')", TriUnknown},
		{"id IN ('1234')", TriUnknown}, // IN applies to strings only
	} {
		if got := evalOn(t, c.expr); got != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestLike(t *testing.T) {
	for _, c := range []struct {
		expr string
		want Tri
	}{
		{"site LIKE 'aberdeen%'", TriTrue},
		{"site LIKE '%07'", TriTrue},
		{"site LIKE '%deen%'", TriTrue},
		{"site LIKE 'aberdeen-__'", TriTrue},
		{"site LIKE 'aberdeen-_'", TriFalse},
		{"site LIKE 'cardiff%'", TriFalse},
		{"site NOT LIKE 'cardiff%'", TriTrue},
		{"site LIKE 'aberdeen-07'", TriTrue},
		{"site LIKE '%'", TriTrue},
		{"missing LIKE '%'", TriUnknown},
		{"status LIKE 'RUN!%ING' ESCAPE '!'", TriFalse}, // literal % required
		{"status LIKE 'RUN%'", TriTrue},
	} {
		if got := evalOn(t, c.expr); got != c.want {
			t.Errorf("%q = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestLikeEscapeMatchesLiteralPercent(t *testing.T) {
	m := message.New()
	m.SetProperty("s", message.String("100%"))
	sel := MustParse("s LIKE '100!%' ESCAPE '!'")
	if !sel.Matches(m) {
		t.Fatal("escaped %% did not match literal")
	}
	sel2 := MustParse("s LIKE '1__!%' ESCAPE '!'")
	if !sel2.Matches(m) {
		t.Fatal("mixed escape pattern failed")
	}
}

func TestStringOrderingIsUnknown(t *testing.T) {
	// JMS permits only = and <> on strings.
	if got := evalOn(t, "site > 'a'"); got != TriUnknown {
		t.Errorf("string ordering = %v, want unknown", got)
	}
	if got := evalOn(t, "active > FALSE"); got != TriUnknown {
		t.Errorf("bool ordering = %v, want unknown", got)
	}
}

func TestTypeMismatchIsUnknown(t *testing.T) {
	for _, expr := range []string{
		"site = 5",
		"id = 'x'",
		"active = 1",
	} {
		if got := evalOn(t, expr); got != TriUnknown {
			t.Errorf("%q = %v, want unknown", expr, got)
		}
	}
}

func TestEmptySelectorMatchesAll(t *testing.T) {
	for _, src := range []string{"", "   ", "\t\n"} {
		s, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if !s.Matches(msg()) {
			t.Fatalf("empty selector %q rejected message", src)
		}
		if s.Complexity() != 0 {
			t.Fatal("empty selector has complexity")
		}
	}
	var nilSel *Selector
	if !nilSel.Matches(msg()) || nilSel.Eval(msg()) != TriTrue || nilSel.String() != "" || nilSel.Complexity() != 0 {
		t.Fatal("nil selector misbehaves")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"id <",
		"id < < 5",
		"(id < 5",
		"id BETWEEN 1",
		"id BETWEEN 1 OR 2",
		"5 IN ('a')",
		"5 LIKE 'a'",
		"site LIKE 5",
		"site LIKE 'a' ESCAPE 'ab'",
		"site LIKE 'a!' ESCAPE '!'",
		"id IN (5)",
		"id IN ()",
		"5 IS NULL",
		"id IS 5",
		"NOT",
		"id NOT 5",
		"AND id",
		"id @ 5",
		"'unterminated",
		"id < 1e",
		"id = 5 extra",
		"JMSDestination = 'x'", // not a selectable header
		"JMSRedelivered",       // not selectable per JMS §3.8.1.1
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestErrorHasPositionAndExpr(t *testing.T) {
	_, err := Parse("id << 5")
	if err == nil {
		t.Fatal("expected error")
	}
	e, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if e.Expr != "id << 5" || !strings.Contains(e.Error(), "offset") {
		t.Fatalf("error = %v", e)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	for _, expr := range []string{
		"id < 10000 and power > 1",
		"id < 10000 Or power < 1",
		"not (id > 10000)",
		"site like 'aber%'",
		"status in ('RUNNING')",
		"missing is null",
		"id between 1 and 10000",
	} {
		if got := evalOn(t, expr); got != TriTrue {
			t.Errorf("%q = %v, want true", expr, got)
		}
	}
}

func TestIdentifierCaseSensitive(t *testing.T) {
	// JMS identifiers are case sensitive: "ID" is not "id".
	if got := evalOn(t, "ID < 10000"); got != TriUnknown {
		t.Errorf("wrong-case identifier = %v, want unknown", got)
	}
}

func TestStringLiteralQuoteEscape(t *testing.T) {
	m := message.New()
	m.SetProperty("s", message.String("it's"))
	if !MustParse("s = 'it''s'").Matches(m) {
		t.Fatal("doubled quote escape failed")
	}
}

func TestNumericLiterals(t *testing.T) {
	for _, expr := range []string{
		"id = 1234",
		"power = 1.5",
		"power = 15e-1",
		"power = 0.15E1",
		"power > .5",
	} {
		if got := evalOn(t, expr); got != TriTrue {
			t.Errorf("%q = %v, want true", expr, got)
		}
	}
}

func TestComplexity(t *testing.T) {
	a := MustParse("id < 10000")
	b := MustParse("id < 10000 AND site LIKE 'aber%' AND power BETWEEN 1 AND 2")
	if a.Complexity() <= 0 || b.Complexity() <= a.Complexity() {
		t.Fatalf("complexities: %d vs %d", a.Complexity(), b.Complexity())
	}
}

func TestSelectorString(t *testing.T) {
	src := "id < 10000"
	if MustParse(src).String() != src {
		t.Fatal("String() should return source")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("id <")
}

func TestHeaderPrecedenceOverProperty(t *testing.T) {
	m := message.New()
	m.Priority = 9
	m.SetProperty("JMSPriority", message.Int(1))
	if !MustParse("JMSPriority = 9").Matches(m) {
		t.Fatal("header did not take precedence")
	}
}

// Property: "id<N" matches exactly when id < N, over the full int32 range.
func TestPropertyThresholdSelector(t *testing.T) {
	sel := MustParse("id < 10000")
	f := func(id int32) bool {
		m := message.New()
		m.SetProperty("id", message.Int(id))
		return sel.Matches(m) == (id < 10000)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: BETWEEN lo AND hi agrees with the two-comparison expansion.
func TestPropertyBetweenEquivalence(t *testing.T) {
	f := func(v, lo, hi int16) bool {
		m := message.New()
		m.SetProperty("x", message.Int(int32(v)))
		between := MustParse("x BETWEEN " + itoa(int64(lo)) + " AND " + itoa(int64(hi)))
		expanded := MustParse("x >= " + itoa(int64(lo)) + " AND x <= " + itoa(int64(hi)))
		return between.Eval(m) == expanded.Eval(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: LIKE with no wildcards is equality.
func TestPropertyLikeLiteralIsEquality(t *testing.T) {
	f := func(s string) bool {
		// Restrict to pattern-safe strings (no wildcards or quotes).
		if strings.ContainsAny(s, "%_'") {
			return true
		}
		m := message.New()
		m.SetProperty("s", message.String(s))
		sel, err := Parse("s LIKE '" + s + "'")
		if err != nil {
			return false
		}
		return sel.Matches(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: NOT is an involution on definite results.
func TestPropertyDoubleNegation(t *testing.T) {
	f := func(id int32) bool {
		m := message.New()
		m.SetProperty("id", message.Int(id))
		pos := MustParse("id < 0")
		neg := MustParse("NOT NOT id < 0")
		return pos.Eval(m) == neg.Eval(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int64) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

func BenchmarkParsePaperSelector(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("id<10000"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalPaperSelector(b *testing.B) {
	sel := MustParse("id<10000")
	m := msg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !sel.Matches(m) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkEvalComplexSelector(b *testing.B) {
	sel := MustParse("id < 10000 AND site LIKE 'aber%' AND power BETWEEN 1 AND 2 AND status IN ('RUNNING','STARTING')")
	m := msg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sel.Matches(m)
	}
}
