// Package selector implements the JMS 1.1 message-selector language, the
// SQL-92 conditional-expression subset that brokers evaluate against
// message headers and properties. The paper's subscribers attach the
// selector "id<10000" to every subscription — one that filters nothing but
// "simulates real uses", i.e. charges the broker the evaluation cost — so
// a faithful reproduction needs a real parser and evaluator, not a stub.
//
// Supported grammar (per JMS §3.8.1): AND/OR/NOT with three-valued logic,
// comparison operators on numeric and string/bool operands, arithmetic
// (+ - * /), BETWEEN, IN, LIKE (with ESCAPE), IS [NOT] NULL, parentheses,
// numeric/string/boolean literals, and identifiers resolved against the
// message at evaluation time.
package selector

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokOp      // punctuation operators: = <> < <= > >= + - * / ( ) ,
	tokKeyword // AND OR NOT BETWEEN LIKE IN IS NULL ESCAPE TRUE FALSE
)

type token struct {
	kind tokenKind
	text string // uppercase for keywords, verbatim otherwise
	pos  int
	ival int64
	fval float64
}

// Error describes a selector parse failure with its byte offset.
type Error struct {
	Pos  int
	Msg  string
	Expr string
}

func (e *Error) Error() string {
	return fmt.Sprintf("selector: %s at offset %d in %q", e.Msg, e.Pos, e.Expr)
}

var keywords = map[string]bool{
	"AND": true, "OR": true, "NOT": true, "BETWEEN": true, "LIKE": true,
	"IN": true, "IS": true, "NULL": true, "ESCAPE": true, "TRUE": true, "FALSE": true,
}

type lexer struct {
	src string
	pos int
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) errf(pos int, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...), Expr: l.src}
}

func (l *lexer) next() (token, *Error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return token{kind: tokKeyword, text: up, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil

	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.number(start)

	case c == '\'':
		return l.stringLit(start)

	case c == '<':
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '=' || l.src[l.pos] == '>') {
			l.pos++
			return token{kind: tokOp, text: l.src[start:l.pos], pos: start}, nil
		}
		return token{kind: tokOp, text: "<", pos: start}, nil

	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		return token{kind: tokOp, text: ">", pos: start}, nil

	case c == '=' || c == '+' || c == '-' || c == '*' || c == '/' || c == '(' || c == ')' || c == ',':
		l.pos++
		return token{kind: tokOp, text: string(c), pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", string(c))
}

func (l *lexer) number(start int) (token, *Error) {
	isFloat := false
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		isFloat = true
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		mark := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			isFloat = true
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			// Not an exponent after all ("10e" would be invalid; JMS
			// identifiers cannot start mid-number, so reject).
			l.pos = mark
			return token{}, l.errf(mark, "malformed exponent")
		}
	}
	text := l.src[start:l.pos]
	if isFloat {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return token{}, l.errf(start, "bad float literal %q", text)
		}
		return token{kind: tokFloat, text: text, fval: f, pos: start}, nil
	}
	var n int64
	if _, err := fmt.Sscanf(text, "%d", &n); err != nil {
		return token{}, l.errf(start, "bad integer literal %q", text)
	}
	return token{kind: tokInt, text: text, ival: n, pos: start}, nil
}

func (l *lexer) stringLit(start int) (token, *Error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // '' escapes a quote, per SQL
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, l.errf(start, "unterminated string literal")
}
