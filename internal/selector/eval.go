package selector

import (
	"errors"
	"fmt"
	"math"

	"gridmon/internal/message"
	"gridmon/internal/predindex"
)

// Tri is SQL three-valued logic. A selector accepts a message only when
// the whole expression evaluates to TriTrue.
type Tri int8

// Three-valued logic constants.
const (
	TriFalse Tri = iota
	TriTrue
	TriUnknown
)

func (t Tri) String() string {
	switch t {
	case TriFalse:
		return "false"
	case TriTrue:
		return "true"
	}
	return "unknown"
}

func triNot(t Tri) Tri {
	switch t {
	case TriTrue:
		return TriFalse
	case TriFalse:
		return TriTrue
	}
	return TriUnknown
}

func triAnd(a, b Tri) Tri {
	if a == TriFalse || b == TriFalse {
		return TriFalse
	}
	if a == TriTrue && b == TriTrue {
		return TriTrue
	}
	return TriUnknown
}

func triOr(a, b Tri) Tri {
	if a == TriTrue || b == TriTrue {
		return TriTrue
	}
	if a == TriFalse && b == TriFalse {
		return TriFalse
	}
	return TriUnknown
}

// vkind is the runtime value domain of the evaluator.
type vkind uint8

const (
	vNull vkind = iota
	vBool
	vLong
	vDouble
	vString
)

type val struct {
	kind vkind
	b    bool
	i    int64
	f    float64
	s    string
}

func nullVal() val            { return val{} }
func boolVal(b bool) val      { return val{kind: vBool, b: b} }
func longVal(i int64) val     { return val{kind: vLong, i: i} }
func doubleVal(f float64) val { return val{kind: vDouble, f: f} }
func stringVal(s string) val  { return val{kind: vString, s: s} }

func (v val) isNumeric() bool { return v.kind == vLong || v.kind == vDouble }

func (v val) asDouble() float64 {
	if v.kind == vLong {
		return float64(v.i)
	}
	return v.f
}

// fromMessage maps a typed JMS property value into the evaluator domain.
// It reads the raw payload (sign-extended integer bits, IEEE float bits)
// directly rather than going through the checked As* conversions.
func fromMessage(mv message.Value) val {
	kind, num, str := mv.Raw()
	switch kind {
	case message.KindNull:
		return nullVal()
	case message.KindBool:
		return boolVal(num != 0)
	case message.KindByte, message.KindShort, message.KindInt, message.KindLong:
		return longVal(int64(num))
	case message.KindFloat:
		return doubleVal(float64(math.Float32frombits(uint32(num))))
	case message.KindDouble:
		return doubleVal(math.Float64frombits(num))
	case message.KindString:
		return stringVal(str)
	}
	// Bytes values are not selectable in JMS; treat as null.
	return nullVal()
}

// Source supplies identifier values during evaluation. *message.Message
// implements it.
type Source interface {
	SelectorField(name string) (message.Value, bool)
}

type expr interface {
	// evalBool evaluates the node as a boolean condition.
	evalBool(src Source) Tri
	// evalVal evaluates the node as a value (for arithmetic operands).
	evalVal(src Source) val
	// nodes reports the AST size under this node (for cost accounting).
	nodes() int
}

// --- leaves ---

type litExpr struct{ v val }

func (e *litExpr) evalVal(Source) val { return e.v }
func (e *litExpr) evalBool(Source) Tri {
	if e.v.kind == vBool {
		if e.v.b {
			return TriTrue
		}
		return TriFalse
	}
	if e.v.kind == vNull {
		return TriUnknown
	}
	return TriFalse // non-boolean literal used as condition never matches
}
func (e *litExpr) nodes() int { return 1 }

type identExpr struct{ name string }

func (e *identExpr) evalVal(src Source) val {
	mv, ok := src.SelectorField(e.name)
	if !ok {
		return nullVal()
	}
	return fromMessage(mv)
}
func (e *identExpr) evalBool(src Source) Tri {
	v := e.evalVal(src)
	switch v.kind {
	case vBool:
		if v.b {
			return TriTrue
		}
		return TriFalse
	case vNull:
		return TriUnknown
	}
	return TriFalse
}
func (e *identExpr) nodes() int { return 1 }

// --- boolean combinators ---

type notExpr struct{ inner expr }

func (e *notExpr) evalBool(src Source) Tri { return triNot(e.inner.evalBool(src)) }
func (e *notExpr) evalVal(src Source) val  { return triToVal(e.evalBool(src)) }
func (e *notExpr) nodes() int              { return 1 + e.inner.nodes() }

type andExpr struct{ l, r expr }

func (e *andExpr) evalBool(src Source) Tri {
	lv := e.l.evalBool(src)
	if lv == TriFalse {
		return TriFalse // short circuit
	}
	return triAnd(lv, e.r.evalBool(src))
}
func (e *andExpr) evalVal(src Source) val { return triToVal(e.evalBool(src)) }
func (e *andExpr) nodes() int             { return 1 + e.l.nodes() + e.r.nodes() }

type orExpr struct{ l, r expr }

func (e *orExpr) evalBool(src Source) Tri {
	lv := e.l.evalBool(src)
	if lv == TriTrue {
		return TriTrue // short circuit
	}
	return triOr(lv, e.r.evalBool(src))
}
func (e *orExpr) evalVal(src Source) val { return triToVal(e.evalBool(src)) }
func (e *orExpr) nodes() int             { return 1 + e.l.nodes() + e.r.nodes() }

func triToVal(t Tri) val {
	if t == TriUnknown {
		return nullVal()
	}
	return boolVal(t == TriTrue)
}

// --- comparisons ---

type cmpExpr struct {
	op   string
	l, r expr
}

func (e *cmpExpr) evalBool(src Source) Tri {
	lv, rv := e.l.evalVal(src), e.r.evalVal(src)
	if lv.kind == vNull || rv.kind == vNull {
		return TriUnknown
	}
	// Numeric comparison with promotion.
	if lv.isNumeric() && rv.isNumeric() {
		if lv.kind == vLong && rv.kind == vLong {
			return cmpOrdered(e.op, compareInt(lv.i, rv.i), true)
		}
		c, ordered := compareFloat(lv.asDouble(), rv.asDouble())
		return cmpOrdered(e.op, c, ordered)
	}
	// String and boolean support only equality operators (JMS §3.8.1.2).
	if lv.kind == vString && rv.kind == vString {
		switch e.op {
		case "=":
			return boolTri(lv.s == rv.s)
		case "<>":
			return boolTri(lv.s != rv.s)
		}
		return TriUnknown
	}
	if lv.kind == vBool && rv.kind == vBool {
		switch e.op {
		case "=":
			return boolTri(lv.b == rv.b)
		case "<>":
			return boolTri(lv.b != rv.b)
		}
		return TriUnknown
	}
	// Incompatible types.
	return TriUnknown
}
func (e *cmpExpr) evalVal(src Source) val { return triToVal(e.evalBool(src)) }
func (e *cmpExpr) nodes() int             { return 1 + e.l.nodes() + e.r.nodes() }

func boolTri(b bool) Tri {
	if b {
		return TriTrue
	}
	return TriFalse
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// compareFloat orders two doubles. ordered=false means a NaN operand:
// IEEE-754 defines no ordering (and no equality) for NaN, and the
// matching index agrees — a NaN value hits no Eq bucket and no
// interval — so the evaluators must not invent one.
func compareFloat(a, b float64) (c int, ordered bool) {
	switch {
	case a < b:
		return -1, true
	case a > b:
		return 1, true
	case a == b:
		return 0, true
	}
	return 0, false
}

func cmpOrdered(op string, c int, ordered bool) Tri {
	switch op {
	case "=":
		return boolTri(ordered && c == 0)
	case "<>":
		// IEEE/Java: NaN is unequal to everything, including itself.
		return boolTri(!ordered || c != 0)
	case "<":
		return boolTri(ordered && c < 0)
	case "<=":
		return boolTri(ordered && c <= 0)
	case ">":
		return boolTri(ordered && c > 0)
	case ">=":
		return boolTri(ordered && c >= 0)
	}
	return TriUnknown
}

// --- arithmetic ---

type arithExpr struct {
	op   byte // + - * /
	l, r expr
}

func (e *arithExpr) evalVal(src Source) val {
	lv, rv := e.l.evalVal(src), e.r.evalVal(src)
	if !lv.isNumeric() || !rv.isNumeric() {
		return nullVal()
	}
	if lv.kind == vLong && rv.kind == vLong {
		switch e.op {
		case '+':
			return longVal(lv.i + rv.i)
		case '-':
			return longVal(lv.i - rv.i)
		case '*':
			return longVal(lv.i * rv.i)
		case '/':
			if rv.i == 0 {
				return nullVal()
			}
			return longVal(lv.i / rv.i)
		}
	}
	a, b := lv.asDouble(), rv.asDouble()
	switch e.op {
	case '+':
		return doubleVal(a + b)
	case '-':
		return doubleVal(a - b)
	case '*':
		return doubleVal(a * b)
	case '/':
		return doubleVal(a / b) // IEEE semantics, as in Java
	}
	return nullVal()
}
func (e *arithExpr) evalBool(src Source) Tri { return TriFalse }
func (e *arithExpr) nodes() int              { return 1 + e.l.nodes() + e.r.nodes() }

type negExpr struct{ inner expr }

func (e *negExpr) evalVal(src Source) val {
	v := e.inner.evalVal(src)
	switch v.kind {
	case vLong:
		return longVal(-v.i)
	case vDouble:
		return doubleVal(-v.f)
	}
	return nullVal()
}
func (e *negExpr) evalBool(Source) Tri { return TriFalse }
func (e *negExpr) nodes() int          { return 1 + e.inner.nodes() }

// --- BETWEEN / IN / LIKE / IS NULL ---

type betweenExpr struct {
	not       bool
	e, lo, hi expr
}

func (e *betweenExpr) evalBool(src Source) Tri {
	v, lo, hi := e.e.evalVal(src), e.lo.evalVal(src), e.hi.evalVal(src)
	if v.kind == vNull || lo.kind == vNull || hi.kind == vNull {
		return TriUnknown
	}
	if !v.isNumeric() || !lo.isNumeric() || !hi.isNumeric() {
		return TriUnknown
	}
	cLo, loOrd := compareFloat(v.asDouble(), lo.asDouble())
	cHi, hiOrd := compareFloat(v.asDouble(), hi.asDouble())
	in := loOrd && hiOrd && cLo >= 0 && cHi <= 0 // a NaN operand is outside every interval
	if v.kind == vLong && lo.kind == vLong && hi.kind == vLong {
		in = v.i >= lo.i && v.i <= hi.i
	}
	if e.not {
		return boolTri(!in)
	}
	return boolTri(in)
}
func (e *betweenExpr) evalVal(src Source) val { return triToVal(e.evalBool(src)) }
func (e *betweenExpr) nodes() int             { return 1 + e.e.nodes() + e.lo.nodes() + e.hi.nodes() }

type inExpr struct {
	not   bool
	ident string
	set   []string
}

func (e *inExpr) evalBool(src Source) Tri {
	mv, ok := src.SelectorField(e.ident)
	if !ok || mv.IsNull() {
		return TriUnknown
	}
	if mv.Kind() != message.KindString {
		return TriUnknown
	}
	s := mv.AsString()
	found := false
	for _, x := range e.set {
		if x == s {
			found = true
			break
		}
	}
	if e.not {
		return boolTri(!found)
	}
	return boolTri(found)
}
func (e *inExpr) evalVal(src Source) val { return triToVal(e.evalBool(src)) }
func (e *inExpr) nodes() int             { return 1 + len(e.set) }

type likeExpr struct {
	not     bool
	ident   string
	pattern string
	matcher *likeMatcher
}

func (e *likeExpr) evalBool(src Source) Tri {
	mv, ok := src.SelectorField(e.ident)
	if !ok || mv.IsNull() {
		return TriUnknown
	}
	if mv.Kind() != message.KindString {
		return TriUnknown
	}
	m := e.matcher.match(mv.AsString())
	if e.not {
		return boolTri(!m)
	}
	return boolTri(m)
}
func (e *likeExpr) evalVal(src Source) val { return triToVal(e.evalBool(src)) }
func (e *likeExpr) nodes() int             { return 2 }

type isNullExpr struct {
	not   bool
	ident string
}

func (e *isNullExpr) evalBool(src Source) Tri {
	mv, ok := src.SelectorField(e.ident)
	isNull := !ok || mv.IsNull()
	if e.not {
		return boolTri(!isNull)
	}
	return boolTri(isNull)
}
func (e *isNullExpr) evalVal(src Source) val { return triToVal(e.evalBool(src)) }
func (e *isNullExpr) nodes() int             { return 2 }

// --- LIKE pattern compilation ---

// likeMatcher matches SQL LIKE patterns: '%' is any run (including empty),
// '_' any single character, and an optional escape character quotes the
// next pattern character literally.
type likeMatcher struct {
	ops []likeOp
}

type likeOp struct {
	kind byte // 'l' literal, '_' single, '%' any-run
	lit  byte
}

func compileLike(pattern string, escape byte) (*likeMatcher, error) {
	m := &likeMatcher{}
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		switch {
		case escape != 0 && c == escape:
			i++
			if i >= len(pattern) {
				return nil, errors.New("LIKE pattern ends with escape character")
			}
			m.ops = append(m.ops, likeOp{kind: 'l', lit: pattern[i]})
		case c == '%':
			// Collapse consecutive wildcards.
			if n := len(m.ops); n == 0 || m.ops[n-1].kind != '%' {
				m.ops = append(m.ops, likeOp{kind: '%'})
			}
		case c == '_':
			m.ops = append(m.ops, likeOp{kind: '_'})
		default:
			m.ops = append(m.ops, likeOp{kind: 'l', lit: c})
		}
	}
	return m, nil
}

// match runs the classic two-pointer wildcard algorithm (linear in
// len(s) * number of '%' segments, no recursion).
func (m *likeMatcher) match(s string) bool {
	ops := m.ops
	si, oi := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		if oi < len(ops) {
			op := ops[oi]
			switch op.kind {
			case 'l':
				if s[si] == op.lit {
					si++
					oi++
					continue
				}
			case '_':
				si++
				oi++
				continue
			case '%':
				star = oi
				starSi = si
				oi++
				continue
			}
		}
		if star >= 0 {
			oi = star + 1
			starSi++
			si = starSi
			continue
		}
		return false
	}
	for oi < len(ops) && ops[oi].kind == '%' {
		oi++
	}
	return oi == len(ops)
}

// --- public API ---

// Selector is a compiled JMS message selector. Parse builds the AST and
// immediately flattens it into a Program (see compile.go); Matches and
// Eval run the compiled form, while EvalInterpreted retains the
// tree-walking evaluator for conformance cross-checking.
type Selector struct {
	src  string
	root expr
	prog *Program
	key  predindex.Key // required-conjunct key for the matching index
}

// Parse compiles a selector expression. An empty (or all-whitespace)
// selector returns a Selector that matches every message, mirroring a JMS
// consumer created without a selector.
func Parse(src string) (*Selector, error) {
	trimmed := false
	for i := 0; i < len(src); i++ {
		if src[i] != ' ' && src[i] != '\t' && src[i] != '\n' && src[i] != '\r' {
			trimmed = true
			break
		}
	}
	if !trimmed {
		return &Selector{src: src}, nil
	}
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	root, err2 := p.parseOr()
	if err2 != nil {
		return nil, err2
	}
	if p.tok.kind != tokEOF {
		return nil, &Error{Pos: p.tok.pos, Msg: fmt.Sprintf("unexpected trailing token %q", p.tok.text), Expr: src}
	}
	return &Selector{src: src, root: root, prog: compileProgram(root), key: extractKey(root)}, nil
}

// MustParse is Parse that panics on error, for tests and constants.
func MustParse(src string) *Selector {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// Matches reports whether the selector accepts the message (evaluates to
// TRUE; FALSE and UNKNOWN both reject, per JMS).
func (s *Selector) Matches(src Source) bool {
	return s.Eval(src) == TriTrue
}

// Eval returns the three-valued result of the selector on the message,
// using the compiled program.
func (s *Selector) Eval(src Source) Tri {
	if s == nil || s.root == nil {
		return TriTrue
	}
	if s.prog != nil {
		return s.prog.Eval(src)
	}
	return s.root.evalBool(src)
}

// EvalInterpreted returns the three-valued result using the tree-walking
// evaluator. It exists so tests can prove the compiled program and the
// interpreter agree on every input.
func (s *Selector) EvalInterpreted(src Source) Tri {
	if s == nil || s.root == nil {
		return TriTrue
	}
	return s.root.evalBool(src)
}

// Compiled returns the selector's compiled program (nil only for the
// match-everything empty selector).
func (s *Selector) Compiled() *Program {
	if s == nil {
		return nil
	}
	return s.prog
}

// AlwaysTrue reports whether the selector accepts every message: the empty
// selector, or one whose expression folds to a constant TRUE. The broker
// places such subscriptions on a fast path that skips evaluation.
func (s *Selector) AlwaysTrue() bool {
	if s == nil || s.root == nil {
		return true
	}
	t, const_ := s.prog.ConstVerdict()
	return const_ && t == TriTrue
}

// Complexity reports the AST node count, used by the simulation's CPU cost
// model to charge selector evaluation time.
func (s *Selector) Complexity() int {
	if s == nil || s.root == nil {
		return 0
	}
	return s.root.nodes()
}

// String returns the original selector text.
func (s *Selector) String() string {
	if s == nil {
		return ""
	}
	return s.src
}
