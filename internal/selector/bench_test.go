package selector

import (
	"testing"

	"gridmon/internal/message"
)

// Micro-benchmarks comparing the tree-walking interpreter with the
// compiled program on the paper's selector ("id<10000") and on a complex
// multi-clause selector. Run with:
//
//	go test ./internal/selector -bench=. -benchmem

const benchComplexExpr = "id < 10000 AND (region IN ('us', 'eu') OR priority BETWEEN 3 AND 7) " +
	"AND name LIKE 'gen-%' AND JMSPriority >= 2 AND load * 1.5 < 900.0"

func benchMsg() *message.Message {
	m := message.NewMap()
	m.Priority = 4
	m.SetProperty("id", message.Int(512))
	m.SetProperty("region", message.String("eu"))
	m.SetProperty("priority", message.Int(5))
	m.SetProperty("name", message.String("gen-17"))
	m.SetProperty("load", message.Double(400))
	return m
}

func BenchmarkParseSimple(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse("id < 10000"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseComplex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchComplexExpr); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEval(b *testing.B, expr string, interpreted bool) {
	b.Helper()
	sel := MustParse(expr)
	m := benchMsg()
	if sel.Eval(m) != sel.EvalInterpreted(m) {
		b.Fatal("evaluators disagree")
	}
	b.ReportAllocs()
	b.ResetTimer()
	if interpreted {
		for i := 0; i < b.N; i++ {
			if sel.EvalInterpreted(m) != TriTrue {
				b.Fatal("no match")
			}
		}
		return
	}
	for i := 0; i < b.N; i++ {
		if !sel.Matches(m) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkMatchSimpleInterpreted(b *testing.B) { benchEval(b, "id < 10000", true) }
func BenchmarkMatchSimpleCompiled(b *testing.B)    { benchEval(b, "id < 10000", false) }

func BenchmarkMatchComplexInterpreted(b *testing.B) { benchEval(b, benchComplexExpr, true) }
func BenchmarkMatchComplexCompiled(b *testing.B)    { benchEval(b, benchComplexExpr, false) }
