package selector

import (
	"math"

	"gridmon/internal/predindex"
)

var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)

// This file extracts the *required key* of a selector for the
// content-based matching index (internal/predindex): a conjunct the
// selector cannot evaluate TRUE without. Extraction is deliberately
// conservative — it may only widen (an over-wide key just costs extra
// candidates, which the compiled program rejects), never narrow (a
// too-narrow key would drop messages). The rules, mirroring the JMS
// evaluator in eval.go:
//
//   - `attr = literal` (either side order): Eq on the literal's
//     canonical value. All numerics canonicalize through float64
//     because mixed-type JMS comparison promotes through double, so
//     every pair of values the evaluator can call equal hashes to the
//     same bucket (see predindex.KNum).
//   - `attr < c`, `<=`, `>`, `>=` with a numeric constant: a Range
//     widened to the inclusive interval — strict bounds are kept
//     closed so float rounding can never exclude a true match.
//   - ordering on a non-numeric constant: JMS strings and booleans
//     support only equality, the comparison is always UNKNOWN → Never.
//   - any comparison against a NULL constant: always UNKNOWN → Never.
//   - `=` or an ordering against a NaN constant (`0.0/0.0` folds to
//     one): IEEE says NaN compares false to everything, so the
//     predicate is always FALSE → Never (RangeKey degrades NaN bounds
//     itself). `<>` NaN stays Residual — it is TRUE for any numeric.
//   - `attr BETWEEN lo AND hi` with constant numeric bounds: Range.
//   - `attr IN (...)`: multi-valued string Eq.
//   - bare boolean identifier: Eq on TRUE.
//   - AND combines via predindex.And (either side's key is required),
//     OR via predindex.Or (must admit both sides).
//   - NOT, LIKE, IS [NOT] NULL, identifier-vs-identifier comparisons,
//     `<>`: Residual (scanned linearly).
//   - constant subtrees: TRUE → Residual (always a candidate — the
//     broker's fast path catches these before the index anyway),
//     FALSE/UNKNOWN → Never.

// RequiredKey returns the selector's extracted key, computed once at
// Parse time. The zero selector (match-everything) is Residual.
func (s *Selector) RequiredKey() predindex.Key {
	if s == nil {
		return predindex.ResidualKey()
	}
	return s.key
}

// ProbeValue resolves one identifier of a message source into the
// canonical predindex value domain, for probing a matching index built
// over selector keys. ok=false means NULL, absent, or a Bytes value —
// none of which any Eq/Range conjunct can accept.
func ProbeValue(src Source, name string) (predindex.Value, bool) {
	mv, ok := src.SelectorField(name)
	if !ok {
		return predindex.Value{}, false
	}
	switch v := fromMessage(mv); v.kind {
	case vBool:
		return predindex.Boolean(v.b), true
	case vLong:
		return predindex.Num(float64(v.i)), true
	case vDouble:
		return predindex.Num(v.f), true
	case vString:
		return predindex.Str(v.s), true
	}
	return predindex.Value{}, false
}

func extractKey(e expr) predindex.Key {
	if e == nil {
		return predindex.ResidualKey()
	}
	// Arithmetic in boolean position is constant FALSE (never TRUE)
	// without evaluating operands, exactly as compileBool treats it.
	switch e.(type) {
	case *arithExpr, *negExpr:
		return predindex.NeverKey()
	}
	if isConst(e) {
		if boolCtxTri(e) == TriTrue {
			return predindex.ResidualKey()
		}
		return predindex.NeverKey() // constant FALSE or UNKNOWN
	}
	switch v := e.(type) {
	case *identExpr:
		// TRUE only when the field is boolean true.
		return predindex.EqKey(v.name, predindex.Boolean(true))
	case *andExpr:
		return predindex.And(extractKey(v.l), extractKey(v.r))
	case *orExpr:
		return predindex.Or(extractKey(v.l), extractKey(v.r))
	case *cmpExpr:
		return extractCmp(v)
	case *betweenExpr:
		return extractBetween(v)
	case *inExpr:
		if v.not || len(v.set) == 0 {
			return predindex.ResidualKey()
		}
		vals := make([]predindex.Value, len(v.set))
		for i, s := range v.set {
			vals[i] = predindex.Str(s)
		}
		return predindex.EqKey(v.ident, vals...)
	}
	// notExpr, likeExpr, isNullExpr: no required key.
	return predindex.ResidualKey()
}

func extractCmp(v *cmpExpr) predindex.Key {
	var attr string
	var c val
	var fieldLeft bool
	li, lIdent := v.l.(*identExpr)
	ri, rIdent := v.r.(*identExpr)
	switch {
	case lIdent && isConst(v.r):
		attr, c, fieldLeft = li.name, v.r.evalVal(nil), true
	case isConst(v.l) && rIdent:
		attr, c = ri.name, v.l.evalVal(nil)
	default:
		return predindex.ResidualKey()
	}
	if c.kind == vNull {
		// Comparison with NULL is UNKNOWN for every input.
		return predindex.NeverKey()
	}
	switch v.op {
	case "=":
		switch c.kind {
		case vLong:
			return predindex.EqKey(attr, predindex.Num(float64(c.i)))
		case vDouble:
			if c.f != c.f {
				// `attr = NaN` is FALSE for every input (IEEE: NaN equals
				// nothing, cmpOrdered agrees) — and a NaN bucket could
				// never be probed anyway.
				return predindex.NeverKey()
			}
			return predindex.EqKey(attr, predindex.Num(c.f))
		case vString:
			return predindex.EqKey(attr, predindex.Str(c.s))
		case vBool:
			return predindex.EqKey(attr, predindex.Boolean(c.b))
		}
		return predindex.ResidualKey()
	case "<", "<=", ">", ">=":
		if !c.isNumeric() {
			// Ordering exists only between numerics in JMS; with a
			// string/bool constant the comparison is always UNKNOWN.
			return predindex.NeverKey()
		}
		b := c.asDouble()
		// The constant bounds the field from above when the field is on
		// the small side of the operator.
		ltOp := v.op == "<" || v.op == "<="
		if fieldLeft == ltOp {
			return predindex.RangeKey(attr, negInf, b)
		}
		return predindex.RangeKey(attr, b, posInf)
	}
	// "<>" can be TRUE for almost any value.
	return predindex.ResidualKey()
}

func extractBetween(v *betweenExpr) predindex.Key {
	ei, ok := v.e.(*identExpr)
	if v.not || !ok || !isConst(v.lo) || !isConst(v.hi) {
		return predindex.ResidualKey()
	}
	lo, hi := v.lo.evalVal(nil), v.hi.evalVal(nil)
	if lo.kind == vNull || hi.kind == vNull {
		return predindex.NeverKey() // NULL bound: always UNKNOWN
	}
	if !lo.isNumeric() || !hi.isNumeric() {
		return predindex.NeverKey() // non-numeric bound: always UNKNOWN
	}
	return predindex.RangeKey(ei.name, lo.asDouble(), hi.asDouble())
}
