package selector

import "gridmon/internal/message"

// This file implements the selector compilation pass. Parse builds an AST
// (eval.go) and then flattens it into a Program: a compact instruction
// slice executed by a small stack machine over unboxed vals, with no
// per-node interface dispatch. The compiler performs two optimisations on
// the way down:
//
//   - constant folding: literal-only subtrees are evaluated once at
//     compile time and emitted as a single constant push;
//   - property-slot pre-resolution: identifier names are resolved against
//     the JMS header schema at compile time, so evaluating JMSPriority or
//     JMSTimestamp against a *message.Message is a direct field load
//     instead of a string switch per message.
//
// The compiled evaluator is semantically bit-identical to the interpreted
// one (EvalInterpreted), including three-valued NULL propagation and the
// interpreter's corner behaviours (an arithmetic expression used as a
// boolean condition is FALSE, never UNKNOWN, and never evaluates its
// operands). The conformance suite in conformance_test.go runs every case
// against both evaluators.

type opcode uint8

const (
	opConst    opcode = iota // push consts[a]
	opField                  // push the value of field slots[a]
	opNot                    // pop v; push NOT triOf(v)
	opAnd                    // pop r, l; push triOf(l) AND triOf(r)
	opOr                     // pop r, l; push triOf(l) OR triOf(r)
	opJmpFalse               // if triOf(top) is FALSE jump to a (top stays)
	opJmpTrue                // if triOf(top) is TRUE jump to a (top stays)
	opToVal                  // pop v; push triToVal(triOf(v)) — value-context normalisation
	opCmp                    // pop r, l; push comparison verdict; a is a cmpCode
	opAdd                    // pop r, l; push l+r
	opSub                    // pop r, l; push l-r
	opMul                    // pop r, l; push l*r
	opDivOp                  // pop r, l; push l/r
	opNeg                    // pop v; push -v
	opBetween                // pop hi, lo, v; push BETWEEN verdict; not flag honoured
	opIn                     // push IN verdict for slots[b] against inSets[a]
	opLike                   // push LIKE verdict for slots[b] against matchers[a]
	opIsNull                 // push IS NULL verdict for slots[b] (raw field access)

	// Fused forms for the dominant selector shapes: they skip the operand
	// pushes entirely.
	opCmpFC     // push slots[a] CMP consts[b]; aux is the cmpCode
	opCmpCF     // push consts[b] CMP slots[a]; aux is the cmpCode
	opCmpFF     // push slots[a] CMP slots[b]; aux is the cmpCode
	opBetweenIC // push slots[a] BETWEEN consts[b] AND consts[b+1]; not flag honoured
)

// cmpCode is a pre-resolved comparison operator.
type cmpCode uint8

const (
	cmpEQ cmpCode = iota
	cmpNE
	cmpLT
	cmpLE
	cmpGT
	cmpGE
	cmpBad // unrecognised operator string: always UNKNOWN, like cmpOrdered
)

func cmpCodeOf(op string) cmpCode {
	switch op {
	case "=":
		return cmpEQ
	case "<>":
		return cmpNE
	case "<":
		return cmpLT
	case "<=":
		return cmpLE
	case ">":
		return cmpGT
	case ">=":
		return cmpGE
	}
	return cmpBad
}

// headerSlot pre-resolves the JMS header pseudo-properties a selector may
// reference; hdrNone means the identifier is a user property.
type headerSlot uint8

const (
	hdrNone headerSlot = iota
	hdrPriority
	hdrTimestamp
	hdrMessageID
	hdrCorrelationID
	hdrType
	hdrDeliveryMode
	hdrRedelivered
)

func headerSlotOf(name string) headerSlot {
	switch name {
	case "JMSPriority":
		return hdrPriority
	case "JMSTimestamp":
		return hdrTimestamp
	case "JMSMessageID":
		return hdrMessageID
	case "JMSCorrelationID":
		return hdrCorrelationID
	case "JMSType":
		return hdrType
	case "JMSDeliveryMode":
		return hdrDeliveryMode
	case "JMSRedelivered":
		return hdrRedelivered
	}
	return hdrNone
}

type fieldSlot struct {
	name string
	hdr  headerSlot
}

type ins struct {
	op  opcode
	not bool  // BETWEEN/IN/LIKE/IS NULL negation
	aux uint8 // cmpCode for fused comparisons
	a   int32
	b   int32
}

// Program is the compiled form of a selector.
type Program struct {
	ins      []ins
	consts   []val
	slots    []fieldSlot
	inSets   [][]string
	matchers []*likeMatcher
	maxStack int

	// fc short-circuits the instruction loop for single-comparison
	// programs ("id < 10000" and friends), the dominant selector shape in
	// the paper's workload.
	fc *fastCmp
}

// fastCmp is a pre-decoded `field OP constant` (or `constant OP field`)
// comparison.
type fastCmp struct {
	slot      int32
	code      cmpCode
	c         val
	fieldLeft bool
}

// triOf classifies a runtime value as a boolean condition, with the same
// rules litExpr.evalBool and identExpr.evalBool apply: booleans are their
// value, NULL is UNKNOWN, anything else is FALSE.
func triOf(v val) Tri {
	switch v.kind {
	case vBool:
		if v.b {
			return TriTrue
		}
		return TriFalse
	case vNull:
		return TriUnknown
	}
	return TriFalse
}

// --- compiler ---

type compiler struct {
	p     *Program
	depth int // current stack depth during emission
}

func compileProgram(root expr) *Program {
	c := &compiler{p: &Program{}}
	c.compileBool(root)
	p := c.p
	if len(p.ins) == 1 {
		switch p.ins[0].op {
		case opCmpFC:
			p.fc = &fastCmp{slot: p.ins[0].a, code: cmpCode(p.ins[0].aux), c: p.consts[p.ins[0].b], fieldLeft: true}
		case opCmpCF:
			p.fc = &fastCmp{slot: p.ins[0].a, code: cmpCode(p.ins[0].aux), c: p.consts[p.ins[0].b]}
		}
	}
	return p
}

func (c *compiler) emit(i ins, delta int) int {
	c.p.ins = append(c.p.ins, i)
	c.depth += delta
	if c.depth > c.p.maxStack {
		c.p.maxStack = c.depth
	}
	return len(c.p.ins) - 1
}

func (c *compiler) constIdx(v val) int32 {
	for i, cv := range c.p.consts {
		if cv == v {
			return int32(i)
		}
	}
	c.p.consts = append(c.p.consts, v)
	return int32(len(c.p.consts) - 1)
}

func (c *compiler) slotIdx(name string) int32 {
	for i, s := range c.p.slots {
		if s.name == name {
			return int32(i)
		}
	}
	c.p.slots = append(c.p.slots, fieldSlot{name: name, hdr: headerSlotOf(name)})
	return int32(len(c.p.slots) - 1)
}

// isConst reports whether a subtree references no message state, making it
// foldable at compile time. IN/LIKE/IS NULL always read a field; every
// other node is constant when its children are.
func isConst(e expr) bool {
	switch v := e.(type) {
	case *litExpr:
		return true
	case *notExpr:
		return isConst(v.inner)
	case *andExpr:
		return isConst(v.l) && isConst(v.r)
	case *orExpr:
		return isConst(v.l) && isConst(v.r)
	case *cmpExpr:
		return isConst(v.l) && isConst(v.r)
	case *arithExpr:
		return isConst(v.l) && isConst(v.r)
	case *negExpr:
		return isConst(v.inner)
	case *betweenExpr:
		return isConst(v.e) && isConst(v.lo) && isConst(v.hi)
	}
	return false
}

// boolCtxTri evaluates a constant subtree as a boolean condition, with the
// interpreter's rule that arithmetic in boolean position is FALSE.
func boolCtxTri(e expr) Tri {
	switch e.(type) {
	case *arithExpr, *negExpr:
		return TriFalse
	}
	return e.evalBool(nil)
}

// compileBool emits code whose final stack value, classified through
// triOf, equals node.evalBool. Constant subtrees fold to one push.
func (c *compiler) compileBool(e expr) {
	// Arithmetic in boolean position is FALSE without evaluating its
	// operands, exactly as arithExpr/negExpr.evalBool behave.
	switch e.(type) {
	case *arithExpr, *negExpr:
		c.emit(ins{op: opConst, a: c.constIdx(boolVal(false))}, 1)
		return
	}
	if isConst(e) {
		c.emit(ins{op: opConst, a: c.constIdx(triToVal(e.evalBool(nil)))}, 1)
		return
	}
	switch v := e.(type) {
	case *litExpr:
		c.emit(ins{op: opConst, a: c.constIdx(v.v)}, 1)
	case *identExpr:
		c.emit(ins{op: opField, a: c.slotIdx(v.name)}, 1)
	case *notExpr:
		c.compileBool(v.inner)
		c.emit(ins{op: opNot}, 0)
	case *andExpr:
		// A constant left operand folds: FALSE short-circuits the whole
		// conjunction (the interpreter never evaluates the right side
		// either); otherwise the constant combines with the right side
		// without a jump.
		if isConst(v.l) {
			lt := boolCtxTri(v.l)
			if lt == TriFalse {
				c.emit(ins{op: opConst, a: c.constIdx(boolVal(false))}, 1)
				return
			}
			c.emit(ins{op: opConst, a: c.constIdx(triToVal(lt))}, 1)
			c.compileBool(v.r)
			c.emit(ins{op: opAnd}, -1)
			return
		}
		// Short-circuit: a FALSE left operand jumps over the right side
		// and the combine, leaving itself as the result (its triOf is
		// FALSE, which every consumer classifies identically).
		c.compileBool(v.l)
		j := c.emit(ins{op: opJmpFalse}, 0)
		c.compileBool(v.r)
		c.emit(ins{op: opAnd}, -1)
		c.p.ins[j].a = int32(len(c.p.ins))
	case *orExpr:
		if isConst(v.l) {
			lt := boolCtxTri(v.l)
			if lt == TriTrue {
				c.emit(ins{op: opConst, a: c.constIdx(boolVal(true))}, 1)
				return
			}
			c.emit(ins{op: opConst, a: c.constIdx(triToVal(lt))}, 1)
			c.compileBool(v.r)
			c.emit(ins{op: opOr}, -1)
			return
		}
		c.compileBool(v.l)
		j := c.emit(ins{op: opJmpTrue}, 0)
		c.compileBool(v.r)
		c.emit(ins{op: opOr}, -1)
		c.p.ins[j].a = int32(len(c.p.ins))
	case *cmpExpr:
		code := uint8(cmpCodeOf(v.op))
		li, lIdent := v.l.(*identExpr)
		ri, rIdent := v.r.(*identExpr)
		switch {
		case lIdent && isConst(v.r):
			c.emit(ins{op: opCmpFC, aux: code, a: c.slotIdx(li.name), b: c.constIdx(v.r.evalVal(nil))}, 1)
		case isConst(v.l) && rIdent:
			c.emit(ins{op: opCmpCF, aux: code, a: c.slotIdx(ri.name), b: c.constIdx(v.l.evalVal(nil))}, 1)
		case lIdent && rIdent:
			c.emit(ins{op: opCmpFF, aux: code, a: c.slotIdx(li.name), b: c.slotIdx(ri.name)}, 1)
		default:
			c.compileVal(v.l)
			c.compileVal(v.r)
			c.emit(ins{op: opCmp, a: int32(cmpCodeOf(v.op))}, -1)
		}
	case *betweenExpr:
		if ei, ok := v.e.(*identExpr); ok && isConst(v.lo) && isConst(v.hi) {
			// The bounds are force-appended so they sit adjacent.
			lo := int32(len(c.p.consts))
			c.p.consts = append(c.p.consts, v.lo.evalVal(nil), v.hi.evalVal(nil))
			c.emit(ins{op: opBetweenIC, not: v.not, a: c.slotIdx(ei.name), b: lo}, 1)
			return
		}
		c.compileVal(v.e)
		c.compileVal(v.lo)
		c.compileVal(v.hi)
		c.emit(ins{op: opBetween, not: v.not}, -2)
	case *inExpr:
		c.p.inSets = append(c.p.inSets, v.set)
		c.emit(ins{op: opIn, not: v.not, a: int32(len(c.p.inSets) - 1), b: c.slotIdx(v.ident)}, 1)
	case *likeExpr:
		c.p.matchers = append(c.p.matchers, v.matcher)
		c.emit(ins{op: opLike, not: v.not, a: int32(len(c.p.matchers) - 1), b: c.slotIdx(v.ident)}, 1)
	case *isNullExpr:
		c.emit(ins{op: opIsNull, not: v.not, b: c.slotIdx(v.ident)}, 1)
	default:
		panic("selector: compileBool of unknown node")
	}
}

// compileVal emits code whose final stack value equals node.evalVal.
func (c *compiler) compileVal(e expr) {
	if isConst(e) {
		c.emit(ins{op: opConst, a: c.constIdx(e.evalVal(nil))}, 1)
		return
	}
	switch v := e.(type) {
	case *litExpr:
		c.emit(ins{op: opConst, a: c.constIdx(v.v)}, 1)
	case *identExpr:
		c.emit(ins{op: opField, a: c.slotIdx(v.name)}, 1)
	case *arithExpr:
		c.compileVal(v.l)
		c.compileVal(v.r)
		var op opcode
		switch v.op {
		case '+':
			op = opAdd
		case '-':
			op = opSub
		case '*':
			op = opMul
		default:
			op = opDivOp
		}
		c.emit(ins{op: op}, -1)
	case *negExpr:
		c.compileVal(v.inner)
		c.emit(ins{op: opNeg}, 0)
	default:
		// Boolean-valued nodes in value position: evalVal is
		// triToVal(evalBool), which opToVal normalises.
		c.compileBool(e)
		c.emit(ins{op: opToVal}, 0)
	}
}

// --- evaluator ---

// loadField resolves one field slot to a runtime value. For
// *message.Message sources, pre-resolved headers skip the per-message
// string switch; other Source implementations fall back to SelectorField.
func (p *Program) loadField(m *message.Message, src Source, idx int32) val {
	s := &p.slots[idx]
	if m == nil {
		mv, ok := src.SelectorField(s.name)
		if !ok {
			return nullVal()
		}
		return fromMessage(mv)
	}
	switch s.hdr {
	case hdrPriority:
		return longVal(int64(m.Priority))
	case hdrTimestamp:
		return longVal(m.Timestamp)
	case hdrMessageID:
		return stringVal(m.ID)
	case hdrCorrelationID:
		return stringVal(m.CorrelationID)
	case hdrType:
		return stringVal(m.Type)
	case hdrDeliveryMode:
		if m.Mode == message.Persistent {
			return stringVal("PERSISTENT")
		}
		return stringVal("NON_PERSISTENT")
	case hdrRedelivered:
		return boolVal(m.Redelivered)
	}
	mv, ok := m.Property(s.name)
	if !ok {
		return nullVal()
	}
	return fromMessage(mv)
}

// cmpVals replicates cmpExpr.evalBool over two already-evaluated operands.
func cmpVals(code cmpCode, lv, rv val) Tri {
	if lv.kind == vNull || rv.kind == vNull {
		return TriUnknown
	}
	if lv.isNumeric() && rv.isNumeric() {
		if lv.kind == vLong && rv.kind == vLong {
			return cmpCoded(code, compareInt(lv.i, rv.i), true)
		}
		c, ordered := compareFloat(lv.asDouble(), rv.asDouble())
		return cmpCoded(code, c, ordered)
	}
	if lv.kind == vString && rv.kind == vString {
		switch code {
		case cmpEQ:
			return boolTri(lv.s == rv.s)
		case cmpNE:
			return boolTri(lv.s != rv.s)
		}
		return TriUnknown
	}
	if lv.kind == vBool && rv.kind == vBool {
		switch code {
		case cmpEQ:
			return boolTri(lv.b == rv.b)
		case cmpNE:
			return boolTri(lv.b != rv.b)
		}
		return TriUnknown
	}
	return TriUnknown
}

func cmpCoded(code cmpCode, c int, ordered bool) Tri {
	switch code {
	case cmpEQ:
		return boolTri(ordered && c == 0)
	case cmpNE:
		// IEEE/Java: NaN is unequal to everything, including itself.
		return boolTri(!ordered || c != 0)
	case cmpLT:
		return boolTri(ordered && c < 0)
	case cmpLE:
		return boolTri(ordered && c <= 0)
	case cmpGT:
		return boolTri(ordered && c > 0)
	case cmpGE:
		return boolTri(ordered && c >= 0)
	}
	return TriUnknown
}

func arithVals(op opcode, lv, rv val) val {
	if !lv.isNumeric() || !rv.isNumeric() {
		return nullVal()
	}
	if lv.kind == vLong && rv.kind == vLong {
		switch op {
		case opAdd:
			return longVal(lv.i + rv.i)
		case opSub:
			return longVal(lv.i - rv.i)
		case opMul:
			return longVal(lv.i * rv.i)
		case opDivOp:
			if rv.i == 0 {
				return nullVal()
			}
			return longVal(lv.i / rv.i)
		}
	}
	a, b := lv.asDouble(), rv.asDouble()
	switch op {
	case opAdd:
		return doubleVal(a + b)
	case opSub:
		return doubleVal(a - b)
	case opMul:
		return doubleVal(a * b)
	case opDivOp:
		return doubleVal(a / b)
	}
	return nullVal()
}

func betweenVals(not bool, v, lo, hi val) Tri {
	if v.kind == vNull || lo.kind == vNull || hi.kind == vNull {
		return TriUnknown
	}
	if !v.isNumeric() || !lo.isNumeric() || !hi.isNumeric() {
		return TriUnknown
	}
	cLo, loOrd := compareFloat(v.asDouble(), lo.asDouble())
	cHi, hiOrd := compareFloat(v.asDouble(), hi.asDouble())
	in := loOrd && hiOrd && cLo >= 0 && cHi <= 0 // a NaN operand is outside every interval
	if v.kind == vLong && lo.kind == vLong && hi.kind == vLong {
		in = v.i >= lo.i && v.i <= hi.i
	}
	if not {
		return boolTri(!in)
	}
	return boolTri(in)
}

// Eval runs the compiled program against a message source and returns the
// three-valued verdict. A nil or empty program matches every message.
func (p *Program) Eval(src Source) Tri {
	if p == nil || len(p.ins) == 0 {
		return TriTrue
	}
	m, _ := src.(*message.Message)
	if p.fc != nil {
		v := p.loadField(m, src, p.fc.slot)
		if p.fc.fieldLeft {
			return cmpVals(p.fc.code, v, p.fc.c)
		}
		return cmpVals(p.fc.code, p.fc.c, v)
	}
	var arr [16]val
	var stack []val
	if p.maxStack <= len(arr) {
		stack = arr[:]
	} else {
		stack = make([]val, p.maxStack)
	}
	sp := 0
	code := p.ins
	for pc := 0; pc < len(code); pc++ {
		in := &code[pc]
		switch in.op {
		case opConst:
			stack[sp] = p.consts[in.a]
			sp++
		case opField:
			stack[sp] = p.loadField(m, src, in.a)
			sp++
		case opNot:
			stack[sp-1] = triToVal(triNot(triOf(stack[sp-1])))
		case opAnd:
			sp--
			stack[sp-1] = triToVal(triAnd(triOf(stack[sp-1]), triOf(stack[sp])))
		case opOr:
			sp--
			stack[sp-1] = triToVal(triOr(triOf(stack[sp-1]), triOf(stack[sp])))
		case opJmpFalse:
			if triOf(stack[sp-1]) == TriFalse {
				pc = int(in.a) - 1
			}
		case opJmpTrue:
			if triOf(stack[sp-1]) == TriTrue {
				pc = int(in.a) - 1
			}
		case opToVal:
			stack[sp-1] = triToVal(triOf(stack[sp-1]))
		case opCmp:
			sp--
			stack[sp-1] = triToVal(cmpVals(cmpCode(in.a), stack[sp-1], stack[sp]))
		case opAdd, opSub, opMul, opDivOp:
			sp--
			stack[sp-1] = arithVals(in.op, stack[sp-1], stack[sp])
		case opNeg:
			v := stack[sp-1]
			switch v.kind {
			case vLong:
				stack[sp-1] = longVal(-v.i)
			case vDouble:
				stack[sp-1] = doubleVal(-v.f)
			default:
				stack[sp-1] = nullVal()
			}
		case opBetween:
			sp -= 2
			stack[sp-1] = triToVal(betweenVals(in.not, stack[sp-1], stack[sp], stack[sp+1]))
		case opIn:
			v := p.loadField(m, src, in.b)
			var t Tri
			if v.kind != vString {
				t = TriUnknown
			} else {
				found := false
				for _, x := range p.inSets[in.a] {
					if x == v.s {
						found = true
						break
					}
				}
				if in.not {
					found = !found
				}
				t = boolTri(found)
			}
			stack[sp] = triToVal(t)
			sp++
		case opLike:
			v := p.loadField(m, src, in.b)
			var t Tri
			if v.kind != vString {
				t = TriUnknown
			} else {
				ok := p.matchers[in.a].match(v.s)
				if in.not {
					ok = !ok
				}
				t = boolTri(ok)
			}
			stack[sp] = triToVal(t)
			sp++
		case opCmpFC:
			v := p.loadField(m, src, in.a)
			stack[sp] = triToVal(cmpVals(cmpCode(in.aux), v, p.consts[in.b]))
			sp++
		case opCmpCF:
			v := p.loadField(m, src, in.a)
			stack[sp] = triToVal(cmpVals(cmpCode(in.aux), p.consts[in.b], v))
			sp++
		case opCmpFF:
			l := p.loadField(m, src, in.a)
			r := p.loadField(m, src, in.b)
			stack[sp] = triToVal(cmpVals(cmpCode(in.aux), l, r))
			sp++
		case opBetweenIC:
			v := p.loadField(m, src, in.a)
			stack[sp] = triToVal(betweenVals(in.not, v, p.consts[in.b], p.consts[in.b+1]))
			sp++
		case opIsNull:
			// IS NULL must see the raw property (a Bytes value is
			// non-null even though it is not selectable), so it goes
			// through SelectorField rather than the val domain.
			mv, ok := src.SelectorField(p.slots[in.b].name)
			isNull := !ok || mv.IsNull()
			if in.not {
				isNull = !isNull
			}
			stack[sp] = triToVal(boolTri(isNull))
			sp++
		}
	}
	return triOf(stack[sp-1])
}

// Matches reports whether the program accepts the message (TRUE verdict;
// FALSE and UNKNOWN both reject, per JMS).
func (p *Program) Matches(src Source) bool { return p.Eval(src) == TriTrue }

// ConstVerdict reports whether the program's verdict is independent of the
// message, and if so what it is. The broker uses this to place
// always-true selectors on the no-evaluation fast path.
func (p *Program) ConstVerdict() (Tri, bool) {
	if p == nil || len(p.ins) == 0 {
		return TriTrue, true
	}
	if len(p.ins) == 1 && p.ins[0].op == opConst {
		return triOf(p.consts[p.ins[0].a]), true
	}
	return TriFalse, false
}
