package fanout

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunExactlyOnce: every chunk index executes exactly once, for
// chunk counts below, at, and far above the worker bound.
func TestRunExactlyOnce(t *testing.T) {
	p := New(4)
	for _, chunks := range []int{0, 1, 2, 4, 7, 64, 1000} {
		var counts sync.Map
		p.Run(chunks, func(c int) {
			v, _ := counts.LoadOrStore(c, new(atomic.Int32))
			v.(*atomic.Int32).Add(1)
		})
		seen := 0
		counts.Range(func(k, v any) bool {
			seen++
			if n := v.(*atomic.Int32).Load(); n != 1 {
				t.Fatalf("chunks=%d: chunk %v ran %d times", chunks, k, n)
			}
			return true
		})
		if seen != chunks {
			t.Fatalf("chunks=%d: %d distinct chunks ran", chunks, seen)
		}
	}
}

// TestRunBlocksUntilComplete: Run must not return while any chunk is
// still executing (the broker's PubAck-after-fan-out contract).
func TestRunBlocksUntilComplete(t *testing.T) {
	p := New(4)
	var running atomic.Int32
	for i := 0; i < 50; i++ {
		p.Run(8, func(int) {
			running.Add(1)
			time.Sleep(100 * time.Microsecond)
			running.Add(-1)
		})
		if n := running.Load(); n != 0 {
			t.Fatalf("Run returned with %d chunks still running", n)
		}
	}
}

// TestRunParallelism: with real cores, chunks that block each other
// complete — proof that more than one goroutine executes a task. Two
// chunks rendezvous: each waits for the other to start, which can only
// resolve if they run concurrently. A timeout means the pool executed
// serially; only assert when we actually have 2 CPUs.
func TestRunParallelism(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	p := New(2)
	started := make(chan int, 2)
	done := make(chan struct{})
	go func() {
		p.Run(2, func(c int) {
			started <- c
			// Wait until both chunks have started (or give up).
			deadline := time.After(2 * time.Second)
			for {
				if len(started) == 2 {
					return
				}
				select {
				case <-deadline:
					return
				default:
					runtime.Gosched()
				}
			}
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run wedged")
	}
	if len(started) != 2 {
		t.Fatalf("%d chunks started", len(started))
	}
}

// TestWorkerIdleExit: pool workers exit after the idle timeout, so an
// idle broker costs no goroutines.
func TestWorkerIdleExit(t *testing.T) {
	p := New(4)
	p.Run(16, func(int) {})
	deadline := time.Now().Add(2 * time.Second)
	for p.live.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d workers still live after idle period", p.live.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentRunStress drives many submitters through one pool under
// the race detector: chunk accounting must stay exact with tasks
// overlapping and workers churning through idle exits.
func TestConcurrentRunStress(t *testing.T) {
	p := New(4)
	var total atomic.Int64
	var wg sync.WaitGroup
	const submitters, rounds, chunks = 8, 200, 5
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p.Run(chunks, func(int) { total.Add(1) })
			}
		}()
	}
	wg.Wait()
	if want := int64(submitters * rounds * chunks); total.Load() != want {
		t.Fatalf("executed %d chunks, want %d", total.Load(), want)
	}
}
