// Package fanout provides the bounded worker pool behind the broker's
// parallel fan-out engine. A large matched-target set is split into
// chunks — partitioned by connection at the call site, so per-connection
// delivery order is preserved by construction — and the chunks are
// executed by the submitting goroutine plus up to Workers()-1 pool
// workers.
//
// The pool is deliberately minimal and unkillable-safe:
//
//   - Run blocks until every chunk has executed, so a publish's fan-out
//     completes before its PubAck is emitted, exactly as in the serial
//     loop.
//   - Work distribution is best-effort. Task pointers are offered to a
//     bounded channel and workers are spawned lazily up to the limit; if
//     no worker is free the submitter simply executes the remaining
//     chunks itself. The pool can therefore never deadlock a publish —
//     worst case it degrades to the serial loop.
//   - Chunks are claimed through an atomic cursor, so a stale task
//     pointer left in the channel after its Run returned is harmless: a
//     worker that dequeues it finds the cursor exhausted and moves on.
//   - Idle workers exit after a short timeout; there is no Close. A
//     broker that stops publishing costs zero goroutines a moment later.
//
// The chunk function runs on multiple goroutines concurrently and must
// be safe for that (the broker's chunks touch only per-subscription and
// per-durable leaf locks, plus its thread-safe Env).
package fanout

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// workerIdle is how long a pool worker waits for a task before exiting.
const workerIdle = 100 * time.Millisecond

// Pool is a bounded worker pool for fan-out chunks. The zero value is
// not usable; call New.
type Pool struct {
	max   int32
	live  atomic.Int32
	tasks chan *task
}

// task is one Run invocation: a chunk cursor claimed atomically by
// whoever (submitter or worker) gets there first, and a WaitGroup the
// submitter blocks on.
type task struct {
	chunks int32
	next   atomic.Int32
	fn     func(chunk int)
	wg     sync.WaitGroup
}

// New returns a pool running at most workers concurrent helpers
// (including the submitting goroutine's own share of the work).
// workers <= 0 means GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{max: int32(workers), tasks: make(chan *task, workers)}
}

// Workers reports the pool's concurrency bound, the natural chunk-count
// cap for callers partitioning work.
func (p *Pool) Workers() int { return int(p.max) }

// Run executes fn(0..chunks-1), each chunk exactly once, spreading
// chunks across the submitting goroutine and available pool workers. It
// returns only after every chunk has completed. chunks <= 1 runs inline
// with no synchronization at all.
func (p *Pool) Run(chunks int, fn func(chunk int)) {
	if chunks <= 1 {
		if chunks == 1 {
			fn(0)
		}
		return
	}
	t := &task{chunks: int32(chunks), fn: fn}
	t.wg.Add(chunks)
	// Offer the task to at most chunks-1 helpers (the submitter works
	// too). Non-blocking: a full channel means every worker slot already
	// has work queued, and the submitter will absorb whatever is left.
	offers := chunks - 1
	if offers > int(p.max) {
		offers = int(p.max)
	}
	for i := 0; i < offers; i++ {
		select {
		case p.tasks <- t:
			p.ensureWorker()
		default:
			i = offers // channel full; stop offering
		}
	}
	t.drain()
	t.wg.Wait()
}

// drain claims and executes chunks until the cursor is exhausted.
func (t *task) drain() {
	for {
		i := t.next.Add(1) - 1
		if i >= t.chunks {
			return
		}
		t.fn(int(i))
		t.wg.Done()
	}
}

// ensureWorker spawns a worker goroutine unless the pool is already at
// its bound.
func (p *Pool) ensureWorker() {
	for {
		n := p.live.Load()
		if n >= p.max {
			return
		}
		if p.live.CompareAndSwap(n, n+1) {
			go p.worker()
			return
		}
	}
}

// worker executes queued tasks until it has been idle for workerIdle.
// Exit closes the obvious race with a submitter that enqueued just
// before the worker decremented live: the final non-blocking poll runs
// after the decrement, and the submitter's ensureWorker runs after its
// enqueue — so either the poll sees the task, or ensureWorker sees the
// decremented count and spawns a replacement.
func (p *Pool) worker() {
	timer := time.NewTimer(workerIdle)
	defer timer.Stop()
	for {
		select {
		case t := <-p.tasks:
			t.drain()
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(workerIdle)
		case <-timer.C:
			p.live.Add(-1)
			select {
			case t := <-p.tasks:
				p.live.Add(1)
				t.drain()
				timer.Reset(workerIdle)
			default:
				return
			}
		}
	}
}
