package wal

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"gridmon/internal/walfs"
)

// collect opens the log and gathers every replayed payload.
func collect(t *testing.T, fsys walfs.FS, opts Options) (*Log, []string, RecoverInfo) {
	t.Helper()
	var got []string
	l, info, err := Open(fsys, opts, func(rec []byte) error {
		got = append(got, string(rec))
		return nil
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, got, info
}

func appendAll(t *testing.T, l *Log, recs ...string) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatalf("Append(%q): %v", r, err)
		}
	}
}

func wantRecords(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRoundtrip(t *testing.T) {
	for _, fsync := range []bool{false, true} {
		t.Run(fmt.Sprintf("fsync=%v", fsync), func(t *testing.T) {
			m := walfs.NewMem()
			l, got, _ := collect(t, m, Options{Fsync: fsync})
			wantRecords(t, got)
			appendAll(t, l, "alpha", "beta", "gamma")
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l2, got, info := collect(t, m, Options{Fsync: fsync})
			defer l2.Close()
			wantRecords(t, got, "alpha", "beta", "gamma")
			if info.CleanStart {
				t.Fatal("plain Close must not count as a clean start")
			}
			if info.Records != 3 || info.TruncatedTail != 0 {
				t.Fatalf("info = %+v", info)
			}
		})
	}
}

func TestRotationAndReplay(t *testing.T) {
	m := walfs.NewMem()
	l, _, _ := collect(t, m, Options{SegmentBytes: 64})
	var want []string
	for i := 0; i < 40; i++ {
		r := fmt.Sprintf("record-%02d", i)
		want = append(want, r)
		appendAll(t, l, r)
	}
	_ = l.Close()
	names, _ := m.List()
	segs := 0
	for _, n := range names {
		if strings.HasPrefix(n, "seg-") {
			segs++
		}
	}
	if segs < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %v", names)
	}
	l2, got, info := collect(t, m, Options{})
	defer l2.Close()
	wantRecords(t, got, want...)
	if info.Segments != segs {
		t.Fatalf("info.Segments = %d, want %d", info.Segments, segs)
	}
}

func TestSnapshotCompactsAndPrunes(t *testing.T) {
	m := walfs.NewMem()
	l, _, _ := collect(t, m, Options{SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		appendAll(t, l, fmt.Sprintf("old-%02d", i))
	}
	// The owner's compacted state: two records replacing twenty.
	err := l.Snapshot(func(emit func([]byte) error) error {
		if err := emit([]byte("state-a")); err != nil {
			return err
		}
		return emit([]byte("state-b"))
	})
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	appendAll(t, l, "tail-1", "tail-2")
	if got := l.Stats().Snapshots; got != 1 {
		t.Fatalf("Stats.Snapshots = %d", got)
	}
	_ = l.Close()

	names, _ := m.List()
	for _, n := range names {
		if strings.HasPrefix(n, "seg-") && strings.Contains(n, "0000000000000000") {
			t.Fatalf("snapshot did not prune old segments: %v", names)
		}
	}
	l2, got, info := collect(t, m, Options{})
	defer l2.Close()
	wantRecords(t, got, "state-a", "state-b", "tail-1", "tail-2")
	if info.SnapshotGen == 0 {
		t.Fatalf("info = %+v, want a snapshot generation", info)
	}
}

func TestCloseCleanSkipsScan(t *testing.T) {
	m := walfs.NewMem()
	l, _, _ := collect(t, m, Options{})
	appendAll(t, l, "a", "b", "c")
	err := l.CloseClean(func(emit func([]byte) error) error {
		return emit([]byte("a+b+c"))
	})
	if err != nil {
		t.Fatalf("CloseClean: %v", err)
	}
	l2, got, info := collect(t, m, Options{})
	wantRecords(t, got, "a+b+c")
	if !info.CleanStart {
		t.Fatal("expected CleanStart after CloseClean")
	}
	if !l2.Stats().CleanStart {
		t.Fatal("Stats.CleanStart not surfaced")
	}
	// The marker is consumed: a crash after this open must not be
	// mistaken for another clean shutdown.
	names, _ := m.List()
	for _, n := range names {
		if n == cleanMarker {
			t.Fatalf("marker survived open: %v", names)
		}
	}
	appendAll(t, l2, "d")
	_ = l2.Close()
	l3, got, info := collect(t, m, Options{})
	defer l3.Close()
	wantRecords(t, got, "a+b+c", "d")
	if info.CleanStart {
		t.Fatal("second open must not report a clean start")
	}
}

func TestStaleMarkerIgnored(t *testing.T) {
	m := walfs.NewMem()
	l, _, _ := collect(t, m, Options{})
	appendAll(t, l, "a")
	if err := l.CloseClean(func(emit func([]byte) error) error { return emit([]byte("a")) }); err != nil {
		t.Fatal(err)
	}
	// Resurrect a stale marker by hand, then write more data the way a
	// crashed process would have: the marker's covered segment is no
	// longer empty, so it must be distrusted.
	l2, _, _ := collect(t, m, Options{})
	appendAll(t, l2, "b")
	_ = l2.Close()
	var gen uint64
	names, _ := m.List()
	for _, n := range names {
		if g, ok := parseNum(n, "snap-", ""); ok {
			gen = g
		}
	}
	f, _ := m.OpenFile(cleanMarker, true)
	_, _ = f.Write([]byte(fmt.Sprintf("%016x\n", gen)))
	_ = f.Close()

	l3, got, info := collect(t, m, Options{})
	defer l3.Close()
	wantRecords(t, got, "a", "b")
	if info.CleanStart {
		t.Fatal("stale marker over a non-empty segment must not count as clean")
	}
}

// TestTornTailEveryBoundary is the satellite torn-tail table test: a
// log whose final record is truncated at every possible byte boundary,
// or corrupted at every byte offset, must replay exactly the records
// before it and keep working.
func TestTornTailEveryBoundary(t *testing.T) {
	prefix := []string{"first", "second", "third", "fourth"}
	last := "last-record-payload"

	build := func(t *testing.T) (*walfs.Mem, string, int64, int64) {
		m := walfs.NewMem()
		l, _, _ := collect(t, m, Options{})
		appendAll(t, l, prefix...)
		appendAll(t, l, last)
		_ = l.Close()
		names, _ := m.List()
		var seg string
		for _, n := range names {
			if strings.HasPrefix(n, "seg-") {
				seg = n
			}
		}
		f, err := m.OpenFile(seg, false)
		if err != nil {
			t.Fatal(err)
		}
		size, _ := f.Size()
		_ = f.Close()
		lastStart := size - int64(headerSize+len(last))
		return m, seg, lastStart, size
	}

	t.Run("truncate", func(t *testing.T) {
		_, _, lastStart, size := build(t)
		for cut := lastStart; cut < size; cut++ {
			m, seg, _, _ := build(t)
			f, _ := m.OpenFile(seg, false)
			if err := f.Truncate(cut); err != nil {
				t.Fatal(err)
			}
			_ = f.Close()
			l, got, info := collect(t, m, Options{})
			wantRecords(t, got, prefix...)
			if want := uint64(cut - lastStart); info.TruncatedTail != want {
				t.Fatalf("cut=%d: TruncatedTail = %d, want %d", cut, info.TruncatedTail, want)
			}
			// The log stays usable: the torn tail is gone for good.
			appendAll(t, l, "after")
			_ = l.Close()
			l2, got, _ := collect(t, m, Options{})
			wantRecords(t, got, append(append([]string{}, prefix...), "after")...)
			_ = l2.Close()
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		_, _, lastStart, size := build(t)
		for off := lastStart; off < size; off++ {
			m, seg, _, _ := build(t)
			f, _ := m.OpenFile(seg, false)
			buf := make([]byte, 1)
			if _, err := f.ReadAt(buf, off); err != nil {
				t.Fatal(err)
			}
			flipped := []byte{buf[0] ^ 0xff}
			// walfs files are append-only, so corrupt by truncate+rewrite.
			rest := make([]byte, size-off-1)
			if size-off-1 > 0 {
				if _, err := f.ReadAt(rest, off+1); err != nil {
					t.Fatal(err)
				}
			}
			_ = f.Truncate(off)
			_, _ = f.Write(flipped)
			_, _ = f.Write(rest)
			_ = f.Close()
			l, got, info := collect(t, m, Options{})
			wantRecords(t, got, prefix...)
			if info.TruncatedTail == 0 {
				t.Fatalf("off=%d: corrupted tail not reported as truncated", off)
			}
			_ = l.Close()
		}
	})
}

func TestCorruptionInNonFinalSegmentIsFatal(t *testing.T) {
	m := walfs.NewMem()
	l, _, _ := collect(t, m, Options{SegmentBytes: 32})
	for i := 0; i < 10; i++ {
		appendAll(t, l, fmt.Sprintf("rec-%02d", i))
	}
	_ = l.Close()
	names, _ := m.List()
	var first string
	for _, n := range names {
		if strings.HasPrefix(n, "seg-") {
			first = n
			break
		}
	}
	f, _ := m.OpenFile(first, false)
	size, _ := f.Size()
	_ = f.Truncate(size - 1) // tear a non-final segment
	_ = f.Close()
	_, _, err := Open(m, Options{}, func([]byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "not final segment") {
		t.Fatalf("Open = %v, want mid-log corruption error", err)
	}
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	m := walfs.NewMem()
	l, _, _ := collect(t, m, Options{Fsync: true, SegmentBytes: 256})
	const workers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%02d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.RecordsAppended != workers*each {
		t.Fatalf("RecordsAppended = %d", st.RecordsAppended)
	}
	if st.Fsyncs >= st.RecordsAppended {
		t.Logf("no group-commit coalescing observed (fsyncs=%d, records=%d) — legal but unexpected", st.Fsyncs, st.RecordsAppended)
	}
	_ = l.Close()
	_, got, _ := collect(t, m, Options{})
	seen := map[string]int{}
	for _, r := range got {
		seen[r]++
	}
	if len(got) != workers*each {
		t.Fatalf("replayed %d records, want %d", len(got), workers*each)
	}
	// Per-worker order is preserved even though workers interleave.
	pos := map[int]int{}
	for _, r := range got {
		var w, i int
		if _, err := fmt.Sscanf(r, "w%d-%d", &w, &i); err != nil {
			t.Fatalf("bad record %q", r)
		}
		if seen[r] != 1 {
			t.Fatalf("record %q appears %d times", r, seen[r])
		}
		if i != pos[w] {
			t.Fatalf("worker %d records out of order: got %d, want %d", w, i, pos[w])
		}
		pos[w]++
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	m := walfs.NewMem()
	l, _, _ := collect(t, m, Options{})
	_ = l.Close()
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v", err)
	}
	if err := l.Snapshot(func(func([]byte) error) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after Close = %v", err)
	}
}

// TestCrashPointSweep drives a fixed workload against the
// fault-injecting FS, failing at every possible I/O, under all four
// crash worlds (unsynced bytes lost or kept × fsync on or off), and
// asserts recovery is always prefix-consistent and never loses a write
// that was acknowledged under fsync.
func TestCrashPointSweep(t *testing.T) {
	const n = 24
	rec := func(i int) string { return fmt.Sprintf("op-%03d", i) }

	// workload appends n records with a mid-stream snapshot; it stops
	// at the first error (the log is poisoned anyway) and returns how
	// many appends were acknowledged.
	workload := func(fsys walfs.FS, fsync bool) (acked int) {
		l, _, err := Open(fsys, Options{Fsync: fsync, SegmentBytes: 96}, func([]byte) error { return nil })
		if err != nil {
			return 0
		}
		defer l.Close()
		for i := 0; i < n; i++ {
			if i == n/2 {
				upto := acked
				err := l.Snapshot(func(emit func([]byte) error) error {
					for j := 0; j < upto; j++ {
						if err := emit([]byte(rec(j))); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return acked
				}
			}
			if err := l.Append([]byte(rec(i))); err != nil {
				return acked
			}
			acked++
		}
		return acked
	}

	// Size the sweep: one clean run counts the I/Os.
	probe := walfs.NewFault(walfs.NewMem(), 0, 0)
	for _, fsync := range []bool{false, true} {
		_ = workload(probe, fsync)
	}
	totalOps := probe.Ops()
	if totalOps < n {
		t.Fatalf("probe run saw only %d ops", totalOps)
	}

	for _, fsync := range []bool{false, true} {
		for _, keepUnsynced := range []bool{false, true} {
			for _, torn := range []int{0, 3} {
				name := fmt.Sprintf("fsync=%v/keep=%v/torn=%d", fsync, keepUnsynced, torn)
				t.Run(name, func(t *testing.T) {
					for failAt := 1; failAt <= totalOps; failAt++ {
						m := walfs.NewMem()
						faulty := walfs.NewFault(m, failAt, torn)
						acked := workload(faulty, fsync)
						if !faulty.Triggered() {
							continue // workload finished before this op count
						}
						if keepUnsynced {
							m.CrashKeepUnsynced()
						} else {
							m.Crash()
						}
						var got []string
						l, info, err := Open(m, Options{}, func(r []byte) error {
							got = append(got, string(r))
							return nil
						})
						if err != nil {
							t.Fatalf("failAt=%d: recovery failed: %v", failAt, err)
						}
						_ = l.Close()
						// Prefix consistency: the replayed sequence is
						// exactly op-0..op-k for some k — no holes, no
						// torn record applied, no reordering.
						for i, r := range got {
							if r != rec(i) {
								t.Fatalf("failAt=%d: record %d = %q, want %q (replay %v, info %+v)", failAt, i, r, rec(i), got, info)
							}
						}
						// Durability: an acknowledged append survives if
						// it was synced (fsync mode) or if the crash kept
						// unsynced bytes.
						if (fsync || keepUnsynced) && len(got) < acked {
							t.Fatalf("failAt=%d: acked %d writes but recovered only %d (info %+v)", failAt, acked, len(got), info)
						}
					}
				})
			}
		}
	}
}

func TestStatsCounters(t *testing.T) {
	m := walfs.NewMem()
	l, _, _ := collect(t, m, Options{Fsync: true})
	appendAll(t, l, "one", "two")
	st := l.Stats()
	if st.RecordsAppended != 2 || st.BytesLogged == 0 || st.Fsyncs == 0 {
		t.Fatalf("stats = %+v", st)
	}
	_ = l.Close()
	l2, _, _ := collect(t, m, Options{})
	defer l2.Close()
	if st := l2.Stats(); st.ReplayRecords != 2 {
		t.Fatalf("ReplayRecords = %d", st.ReplayRecords)
	}
}

func TestCodecRoundtrip(t *testing.T) {
	buf := AppendUvarint(nil, 42)
	buf = AppendString(buf, "hello")
	buf = AppendBytes(buf, []byte{1, 2, 3})
	buf = AppendUvarint(buf, 1<<40)
	d := NewDec(buf)
	if v := d.Uvarint(); v != 42 {
		t.Fatalf("Uvarint = %d", v)
	}
	if s := d.String(); s != "hello" {
		t.Fatalf("String = %q", s)
	}
	if b := d.Bytes(); len(b) != 3 || b[2] != 3 {
		t.Fatalf("Bytes = %v", b)
	}
	if v := d.Uvarint(); v != 1<<40 {
		t.Fatalf("Uvarint = %d", v)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if len(d.Rest()) != 0 {
		t.Fatalf("Rest = %v", d.Rest())
	}
	// Underflow is sticky, not a panic.
	d2 := NewDec([]byte{0x05, 'a'})
	_ = d2.Bytes()
	if !errors.Is(d2.Err(), ErrBadRecord) {
		t.Fatalf("Err = %v", d2.Err())
	}
	if s := d2.String(); s != "" {
		t.Fatalf("post-error String = %q", s)
	}
}
