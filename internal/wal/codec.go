package wal

import (
	"encoding/binary"
	"errors"
)

// Record payloads are owner-defined; these helpers are the shared
// vocabulary the owners (brokerwal, rgmawal) encode them with: uvarint
// integers and length-prefixed byte strings, with a Dec that turns any
// malformed payload into one sticky error instead of a panic. A replay
// decode error aborts recovery — payloads live behind a CRC, so it
// indicates a version or logic bug, not media corruption.

// AppendUvarint appends v as a uvarint.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendBytes appends a uvarint length prefix and then b.
func AppendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// AppendString appends s as a length-prefixed byte string.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// ErrBadRecord is the sticky error a Dec reports for a malformed
// payload.
var ErrBadRecord = errors.New("wal: malformed record payload")

// Dec decodes a record payload written with the Append helpers. After
// any underflow every accessor returns zero values and Err reports
// ErrBadRecord.
type Dec struct {
	b   []byte
	bad bool
}

// NewDec wraps payload for decoding.
func NewDec(payload []byte) *Dec { return &Dec{b: payload} }

// Err reports whether any read ran past the payload.
func (d *Dec) Err() error {
	if d.bad {
		return ErrBadRecord
	}
	return nil
}

// Rest returns the undecoded remainder.
func (d *Dec) Rest() []byte { return d.b }

// Uvarint reads one uvarint.
func (d *Dec) Uvarint() uint64 {
	if d.bad {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.bad = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Bytes reads one length-prefixed byte string; the slice aliases the
// payload.
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.bad || n > uint64(len(d.b)) {
		d.bad = true
		return nil
	}
	b := d.b[:n]
	d.b = d.b[n:]
	return b
}

// String reads one length-prefixed string.
func (d *Dec) String() string { return string(d.Bytes()) }
