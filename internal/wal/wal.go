// Package wal is an append-only segmented write-ahead log with
// CRC-framed records, group-commit batching, and snapshot+replay
// recovery, layered over the walfs storage seam (disk for daemons,
// in-memory + fault injection for tests).
//
// A log directory holds numbered segments (seg-%016x.wal), at most one
// installed snapshot (snap-%016x), and optionally a clean-shutdown
// marker. Snapshot generation G captures the state after every record
// in segments numbered below G, and is itself stored in the same
// CRC-framed record format — re-emitted, compacted operations — so
// recovery replays a snapshot and a segment tail through one code path.
//
// Record framing is [crc32c(payload)][len][payload] with little-endian
// u32 header fields. Payload contents are owner-defined; the log never
// inspects them.
//
// Durability contract: Append returns after the record is written (and,
// with Options.Fsync, synced) to the current segment, so an
// acknowledgement sent after Append implies the operation survives a
// crash. Writes are group-committed: concurrent Appends are coalesced
// by one writer goroutine into a single write and a single fsync, the
// same batching idiom the broker's connWriter uses for frames. The
// first I/O error poisons the log — every later Append returns it —
// which keeps the successful appends an exact prefix of the requested
// ones. Segment rotation syncs the finished segment even with Fsync
// off, so a torn tail can only ever exist in the final segment.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"gridmon/internal/walfs"
)

const (
	headerSize = 8
	// maxRecord bounds a framed length field during recovery: anything
	// larger is treated as a torn or corrupt header, not an allocation.
	maxRecord = 1 << 28

	cleanMarker = "clean"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: closed")

// Options configures a Log.
type Options struct {
	// SegmentBytes is the rotation threshold; a segment that has
	// reached it is synced and closed before the next batch starts a
	// new one. 0 means 4 MiB.
	SegmentBytes int64
	// Fsync makes every group commit sync before acknowledging, so
	// Append == durable. Off, data is durable only at rotation,
	// snapshot, and clean shutdown.
	Fsync bool
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return 4 << 20
	}
	return o.SegmentBytes
}

// RecoverInfo reports what Open replayed.
type RecoverInfo struct {
	// Records is how many records were applied (snapshot + segments).
	Records uint64
	// TruncatedTail is how many torn trailing bytes were discarded
	// from the final segment.
	TruncatedTail uint64
	// CleanStart reports that a valid clean-shutdown marker let Open
	// skip the segment scan entirely.
	CleanStart bool
	// SnapshotGen is the generation of the snapshot replayed (0 when
	// none existed).
	SnapshotGen uint64
	// Segments is how many segment files were scanned.
	Segments int
}

// Stats is a point-in-time snapshot of log counters.
type Stats struct {
	RecordsAppended     uint64 `json:"records_appended"`
	BytesLogged         uint64 `json:"bytes_logged"`
	Fsyncs              uint64 `json:"fsyncs"`
	Snapshots           uint64 `json:"snapshots"`
	ReplayRecords       uint64 `json:"replay_records"`
	ReplayTruncatedTail uint64 `json:"replay_truncated_tail"`
	CleanStart          bool   `json:"clean_start"`
}

type appendReq struct {
	framed  []byte
	done    chan error
	barrier chan struct{} // non-nil: park the writer until closed
}

// Log is a segmented write-ahead log. Append is safe for concurrent
// use; Snapshot, CloseClean and Close must not race each other.
type Log struct {
	fs   walfs.FS
	opts Options

	reqs chan *appendReq
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	// closedMu orders Append/park sends against Close: a send holds the
	// read side, Close takes the write side before signalling quit, so
	// every enqueued request is answered by the writer's final drain.
	closedMu sync.RWMutex
	closed   bool

	// File state is owned by the writer goroutine; Snapshot touches it
	// only while the writer is parked at a barrier.
	cur     walfs.File
	curNum  uint64
	curSize int64

	mu  sync.Mutex
	err error // first I/O error; poisons the log

	recordsAppended atomic.Uint64
	bytesLogged     atomic.Uint64
	fsyncs          atomic.Uint64
	snapshots       atomic.Uint64
	recover         RecoverInfo
}

func segName(n uint64) string  { return fmt.Sprintf("seg-%016x.wal", n) }
func snapName(g uint64) string { return fmt.Sprintf("snap-%016x", g) }

func parseNum(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	if len(hex) != 16 {
		return 0, false
	}
	n, err := strconv.ParseUint(hex, 16, 64)
	return n, err == nil
}

// frame appends one CRC-framed record to buf.
func frame(buf, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// scan walks framed records in data, calling apply for each valid
// payload. It returns the offset just past the last valid record and
// how many records were applied. A short header, an oversized length, a
// length past the end, or a CRC mismatch all stop the scan at the
// current offset (the torn-tail boundary); only apply's own error is
// returned.
func scan(data []byte, apply func([]byte) error) (consumed int64, records uint64, err error) {
	off := 0
	for {
		if len(data)-off < headerSize {
			return int64(off), records, nil
		}
		want := binary.LittleEndian.Uint32(data[off:])
		n := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxRecord || int(n) > len(data)-off-headerSize {
			return int64(off), records, nil
		}
		payload := data[off+headerSize : off+headerSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != want {
			return int64(off), records, nil
		}
		if err := apply(payload); err != nil {
			return int64(off), records, err
		}
		records++
		off += headerSize + int(n)
	}
}

func readAll(f walfs.File) ([]byte, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size == 0 {
		return data, nil
	}
	if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
		return nil, err
	}
	return data, nil
}

// Open recovers the log in dir fs and returns it ready for appends:
// it replays the latest snapshot and then every segment at or above the
// snapshot's generation through apply, truncates a torn tail off the
// final segment, prunes files an installed snapshot obsoleted, and
// honors (then removes) a clean-shutdown marker — a valid marker is
// only an optimization that skips the segment scan; correctness never
// depends on it, because it is ignored whenever any covered segment has
// data.
func Open(vfs walfs.FS, opts Options, apply func(rec []byte) error) (*Log, RecoverInfo, error) {
	names, err := vfs.List()
	if err != nil {
		return nil, RecoverInfo{}, err
	}
	var segs []uint64
	var snaps []uint64
	markerSeen := false
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			_ = vfs.Remove(name) // crashed mid-snapshot; never installed
			continue
		}
		if n, ok := parseNum(name, "seg-", ".wal"); ok {
			segs = append(segs, n)
		} else if g, ok := parseNum(name, "snap-", ""); ok {
			snaps = append(snaps, g)
		} else if name == cleanMarker {
			markerSeen = true
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	var gen uint64
	if len(snaps) > 0 {
		gen = snaps[len(snaps)-1]
		for _, g := range snaps[:len(snaps)-1] {
			_ = vfs.Remove(snapName(g))
		}
	}
	// Prune segments the snapshot covers (a crash can land between
	// snapshot install and prune).
	live := segs[:0]
	for _, n := range segs {
		if n < gen {
			_ = vfs.Remove(segName(n))
		} else {
			live = append(live, n)
		}
	}
	segs = live

	// A clean marker is trusted only when it matches the installed
	// snapshot and every live segment is empty; anything else means a
	// crash raced the shutdown and the scan must run.
	clean := false
	if markerSeen {
		if data, err := readFile(vfs, cleanMarker); err == nil {
			if g, perr := strconv.ParseUint(strings.TrimSpace(string(data)), 16, 64); perr == nil && len(snaps) > 0 && g == gen {
				clean = true
			}
		}
		_ = vfs.Remove(cleanMarker)
	}

	info := RecoverInfo{SnapshotGen: gen, Segments: len(segs)}

	if len(snaps) > 0 {
		data, err := readFile(vfs, snapName(gen))
		if err != nil {
			return nil, info, fmt.Errorf("wal: read snapshot: %w", err)
		}
		consumed, records, err := scan(data, apply)
		if err != nil {
			return nil, info, fmt.Errorf("wal: replay snapshot: %w", err)
		}
		if consumed != int64(len(data)) {
			// Snapshots are installed by rename after a full sync; a
			// partial one is corruption, not a torn tail.
			return nil, info, fmt.Errorf("wal: corrupt snapshot %s at offset %d", snapName(gen), consumed)
		}
		info.Records += records
	}

	if clean {
		cleanOK := true
		for _, n := range segs {
			if sz, err := fileSize(vfs, segName(n)); err != nil || sz != 0 {
				cleanOK = false
				break
			}
		}
		clean = cleanOK
	}
	info.CleanStart = clean

	l := &Log{
		fs:   vfs,
		opts: opts,
		reqs: make(chan *appendReq, 128),
		quit: make(chan struct{}),
	}

	for i, n := range segs {
		last := i == len(segs)-1
		f, err := vfs.OpenFile(segName(n), false)
		if err != nil {
			return nil, info, err
		}
		if clean {
			// Marker validated: every live segment is empty.
			if last {
				l.cur, l.curNum, l.curSize = f, n, 0
			} else {
				_ = f.Close()
			}
			continue
		}
		data, err := readAll(f)
		if err != nil {
			_ = f.Close()
			return nil, info, err
		}
		consumed, records, err := scan(data, apply)
		if err != nil {
			_ = f.Close()
			return nil, info, fmt.Errorf("wal: replay %s: %w", segName(n), err)
		}
		info.Records += records
		if consumed != int64(len(data)) {
			if !last {
				// Rotation syncs a segment before its successor opens,
				// so a torn tail anywhere but the end is corruption.
				_ = f.Close()
				return nil, info, fmt.Errorf("wal: corrupt record in %s at offset %d (not final segment)", segName(n), consumed)
			}
			if err := f.Truncate(consumed); err != nil {
				_ = f.Close()
				return nil, info, err
			}
			info.TruncatedTail = uint64(len(data)) - uint64(consumed)
		}
		if last {
			l.cur, l.curNum, l.curSize = f, n, consumed
		} else {
			_ = f.Close()
		}
	}
	if l.cur == nil {
		f, err := vfs.OpenFile(segName(gen), true)
		if err != nil {
			return nil, info, err
		}
		l.cur, l.curNum, l.curSize = f, gen, 0
	}

	l.recover = info
	l.wg.Add(1)
	go l.writer()
	return l, info, nil
}

func readFile(vfs walfs.FS, name string) ([]byte, error) {
	f, err := vfs.OpenFile(name, false)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readAll(f)
}

func fileSize(vfs walfs.FS, name string) (int64, error) {
	f, err := vfs.OpenFile(name, false)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	return f.Size()
}

// Append commits one record. It blocks until the record is written to
// the current segment — and synced, under Options.Fsync — so callers
// may acknowledge the operation as soon as Append returns nil.
func (l *Log) Append(payload []byte) error {
	req := &appendReq{framed: frame(nil, payload), done: make(chan error, 1)}
	if err := l.send(req); err != nil {
		return err
	}
	return <-req.done
}

// send enqueues one request for the writer; it guarantees the writer
// will reply on req.done exactly once.
func (l *Log) send(req *appendReq) error {
	l.closedMu.RLock()
	defer l.closedMu.RUnlock()
	if l.closed {
		return ErrClosed
	}
	l.reqs <- req
	return nil
}

// writer is the group-commit loop: it drains every pending append,
// writes them as one buffer, syncs once, then acknowledges all of them.
func (l *Log) writer() {
	defer l.wg.Done()
	for {
		var req *appendReq
		select {
		case req = <-l.reqs:
		case <-l.quit:
			l.drainClosed()
			return
		}
		if req.barrier != nil {
			req.done <- nil
			<-req.barrier // parked: the caller owns the file state
			continue
		}
		batch := []*appendReq{req}
		var barrier *appendReq
	drain:
		for {
			select {
			case r := <-l.reqs:
				if r.barrier != nil {
					barrier = r
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		l.commit(batch)
		if barrier != nil {
			barrier.done <- nil
			<-barrier.barrier
		}
	}
}

func (l *Log) drainClosed() {
	for {
		select {
		case r := <-l.reqs:
			r.done <- ErrClosed
		default:
			return
		}
	}
}

func (l *Log) poison(err error) error {
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	err = l.err
	l.mu.Unlock()
	return err
}

// Err returns the error that poisoned the log, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *Log) commit(batch []*appendReq) {
	if err := l.Err(); err != nil {
		for _, r := range batch {
			r.done <- err
		}
		return
	}
	err := l.commitBatch(batch)
	if err != nil {
		err = l.poison(err)
	}
	for _, r := range batch {
		r.done <- err
	}
}

func (l *Log) commitBatch(batch []*appendReq) error {
	if l.curSize >= l.opts.segmentBytes() {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	var buf []byte
	if len(batch) == 1 {
		buf = batch[0].framed
	} else {
		total := 0
		for _, r := range batch {
			total += len(r.framed)
		}
		buf = make([]byte, 0, total)
		for _, r := range batch {
			buf = append(buf, r.framed...)
		}
	}
	if _, err := l.cur.Write(buf); err != nil {
		return err
	}
	if l.opts.Fsync {
		if err := l.cur.Sync(); err != nil {
			return err
		}
		l.fsyncs.Add(1)
	}
	l.curSize += int64(len(buf))
	l.recordsAppended.Add(uint64(len(batch)))
	l.bytesLogged.Add(uint64(len(buf)))
	return nil
}

// rotate syncs and closes the current segment and opens its successor.
// The sync runs even with Fsync off: it confines torn tails to the
// final segment, which recovery relies on.
func (l *Log) rotate() error {
	if err := l.cur.Sync(); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	if err := l.cur.Close(); err != nil {
		return err
	}
	f, err := l.fs.OpenFile(segName(l.curNum+1), true)
	if err != nil {
		return err
	}
	l.cur, l.curNum, l.curSize = f, l.curNum+1, 0
	return nil
}

// park stops the writer at a barrier and returns the release function,
// giving the caller exclusive ownership of the file state.
func (l *Log) park() (release func(), err error) {
	req := &appendReq{done: make(chan error, 1), barrier: make(chan struct{})}
	if err := l.send(req); err != nil {
		return nil, err
	}
	if err := <-req.done; err != nil {
		return nil, err
	}
	return func() { close(req.barrier) }, nil
}

// Snapshot compacts the log: dump re-emits the owner's current state as
// records (through the emit callback, same payload format as Append),
// and once the snapshot file is durably installed every older segment
// and snapshot is pruned and a fresh segment begins.
//
// The snapshot captures only what dump emits, so the owner must be
// quiescent — no concurrent mutations — for the duration; the daemons
// call it only during startup recovery and shutdown.
func (l *Log) Snapshot(dump func(emit func(rec []byte) error) error) error {
	release, err := l.park()
	if err != nil {
		return err
	}
	defer release()
	if err := l.Err(); err != nil {
		return err
	}
	if err := l.snapshotLocked(dump); err != nil {
		return l.poison(err)
	}
	l.snapshots.Add(1)
	return nil
}

func (l *Log) snapshotLocked(dump func(emit func(rec []byte) error) error) error {
	// Seal the tail: everything the snapshot will cover must be
	// durable before the covering snapshot can replace it.
	if err := l.cur.Sync(); err != nil {
		return err
	}
	l.fsyncs.Add(1)
	gen := l.curNum + 1
	tmpName := snapName(gen) + ".tmp"
	tmp, err := l.fs.OpenFile(tmpName, true)
	if err != nil {
		return err
	}
	var buf []byte
	werr := dump(func(rec []byte) error {
		buf = frame(buf[:0], rec)
		_, err := tmp.Write(buf)
		return err
	})
	if werr == nil {
		werr = tmp.Sync()
		if werr == nil {
			l.fsyncs.Add(1)
		}
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = l.fs.Remove(tmpName)
		return werr
	}
	if err := l.fs.Rename(tmpName, snapName(gen)); err != nil {
		return err
	}
	// Installed: everything below gen is now redundant.
	if err := l.cur.Close(); err != nil {
		return err
	}
	for n := l.curNum; ; n-- {
		if err := l.fs.Remove(segName(n)); err != nil {
			break // older ones were pruned by an earlier snapshot
		}
		if n == 0 {
			break
		}
	}
	for g := gen - 1; ; g-- {
		if err := l.fs.Remove(snapName(g)); err == nil {
			break // at most one older snapshot exists
		}
		if g == 0 {
			break
		}
	}
	f, err := l.fs.OpenFile(segName(gen), true)
	if err != nil {
		return err
	}
	l.cur, l.curNum, l.curSize = f, gen, 0
	return nil
}

// CloseClean snapshots the owner's state, writes the clean-shutdown
// marker, and closes the log. A following Open can then skip the
// segment scan. Safe to call in place of Close on any shutdown path:
// if the snapshot fails the marker is skipped and the log still closes.
func (l *Log) CloseClean(dump func(emit func(rec []byte) error) error) error {
	err := l.Snapshot(dump)
	if err == nil {
		err = l.writeMarker()
	}
	if cerr := l.Close(); err == nil {
		err = cerr
	}
	return err
}

func (l *Log) writeMarker() error {
	release, err := l.park()
	if err != nil {
		return err
	}
	defer release()
	f, err := l.fs.OpenFile(cleanMarker, true)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(fmt.Sprintf("%016x\n", l.curNum))); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// Close stops the writer and closes the current segment. Appends still
// in flight are refused with ErrClosed.
func (l *Log) Close() error {
	l.once.Do(func() {
		l.closedMu.Lock()
		l.closed = true
		l.closedMu.Unlock()
		close(l.quit)
	})
	l.wg.Wait()
	if l.cur != nil {
		err := l.cur.Close()
		l.cur = nil
		return err
	}
	return nil
}

// Stats returns current counters, including what recovery replayed.
func (l *Log) Stats() Stats {
	return Stats{
		RecordsAppended:     l.recordsAppended.Load(),
		BytesLogged:         l.bytesLogged.Load(),
		Fsyncs:              l.fsyncs.Load(),
		Snapshots:           l.snapshots.Load(),
		ReplayRecords:       l.recover.Records,
		ReplayTruncatedTail: l.recover.TruncatedTail,
		CleanStart:          l.recover.CleanStart,
	}
}
