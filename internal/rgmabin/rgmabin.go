// Package rgmabin serves the R-GMA virtual database over a persistent
// binary TCP transport — the push counterpart to internal/rgmahttp's
// request/response polling, closing the architectural gap the paper
// measured between R-GMA (subscribers poll their consumer every 100 ms)
// and JMS (the broker pushes). Both bindings wrap the same
// rgmacore.Core, so a table created over one transport is visible to
// producers and consumers on the other, and cmd/rgmad serves both
// ports off one core.
//
// Protocol (internal/wire framing, big-endian, 4-byte length prefix):
// the client's first frame is RGMAHello, answered by RGMAWelcome; after
// that any number of requests (RGMACreateTable, RGMAProducerCreate,
// RGMAInsert — batched, many INSERT statements per frame —
// RGMAConsumerCreate, RGMAPop, RGMAClose) may be outstanding at once,
// each carrying a client-assigned Seq echoed by its RGMAOK / RGMAErr /
// RGMATuples reply. Continuous queries are push-fed: the server
// registers a core sink at create time, and every matching insert is
// encoded once (rgmacore.Streamed.Encoded + RGMATuples.Enc splicing,
// shared across all subscribed connections) and pushed as an
// unsolicited RGMATuples with Seq 0. Latest/history queries stay
// request/response via RGMAPop, as on every transport.
//
// # Concurrency and ordering
//
// Each connection has one reader goroutine (which executes requests
// against the shard-safe core inline) and one batching writer goroutine
// (per-connection frame queue, coalesced into single TCP writes — the
// same connWriter idiom as internal/jms). Requests on one connection
// are executed in arrival order; pushes for one consumer arrive in the
// producer's insert order (the core fans out under the table shard's
// read lock and the writer preserves queue order). A push may overtake
// the RGMAOK of the consumer-create that subscribed it; the client
// buffers such early tuples and replays them to the callback in order.
//
// # Slow consumers
//
// The writer queue is bounded (Config.WriteBuffer). A connection whose
// queue overflows — a consumer not draining its TCP socket — is dropped
// (the R-GMA analogue of the broker's slow-consumer policy): the socket
// is closed, the reader observes the error on its own goroutine and
// releases the connection's producers and consumers in the core. Sinks
// never block an inserting producer.
package rgmabin

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"gridmon/internal/rgma"
	"gridmon/internal/rgmacore"
	"gridmon/internal/wal"
	"gridmon/internal/wire"
)

// RGMAErr codes.
const (
	CodeBadRequest uint8 = iota + 1
	CodeNotFound
	CodeConflict
)

// Config tunes the binary server.
type Config struct {
	// ServerID is announced in the RGMAWelcome handshake ("rgmad" if
	// empty).
	ServerID string
	// WriteBuffer is the per-connection outbound frame queue (default
	// 1024); overflow drops the connection (slow-consumer policy).
	WriteBuffer int
}

// Server accepts binary R-GMA connections against a shared core.
type Server struct {
	core *rgmacore.Core
	cfg  Config
	ln   net.Listener

	mu     sync.Mutex
	conns  map[*serverConn]struct{}
	closed bool

	slowDrops atomic.Uint64
	walStats  atomic.Pointer[func() wal.Stats]

	egress egressMeters
}

// egressMeters counts writer-side egress batching: socket flushes, the
// frames they carried (counted before merging), and pushes folded into
// the preceding same-consumer push frame instead of being encoded as
// their own frame.
type egressMeters struct {
	flushes      atomic.Uint64
	frames       atomic.Uint64
	mergedPushes atomic.Uint64
}

// EgressStats is the /stats view of the binary transport's egress
// batching (see Server.EgressStats).
type EgressStats struct {
	WriterFlushes  uint64  `json:"writer_flushes"`
	WriterFrames   uint64  `json:"writer_frames"`
	MergedPushes   uint64  `json:"merged_pushes"`
	FramesPerFlush float64 `json:"frames_per_flush"`
}

// EgressStats reports the server's transport egress counters: how many
// TCP writes the per-connection writers performed, how many reply/push
// frames rode in them, and how many continuous-query pushes were merged
// into a neighbouring push for the same consumer (one RGMATuples frame
// carrying N tuples instead of N frames).
func (s *Server) EgressStats() EgressStats {
	fl, fr := s.egress.flushes.Load(), s.egress.frames.Load()
	es := EgressStats{WriterFlushes: fl, WriterFrames: fr, MergedPushes: s.egress.mergedPushes.Load()}
	if fl > 0 {
		es.FramesPerFlush = float64(fr) / float64(fl)
	}
	return es
}

// NewServer wraps a core (possibly shared with an rgmahttp.Server) in
// an unstarted binary server.
func NewServer(core *rgmacore.Core, cfg Config) *Server {
	if cfg.ServerID == "" {
		cfg.ServerID = "rgmad"
	}
	if cfg.WriteBuffer <= 0 {
		cfg.WriteBuffer = 1024
	}
	return &Server{core: core, cfg: cfg, conns: make(map[*serverConn]struct{})}
}

// Core returns the server's service core.
func (s *Server) Core() *rgmacore.Core { return s.core }

// SlowConsumerDrops reports connections dropped for an overflowing
// write queue.
func (s *Server) SlowConsumerDrops() uint64 { return s.slowDrops.Load() }

// SetWALStats installs the write-ahead-log counter source reported by
// the stats RPC (cmd/rgmad wires the persister's Stats method in when
// it runs with -data-dir). Without one, replies carry WALEnabled false
// and zero WAL counters.
func (s *Server) SetWALStats(f func() wal.Stats) {
	if f == nil {
		s.walStats.Store(nil)
		return
	}
	s.walStats.Store(&f)
}

// statsFrame snapshots the core and WAL counters into a reply frame.
func (s *Server) statsFrame(seq int64) wire.RGMAStats {
	cs := s.core.StatsSnapshot()
	out := wire.RGMAStats{
		Seq:            seq,
		Producers:      uint32(cs.Producers),
		Consumers:      uint32(cs.Consumers),
		Inserts:        cs.Inserts,
		Pops:           cs.Pops,
		TuplesStreamed: cs.TuplesStreamed,
		TuplesPopped:   cs.TuplesPopped,
		TuplesDropped:  cs.TuplesDropped,
	}
	if f := s.walStats.Load(); f != nil {
		ws := (*f)()
		out.WALEnabled = true
		out.WALRecordsAppended = ws.RecordsAppended
		out.WALBytesLogged = ws.BytesLogged
		out.WALFsyncs = ws.Fsyncs
		out.WALSnapshots = ws.Snapshots
		out.WALReplayRecords = ws.ReplayRecords
		out.WALReplayTruncatedTail = ws.ReplayTruncatedTail
		out.WALCleanStart = ws.CleanStart
	}
	return out
}

// ListenAndServe starts accepting on addr and returns the bound
// address.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		c := &serverConn{
			s:         s,
			nc:        nc,
			out:       make(chan wire.Frame, s.cfg.WriteBuffer),
			done:      make(chan struct{}),
			producers: make(map[int64]struct{}),
			consumers: make(map[int64]struct{}),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go c.runWriter()
		go c.read()
	}
}

// Close stops accepting and drops every connection; per-connection
// resource cleanup runs on the reader goroutines as they observe the
// closed sockets.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	for _, c := range conns {
		_ = c.nc.Close()
	}
	return nil
}

// serverConn is one accepted connection: a reader goroutine executing
// requests inline against the core, a writer goroutine coalescing the
// outbound queue, and the producer/consumer resources the connection
// owns (released at teardown, so a dying client cannot strand push-fed
// consumers in the fan-out index). The resource maps are touched only
// by the reader goroutine.
type serverConn struct {
	s    *Server
	nc   net.Conn
	out  chan wire.Frame
	done chan struct{}

	producers map[int64]struct{}
	consumers map[int64]struct{}
}

// send enqueues a frame for the writer without blocking. A full queue
// means the peer is not draining its socket: drop the connection (the
// reader goroutine observes the closed socket and tears down), never
// block the caller — send is invoked from core fan-out under a table
// shard's read lock.
func (c *serverConn) send(f wire.Frame) {
	select {
	case c.out <- f:
	default:
		c.s.slowDrops.Add(1)
		_ = c.nc.Close()
	}
}

// maxWriteBatch caps how many bytes of queued frames the writer encodes
// into one buffer before flushing to the socket.
const maxWriteBatch = 64 << 10

// writeBufPool recycles per-connection encode buffers across connection
// lifetimes; oversized buffers are dropped rather than pooled.
var writeBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// runWriter drains the connection's outbound queue into coalesced TCP
// writes. Adjacent continuous-query pushes for the same consumer (Seq 0
// RGMATuples — an insert batch fans each matching statement out as its
// own push) are merged into one RGMATuples frame whose Enc splices all
// their shared encodings, so a subscribed connection sees one frame per
// insert batch instead of one per statement. Merging is strictly
// order-preserving: only queue-adjacent pushes fold together, and any
// other frame (or a push for a different consumer) flushes the pending
// run first.
func (c *serverConn) runWriter() {
	bp := writeBufPool.Get().(*[]byte)
	buf := *bp
	var pend wire.RGMATuples // pending push run (pendRun > 0 when active)
	pendRun := 0
	encScratch := make([][]byte, 0, 16) // backing for pend.Enc, reused
	defer func() {
		if cap(buf) <= maxWriteBatch {
			*bp = buf[:0]
			writeBufPool.Put(bp)
		}
	}()
	// flushPend encodes the pending push run, if any, into buf.
	flushPend := func() error {
		if pendRun == 0 {
			return nil
		}
		var err error
		buf, err = wire.AppendFrame(buf, pend)
		encScratch = pend.Enc[:0]
		pend = wire.RGMATuples{}
		pendRun = 0
		return err
	}
	// add stages one dequeued frame: pushes start or extend the pending
	// run, everything else flushes the run and encodes directly.
	add := func(f wire.Frame) error {
		if t, ok := f.(wire.RGMATuples); ok && t.Seq == 0 {
			if pendRun > 0 && pend.Consumer == t.Consumer {
				pend.Enc = append(pend.Enc, t.Enc...)
				pendRun++
				c.s.egress.mergedPushes.Add(1)
				return nil
			}
			if err := flushPend(); err != nil {
				return err
			}
			pend = wire.RGMATuples{Consumer: t.Consumer, Enc: append(encScratch[:0], t.Enc...)}
			pendRun = 1
			return nil
		}
		if err := flushPend(); err != nil {
			return err
		}
		var err error
		buf, err = wire.AppendFrame(buf, f)
		return err
	}
	for {
		select {
		case f := <-c.out:
			frames := 1
			buf = buf[:0]
			if err := add(f); err != nil {
				_ = c.nc.Close()
				return
			}
		coalesce:
			for len(buf) < maxWriteBatch {
				select {
				case f2 := <-c.out:
					frames++
					if err := add(f2); err != nil {
						// Flush the frames that did encode before
						// dropping the connection.
						_, _ = c.nc.Write(buf)
						_ = c.nc.Close()
						return
					}
				default:
					break coalesce
				}
			}
			if err := flushPend(); err != nil {
				_ = c.nc.Close()
				return
			}
			if _, err := c.nc.Write(buf); err != nil {
				_ = c.nc.Close()
				return
			}
			c.s.egress.flushes.Add(1)
			c.s.egress.frames.Add(uint64(frames))
			// An occasional oversized frame must not pin its buffer for
			// the connection's lifetime.
			if cap(buf) > maxWriteBatch {
				buf = make([]byte, 0, 4096)
			}
		case <-c.done:
			return
		}
	}
}

func (c *serverConn) read() {
	defer c.teardown()
	fr := wire.NewFrameReader(c.nc)
	f, err := fr.Read()
	if err != nil {
		return
	}
	if _, ok := f.(wire.RGMAHello); !ok {
		return
	}
	c.send(wire.RGMAWelcome{ServerID: c.s.cfg.ServerID})
	for {
		f, err := fr.Read()
		if err != nil {
			return
		}
		c.handle(f)
	}
}

// teardown runs once, on the reader goroutine, after the read loop
// exits (socket error, peer close, slow-consumer drop or server Close):
// it releases the connection's core resources — unsubscribing any
// push-fed consumers from the fan-out index — stops the writer and
// forgets the connection.
func (c *serverConn) teardown() {
	_ = c.nc.Close()
	close(c.done)
	for id := range c.producers {
		_ = c.s.core.CloseProducer(id)
	}
	for id := range c.consumers {
		_ = c.s.core.CloseConsumer(id)
	}
	c.s.mu.Lock()
	delete(c.s.conns, c)
	c.s.mu.Unlock()
}

// errFrame maps a core error onto the wire's error vocabulary.
func errFrame(seq int64, err error) wire.RGMAErr {
	code := CodeBadRequest
	switch {
	case errors.Is(err, rgmacore.ErrNotFound):
		code = CodeNotFound
	case errors.Is(err, rgmacore.ErrConflict):
		code = CodeConflict
	}
	return wire.RGMAErr{Seq: seq, Code: code, Msg: err.Error()}
}

// encodeTuple is the transport encoding a Streamed caches: one tuple's
// RGMATuples body element.
func encodeTuple(t rgmacore.PopTuple) []byte {
	return wire.AppendRGMATuple(nil, wire.RGMATuple{Row: t.Row, InsertedAt: t.InsertedAt})
}

// pushSink is the core sink for this connection's continuous consumers:
// it runs inline on the inserting goroutine, reuses the insert's shared
// encoding, and enqueues without blocking.
func (c *serverConn) pushSink(consumerID int64, st *rgmacore.Streamed) {
	enc := st.Encoded(encodeTuple)
	c.send(wire.RGMATuples{Consumer: consumerID, Enc: [][]byte{enc}})
}

func (c *serverConn) handle(f wire.Frame) {
	switch v := f.(type) {
	case wire.RGMACreateTable:
		if _, err := c.s.core.CreateTable(v.SQL); err != nil {
			c.send(errFrame(v.Seq, err))
			return
		}
		c.send(wire.RGMAOK{Seq: v.Seq})
	case wire.RGMAProducerCreate:
		p, err := c.s.core.CreateProducer(v.Table,
			rgmacore.RetentionFromSeconds(v.LatestRetentionSec),
			rgmacore.RetentionFromSeconds(v.HistoryRetentionSec))
		if err != nil {
			c.send(errFrame(v.Seq, err))
			return
		}
		c.producers[p.ID()] = struct{}{}
		c.send(wire.RGMAOK{Seq: v.Seq, ID: p.ID()})
	case wire.RGMAInsert:
		applied := int64(0)
		for _, q := range v.SQLs {
			if err := c.s.core.Insert(v.Producer, q); err != nil {
				c.send(errFrame(v.Seq, err))
				return
			}
			applied++
		}
		c.send(wire.RGMAOK{Seq: v.Seq, ID: applied})
	case wire.RGMAConsumerCreate:
		qtype := rgma.QueryType(v.QType)
		var sink rgmacore.Sink
		switch qtype {
		case rgma.ContinuousQuery:
			sink = c.pushSink
		case rgma.LatestQuery, rgma.HistoryQuery:
		default:
			c.send(wire.RGMAErr{Seq: v.Seq, Code: CodeBadRequest, Msg: "rgmabin: unknown query type"})
			return
		}
		cn, err := c.s.core.CreateConsumer(v.Query, qtype, sink)
		if err != nil {
			c.send(errFrame(v.Seq, err))
			return
		}
		c.consumers[cn.ID()] = struct{}{}
		c.send(wire.RGMAOK{Seq: v.Seq, ID: cn.ID()})
	case wire.RGMAPop:
		tuples, err := c.s.core.Pop(v.Consumer)
		if err != nil {
			c.send(errFrame(v.Seq, err))
			return
		}
		out := wire.RGMATuples{Seq: v.Seq, Consumer: v.Consumer, Tuples: make([]wire.RGMATuple, len(tuples))}
		for i, t := range tuples {
			out.Tuples[i] = wire.RGMATuple{Row: t.Row, InsertedAt: t.InsertedAt}
		}
		c.send(out)
	case wire.RGMAStatsReq:
		c.send(c.s.statsFrame(v.Seq))
	case wire.RGMAClose:
		var err error
		if v.Producer {
			err = c.s.core.CloseProducer(v.ID)
			delete(c.producers, v.ID)
		} else {
			err = c.s.core.CloseConsumer(v.ID)
			delete(c.consumers, v.ID)
		}
		if err != nil {
			c.send(errFrame(v.Seq, err))
			return
		}
		c.send(wire.RGMAOK{Seq: v.Seq})
	default:
		// Unknown or out-of-phase frame: ignore. The codec already
		// rejected malformed bodies.
	}
}
