package rgmabin

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gridmon/internal/rgma"
	"gridmon/internal/rgmacore"
	"gridmon/internal/sqlmini"
	"gridmon/internal/wire"
)

// ServerError is a request failure reported by the server.
type ServerError struct {
	Code uint8
	Msg  string
}

func (e *ServerError) Error() string { return e.Msg }

// NotFound reports whether the server rejected the request for a
// missing resource or table.
func (e *ServerError) NotFound() bool { return e.Code == CodeNotFound }

// Conflict reports whether the server rejected the request for
// conflicting state (e.g. re-creating a table with a different schema).
func (e *ServerError) Conflict() bool { return e.Code == CodeConflict }

// PoppedTuple is one delivered tuple; cells are SQL literal forms (the
// same rendering the HTTP client's PoppedTuple carries).
type PoppedTuple struct {
	Row        []string
	InsertedAt int64
}

// consumerState serializes deliveries to one continuous consumer. The
// server may push tuples before the client has processed the RGMAOK
// that reveals the consumer's id; such early tuples are buffered in
// orphan and replayed to the callback, in order, when it registers.
type consumerState struct {
	mu     sync.Mutex
	cb     func([]PoppedTuple)
	orphan []PoppedTuple
}

// Client is a producer/consumer API over one persistent binary
// connection. It is safe for concurrent use: any number of requests may
// be outstanding (each tagged with a Seq), and continuous-query pushes
// are dispatched to per-consumer callbacks as they arrive.
//
// Callbacks run on the client's reader goroutine, serialized per
// consumer; a callback that blocks delays every stream and reply on the
// connection (and ultimately trips the server's slow-consumer drop), so
// callbacks should hand work off quickly.
type Client struct {
	nc net.Conn

	wmu  sync.Mutex // serializes frame writes; guards wbuf
	wbuf []byte

	seq atomic.Int64

	mu        sync.Mutex
	pending   map[int64]chan wire.Frame
	consumers map[int64]*consumerState
	err       error

	done     chan struct{}
	doneOnce sync.Once
}

// Dial connects and performs the RGMAHello/RGMAWelcome handshake.
func Dial(addr string) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:        nc,
		pending:   make(map[int64]chan wire.Frame),
		consumers: make(map[int64]*consumerState),
		done:      make(chan struct{}),
	}
	if err := c.writeFrame(wire.RGMAHello{ClientID: "rgmabin-client"}); err != nil {
		_ = nc.Close()
		return nil, err
	}
	_ = nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	f, err := wire.ReadFrame(nc)
	if err != nil {
		_ = nc.Close()
		return nil, fmt.Errorf("rgmabin: handshake: %w", err)
	}
	if _, ok := f.(wire.RGMAWelcome); !ok {
		_ = nc.Close()
		return nil, fmt.Errorf("rgmabin: unexpected handshake reply %v", f.Type())
	}
	_ = nc.SetReadDeadline(time.Time{})
	go c.readLoop()
	return c, nil
}

// Close drops the connection; the server releases every resource this
// connection created.
func (c *Client) Close() error {
	return c.nc.Close()
}

func (c *Client) writeFrame(f wire.Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	buf, err := wire.AppendFrame(c.wbuf[:0], f)
	if err != nil {
		return err
	}
	c.wbuf = buf
	_, err = c.nc.Write(buf)
	return err
}

func (c *Client) readLoop() {
	fr := wire.NewFrameReader(c.nc)
	for {
		f, err := fr.Read()
		if err != nil {
			c.fail(err)
			return
		}
		switch v := f.(type) {
		case wire.RGMATuples:
			if v.Seq == 0 {
				c.deliver(v)
				continue
			}
			c.complete(v.Seq, v)
		case wire.RGMAOK:
			c.complete(v.Seq, v)
		case wire.RGMAErr:
			c.complete(v.Seq, v)
		case wire.RGMAStats:
			c.complete(v.Seq, v)
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.doneOnce.Do(func() { close(c.done) })
}

func (c *Client) complete(seq int64, f wire.Frame) {
	c.mu.Lock()
	ch := c.pending[seq]
	delete(c.pending, seq)
	c.mu.Unlock()
	if ch != nil {
		ch <- f
	}
}

func toPopped(ts []wire.RGMATuple) []PoppedTuple {
	out := make([]PoppedTuple, len(ts))
	for i, t := range ts {
		out[i] = PoppedTuple{Row: t.Row, InsertedAt: t.InsertedAt}
	}
	return out
}

// deliver routes one unsolicited push to its consumer's callback,
// buffering tuples that arrive before the consumer is registered.
func (c *Client) deliver(v wire.RGMATuples) {
	tuples := toPopped(v.Tuples)
	c.mu.Lock()
	cs := c.consumers[v.Consumer]
	if cs == nil {
		cs = &consumerState{}
		c.consumers[v.Consumer] = cs
	}
	c.mu.Unlock()
	cs.mu.Lock()
	if cs.cb == nil {
		cs.orphan = append(cs.orphan, tuples...)
	} else {
		cs.cb(tuples)
	}
	cs.mu.Unlock()
}

// request sends one Seq-tagged frame and blocks for its reply.
func (c *Client) request(build func(seq int64) wire.Frame) (wire.Frame, error) {
	seq := c.seq.Add(1)
	ch := make(chan wire.Frame, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.pending[seq] = ch
	c.mu.Unlock()
	if err := c.writeFrame(build(seq)); err != nil {
		c.mu.Lock()
		delete(c.pending, seq)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case f := <-ch:
		return f, nil
	case <-c.done:
		// The reply may have been delivered in the same instant the
		// connection died; prefer it.
		select {
		case f := <-ch:
			return f, nil
		default:
		}
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = net.ErrClosed
		}
		return nil, err
	}
}

// replyID interprets an OK/Err reply.
func replyID(f wire.Frame) (int64, error) {
	switch v := f.(type) {
	case wire.RGMAOK:
		return v.ID, nil
	case wire.RGMAErr:
		return 0, &ServerError{Code: v.Code, Msg: v.Msg}
	}
	return 0, fmt.Errorf("rgmabin: unexpected reply %v", f.Type())
}

// CreateTable declares a table with a CREATE TABLE statement.
// Re-creating an identical schema is a no-op; a conflicting schema
// fails with a ServerError for which Conflict() is true.
func (c *Client) CreateTable(sql string) error {
	f, err := c.request(func(seq int64) wire.Frame {
		return wire.RGMACreateTable{Seq: seq, SQL: sql}
	})
	if err != nil {
		return err
	}
	_, err = replyID(f)
	return err
}

// Stats fetches the server's counter snapshot — core service counters
// plus, when the server persists to a write-ahead log, the WAL
// counters — over the binary transport.
func (c *Client) Stats() (wire.RGMAStats, error) {
	f, err := c.request(func(seq int64) wire.Frame {
		return wire.RGMAStatsReq{Seq: seq}
	})
	if err != nil {
		return wire.RGMAStats{}, err
	}
	switch v := f.(type) {
	case wire.RGMAStats:
		return v, nil
	case wire.RGMAErr:
		return wire.RGMAStats{}, &ServerError{Code: v.Code, Msg: v.Msg}
	}
	return wire.RGMAStats{}, fmt.Errorf("rgmabin: unexpected reply %v", f.Type())
}

// RemoteProducer is a handle to a producer resource on the server.
type RemoteProducer struct {
	c  *Client
	ID int64
}

// CreatePrimaryProducer allocates a producer with memory storage.
// Retention periods are carried as whole seconds and rounded UP, so a
// sub-second request keeps a short retention (1 s) instead of
// truncating to 0 and silently selecting the server's 30 s/60 s
// defaults; non-positive periods are an error.
func (c *Client) CreatePrimaryProducer(table string, latestRetention, historyRetention time.Duration) (*RemoteProducer, error) {
	latestSec, err := rgmacore.RetentionSeconds(latestRetention)
	if err != nil {
		return nil, err
	}
	historySec, err := rgmacore.RetentionSeconds(historyRetention)
	if err != nil {
		return nil, err
	}
	f, err := c.request(func(seq int64) wire.Frame {
		return wire.RGMAProducerCreate{
			Seq:                 seq,
			Table:               table,
			LatestRetentionSec:  uint32(latestSec),
			HistoryRetentionSec: uint32(historySec),
		}
	})
	if err != nil {
		return nil, err
	}
	id, err := replyID(f)
	if err != nil {
		return nil, err
	}
	return &RemoteProducer{c: c, ID: id}, nil
}

// Insert publishes one tuple as a SQL INSERT statement.
func (p *RemoteProducer) Insert(sql string) error {
	return p.InsertBatch([]string{sql})
}

// InsertBatch publishes many INSERT statements in one frame — the
// binary transport's batching unit. The server applies them in order;
// on error, statements before the failing one remain applied.
func (p *RemoteProducer) InsertBatch(sqls []string) error {
	f, err := p.c.request(func(seq int64) wire.Frame {
		return wire.RGMAInsert{Seq: seq, Producer: p.ID, SQLs: sqls}
	})
	if err != nil {
		return err
	}
	_, err = replyID(f)
	return err
}

// InsertRow formats and publishes a row for the given table schema.
func (p *RemoteProducer) InsertRow(table *sqlmini.Table, row sqlmini.Row) error {
	return p.Insert(sqlmini.FormatInsert(table, row))
}

// Close releases the producer resource.
func (p *RemoteProducer) Close() error {
	f, err := p.c.request(func(seq int64) wire.Frame {
		return wire.RGMAClose{Seq: seq, Producer: true, ID: p.ID}
	})
	if err != nil {
		return err
	}
	_, err = replyID(f)
	return err
}

// RemoteConsumer is a handle to a consumer resource on the server.
type RemoteConsumer struct {
	c     *Client
	ID    int64
	qtype rgma.QueryType
}

// CreateConsumer installs a query; qtype is "continuous", "latest" or
// "history". A continuous consumer is push-fed: onTuples is required
// and receives every matching tuple batch as the server streams it (on
// the client's reader goroutine, serialized per consumer). Latest and
// history queries are request/response — onTuples must be nil and
// results are read with Pop.
func (c *Client) CreateConsumer(query, qtype string, onTuples func([]PoppedTuple)) (*RemoteConsumer, error) {
	qt, err := rgmacore.ParseQueryType(qtype)
	if err != nil {
		return nil, err
	}
	if qt == rgma.ContinuousQuery && onTuples == nil {
		return nil, fmt.Errorf("rgmabin: continuous consumers are push-fed; provide an onTuples callback")
	}
	if qt != rgma.ContinuousQuery && onTuples != nil {
		return nil, fmt.Errorf("rgmabin: %s queries are request/response; use Pop", qtype)
	}
	f, err := c.request(func(seq int64) wire.Frame {
		return wire.RGMAConsumerCreate{Seq: seq, Query: query, QType: uint8(qt)}
	})
	if err != nil {
		return nil, err
	}
	id, err := replyID(f)
	if err != nil {
		return nil, err
	}
	if qt == rgma.ContinuousQuery {
		c.mu.Lock()
		cs := c.consumers[id]
		if cs == nil {
			cs = &consumerState{}
			c.consumers[id] = cs
		}
		c.mu.Unlock()
		cs.mu.Lock()
		cs.cb = onTuples
		if len(cs.orphan) > 0 {
			// Tuples pushed before the create reply was processed:
			// replay in order, still under the consumer's lock so no
			// later push can overtake them.
			onTuples(cs.orphan)
			cs.orphan = nil
		}
		cs.mu.Unlock()
	}
	return &RemoteConsumer{c: c, ID: id, qtype: qt}, nil
}

// Pop reads a latest/history consumer. Continuous consumers over the
// binary transport are push-fed, and the server refuses to pop them.
func (rc *RemoteConsumer) Pop() ([]PoppedTuple, error) {
	f, err := rc.c.request(func(seq int64) wire.Frame {
		return wire.RGMAPop{Seq: seq, Consumer: rc.ID}
	})
	if err != nil {
		return nil, err
	}
	switch v := f.(type) {
	case wire.RGMATuples:
		return toPopped(v.Tuples), nil
	case wire.RGMAErr:
		return nil, &ServerError{Code: v.Code, Msg: v.Msg}
	}
	return nil, fmt.Errorf("rgmabin: unexpected pop reply %v", f.Type())
}

// Close releases the consumer resource; a continuous consumer's stream
// stops.
func (rc *RemoteConsumer) Close() error {
	f, err := rc.c.request(func(seq int64) wire.Frame {
		return wire.RGMAClose{Seq: seq, Producer: false, ID: rc.ID}
	})
	if err != nil {
		return err
	}
	if _, err = replyID(f); err != nil {
		return err
	}
	rc.c.mu.Lock()
	delete(rc.c.consumers, rc.ID)
	rc.c.mu.Unlock()
	return nil
}
