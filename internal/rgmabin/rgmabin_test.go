package rgmabin_test

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gridmon/internal/rgmabin"
	"gridmon/internal/rgmacore"
	"gridmon/internal/rgmahttp"
	"gridmon/internal/wal"
)

const createSQL = `CREATE TABLE generator (
	genid INTEGER PRIMARY KEY, seq INTEGER,
	power DOUBLE PRECISION, site CHAR(20))`

func startBin(t *testing.T, cfg rgmacore.Config) (*rgmabin.Server, string) {
	t.Helper()
	s := rgmabin.NewServer(rgmacore.New(cfg), rgmabin.Config{})
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, addr
}

func dial(t *testing.T, addr string) *rgmabin.Client {
	t.Helper()
	c, err := rgmabin.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// collector accumulates pushed tuples thread-safely.
type collector struct {
	mu     sync.Mutex
	tuples []rgmabin.PoppedTuple
}

func (cl *collector) add(ts []rgmabin.PoppedTuple) {
	cl.mu.Lock()
	cl.tuples = append(cl.tuples, ts...)
	cl.mu.Unlock()
}

func (cl *collector) len() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return len(cl.tuples)
}

func (cl *collector) snapshot() []rgmabin.PoppedTuple {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return append([]rgmabin.PoppedTuple(nil), cl.tuples...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBinPushContinuous: the core push path end to end — batched
// inserts on one connection arrive at a continuous consumer on another,
// filtered by its WHERE predicate, in insert order, with no polling.
func TestBinPushContinuous(t *testing.T) {
	_, addr := startBin(t, rgmacore.Config{Shards: 4})
	prodConn, consConn := dial(t, addr), dial(t, addr)

	if err := prodConn.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	var got collector
	cons, err := consConn.CreateConsumer("SELECT * FROM generator WHERE genid < 10", "continuous", got.add)
	if err != nil {
		t.Fatal(err)
	}
	p, err := prodConn.CreatePrimaryProducer("generator", 30*time.Second, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	batch := []string{
		"INSERT INTO generator (genid, seq, power, site) VALUES (1, 1, 480.5, 'aberdeen')",
		"INSERT INTO generator (genid, seq, power, site) VALUES (99, 2, 1.0, 'filtered')",
		"INSERT INTO generator (genid, seq, power, site) VALUES (2, 3, 239.9, 'dundee')",
	}
	if err := p.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "2 pushed tuples", func() bool { return got.len() >= 2 })
	tuples := got.snapshot()
	if len(tuples) != 2 {
		t.Fatalf("pushed %d tuples, want 2 (WHERE filter)", len(tuples))
	}
	if tuples[0].Row[0] != "1" || tuples[1].Row[0] != "2" {
		t.Fatalf("push order = %v", tuples)
	}
	if !strings.Contains(tuples[0].Row[3], "aberdeen") {
		t.Fatalf("tuple = %v", tuples[0])
	}
	// Push-fed consumers cannot be popped.
	if _, err := cons.Pop(); err == nil {
		t.Fatal("pop of push-fed continuous consumer accepted")
	}
	if err := cons.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBinLatestAndHistory: request/response queries over the binary
// transport.
func TestBinLatestAndHistory(t *testing.T) {
	_, addr := startBin(t, rgmacore.Config{Shards: 2})
	c := dial(t, addr)
	if err := c.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	p, err := c.CreatePrimaryProducer("generator", 30*time.Second, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= 3; seq++ {
		stmt := fmt.Sprintf("INSERT INTO generator (genid, seq, power, site) VALUES (7, %d, 480.5, 'aberdeen')", seq)
		if err := p.Insert(stmt); err != nil {
			t.Fatal(err)
		}
	}
	latest, err := c.CreateConsumer("SELECT * FROM generator WHERE genid = 7", "latest", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := latest.Pop()
	if err != nil || len(got) != 1 || got[0].Row[1] != "3" {
		t.Fatalf("latest pop = %v, %v; want one row at seq 3", got, err)
	}
	history, err := c.CreateConsumer("SELECT * FROM generator", "history", nil)
	if err != nil {
		t.Fatal(err)
	}
	hgot, err := history.Pop()
	if err != nil || len(hgot) != 3 {
		t.Fatalf("history pop = %v, %v; want 3 rows", hgot, err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBinErrors: server-side failures surface as typed ServerErrors.
func TestBinErrors(t *testing.T) {
	_, addr := startBin(t, rgmacore.Config{Shards: 1})
	c := dial(t, addr)

	_, err := c.CreatePrimaryProducer("nosuch", time.Second, time.Second)
	var se *rgmabin.ServerError
	if !asServerError(err, &se) || !se.NotFound() {
		t.Fatalf("producer on unknown table: %v", err)
	}
	if err := c.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(createSQL); err != nil {
		t.Fatalf("identical re-create over bin rejected: %v", err)
	}
	err = c.CreateTable("CREATE TABLE generator (genid INTEGER PRIMARY KEY)")
	if !asServerError(err, &se) || !se.Conflict() {
		t.Fatalf("conflicting re-create: %v", err)
	}
	if err := c.CreateTable("SELECT * FROM generator"); err == nil {
		t.Fatal("non-CREATE accepted")
	}
	if _, err := c.CreateConsumer("SELECT * FROM generator", "continuous", nil); err == nil {
		t.Fatal("continuous consumer without callback accepted")
	}
	if _, err := c.CreateConsumer("SELECT * FROM generator", "latest", func([]rgmabin.PoppedTuple) {}); err == nil {
		t.Fatal("latest consumer with callback accepted")
	}
	if _, err := c.CreatePrimaryProducer("generator", 0, time.Second); err == nil {
		t.Fatal("zero retention accepted")
	}
}

func asServerError(err error, out **rgmabin.ServerError) bool {
	se, ok := err.(*rgmabin.ServerError)
	if ok {
		*out = se
	}
	return ok
}

// TestBinSharedCoreWithHTTP: both transports wrap one core — a table
// and producer created over HTTP feed a push consumer on the binary
// port, the deployment cmd/rgmad runs.
func TestBinSharedCoreWithHTTP(t *testing.T) {
	hs := rgmahttp.NewServerWith(rgmahttp.Config{Shards: 2})
	haddr, err := hs.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hs.Close() })
	bs := rgmabin.NewServer(hs.Core(), rgmabin.Config{})
	baddr, err := bs.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = bs.Close() })

	hc := rgmahttp.NewClient(haddr)
	if err := hc.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	bc := dial(t, baddr)
	var got collector
	if _, err := bc.CreateConsumer("SELECT * FROM generator", "continuous", got.add); err != nil {
		t.Fatal(err)
	}
	p, err := hc.CreatePrimaryProducer("generator", 30*time.Second, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Insert("INSERT INTO generator (genid, seq, power, site) VALUES (1, 1, 480.5, 'aberdeen')"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "cross-transport push", func() bool { return got.len() == 1 })
	if row := got.snapshot()[0].Row; row[0] != "1" {
		t.Fatalf("cross-transport tuple = %v", row)
	}
}

// TestBinConnTeardownReleasesResources: a dying connection's producers
// and consumers are released in the core, so crashed clients do not
// strand push sinks in the fan-out index.
func TestBinConnTeardownReleasesResources(t *testing.T) {
	s, addr := startBin(t, rgmacore.Config{Shards: 2})
	c := dial(t, addr)
	if err := c.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreatePrimaryProducer("generator", time.Second, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateConsumer("SELECT * FROM generator", "continuous", func([]rgmabin.PoppedTuple) {}); err != nil {
		t.Fatal(err)
	}
	if p, cn := s.Core().RegistryCounts(); p != 1 || cn != 1 {
		t.Fatalf("registry = %d/%d before close", p, cn)
	}
	_ = c.Close()
	waitFor(t, "teardown to release resources", func() bool {
		p, cn := s.Core().RegistryCounts()
		return p == 0 && cn == 0
	})
}

// rowKey flattens a tuple's cells for multiset comparison.
func rowKey(cells []string) string { return strings.Join(cells, "|") }

// sortedRowKeys renders any transport's delivered tuples as a sorted
// multiset of row renderings (InsertedAt is wall-clock and transport
// timing dependent, so only cells participate).
func sortedRowKeys[T any](tuples []T, row func(T) []string) []string {
	keys := make([]string, len(tuples))
	for i, t := range tuples {
		keys[i] = rowKey(row(t))
	}
	sort.Strings(keys)
	return keys
}

// TestTransportEquivalence runs the same workload against a pure-HTTP
// server and a pure-binary server and pins identical delivered tuple
// multisets for all three query types — HTTP stays the interop/serial
// baseline, the binary transport must not change what is delivered,
// only how fast.
func TestTransportEquivalence(t *testing.T) {
	const n = 40
	workloadStmt := func(i int) string {
		return fmt.Sprintf(
			"INSERT INTO generator (genid, seq, power, site) VALUES (%d, %d, %g, 'site-%04d')",
			i%5, i, 100.5+float64(i), i%3)
	}
	continuousQ := "SELECT * FROM generator WHERE seq < 30"
	latestQ := "SELECT * FROM generator WHERE genid < 3"
	historyQ := "SELECT * FROM generator"

	// HTTP: poll-driven continuous consumer.
	hs := rgmahttp.NewServerWith(rgmahttp.Config{Shards: 2})
	haddr, err := hs.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hs.Close() })
	hc := rgmahttp.NewClient(haddr)
	if err := hc.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	hcont, err := hc.CreateConsumer(continuousQ, "continuous")
	if err != nil {
		t.Fatal(err)
	}
	hp, err := hc.CreatePrimaryProducer("generator", time.Minute, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := hp.Insert(workloadStmt(i)); err != nil {
			t.Fatal(err)
		}
	}
	var httpCont []rgmahttp.PoppedTuple
	for len(httpCont) < 30 {
		got, err := hcont.Pop()
		if err != nil {
			t.Fatal(err)
		}
		httpCont = append(httpCont, got...)
	}
	hlat, err := hc.CreateConsumer(latestQ, "latest")
	if err != nil {
		t.Fatal(err)
	}
	httpLatest, err := hlat.Pop()
	if err != nil {
		t.Fatal(err)
	}
	hhist, err := hc.CreateConsumer(historyQ, "history")
	if err != nil {
		t.Fatal(err)
	}
	httpHistory, err := hhist.Pop()
	if err != nil {
		t.Fatal(err)
	}

	// Binary: push-driven continuous consumer, same workload.
	_, baddr := startBin(t, rgmacore.Config{Shards: 2})
	bc := dial(t, baddr)
	if err := bc.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	var binCont collector
	if _, err := bc.CreateConsumer(continuousQ, "continuous", binCont.add); err != nil {
		t.Fatal(err)
	}
	bp, err := bc.CreatePrimaryProducer("generator", time.Minute, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]string, 0, n)
	for i := 0; i < n; i++ {
		batch = append(batch, workloadStmt(i))
	}
	if err := bp.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "binary continuous delivery", func() bool { return binCont.len() >= 30 })
	blat, err := bc.CreateConsumer(latestQ, "latest", nil)
	if err != nil {
		t.Fatal(err)
	}
	binLatest, err := blat.Pop()
	if err != nil {
		t.Fatal(err)
	}
	bhist, err := bc.CreateConsumer(historyQ, "history", nil)
	if err != nil {
		t.Fatal(err)
	}
	binHistory, err := bhist.Pop()
	if err != nil {
		t.Fatal(err)
	}

	httpRow := func(t rgmahttp.PoppedTuple) []string { return t.Row }
	binRow := func(t rgmabin.PoppedTuple) []string { return t.Row }
	for _, cmp := range []struct {
		name       string
		http, bin  []string
		wantTuples int
	}{
		{"continuous", sortedRowKeys(httpCont, httpRow), sortedRowKeys(binCont.snapshot(), binRow), 30},
		{"latest", sortedRowKeys(httpLatest, httpRow), sortedRowKeys(binLatest, binRow), 3},
		{"history", sortedRowKeys(httpHistory, httpRow), sortedRowKeys(binHistory, binRow), n},
	} {
		if len(cmp.http) != cmp.wantTuples {
			t.Fatalf("%s: HTTP delivered %d tuples, want %d", cmp.name, len(cmp.http), cmp.wantTuples)
		}
		if len(cmp.bin) != len(cmp.http) {
			t.Fatalf("%s: binary delivered %d tuples, HTTP %d", cmp.name, len(cmp.bin), len(cmp.http))
		}
		for i := range cmp.http {
			if cmp.http[i] != cmp.bin[i] {
				t.Fatalf("%s multiset diverges at %d:\n http: %s\n bin:  %s", cmp.name, i, cmp.http[i], cmp.bin[i])
			}
		}
	}
}

// TestBinConcurrentPushInsertStress is the -race stress: several
// producer connections batch-insert concurrently while several push-fed
// consumer connections subscribe with overlapping predicates; every
// consumer must receive exactly the tuples its predicate selects.
func TestBinConcurrentPushInsertStress(t *testing.T) {
	const (
		producers       = 4
		perProducer     = 200
		totalInserts    = producers * perProducer
		batchSize       = 20
		consumers       = 3
		matchingPerCons = totalInserts / 2 // seq is 0-based: seq < total/2
	)
	s := rgmabin.NewServer(rgmacore.New(rgmacore.Config{Shards: 4}),
		rgmabin.Config{WriteBuffer: 8 * totalInserts})
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })

	if err := dial(t, addr).CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	cols := make([]*collector, consumers)
	for i := range cols {
		cols[i] = &collector{}
		cc := dial(t, addr)
		q := fmt.Sprintf("SELECT * FROM generator WHERE seq < %d", matchingPerCons)
		if _, err := cc.CreateConsumer(q, "continuous", cols[i].add); err != nil {
			t.Fatal(err)
		}
	}

	var seq atomic.Int64
	seq.Store(-1)
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for pi := 0; pi < producers; pi++ {
		wg.Add(1)
		go func(pi int) {
			defer wg.Done()
			pc, err := rgmabin.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer pc.Close()
			p, err := pc.CreatePrimaryProducer("generator", time.Minute, time.Minute)
			if err != nil {
				errs <- err
				return
			}
			batch := make([]string, 0, batchSize)
			for i := 0; i < perProducer; i++ {
				sq := seq.Add(1)
				batch = append(batch, fmt.Sprintf(
					"INSERT INTO generator (genid, seq, power, site) VALUES (%d, %d, 1.5, 'site-%04d')",
					pi, sq, pi))
				if len(batch) == batchSize {
					if err := p.InsertBatch(batch); err != nil {
						errs <- err
						return
					}
					batch = batch[:0]
				}
			}
			if len(batch) > 0 {
				if err := p.InsertBatch(batch); err != nil {
					errs <- err
				}
			}
		}(pi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, col := range cols {
		waitFor(t, fmt.Sprintf("consumer %d full delivery", i), func() bool {
			return col.len() >= matchingPerCons
		})
		if got := col.len(); got != matchingPerCons {
			t.Fatalf("consumer %d received %d tuples, want exactly %d", i, got, matchingPerCons)
		}
		// No duplicates: every received seq is distinct.
		seen := make(map[string]bool, matchingPerCons)
		for _, tp := range col.tuples {
			if seen[tp.Row[1]] {
				t.Fatalf("consumer %d received duplicate seq %s", i, tp.Row[1])
			}
			seen[tp.Row[1]] = true
		}
	}
	if drops := s.SlowConsumerDrops(); drops != 0 {
		t.Fatalf("slow-consumer drops during stress: %d", drops)
	}
}

// TestBinStats: the stats RPC reports core counters over the binary
// transport, and WAL counters only once a source is installed.
func TestBinStats(t *testing.T) {
	s, addr := startBin(t, rgmacore.Config{})
	c := dial(t, addr)
	if err := c.CreateTable(createSQL); err != nil {
		t.Fatal(err)
	}
	p, err := c.CreatePrimaryProducer("generator", 30*time.Second, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		stmt := fmt.Sprintf("INSERT INTO generator (genid, seq, power, site) VALUES (%d, %d, 480.5, 'aberdeen')", i, i)
		if err := p.Insert(stmt); err != nil {
			t.Fatal(err)
		}
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Producers != 1 || st.Inserts != 3 {
		t.Errorf("stats = %d producers / %d inserts, want 1 / 3", st.Producers, st.Inserts)
	}
	if st.WALEnabled || st.WALRecordsAppended != 0 {
		t.Errorf("WAL counters set without a source: %+v", st)
	}

	s.SetWALStats(func() wal.Stats {
		return wal.Stats{RecordsAppended: 7, BytesLogged: 123, Fsyncs: 2, ReplayRecords: 4, CleanStart: true}
	})
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.WALEnabled || st.WALRecordsAppended != 7 || st.WALBytesLogged != 123 ||
		st.WALFsyncs != 2 || st.WALReplayRecords != 4 || !st.WALCleanStart {
		t.Errorf("WAL stats not forwarded: %+v", st)
	}
}
