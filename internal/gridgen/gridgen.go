// Package gridgen reproduces the paper's power-grid workload (§III.B and
// §III.E): a fleet of simulated power generators, created at a fixed
// spawn interval, each sleeping a random 10–20 s so publishes spread
// evenly, then publishing one monitoring MapMessage — two int, five
// float, two long, three double and four string values — every 10 s; and
// the receiving program, which subscribes with the paper's selector
// "id<10000" and logs per-message timings.
package gridgen

import (
	"fmt"

	"gridmon/internal/message"
	"gridmon/internal/metrics"
	"gridmon/internal/sim"
	"gridmon/internal/simbroker"
	"gridmon/internal/simnet"
	"gridmon/internal/wire"
)

// PaperSelector is the selector the paper's subscriber attaches: it does
// not filter anything but charges evaluation cost, "to simulate real
// uses".
const PaperSelector = "id<10000"

// MonitoringMessage builds the paper's exact payload mix for one sample.
func MonitoringMessage(genID int, seq int64) *message.Message {
	m := message.NewMap()
	m.SetProperty("id", message.Int(int32(genID)))
	// Two integers.
	m.MapSet("id", message.Int(int32(genID)))
	m.MapSet("seq", message.Int(int32(seq)))
	// Five floats.
	m.MapSet("power_kw", message.Float(float32(480+genID%40)))
	m.MapSet("voltage", message.Float(239.5))
	m.MapSet("current", message.Float(13.2))
	m.MapSet("frequency", message.Float(50.01))
	m.MapSet("phase", message.Float(0.42))
	// Two longs.
	m.MapSet("uptime_s", message.Long(86400+seq*10))
	m.MapSet("energy_wh", message.Long(123456789+seq))
	// Three doubles.
	m.MapSet("temp_k", message.Double(341.25))
	m.MapSet("pressure", message.Double(101.325))
	m.MapSet("efficiency", message.Double(0.9312))
	// Four strings.
	m.MapSet("site", message.String(fmt.Sprintf("site-%04d", genID%500)))
	m.MapSet("model", message.String("wind-v90"))
	m.MapSet("status", message.String("RUNNING"))
	m.MapSet("operator", message.String("grid-ops"))
	return m
}

// FleetConfig describes a generator fleet.
type FleetConfig struct {
	// Generators is the number of simulated power generators (each holds
	// one broker connection).
	Generators int
	// SpawnInterval is the pause between generator creations (0.5 s in
	// the Narada tests, 1 s in the R-GMA tests).
	SpawnInterval sim.Time
	// WarmupMin/WarmupMax bound the random initial sleep (10–20 s in the
	// paper) that spreads publishes evenly.
	WarmupMin, WarmupMax sim.Time
	// Period is the publish interval (10 s in the paper).
	Period sim.Time
	// PublishCount is how many messages each generator sends before
	// stopping (180 for the paper's 30-minute runs).
	PublishCount int
	// Transport selects the broker transport profile.
	Transport simbroker.Transport
	// AckMode applies to the generator's session (publishers do not ack,
	// but the mode is carried for completeness).
	AckMode message.AckMode
	// TopicFor maps a generator to its publish topic.
	TopicFor func(genID int) string
	// HostFor maps a generator to its publishing broker.
	HostFor func(genID int) *simbroker.Host
	// NodeFor maps a generator to the client machine it runs on.
	NodeFor func(genID int) *simnet.Node
	// Payload builds the message for one publish; nil means
	// MonitoringMessage. The paper's "Triple" test wraps it.
	Payload func(genID int, seq int64) *message.Message
}

// Fleet is a running generator fleet.
type Fleet struct {
	k   *sim.Kernel
	cfg FleetConfig

	clients []*simbroker.Client
	tickers []*sim.Ticker

	published uint64
	refused   int
	lost      uint64
	stopped   bool
}

// StartFleet schedules generator creation on the kernel. Generators are
// created every SpawnInterval starting now, sleep their random warmup,
// then publish PublishCount messages at Period intervals.
func StartFleet(k *sim.Kernel, cfg FleetConfig) *Fleet {
	if cfg.Payload == nil {
		cfg.Payload = MonitoringMessage
	}
	if cfg.PublishCount <= 0 {
		panic("gridgen: PublishCount must be positive")
	}
	if cfg.Generators <= 0 {
		panic("gridgen: Generators must be positive")
	}
	f := &Fleet{k: k, cfg: cfg}
	for i := 0; i < cfg.Generators; i++ {
		genID := i
		k.At(k.Now()+sim.Time(i)*cfg.SpawnInterval, func() { f.spawn(genID) })
	}
	return f
}

func (f *Fleet) spawn(genID int) {
	if f.stopped {
		return
	}
	cfg := f.cfg
	host := cfg.HostFor(genID)
	node := cfg.NodeFor(genID)
	client, err := host.Connect(node, cfg.Transport, fmt.Sprintf("gen-%d", genID))
	if err != nil {
		f.refused++
		return
	}
	if cfg.AckMode != 0 {
		client.SetAckMode(cfg.AckMode)
	}
	client.OnSendLost = func(wire.Frame) { f.lost++ }
	f.clients = append(f.clients, client)

	warmup := cfg.WarmupMin
	if span := int64(cfg.WarmupMax - cfg.WarmupMin); span > 0 {
		warmup += sim.Time(f.k.Rand().Int63n(span))
	}
	seq := int64(0)
	var ticker *sim.Ticker
	ticker = f.k.Every(f.k.Now()+warmup, cfg.Period, func() {
		if f.stopped || seq >= int64(cfg.PublishCount) {
			ticker.Stop()
			return
		}
		seq++
		m := cfg.Payload(genID, seq)
		m.Dest = message.Topic(cfg.TopicFor(genID))
		client.Publish(m)
		f.published++
		if seq >= int64(cfg.PublishCount) {
			ticker.Stop()
		}
	})
	f.tickers = append(f.tickers, ticker)
}

// Stop halts all publishing immediately.
func (f *Fleet) Stop() {
	f.stopped = true
	for _, t := range f.tickers {
		t.Stop()
	}
}

// Published reports the number of messages handed to the middleware —
// the paper's "sent" count.
func (f *Fleet) Published() uint64 { return f.published }

// Refused reports generators whose connection the broker refused (the
// OOM cliff experiments count these).
func (f *Fleet) Refused() int { return f.refused }

// TransportLost reports messages abandoned by an unreliable transport on
// the publish path.
func (f *Fleet) TransportLost() uint64 { return f.lost }

// Connected reports how many generators hold live connections.
func (f *Fleet) Connected() int { return len(f.clients) }

// EndTime estimates when the last generator finishes publishing: spawn
// ramp + max warmup + PublishCount periods, plus one period of slack.
func (f *Fleet) EndTime() sim.Time {
	cfg := f.cfg
	ramp := sim.Time(cfg.Generators-1) * cfg.SpawnInterval
	return ramp + cfg.WarmupMax + sim.Time(cfg.PublishCount+1)*cfg.Period
}

// MonitorConfig describes the receiving program.
type MonitorConfig struct {
	// Host is the broker the monitor subscribes at.
	Host *simbroker.Host
	// Node is the machine the monitor runs on.
	Node *simnet.Node
	// Transport must match the generators' profile for the comparison
	// tests.
	Transport simbroker.Transport
	// AckMode is the monitor session's acknowledgement mode (the "UDP
	// CLI" test uses CLIENT_ACKNOWLEDGE).
	AckMode message.AckMode
	// Topics lists the topics to subscribe to, each with PaperSelector.
	Topics []string
}

// Monitor is the receiving program: it subscribes and accumulates
// per-message round-trip times.
type Monitor struct {
	k      *sim.Kernel
	client *simbroker.Client

	rtt      metrics.RTT
	received uint64

	// OnMessage, when set, observes every delivery after metrics are
	// recorded (used by the RTT-decomposition experiment).
	OnMessage func(d wire.Deliver, receivedAt sim.Time)
}

// StartMonitor connects and subscribes the receiving program. It returns
// an error when the broker refuses the connection.
func StartMonitor(k *sim.Kernel, cfg MonitorConfig) (*Monitor, error) {
	client, err := cfg.Host.Connect(cfg.Node, cfg.Transport, "monitor")
	if err != nil {
		return nil, err
	}
	if cfg.AckMode != 0 {
		client.SetAckMode(cfg.AckMode)
	}
	m := &Monitor{k: k, client: client}
	client.OnDeliver = func(d wire.Deliver) {
		now := k.Now()
		m.received++
		m.rtt.Add(float64(now-sim.Time(d.Msg.Timestamp)) / float64(sim.Millisecond))
		if m.OnMessage != nil {
			m.OnMessage(d, now)
		}
	}
	for i, topic := range cfg.Topics {
		client.Subscribe(int64(i+1), message.Topic(topic), PaperSelector)
	}
	return m, nil
}

// RTT exposes the accumulated round-trip statistics.
func (m *Monitor) RTT() *metrics.RTT { return &m.rtt }

// Received reports delivered message count.
func (m *Monitor) Received() uint64 { return m.received }

// Client exposes the underlying client (tests use it).
func (m *Monitor) Client() *simbroker.Client { return m.client }
