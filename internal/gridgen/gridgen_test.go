package gridgen

import (
	"testing"

	"gridmon/internal/broker"
	"gridmon/internal/message"
	"gridmon/internal/sim"
	"gridmon/internal/simbroker"
	"gridmon/internal/simnet"
)

func TestMonitoringMessageFieldMix(t *testing.T) {
	m := MonitoringMessage(42, 7)
	counts := map[message.Kind]int{}
	for _, name := range m.MapNames() {
		v, _ := m.MapGet(name)
		counts[v.Kind()]++
	}
	// The paper: two integer, five float, two long, three double, four
	// string values.
	want := map[message.Kind]int{
		message.KindInt:    2,
		message.KindFloat:  5,
		message.KindLong:   2,
		message.KindDouble: 3,
		message.KindString: 4,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("%v count = %d, want %d", k, counts[k], n)
		}
	}
	if v, ok := m.Property("id"); !ok || !v.Equal(message.Int(42)) {
		t.Fatal("selector property 'id' missing")
	}
	// The paper's selector must accept it.
	if v, _ := m.Property("id"); v.IsNull() {
		t.Fatal("id null")
	}
}

type world struct {
	k     *sim.Kernel
	net   *simnet.Network
	host  *simbroker.Host
	cnode *simnet.Node
}

func newWorld(seed int64) *world {
	k := sim.New(seed)
	net := simnet.New(k)
	bn := net.AddNode("broker", simnet.HydraNode())
	cn := net.AddNode("client1", simnet.HydraNode())
	host := simbroker.NewHost(net, bn, broker.DefaultConfig("broker"), simbroker.DefaultCosts())
	return &world{k: k, net: net, host: host, cnode: cn}
}

func fleetCfg(w *world, gens, pubs int) FleetConfig {
	return FleetConfig{
		Generators:    gens,
		SpawnInterval: 500 * sim.Millisecond,
		WarmupMin:     10 * sim.Second,
		WarmupMax:     20 * sim.Second,
		Period:        10 * sim.Second,
		PublishCount:  pubs,
		Transport:     simbroker.TCP(),
		TopicFor:      func(int) string { return "power" },
		HostFor:       func(int) *simbroker.Host { return w.host },
		NodeFor:       func(int) *simnet.Node { return w.cnode },
	}
}

func TestFleetPublishesExactCount(t *testing.T) {
	w := newWorld(1)
	mon, err := StartMonitor(w.k, MonitorConfig{
		Host: w.host, Node: w.cnode, Transport: simbroker.TCP(), Topics: []string{"power"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := StartFleet(w.k, fleetCfg(w, 20, 5))
	w.k.RunUntil(f.EndTime() + 30*sim.Second)
	if f.Published() != 100 {
		t.Fatalf("published = %d, want 100", f.Published())
	}
	if mon.Received() != 100 {
		t.Fatalf("received = %d, want 100 (lossless TCP)", mon.Received())
	}
	if f.Refused() != 0 || f.Connected() != 20 {
		t.Fatalf("refused=%d connected=%d", f.Refused(), f.Connected())
	}
	if mon.RTT().Count() != 100 {
		t.Fatalf("rtt samples = %d", mon.RTT().Count())
	}
	if mean := mon.RTT().Mean(); mean <= 0 || mean > 50 {
		t.Fatalf("mean RTT = %v ms, implausible", mean)
	}
}

func TestFleetWarmupSpreadsFirstPublishes(t *testing.T) {
	w := newWorld(2)
	var firsts []sim.Time
	cfg := fleetCfg(w, 50, 1)
	cfg.Payload = func(genID int, seq int64) *message.Message {
		firsts = append(firsts, w.k.Now())
		return MonitoringMessage(genID, seq)
	}
	f := StartFleet(w.k, cfg)
	w.k.RunUntil(f.EndTime())
	if len(firsts) != 50 {
		t.Fatalf("first publishes = %d", len(firsts))
	}
	// Generator i spawns at i*0.5s and first publishes within
	// [spawn+10s, spawn+20s).
	for i, at := range firsts {
		spawn := sim.Time(i) * 500 * sim.Millisecond
		if at < spawn+10*sim.Second || at >= spawn+20*sim.Second {
			t.Fatalf("generator %d first publish at %v, outside warmup window", i, at)
		}
	}
}

func TestFleetStopHaltsPublishing(t *testing.T) {
	w := newWorld(3)
	f := StartFleet(w.k, fleetCfg(w, 5, 1000))
	w.k.RunUntil(60 * sim.Second)
	f.Stop()
	at := f.Published()
	w.k.RunUntil(200 * sim.Second)
	if f.Published() != at {
		t.Fatalf("fleet kept publishing after Stop: %d -> %d", at, f.Published())
	}
}

func TestFleetRefusalsCounted(t *testing.T) {
	w := newWorld(4)
	// Shrink the broker's native budget to 10 connections.
	costs := simbroker.DefaultCosts()
	costs.NativeBudget = 10 * costs.NativePerConn
	small := simbroker.NewHost(w.net, w.net.AddNode("small", simnet.HydraNode()), broker.DefaultConfig("small"), costs)
	cfg := fleetCfg(w, 15, 1)
	cfg.HostFor = func(int) *simbroker.Host { return small }
	f := StartFleet(w.k, cfg)
	w.k.RunUntil(f.EndTime())
	if f.Refused() != 5 || f.Connected() != 10 {
		t.Fatalf("refused=%d connected=%d, want 5/10", f.Refused(), f.Connected())
	}
}

func TestMonitorRefusedSurfacesError(t *testing.T) {
	w := newWorld(5)
	costs := simbroker.DefaultCosts()
	costs.NativeBudget = 1 // smaller than any thread stack
	full := simbroker.NewHost(w.net, w.net.AddNode("full", simnet.HydraNode()), broker.DefaultConfig("full"), costs)
	if _, err := StartMonitor(w.k, MonitorConfig{Host: full, Node: w.cnode, Transport: simbroker.TCP(), Topics: []string{"t"}}); err == nil {
		t.Fatal("expected refusal error")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, float64) {
		w := newWorld(42)
		mon, err := StartMonitor(w.k, MonitorConfig{Host: w.host, Node: w.cnode, Transport: simbroker.TCP(), Topics: []string{"power"}})
		if err != nil {
			t.Fatal(err)
		}
		f := StartFleet(w.k, fleetCfg(w, 30, 3))
		w.k.RunUntil(f.EndTime() + 10*sim.Second)
		return mon.Received(), mon.RTT().Mean()
	}
	r1, m1 := run()
	r2, m2 := run()
	if r1 != r2 || m1 != m2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", r1, m1, r2, m2)
	}
}

func TestBadConfigPanics(t *testing.T) {
	w := newWorld(6)
	for _, mut := range []func(*FleetConfig){
		func(c *FleetConfig) { c.PublishCount = 0 },
		func(c *FleetConfig) { c.Generators = 0 },
	} {
		cfg := fleetCfg(w, 5, 5)
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad config did not panic")
				}
			}()
			StartFleet(w.k, cfg)
		}()
	}
}

func TestUDPFleetLosesMessages(t *testing.T) {
	w := newWorld(7)
	tr := simbroker.UDP()
	tr.LossProb = 0.15 // exaggerated for a small test
	mon, err := StartMonitor(w.k, MonitorConfig{Host: w.host, Node: w.cnode, Transport: tr, Topics: []string{"power"}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleetCfg(w, 40, 10)
	cfg.Transport = tr
	f := StartFleet(w.k, cfg)
	w.k.RunUntil(f.EndTime() + 30*sim.Second)
	if mon.Received() >= f.Published() {
		t.Fatalf("UDP run lossless: %d/%d", mon.Received(), f.Published())
	}
	if mon.Received() < f.Published()*7/10 {
		t.Fatalf("UDP lost too much: %d/%d", mon.Received(), f.Published())
	}
}
