// Package simnet models the paper's testbed network: a private switched
// 100 Mbps LAN connecting eight identical nodes.
//
// Every node owns a network interface with separate egress and ingress
// serialization queues (a frame occupies the wire for size/bandwidth), and
// every connection adds propagation latency with optional jitter.
// Unreliable (UDP-style) connections drop frames with a configurable
// probability; reliable (TCP-style) connections never drop and preserve
// order. The model deliberately omits TCP congestion dynamics: the paper's
// workload (≤75 msg/s of ≤1 KB messages, <50 KB/s) never approaches the
// LAN's measured 7–8 MB/s capacity, so serialization and latency are the
// only network effects that matter.
package simnet

import (
	"fmt"

	"gridmon/internal/sim"
	"gridmon/internal/simproc"
)

// NodeConfig describes one testbed machine.
type NodeConfig struct {
	// CPUSpeed scales service costs; 1.0 is the reference Pentium III.
	CPUSpeed float64
	// HeapLimit caps the node's middleware heap in bytes (0 = unlimited).
	HeapLimit int64
	// HeapBaseline is resident memory the middleware occupies at start.
	HeapBaseline int64
	// BandwidthBps is the NIC line rate in bits per second for each
	// direction independently (100e6 for the Hydra LAN). 0 means
	// infinitely fast (no serialization delay).
	BandwidthBps float64
}

// HydraNode returns the configuration used for the paper's cluster nodes:
// one Pentium III-class CPU, a 1 GB JVM heap over a ~64 MB resident
// baseline, and a 100 Mbps switched LAN port.
func HydraNode() NodeConfig {
	return NodeConfig{
		CPUSpeed:     1.0,
		HeapLimit:    1 << 30, // -Xmx1024m
		HeapBaseline: 64 << 20,
		BandwidthBps: 100e6,
	}
}

// Node is a machine on the simulated LAN.
type Node struct {
	name string
	net  *Network
	CPU  *simproc.CPU
	Heap *simproc.Heap

	bwBps       float64
	egressBusy  sim.Time
	ingressBusy sim.Time

	bytesOut, bytesIn uint64
}

// Name returns the node's name.
func (n *Node) Name() string { return n.name }

// BytesOut reports total bytes serialized onto the wire by this node.
func (n *Node) BytesOut() uint64 { return n.bytesOut }

// BytesIn reports total bytes received off the wire by this node.
func (n *Node) BytesIn() uint64 { return n.bytesIn }

// serialize reserves wire time for size bytes in one direction and returns
// when the last byte has left (egress) or arrived (ingress).
func serialize(k *sim.Kernel, busy *sim.Time, bwBps float64, size int) sim.Time {
	now := k.Now()
	start := now
	if *busy > start {
		start = *busy
	}
	var tx sim.Time
	if bwBps > 0 {
		tx = sim.Time(float64(size*8) / bwBps * float64(sim.Second))
	}
	*busy = start + tx
	return *busy
}

// Network is a collection of nodes joined by a non-blocking switch.
type Network struct {
	k     *sim.Kernel
	nodes map[string]*Node

	framesSent      uint64
	framesDelivered uint64
	framesDropped   uint64
}

// New returns an empty network driven by kernel k.
func New(k *sim.Kernel) *Network {
	return &Network{k: k, nodes: make(map[string]*Node)}
}

// Kernel returns the simulation kernel the network runs on.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// AddNode creates and registers a node. Duplicate names panic: experiment
// topologies are static and a duplicate is a configuration bug.
func (n *Network) AddNode(name string, cfg NodeConfig) *Node {
	if _, dup := n.nodes[name]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %q", name))
	}
	if cfg.CPUSpeed == 0 {
		cfg.CPUSpeed = 1.0
	}
	node := &Node{
		name:  name,
		net:   n,
		CPU:   simproc.NewCPU(n.k, name, cfg.CPUSpeed),
		Heap:  simproc.NewHeap(name, cfg.HeapLimit, cfg.HeapBaseline),
		bwBps: cfg.BandwidthBps,
	}
	n.nodes[name] = node
	return node
}

// Node returns a registered node or nil.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// Stats reports total frames sent, delivered and dropped across all
// connections.
func (n *Network) Stats() (sent, delivered, dropped uint64) {
	return n.framesSent, n.framesDelivered, n.framesDropped
}

// ConnOptions configures one point-to-point connection.
type ConnOptions struct {
	// Latency is the one-way propagation delay.
	Latency sim.Time
	// Jitter adds a uniform random component in [0, Jitter] per frame.
	Jitter sim.Time
	// Reliable connections (TCP-like) never lose frames. Unreliable
	// connections drop each frame independently with LossProb.
	Reliable bool
	// LossProb is the per-frame drop probability for unreliable
	// connections (ignored when Reliable).
	LossProb float64
}

// LANOptions returns the connection profile of the Hydra switched LAN:
// ~100 µs one-way latency with 50 µs jitter, reliable.
func LANOptions() ConnOptions {
	return ConnOptions{Latency: 100 * sim.Microsecond, Jitter: 50 * sim.Microsecond, Reliable: true}
}

// Frame is one unit of delivery on a connection.
type Frame struct {
	Payload any
	Size    int
	Sent    sim.Time
}

// Handler consumes delivered frames.
type Handler func(Frame)

// Conn is a duplex point-to-point connection between two nodes. Each side
// is addressed through a Port.
type Conn struct {
	net    *Network
	a, b   *Node
	opts   ConnOptions
	portA  Port
	portB  Port
	closed bool

	// Per-direction last arrival instants, used to keep reliable
	// connections in order when jitter would otherwise reorder frames.
	lastArriveAB sim.Time
	lastArriveBA sim.Time

	sent, delivered, dropped uint64
}

// Connect joins two nodes with the given options and returns the new
// connection. a and b may be the same node (loopback).
func (n *Network) Connect(a, b *Node, opts ConnOptions) *Conn {
	if a == nil || b == nil {
		panic("simnet: Connect with nil node")
	}
	if opts.LossProb < 0 || opts.LossProb > 1 {
		panic(fmt.Sprintf("simnet: loss probability %v out of range", opts.LossProb))
	}
	c := &Conn{net: n, a: a, b: b, opts: opts}
	c.portA = Port{conn: c, isA: true}
	c.portB = Port{conn: c, isA: false}
	return c
}

// A returns the port on node a; B the port on node b.
func (c *Conn) A() *Port { return &c.portA }
func (c *Conn) B() *Port { return &c.portB }

// Close stops all future deliveries on the connection. Frames already in
// flight are discarded silently.
func (c *Conn) Close() { c.closed = true }

// Closed reports whether Close has been called.
func (c *Conn) Closed() bool { return c.closed }

// Stats reports per-connection frame counters.
func (c *Conn) Stats() (sent, delivered, dropped uint64) {
	return c.sent, c.delivered, c.dropped
}

// Port is one endpoint of a Conn.
type Port struct {
	conn    *Conn
	isA     bool
	handler Handler
}

// Node returns the node this port lives on.
func (p *Port) Node() *Node {
	if p.isA {
		return p.conn.a
	}
	return p.conn.b
}

// Peer returns the opposite port.
func (p *Port) Peer() *Port {
	if p.isA {
		return &p.conn.portB
	}
	return &p.conn.portA
}

// SetHandler installs the delivery callback for frames arriving at this
// port. Frames that arrive while no handler is installed are dropped and
// counted.
func (p *Port) SetHandler(h Handler) { p.handler = h }

// Send transmits a frame of the given size to the peer port. Delivery time
// is egress serialization + latency (+ jitter) + ingress serialization.
// For unreliable connections the frame may be lost.
func (p *Port) Send(payload any, size int) {
	c := p.conn
	if c.closed {
		return
	}
	if size < 0 {
		panic("simnet: negative frame size")
	}
	k := c.net.k
	src, dst := p.Node(), p.Peer().Node()
	dstPort := p.Peer()

	c.sent++
	c.net.framesSent++
	src.bytesOut += uint64(size)

	txEnd := serialize(k, &src.egressBusy, src.bwBps, size)

	if !c.opts.Reliable && c.opts.LossProb > 0 && k.Rand().Float64() < c.opts.LossProb {
		c.dropped++
		c.net.framesDropped++
		return
	}

	lat := c.opts.Latency
	if c.opts.Jitter > 0 {
		lat += sim.Time(k.Rand().Int63n(int64(c.opts.Jitter) + 1))
	}
	arrive := txEnd + lat
	if c.opts.Reliable {
		// TCP delivers in order: a frame cannot arrive before one sent
		// earlier in the same direction.
		last := &c.lastArriveAB
		if !p.isA {
			last = &c.lastArriveBA
		}
		if arrive < *last {
			arrive = *last
		}
		*last = arrive
	}
	f := Frame{Payload: payload, Size: size, Sent: k.Now()}
	k.At(arrive, func() {
		if c.closed {
			return
		}
		end := serialize(k, &dst.ingressBusy, dst.bwBps, size)
		k.At(end, func() {
			if c.closed {
				return
			}
			dst.bytesIn += uint64(size)
			if dstPort.handler == nil {
				c.dropped++
				c.net.framesDropped++
				return
			}
			c.delivered++
			c.net.framesDelivered++
			dstPort.handler(f)
		})
	})
}
